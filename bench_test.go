package farm

// One benchmark per table/figure of the paper's evaluation. Each runs the
// corresponding experiment from internal/exper at a scaled configuration
// and reports the reproduced quantities via b.ReportMetric, so
// `go test -bench . -benchmem` regenerates every result in one sweep
// (cmd/farm-bench prints the same data as full tables).
//
// All reported times/rates are *simulated*: ns/op measures the host cost
// of running the simulation and is not a FaRM metric.

import (
	"testing"

	"farm/internal/baseline"
	"farm/internal/core"
	"farm/internal/exper"
	"farm/internal/proto"
	"farm/internal/sim"
)

func benchScale() exper.Scale {
	return exper.Scale{Machines: 6, Threads: 6, Subscribers: 800, Warehouses: 12, Regions: 4, Seed: 1}
}

// BenchmarkFigure1_NVRAMEnergy reproduces Figure 1: Joules per GB saved to
// 1–4 SSDs on power failure.
func BenchmarkFigure1_NVRAMEnergy(b *testing.B) {
	var rows []exper.Fig1Row
	for i := 0; i < b.N; i++ {
		rows = exper.Figure1()
	}
	for _, r := range rows {
		b.ReportMetric(r.JoulesPerGB, "J/GB-"+itoa(r.SSDs)+"ssd")
	}
}

// BenchmarkFigure2_RDMAvsRPC reproduces Figure 2 at 64-byte transfers:
// one-sided reads vs RPC, ops/µs/machine.
func BenchmarkFigure2_RDMAvsRPC(b *testing.B) {
	var res baseline.ReadBenchResult
	for i := 0; i < b.N; i++ {
		cfg := baseline.DefaultReadBench()
		cfg.Machines = 6
		cfg.Threads = 10
		res = baseline.RunReadBench(cfg, 64, 2*sim.Millisecond)
	}
	b.ReportMetric(res.RDMA, "rdma-ops/µs/machine")
	b.ReportMetric(res.RPC, "rpc-ops/µs/machine")
	b.ReportMetric(res.RDMA/res.RPC, "ratio")
}

// BenchmarkCommitProtocol measures one distributed update's commit (§4 /
// Figure 4 path) end to end in simulated time and verifies its one-sided
// op budget Pw(f+3).
func BenchmarkCommitProtocol(b *testing.B) {
	c := NewCluster(Options{NumMachines: 6, Seed: 2})
	c.MustCreateRegions(2)
	m := c.Machine(1)
	var addr Addr
	if err := c.Sync(func(done func(error)) {
		tx := m.Begin(0)
		tx.Alloc(8, []byte("dddddddd"), nil, func(a Addr, err error) {
			addr = a
			tx.Commit(done)
		})
	}); err != nil {
		b.Fatal(err)
	}
	var total Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := c.Now()
		if err := c.Sync(func(done func(error)) {
			tx := m.Begin(0)
			tx.Read(addr, 8, func(_ []byte, err error) {
				if err != nil {
					done(err)
					return
				}
				tx.Write(addr, []byte{byte(i), 1, 2, 3, 4, 5, 6, 7})
				tx.Commit(done)
			})
		}); err != nil {
			b.Fatal(err)
		}
		total += c.Now() - start
	}
	b.ReportMetric(float64(total)/float64(b.N)/1000, "simulated-µs/commit")
}

// BenchmarkTable1RecordEncoding round-trips the Table 1 log records (the
// bytes written into NVRAM ring buffers).
func BenchmarkTable1RecordEncoding(b *testing.B) {
	rec := &proto.Record{
		Type:    proto.RecLock,
		Tx:      proto.TxID{Config: 1, Machine: 2, Thread: 3, Local: 4},
		Regions: []uint32{1, 2},
		Writes: []proto.ObjectWrite{
			{Addr: proto.Addr{Region: 1, Off: 64}, Version: 9, Allocated: true, Value: make([]byte, 40)},
		},
		TruncIDs: []uint64{1, 2, 3},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := proto.UnmarshalRecord(proto.MarshalRecord(rec)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_TATP runs the TATP mix at one high-load point.
func BenchmarkFigure7_TATP(b *testing.B) {
	var p exper.CurvePoint
	for i := 0; i < b.N; i++ {
		pts := exper.Figure7(benchScale(), [][2]int{{6, 4}}, 3*sim.Millisecond, 20*sim.Millisecond)
		p = pts[0]
	}
	b.ReportMetric(p.Tput, "txn/s")
	b.ReportMetric(p.PerMachine, "txn/s/machine")
	b.ReportMetric(p.Median.Micros(), "median-µs")
	b.ReportMetric(p.P99.Micros(), "p99-µs")
}

// BenchmarkFigure8_TPCC runs the TPC-C mix, reporting new-order rates.
func BenchmarkFigure8_TPCC(b *testing.B) {
	var p exper.CurvePoint
	for i := 0; i < b.N; i++ {
		pts := exper.Figure8(benchScale(), [][2]int{{4, 1}}, 3*sim.Millisecond, 25*sim.Millisecond)
		p = pts[0]
	}
	b.ReportMetric(p.Tput, "neworders/s")
	b.ReportMetric(p.Median.Micros(), "median-µs")
	b.ReportMetric(p.P99.Micros(), "p99-µs")
}

// BenchmarkReadPerformance reproduces §6.3's lookup workload.
func BenchmarkReadPerformance(b *testing.B) {
	var p exper.CurvePoint
	for i := 0; i < b.N; i++ {
		p = exper.KVReadPerformance(benchScale(), 2*sim.Millisecond, 15*sim.Millisecond)
	}
	b.ReportMetric(p.Tput, "lookups/s")
	b.ReportMetric(p.Median.Micros(), "median-µs")
	b.ReportMetric(p.P99.Micros(), "p99-µs")
}

func failureBench(b *testing.B, kind exper.FailureKind, workload string, aggressive bool) {
	var run exper.RecoveryRun
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Seed = uint64(i) + 1
		spec := exper.DefaultRecoverySpec(sc)
		spec.Kind = kind
		spec.Workload = workload
		spec.Aggressive = aggressive
		spec.Lease = 5 * sim.Millisecond
		spec.WarmFor = 30 * sim.Millisecond
		spec.RunFor = 400 * sim.Millisecond
		if kind == exper.KillCM {
			spec.RunFor = 600 * sim.Millisecond
		}
		run = exper.RunFailure(spec)
		if run.FullThroughput < 0 {
			b.Fatal("throughput never recovered")
		}
	}
	b.ReportMetric(run.FullThroughput.Millis(), "recovery-ms")
	if run.DataRecoveryDone > 0 {
		b.ReportMetric(run.DataRecoveryDone.Millis(), "datarec-ms")
	}
	b.ReportMetric(float64(run.RecoveringTxs), "recovering-txns")
}

// BenchmarkFigure9_TATPFailure: kill one machine under TATP.
func BenchmarkFigure9_TATPFailure(b *testing.B) { failureBench(b, exper.KillBackup, "tatp", false) }

// BenchmarkFigure10_TPCCFailure: kill one machine under TPC-C.
func BenchmarkFigure10_TPCCFailure(b *testing.B) { failureBench(b, exper.KillBackup, "tpcc", false) }

// BenchmarkFigure11_CMFailure: kill the configuration manager.
func BenchmarkFigure11_CMFailure(b *testing.B) { failureBench(b, exper.KillCM, "tatp", false) }

// BenchmarkFigure12_RecoveryDistribution: repeated failures, recovery-time
// percentiles.
func BenchmarkFigure12_RecoveryDistribution(b *testing.B) {
	var d []float64
	for i := 0; i < b.N; i++ {
		d = exper.RecoveryDistribution(benchScale(), 5, 5*sim.Millisecond)
	}
	b.ReportMetric(exper.Percentile(d, 50), "p50-ms")
	b.ReportMetric(exper.Percentile(d, 100), "max-ms")
}

// BenchmarkFigure13_CorrelatedFailure: kill a whole failure domain.
func BenchmarkFigure13_CorrelatedFailure(b *testing.B) {
	var run exper.RecoveryRun
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Machines = 9
		spec := exper.DefaultRecoverySpec(sc)
		spec.Kind = exper.KillDomain
		spec.Lease = 5 * sim.Millisecond
		spec.RunFor = 800 * sim.Millisecond
		run = exper.RunFailure(spec)
	}
	b.ReportMetric(float64(len(run.Victims)), "machines-killed")
	b.ReportMetric(run.FullThroughput.Millis(), "recovery-ms")
	b.ReportMetric(float64(run.RecoveringTxs), "recovering-txns")
}

// BenchmarkFigure14_AggressiveRecovery: TATP with 4×32 KB fetches.
func BenchmarkFigure14_AggressiveRecovery(b *testing.B) {
	failureBench(b, exper.KillBackup, "tatp", true)
}

// BenchmarkFigure15_TPCCAggressiveRecovery: TPC-C with 4×32 KB fetches.
func BenchmarkFigure15_TPCCAggressiveRecovery(b *testing.B) {
	failureBench(b, exper.KillBackup, "tpcc", true)
}

// BenchmarkFigure16_LeaseManagers measures false-positive expiries for the
// best and worst lease managers at a 5 ms lease.
func BenchmarkFigure16_LeaseManagers(b *testing.B) {
	var cells []exper.Fig16Cell
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Machines = 5
		sc.Threads = 2
		cells = exper.Figure16(sc, []sim.Time{5 * sim.Millisecond}, 1500*sim.Millisecond)
	}
	for _, c := range cells {
		b.ReportMetric(c.Expiries, c.Variant.String()+"-expiries/10min")
	}
}

// BenchmarkAblationProtocols compares commit message budgets: FaRM
// SOSP'15, FaRM NSDI'14, and Spanner-style 2PC/Paxos (§4, §7).
func BenchmarkAblationProtocols(b *testing.B) {
	var sp baseline.SpannerResult
	for i := 0; i < b.N; i++ {
		sp = baseline.MeasureSpannerCommit(baseline.DefaultSpanner(), 2)
	}
	b.ReportMetric(float64(baseline.FaRMWritesFormula(2, 1)), "farm-writes")
	b.ReportMetric(float64(baseline.NSDI14MessagesFormula(2, 1)), "nsdi14-msgs")
	b.ReportMetric(float64(sp.Messages), "spanner-msgs")
	b.ReportMetric(sp.Latency.Micros(), "spanner-µs")
}

// BenchmarkCrossoverSingleMachine compares a Silo-style single-machine
// engine with a small FaRM cluster on a similar read/write mix (§6.3's
// "outperforms Hekaton with just three machines" crossover).
func BenchmarkCrossoverSingleMachine(b *testing.B) {
	var silo float64
	var cluster exper.CurvePoint
	for i := 0; i < b.N; i++ {
		s := baseline.NewSilo(baseline.DefaultSilo(6), 2000)
		silo = s.RunUniform(3, 1, 30*sim.Millisecond)
		sc := benchScale()
		sc.Machines = 3
		pts := exper.Figure7(sc, [][2]int{{6, 4}}, 3*sim.Millisecond, 20*sim.Millisecond)
		cluster = pts[0]
	}
	b.ReportMetric(silo, "silo-txn/s")
	b.ReportMetric(cluster.Tput, "farm3-txn/s")
	b.ReportMetric(cluster.Tput/silo, "farm3/silo")
}

// BenchmarkSimulatorEventRate measures the substrate itself: host-side
// events per second the discrete-event engine sustains (capacity planning
// for bigger experiments).
func BenchmarkSimulatorEventRate(b *testing.B) {
	c := core.New(core.Options{NumMachines: 6, Seed: 9})
	if _, err := c.CreateRegions(0, 2, 0); err != nil {
		b.Fatal(err)
	}
	before := c.Eng.Executed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RunFor(sim.Millisecond)
	}
	b.ReportMetric(float64(c.Eng.Executed()-before)/float64(b.N), "events/simulated-ms")
}

func itoa(v int) string { return string(rune('0' + v)) }

// BenchmarkAblationValidation: the tr threshold trade-off (§4 step 2).
func BenchmarkAblationValidation(b *testing.B) {
	var rows []exper.AblationRow
	for i := 0; i < b.N; i++ {
		rows = exper.AblationValidation(benchScale(), 2*sim.Millisecond, 10*sim.Millisecond)
	}
	b.ReportMetric(rows[0].Median.Micros(), "rpc-validation-µs")
	b.ReportMetric(rows[2].Median.Micros(), "rdma-validation-µs")
}

// BenchmarkAblationLocality: TPC-C co-partitioning benefit (§6.2).
func BenchmarkAblationLocality(b *testing.B) {
	var rows []exper.AblationRow
	for i := 0; i < b.N; i++ {
		rows = exper.AblationLocality(benchScale(), 3*sim.Millisecond, 20*sim.Millisecond)
	}
	b.ReportMetric(rows[0].Tput, "copartitioned-neworders/s")
	b.ReportMetric(rows[1].Tput, "random-neworders/s")
}

// BenchmarkAblationLeaseDetection: lease duration vs detection delay (§5.1).
func BenchmarkAblationLeaseDetection(b *testing.B) {
	var rows []exper.AblationRow
	for i := 0; i < b.N; i++ {
		rows = exper.AblationLeaseDuration(benchScale(),
			[]sim.Time{2 * sim.Millisecond, 10 * sim.Millisecond})
	}
	b.ReportMetric(rows[0].Median.Millis(), "detect-ms-2ms-lease")
	b.ReportMetric(rows[1].Median.Millis(), "detect-ms-10ms-lease")
}

// BenchmarkPowerFailureRecovery: whole-cluster power cycle durability
// (§2.1/§5): committed data must be served again after restoration.
func BenchmarkPowerFailureRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCluster(Options{NumMachines: 6, Seed: uint64(i) + 1, LeaseDuration: 5 * Millisecond})
		c.MustCreateRegions(3)
		var addr Addr
		if err := c.Sync(func(done func(error)) {
			tx := c.Machine(1).Begin(0)
			tx.Alloc(8, []byte("dur-data"), nil, func(a Addr, err error) {
				addr = a
				tx.Commit(done)
			})
		}); err != nil {
			b.Fatal(err)
		}
		c.PowerCycle(100 * Millisecond)
		c.RunFor(400 * Millisecond)
		var got []byte
		if err := c.Sync(func(done func(error)) {
			tx := c.Machine(2).Begin(0)
			tx.Read(addr, 8, func(data []byte, err error) {
				got = data
				done(err)
			})
		}); err != nil || string(got) != "dur-data" {
			b.Fatalf("data lost across power cycle: %q %v", got, err)
		}
	}
	b.ReportMetric(1, "durability")
}
