// farm-chaos runs randomized fault-injection campaigns against the
// simulated cluster and audits FaRM's invariants after every run:
// conservation, configuration agreement, durability and liveness. Failures
// print the seed, which reproduces the run exactly.
//
//	farm-chaos -runs 10
//	farm-chaos -runs 5 -machines 9 -duration 2s -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"farm/internal/chaos"
	"farm/internal/sim"
)

var (
	runs     = flag.Int("runs", 5, "number of chaos runs")
	machines = flag.Int("machines", 6, "cluster size")
	duration = flag.Duration("duration", 1200*time.Millisecond, "virtual time per run")
	seed     = flag.Uint64("seed", 1, "base seed")
)

func main() {
	flag.Parse()
	cfg := chaos.DefaultConfig()
	cfg.Machines = *machines
	cfg.Duration = sim.Time(duration.Nanoseconds())
	cfg.Seed = *seed

	fmt.Printf("chaos campaign: %d runs × %v on %d machines (kills, partitions, power cycles)\n\n",
		*runs, *duration, *machines)
	bad := 0
	for _, r := range chaos.Campaign(cfg, *runs) {
		fmt.Println(r)
		if len(r.Violations) > 0 {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "\n%d/%d runs violated invariants\n", bad, *runs)
		os.Exit(1)
	}
	fmt.Printf("\nall %d runs clean: money conserved, one configuration, cluster live\n", *runs)
}
