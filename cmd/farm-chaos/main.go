// farm-chaos runs randomized fault-injection campaigns against the
// simulated cluster and audits FaRM's invariants after every run:
// conservation, configuration agreement, durability and liveness. Failures
// print the seed, which reproduces the run exactly.
//
// With -audit (on by default) every nemesis heal and every run end triggers
// a cluster-wide state-integrity audit: replica digests are compared
// primary-vs-backups per region and any divergence is localized to the exact
// machine, block and object. -corrupt flips one byte in a backup mid-run to
// prove the detect→localize→repair path end to end.
//
// With -histcheck (on by default) every transaction's client-observable
// history is recorded and, after the quiesce, checked for strict
// serializability: the checker infers the per-object version order, builds
// the transaction dependency graph (ww/wr/rw plus real-time edges) and
// reports any cycle with a minimal witness. A violating run writes its
// canonical history dump to ./chaos-failures (or -histdump DIR) next to the
// seed that regenerates it; farm-histcheck re-judges dumps offline.
// -bug-validation deliberately breaks OCC read validation to prove the
// checker has teeth — such a run MUST fail.
//
//	farm-chaos -runs 10
//	farm-chaos -runs 5 -machines 9 -duration 2s -seed 42
//	farm-chaos -faults oneway,gray -runs 8
//	farm-chaos -corrupt -runs 1
//	farm-chaos -replay 42
//	farm-chaos -runs 1 -bug-validation -histdump /tmp/bugval
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"farm/internal/chaos"
	"farm/internal/sim"
)

var (
	runs     = flag.Int("runs", 5, "number of chaos runs")
	machines = flag.Int("machines", 6, "cluster size")
	duration = flag.Duration("duration", 1200*time.Millisecond, "virtual time per run")
	seed     = flag.Uint64("seed", 1, "base seed")
	faults   = flag.String("faults", "", "comma-separated fault kinds to enable (kill,cmkill,partition,oneway,flap,gray,power); empty = all")
	replay   = flag.Uint64("replay", 0, "replay one seed twice, verify the runs are identical, and print its fault timeline")
	audit    = flag.Bool("audit", true, "audit replica state-integrity after every nemesis heal and at end of run")
	corrupt  = flag.Bool("corrupt", false, "flip one byte in a backup replica mid-run; audits must detect, localize and repair it")

	histcheck = flag.Bool("histcheck", true, "record every transaction's history and run the strict-serializability checker after each run")
	histdump  = flag.String("histdump", "", "directory to write each run's canonical history dump; violating runs always dump (here or ./chaos-failures)")
	bugval    = flag.Bool("bug-validation", false, "deliberately break OCC read validation (test-only); the run MUST then fail with a history cycle")
)

// failureDir is where violating runs leave their history dumps when
// -histdump gives no destination.
const failureDir = "chaos-failures"

func main() {
	flag.Parse()
	cfg := chaos.DefaultConfig()
	cfg.Machines = *machines
	cfg.Duration = sim.Time(duration.Nanoseconds())
	cfg.Seed = *seed
	cfg.Audit = *audit
	cfg.InjectCorruption = *corrupt
	cfg.HistCheck = *histcheck
	cfg.HistDump = *histdump != ""
	cfg.BugSkipValidation = *bugval
	if *corrupt && !*audit {
		fmt.Fprintln(os.Stderr, "farm-chaos: -corrupt requires -audit (nothing else can detect it)")
		os.Exit(2)
	}

	if *faults != "" {
		if err := selectFaults(&cfg, *faults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *replay != 0 {
		replaySeed(cfg, *replay)
		return
	}

	fmt.Printf("chaos campaign: %d runs × %v on %d machines (%s)\n\n",
		*runs, *duration, *machines, enabledKinds(cfg))
	bad, audits := 0, 0
	for _, r := range chaos.Campaign(cfg, *runs) {
		fmt.Println(r)
		audits += r.Audits
		printDivergences(r)
		saveHistory(r)
		if len(r.Violations) > 0 {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "\n%d/%d runs violated invariants\n", bad, *runs)
		os.Exit(1)
	}
	if *audit {
		fmt.Printf("\nall %d runs clean: money conserved, one configuration, cluster live, %d audits passed\n", *runs, audits)
	} else {
		fmt.Printf("\nall %d runs clean: money conserved, one configuration, cluster live\n", *runs)
	}
}

// saveHistory writes a run's history dump to disk: always when -histdump
// names a directory, and always for a violating run (so the bug report is
// complete: the dump plus the seed that regenerates it byte for byte).
func saveHistory(r chaos.Result) {
	if len(r.HistoryJSON) == 0 {
		return
	}
	dir := *histdump
	if dir == "" {
		if len(r.Violations) == 0 {
			return
		}
		dir = failureDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "farm-chaos: %v\n", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%d.history.json", r.Seed))
	if err := os.WriteFile(path, r.HistoryJSON, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "farm-chaos: %v\n", err)
		return
	}
	fmt.Printf("    history dump: %s (%d events)\n", path, r.HistEvents)
	if len(r.Violations) > 0 {
		fmt.Printf("    reproduce:    go run ./cmd/farm-chaos -replay %d\n", r.Seed)
		fmt.Printf("    inspect:      go run ./cmd/farm-histcheck %s\n", path)
	}
}

// printDivergences surfaces audit divergence localizations (corruption
// injections too, so a -corrupt run reads as a cause→effect story) under a
// run's summary line.
func printDivergences(r chaos.Result) {
	for _, e := range r.Timeline {
		if strings.Contains(e, "audit-divergence") || strings.Contains(e, "corrupt") {
			fmt.Printf("    %s\n", e)
		}
	}
}

// selectFaults zeroes every nemesis weight, then restores the default
// weight of each kind named in the comma-separated list.
func selectFaults(cfg *chaos.Config, list string) error {
	def := chaos.DefaultConfig()
	weights := map[string]*int{
		"kill":      &cfg.KillWeight,
		"cmkill":    &cfg.CMKillWeight,
		"partition": &cfg.PartitionWeight,
		"oneway":    &cfg.OneWayWeight,
		"flap":      &cfg.FlapWeight,
		"gray":      &cfg.GrayWeight,
		"power":     &cfg.PowerWeight,
	}
	defaults := map[string]int{
		"kill":      def.KillWeight,
		"cmkill":    def.CMKillWeight,
		"partition": def.PartitionWeight,
		"oneway":    def.OneWayWeight,
		"flap":      def.FlapWeight,
		"gray":      def.GrayWeight,
		"power":     def.PowerWeight,
	}
	for _, w := range weights {
		*w = 0
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		w, ok := weights[name]
		if !ok {
			return fmt.Errorf("farm-chaos: unknown fault kind %q (have kill,cmkill,partition,oneway,flap,gray,power)", name)
		}
		if *w == 0 {
			*w = defaults[name]
		}
	}
	return nil
}

// enabledKinds renders the active fault kinds for the banner.
func enabledKinds(cfg chaos.Config) string {
	var kinds []string
	for _, k := range []struct {
		name string
		w    int
	}{
		{"kill", cfg.KillWeight}, {"cmkill", cfg.CMKillWeight},
		{"partition", cfg.PartitionWeight}, {"oneway", cfg.OneWayWeight},
		{"flap", cfg.FlapWeight}, {"gray", cfg.GrayWeight}, {"power", cfg.PowerWeight},
	} {
		if k.w > 0 {
			kinds = append(kinds, k.name)
		}
	}
	return strings.Join(kinds, ",")
}

// replaySeed runs one seed twice, requires the runs to be byte-identical
// (the determinism contract every chaos bug report rests on), and prints
// the fault timeline of the run.
func replaySeed(cfg chaos.Config, seed uint64) {
	cfg.Seed = seed
	fmt.Printf("replaying seed %d twice (%v on %d machines, faults: %s)\n\n",
		seed, time.Duration(cfg.Duration), cfg.Machines, enabledKinds(cfg))
	a := chaos.Run(cfg)
	b := chaos.Run(cfg)
	if !reflect.DeepEqual(a, b) {
		fmt.Fprintf(os.Stderr, "NOT DETERMINISTIC: same seed, different runs\n  first:  %v\n  second: %v\n", a, b)
		os.Exit(1)
	}
	fmt.Println(a)
	saveHistory(a)
	fmt.Printf("\nfault timeline (%d episodes):\n", len(a.Timeline))
	for _, e := range a.Timeline {
		fmt.Printf("  %s\n", e)
	}
	fmt.Println("\nreplay identical: run is deterministic in its seed")
	if len(a.Violations) > 0 {
		os.Exit(1)
	}
}
