// farm-perf measures the simulator and the protocol hot path: host events
// per second, committed-transaction latency percentiles (virtual time),
// fabric messages and wire bytes per committed transaction, abort rate —
// each workload/scale point run under both coalescing policies. The
// result is the perf trajectory committed as BENCH_sim.json. With -check
// (on by default) the fresh measurement is compared against the committed
// baseline and the run fails on a >25% events/sec regression (wall-clock,
// so the gate is generous) or a >10% growth in committed-tx p99 or
// msgs/tx (deterministic, so the gate is tight and never fires on host
// noise) — transport and engine regressions are caught in CI rather than
// discovered when a 100-machine experiment stops fitting in a lunch
// break.
//
//	farm-perf                          # measure, check against BENCH_sim.json
//	farm-perf -update                  # measure and rewrite the baseline
//	farm-perf -out /tmp/b.json -check=false
//	farm-perf -threshold 0.2           # tolerate up to 20% regression
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"farm/internal/perf"
)

var (
	baselinePath = flag.String("baseline", "BENCH_sim.json", "committed baseline to compare against")
	outPath      = flag.String("out", "", "write the fresh report to this path (empty: don't write)")
	check        = flag.Bool("check", true, "fail on regression against the baseline")
	threshold    = flag.Float64("threshold", 0.25, "allowed fractional events/sec regression (wall-clock, noisy)")
	exactThresh  = flag.Float64("exact-threshold", 0.10, "allowed fractional growth of the deterministic metrics (tx p99, msgs/tx)")
	update       = flag.Bool("update", false, "rewrite the baseline with the fresh measurement")
)

// pct formats a fresh-vs-baseline delta as a signed percentage.
func pct(fresh, base float64) string {
	if base == 0 {
		return "    —"
	}
	return fmt.Sprintf("%+5.1f%%", (fresh-base)/base*100)
}

// printComparison renders the fresh measurement next to the committed
// baseline, one row per point, with the gated columns.
func printComparison(baseline, fresh *perf.Report) {
	fmt.Println("\nfresh vs committed baseline:")
	fmt.Printf("%-14s %12s %8s  %12s %8s  %10s %8s\n",
		"point", "ev/s", "Δ", "tx p99 µs", "Δ", "msgs/tx", "Δ")
	for _, b := range baseline.Points {
		g := fresh.Point(b.Name)
		if g == nil {
			fmt.Printf("%-14s  MISSING from fresh report\n", b.Name)
			continue
		}
		fmt.Printf("%-14s %12.0f %8s  %12.1f %8s  %10.2f %8s\n",
			b.Name,
			g.EventsPerSec, pct(g.EventsPerSec, b.EventsPerSec),
			g.TxP99Us, pct(g.TxP99Us, b.TxP99Us),
			g.MsgsPerTx, pct(g.MsgsPerTx, b.MsgsPerTx))
	}
}

// printAB renders the adaptive-vs-fixed policy pairs within one report:
// the latency the adaptive policy buys and the message-coalescing cost it
// pays, per workload and scale.
func printAB(r *perf.Report) {
	var pairs [][2]*perf.Point
	for i := range r.Points {
		p := &r.Points[i]
		if strings.HasSuffix(p.Name, perf.FixedSuffix) {
			continue
		}
		if f := r.Point(p.Name + perf.FixedSuffix); f != nil {
			pairs = append(pairs, [2]*perf.Point{p, f})
		}
	}
	if len(pairs) == 0 {
		return
	}
	fmt.Println("\nadaptive vs fixed coalescing (Δ = adaptive relative to fixed):")
	fmt.Printf("%-10s %14s %8s  %14s %8s  %12s %8s\n",
		"point", "p50 µs a/f", "Δ", "p99 µs a/f", "Δ", "msgs/tx a/f", "Δ")
	for _, pr := range pairs {
		a, f := pr[0], pr[1]
		fmt.Printf("%-10s %6.1f/%-7.1f %8s  %6.1f/%-7.1f %8s  %5.2f/%-6.2f %8s\n",
			a.Name,
			a.TxP50Us, f.TxP50Us, pct(a.TxP50Us, f.TxP50Us),
			a.TxP99Us, f.TxP99Us, pct(a.TxP99Us, f.TxP99Us),
			a.MsgsPerTx, f.MsgsPerTx, pct(a.MsgsPerTx, f.MsgsPerTx))
	}
}

func main() {
	flag.Parse()

	report, err := perf.RunAll(perf.DefaultSpecs(), func(line string) { fmt.Println(line) })
	if err != nil {
		fmt.Fprintln(os.Stderr, "farm-perf:", err)
		os.Exit(1)
	}
	fmt.Printf("peak machines simulated: %d; engine steady-state allocs/event: %.2f\n",
		report.PeakMachines, report.EngineAllocsPerEvent)
	printAB(report)

	if *outPath != "" {
		if err := report.WriteFile(*outPath); err != nil {
			fmt.Fprintln(os.Stderr, "farm-perf:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *outPath)
	}
	if *update {
		if err := report.WriteFile(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "farm-perf:", err)
			os.Exit(1)
		}
		fmt.Println("updated baseline", *baselinePath)
		return
	}
	if !*check {
		return
	}
	baseline, err := perf.LoadReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "farm-perf: no baseline:", err)
		fmt.Fprintln(os.Stderr, "run `farm-perf -update` to create one")
		os.Exit(1)
	}
	printComparison(baseline, report)
	if bad := perf.Compare(baseline, report, *threshold, *exactThresh); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", b)
		}
		os.Exit(1)
	}
	fmt.Printf("PASS: no point regressed more than %.0f%% ev/s or %.0f%% p99/msgs-per-tx vs %s\n",
		*threshold*100, *exactThresh*100, *baselinePath)
}
