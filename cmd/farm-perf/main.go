// farm-perf measures the simulator itself: host events per second,
// simulated transactions per wall-second, allocations per event, and the
// largest cluster simulated — the perf trajectory committed as
// BENCH_sim.json. With -check (on by default) the fresh measurement is
// compared against the committed baseline and the run fails on a >10%
// events/sec regression, so engine slowdowns are caught in CI rather than
// discovered when a 100-machine experiment stops fitting in a lunch break.
//
//	farm-perf                          # measure, check against BENCH_sim.json
//	farm-perf -update                  # measure and rewrite the baseline
//	farm-perf -out /tmp/b.json -check=false
//	farm-perf -threshold 0.2           # tolerate up to 20% regression
package main

import (
	"flag"
	"fmt"
	"os"

	"farm/internal/perf"
)

var (
	baselinePath = flag.String("baseline", "BENCH_sim.json", "committed baseline to compare against")
	outPath      = flag.String("out", "", "write the fresh report to this path (empty: don't write)")
	check        = flag.Bool("check", true, "fail on regression against the baseline")
	threshold    = flag.Float64("threshold", 0.10, "allowed fractional events/sec regression")
	update       = flag.Bool("update", false, "rewrite the baseline with the fresh measurement")
)

func main() {
	flag.Parse()

	report, err := perf.RunAll(perf.DefaultSpecs(), func(line string) { fmt.Println(line) })
	if err != nil {
		fmt.Fprintln(os.Stderr, "farm-perf:", err)
		os.Exit(1)
	}
	fmt.Printf("peak machines simulated: %d; engine steady-state allocs/event: %.2f\n",
		report.PeakMachines, report.EngineAllocsPerEvent)

	if *outPath != "" {
		if err := report.WriteFile(*outPath); err != nil {
			fmt.Fprintln(os.Stderr, "farm-perf:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *outPath)
	}
	if *update {
		if err := report.WriteFile(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "farm-perf:", err)
			os.Exit(1)
		}
		fmt.Println("updated baseline", *baselinePath)
		return
	}
	if !*check {
		return
	}
	baseline, err := perf.LoadReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "farm-perf: no baseline:", err)
		fmt.Fprintln(os.Stderr, "run `farm-perf -update` to create one")
		os.Exit(1)
	}
	if bad := perf.Compare(baseline, report, *threshold); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", b)
		}
		os.Exit(1)
	}
	fmt.Printf("PASS: no point regressed more than %.0f%% vs %s\n", *threshold*100, *baselinePath)
}
