// farm-loadgen drives one workload at one load point and prints
// throughput, latency percentiles and protocol counters — the tool for
// exploring the simulator's operating envelope by hand.
//
//	farm-loadgen -workload tatp -machines 9 -threads 8 -concurrency 4
//	farm-loadgen -workload tpcc -warehouses 36
//	farm-loadgen -workload kv -measure 100ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/sim"
	"farm/internal/tatp"
	"farm/internal/tpcc"
	"farm/internal/ycsb"
)

var (
	workload    = flag.String("workload", "tatp", "tatp | tpcc | kv")
	machines    = flag.Int("machines", 9, "cluster size")
	threads     = flag.Int("threads", 8, "active worker threads per machine")
	concurrency = flag.Int("concurrency", 4, "transactions in flight per thread")
	subscribers = flag.Uint64("subscribers", 2000, "TATP subscribers / KV keys")
	warehouses  = flag.Int("warehouses", 18, "TPC-C warehouses")
	warm        = flag.Duration("warm", 5*time.Millisecond, "warmup (simulated)")
	measure     = flag.Duration("measure", 50*time.Millisecond, "measurement window (simulated)")
	seed        = flag.Uint64("seed", 1, "simulation seed")
)

func main() {
	flag.Parse()
	opts := core.Options{NumMachines: *machines, Threads: *threads, Seed: *seed}
	c := core.New(opts)

	var op loadgen.Op
	var tpccW *tpcc.Workload
	switch *workload {
	case "tatp":
		w, err := tatp.Setup(c, *subscribers, 6)
		must(err)
		op = w.Mix()
	case "tpcc":
		w, err := tpcc.Setup(c, tpcc.DefaultConfig(*warehouses))
		must(err)
		w.MeasureFrom = c.Now() + sim.Time(warm.Nanoseconds())
		tpccW = w
		op = w.Mix()
	case "kv":
		w, err := ycsb.Setup(c, *subscribers, 6)
		must(err)
		op = w.LookupOp()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	all := make([]int, *machines)
	for i := range all {
		all[i] = i
	}
	g := loadgen.New(c, op)
	snap := c.Net.Counters.Snapshot()
	tput, _, _ := g.RunPoint(all, *threads, *concurrency,
		sim.Time(warm.Nanoseconds()), sim.Time(measure.Nanoseconds()))
	diff := c.Net.Counters.Diff(snap)

	fmt.Printf("workload=%s machines=%d threads=%d concurrency=%d (simulated %v + %v)\n",
		*workload, *machines, *threads, *concurrency, *warm, *measure)
	fmt.Printf("throughput: %.0f ops/s  (%.0f per machine)\n", tput, tput/float64(*machines))
	fmt.Printf("latency:    p50=%v p90=%v p99=%v max=%v\n",
		g.Latency.Median(), g.Latency.Percentile(90), g.Latency.P99(), g.Latency.Max())
	fmt.Printf("aborts:     %d of %d attempts (%.2f%%)\n", g.Aborted(), g.Aborted()+g.Committed(),
		100*float64(g.Aborted())/float64(g.Aborted()+g.Committed()))
	if tpccW != nil {
		fmt.Printf("new orders: %d committed, median %v\n", tpccW.NewOrders, tpccW.NewOrderLat.Median())
	}
	fmt.Printf("fabric:     rdma_read=%d rdma_write=%d local_read=%d local_write=%d msg=%d\n",
		diff["rdma_read"], diff["rdma_write"], diff["local_read"], diff["local_write"], diff["msg_send"])
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
