// farm-bench regenerates every table and figure of the paper's evaluation
// on the simulated cluster:
//
//	farm-bench -fig 1      NVRAM save energy vs SSD count (Figure 1)
//	farm-bench -fig 2      RDMA vs RPC read performance (Figure 2)
//	farm-bench -fig 4      commit protocol message-count analysis (§4)
//	farm-bench -fig 7      TATP throughput–latency curve (Figure 7)
//	farm-bench -fig 8      TPC-C throughput–latency curve (Figure 8)
//	farm-bench -fig kv     key-value lookup performance (§6.3)
//	farm-bench -fig 9      TATP failure timeline (Figure 9)
//	farm-bench -fig 10     TPC-C failure timeline (Figure 10)
//	farm-bench -fig 11     CM failure timeline (Figure 11)
//	farm-bench -fig 12     recovery-time distribution (Figure 12)
//	farm-bench -fig 13     correlated failure-domain kill (Figure 13)
//	farm-bench -fig 14     aggressive re-replication, TATP (Figure 14)
//	farm-bench -fig 15     aggressive re-replication, TPC-C (Figure 15)
//	farm-bench -fig 16     lease-manager false positives (Figure 16)
//	farm-bench -fig all    everything
//
// All times are simulated; shapes, ratios and orderings are the
// reproduction targets (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"farm/internal/baseline"
	"farm/internal/exper"
	"farm/internal/sim"
)

var (
	fig      = flag.String("fig", "all", "figure to regenerate (1,2,4,7,8,kv,9,10,11,12,13,14,15,16,all)")
	machines = flag.Int("machines", 9, "cluster size")
	threads  = flag.Int("threads", 8, "worker threads per machine")
	subs     = flag.Uint64("subscribers", 2000, "TATP subscribers")
	whs      = flag.Int("warehouses", 18, "TPC-C warehouses")
	runs     = flag.Int("runs", 10, "runs for the Figure 12 distribution")
	long     = flag.Bool("long", false, "longer measurement windows")
)

func scale() exper.Scale {
	sc := exper.DefaultScale()
	sc.Machines = *machines
	sc.Threads = *threads
	sc.Subscribers = *subs
	sc.Warehouses = *whs
	return sc
}

func window() (sim.Time, sim.Time) {
	if *long {
		return 10 * sim.Millisecond, 100 * sim.Millisecond
	}
	return 5 * sim.Millisecond, 30 * sim.Millisecond
}

func main() {
	flag.Parse()
	run := func(name string, fn func()) {
		if *fig == name || *fig == "all" {
			fmt.Printf("==== Figure %s ====\n", name)
			fn()
			fmt.Println()
		}
	}
	run("1", fig1)
	run("2", fig2)
	run("4", fig4)
	run("7", fig7)
	run("8", fig8)
	run("kv", figKV)
	run("9", fig9)
	run("10", fig10)
	run("11", fig11)
	run("12", fig12)
	run("13", fig13)
	run("14", fig14)
	run("15", fig15)
	run("16", fig16)
	run("ablations", ablations)
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "unexpected arguments")
		os.Exit(2)
	}
}

func ablations() {
	sc := scale()
	warm, meas := window()
	fmt.Println("validation transport (tr threshold, §4):")
	fmt.Print(exper.FormatAblation(exper.AblationValidation(sc, warm, meas)))
	fmt.Println("\nTPC-C client/warehouse co-partitioning (§6.2):")
	fmt.Print(exper.FormatAblation(exper.AblationLocality(sc, warm, meas)))
	fmt.Println("\nlease duration vs detection delay (§5.1):")
	fmt.Print(exper.FormatAblation(exper.AblationLeaseDuration(sc,
		[]sim.Time{2 * sim.Millisecond, 5 * sim.Millisecond, 10 * sim.Millisecond, 50 * sim.Millisecond})))
	fmt.Println("\ndata-recovery pacing (§5.4, Figures 9 vs 14):")
	fmt.Print(exper.FormatAblation(exper.AblationRecoveryPacing(sc)))
}

func fig1() {
	fmt.Println("energy to copy one GB from DRAM to SSD (paper: ~110 J/GB at 1 SSD, falling)")
	fmt.Printf("%6s %12s %12s %14s\n", "SSDs", "J/GB", "$/GB", "save 256 GB")
	for _, r := range exper.Figure1() {
		fmt.Printf("%6d %12.1f %12.3f %14v\n", r.SSDs, r.JoulesPerGB, r.CostPerGB, r.SaveTime256)
	}
}

func fig2() {
	fmt.Println("per-machine read performance, ops/µs/machine (paper: RDMA ≈ 4× RPC, both CPU bound)")
	dur := 3 * sim.Millisecond
	if *long {
		dur = 10 * sim.Millisecond
	}
	fmt.Printf("%8s %10s %10s %8s\n", "size", "RDMA", "RPC", "ratio")
	for _, r := range exper.Figure2(*machines, 30, dur) {
		fmt.Printf("%8d %10.2f %10.2f %8.2f\n", r.Size, r.RDMA, r.RPC, r.RDMA/r.RPC)
	}
}

func fig4() {
	fmt.Println("commit cost analysis (§4): FaRM Pw(f+3) one-sided writes vs Spanner 4P(2f+1) messages")
	fmt.Printf("%4s %4s %14s %18s %18s\n", "P", "f", "FaRM writes", "Spanner formula", "Spanner measured")
	cfg := baseline.DefaultSpanner()
	for _, p := range []int{1, 2, 3} {
		meas := baseline.MeasureSpannerCommit(cfg, p)
		fmt.Printf("%4d %4d %14d %18d %18d\n",
			p, cfg.F,
			baseline.FaRMWritesFormula(p, cfg.F),
			baseline.SpannerMessagesFormula(p, cfg.F),
			meas.Messages)
	}
	fmt.Println("\nNSDI'14 → SOSP'15 protocol message reduction (paper: up to 44% fewer):")
	for _, pw := range []int{1, 2, 3} {
		old := baseline.NSDI14MessagesFormula(pw, 2)
		niu := baseline.FaRMWritesFormula(pw, 2)
		fmt.Printf("  Pw=%d f=2: %d → %d (%.0f%% fewer)\n", pw, old, niu, 100*float64(old-niu)/float64(old))
	}
}

func fig7() {
	warm, meas := window()
	fmt.Printf("TATP throughput–latency, %d machines (paper: 140 M/s on 90 machines; 1.55 M/s/machine)\n", *machines)
	fmt.Print(exper.FormatCurve(exper.Figure7(scale(), exper.LoadPoints(*threads), warm, meas)))
}

func fig8() {
	warm, meas := window()
	fmt.Printf("TPC-C new-order throughput–latency, %d machines (paper: 4.5 M/s; median 808 µs)\n", *machines)
	// TPC-C's curve is swept with ≥1 warehouse per driver (§6.2's ratio);
	// higher concurrencies with a capped database melt under OCC
	// contention, which is a scale artifact, not a protocol property.
	points := [][2]int{{2, 1}, {4, 1}, {*threads, 1}, {*threads, 2}}
	fmt.Print(exper.FormatCurve(exper.Figure8(scale(), points, warm, meas)))
}

func figKV() {
	warm, meas := window()
	p := exper.KVReadPerformance(scale(), warm, meas)
	fmt.Println("key-value lookups, 16 B keys / 32 B values, uniform (paper: 790 M/s; 23 µs median; 73 µs p99)")
	fmt.Print(exper.FormatCurve([]exper.CurvePoint{p}))
}

func failureRun(kind exper.FailureKind, workload string, aggressive bool) {
	spec := exper.DefaultRecoverySpec(scale())
	spec.Kind = kind
	spec.Workload = workload
	spec.Aggressive = aggressive
	if *long {
		spec.RunFor = 2 * sim.Second
	}
	if kind == exper.KillCM {
		spec.RunFor = spec.RunFor * 2
	}
	run := exper.RunFailure(spec)
	fmt.Print(run)
}

func fig9() {
	fmt.Println("TATP failure timeline (paper: back to peak < 50 ms; paced data recovery)")
	failureRun(exper.KillBackup, "tatp", false)
}

func fig10() {
	fmt.Println("TPC-C failure timeline (paper: most throughput back < 50 ms; slower data recovery)")
	failureRun(exper.KillBackup, "tpcc", false)
}

func fig11() {
	fmt.Println("CM failure timeline (paper: ~110 ms, slower than non-CM due to CM state rebuild)")
	failureRun(exper.KillCM, "tatp", false)
}

func fig12() {
	fmt.Printf("recovery-time distribution over %d runs (paper: median ≈ 50 ms, all < 200 ms)\n", *runs)
	d := exper.RecoveryDistribution(scale(), *runs, 10*sim.Millisecond)
	fmt.Printf("  runs: %v\n", d)
	fmt.Printf("  p50=%.0fms p70=%.0fms p90=%.0fms max=%.0fms\n",
		exper.Percentile(d, 50), exper.Percentile(d, 70), exper.Percentile(d, 90), exper.Percentile(d, 100))
}

func fig13() {
	fmt.Println("correlated failure: killing a whole failure domain (paper: peak back < 400 ms)")
	failureRun(exper.KillDomain, "tatp", false)
}

func fig14() {
	fmt.Println("TATP with aggressive re-replication (paper: data recovered ~1.1 s but throughput dips)")
	failureRun(exper.KillBackup, "tatp", true)
}

func fig15() {
	fmt.Println("TPC-C with aggressive re-replication (paper: 4× faster, no throughput impact)")
	failureRun(exper.KillBackup, "tpcc", true)
}

func fig16() {
	fmt.Println("lease false positives, normalized to a 10-minute run (paper Figure 16)")
	durations := []sim.Time{1 * sim.Millisecond, 2 * sim.Millisecond, 3 * sim.Millisecond,
		5 * sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond, 1000 * sim.Millisecond}
	runFor := 1 * sim.Second
	if *long {
		runFor = 5 * sim.Second
	}
	sc := scale()
	sc.Machines = 6
	sc.Threads = 4
	fmt.Print(exper.FormatFig16(exper.Figure16(sc, durations, runFor)))
}
