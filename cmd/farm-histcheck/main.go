// farm-histcheck runs the offline strict-serializability checker over
// canonical transaction-history dumps written by farm-chaos (-histdump, or
// automatically by a violating run). It rebuilds the per-object version
// order, the transaction dependency graph (ww/wr/rw plus real-time edges)
// and reports every violation — dependency cycles with a minimal witness,
// dirty reads, duplicate version installs — plus the opacity measurement
// over aborted transactions.
//
//	farm-histcheck chaos-failures/seed-42.history.json
//	farm-histcheck -q dumps/*.history.json
//
// Exit status 1 if any dump fails to load or fails the checker.
package main

import (
	"flag"
	"fmt"
	"os"

	"farm/internal/history"
)

var quiet = flag.Bool("q", false, "print only failing files and their violations")

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: farm-histcheck [-q] DUMP.json ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "farm-histcheck: %v\n", err)
			failed = true
			continue
		}
		h, err := history.Load(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "farm-histcheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		rep := history.Check(h)
		if !*quiet || !rep.Ok() {
			fmt.Printf("%s: %s\n", path, rep)
		}
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
		}
		if !rep.Ok() {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
