// farm-recovery runs a scripted failure scenario and prints a detailed
// recovery report: milestones, per-millisecond survivor throughput, and
// the re-replication curve. It is the CLI twin of examples/recovery with
// all knobs exposed.
//
//	farm-recovery -victim cm -lease 5ms
//	farm-recovery -victim domain -machines 9
//	farm-recovery -workload tpcc -aggressive
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"farm/internal/exper"
	"farm/internal/sim"
)

var (
	machines   = flag.Int("machines", 9, "cluster size")
	threads    = flag.Int("threads", 8, "worker threads per machine")
	workload   = flag.String("workload", "tatp", "tatp | tpcc")
	victim     = flag.String("victim", "backup", "backup | cm | domain")
	lease      = flag.Duration("lease", 10*time.Millisecond, "lease duration")
	warm       = flag.Duration("warm", 40*time.Millisecond, "load before the kill")
	runFor     = flag.Duration("run", 600*time.Millisecond, "time after the kill")
	aggressive = flag.Bool("aggressive", false, "aggressive data recovery (4×32 KB)")
	plot       = flag.Bool("plot", true, "print ASCII throughput timeline")
)

func main() {
	flag.Parse()
	sc := exper.DefaultScale()
	sc.Machines = *machines
	sc.Threads = *threads

	spec := exper.DefaultRecoverySpec(sc)
	spec.Workload = *workload
	spec.Lease = sim.Time(lease.Nanoseconds())
	spec.WarmFor = sim.Time(warm.Nanoseconds())
	spec.RunFor = sim.Time(runFor.Nanoseconds())
	spec.Aggressive = *aggressive
	switch *victim {
	case "backup":
		spec.Kind = exper.KillBackup
	case "cm":
		spec.Kind = exper.KillCM
	case "domain":
		spec.Kind = exper.KillDomain
	default:
		fmt.Fprintf(os.Stderr, "unknown victim %q\n", *victim)
		os.Exit(2)
	}

	fmt.Printf("workload=%s victim=%s lease=%v machines=%d threads=%d aggressive=%v\n\n",
		*workload, *victim, *lease, *machines, *threads, *aggressive)
	run := exper.RunFailure(spec)
	fmt.Print(run)

	if *plot {
		fmt.Println("\nthroughput (1 ms buckets, ±50 ms around the kill):")
		pts := run.TimelineAround(50 * sim.Millisecond)
		var peak float64
		for _, p := range pts {
			if p.Ops > peak {
				peak = p.Ops
			}
		}
		if peak == 0 {
			peak = 1
		}
		killMs := int64(run.KillAt / sim.Millisecond)
		for _, p := range pts {
			marker := " "
			if p.AtMs == killMs {
				marker = "×"
			}
			fmt.Printf("%6dms %s|%s\n", p.AtMs, marker, strings.Repeat("#", int(p.Ops/peak*60)))
		}
	}
}
