// farm-trace runs a deterministic workload with causality tracing enabled
// and writes the merged Chrome trace_event JSON (open it in
// chrome://tracing or https://ui.perfetto.dev). The same seed produces the
// same file byte for byte, so a trace is a replayable artifact, not a
// sample. A phase-breakdown/critical-path report and, for runs that
// reconfigure, a Figure-9-style recovery timeline print to stdout.
//
//	farm-trace -seed 1 -workload recovery -out recovery.json
//	farm-trace -workload bank -sample 8 -out bank.json
//	farm-trace -workload chaos -out chaos.json
package main

import (
	"flag"
	"fmt"
	"os"

	"farm/internal/chaos"
	"farm/internal/exper"
	"farm/internal/sim"
	"farm/internal/trace"
)

var (
	seed     = flag.Uint64("seed", 1, "simulation seed (same seed → byte-identical JSON)")
	workload = flag.String("workload", "recovery", "workload: bank (fault-free transfers), recovery (TATP + one kill), chaos (randomized nemesis)")
	out      = flag.String("out", "farm-trace.json", "output path for the Chrome trace_event JSON")
	sample   = flag.Int("sample", 1, "trace 1 of every N transactions (recovery spans are always traced)")
	duration = flag.Duration("duration", 0, "virtual run time (0 = workload default)")
	machines = flag.Int("machines", 6, "cluster size")
	check    = flag.Bool("check", true, "validate the export against the trace_event schema before writing")
)

// recoverySteps are the §5 recovery span/event names a traced failure run
// must contain — suspect through re-replication, the Figure 9 milestones.
var recoverySteps = []string{
	"suspect", "probe", "zookeeper", "new-config", "config-commit",
	"drain", "lock-recovery", "vote-decide", "re-replication",
}

// commitPhases are the §4 commit-protocol span names.
var commitPhases = []string{"tx", "LOCK", "VALIDATE", "COMMIT-BACKUP", "COMMIT-PRIMARY", "TRUNCATE"}

func main() {
	flag.Parse()
	topts := trace.Options{Enabled: true, SampleN: 1, SampleM: *sample}

	var data []byte
	var report string
	var required []string
	switch *workload {
	case "bank":
		cfg := chaos.DefaultConfig()
		cfg.Seed = *seed
		cfg.Machines = *machines
		cfg.Trace = topts
		// No nemesis: a clean run whose trace is pure commit pipeline.
		cfg.KillWeight, cfg.CMKillWeight, cfg.PartitionWeight = 0, 0, 0
		cfg.OneWayWeight, cfg.FlapWeight = 0, 0
		cfg.GrayWeight, cfg.PowerWeight = 0, 0
		if *duration > 0 {
			cfg.Duration = sim.Time(duration.Nanoseconds())
		} else {
			cfg.Duration = 400 * sim.Millisecond
		}
		res := chaos.Run(cfg)
		if len(res.Violations) > 0 {
			fail("bank run violated invariants: %v", res.Violations)
		}
		fmt.Printf("bank: %d commits, %d aborts on %d machines\n", res.Commits, res.Aborts, cfg.Machines)
		data = res.TraceJSON
		required = commitPhases

	case "recovery":
		sc := exper.DefaultScale()
		sc.Machines = *machines
		sc.Seed = *seed
		spec := exper.DefaultRecoverySpec(sc)
		spec.Trace = topts
		if *duration > 0 {
			spec.RunFor = sim.Time(duration.Nanoseconds())
		}
		run := exper.RunFailure(spec)
		fmt.Print(run)
		data = run.TraceJSON
		report = run.TraceReport
		// The full Figure 9 story: every commit phase and every §5 step.
		required = append(append([]string{}, commitPhases...), recoverySteps...)

	case "chaos":
		cfg := chaos.DefaultConfig()
		cfg.Seed = *seed
		cfg.Machines = *machines
		cfg.Trace = topts
		if *duration > 0 {
			cfg.Duration = sim.Time(duration.Nanoseconds())
		}
		res := chaos.Run(cfg)
		fmt.Println(res)
		if len(res.Violations) > 0 {
			fail("chaos run violated invariants: %v", res.Violations)
		}
		data = res.TraceJSON
		required = commitPhases

	default:
		fail("unknown workload %q (have bank, recovery, chaos)", *workload)
	}

	if len(data) == 0 {
		fail("workload produced no trace")
	}
	if *check {
		if err := trace.Validate(data, required); err != nil {
			fail("export failed schema validation: %v", err)
		}
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail("write %s: %v", *out, err)
	}
	fmt.Printf("\nwrote %d bytes of trace_event JSON to %s (load in chrome://tracing)\n", len(data), *out)
	if report != "" {
		fmt.Println()
		fmt.Print(report)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "farm-trace: "+format+"\n", args...)
	os.Exit(1)
}
