package farm

import (
	"errors"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	c := NewCluster(Options{NumMachines: 5, Seed: 3})
	c.MustCreateRegions(1)
	m := c.Machine(1)

	var addr Addr
	err := c.Sync(func(done func(error)) {
		tx := m.Begin(0)
		tx.Alloc(8, []byte("8 bytes!"), nil, func(a Addr, err error) {
			if err != nil {
				done(err)
				return
			}
			addr = a
			tx.Commit(done)
		})
	})
	if err != nil {
		t.Fatalf("alloc+commit: %v", err)
	}

	var got []byte
	err = c.Sync(func(done func(error)) {
		c.Machine(3).LockFreeRead(0, addr, 8, func(data []byte, err error) {
			got = data
			done(err)
		})
	})
	if err != nil || string(got) != "8 bytes!" {
		t.Fatalf("lock-free read: %q %v", got, err)
	}
}

func TestPublicAPIConflictSurface(t *testing.T) {
	c := NewCluster(Options{NumMachines: 5, Seed: 4})
	c.MustCreateRegions(1)
	m := c.Machine(0)

	var addr Addr
	if err := c.Sync(func(done func(error)) {
		tx := m.Begin(0)
		tx.Alloc(4, []byte("init"), nil, func(a Addr, err error) {
			addr = a
			tx.Commit(done)
		})
	}); err != nil {
		t.Fatal(err)
	}

	// Two read-modify-writes racing: exactly one ErrConflict.
	errs := make(chan error, 2) // buffered; filled synchronously by sim
	launch := func(mi int) {
		tx := c.Machine(mi).Begin(0)
		tx.Read(addr, 4, func(_ []byte, err error) {
			if err != nil {
				errs <- err
				return
			}
			tx.Write(addr, []byte("mine"))
			tx.Commit(func(err error) { errs <- err })
		})
	}
	launch(1)
	launch(2)
	if !c.WaitFor(Second, func() bool { return len(errs) == 2 }) {
		t.Fatal("transactions did not finish")
	}
	var conflicts, oks int
	for i := 0; i < 2; i++ {
		switch err := <-errs; {
		case err == nil:
			oks++
		case errors.Is(err, ErrConflict):
			conflicts++
		default:
			t.Fatalf("unexpected: %v", err)
		}
	}
	if oks != 1 || conflicts != 1 {
		t.Fatalf("oks=%d conflicts=%d", oks, conflicts)
	}
}

func TestPublicAPIFailureInjection(t *testing.T) {
	c := NewCluster(Options{NumMachines: 6, Seed: 5, LeaseDuration: 5 * Millisecond})
	c.MustCreateRegions(2)
	m := c.Machine(1)

	var addr Addr
	if err := c.Sync(func(done func(error)) {
		tx := m.Begin(0)
		tx.Alloc(8, []byte("durable!"), nil, func(a Addr, err error) {
			addr = a
			tx.Commit(done)
		})
	}); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * Millisecond)

	c.Kill(4)
	c.RunFor(300 * Millisecond)

	var got []byte
	if err := c.Sync(func(done func(error)) {
		tx := c.Machine(2).Begin(0)
		tx.Read(addr, 8, func(data []byte, err error) {
			got = data
			done(err)
		})
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable!" {
		t.Fatalf("after failure: %q", got)
	}
	if len(c.AliveMachines()) != 5 {
		t.Fatalf("alive: %v", c.AliveMachines())
	}
}
