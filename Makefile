# Convenience targets; everything is stdlib-only `go` commands.

.PHONY: check test bench figures chaos examples vet race

# Default CI gate: static checks, the full suite, then the race detector.
check: vet test race

test:
	go test ./...

short:
	go test -short ./...

bench:
	go test -bench . -benchmem -run XXX .

figures:
	go run ./cmd/farm-bench -fig all

chaos:
	go run ./cmd/farm-chaos -runs 5

examples:
	go run ./examples/quickstart
	go run ./examples/bank
	go run ./examples/powerfail
	go run ./examples/recovery
	go run ./examples/tatp

vet:
	go vet ./...
	gofmt -l .

race:
	go test -race ./...
