# Convenience targets; everything is stdlib-only `go` commands.

.PHONY: check test bench perf figures chaos examples vet race trace

# Default local gate: static checks, the full suite (including the
# 100-machine scale run in internal/perf), the race detector, a
# multi-seed nemesis campaign with every fault kind enabled, then traced
# smoke runs whose exports are schema-validated. CI runs the same
# targets split across parallel jobs (check / chaos / perf) in
# .github/workflows/check.yml.
check: vet test race chaos trace

test:
	go test ./...

short:
	go test -short ./...

bench:
	go test -bench . -benchmem -run XXX ./internal/sim ./internal/fabric .

# Simulator performance gate: re-measure the scale suite (TATP and bank
# at 9, 50 and 100 machines, each under both coalescing policies) and
# compare against the committed BENCH_sim.json — fails on a >25%
# events/sec regression (wall-clock, noisy, hence generous), a >10%
# growth in committed-tx p99 or msgs/tx (both deterministic, so those
# gates never fire on host noise), or any steady-state engine
# allocation. Prints the fresh-vs-committed and
# adaptive-vs-fixed tables; the fresh report lands in
# BENCH_sim.fresh.json (gitignored; CI uploads it on failure). Refresh
# the baseline after a deliberate change with
# `go run ./cmd/farm-perf -update`.
perf:
	go run ./cmd/farm-perf -out BENCH_sim.fresh.json

figures:
	go run ./cmd/farm-bench -fig all

# Nemesis campaign: 20 seeds of mixed faults with state-integrity audits
# after every heal and the strict-serializability history checker judging
# every run, an injected-corruption run proving detect→localize→repair,
# plus a determinism replay. The -bug-validation run breaks OCC read
# validation on purpose: it MUST fail (hence the `!`), and farm-histcheck
# must independently convict its history dump — the checker's teeth are
# themselves under test. Narrow with -faults (e.g. `go run
# ./cmd/farm-chaos -faults oneway,gray`) and reproduce any reported seed
# with `-replay <seed>`; violating runs leave their history dumps in
# ./chaos-failures.
chaos:
	go run ./cmd/farm-chaos -runs 20
	go run ./cmd/farm-chaos -runs 1 -corrupt
	go run ./cmd/farm-chaos -replay 1
	! go run ./cmd/farm-chaos -runs 1 -bug-validation -histdump /tmp/farm-bugval
	! go run ./cmd/farm-histcheck /tmp/farm-bugval/seed-1.history.json
	go test -race -run TestRunIsDeterministic ./internal/chaos

# Traced smoke runs: a fault-free bank run and a Figure 9 recovery run,
# each exported as Chrome trace_event JSON and schema-validated by the
# tool itself (-check, on by default) — the recovery run must contain
# every commit phase and every §5 recovery step.
trace:
	go run ./cmd/farm-trace -seed 1 -workload bank -sample 8 -out /tmp/farm-trace-bank.json
	go run ./cmd/farm-trace -seed 1 -workload recovery -out /tmp/farm-trace-recovery.json

examples:
	go run ./examples/quickstart
	go run ./examples/bank
	go run ./examples/powerfail
	go run ./examples/recovery
	go run ./examples/tatp

vet:
	go vet ./...
	gofmt -l .

# The chaos campaign under the race detector legitimately needs more
# than go test's default 10m package budget.
race:
	go test -race -timeout 30m ./...
