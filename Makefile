# Convenience targets; everything is stdlib-only `go` commands.

.PHONY: check test bench figures chaos examples vet race trace

# Default CI gate: static checks, the full suite, the race detector, a
# multi-seed nemesis campaign with every fault kind enabled, then traced
# smoke runs whose exports are schema-validated.
check: vet test race chaos trace

test:
	go test ./...

short:
	go test -short ./...

bench:
	go test -bench . -benchmem -run XXX .

figures:
	go run ./cmd/farm-bench -fig all

# Nemesis campaign: 20 seeds of mixed faults with state-integrity audits
# after every heal, an injected-corruption run proving detect→localize→
# repair, plus a determinism replay. Narrow with -faults (e.g.
# `go run ./cmd/farm-chaos -faults oneway,gray`) and reproduce any
# reported seed with `-replay <seed>`.
chaos:
	go run ./cmd/farm-chaos -runs 20
	go run ./cmd/farm-chaos -runs 1 -corrupt
	go run ./cmd/farm-chaos -replay 1
	go test -race -run TestRunIsDeterministic ./internal/chaos

# Traced smoke runs: a fault-free bank run and a Figure 9 recovery run,
# each exported as Chrome trace_event JSON and schema-validated by the
# tool itself (-check, on by default) — the recovery run must contain
# every commit phase and every §5 recovery step.
trace:
	go run ./cmd/farm-trace -seed 1 -workload bank -sample 8 -out /tmp/farm-trace-bank.json
	go run ./cmd/farm-trace -seed 1 -workload recovery -out /tmp/farm-trace-recovery.json

examples:
	go run ./examples/quickstart
	go run ./examples/bank
	go run ./examples/powerfail
	go run ./examples/recovery
	go run ./examples/tatp

vet:
	go vet ./...
	gofmt -l .

race:
	go test -race ./...
