# Convenience targets; everything is stdlib-only `go` commands.

.PHONY: check test bench figures chaos examples vet race

# Default CI gate: static checks, the full suite, the race detector, then
# a multi-seed nemesis campaign with every fault kind enabled.
check: vet test race chaos

test:
	go test ./...

short:
	go test -short ./...

bench:
	go test -bench . -benchmem -run XXX .

figures:
	go run ./cmd/farm-bench -fig all

# Nemesis campaign: 20 seeds of mixed faults plus a determinism replay.
# Narrow with -faults (e.g. `go run ./cmd/farm-chaos -faults oneway,gray`)
# and reproduce any reported seed with `-replay <seed>`.
chaos:
	go run ./cmd/farm-chaos -runs 20
	go run ./cmd/farm-chaos -replay 1
	go test -race -run TestRunIsDeterministic ./internal/chaos

examples:
	go run ./examples/quickstart
	go run ./examples/bank
	go run ./examples/powerfail
	go run ./examples/recovery
	go run ./examples/tatp

vet:
	go vet ./...
	gofmt -l .

race:
	go test -race ./...
