// Package farm is a from-scratch reproduction of FaRM, the main-memory
// distributed computing platform of "No compromises: distributed
// transactions with consistency, availability, and performance"
// (Dragojević et al., SOSP 2015).
//
// It provides strictly serializable distributed ACID transactions over a
// global address space of replicated memory regions, with the paper's
// four-phase optimistic commit protocol (LOCK, VALIDATE, COMMIT-BACKUP,
// COMMIT-PRIMARY + lazy TRUNCATE), lease-based failure detection, precise-
// membership reconfiguration, and fast transaction/data/allocator
// recovery. The hardware substrate — RDMA NICs, non-volatile DRAM, a
// cluster of machines — is simulated by a deterministic discrete-event
// engine, so the whole distributed system runs in one process with a
// virtual clock (see DESIGN.md for the substitution argument).
//
// Quick start:
//
//	c := farm.NewCluster(farm.Options{NumMachines: 5})
//	c.MustCreateRegions(1)
//	m := c.Machine(0)
//	tx := m.Begin(0)
//	tx.Alloc(8, []byte("payload!"), nil, func(addr farm.Addr, err error) {
//	    tx.Commit(func(err error) { ... })
//	})
//	c.RunFor(farm.Millisecond)
//
// Everything is event-driven: operations take callbacks and the simulation
// advances only when the caller runs the engine (RunFor / RunUntil /
// WaitFor). One OS thread runs everything; there is no real concurrency to
// synchronize with.
package farm

import (
	"farm/internal/core"
	"farm/internal/proto"
	"farm/internal/sim"
)

// Re-exported core types. Aliases keep the public API thin while the
// implementation lives in internal packages.
type (
	// Options configures a cluster (machine count, replication factor,
	// lease duration, hardware model constants, ...).
	Options = core.Options
	// Machine is one FaRM machine: worker threads, hosted region replicas,
	// and a transaction coordinator.
	Machine = core.Machine
	// Tx is a transaction; Begin on a Machine creates one.
	Tx = core.Tx
	// Addr is a global address: (region, offset).
	Addr = proto.Addr
	// Time is a virtual duration/timestamp in nanoseconds.
	Time = sim.Time
	// LeaseVariant selects the lease-manager implementation (§6.5).
	LeaseVariant = core.LeaseVariant
	// TraceEvent is a recovery milestone (suspect, config-commit, ...).
	TraceEvent = core.TraceEvent
	// Client is an external (non-member) endpoint that accesses FaRM with
	// messages; its requests are lease-gated and blocked during
	// reconfigurations (§5.2).
	Client = core.Client
)

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Lease-manager variants (Figure 16).
const (
	LeaseRPC         = core.LeaseRPC
	LeaseUD          = core.LeaseUD
	LeaseUDThread    = core.LeaseUDThread
	LeaseUDThreadPri = core.LeaseUDThreadPri
)

// Transaction and platform errors.
var (
	ErrConflict    = core.ErrConflict
	ErrAborted     = core.ErrAborted
	ErrNoSpace     = core.ErrNoSpace
	ErrUnavailable = core.ErrUnavailable
	ErrReadLocked  = core.ErrReadLocked
)

// DefaultOptions returns the scaled-down simulation defaults (9 machines,
// 3-way replication, 8 worker threads, 10 ms leases).
func DefaultOptions() Options { return core.DefaultOptions() }

// Cluster is a FaRM instance plus convenience helpers for driving the
// simulation.
type Cluster struct {
	*core.Cluster
}

// NewCluster boots a cluster: configuration 1 holds all machines with
// machine 0 as configuration manager, recorded in the (simulated)
// Zookeeper; leases are armed.
func NewCluster(opts Options) *Cluster {
	return &Cluster{Cluster: core.New(opts)}
}

// MustCreateRegions allocates n regions through the CM and panics on
// failure (bootstrap helper).
func (c *Cluster) MustCreateRegions(n int) []uint32 {
	regions, err := c.CreateRegions(0, n, 0)
	if err != nil {
		panic(err)
	}
	return regions
}

// WaitFor runs the simulation until pred returns true or the timeout
// elapses; it reports whether pred was satisfied.
func (c *Cluster) WaitFor(timeout Time, pred func() bool) bool {
	deadline := c.Eng.Now() + timeout
	for !pred() && c.Eng.Now() < deadline {
		if !c.Eng.Step() {
			break
		}
	}
	return pred()
}

// Sync runs fn and drives the simulation until its completion callback has
// fired, returning the error it was given. It is the blocking-style bridge
// used by examples and tests:
//
//	err := c.Sync(func(done func(error)) {
//	    tx := m.Begin(0)
//	    tx.Read(addr, 8, func(_ []byte, err error) {
//	        if err != nil { done(err); return }
//	        tx.Commit(done)
//	    })
//	})
func (c *Cluster) Sync(fn func(done func(error))) error {
	finished := false
	var result error
	fn(func(err error) {
		finished = true
		result = err
	})
	if !c.WaitFor(10*Second, func() bool { return finished }) {
		return ErrUnavailable
	}
	return result
}
