// Powerfail: demonstrate the paper's strongest durability claim (§2.1,
// §5): "durability for all committed transactions even if the entire
// cluster fails or loses power: all committed state can be recovered from
// regions and logs stored in non-volatile DRAM". The distributed UPS saves
// every machine's memory to SSD; on restoration the cluster reconfigures,
// recovers every in-flight transaction by vote, and serves committed data.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"farm"
)

func main() {
	c := farm.NewCluster(farm.Options{
		NumMachines:   6,
		Seed:          2026,
		LeaseDuration: 5 * farm.Millisecond,
	})
	c.MustCreateRegions(3)
	m := c.Machine(1)

	// Commit a ledger of values.
	const entries = 20
	addrs := make([]farm.Addr, entries)
	for i := range addrs {
		i := i
		err := c.Sync(func(done func(error)) {
			tx := c.Machine(i % 6).Begin(0)
			tx.Alloc(8, u64b(uint64(1000+i)), nil, func(a farm.Addr, err error) {
				if err != nil {
					done(err)
					return
				}
				addrs[i] = a
				tx.Commit(done)
			})
		})
		if err != nil {
			log.Fatalf("commit %d: %v", i, err)
		}
	}
	fmt.Printf("committed %d ledger entries across the cluster\n", entries)

	// Leave transactions in flight when the lights go out.
	inFlight := 0
	for k := 0; k < 8; k++ {
		k := k
		tx := m.Begin(k % m.Threads())
		tx.Read(addrs[k], 8, func(_ []byte, err error) {
			if err != nil {
				return
			}
			tx.Write(addrs[k], u64b(uint64(5000+k)))
			tx.Commit(func(err error) {
				if err == nil {
					inFlight++ // these may or may not land; both are legal
				}
			})
		})
	}
	c.RunFor(20 * farm.Microsecond) // cut power mid-commit

	fmt.Printf("t=%v: POWER FAILURE (UPS saves all memory to SSD)\n", c.Now())
	c.PowerFailure()
	c.RunFor(150 * farm.Millisecond)
	fmt.Printf("t=%v: power restored; recovery reconfiguration begins\n", c.Now())
	c.RestorePower()
	c.RunFor(500 * farm.Millisecond)

	// Audit: every committed entry is served; in-flight ones resolved
	// atomically (old or new value, never garbage).
	ok := 0
	for i, a := range addrs {
		var got uint64
		err := c.Sync(func(done func(error)) {
			tx := c.Machine((i + 2) % 6).Begin(1)
			tx.Read(a, 8, func(data []byte, err error) {
				if err == nil {
					got = binary.LittleEndian.Uint64(data)
				}
				done(err)
			})
		})
		if err != nil {
			log.Fatalf("entry %d unreadable after power cycle: %v", i, err)
		}
		if got == uint64(1000+i) || (i < 8 && got == uint64(5000+i)) {
			ok++
		} else {
			log.Fatalf("entry %d corrupted: %d", i, got)
		}
	}
	fmt.Printf("all %d entries intact after the power cycle (reconfigurations: %d)\n",
		ok, c.Machine(0).ConfigID()-1)
	fmt.Println("in-flight transactions were resolved by the vote/decide protocol (§5.3)")
}

func u64b(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}
