// Recovery: reproduce the Figure 9 experiment interactively — run TATP,
// kill a machine, and watch the throughput timeline, the recovery
// milestones (suspect → probe → Zookeeper → config-commit → all-active →
// paced data recovery), and the traced causality timeline assembled from
// every machine's span buffer.
package main

import (
	"fmt"
	"strings"

	"farm/internal/exper"
	"farm/internal/sim"
	"farm/internal/trace"
)

func main() {
	sc := exper.DefaultScale()
	sc.Machines = 6
	sc.Threads = 6
	sc.Subscribers = 800

	spec := exper.DefaultRecoverySpec(sc)
	spec.Lease = 10 * sim.Millisecond // the paper's configuration (§6.1)
	spec.WarmFor = 50 * sim.Millisecond
	spec.RunFor = 600 * sim.Millisecond
	spec.Trace = trace.Options{Enabled: true}

	fmt.Printf("running TATP on %d machines, killing the most-loaded non-CM machine after %v of load...\n\n",
		sc.Machines, spec.WarmFor)
	run := exper.RunFailure(spec)
	fmt.Print(run)

	// ASCII throughput timeline around the failure (Figure 9a).
	fmt.Println("\nthroughput (1 ms buckets, ± 50 ms around the kill):")
	points := run.TimelineAround(50 * sim.Millisecond)
	var peak float64
	for _, p := range points {
		if p.Ops > peak {
			peak = p.Ops
		}
	}
	killMs := int64(run.KillAt / sim.Millisecond)
	for _, p := range points {
		bar := int(p.Ops / peak * 60)
		marker := " "
		if p.AtMs == killMs {
			marker = "×"
		}
		fmt.Printf("%5dms %s|%s\n", p.AtMs, marker, strings.Repeat("█", bar))
	}

	fmt.Println("\nre-replication progress (paced, §5.4):")
	for _, r := range run.RegionsRecovered {
		fmt.Printf("  +%8v  %d regions\n", r.After, r.Count)
	}

	// The traced view of the same run: per-phase span durations and the
	// cross-machine recovery timeline (use cmd/farm-trace to dump the full
	// Chrome trace_event JSON for chrome://tracing).
	fmt.Println("\ntraced recovery timeline:")
	fmt.Print(run.TraceReport)
}
