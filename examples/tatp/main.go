// TATP: run the paper's headline benchmark (§6.3, Figure 7) on a scaled
// cluster and print one throughput–latency row per load point.
package main

import (
	"fmt"

	"farm/internal/exper"
	"farm/internal/sim"
)

func main() {
	sc := exper.DefaultScale()
	sc.Machines = 6
	sc.Threads = 6
	sc.Subscribers = 1000

	fmt.Printf("TATP on %d machines × %d threads, %d subscribers (simulated)\n",
		sc.Machines, sc.Threads, sc.Subscribers)
	fmt.Println("sweeping load as in Figure 7: threads first, then per-thread concurrency")
	points := exper.Figure7(sc, [][2]int{{2, 1}, {4, 1}, {6, 1}, {6, 2}, {6, 4}},
		5*sim.Millisecond, 25*sim.Millisecond)
	fmt.Print(exper.FormatCurve(points))

	best := points[len(points)-1]
	fmt.Printf("\npeak: %.2f M txn/s total (%.0f per machine/s), median %v, p99 %v\n",
		best.Tput/1e6, best.PerMachine, best.Median, best.P99)
	fmt.Println("paper (90 machines): 140 M txn/s, median 58 µs, p99 645 µs at peak")
}
