// Bank: serializable multi-object transactions under fire. Concurrent
// transfer transactions move money between accounts spread across the
// cluster while a machine is killed mid-run; the invariant Σbalances is
// checked at the end — if FaRM's atomicity, isolation or recovery were
// broken, money would appear or vanish.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"farm"
)

const (
	accounts = 32
	initial  = 1_000
	drivers  = 8
)

func main() {
	c := farm.NewCluster(farm.Options{
		NumMachines:   6,
		Seed:          7,
		LeaseDuration: 5 * farm.Millisecond,
	})
	c.MustCreateRegions(3)

	// Open accounts.
	addrs := make([]farm.Addr, accounts)
	for i := range addrs {
		i := i
		err := c.Sync(func(done func(error)) {
			tx := c.Machine(i % 6).Begin(0)
			tx.Alloc(8, u64(initial), nil, func(a farm.Addr, err error) {
				if err != nil {
					done(err)
					return
				}
				addrs[i] = a
				tx.Commit(done)
			})
		})
		if err != nil {
			log.Fatalf("open account %d: %v", i, err)
		}
	}
	fmt.Printf("opened %d accounts × %d = total %d\n", accounts, initial, accounts*initial)

	// Concurrent transfer drivers on machines 0-3 (4 and 5 may die).
	transfers, conflicts := 0, 0
	for d := 0; d < drivers; d++ {
		m := c.Machine(d % 4)
		rng := newRand(uint64(d) + 99)
		var drive func(n int)
		drive = func(n int) {
			if n >= 400 || !m.Alive() {
				return
			}
			from := addrs[rng(accounts)]
			to := addrs[rng(accounts)]
			if from == to {
				drive(n + 1)
				return
			}
			amount := rng(20) + 1
			tx := m.Begin(d % m.Threads())
			tx.Read(from, 8, func(fb []byte, err error) {
				if err != nil {
					drive(n) // retry
					return
				}
				tx.Read(to, 8, func(tb []byte, err error) {
					if err != nil {
						drive(n)
						return
					}
					bal := binary.LittleEndian.Uint64(fb)
					if bal < uint64(amount) {
						tx.Commit(func(error) { drive(n + 1) })
						return
					}
					tx.Write(from, u64(bal-uint64(amount)))
					tx.Write(to, u64(binary.LittleEndian.Uint64(tb)+uint64(amount)))
					tx.Commit(func(err error) {
						if err == nil {
							transfers++
						} else {
							conflicts++
						}
						drive(n + 1)
					})
				})
			})
		}
		drive(0)
	}

	// Kill a machine while transfers are in flight; FaRM detects the
	// failure via leases, reconfigures, recovers in-flight transactions
	// and re-replicates the dead machine's regions.
	c.Eng.After(5*farm.Millisecond, func() {
		fmt.Printf("t=%v: killing machine 5\n", c.Now())
		c.Kill(5)
	})
	c.RunFor(2 * farm.Second)

	// Audit.
	var total uint64
	for i, a := range addrs {
		err := c.Sync(func(done func(error)) {
			tx := c.Machine(0).Begin(1)
			tx.Read(a, 8, func(b []byte, err error) {
				if err == nil {
					total += binary.LittleEndian.Uint64(b)
				}
				done(err)
			})
		})
		if err != nil {
			log.Fatalf("audit account %d: %v", i, err)
		}
	}
	fmt.Printf("transfers committed: %d, conflicts retried: %d\n", transfers, conflicts)
	fmt.Printf("recovery events: %s\n", recoverySummary(c))
	fmt.Printf("final total: %d (expected %d)\n", total, accounts*initial)
	if total != accounts*initial {
		log.Fatal("INVARIANT VIOLATED: money created or destroyed")
	}
	fmt.Println("invariant holds: no money created or destroyed across the failure")
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// newRand returns a tiny deterministic generator.
func newRand(seed uint64) func(n int) int {
	state := seed*2654435761 + 1
	return func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
}

func recoverySummary(c *farm.Cluster) string {
	suspects, commits := 0, 0
	for _, e := range c.Trace {
		switch e.Event {
		case "suspect":
			suspects++
		case "config-commit":
			commits++
		}
	}
	return fmt.Sprintf("%d suspicions, %d configuration commits, %d regions re-replicated",
		suspects, commits, len(c.RegionRecoveredAt))
}
