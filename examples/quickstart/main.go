// Quickstart: boot a simulated FaRM cluster, commit a distributed
// transaction, read it back from another machine, and print what the
// commit cost in one-sided RDMA operations.
package main

import (
	"fmt"
	"log"

	"farm"
)

func main() {
	// Five machines, 3-way replication, machine 0 is the configuration
	// manager. Everything runs on a deterministic virtual clock.
	c := farm.NewCluster(farm.Options{NumMachines: 5, Seed: 42})
	c.MustCreateRegions(2)

	coordinator := c.Machine(1)

	// Allocate an object and commit it: the four-phase protocol (LOCK →
	// VALIDATE → COMMIT-BACKUP → COMMIT-PRIMARY) runs under the hood,
	// writing the paper's Table 1 records into replicated NVRAM logs.
	var addr farm.Addr
	snap := c.Net.Counters.Snapshot()
	err := c.Sync(func(done func(error)) {
		tx := coordinator.Begin(0)
		tx.Alloc(13, []byte("hello, farm!!"), nil, func(a farm.Addr, err error) {
			if err != nil {
				done(err)
				return
			}
			addr = a
			tx.Commit(done)
		})
	})
	if err != nil {
		log.Fatalf("commit: %v", err)
	}
	fmt.Printf("committed object at %v\n", addr)
	fmt.Printf("commit cost: %v\n", diffString(c.Net.Counters.Diff(snap)))

	// Lock-free read from a different machine: a single one-sided RDMA
	// read, no remote CPU, no commit phase.
	var got []byte
	err = c.Sync(func(done func(error)) {
		c.Machine(4).LockFreeRead(0, addr, 13, func(data []byte, err error) {
			got = data
			done(err)
		})
	})
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("machine 4 read: %q (virtual time %v)\n", got, c.Now())
}

func diffString(d map[string]uint64) string {
	return fmt.Sprintf("rdma_writes=%d rdma_reads=%d messages=%d local_writes=%d",
		d["rdma_write"], d["rdma_read"], d["msg_send"], d["local_write"])
}
