// Package nvram models the paper's non-volatile DRAM (§2.1): per-machine
// memory whose contents survive process crashes and — thanks to the
// distributed-UPS save path — power failures. It also implements the
// energy/time model behind Figure 1 (energy to copy one GB from DRAM to
// SSD as a function of the number of SSDs).
package nvram

import (
	"fmt"

	"farm/internal/sim"
)

// RegionID names a memory region within a Store. The FaRM global address
// space is built out of these regions (§3).
type RegionID uint32

// Store is one machine's non-volatile memory: a set of byte regions. The
// Store object deliberately lives *outside* the simulated process state, so
// killing a FaRM process leaves its Store intact — exactly the durability
// contract of battery-backed DRAM. Only Wipe (modelling machine replacement
// or losing more than the save window allows) destroys data.
type Store struct {
	regions map[RegionID][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{regions: make(map[RegionID][]byte)}
}

// Allocate creates a zeroed region of the given size. It is an error if the
// region already exists.
func (s *Store) Allocate(id RegionID, size int) ([]byte, error) {
	if _, ok := s.regions[id]; ok {
		return nil, fmt.Errorf("nvram: region %d already allocated", id)
	}
	if size <= 0 {
		return nil, fmt.Errorf("nvram: invalid region size %d", size)
	}
	b := make([]byte, size)
	s.regions[id] = b
	return b, nil
}

// Free releases a region. Freeing a missing region is a no-op (idempotent
// cleanup after failed allocations).
func (s *Store) Free(id RegionID) { delete(s.regions, id) }

// Region returns the backing bytes of a region, or nil if absent.
func (s *Store) Region(id RegionID) []byte { return s.regions[id] }

// Has reports whether the region exists.
func (s *Store) Has(id RegionID) bool {
	_, ok := s.regions[id]
	return ok
}

// RegionIDs returns the ids of all allocated regions (unordered).
func (s *Store) RegionIDs() []RegionID {
	out := make([]RegionID, 0, len(s.regions))
	for id := range s.regions {
		out = append(out, id)
	}
	return out
}

// TotalBytes returns the sum of region sizes.
func (s *Store) TotalBytes() int {
	total := 0
	for _, b := range s.regions {
		total += len(b)
	}
	return total
}

// Wipe destroys all regions, modelling loss of the machine's memory (e.g.
// the machine is replaced, or the battery could not cover the save).
func (s *Store) Wipe() { s.regions = make(map[RegionID][]byte) }

// SaveModel captures the distributed-UPS save path of §2.1: on power
// failure, the battery powers the CPUs and SSDs while memory is streamed to
// the SSDs. Defaults are calibrated to the paper's measurements: an
// unoptimized save of 1 GB over a single M.2 SSD consumes ~110 J, of which
// ~90 J is the two CPU sockets.
type SaveModel struct {
	// CPUPowerWatts is the power draw of the CPU sockets during the save.
	CPUPowerWatts float64
	// AuxPowerWattsPerSSD is the incremental draw per active SSD (device
	// plus DRAM refresh attributable to the longer save window).
	AuxPowerWattsPerSSD float64
	// SSDBandwidthGBps is the sequential write bandwidth of one SSD; SSDs
	// save disjoint memory ranges in parallel.
	SSDBandwidthGBps float64
	// CostPerJoule is the provisioned Li-ion UPS cost ($/J), $0.005 in the
	// paper's OCS Local Energy Storage estimate.
	CostPerJoule float64
}

// DefaultSaveModel reproduces the paper's prototype measurements.
func DefaultSaveModel() SaveModel {
	return SaveModel{
		CPUPowerWatts:       180, // two E5-2650 sockets during the save
		AuxPowerWattsPerSSD: 40,
		SSDBandwidthGBps:    2.0, // M.2 PCIe sequential write
		CostPerJoule:        0.005,
	}
}

// SaveTime returns how long saving gb gigabytes over ssds parallel SSDs
// takes.
func (m SaveModel) SaveTime(gb float64, ssds int) sim.Time {
	if ssds < 1 {
		ssds = 1
	}
	seconds := gb / (m.SSDBandwidthGBps * float64(ssds))
	return sim.Time(seconds * float64(sim.Second))
}

// EnergyPerGB returns the Joules needed to save one GB with the given
// number of SSDs (the y-axis of Figure 1).
func (m SaveModel) EnergyPerGB(ssds int) float64 {
	if ssds < 1 {
		ssds = 1
	}
	t := 1.0 / (m.SSDBandwidthGBps * float64(ssds)) // seconds per GB
	power := m.CPUPowerWatts + m.AuxPowerWattsPerSSD*float64(ssds)
	return power * t
}

// CostPerGB returns the UPS energy cost in dollars per GB of protected
// DRAM (the paper quotes $0.55/GB worst case).
func (m SaveModel) CostPerGB(ssds int) float64 {
	return m.EnergyPerGB(ssds) * m.CostPerJoule
}
