package nvram

import (
	"testing"
	"testing/quick"

	"farm/internal/sim"
)

func TestStoreAllocateFreeRoundTrip(t *testing.T) {
	s := NewStore()
	b, err := s.Allocate(7, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 128 {
		t.Fatalf("len = %d", len(b))
	}
	b[0] = 0xAB
	if got := s.Region(7); got[0] != 0xAB {
		t.Fatal("Region does not alias allocated bytes")
	}
	if !s.Has(7) || s.Has(8) {
		t.Fatal("Has wrong")
	}
	if s.TotalBytes() != 128 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
	s.Free(7)
	if s.Has(7) || s.Region(7) != nil {
		t.Fatal("Free did not remove region")
	}
	s.Free(7) // idempotent
}

func TestStoreDoubleAllocateFails(t *testing.T) {
	s := NewStore()
	if _, err := s.Allocate(1, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Allocate(1, 16); err == nil {
		t.Fatal("double allocate succeeded")
	}
	if _, err := s.Allocate(2, 0); err == nil {
		t.Fatal("zero-size allocate succeeded")
	}
}

func TestStoreSurvivesProcessCrashSemantics(t *testing.T) {
	// The store is held by the "hardware", not the process: simulate a
	// crash by dropping every process-side reference and confirm contents
	// remain reachable through the store.
	s := NewStore()
	b, _ := s.Allocate(3, 64)
	copy(b, []byte("durable"))
	b = nil
	_ = b
	if string(s.Region(3)[:7]) != "durable" {
		t.Fatal("contents lost")
	}
	s.Wipe()
	if s.Has(3) || s.TotalBytes() != 0 {
		t.Fatal("wipe incomplete")
	}
}

func TestRegionIDs(t *testing.T) {
	s := NewStore()
	for i := RegionID(0); i < 5; i++ {
		if _, err := s.Allocate(i, 8); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.RegionIDs()
	if len(ids) != 5 {
		t.Fatalf("got %d ids", len(ids))
	}
	seen := map[RegionID]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for i := RegionID(0); i < 5; i++ {
		if !seen[i] {
			t.Fatalf("missing id %d", i)
		}
	}
}

func TestSaveModelMatchesPaperFigure1(t *testing.T) {
	m := DefaultSaveModel()
	// Paper: ~110 J/GB with one SSD, ~90 J of it CPU.
	e1 := m.EnergyPerGB(1)
	if e1 < 100 || e1 > 120 {
		t.Fatalf("1-SSD energy = %.1f J/GB, want ~110", e1)
	}
	// Monotonically decreasing with more SSDs (Figure 1's shape).
	prev := e1
	for ssds := 2; ssds <= 4; ssds++ {
		e := m.EnergyPerGB(ssds)
		if e >= prev {
			t.Fatalf("energy not decreasing: %d SSDs -> %.1f J/GB (prev %.1f)", ssds, e, prev)
		}
		prev = e
	}
	// 4 SSDs should cut energy by at least half versus 1 SSD.
	if m.EnergyPerGB(4) > e1/2 {
		t.Fatalf("4-SSD energy %.1f not < half of %.1f", m.EnergyPerGB(4), e1)
	}
	// Worst-case UPS cost ~$0.55/GB.
	if c := m.CostPerGB(1); c < 0.4 || c > 0.7 {
		t.Fatalf("cost per GB = $%.2f, want ~$0.55", c)
	}
}

func TestSaveModelTimeScalesWithSSDs(t *testing.T) {
	m := DefaultSaveModel()
	t1 := m.SaveTime(256, 1)
	t4 := m.SaveTime(256, 4)
	if t4*4 != t1 {
		t.Fatalf("save time does not scale: 1 SSD %v, 4 SSDs %v", t1, t4)
	}
	if t1 != sim.Time(128*sim.Second) {
		t.Fatalf("256 GB over 1 SSD = %v, want 128s at 2 GB/s", t1)
	}
	if m.SaveTime(1, 0) != m.SaveTime(1, 1) {
		t.Fatal("ssds<1 should clamp to 1")
	}
}

func TestStoreAllocationSizesQuick(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewStore()
		want := 0
		for i, sz := range sizes {
			if sz == 0 {
				continue
			}
			if _, err := s.Allocate(RegionID(i), int(sz)); err != nil {
				return false
			}
			want += int(sz)
		}
		return s.TotalBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
