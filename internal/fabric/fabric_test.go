package fabric

import (
	"errors"
	"testing"

	"farm/internal/nvram"
	"farm/internal/sim"
)

func newPair(t *testing.T) (*sim.Engine, *Network, *NIC, *NIC, *nvram.Store, *nvram.Store) {
	t.Helper()
	eng := sim.NewEngine(42)
	net := NewNetwork(eng, Options{})
	m0, m1 := nvram.NewStore(), nvram.NewStore()
	n0 := net.AddMachine(0, m0)
	n1 := net.AddMachine(1, m1)
	return eng, net, n0, n1, m0, m1
}

func TestOneSidedWriteThenRead(t *testing.T) {
	eng, _, n0, _, _, m1 := newPair(t)
	if _, err := m1.Allocate(5, 64); err != nil {
		t.Fatal(err)
	}
	var wrote, read bool
	n0.Write(1, 5, 8, []byte("hello"), func(err error) {
		if err != nil {
			t.Errorf("write err: %v", err)
		}
		wrote = true
		n0.Read(1, 5, 8, 5, func(data []byte, err error) {
			if err != nil || string(data) != "hello" {
				t.Errorf("read = %q, %v", data, err)
			}
			read = true
		})
	})
	eng.Run()
	if !wrote || !read {
		t.Fatal("callbacks did not fire")
	}
	// Bytes must actually be in the remote store.
	if string(m1.Region(5)[8:13]) != "hello" {
		t.Fatal("write did not land in remote NVRAM")
	}
}

func TestWriteDoesNotTouchRemoteCPU(t *testing.T) {
	// No message handler is installed; one-sided ops must still complete.
	eng, _, n0, n1, _, m1 := newPair(t)
	m1.Allocate(1, 32)
	n1.SetMessageHandler(func(MachineID, interface{}) {
		t.Error("one-sided write invoked remote message handler")
	})
	done := false
	n0.Write(1, 1, 0, []byte{1, 2, 3}, func(err error) {
		if err != nil {
			t.Error(err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("no hardware ack")
	}
}

func TestReadBadAddress(t *testing.T) {
	eng, _, n0, _, _, m1 := newPair(t)
	m1.Allocate(1, 16)
	var errMissing, errOOB error
	n0.Read(1, 99, 0, 8, func(_ []byte, err error) { errMissing = err })
	n0.Read(1, 1, 8, 16, func(_ []byte, err error) { errOOB = err })
	eng.Run()
	if !errors.Is(errMissing, ErrBadAddress) {
		t.Fatalf("missing region: %v", errMissing)
	}
	if !errors.Is(errOOB, ErrBadAddress) {
		t.Fatalf("out of bounds: %v", errOOB)
	}
}

func TestOpsToDeadMachineTimeout(t *testing.T) {
	eng, net, n0, n1, _, m1 := newPair(t)
	m1.Allocate(1, 16)
	n1.SetPowered(false)
	var rerr, werr, perr error
	start := eng.Now()
	n0.Read(1, 1, 0, 8, func(_ []byte, err error) { rerr = err })
	n0.Write(1, 1, 0, []byte{1}, func(err error) { werr = err })
	n0.Probe(1, func(err error) { perr = err })
	eng.Run()
	for _, err := range []error{rerr, werr, perr} {
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("want timeout, got %v", err)
		}
	}
	if eng.Now()-start < net.Opts.FailTimeout {
		t.Fatal("timeout reported too early")
	}
}

func TestInFlightWriteLandsAfterInitiatorDeath(t *testing.T) {
	// The FaRM hazard: a coordinator issues a log write and dies; the bytes
	// still land at the destination and are acked by hardware — only the
	// dead initiator's completion is suppressed.
	eng, _, n0, _, _, m1 := newPair(t)
	m1.Allocate(1, 16)
	completed := false
	n0.Write(1, 1, 0, []byte{0xCC}, func(error) { completed = true })
	eng.After(1, func() { n0.SetPowered(false) }) // die while in flight
	eng.Run()
	if completed {
		t.Fatal("dead initiator received a completion")
	}
	if m1.Region(1)[0] != 0xCC {
		t.Fatal("in-flight write was lost; it must land")
	}
}

func TestWriteHookFiresOnRemoteWrite(t *testing.T) {
	eng, _, n0, n1, _, m1 := newPair(t)
	m1.Allocate(2, 64)
	var gotRegion nvram.RegionID
	var gotOff, gotLen int
	n1.SetWriteHook(func(r nvram.RegionID, off, length int) {
		gotRegion, gotOff, gotLen = r, off, length
	})
	n0.Write(1, 2, 16, []byte("abcd"), nil)
	eng.Run()
	if gotRegion != 2 || gotOff != 16 || gotLen != 4 {
		t.Fatalf("hook got (%d,%d,%d)", gotRegion, gotOff, gotLen)
	}
}

func TestSendDelivery(t *testing.T) {
	eng, _, n0, n1, _, _ := newPair(t)
	var from MachineID = -1
	var got interface{}
	n1.SetMessageHandler(func(src MachineID, msg interface{}) { from, got = src, msg })
	n0.Send(1, "ping")
	eng.Run()
	if from != 0 || got != "ping" {
		t.Fatalf("delivery: from=%d msg=%v", from, got)
	}
}

func TestSendToDeadOrPartitionedDropped(t *testing.T) {
	eng, net, n0, n1, _, _ := newPair(t)
	delivered := 0
	n1.SetMessageHandler(func(MachineID, interface{}) { delivered++ })
	n1.SetPowered(false)
	n0.Send(1, "x")
	eng.Run()
	n1.SetPowered(true)
	net.SetPartition(map[MachineID]int{0: 0, 1: 1})
	n0.Send(1, "y")
	eng.Run()
	if delivered != 0 {
		t.Fatalf("messages leaked through: %d", delivered)
	}
	net.HealPartition()
	n0.Send(1, "z")
	eng.Run()
	if delivered != 1 {
		t.Fatalf("heal failed: %d", delivered)
	}
}

func TestPartitionBlocksOneSided(t *testing.T) {
	eng, net, n0, _, _, m1 := newPair(t)
	m1.Allocate(1, 8)
	net.SetPartition(map[MachineID]int{0: 0, 1: 1})
	var err error
	n0.Read(1, 1, 0, 4, func(_ []byte, e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned read: %v", err)
	}
}

func TestUDLoss(t *testing.T) {
	eng := sim.NewEngine(7)
	opts := DefaultOptions()
	opts.UDLossProb = 0.5
	net := NewNetwork(eng, opts)
	n0 := net.AddMachine(0, nvram.NewStore())
	n1 := net.AddMachine(1, nvram.NewStore())
	got := 0
	n1.SetUDHandler(func(MachineID, interface{}) { got++ })
	for i := 0; i < 1000; i++ {
		n0.SendUD(1, i)
	}
	eng.Run()
	if got < 300 || got > 700 {
		t.Fatalf("UD loss 0.5: delivered %d/1000", got)
	}
	if net.Counters.Get("ud_dropped") != uint64(1000-got) {
		t.Fatalf("drop accounting: %d + %d != 1000", got, net.Counters.Get("ud_dropped"))
	}
}

func TestUDSeparateFromMessages(t *testing.T) {
	eng, _, n0, n1, _, _ := newPair(t)
	var ud, msg int
	n1.SetUDHandler(func(MachineID, interface{}) { ud++ })
	n1.SetMessageHandler(func(MachineID, interface{}) { msg++ })
	n0.SendUD(1, "lease")
	n0.Send(1, "rpc")
	eng.Run()
	if ud != 1 || msg != 1 {
		t.Fatalf("routing: ud=%d msg=%d", ud, msg)
	}
}

func TestCounters(t *testing.T) {
	eng, net, n0, _, _, m1 := newPair(t)
	m1.Allocate(1, 128)
	n0.Write(1, 1, 0, make([]byte, 100), nil)
	n0.Read(1, 1, 0, 50, func([]byte, error) {})
	n0.Send(1, "m")
	eng.Run()
	c := net.Counters
	if c.Get("rdma_write") != 1 || c.Get("rdma_write_bytes") != 100 {
		t.Fatalf("write counters: %s", c)
	}
	if c.Get("rdma_read") != 1 || c.Get("rdma_read_bytes") != 50 {
		t.Fatalf("read counters: %s", c)
	}
	if c.Get("msg_send") != 1 {
		t.Fatalf("msg counters: %s", c)
	}
}

func TestNICRateLimiting(t *testing.T) {
	// 1000 sends through one NIC must take at least 1000 * NICOpTime of
	// virtual time at the sender's tx queue.
	eng := sim.NewEngine(3)
	opts := DefaultOptions()
	opts.NICOpTime = 100 * sim.Nanosecond
	net := NewNetwork(eng, opts)
	n0 := net.AddMachine(0, nvram.NewStore())
	net.AddMachine(1, nvram.NewStore())
	for i := 0; i < 1000; i++ {
		n0.Send(1, i)
	}
	eng.Run()
	if eng.Now() < 1000*100 {
		t.Fatalf("NIC not rate limiting: finished at %v", eng.Now())
	}
}

func TestWritePayloadIsCopied(t *testing.T) {
	// Mutating the caller's buffer after Write must not affect the data on
	// the wire (real NICs DMA at post time in our model).
	eng, _, n0, _, _, m1 := newPair(t)
	m1.Allocate(1, 8)
	buf := []byte{1, 2, 3}
	n0.Write(1, 1, 0, buf, nil)
	buf[0] = 99
	eng.Run()
	if m1.Region(1)[0] != 1 {
		t.Fatal("write observed caller mutation")
	}
}
