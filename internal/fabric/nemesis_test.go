package fabric

import (
	"errors"
	"testing"

	"farm/internal/nvram"
	"farm/internal/sim"
)

// TestAsymmetricCutLosesOneDirection: with 0→1 cut, nothing crosses that
// leg — 0's verbs to 1 time out, and even 1's verbs to 0 time out because
// their completion must cross the cut leg — yet sends 1→0 still deliver.
// A machine on the receiving side of a one-way cut can talk but gets no
// answers.
func TestAsymmetricCutLosesOneDirection(t *testing.T) {
	eng, net, n0, n1, m0, m1 := newPair(t)
	m0.Allocate(1, 64)
	m1.Allocate(1, 64)
	net.CutLink(0, 1)

	var err01, err10 error
	got01, got10 := false, false
	heard := false
	n0.SetMessageHandler(func(MachineID, interface{}) { heard = true })
	n0.Read(1, 1, 0, 8, func(_ []byte, err error) { err01, got01 = err, true })
	n1.Read(0, 1, 0, 8, func(_ []byte, err error) { err10, got10 = err, true })
	n1.Send(0, "hello")
	eng.Run()
	if !got01 || !errors.Is(err01, ErrTimeout) {
		t.Fatalf("cut direction: got=%v err=%v, want ErrTimeout", got01, err01)
	}
	if !got10 || !errors.Is(err10, ErrTimeout) {
		t.Fatalf("reverse verb (completion crosses cut leg): got=%v err=%v, want ErrTimeout", got10, err10)
	}
	if !heard {
		t.Fatal("send on the healthy 1→0 leg must deliver")
	}

	net.HealLink(0, 1)
	got01 = false
	n0.Read(1, 1, 0, 8, func(_ []byte, err error) { err01, got01 = err, true })
	eng.Run()
	if !got01 || err01 != nil {
		t.Fatalf("after heal: got=%v err=%v, want success", got01, err01)
	}
}

// TestCompletionLegCutWriteLandsButTimesOut: cutting only the return path
// 1→0 makes 0's write execute at 1 (the bytes land) while 0 sees
// ErrTimeout — the landed-but-unacked ambiguity recovery must absorb.
func TestCompletionLegCutWriteLandsButTimesOut(t *testing.T) {
	eng, net, n0, _, _, m1 := newPair(t)
	m1.Allocate(7, 64)
	net.CutLink(1, 0)

	var err error
	done := false
	n0.Write(1, 7, 0, []byte("ghost"), func(e error) { err, done = e, true })
	eng.Run()
	if !done || !errors.Is(err, ErrTimeout) {
		t.Fatalf("initiator: done=%v err=%v, want ErrTimeout", done, err)
	}
	if string(m1.Region(7)[:5]) != "ghost" {
		t.Fatal("write should have landed at the destination despite the lost completion")
	}
	if net.Counters.Get("completion_lost") == 0 {
		t.Fatal("completion_lost counter not incremented")
	}
}

// TestRxCutIsolatesInbound: RxCut on machine 1 blocks traffic TO it but
// not FROM it — the send-but-not-receive gray failure.
func TestRxCutIsolatesInbound(t *testing.T) {
	eng, net, n0, n1, m0, m1 := newPair(t)
	m0.Allocate(1, 64)
	m1.Allocate(1, 64)
	net.SetMachineFault(1, MachineFault{RxCut: true})

	var errIn, errOut error
	n0.Read(1, 1, 0, 8, func(_ []byte, err error) { errIn = err })
	n1.Read(0, 1, 0, 8, func(_ []byte, err error) { errOut = err })
	eng.Run()
	if !errors.Is(errIn, ErrTimeout) {
		t.Fatalf("inbound verb: %v, want ErrTimeout", errIn)
	}
	// 1's outbound request reaches 0, but the completion back into 1 hits
	// its own RxCut — a machine that cannot receive learns nothing.
	if !errors.Is(errOut, ErrTimeout) {
		t.Fatalf("outbound verb completion: %v, want ErrTimeout", errOut)
	}

	// Sends FROM 1 must still deliver.
	heard := false
	n0.SetMessageHandler(func(src MachineID, msg interface{}) { heard = true })
	n1.Send(0, "still alive")
	eng.Run()
	if !heard {
		t.Fatal("RxCut must not block the machine's outbound sends")
	}
}

// TestLinkDelayInflatesLatency: a fixed per-link delay shows up in verb
// completion time, in one direction only.
func TestLinkDelayInflatesLatency(t *testing.T) {
	eng, net, n0, n1, m0, m1 := newPair(t)
	m0.Allocate(1, 64)
	m1.Allocate(1, 64)

	measure := func(c *NIC, dst MachineID) sim.Time {
		start := eng.Now()
		var end sim.Time
		c.Read(dst, 1, 0, 8, func(_ []byte, err error) {
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			end = eng.Now()
		})
		eng.Run()
		return end - start
	}
	base01 := measure(n0, 1)
	const extra = 100 * sim.Microsecond
	if base01 >= extra {
		t.Fatalf("baseline %v already exceeds the injected delay", base01)
	}
	net.SetLinkFault(0, 1, LinkFault{Delay: sim.Fixed(extra)})
	slow01 := measure(n0, 1)
	slow10 := measure(n1, 0) // completion leg 0→1 is the faulted one
	if slow01 < extra {
		t.Fatalf("0→1 with delay: %v, want ≥ %v", slow01, extra)
	}
	if slow10 < extra {
		t.Fatalf("1→0 (completion crosses faulted leg): %v, want ≥ %v", slow10, extra)
	}
}

// TestDropAndDupApplyToSendsOnly: DropProb=1 kills every reliable send on
// the link but must leave one-sided verbs untouched.
func TestDropAndDupApplyToSendsOnly(t *testing.T) {
	eng, net, n0, _, _, m1 := newPair(t)
	m1.Allocate(1, 64)
	net.SetLinkFault(0, 1, LinkFault{DropProb: 1})

	heard := 0
	nic1 := net.NIC(1)
	nic1.SetMessageHandler(func(MachineID, interface{}) { heard++ })
	for i := 0; i < 5; i++ {
		n0.Send(1, i)
	}
	var verbErr error
	n0.Read(1, 1, 0, 8, func(_ []byte, err error) { verbErr = err })
	eng.Run()
	if heard != 0 {
		t.Fatalf("heard %d sends through DropProb=1 link", heard)
	}
	if verbErr != nil {
		t.Fatalf("one-sided verb must not be dropped by DropProb: %v", verbErr)
	}
	if net.Counters.Get("fault_send_dropped") != 5 {
		t.Fatalf("fault_send_dropped = %d, want 5", net.Counters.Get("fault_send_dropped"))
	}

	net.SetLinkFault(0, 1, LinkFault{DupProb: 1})
	for i := 0; i < 3; i++ {
		n0.Send(1, i)
	}
	eng.Run()
	if heard != 6 {
		t.Fatalf("heard %d sends through DupProb=1 link, want 6", heard)
	}
}

// TestDegradedNICSlowsVerbs: gray failure — a big OpTimeFactor and tiny
// BandwidthFactor on machine 1 visibly inflate verb latency without any
// failure being reported.
func TestDegradedNICSlowsVerbs(t *testing.T) {
	eng, net, n0, _, _, m1 := newPair(t)
	m1.Allocate(1, 4096)

	measure := func() sim.Time {
		start := eng.Now()
		var end sim.Time
		n0.Read(1, 1, 0, 4096, func(_ []byte, err error) {
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			end = eng.Now()
		})
		eng.Run()
		return end - start
	}
	base := measure()
	net.SetMachineFault(1, MachineFault{
		OpTimeFactor:    1000,
		BandwidthFactor: 0.01,
		ExtraDelay:      sim.Fixed(50 * sim.Microsecond),
	})
	slow := measure()
	if slow < 2*base {
		t.Fatalf("degraded NIC: %v vs healthy %v, want clearly slower", slow, base)
	}
	net.ClearMachineFault(1)
	if again := measure(); again > 2*base {
		t.Fatalf("after ClearMachineFault still slow: %v vs %v", again, base)
	}
}

// TestClearFaultsRestoresEverything: ClearFaults drops link faults, machine
// faults and partitions in one call.
func TestClearFaultsRestoresEverything(t *testing.T) {
	eng, net, n0, _, _, m1 := newPair(t)
	m1.Allocate(1, 64)
	net.CutLink(0, 1)
	net.SetMachineFault(1, MachineFault{RxCut: true})
	net.SetPartition(map[MachineID]int{0: 1})
	if net.FaultCount() != 2 {
		t.Fatalf("FaultCount = %d, want 2", net.FaultCount())
	}
	net.ClearFaults()
	if net.FaultCount() != 0 {
		t.Fatalf("FaultCount after clear = %d", net.FaultCount())
	}
	var err error
	done := false
	n0.Read(1, 1, 0, 8, func(_ []byte, e error) { err, done = e, true })
	eng.Run()
	if !done || err != nil {
		t.Fatalf("after ClearFaults: done=%v err=%v", done, err)
	}
}

// TestFaultsAreDeterministic: two networks driven identically with the same
// seed and probabilistic faults produce identical counters.
func TestFaultsAreDeterministic(t *testing.T) {
	run := func() map[string]uint64 {
		eng := sim.NewEngine(7)
		net := NewNetwork(eng, Options{})
		s0, s1 := nvram.NewStore(), nvram.NewStore()
		s1.Allocate(1, 64)
		n0 := net.AddMachine(0, s0)
		net.AddMachine(1, s1)
		net.SetLinkFault(0, 1, LinkFault{
			DropProb: 0.3,
			DupProb:  0.3,
			Delay:    sim.Uniform(0, 20*sim.Microsecond),
		})
		for i := 0; i < 50; i++ {
			n0.Send(1, i)
		}
		eng.Run()
		return map[string]uint64{
			"dropped": net.Counters.Get("fault_send_dropped"),
			"dup":     net.Counters.Get("fault_send_dup"),
		}
	}
	a, b := run(), run()
	if a["dropped"] != b["dropped"] || a["dup"] != b["dup"] {
		t.Fatalf("same seed, different fault decisions: %v vs %v", a, b)
	}
	if a["dropped"] == 0 || a["dup"] == 0 {
		t.Fatalf("probabilistic faults never fired: %v", a)
	}
}
