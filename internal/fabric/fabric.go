// Package fabric simulates an RDMA network: NICs that serve one-sided READ
// and WRITE verbs against registered memory without involving the remote
// CPU, reliable two-sided sends, and connectionless unreliable datagrams.
//
// The model preserves the properties FaRM's protocols are designed around:
//
//   - One-sided operations are acknowledged by the remote NIC as long as the
//     remote *machine* is powered, regardless of what the remote software
//     thinks the cluster configuration is. NICs do not understand leases or
//     configurations (§5.2), so stale writes can land and be acked — the
//     hazard FaRM's precise membership and log draining exist to handle.
//   - A crashed initiator's in-flight operations still take effect at the
//     destination; only the initiator's completion is suppressed.
//   - NICs are finite-rate servers, so message-rate bottlenecks (Figure 2 in
//     [16]'s single-NIC regime) are reproducible by configuration.
//
// CPU costs are deliberately NOT charged here: the point of one-sided RDMA
// is which operations consume CPU, and that accounting belongs to the layer
// that owns the CPUs (internal/core charges verb-issue and message-handling
// costs to its simulated threads).
package fabric

import (
	"errors"
	"fmt"

	"farm/internal/nvram"
	"farm/internal/sim"
	"farm/internal/stats"
	"farm/internal/trace"
)

// MachineID identifies a machine (and its NIC) in the fabric.
type MachineID int

// Errors returned to one-sided completion callbacks.
var (
	// ErrTimeout: the destination did not respond (dead or partitioned);
	// reported after Options.FailTimeout, modelling RC retry exhaustion.
	ErrTimeout = errors.New("fabric: operation timed out")
	// ErrBadAddress: the destination NIC has no such registered region or
	// the access is out of bounds (remote access error completion).
	ErrBadAddress = errors.New("fabric: remote access error")
)

// Options are the calibrated hardware constants. Zero values are replaced
// by DefaultOptions values in NewNetwork.
type Options struct {
	// WireLatency is the one-way propagation + switch latency.
	WireLatency sim.Time
	// WireJitter adds a uniform [0, WireJitter) delay per hop.
	WireJitter sim.Time
	// NICOpTime is the NIC processing time per verb (message-rate cap is
	// 1/NICOpTime per direction).
	NICOpTime sim.Time
	// BytesPerSecond is the per-NIC link bandwidth.
	BytesPerSecond float64
	// FailTimeout is how long the initiator waits before reporting
	// ErrTimeout for an unresponsive destination.
	FailTimeout sim.Time
	// UDLossProb is the drop probability for unreliable datagrams.
	UDLossProb float64
	// LocalOpTime is the latency of a same-machine memory access used when
	// the initiator and destination coincide (no NIC, no wire).
	LocalOpTime sim.Time
}

// DefaultOptions models two bonded ConnectX-3 56 Gbps FDR NICs per machine
// on one full-bisection switch (§6.1).
func DefaultOptions() Options {
	return Options{
		WireLatency:    900 * sim.Nanosecond,
		WireJitter:     200 * sim.Nanosecond,
		NICOpTime:      15 * sim.Nanosecond, // ~70M verbs/s/machine (2 NICs)
		BytesPerSecond: 13e9,                // 2 × 56 Gbps, minus headers
		FailTimeout:    500 * sim.Microsecond,
		UDLossProb:     0.0001,
		LocalOpTime:    100 * sim.Nanosecond,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.WireLatency == 0 {
		o.WireLatency = d.WireLatency
	}
	if o.WireJitter == 0 {
		o.WireJitter = d.WireJitter
	}
	if o.NICOpTime == 0 {
		o.NICOpTime = d.NICOpTime
	}
	if o.BytesPerSecond == 0 {
		o.BytesPerSecond = d.BytesPerSecond
	}
	if o.FailTimeout == 0 {
		o.FailTimeout = d.FailTimeout
	}
	if o.LocalOpTime == 0 {
		o.LocalOpTime = d.LocalOpTime
	}
	return o
}

// Network is the switch connecting all NICs.
type Network struct {
	Eng      *sim.Engine
	Opts     Options
	Counters *stats.Counters

	nics map[MachineID]*NIC
	// partition maps a machine to a connectivity group; machines in
	// different groups cannot communicate. Default group is 0.
	partition map[MachineID]int
	// linkFaults/machineFaults are the nemesis layer's fault tables
	// (nemesis.go), consulted per directed leg on every verb and send.
	linkFaults    map[linkKey]LinkFault
	machineFaults map[MachineID]MachineFault
}

// NewNetwork creates an empty network on the given engine.
func NewNetwork(eng *sim.Engine, opts Options) *Network {
	return &Network{
		Eng:           eng,
		Opts:          opts.withDefaults(),
		Counters:      stats.NewCounters(),
		nics:          make(map[MachineID]*NIC),
		partition:     make(map[MachineID]int),
		linkFaults:    make(map[linkKey]LinkFault),
		machineFaults: make(map[MachineID]MachineFault),
	}
}

// AddMachine registers a machine's NIC, backed by its non-volatile memory
// store (the memory one-sided verbs address).
func (n *Network) AddMachine(id MachineID, mem *nvram.Store) *NIC {
	if _, ok := n.nics[id]; ok {
		panic(fmt.Sprintf("fabric: machine %d already registered", id))
	}
	nic := &NIC{
		ID:      id,
		net:     n,
		mem:     mem,
		powered: true,
		tx:      sim.NewThread(n.Eng, fmt.Sprintf("nic%d/tx", id)),
		rx:      sim.NewThread(n.Eng, fmt.Sprintf("nic%d/rx", id)),
	}
	n.nics[id] = nic
	return nic
}

// NIC returns the NIC for machine id, or nil.
func (n *Network) NIC(id MachineID) *NIC { return n.nics[id] }

// SetPartition assigns machines to connectivity groups; unlisted machines
// are group 0.
func (n *Network) SetPartition(groups map[MachineID]int) {
	n.partition = make(map[MachineID]int)
	for id, g := range groups {
		n.partition[id] = g
	}
}

// HealPartition restores full connectivity.
func (n *Network) HealPartition() { n.partition = make(map[MachineID]int) }

func (n *Network) hop() sim.Time {
	return n.Opts.WireLatency + n.Eng.Rand().Duration(n.Opts.WireJitter+1)
}

// NIC is one machine's network interface. One-sided verbs execute entirely
// in NIC context: the remote host CPU is never involved.
type NIC struct {
	ID  MachineID
	net *Network
	mem *nvram.Store

	powered bool
	tx, rx  *sim.Thread

	// msgHandler receives reliable sends; udHandler receives datagrams.
	// Both run in "NIC completion" context: the host must dispatch to its
	// own CPU threads and charge costs there.
	msgHandler func(src MachineID, msg interface{})
	udHandler  func(src MachineID, msg interface{})
	// writeHook observes remote writes landing in local memory (region,
	// offset, length). FaRM hosts use it to schedule log polling without
	// the simulator running a busy poll loop. It fires even while the host
	// process is down — like real memory, the bytes land regardless — and
	// the host side decides whether anyone is alive to look.
	writeHook func(region nvram.RegionID, off, length int)
}

// SetMessageHandler installs the reliable-send upcall.
func (c *NIC) SetMessageHandler(h func(src MachineID, msg interface{})) { c.msgHandler = h }

// SetUDHandler installs the unreliable-datagram upcall.
func (c *NIC) SetUDHandler(h func(src MachineID, msg interface{})) { c.udHandler = h }

// SetWriteHook installs the remote-write observer.
func (c *NIC) SetWriteHook(h func(region nvram.RegionID, off, length int)) { c.writeHook = h }

// SetPowered turns the NIC (and with it, the machine's reachability) on or
// off. A FaRM process kill is modelled as SetPowered(false): reads to the
// machine fail, which is what the reconfiguration probe step detects.
func (c *NIC) SetPowered(on bool) { c.powered = on }

// Powered reports the NIC state.
func (c *NIC) Powered() bool { return c.powered }

// Mem exposes the memory store the NIC serves verbs against.
func (c *NIC) Mem() *nvram.Store { return c.mem }

// Engine exposes the simulation engine driving this NIC, for layers that
// need to schedule retries (e.g. ring-writer retransmission) without holding
// a Network reference.
func (c *NIC) Engine() *sim.Engine { return c.net.Eng }

// Read issues a one-sided RDMA read of length bytes at (region, off) on
// dst. cb receives the data or an error. No remote CPU is involved; the
// remote NIC serves the request from registered memory.
func (c *NIC) Read(dst MachineID, region nvram.RegionID, off, length int, cb func(data []byte, err error)) {
	if dst == c.ID {
		c.net.Counters.Inc("local_read", 1)
	} else {
		c.net.Counters.Inc("rdma_read", 1)
		c.net.Counters.Inc("rdma_read_bytes", uint64(length))
	}
	c.oneSided(dst, length, func(r *NIC) (interface{}, error) {
		b := r.mem.Region(region)
		if b == nil || off < 0 || length < 0 || off+length > len(b) {
			return nil, ErrBadAddress
		}
		data := make([]byte, length)
		copy(data, b[off:off+length])
		return data, nil
	}, func(v interface{}, err error) {
		if cb == nil {
			return
		}
		if err != nil {
			cb(nil, err)
			return
		}
		cb(v.([]byte), nil)
	})
}

// Write issues a one-sided RDMA write of data at (region, off) on dst. cb
// is the hardware ack: it fires when the remote NIC has placed the bytes in
// remote non-volatile memory, with no remote CPU involvement.
func (c *NIC) Write(dst MachineID, region nvram.RegionID, off int, data []byte, cb func(err error)) {
	if dst == c.ID {
		c.net.Counters.Inc("local_write", 1)
	} else {
		c.net.Counters.Inc("rdma_write", 1)
		c.net.Counters.Inc("rdma_write_bytes", uint64(len(data)))
	}
	payload := make([]byte, len(data))
	copy(payload, data)
	c.oneSided(dst, len(data), func(r *NIC) (interface{}, error) {
		b := r.mem.Region(region)
		if b == nil || off < 0 || off+len(payload) > len(b) {
			return nil, ErrBadAddress
		}
		copy(b[off:], payload)
		if r.writeHook != nil {
			r.writeHook(region, off, len(payload))
		}
		return nil, nil
	}, func(_ interface{}, err error) {
		if cb != nil {
			cb(err)
		}
	})
}

// Probe issues a minimal one-sided read used by the reconfiguration
// protocol to test liveness (§5.2 step 2); it succeeds iff the destination
// NIC is powered and reachable.
func (c *NIC) Probe(dst MachineID, cb func(err error)) {
	c.net.Counters.Inc("rdma_read", 1)
	c.oneSided(dst, 8, func(*NIC) (interface{}, error) { return nil, nil },
		func(_ interface{}, err error) {
			if cb != nil {
				cb(err)
			}
		})
}

// oneSided routes a verb through src tx NIC → wire → dst rx NIC (where
// remote executes against memory) → wire → src rx NIC (completion). Each
// wire leg is checked and delayed independently (nemesis.go), so an
// asymmetric cut can lose the completion of a verb whose remote effect
// already landed — the initiator then sees ErrTimeout for an operation that
// actually executed, the ambiguity FaRM's recovery protocols must absorb.
func (c *NIC) oneSided(dst MachineID, bytes int, remote func(r *NIC) (interface{}, error), complete func(interface{}, error)) {
	net := c.net
	eng := net.Eng
	fail := func() {
		eng.After(net.Opts.FailTimeout, func() {
			if c.powered {
				complete(nil, ErrTimeout)
			}
		})
	}
	if !c.powered {
		return // dead initiators complete nothing
	}
	if dst == c.ID {
		// Same-machine fast path: a plain memory access, no NIC or wire.
		eng.After(net.Opts.LocalOpTime, func() {
			if !c.powered {
				return
			}
			v, err := remote(c)
			complete(v, err)
		})
		return
	}
	c.tx.Do(net.nicOpTime(c.ID)+net.xferTime(c.ID, bytes), func() {
		eng.After(net.hop()+net.legDelay(c.ID, dst), func() {
			r := net.nics[dst]
			if r == nil || !r.powered || !net.legUp(c.ID, dst) {
				fail()
				return
			}
			r.rx.Do(net.nicOpTime(dst), func() {
				// Execute against remote memory in NIC context. The remote
				// machine may have died between scheduling and service.
				if !r.powered || !net.legUp(c.ID, dst) {
					fail()
					return
				}
				v, err := remote(r)
				// The remote effect is durable from here on; only the
				// completion can still be lost.
				if !net.legUp(dst, c.ID) {
					net.Counters.Inc("completion_lost", 1)
					fail()
					return
				}
				eng.After(net.hop()+net.legDelay(dst, c.ID)+net.xferTime(dst, bytes), func() {
					if !c.powered {
						return
					}
					c.rx.Do(net.nicOpTime(c.ID), func() {
						if c.powered {
							complete(v, err)
						}
					})
				})
			})
		})
	})
}

// Batch is one coalesced fabric frame carrying several small control
// messages to the same destination. The receiver's message handler gets
// the Batch itself and dispatches the contained messages individually.
// Stamps carries each message's enqueue time (for queueing-latency stats);
// Ctxs carries each message's causal trace context. Each is either empty
// or parallel to Msgs, so untraced runs pay nothing for the extra field.
type Batch struct {
	Msgs   []interface{}
	Stamps []sim.Time
	Ctxs   []trace.Ctx
}

// Send delivers msg reliably to dst's message handler. Delivery is
// fire-and-forget at this layer: if dst is dead or partitioned the message
// vanishes and higher layers notice via leases/timeouts, as in the paper.
// The payload is shared by reference; senders must not mutate it.
func (c *NIC) Send(dst MachineID, msg interface{}) {
	c.net.Counters.Inc("msg_send", 1)
	c.transmit(dst, msg, false, 0)
}

// SendSized is Send with the message's modeled wire size charged against
// the NIC's bandwidth, so uncoalesced reliable sends occupy the wire like
// everything else (the registry wire-size model supplies bytes).
func (c *NIC) SendSized(dst MachineID, msg interface{}, bytes int) {
	c.net.Counters.Inc("msg_send", 1)
	c.net.Counters.Inc("msg_send_bytes", uint64(bytes))
	c.transmit(dst, msg, false, bytes)
}

// SendBatch delivers a coalesced frame of len(b.Msgs) messages as a single
// fabric send, occupying the NIC once and the wire for the frame's modeled
// size. bytes is the total modeled payload size; the serialization cost it
// implies is charged at the sending NIC.
func (c *NIC) SendBatch(dst MachineID, b *Batch, bytes int) {
	c.net.Counters.Inc("msg_send", 1)
	c.net.Counters.Inc("msg_send_coalesced", uint64(len(b.Msgs)))
	c.net.Counters.Inc("msg_send_bytes", uint64(bytes))
	c.transmit(dst, b, false, bytes)
}

// SendUD delivers msg over the connectionless unreliable datagram
// transport used by the lease manager (§5.1). Datagrams may be dropped.
func (c *NIC) SendUD(dst MachineID, msg interface{}) {
	c.net.Counters.Inc("ud_send", 1)
	c.transmit(dst, msg, true, 0)
}

func (c *NIC) transmit(dst MachineID, msg interface{}, ud bool, bytes int) {
	net := c.net
	if !c.powered {
		return
	}
	if ud && net.Eng.Rand().Bool(net.udLossProb(c.ID, dst)) {
		net.Counters.Inc("ud_dropped", 1)
		return
	}
	if dst == c.ID {
		// Loopback: skip the NIC and wire (link faults model the fabric, so
		// they never apply to a machine talking to itself).
		net.Eng.After(net.Opts.LocalOpTime, func() {
			if !c.powered {
				return
			}
			h := c.msgHandler
			if ud {
				h = c.udHandler
			}
			if h != nil {
				h(c.ID, msg)
			}
		})
		return
	}
	// Reliable-send drop/dup faults model RC retry exhaustion and ack-loss
	// retransmission at the message layer. They deliberately do NOT apply
	// to one-sided verbs: RC ordering cannot lose one write and deliver the
	// next, so partial verb loss is modelled as a Cut episode instead.
	copies := 1
	if !ud {
		if net.dropSend(c.ID, dst) {
			net.Counters.Inc("fault_send_dropped", 1)
			return
		}
		if net.dupSend(c.ID, dst) {
			net.Counters.Inc("fault_send_dup", 1)
			copies = 2
		}
	}
	deliver := func() {
		net.Eng.After(net.hop()+net.legDelay(c.ID, dst), func() {
			r := net.nics[dst]
			if r == nil || !r.powered || !net.legUp(c.ID, dst) {
				net.Counters.Inc("msg_lost", 1)
				return
			}
			r.rx.Do(net.nicOpTime(dst), func() {
				if !r.powered {
					return
				}
				h := r.msgHandler
				if ud {
					h = r.udHandler
				}
				if h != nil {
					h(c.ID, msg)
				}
			})
		})
	}
	c.tx.Do(net.nicOpTime(c.ID)+net.xferTime(c.ID, bytes), func() {
		for i := 0; i < copies; i++ {
			deliver()
		}
	})
}
