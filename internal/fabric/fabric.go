// Package fabric simulates an RDMA network: NICs that serve one-sided READ
// and WRITE verbs against registered memory without involving the remote
// CPU, reliable two-sided sends, and connectionless unreliable datagrams.
//
// The model preserves the properties FaRM's protocols are designed around:
//
//   - One-sided operations are acknowledged by the remote NIC as long as the
//     remote *machine* is powered, regardless of what the remote software
//     thinks the cluster configuration is. NICs do not understand leases or
//     configurations (§5.2), so stale writes can land and be acked — the
//     hazard FaRM's precise membership and log draining exist to handle.
//   - A crashed initiator's in-flight operations still take effect at the
//     destination; only the initiator's completion is suppressed.
//   - NICs are finite-rate servers, so message-rate bottlenecks (Figure 2 in
//     [16]'s single-NIC regime) are reproducible by configuration.
//
// CPU costs are deliberately NOT charged here: the point of one-sided RDMA
// is which operations consume CPU, and that accounting belongs to the layer
// that owns the CPUs (internal/core charges verb-issue and message-handling
// costs to its simulated threads).
//
// Hot-path discipline: the per-verb and per-send machinery (the multi-leg
// wire state machines, write-payload staging buffers, coalesced Batch
// frames) is pooled on the Network and every stage continuation is a
// closure bound once at pool-insertion time, so the steady-state cost of a
// verb or send is zero heap allocations beyond the payload bytes that
// escape to the caller. NIC and partition lookups are dense slice indexes,
// not map hits, and hot counters are pre-resolved cells.
package fabric

import (
	"errors"
	"fmt"
	"math/bits"

	"farm/internal/nvram"
	"farm/internal/sim"
	"farm/internal/stats"
	"farm/internal/trace"
)

// MachineID identifies a machine (and its NIC) in the fabric.
type MachineID int

// Errors returned to one-sided completion callbacks.
var (
	// ErrTimeout: the destination did not respond (dead or partitioned);
	// reported after Options.FailTimeout, modelling RC retry exhaustion.
	ErrTimeout = errors.New("fabric: operation timed out")
	// ErrBadAddress: the destination NIC has no such registered region or
	// the access is out of bounds (remote access error completion).
	ErrBadAddress = errors.New("fabric: remote access error")
)

// Options are the calibrated hardware constants. Zero values are replaced
// by DefaultOptions values in NewNetwork.
type Options struct {
	// WireLatency is the one-way propagation + switch latency.
	WireLatency sim.Time
	// WireJitter adds a uniform [0, WireJitter) delay per hop.
	WireJitter sim.Time
	// NICOpTime is the NIC processing time per verb (message-rate cap is
	// 1/NICOpTime per direction).
	NICOpTime sim.Time
	// BytesPerSecond is the per-NIC link bandwidth.
	BytesPerSecond float64
	// FailTimeout is how long the initiator waits before reporting
	// ErrTimeout for an unresponsive destination.
	FailTimeout sim.Time
	// UDLossProb is the drop probability for unreliable datagrams.
	UDLossProb float64
	// LocalOpTime is the latency of a same-machine memory access used when
	// the initiator and destination coincide (no NIC, no wire).
	LocalOpTime sim.Time
}

// DefaultOptions models two bonded ConnectX-3 56 Gbps FDR NICs per machine
// on one full-bisection switch (§6.1).
func DefaultOptions() Options {
	return Options{
		WireLatency:    900 * sim.Nanosecond,
		WireJitter:     200 * sim.Nanosecond,
		NICOpTime:      15 * sim.Nanosecond, // ~70M verbs/s/machine (2 NICs)
		BytesPerSecond: 13e9,                // 2 × 56 Gbps, minus headers
		FailTimeout:    500 * sim.Microsecond,
		UDLossProb:     0.0001,
		LocalOpTime:    100 * sim.Nanosecond,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.WireLatency == 0 {
		o.WireLatency = d.WireLatency
	}
	if o.WireJitter == 0 {
		o.WireJitter = d.WireJitter
	}
	if o.NICOpTime == 0 {
		o.NICOpTime = d.NICOpTime
	}
	if o.BytesPerSecond == 0 {
		o.BytesPerSecond = d.BytesPerSecond
	}
	if o.FailTimeout == 0 {
		o.FailTimeout = d.FailTimeout
	}
	if o.LocalOpTime == 0 {
		o.LocalOpTime = d.LocalOpTime
	}
	return o
}

// Network is the switch connecting all NICs.
type Network struct {
	Eng      *sim.Engine
	Opts     Options
	Counters *stats.Counters

	// nics and partition are dense tables indexed by MachineID (machines
	// are small ids; external clients live above 1000 — still tiny).
	nics      []*NIC
	partition []int32
	// linkFaults/machineFaults are the nemesis layer's fault tables
	// (nemesis.go), consulted per directed leg on every verb and send.
	linkFaults    map[linkKey]LinkFault
	machineFaults map[MachineID]MachineFault

	// Free lists for the per-operation machinery (single goroutine, no
	// locks). Ops, batches and write-staging buffers cycle through these
	// so steady state allocates nothing.
	verbFree  []*verbOp
	sendFree  []*sendOp
	batchFree []*Batch
	bufFree   [bufBuckets][][]byte

	// Pre-resolved counter cells for the per-event hot paths.
	cLocalRead, cRDMARead, cRDMAReadBytes    *uint64
	cLocalWrite, cRDMAWrite, cRDMAWriteBytes *uint64
	cMsgSend, cMsgSendBytes, cMsgCoalesced   *uint64
	cUDSend, cUDDropped, cMsgLost            *uint64
	cCompletionLost, cFaultDrop, cFaultDup   *uint64
}

// NewNetwork creates an empty network on the given engine.
func NewNetwork(eng *sim.Engine, opts Options) *Network {
	n := &Network{
		Eng:           eng,
		Opts:          opts.withDefaults(),
		Counters:      stats.NewCounters(),
		linkFaults:    make(map[linkKey]LinkFault),
		machineFaults: make(map[MachineID]MachineFault),
	}
	n.cLocalRead = n.Counters.Cell("local_read")
	n.cRDMARead = n.Counters.Cell("rdma_read")
	n.cRDMAReadBytes = n.Counters.Cell("rdma_read_bytes")
	n.cLocalWrite = n.Counters.Cell("local_write")
	n.cRDMAWrite = n.Counters.Cell("rdma_write")
	n.cRDMAWriteBytes = n.Counters.Cell("rdma_write_bytes")
	n.cMsgSend = n.Counters.Cell("msg_send")
	n.cMsgSendBytes = n.Counters.Cell("msg_send_bytes")
	n.cMsgCoalesced = n.Counters.Cell("msg_send_coalesced")
	n.cUDSend = n.Counters.Cell("ud_send")
	n.cUDDropped = n.Counters.Cell("ud_dropped")
	n.cMsgLost = n.Counters.Cell("msg_lost")
	n.cCompletionLost = n.Counters.Cell("completion_lost")
	n.cFaultDrop = n.Counters.Cell("fault_send_dropped")
	n.cFaultDup = n.Counters.Cell("fault_send_dup")
	return n
}

// grow extends the dense id tables to cover id.
func (n *Network) grow(id MachineID) {
	for int(id) >= len(n.nics) {
		n.nics = append(n.nics, nil)
		n.partition = append(n.partition, 0)
	}
}

// nic returns the NIC for id, or nil (dense index, no map hit).
func (n *Network) nic(id MachineID) *NIC {
	if id < 0 || int(id) >= len(n.nics) {
		return nil
	}
	return n.nics[id]
}

// AddMachine registers a machine's NIC, backed by its non-volatile memory
// store (the memory one-sided verbs address).
func (n *Network) AddMachine(id MachineID, mem *nvram.Store) *NIC {
	n.grow(id)
	if n.nics[id] != nil {
		panic(fmt.Sprintf("fabric: machine %d already registered", id))
	}
	nic := &NIC{
		ID:      id,
		net:     n,
		mem:     mem,
		powered: true,
		tx:      sim.NewThread(n.Eng, fmt.Sprintf("nic%d/tx", id)),
		rx:      sim.NewThread(n.Eng, fmt.Sprintf("nic%d/rx", id)),
	}
	n.nics[id] = nic
	return nic
}

// NIC returns the NIC for machine id, or nil.
func (n *Network) NIC(id MachineID) *NIC { return n.nic(id) }

// SetPartition assigns machines to connectivity groups; unlisted machines
// are group 0.
func (n *Network) SetPartition(groups map[MachineID]int) {
	for i := range n.partition {
		n.partition[i] = 0
	}
	for id, g := range groups {
		n.grow(id)
		n.partition[id] = int32(g)
	}
}

// HealPartition restores full connectivity.
func (n *Network) HealPartition() {
	for i := range n.partition {
		n.partition[i] = 0
	}
}

func (n *Network) partitionOf(id MachineID) int32 {
	if id < 0 || int(id) >= len(n.partition) {
		return 0
	}
	return n.partition[id]
}

func (n *Network) hop() sim.Time {
	return n.Opts.WireLatency + n.Eng.Rand().Duration(n.Opts.WireJitter+1)
}

// --- write-payload staging buffers ---

// bufBuckets is the number of power-of-two size classes pooled for
// one-sided write staging copies (8 B .. 64 KB); larger payloads fall back
// to plain allocation.
const bufBuckets = 14

func bufBucket(size int) int {
	if size <= 8 {
		return 0
	}
	b := bits.Len(uint(size-1)) - 3
	if b >= bufBuckets {
		return -1
	}
	return b
}

// getBuf returns a buffer of the exact length requested, reusing a pooled
// backing array when one fits.
func (n *Network) getBuf(size int) []byte {
	b := bufBucket(size)
	if b < 0 {
		return make([]byte, size)
	}
	if k := len(n.bufFree[b]); k > 0 {
		buf := n.bufFree[b][k-1]
		n.bufFree[b] = n.bufFree[b][:k-1]
		return buf[:size]
	}
	return make([]byte, size, 8<<b)
}

func (n *Network) putBuf(buf []byte) {
	b := bufBucket(cap(buf))
	if b < 0 || cap(buf) != 8<<b {
		return
	}
	n.bufFree[b] = append(n.bufFree[b], buf[:cap(buf)])
}

// NIC is one machine's network interface. One-sided verbs execute entirely
// in NIC context: the remote host CPU is never involved.
type NIC struct {
	ID  MachineID
	net *Network
	mem *nvram.Store

	powered bool
	tx, rx  *sim.Thread

	// msgHandler receives reliable sends; udHandler receives datagrams.
	// Both run in "NIC completion" context: the host must dispatch to its
	// own CPU threads and charge costs there.
	msgHandler func(src MachineID, msg interface{})
	udHandler  func(src MachineID, msg interface{})
	// writeHook observes remote writes landing in local memory (region,
	// offset, length). FaRM hosts use it to schedule log polling without
	// the simulator running a busy poll loop. It fires even while the host
	// process is down — like real memory, the bytes land regardless — and
	// the host side decides whether anyone is alive to look.
	writeHook func(region nvram.RegionID, off, length int)
}

// SetMessageHandler installs the reliable-send upcall.
func (c *NIC) SetMessageHandler(h func(src MachineID, msg interface{})) { c.msgHandler = h }

// SetUDHandler installs the unreliable-datagram upcall.
func (c *NIC) SetUDHandler(h func(src MachineID, msg interface{})) { c.udHandler = h }

// SetWriteHook installs the remote-write observer.
func (c *NIC) SetWriteHook(h func(region nvram.RegionID, off, length int)) { c.writeHook = h }

// SetPowered turns the NIC (and with it, the machine's reachability) on or
// off. A FaRM process kill is modelled as SetPowered(false): reads to the
// machine fail, which is what the reconfiguration probe step detects.
func (c *NIC) SetPowered(on bool) { c.powered = on }

// Powered reports the NIC state.
func (c *NIC) Powered() bool { return c.powered }

// Mem exposes the memory store the NIC serves verbs against.
func (c *NIC) Mem() *nvram.Store { return c.mem }

// Engine exposes the simulation engine driving this NIC, for layers that
// need to schedule retries (e.g. ring-writer retransmission) without holding
// a Network reference.
func (c *NIC) Engine() *sim.Engine { return c.net.Eng }

// --- one-sided verbs ---

type verbKind uint8

const (
	verbProbe verbKind = iota
	verbRead
	verbWrite
)

// verbOp is the pooled state machine of one one-sided verb: src tx NIC →
// wire → dst rx NIC (execute against memory) → wire → src rx NIC
// (completion). Each wire leg is checked and delayed independently
// (nemesis.go), so an asymmetric cut can lose the completion of a verb
// whose remote effect already landed — the initiator then sees ErrTimeout
// for an operation that actually executed, the ambiguity FaRM's recovery
// protocols must absorb.
//
// The stage continuations (txFn..failFn) are bound to the op once when it
// is first allocated and reused for the op's whole pooled lifetime, so a
// steady-state verb schedules through them without allocating.
type verbOp struct {
	net     *Network
	src     *NIC
	dst     MachineID
	kind    verbKind
	region  nvram.RegionID
	off     int
	length  int    // read/probe length
	payload []byte // write staging copy (pooled)

	readCb  func(data []byte, err error)
	writeCb func(err error)

	data []byte
	err  error

	txFn, arriveFn, execFn, returnFn, completeFn, failFn, localFn func()
}

func (n *Network) getVerbOp() *verbOp {
	if k := len(n.verbFree); k > 0 {
		op := n.verbFree[k-1]
		n.verbFree = n.verbFree[:k-1]
		return op
	}
	op := &verbOp{net: n}
	op.txFn = op.txDone
	op.arriveFn = op.arrive
	op.execFn = op.exec
	op.returnFn = op.ret
	op.completeFn = op.complete
	op.failFn = op.failFire
	op.localFn = op.local
	return op
}

func (op *verbOp) recycle() {
	if op.payload != nil {
		op.net.putBuf(op.payload)
	}
	op.src = nil
	op.payload, op.data = nil, nil
	op.readCb, op.writeCb = nil, nil
	op.err = nil
	op.net.verbFree = append(op.net.verbFree, op)
}

// wireBytes is the verb's modeled transfer size on the wire.
func (op *verbOp) wireBytes() int {
	if op.kind == verbWrite {
		return len(op.payload)
	}
	return op.length
}

// start issues the verb. Dead initiators complete nothing.
func (op *verbOp) start(c *NIC) {
	net := op.net
	op.src = c
	if !c.powered {
		op.recycle()
		return
	}
	if op.dst == c.ID {
		// Same-machine fast path: a plain memory access, no NIC or wire.
		net.Eng.After(net.Opts.LocalOpTime, op.localFn)
		return
	}
	c.tx.Do(net.nicOpTime(c.ID)+net.xferTime(c.ID, op.wireBytes()), op.txFn)
}

func (op *verbOp) local() {
	c := op.src
	if !c.powered {
		op.recycle()
		return
	}
	op.execOn(c)
	op.finish()
}

func (op *verbOp) txDone() {
	net, c := op.net, op.src
	net.Eng.After(net.hop()+net.legDelay(c.ID, op.dst), op.arriveFn)
}

func (op *verbOp) arrive() {
	net, c := op.net, op.src
	r := net.nic(op.dst)
	if r == nil || !r.powered || !net.legUp(c.ID, op.dst) {
		op.fail()
		return
	}
	r.rx.Do(net.nicOpTime(op.dst), op.execFn)
}

func (op *verbOp) exec() {
	net, c := op.net, op.src
	// Execute against remote memory in NIC context. The remote machine may
	// have died between scheduling and service.
	r := net.nic(op.dst)
	if !r.powered || !net.legUp(c.ID, op.dst) {
		op.fail()
		return
	}
	op.execOn(r)
	// The remote effect is durable from here on; only the completion can
	// still be lost.
	if !net.legUp(op.dst, c.ID) {
		*net.cCompletionLost++
		op.fail()
		return
	}
	net.Eng.After(net.hop()+net.legDelay(op.dst, c.ID)+net.xferTime(op.dst, op.wireBytes()), op.returnFn)
}

// execOn performs the verb's memory effect on NIC r (which may be the
// initiator itself on the local fast path).
func (op *verbOp) execOn(r *NIC) {
	switch op.kind {
	case verbRead:
		b := r.mem.Region(op.region)
		if b == nil || op.off < 0 || op.length < 0 || op.off+op.length > len(b) {
			op.err = ErrBadAddress
			return
		}
		data := make([]byte, op.length)
		copy(data, b[op.off:op.off+op.length])
		op.data = data
	case verbWrite:
		b := r.mem.Region(op.region)
		if b == nil || op.off < 0 || op.off+len(op.payload) > len(b) {
			op.err = ErrBadAddress
			return
		}
		copy(b[op.off:], op.payload)
		if r.writeHook != nil {
			r.writeHook(op.region, op.off, len(op.payload))
		}
	case verbProbe:
	}
}

func (op *verbOp) ret() {
	c := op.src
	if !c.powered {
		op.recycle()
		return
	}
	c.rx.Do(op.net.nicOpTime(c.ID), op.completeFn)
}

func (op *verbOp) complete() {
	if !op.src.powered {
		op.recycle()
		return
	}
	op.finish()
}

// fail arms the initiator-side timeout: the destination is dead, cut or
// lost the completion; the initiator reports ErrTimeout after FailTimeout.
func (op *verbOp) fail() {
	op.net.Eng.After(op.net.Opts.FailTimeout, op.failFn)
}

func (op *verbOp) failFire() {
	if !op.src.powered {
		op.recycle()
		return
	}
	op.data, op.err = nil, ErrTimeout
	op.finish()
}

// finish invokes the caller's completion callback and recycles the op. The
// op is recycled first (fields copied out) so the callback may immediately
// issue new verbs that reuse it.
func (op *verbOp) finish() {
	kind, data, err := op.kind, op.data, op.err
	readCb, writeCb := op.readCb, op.writeCb
	op.recycle()
	if kind == verbRead {
		if readCb == nil {
			return
		}
		if err != nil {
			readCb(nil, err)
			return
		}
		readCb(data, nil)
		return
	}
	if writeCb != nil {
		writeCb(err)
	}
}

// Read issues a one-sided RDMA read of length bytes at (region, off) on
// dst. cb receives the data or an error. No remote CPU is involved; the
// remote NIC serves the request from registered memory.
func (c *NIC) Read(dst MachineID, region nvram.RegionID, off, length int, cb func(data []byte, err error)) {
	net := c.net
	if dst == c.ID {
		*net.cLocalRead++
	} else {
		*net.cRDMARead++
		*net.cRDMAReadBytes += uint64(length)
	}
	op := net.getVerbOp()
	op.dst, op.kind = dst, verbRead
	op.region, op.off, op.length = region, off, length
	op.readCb = cb
	op.start(c)
}

// Write issues a one-sided RDMA write of data at (region, off) on dst. cb
// is the hardware ack: it fires when the remote NIC has placed the bytes in
// remote non-volatile memory, with no remote CPU involvement.
func (c *NIC) Write(dst MachineID, region nvram.RegionID, off int, data []byte, cb func(err error)) {
	net := c.net
	if dst == c.ID {
		*net.cLocalWrite++
	} else {
		*net.cRDMAWrite++
		*net.cRDMAWriteBytes += uint64(len(data))
	}
	payload := net.getBuf(len(data))
	copy(payload, data)
	op := net.getVerbOp()
	op.dst, op.kind = dst, verbWrite
	op.region, op.off = region, off
	op.payload = payload
	op.writeCb = cb
	op.start(c)
}

// Probe issues a minimal one-sided read used by the reconfiguration
// protocol to test liveness (§5.2 step 2); it succeeds iff the destination
// NIC is powered and reachable.
func (c *NIC) Probe(dst MachineID, cb func(err error)) {
	net := c.net
	*net.cRDMARead++
	op := net.getVerbOp()
	op.dst, op.kind = dst, verbProbe
	op.length = 8
	op.writeCb = cb
	op.start(c)
}

// Batch is one coalesced fabric frame carrying several small control
// messages to the same destination. The receiver's message handler gets
// the Batch itself and dispatches the contained messages individually.
// Stamps carries each message's enqueue time (for queueing-latency stats);
// Ctxs carries each message's causal trace context. Each is either empty
// or parallel to Msgs, so untraced runs pay nothing for the extra field.
//
// Batches obtained from NIC.GetBatch are pooled: the fabric reclaims them
// after the final delivery (or loss), so a sender must treat the frame as
// consumed once passed to SendBatch.
type Batch struct {
	Msgs   []interface{}
	Stamps []sim.Time
	Ctxs   []trace.Ctx

	pooled bool
}

// GetBatch returns an empty (possibly recycled) batch frame to fill and
// pass to SendBatch.
func (c *NIC) GetBatch() *Batch { return c.net.getBatch() }

// ReleaseBatch returns an unsent pooled batch to the pool (e.g. the sender
// died between enqueue and flush). Batches passed to SendBatch must NOT be
// released by the caller; the fabric owns them from that point.
func (c *NIC) ReleaseBatch(b *Batch) { c.net.putBatch(b) }

func (n *Network) getBatch() *Batch {
	if k := len(n.batchFree); k > 0 {
		b := n.batchFree[k-1]
		n.batchFree = n.batchFree[:k-1]
		return b
	}
	return &Batch{pooled: true}
}

func (n *Network) putBatch(b *Batch) {
	if b == nil || !b.pooled {
		return
	}
	for i := range b.Msgs {
		b.Msgs[i] = nil
	}
	b.Msgs = b.Msgs[:0]
	b.Stamps = b.Stamps[:0]
	b.Ctxs = b.Ctxs[:0]
	n.batchFree = append(n.batchFree, b)
}

// releaseIfBatch reclaims a pooled batch that died before delivery.
func (n *Network) releaseIfBatch(msg interface{}) {
	if b, ok := msg.(*Batch); ok {
		n.putBatch(b)
	}
}

// Send delivers msg reliably to dst's message handler. Delivery is
// fire-and-forget at this layer: if dst is dead or partitioned the message
// vanishes and higher layers notice via leases/timeouts, as in the paper.
// The payload is shared by reference; senders must not mutate it.
func (c *NIC) Send(dst MachineID, msg interface{}) {
	*c.net.cMsgSend++
	c.transmit(dst, msg, false, 0)
}

// SendSized is Send with the message's modeled wire size charged against
// the NIC's bandwidth, so uncoalesced reliable sends occupy the wire like
// everything else (the registry wire-size model supplies bytes).
func (c *NIC) SendSized(dst MachineID, msg interface{}, bytes int) {
	*c.net.cMsgSend++
	*c.net.cMsgSendBytes += uint64(bytes)
	c.transmit(dst, msg, false, bytes)
}

// SendBatch delivers a coalesced frame of len(b.Msgs) messages as a single
// fabric send, occupying the NIC once and the wire for the frame's modeled
// size. bytes is the total modeled payload size; the serialization cost it
// implies is charged at the sending NIC. Pooled frames are reclaimed by
// the fabric after final delivery.
func (c *NIC) SendBatch(dst MachineID, b *Batch, bytes int) {
	*c.net.cMsgSend++
	*c.net.cMsgCoalesced += uint64(len(b.Msgs))
	*c.net.cMsgSendBytes += uint64(bytes)
	c.transmit(dst, b, false, bytes)
}

// SendUD delivers msg over the connectionless unreliable datagram
// transport used by the lease manager (§5.1). Datagrams may be dropped.
func (c *NIC) SendUD(dst MachineID, msg interface{}) {
	*c.net.cUDSend++
	c.transmit(dst, msg, true, 0)
}

// sendOp is the pooled state machine of one reliable send or datagram:
// src tx NIC → wire → dst rx NIC → handler upcall. Duplicate-delivery
// faults schedule two wire legs through the same op; the op (and a pooled
// batch riding on it) is reclaimed when the last copy delivers or dies.
type sendOp struct {
	net       *Network
	src       *NIC
	dst       MachineID
	msg       interface{}
	batch     *Batch // non-nil when msg is a pooled Batch
	ud        bool
	bytes     int
	copies    int8
	remaining int8

	txFn, arriveFn, deliverFn func()
}

func (n *Network) getSendOp() *sendOp {
	if k := len(n.sendFree); k > 0 {
		op := n.sendFree[k-1]
		n.sendFree = n.sendFree[:k-1]
		return op
	}
	op := &sendOp{net: n}
	op.txFn = op.txDone
	op.arriveFn = op.arrive
	op.deliverFn = op.deliver
	return op
}

// done retires one delivery copy; the last one reclaims the op and any
// pooled batch (whose messages have all been dispatched by now).
func (op *sendOp) done() {
	op.remaining--
	if op.remaining > 0 {
		return
	}
	if op.batch != nil {
		op.net.putBatch(op.batch)
	}
	op.src = nil
	op.msg, op.batch = nil, nil
	op.net.sendFree = append(op.net.sendFree, op)
}

func (op *sendOp) txDone() {
	net, c := op.net, op.src
	for i := int8(0); i < op.copies; i++ {
		net.Eng.After(net.hop()+net.legDelay(c.ID, op.dst), op.arriveFn)
	}
}

func (op *sendOp) arrive() {
	net, c := op.net, op.src
	r := net.nic(op.dst)
	if r == nil || !r.powered || !net.legUp(c.ID, op.dst) {
		*net.cMsgLost++
		op.done()
		return
	}
	r.rx.Do(net.nicOpTime(op.dst), op.deliverFn)
}

func (op *sendOp) deliver() {
	r := op.net.nic(op.dst)
	if r == nil || !r.powered {
		op.done()
		return
	}
	h := r.msgHandler
	if op.ud {
		h = r.udHandler
	}
	if h != nil {
		h(op.src.ID, op.msg)
	}
	op.done()
}

func (c *NIC) transmit(dst MachineID, msg interface{}, ud bool, bytes int) {
	net := c.net
	if !c.powered {
		net.releaseIfBatch(msg)
		return // dead initiators send nothing
	}
	if ud && net.Eng.Rand().Bool(net.udLossProb(c.ID, dst)) {
		*net.cUDDropped++
		return
	}
	if dst == c.ID {
		// Loopback: skip the NIC and wire (link faults model the fabric, so
		// they never apply to a machine talking to itself).
		op := net.getSendOp()
		op.src, op.dst, op.msg, op.ud, op.bytes = c, dst, msg, ud, bytes
		op.batch = pooledBatch(msg)
		op.copies, op.remaining = 1, 1
		net.Eng.After(net.Opts.LocalOpTime, op.deliverFn)
		return
	}
	// Reliable-send drop/dup faults model RC retry exhaustion and ack-loss
	// retransmission at the message layer. They deliberately do NOT apply
	// to one-sided verbs: RC ordering cannot lose one write and deliver the
	// next, so partial verb loss is modelled as a Cut episode instead.
	copies := int8(1)
	if !ud {
		if net.dropSend(c.ID, dst) {
			*net.cFaultDrop++
			net.releaseIfBatch(msg)
			return
		}
		if net.dupSend(c.ID, dst) {
			*net.cFaultDup++
			copies = 2
		}
	}
	op := net.getSendOp()
	op.src, op.dst, op.msg, op.ud, op.bytes = c, dst, msg, ud, bytes
	op.batch = pooledBatch(msg)
	op.copies, op.remaining = copies, copies
	c.tx.Do(net.nicOpTime(c.ID)+net.xferTime(c.ID, bytes), op.txFn)
}

func pooledBatch(msg interface{}) *Batch {
	if b, ok := msg.(*Batch); ok && b.pooled {
		return b
	}
	return nil
}
