// Nemesis layer: a per-link and per-machine fault table consulted on every
// verb and send. The clean faults the simulator always supported — kills
// (SetPowered) and symmetric partitions (SetPartition) — model crash-stop
// behaviour; real fabrics also fail *asymmetrically* and *partially*:
// one-way reachability (A→B cut while B→A delivers), inflated latency and
// jitter on one path, silent loss of reliable sends after RC retry
// exhaustion, duplicate delivery, and gray failures where one machine's NIC
// is merely slow. Precise membership (§5.2) is designed for exactly this
// regime — NICs keep acking one-sided operations no matter what the
// software layer believes — so the fault table lives here, below every
// protocol.
//
// Determinism: fault state is plain data consulted synchronously on the
// engine goroutine, and every stochastic choice (jitter samples, drop and
// duplicate coin flips) draws from the engine's seeded generator. Identical
// seed and identical fault-installation schedule therefore reproduce the
// run bit-for-bit, including the injected faults.
package fabric

import "farm/internal/sim"

// LinkFault describes the fault state of one DIRECTED link src→dst.
// Faults are directional by design: cutting A→B says nothing about B→A.
type LinkFault struct {
	// Cut drops everything traversing the link (verb legs and sends).
	// One-sided operations whose request or completion leg crosses a cut
	// link report ErrTimeout at the initiator after FailTimeout, exactly
	// like a dead destination — the initiator cannot tell the difference.
	Cut bool
	// Delay is extra one-way latency added to every traversal.
	Delay sim.DelayDist
	// DropProb silently drops reliable sends (Send/SendBatch) with this
	// probability, modelling RC retry exhaustion at the message layer.
	// One-sided verbs are NOT dropped by this knob: RC write ordering
	// means a connection cannot lose one write and deliver the next, so
	// partial verb loss is modelled as a Cut episode instead.
	DropProb float64
	// DupProb delivers reliable sends twice with this probability
	// (retransmission after a lost ack).
	DupProb float64
	// UDLossProb adds to the base unreliable-datagram loss on this link.
	UDLossProb float64
}

// faulted reports whether the fault does anything at all.
func (f LinkFault) faulted() bool {
	return f.Cut || !f.Delay.Zero() || f.DropProb > 0 || f.DupProb > 0 || f.UDLossProb > 0
}

// MachineFault is a gray failure of one machine's NIC: the machine is
// alive, its leases renew, its memory serves verbs — everything is just
// slower, and optionally one direction is gone entirely.
type MachineFault struct {
	// OpTimeFactor multiplies NICOpTime for this machine's tx and rx
	// processing (0 or 1 = healthy).
	OpTimeFactor float64
	// BandwidthFactor multiplies BytesPerSecond (0 or 1 = healthy; 0.1 =
	// a link renegotiated down to a tenth of its rate).
	BandwidthFactor float64
	// ExtraDelay is added once per wire traversal that starts or ends at
	// this machine (a sick NIC inflates both its sends and receives).
	ExtraDelay sim.DelayDist
	// TxCut cuts everything this machine emits (it can receive but not
	// send); RxCut cuts everything addressed to it (it can send but not
	// receive). Together they are a full isolation.
	TxCut, RxCut bool
}

// WithTxCut/WithRxCut return a copy with one direction cut, preserving the
// rest of the fault (so a gray-slow machine can additionally lose a
// direction without resetting its degradation).
func (f MachineFault) WithTxCut(on bool) MachineFault { f.TxCut = on; return f }
func (f MachineFault) WithRxCut(on bool) MachineFault { f.RxCut = on; return f }

func (f MachineFault) faulted() bool {
	return f.TxCut || f.RxCut || !f.ExtraDelay.Zero() ||
		(f.OpTimeFactor != 0 && f.OpTimeFactor != 1) ||
		(f.BandwidthFactor != 0 && f.BandwidthFactor != 1)
}

type linkKey struct{ src, dst MachineID }

// SetLinkFault installs (or replaces) the fault state of the directed link
// src→dst. A zero LinkFault clears it.
func (n *Network) SetLinkFault(src, dst MachineID, f LinkFault) {
	k := linkKey{src, dst}
	if !f.faulted() {
		delete(n.linkFaults, k)
		return
	}
	n.linkFaults[k] = f
}

// CutLink cuts the directed link src→dst (sugar over SetLinkFault).
func (n *Network) CutLink(src, dst MachineID) {
	f := n.linkFaults[linkKey{src, dst}]
	f.Cut = true
	n.SetLinkFault(src, dst, f)
}

// HealLink clears any fault on the directed link src→dst.
func (n *Network) HealLink(src, dst MachineID) {
	delete(n.linkFaults, linkKey{src, dst})
}

// LinkFaultOf returns the current fault on src→dst (zero if healthy).
func (n *Network) LinkFaultOf(src, dst MachineID) LinkFault {
	return n.linkFaults[linkKey{src, dst}]
}

// SetMachineFault installs (or replaces) a machine's gray-failure state. A
// zero MachineFault clears it.
func (n *Network) SetMachineFault(id MachineID, f MachineFault) {
	if !f.faulted() {
		delete(n.machineFaults, id)
		return
	}
	n.machineFaults[id] = f
}

// ClearMachineFault restores a machine's NIC to health.
func (n *Network) ClearMachineFault(id MachineID) { delete(n.machineFaults, id) }

// MachineFaultOf returns a machine's current gray-failure state.
func (n *Network) MachineFaultOf(id MachineID) MachineFault { return n.machineFaults[id] }

// ClearFaults removes every link and machine fault (partitions included).
// Chaos campaigns call it before their quiesce window so audits measure the
// protocols, not a still-broken fabric.
func (n *Network) ClearFaults() {
	n.linkFaults = make(map[linkKey]LinkFault)
	n.machineFaults = make(map[MachineID]MachineFault)
	n.HealPartition()
}

// FaultCount returns how many link and machine faults are installed
// (observability for tests and campaign audits).
func (n *Network) FaultCount() int { return len(n.linkFaults) + len(n.machineFaults) }

// legUp reports whether a wire traversal from→to delivers: same partition
// group, no directional cut, no Tx/Rx machine cut on the endpoints.
func (n *Network) legUp(from, to MachineID) bool {
	if n.partitionOf(from) != n.partitionOf(to) {
		return false
	}
	if len(n.linkFaults) > 0 && n.linkFaults[linkKey{from, to}].Cut {
		return false
	}
	if len(n.machineFaults) > 0 {
		if n.machineFaults[from].TxCut || n.machineFaults[to].RxCut {
			return false
		}
	}
	return true
}

// legDelay samples the extra latency of one wire traversal from→to: the
// directed link's delay plus both endpoints' gray-failure delays. It draws
// from the engine generator only when a fault is installed, so healthy runs
// consume the random stream exactly as before the nemesis layer existed.
func (n *Network) legDelay(from, to MachineID) sim.Time {
	var d sim.Time
	if len(n.linkFaults) > 0 {
		if f, ok := n.linkFaults[linkKey{from, to}]; ok && !f.Delay.Zero() {
			d += f.Delay.Sample(n.Eng.Rand())
		}
	}
	if len(n.machineFaults) > 0 {
		if f, ok := n.machineFaults[from]; ok && !f.ExtraDelay.Zero() {
			d += f.ExtraDelay.Sample(n.Eng.Rand())
		}
		if f, ok := n.machineFaults[to]; ok && !f.ExtraDelay.Zero() {
			d += f.ExtraDelay.Sample(n.Eng.Rand())
		}
	}
	return d
}

// dropSend flips the reliable-send drop coin for the link from→to.
func (n *Network) dropSend(from, to MachineID) bool {
	if len(n.linkFaults) == 0 {
		return false
	}
	f, ok := n.linkFaults[linkKey{from, to}]
	if !ok || f.DropProb <= 0 {
		return false
	}
	return n.Eng.Rand().Bool(f.DropProb)
}

// dupSend flips the duplicate-delivery coin for the link from→to.
func (n *Network) dupSend(from, to MachineID) bool {
	if len(n.linkFaults) == 0 {
		return false
	}
	f, ok := n.linkFaults[linkKey{from, to}]
	if !ok || f.DupProb <= 0 {
		return false
	}
	return n.Eng.Rand().Bool(f.DupProb)
}

// udLossProb returns the datagram loss probability on from→to (base rate
// plus any injected link loss).
func (n *Network) udLossProb(from, to MachineID) float64 {
	p := n.Opts.UDLossProb
	if len(n.linkFaults) > 0 {
		p += n.linkFaults[linkKey{from, to}].UDLossProb
	}
	if p > 1 {
		p = 1
	}
	return p
}

// nicOpTime returns one machine's (possibly degraded) per-verb NIC time.
func (n *Network) nicOpTime(id MachineID) sim.Time {
	t := n.Opts.NICOpTime
	if len(n.machineFaults) > 0 {
		if f, ok := n.machineFaults[id]; ok && f.OpTimeFactor > 0 && f.OpTimeFactor != 1 {
			t = sim.Time(float64(t) * f.OpTimeFactor)
		}
	}
	return t
}

// xferTime returns the wire occupancy of `bytes` at one machine's
// (possibly degraded) bandwidth.
func (n *Network) xferTime(id MachineID, bytes int) sim.Time {
	if bytes == 0 {
		return 0
	}
	bps := n.Opts.BytesPerSecond
	if len(n.machineFaults) > 0 {
		if f, ok := n.machineFaults[id]; ok && f.BandwidthFactor > 0 && f.BandwidthFactor != 1 {
			bps *= f.BandwidthFactor
		}
	}
	return sim.Time(float64(bytes) / bps * float64(sim.Second))
}
