package fabric

import (
	"testing"

	"farm/internal/nvram"
	"farm/internal/sim"
)

// Micro-benchmarks for the fabric hot paths: one-sided verbs, reliable
// sends and coalesced batches. Each iteration drives a full operation to
// completion (every wire leg and NIC service event), so ns/op is the cost
// of the whole simulated operation, not one event. The -benchmem columns
// guard the pooled-op contract: steady state must stay at (or within a
// rounding error of) zero allocs beyond payload bytes handed to callbacks.

func newBenchNet(b *testing.B) (*sim.Engine, *NIC, *NIC) {
	b.Helper()
	eng := sim.NewEngine(42)
	net := NewNetwork(eng, Options{})
	m0, m1 := nvram.NewStore(), nvram.NewStore()
	n0 := net.AddMachine(0, m0)
	n1 := net.AddMachine(1, m1)
	if _, err := m1.Allocate(5, 4096); err != nil {
		b.Fatal(err)
	}
	return eng, n0, n1
}

func BenchmarkRDMAWrite(b *testing.B) {
	eng, n0, _ := newBenchNet(b)
	buf := make([]byte, 128)
	cb := func(error) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.Write(1, 5, 0, buf, cb)
		eng.Run()
	}
}

func BenchmarkRDMARead(b *testing.B) {
	eng, n0, _ := newBenchNet(b)
	cb := func([]byte, error) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.Read(1, 5, 0, 128, cb)
		eng.Run()
	}
}

func BenchmarkSend(b *testing.B) {
	eng, n0, n1 := newBenchNet(b)
	n1.SetMessageHandler(func(MachineID, interface{}) {})
	msg := &struct{ X int }{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.SendSized(1, msg, 64)
		eng.Run()
	}
}

func BenchmarkSendBatch(b *testing.B) {
	eng, n0, n1 := newBenchNet(b)
	n1.SetMessageHandler(func(MachineID, interface{}) {})
	msg := &struct{ X int }{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt := n0.GetBatch()
		for k := 0; k < 8; k++ {
			bt.Msgs = append(bt.Msgs, msg)
			bt.Stamps = append(bt.Stamps, eng.Now())
		}
		n0.SendBatch(1, bt, 8*64)
		eng.Run()
	}
}
