// Package history records and checks transaction histories.
//
// The recorder captures, per transaction, the client-observable facts the
// paper's consistency claim (§3: committed transactions are strictly
// serializable) is about: the real-time invoke/complete interval in
// simulated time, every read with the object version it observed, and every
// buffered write with the version it locked at. Because FaRM stamps a
// version into every object header and a committing writer installs exactly
// observed-version+1, the version order of each object is directly
// recoverable from the history — no exponential search over serial orders
// is needed. The offline checker (checker.go) exploits that to build the
// transaction dependency serialization graph in polynomial time and report
// any cycle as a strict-serializability violation with a minimal witness,
// in the spirit of Elle/Porcupine but with the search collapsed by the
// recorded versions.
//
// The recorder is deterministic (event ids are assigned in Begin order on
// the single simulation goroutine, times are virtual) and zero-allocation
// when disabled: a disabled cluster holds a nil *Recorder and every hook in
// the transaction hot path is a nil-check, mirroring internal/trace.
package history

import (
	"farm/internal/proto"
	"farm/internal/sim"
)

// Outcome is the client-visible fate of a transaction.
type Outcome uint8

const (
	// Indeterminate: the transaction was invoked but no outcome was ever
	// reported (the coordinator died mid-commit, or the run ended first).
	// Its writes may or may not have been installed; the checker infers
	// which from later observations when it can.
	Indeterminate Outcome = iota
	// Committed: the commit callback reported success.
	Committed
	// Aborted: the commit callback reported an error (conflict, recovery
	// abort, unavailability). Reported aborts install no writes.
	Aborted
	// UserAborted: the application abandoned the transaction before
	// Commit; no remote state ever existed.
	UserAborted
)

// String names the outcome (also its JSON encoding).
func (o Outcome) String() string {
	switch o {
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case UserAborted:
		return "user-aborted"
	default:
		return "indeterminate"
	}
}

// MarshalJSON encodes the outcome as its name.
func (o Outcome) MarshalJSON() ([]byte, error) {
	return []byte(`"` + o.String() + `"`), nil
}

// UnmarshalJSON decodes an outcome name.
func (o *Outcome) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"committed"`:
		*o = Committed
	case `"aborted"`:
		*o = Aborted
	case `"user-aborted"`:
		*o = UserAborted
	default:
		*o = Indeterminate
	}
	return nil
}

// Read is one object read: the address and the version the header carried.
type Read struct {
	Addr    proto.Addr `json:"addr"`
	Version uint64     `json:"ver"`
}

// Write is one buffered write. Version is the version observed at read or
// alloc time — the version the commit protocol locks at; a successful
// commit installs Version+1. Alloc marks a freshly allocated slot, Free a
// deallocation (the allocation bit clears; the payload zeroes).
type Write struct {
	Addr    proto.Addr `json:"addr"`
	Version uint64     `json:"ver"`
	Value   []byte     `json:"val,omitempty"`
	Alloc   bool       `json:"alloc,omitempty"`
	Free    bool       `json:"free,omitempty"`
}

// Event is one transaction's recorded history.
type Event struct {
	// ID is the 1-based event id, assigned in Begin order (deterministic:
	// the simulation is single-threaded).
	ID uint64 `json:"id"`
	// Machine/Thread locate the coordinator.
	Machine int `json:"m"`
	Thread  int `json:"t"`
	// Invoke and Complete bound the transaction in simulated time.
	// Complete is -1 while no outcome has been reported.
	Invoke   sim.Time `json:"inv"`
	Complete sim.Time `json:"cmp"`
	Outcome  Outcome  `json:"out"`
	Reads    []Read   `json:"reads,omitempty"`
	Writes   []Write  `json:"writes,omitempty"`
}

// History is a complete recorded run.
type History struct {
	Schema string   `json:"schema"`
	Events []*Event `json:"events"`
}

// Schema identifies the dump format.
const Schema = "farm/history/v1"

// Recorder accumulates events for one cluster. All methods run on the
// simulation goroutine; no locking.
type Recorder struct {
	events []*Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Open records a transaction invocation and returns its per-transaction
// recording handle.
func (r *Recorder) Open(machine, thread int, at sim.Time) *TxRec {
	ev := &Event{
		ID:       uint64(len(r.events)) + 1,
		Machine:  machine,
		Thread:   thread,
		Invoke:   at,
		Complete: -1,
	}
	r.events = append(r.events, ev)
	return &TxRec{ev: ev}
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Export snapshots the recorded history.
func (r *Recorder) Export() *History {
	return &History{Schema: Schema, Events: r.events}
}

// TxRec records one transaction. The transaction layer guarantees at most
// one Read per distinct address (repeated reads are served from the read
// cache); Write deduplicates by address because applications may overwrite
// their own buffered writes.
type TxRec struct {
	ev   *Event
	done bool
}

// Read records an object read and the version it observed.
func (t *TxRec) Read(addr proto.Addr, version uint64) {
	t.ev.Reads = append(t.ev.Reads, Read{Addr: addr, Version: version})
}

// Write records (or updates) a buffered write. The value is copied.
func (t *TxRec) Write(addr proto.Addr, version uint64, value []byte, alloc, free bool) {
	for i := range t.ev.Writes {
		if t.ev.Writes[i].Addr == addr {
			w := &t.ev.Writes[i]
			w.Value = append(w.Value[:0], value...)
			w.Free = free
			return
		}
	}
	t.ev.Writes = append(t.ev.Writes, Write{
		Addr:    addr,
		Version: version,
		Value:   append([]byte(nil), value...),
		Alloc:   alloc,
		Free:    free,
	})
}

// Finish records the outcome. Idempotent: commit-path requeues can wrap
// the completion callback more than once; only the first report counts.
func (t *TxRec) Finish(at sim.Time, o Outcome) {
	if t.done {
		return
	}
	t.done = true
	t.ev.Complete = at
	t.ev.Outcome = o
}
