package history

import (
	"encoding/json"
	"fmt"
)

// Dump serializes a history to its canonical JSON form: one top-level
// object with the schema tag and the events array, one event per line.
// Struct field order is fixed and map-free, so the same history always
// produces byte-identical output — the determinism contract chaos replay
// relies on (two runs of one seed must dump identically).
func Dump(h *History) []byte {
	var buf []byte
	buf = append(buf, `{"schema":`...)
	buf = appendJSON(buf, h.Schema)
	buf = append(buf, `,"events":[`...)
	for i, ev := range h.Events {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
		buf = appendJSON(buf, ev)
	}
	buf = append(buf, "\n]}\n"...)
	return buf
}

func appendJSON(buf []byte, v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Only fixed struct types reach Marshal; they cannot fail.
		panic(fmt.Sprintf("history: marshal: %v", err))
	}
	return append(buf, b...)
}

// Load parses a dump produced by Dump.
func Load(data []byte) (*History, error) {
	var h History
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("history: parse dump: %w", err)
	}
	if h.Schema != Schema {
		return nil, fmt.Errorf("history: unknown schema %q (want %q)", h.Schema, Schema)
	}
	return &h, nil
}
