package history

import (
	"bytes"
	"reflect"
	"testing"
)

func TestRecorderDumpRoundtrip(t *testing.T) {
	r := NewRecorder()
	t1 := r.Open(0, 3, 100)
	t1.Read(keyA, 7)
	t1.Write(keyA, 7, []byte{1, 2, 3}, false, false)
	t1.Write(keyA, 7, []byte{9, 9}, false, false) // overwrite dedups by addr
	t1.Finish(250, Committed)
	t1.Finish(999, Aborted) // idempotent: second report ignored

	t2 := r.Open(1, 0, 300)
	t2.Read(keyB, 2)
	t2.Finish(400, UserAborted)

	t3 := r.Open(2, 1, 500) // never finished → indeterminate
	t3.Read(keyA, 8)

	h := r.Export()
	if len(h.Events) != 3 || r.Len() != 3 {
		t.Fatalf("want 3 events, got %d", len(h.Events))
	}
	e1 := h.Events[0]
	if e1.ID != 1 || e1.Machine != 0 || e1.Thread != 3 || e1.Invoke != 100 || e1.Complete != 250 || e1.Outcome != Committed {
		t.Fatalf("event 1: %+v", e1)
	}
	if len(e1.Writes) != 1 || !bytes.Equal(e1.Writes[0].Value, []byte{9, 9}) {
		t.Fatalf("write dedup: %+v", e1.Writes)
	}
	if h.Events[2].Complete != -1 || h.Events[2].Outcome != Indeterminate {
		t.Fatalf("unfinished event: %+v", h.Events[2])
	}

	dump := Dump(h)
	loaded, err := Load(dump)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(h, loaded) {
		t.Fatalf("roundtrip mismatch:\n%+v\nvs\n%+v", h, loaded)
	}
	if !bytes.Equal(dump, Dump(loaded)) {
		t.Fatalf("re-dump not byte-identical")
	}
}

func TestLoadRejectsUnknownSchema(t *testing.T) {
	if _, err := Load([]byte(`{"schema":"bogus/v9","events":[]}`)); err == nil {
		t.Fatalf("unknown schema accepted")
	}
	if _, err := Load([]byte(`not json`)); err == nil {
		t.Fatalf("garbage accepted")
	}
}

func TestWriteRecordsAllocAndFree(t *testing.T) {
	r := NewRecorder()
	tx := r.Open(0, 0, 0)
	tx.Write(keyA, 4, []byte{5}, true, false)
	tx.Write(keyB, 9, nil, false, true)
	tx.Finish(10, Committed)
	evs := r.Export().Events
	if !evs[0].Writes[0].Alloc {
		t.Fatalf("alloc bit lost: %+v", evs[0].Writes[0])
	}
	if !evs[0].Writes[1].Free {
		t.Fatalf("free bit lost: %+v", evs[0].Writes[1])
	}
	if evs[0].Writes[0].Version != 4 || evs[0].Writes[1].Version != 9 {
		t.Fatalf("versions: %+v", evs[0].Writes)
	}
}

func TestEmptyValueRoundtrip(t *testing.T) {
	// A Free's zeroed value and a nil value must survive dump/load.
	r := NewRecorder()
	tx := r.Open(0, 0, 0)
	tx.Write(keyA, 1, []byte{0, 0, 0, 0}, false, true)
	tx.Finish(5, Committed)
	h := r.Export()
	loaded, err := Load(Dump(h))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !bytes.Equal(loaded.Events[0].Writes[0].Value, []byte{0, 0, 0, 0}) {
		t.Fatalf("value lost: %+v", loaded.Events[0].Writes[0])
	}
}
