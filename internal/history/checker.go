package history

import (
	"fmt"
	"sort"

	"farm/internal/proto"
	"farm/internal/sim"
)

// Violation is one checker finding.
type Violation struct {
	// Kind is "cycle", "dirty-read" or "duplicate-install".
	Kind string
	// Desc is the human-readable witness (for cycles: the full edge walk
	// with keys and versions).
	Desc string
	// Txs lists the event ids involved.
	Txs []uint64
}

// String renders the violation.
func (v Violation) String() string { return v.Kind + ": " + v.Desc }

// Stats quantifies a checked history.
type Stats struct {
	Events        int
	Committed     int
	Aborted       int
	UserAborted   int
	Indeterminate int
	// InferredCommitted counts indeterminate transactions whose installs
	// were observed by later reads or writers, proving they committed.
	InferredCommitted int
	// AmbiguousVersions counts observed versions explainable by more than
	// one indeterminate writer; no edges are drawn for them (conservative:
	// never a violation).
	AmbiguousVersions int
	// UnknownVersionReads counts reads of versions with no recorded
	// installer and no genesis explanation (only possible when the history
	// does not start at cluster birth).
	UnknownVersionReads int
	// PreGenesisReads counts reads at or below a key's allocation-time
	// version (initial state, no installer needed).
	PreGenesisReads int
	Keys            int
	Installs        int
	Nodes           int
	Edges           int
	// OpacityChecked/NonOpaque quantify the opacity probe: aborted
	// transactions with ≥2 reads whose read sets were checked for snapshot
	// consistency against the committed serialization, and how many were
	// NOT consistent with any single point in it. FaRM OCC legitimately
	// exposes such reads to doomed transactions (validation catches them at
	// commit), so NonOpaque is a measurement, not a violation — the
	// baseline the global-time/opacity roadmap item starts from.
	OpacityChecked int
	NonOpaque      int
}

// Report is the checker's output for one history.
type Report struct {
	Violations []Violation
	Stats      Stats
}

// Ok reports whether the history passed.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String renders a one-line summary.
func (r *Report) String() string {
	s := r.Stats
	status := "strict-serializable"
	if !r.Ok() {
		status = fmt.Sprintf("%d VIOLATIONS", len(r.Violations))
	}
	return fmt.Sprintf(
		"history: %d events (%d committed, %d aborted, %d user-aborted, %d indeterminate, %d inferred-committed) %d keys %d installs graph %d nodes %d edges opacity %d/%d non-opaque → %s",
		s.Events, s.Committed, s.Aborted, s.UserAborted, s.Indeterminate, s.InferredCommitted,
		s.Keys, s.Installs, s.Nodes, s.Edges, s.NonOpaque, s.OpacityChecked, status)
}

// maxCycleReports bounds how many distinct cycles one report spells out.
const maxCycleReports = 4

// edge kinds in the dependency serialization graph.
const (
	eWW = iota // write-write: consecutive installs of one key
	eWR        // write-read: installer → reader of that version
	eRW        // read-write (anti): reader of v → installer of next version
	eRT        // real-time: complete(a) < invoke(b), via barrier nodes
)

type edge struct {
	to     int
	kind   uint8
	key    proto.Addr
	v1, v2 uint64
}

func (e edge) label() string {
	switch e.kind {
	case eWW:
		return fmt.Sprintf("ww(%s v%d→v%d)", e.key, e.v1, e.v2)
	case eWR:
		return fmt.Sprintf("wr(%s v%d)", e.key, e.v1)
	case eRW:
		return fmt.Sprintf("rw(%s v%d→v%d)", e.key, e.v1, e.v2)
	default:
		return "rt"
	}
}

// inst is one known install: a committed (or inferred-committed) event
// that set key's version to version.
type inst struct {
	version uint64
	ev      *Event
}

// keyState accumulates everything the checker knows about one key.
type keyState struct {
	key proto.Addr
	// genesis is the lowest version observed by any allocation of this key
	// (the initial header version; reads at or below it need no installer).
	genesis    uint64
	hasGenesis bool
	// committed maps installed version → installing committed events
	// (len > 1 is a duplicate-install violation).
	committed map[uint64][]*Event
	// indet/aborted map installed version → indeterminate/aborted events
	// that would have installed it had they committed.
	indet   map[uint64][]*Event
	aborted map[uint64][]*Event
	// obs lists versions observed installed (reads by anyone, plus
	// allocation-observed versions above genesis — those prove a Free
	// chain). Sorted, deduplicated.
	obs []uint64
	// installs is the sorted committed install list, built after
	// inference settles.
	installs []inst
}

// Check analyses one recorded history and reports every
// strict-serializability violation it can prove, plus statistics.
//
// Method: FaRM writers lock at the exact version they observed and install
// observed+1, and allocation/free go through the same path, so each key's
// version numbers form one continuous chain — version order is numeric
// order, recovered directly from the recorded versions. The checker builds
// the dependency serialization graph over committed transactions (ww, wr,
// rw edges from the version order; real-time edges from the recorded
// intervals, compressed through a barrier chain) and reports any cycle with
// a minimal witness. Indeterminate outcomes (coordinator died before
// reporting) are inferred committed only when their installs were observed
// and no other writer explains them; ambiguous versions get no edges.
func Check(h *History) *Report {
	rep := &Report{}
	c := &checker{h: h, rep: rep, byID: make(map[uint64]*Event, len(h.Events))}
	for _, ev := range h.Events {
		c.byID[ev.ID] = ev
		rep.Stats.Events++
		switch ev.Outcome {
		case Committed:
			rep.Stats.Committed++
		case Aborted:
			rep.Stats.Aborted++
		case UserAborted:
			rep.Stats.UserAborted++
		default:
			rep.Stats.Indeterminate++
		}
	}
	c.indexKeys()
	c.inferIndeterminates()
	c.finishKeys()
	c.auditReads()
	c.buildGraph()
	c.findCycles()
	if !c.cyclic {
		c.opacityProbe()
	}
	return rep
}

type checker struct {
	h    *History
	rep  *Report
	byID map[uint64]*Event

	keys    map[proto.Addr]*keyState
	keyList []proto.Addr
	// inferred marks indeterminate events proven committed.
	inferred map[uint64]bool

	// graph state: node ids are indexes into nodes; barriers follow the
	// event nodes and have nil entries.
	nodes    []*Event
	nodeOf   map[uint64]int // event id → node
	adj      [][]edge
	edgeSeen map[uint64]bool
	barrier  []sim.Time // barrier node index - len(events-part) → time
	nbase    int        // first barrier node index
	cyclic   bool
}

// committedNow reports whether ev is committed outright or by inference.
func (c *checker) committedNow(ev *Event) bool {
	return ev.Outcome == Committed || c.inferred[ev.ID]
}

func (c *checker) key(k proto.Addr) *keyState {
	ks := c.keys[k]
	if ks == nil {
		ks = &keyState{
			key:       k,
			committed: make(map[uint64][]*Event),
			indet:     make(map[uint64][]*Event),
			aborted:   make(map[uint64][]*Event),
		}
		c.keys[k] = ks
		c.keyList = append(c.keyList, k)
	}
	return ks
}

// indexKeys populates per-key install candidates, genesis versions and
// observations.
func (c *checker) indexKeys() {
	c.keys = make(map[proto.Addr]*keyState)
	c.inferred = make(map[uint64]bool)
	for _, ev := range c.h.Events {
		for i := range ev.Writes {
			w := &ev.Writes[i]
			ks := c.key(w.Addr)
			installed := w.Version + 1
			switch ev.Outcome {
			case Committed:
				ks.committed[installed] = append(ks.committed[installed], ev)
			case Indeterminate:
				ks.indet[installed] = append(ks.indet[installed], ev)
			case Aborted, UserAborted:
				// Neither installs anything: reported aborts roll back and
				// user aborts never reach commit. Observing their would-be
				// versions is a dirty read.
				ks.aborted[installed] = append(ks.aborted[installed], ev)
			}
			if w.Alloc {
				if !ks.hasGenesis || w.Version < ks.genesis {
					ks.genesis, ks.hasGenesis = w.Version, true
				}
			}
		}
		for _, r := range ev.Reads {
			ks := c.key(r.Addr)
			ks.obs = append(ks.obs, r.Version)
		}
	}
	// Allocation-observed versions above genesis prove a Free installed
	// them (a slot reallocated after a committed Free observes the freed
	// version). They participate in inference like read observations.
	for _, k := range c.keyList {
		ks := c.keys[k]
		for _, evs := range [][]*Event{flatten(ks.committed), flatten(ks.indet), flatten(ks.aborted)} {
			for _, ev := range evs {
				for i := range ev.Writes {
					w := &ev.Writes[i]
					if w.Addr == k && w.Alloc && ks.hasGenesis && w.Version > ks.genesis {
						ks.obs = append(ks.obs, w.Version)
					}
				}
			}
		}
		sort.Slice(ks.obs, func(i, j int) bool { return ks.obs[i] < ks.obs[j] })
		ks.obs = dedupU64(ks.obs)
	}
	sort.Slice(c.keyList, func(i, j int) bool { return addrLess(c.keyList[i], c.keyList[j]) })
	c.rep.Stats.Keys = len(c.keyList)
}

func flatten(m map[uint64][]*Event) []*Event {
	var out []*Event
	for _, evs := range m {
		out = append(out, evs...)
	}
	return out
}

func dedupU64(s []uint64) []uint64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func addrLess(a, b proto.Addr) bool {
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	return a.Off < b.Off
}

// inferIndeterminates resolves indeterminate outcomes from observations:
// an observed version with no committed installer and exactly one
// indeterminate candidate proves that candidate committed — provided none
// of its other installs collide with a committed install (contradictory
// evidence stays unresolved). Runs to fixpoint because one inference adds
// installs that may explain or disambiguate others.
func (c *checker) inferIndeterminates() {
	for changed := true; changed; {
		changed = false
		for _, k := range c.keyList {
			ks := c.keys[k]
			for _, v := range ks.obs {
				if ks.hasGenesis && v <= ks.genesis {
					continue
				}
				if len(ks.committed[v]) > 0 {
					continue
				}
				var cand *Event
				ambiguous := false
				for _, ev := range ks.indet[v] {
					if c.inferred[ev.ID] {
						continue // already moved to committed
					}
					if cand != nil {
						ambiguous = true
						break
					}
					cand = ev
				}
				if cand == nil || ambiguous {
					continue
				}
				// All of the candidate's installs must be collision-free.
				ok := true
				for i := range cand.Writes {
					w := &cand.Writes[i]
					if len(c.keys[w.Addr].committed[w.Version+1]) > 0 {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				c.inferred[cand.ID] = true
				c.rep.Stats.InferredCommitted++
				for i := range cand.Writes {
					w := &cand.Writes[i]
					wks := c.key(w.Addr)
					wks.committed[w.Version+1] = append(wks.committed[w.Version+1], cand)
				}
				changed = true
			}
		}
	}
}

// finishKeys freezes the per-key committed install lists and reports
// duplicate installs — two committed transactions installing the same
// version of one key is impossible under correct locking (TryLock requires
// the exact prior version and commit bumps it), so any duplicate is a
// protocol bug in itself.
func (c *checker) finishKeys() {
	for _, k := range c.keyList {
		ks := c.keys[k]
		versions := make([]uint64, 0, len(ks.committed))
		for v := range ks.committed {
			versions = append(versions, v)
		}
		sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
		for _, v := range versions {
			evs := ks.committed[v]
			if len(evs) > 1 {
				ids := make([]uint64, 0, len(evs))
				for _, ev := range evs {
					ids = append(ids, ev.ID)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				c.rep.Stats.Installs++ // count the version once
				c.rep.Violations = append(c.rep.Violations, Violation{
					Kind: "duplicate-install",
					Desc: fmt.Sprintf("key %s version %d installed by %d committed transactions %v", k, v, len(evs), ids),
					Txs:  ids,
				})
				ks.installs = append(ks.installs, inst{version: v, ev: evs[0]})
				continue
			}
			c.rep.Stats.Installs++
			ks.installs = append(ks.installs, inst{version: v, ev: evs[0]})
		}
	}
}

// auditReads classifies every read with no committed installer: initial
// state, ambiguity, unknown-start, or — the violation — a dirty read whose
// only possible installer reported an abort (reported aborts install
// nothing; observing their writes means isolation broke).
func (c *checker) auditReads() {
	type dirtyKey struct {
		key proto.Addr
		v   uint64
	}
	seenDirty := make(map[dirtyKey]bool)
	seenAmbig := make(map[dirtyKey]bool)
	for _, ev := range c.h.Events {
		for _, r := range ev.Reads {
			ks := c.keys[r.Addr]
			if len(ks.committed[r.Version]) > 0 {
				continue
			}
			if ks.hasGenesis && r.Version <= ks.genesis {
				c.rep.Stats.PreGenesisReads++
				continue
			}
			live := 0
			for _, iev := range ks.indet[r.Version] {
				if !c.inferred[iev.ID] {
					live++
				}
			}
			if live > 0 {
				if !seenAmbig[dirtyKey{r.Addr, r.Version}] {
					seenAmbig[dirtyKey{r.Addr, r.Version}] = true
					c.rep.Stats.AmbiguousVersions++
				}
				continue
			}
			if ab := ks.aborted[r.Version]; len(ab) > 0 {
				dk := dirtyKey{r.Addr, r.Version}
				if !seenDirty[dk] {
					seenDirty[dk] = true
					ids := []uint64{ev.ID}
					for _, aev := range ab {
						ids = append(ids, aev.ID)
					}
					c.rep.Violations = append(c.rep.Violations, Violation{
						Kind: "dirty-read",
						Desc: fmt.Sprintf("T%d read key %s at version %d, installed only by aborted transaction(s) %v — reported aborts must install nothing", ev.ID, r.Addr, r.Version, ids[1:]),
						Txs:  ids,
					})
				}
				continue
			}
			c.rep.Stats.UnknownVersionReads++
		}
	}
}

// buildGraph constructs the dependency serialization graph over committed
// (and inferred-committed) transactions: ww/wr/rw edges from the per-key
// version order, plus real-time edges compressed through a barrier chain —
// one barrier node per distinct completion time, chained in time order,
// with T→barrier(complete(T)) and barrier(max time < invoke(T))→T. The
// chain encodes exactly the relation complete(a) < invoke(b) in O(n)
// nodes and edges instead of O(n²) direct edges.
func (c *checker) buildGraph() {
	c.nodeOf = make(map[uint64]int)
	for _, ev := range c.h.Events {
		if c.committedNow(ev) {
			c.nodeOf[ev.ID] = len(c.nodes)
			c.nodes = append(c.nodes, ev)
		}
	}
	c.nbase = len(c.nodes)

	// Barrier chain over distinct completion times.
	times := make([]sim.Time, 0, len(c.nodes))
	for _, ev := range c.nodes {
		if ev.Complete >= 0 {
			times = append(times, ev.Complete)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for i, t := range times {
		if i == 0 || t != c.barrier[len(c.barrier)-1] {
			c.barrier = append(c.barrier, t)
		}
	}
	total := c.nbase + len(c.barrier)
	c.adj = make([][]edge, total)
	c.edgeSeen = make(map[uint64]bool)

	for i := 1; i < len(c.barrier); i++ {
		c.addEdge(c.nbase+i-1, c.nbase+i, edge{kind: eRT})
	}
	for n, ev := range c.nodes {
		if ev.Complete >= 0 {
			c.addEdge(n, c.nbase+barrierAt(c.barrier, ev.Complete), edge{kind: eRT})
		}
		if b := lastBarrierBefore(c.barrier, ev.Invoke); b >= 0 {
			c.addEdge(c.nbase+b, n, edge{kind: eRT})
		}
	}

	// Data edges from the version order.
	for _, k := range c.keyList {
		ks := c.keys[k]
		for i := 1; i < len(ks.installs); i++ {
			a, b := ks.installs[i-1], ks.installs[i]
			na, nb := c.nodeOf[a.ev.ID], c.nodeOf[b.ev.ID]
			if na != nb {
				c.addEdge(na, nb, edge{kind: eWW, key: k, v1: a.version, v2: b.version})
			}
		}
	}
	for _, ev := range c.h.Events {
		if !c.committedNow(ev) {
			continue
		}
		n := c.nodeOf[ev.ID]
		for _, r := range ev.Reads {
			ks := c.keys[r.Addr]
			if i, ok := findInstall(ks.installs, r.Version); ok {
				if w := c.nodeOf[ks.installs[i].ev.ID]; w != n {
					c.addEdge(w, n, edge{kind: eWR, key: r.Addr, v1: r.Version})
				}
			}
			if i := nextInstall(ks.installs, r.Version); i >= 0 {
				if w := c.nodeOf[ks.installs[i].ev.ID]; w != n {
					c.addEdge(n, w, edge{kind: eRW, key: r.Addr, v1: r.Version, v2: ks.installs[i].version})
				}
			}
		}
	}
	c.rep.Stats.Nodes = c.nbase
	for _, es := range c.adj {
		c.rep.Stats.Edges += len(es)
	}
}

func (c *checker) addEdge(from, to int, e edge) {
	if from == to {
		return
	}
	ek := uint64(from)<<32 | uint64(uint32(to))
	if c.edgeSeen[ek] {
		return
	}
	c.edgeSeen[ek] = true
	e.to = to
	c.adj[from] = append(c.adj[from], e)
}

// barrierAt returns the barrier index whose time equals t (t is always a
// recorded completion time).
func barrierAt(barrier []sim.Time, t sim.Time) int {
	return sort.Search(len(barrier), func(i int) bool { return barrier[i] >= t })
}

// lastBarrierBefore returns the largest barrier index with time < t, or -1.
func lastBarrierBefore(barrier []sim.Time, t sim.Time) int {
	return sort.Search(len(barrier), func(i int) bool { return barrier[i] >= t }) - 1
}

// findInstall locates the install with exactly version v.
func findInstall(installs []inst, v uint64) (int, bool) {
	i := sort.Search(len(installs), func(i int) bool { return installs[i].version >= v })
	if i < len(installs) && installs[i].version == v {
		return i, true
	}
	return 0, false
}

// nextInstall locates the first install with version > v, or -1.
func nextInstall(installs []inst, v uint64) int {
	i := sort.Search(len(installs), func(i int) bool { return installs[i].version > v })
	if i < len(installs) {
		return i
	}
	return -1
}

// findCycles runs Tarjan SCC over the graph and reports every non-trivial
// component as a strict-serializability violation, spelling out a shortest
// cycle through it (consecutive barrier hops collapse to one rt edge).
func (c *checker) findCycles() {
	sccs := tarjanSCC(c.adj)
	reported := 0
	extra := 0
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		c.cyclic = true
		if reported >= maxCycleReports {
			extra++
			continue
		}
		reported++
		c.reportCycle(scc)
	}
	if extra > 0 {
		c.rep.Violations = append(c.rep.Violations, Violation{
			Kind: "cycle",
			Desc: fmt.Sprintf("%d further cyclic components suppressed", extra),
		})
	}
}

// reportCycle formats a shortest cycle through the component.
func (c *checker) reportCycle(scc []int) {
	in := make(map[int]bool, len(scc))
	for _, n := range scc {
		in[n] = true
	}
	// Anchor at the transaction node with the smallest event id (a pure
	// barrier component is impossible: the chain is acyclic).
	start := -1
	for _, n := range scc {
		if n < c.nbase && (start == -1 || c.nodes[n].ID < c.nodes[start].ID) {
			start = n
		}
	}
	if start == -1 {
		return
	}
	path := shortestCycle(c.adj, in, start)
	var ids []uint64
	desc := fmt.Sprintf("T%d", c.nodes[start].ID)
	ids = append(ids, c.nodes[start].ID)
	pendingRT := false
	for _, e := range path {
		if e.to >= c.nbase {
			pendingRT = true // collapse barrier hops into one rt edge
			continue
		}
		label := e.label()
		if pendingRT {
			label = "rt"
			pendingRT = false
		}
		desc += fmt.Sprintf(" →%s T%d", label, c.nodes[e.to].ID)
		ids = append(ids, c.nodes[e.to].ID)
	}
	c.rep.Violations = append(c.rep.Violations, Violation{
		Kind: "cycle",
		Desc: "not strictly serializable: " + desc,
		Txs:  ids[:len(ids)-1],
	})
}

// shortestCycle BFSes inside the component from start back to itself and
// returns the edge walk (ending with the edge into start).
func shortestCycle(adj [][]edge, in map[int]bool, start int) []edge {
	type step struct {
		node int
		prev int // index into steps, -1 for roots
		via  edge
	}
	steps := make([]step, 0, len(in))
	seen := make(map[int]int, len(in)) // node → step index
	pushSuccessors := func(si int) []edge {
		s := steps[si]
		for _, e := range adj[s.node] {
			if !in[e.to] {
				continue
			}
			if e.to == start {
				// Reconstruct.
				var rev []edge
				rev = append(rev, e)
				for i := si; i >= 0; i = steps[i].prev {
					if steps[i].prev >= 0 || steps[i].node != start {
						rev = append(rev, steps[i].via)
					}
				}
				// rev holds edges from last to first, excluding the root
				// placeholder; reverse.
				out := make([]edge, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			if _, ok := seen[e.to]; ok {
				continue
			}
			seen[e.to] = len(steps)
			steps = append(steps, step{node: e.to, prev: si, via: e})
		}
		return nil
	}
	steps = append(steps, step{node: start, prev: -1})
	seen[start] = 0
	for qi := 0; qi < len(steps); qi++ {
		if cyc := pushSuccessors(qi); cyc != nil {
			return cyc
		}
	}
	return nil
}

// tarjanSCC computes strongly connected components iteratively.
func tarjanSCC(adj [][]edge) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onstack := make([]bool, n)
	stack := make([]int, 0, n)
	var sccs [][]int
	next := 1
	type frame struct{ v, ei int }
	frames := make([]frame, 0, 64)
	for s := 0; s < n; s++ {
		if index[s] != 0 {
			continue
		}
		frames = append(frames[:0], frame{v: s})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei == 0 {
				index[v], low[v] = next, next
				next++
				stack = append(stack, v)
				onstack[v] = true
			}
			descended := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei].to
				f.ei++
				if index[w] == 0 {
					frames = append(frames, frame{v: w})
					descended = true
					break
				}
				if onstack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if descended {
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// opacityProbe checks each aborted transaction's read set for snapshot
// consistency by virtual insertion into the committed serialization: the
// transaction must come after the installers of the versions it read (P)
// and before the installers of the next versions of those keys (S); the
// snapshot is consistent iff no s∈S reaches any p∈P (including s=p). Runs
// only on acyclic graphs; BFS is pruned by topological position (nothing
// past max pos(P) can reach into P).
func (c *checker) opacityProbe() {
	topo := topoPositions(c.adj)
	var queue []int
	visited := make([]uint32, len(c.adj))
	round := uint32(0)
	for _, ev := range c.h.Events {
		if ev.Outcome != Aborted && ev.Outcome != UserAborted {
			continue
		}
		if len(ev.Reads) < 2 {
			continue
		}
		c.rep.Stats.OpacityChecked++
		var preds, succs []int
		maxPred := -1
		inPred := make(map[int]bool)
		for _, r := range ev.Reads {
			ks := c.keys[r.Addr]
			if i, ok := findInstall(ks.installs, r.Version); ok {
				n := c.nodeOf[ks.installs[i].ev.ID]
				if !inPred[n] {
					inPred[n] = true
					preds = append(preds, n)
					if topo[n] > maxPred {
						maxPred = topo[n]
					}
				}
			}
			if i := nextInstall(ks.installs, r.Version); i >= 0 {
				succs = append(succs, c.nodeOf[ks.installs[i].ev.ID])
			}
		}
		if len(preds) == 0 || len(succs) == 0 {
			continue
		}
		round++
		nonOpaque := false
		queue = queue[:0]
		for _, s := range succs {
			if inPred[s] {
				nonOpaque = true
				break
			}
			if topo[s] <= maxPred && visited[s] != round {
				visited[s] = round
				queue = append(queue, s)
			}
		}
		for qi := 0; qi < len(queue) && !nonOpaque; qi++ {
			for _, e := range c.adj[queue[qi]] {
				if e.to < len(visited) && visited[e.to] != round && topo[e.to] <= maxPred {
					if inPred[e.to] {
						nonOpaque = true
						break
					}
					visited[e.to] = round
					queue = append(queue, e.to)
				}
			}
		}
		if nonOpaque {
			c.rep.Stats.NonOpaque++
		}
	}
}

// topoPositions assigns each node its position in a topological order of
// the (acyclic) graph via iterative DFS postorder.
func topoPositions(adj [][]edge) []int {
	n := len(adj)
	pos := make([]int, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	next := n
	type frame struct{ v, ei int }
	frames := make([]frame, 0, 64)
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		frames = append(frames[:0], frame{v: s})
		state[s] = 1
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			descended := false
			for f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei].to
				f.ei++
				if state[w] == 0 {
					state[w] = 1
					frames = append(frames, frame{v: w})
					descended = true
					break
				}
			}
			if descended {
				continue
			}
			state[f.v] = 2
			next--
			pos[f.v] = next
			frames = frames[:len(frames)-1]
		}
	}
	return pos
}
