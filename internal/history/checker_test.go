package history

import (
	"strings"
	"testing"

	"farm/internal/proto"
	"farm/internal/sim"
)

var (
	keyA = proto.Addr{Region: 1, Off: 64}
	keyB = proto.Addr{Region: 1, Off: 128}
)

// h builds a history around a sequence of events.
func mkHistory(events ...*Event) *History {
	return &History{Schema: Schema, Events: events}
}

func mkEvent(id uint64, inv, cmp sim.Time, out Outcome) *Event {
	return &Event{ID: id, Invoke: inv, Complete: cmp, Outcome: out}
}

func (e *Event) read(k proto.Addr, v uint64) *Event {
	e.Reads = append(e.Reads, Read{Addr: k, Version: v})
	return e
}

func (e *Event) write(k proto.Addr, observed uint64) *Event {
	e.Writes = append(e.Writes, Write{Addr: k, Version: observed, Value: []byte{1}})
	return e
}

func (e *Event) alloc(k proto.Addr, observed uint64) *Event {
	e.Writes = append(e.Writes, Write{Addr: k, Version: observed, Value: []byte{1}, Alloc: true})
	return e
}

// setup allocates keyA and keyB (genesis 0, install 1) as event 1.
func setup() *Event {
	return mkEvent(1, 0, 10, Committed).alloc(keyA, 0).alloc(keyB, 0)
}

func wantKinds(t *testing.T, rep *Report, kinds ...string) {
	t.Helper()
	if len(rep.Violations) != len(kinds) {
		t.Fatalf("got %d violations %v, want kinds %v", len(rep.Violations), rep.Violations, kinds)
	}
	for i, k := range kinds {
		if rep.Violations[i].Kind != k {
			t.Fatalf("violation %d kind %q, want %q (%v)", i, rep.Violations[i].Kind, k, rep.Violations)
		}
	}
}

func TestCheckCleanSerialHistory(t *testing.T) {
	// Serial transfers: each sees the previous installs.
	h := mkHistory(
		setup(),
		mkEvent(2, 20, 30, Committed).read(keyA, 1).read(keyB, 1).write(keyA, 1).write(keyB, 1),
		mkEvent(3, 40, 50, Committed).read(keyA, 2).read(keyB, 2).write(keyA, 2).write(keyB, 2),
		mkEvent(4, 60, 70, Committed).read(keyA, 3).read(keyB, 3),
	)
	rep := Check(h)
	if !rep.Ok() {
		t.Fatalf("clean history flagged: %v", rep.Violations)
	}
	if rep.Stats.Committed != 4 || rep.Stats.Keys != 2 || rep.Stats.Installs != 6 {
		t.Fatalf("stats: %+v", rep.Stats)
	}
	if rep.Stats.UnknownVersionReads != 0 || rep.Stats.PreGenesisReads != 0 {
		t.Fatalf("unexplained reads in clean history: %+v", rep.Stats)
	}
}

func TestCheckTornReadCycle(t *testing.T) {
	// T3's read-only snapshot straddles T2: it saw keyA before T2 and keyB
	// after, which is a wr/rw cycle — the classic broken-validation symptom.
	h := mkHistory(
		setup(),
		mkEvent(2, 20, 30, Committed).read(keyA, 1).read(keyB, 1).write(keyA, 1).write(keyB, 1),
		mkEvent(3, 25, 40, Committed).read(keyA, 1).read(keyB, 2),
	)
	rep := Check(h)
	wantKinds(t, rep, "cycle")
	v := rep.Violations[0]
	if !strings.Contains(v.Desc, "T2") || !strings.Contains(v.Desc, "T3") {
		t.Fatalf("witness does not name the cycle's transactions: %s", v.Desc)
	}
	if !strings.Contains(v.Desc, "rw(") || !strings.Contains(v.Desc, "wr(") {
		t.Fatalf("witness does not show the dependency edges: %s", v.Desc)
	}
}

func TestCheckRealTimeCycle(t *testing.T) {
	// T3 begins strictly after T2 completed, yet reads keyA's pre-T2
	// version: serializable (put T3 first) but not STRICTLY serializable.
	h := mkHistory(
		setup(),
		mkEvent(2, 20, 30, Committed).read(keyA, 1).write(keyA, 1),
		mkEvent(3, 50, 60, Committed).read(keyA, 1),
	)
	rep := Check(h)
	wantKinds(t, rep, "cycle")
	if !strings.Contains(rep.Violations[0].Desc, "rt") {
		t.Fatalf("real-time cycle witness must include an rt edge: %s", rep.Violations[0].Desc)
	}
}

func TestCheckDirtyRead(t *testing.T) {
	// T2 aborted; T3 nevertheless observed the version T2 would have
	// installed.
	h := mkHistory(
		setup(),
		mkEvent(2, 20, 30, Aborted).read(keyA, 1).write(keyA, 1),
		mkEvent(3, 40, 50, Committed).read(keyA, 2),
	)
	rep := Check(h)
	wantKinds(t, rep, "dirty-read")
}

func TestCheckDuplicateInstall(t *testing.T) {
	// Two committed transactions both locked keyA at version 1: impossible
	// under correct locking.
	h := mkHistory(
		setup(),
		mkEvent(2, 20, 30, Committed).read(keyA, 1).write(keyA, 1),
		mkEvent(3, 22, 32, Committed).read(keyA, 1).write(keyA, 1),
	)
	rep := Check(h)
	// The duplicate is reported; the arbitrary-winner graph may or may not
	// also contain a cycle, so only insist on the duplicate-install.
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "duplicate-install" {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate install not reported: %v", rep.Violations)
	}
}

func TestCheckIndeterminateInference(t *testing.T) {
	// T2's coordinator died before reporting, but T3 read the version only
	// T2 could have installed: T2 must have committed. No violation, and
	// the inferred node participates in the graph.
	h := mkHistory(
		setup(),
		mkEvent(2, 20, -1, Indeterminate).read(keyA, 1).write(keyA, 1),
		mkEvent(3, 40, 50, Committed).read(keyA, 2),
	)
	rep := Check(h)
	if !rep.Ok() {
		t.Fatalf("inference should explain the read: %v", rep.Violations)
	}
	if rep.Stats.InferredCommitted != 1 {
		t.Fatalf("stats: %+v", rep.Stats)
	}
	if rep.Stats.UnknownVersionReads != 0 {
		t.Fatalf("read left unexplained: %+v", rep.Stats)
	}
}

func TestCheckAmbiguousIndeterminates(t *testing.T) {
	// Two indeterminate writers could both explain the observed version:
	// no inference, no edges, no violation — just a counted ambiguity.
	h := mkHistory(
		setup(),
		mkEvent(2, 20, -1, Indeterminate).read(keyA, 1).write(keyA, 1),
		mkEvent(3, 21, -1, Indeterminate).read(keyA, 1).write(keyA, 1),
		mkEvent(4, 40, 50, Committed).read(keyA, 2),
	)
	rep := Check(h)
	if !rep.Ok() {
		t.Fatalf("ambiguity must not be a violation: %v", rep.Violations)
	}
	if rep.Stats.AmbiguousVersions != 1 || rep.Stats.InferredCommitted != 0 {
		t.Fatalf("stats: %+v", rep.Stats)
	}
}

func TestCheckOpacityProbe(t *testing.T) {
	// T3 aborted having read keyA before T2 and keyB after it: a torn
	// snapshot exposed to a doomed transaction — non-opaque but NOT a
	// violation (FaRM validation aborts it; that is the design). T4
	// aborted with a consistent snapshot.
	h := mkHistory(
		setup(),
		mkEvent(2, 20, 30, Committed).read(keyA, 1).read(keyB, 1).write(keyA, 1).write(keyB, 1),
		mkEvent(3, 25, 35, Aborted).read(keyA, 1).read(keyB, 2),
		mkEvent(4, 40, 45, Aborted).read(keyA, 2).read(keyB, 2),
	)
	rep := Check(h)
	if !rep.Ok() {
		t.Fatalf("aborted torn read is not a violation: %v", rep.Violations)
	}
	if rep.Stats.OpacityChecked != 2 || rep.Stats.NonOpaque != 1 {
		t.Fatalf("opacity stats: %+v", rep.Stats)
	}
}

func TestCheckPreGenesisAndUnknownReads(t *testing.T) {
	h := mkHistory(
		setup(),
		// Reads keyA at its genesis version (initial state) concurrently
		// with the allocating transaction: fine.
		mkEvent(2, 5, 8, Committed).read(keyA, 0),
		// Reads a version nobody recorded installing: counted, not flagged.
		mkEvent(3, 40, 50, Committed).read(keyB, 9),
	)
	rep := Check(h)
	if !rep.Ok() {
		t.Fatalf("unexplained reads must not be violations: %v", rep.Violations)
	}
	if rep.Stats.PreGenesisReads != 1 || rep.Stats.UnknownVersionReads != 1 {
		t.Fatalf("stats: %+v", rep.Stats)
	}
}

func TestCheckFreeReallocChain(t *testing.T) {
	// Free installs a version like any write; a realloc of the slot
	// observes the freed version and continues the chain. The checker must
	// keep the chain continuous across the free/realloc boundary.
	h := mkHistory(
		setup(),
		mkEvent(2, 20, 30, Committed).read(keyA, 1).write(keyA, 1), // install 2
		mkEvent(3, 40, 50, Committed).read(keyA, 2),                // observe 2
		// Free: read at 2, install 3 (write with Free bit).
		&Event{ID: 4, Invoke: 60, Complete: 70, Outcome: Committed,
			Reads:  []Read{{Addr: keyA, Version: 2}},
			Writes: []Write{{Addr: keyA, Version: 2, Free: true}}},
		// Realloc observes 3, installs 4.
		mkEvent(5, 80, 90, Committed).alloc(keyA, 3),
		mkEvent(6, 100, 110, Committed).read(keyA, 4),
	)
	rep := Check(h)
	if !rep.Ok() {
		t.Fatalf("free/realloc chain flagged: %v", rep.Violations)
	}
	if rep.Stats.UnknownVersionReads != 0 {
		t.Fatalf("chain broken: %+v", rep.Stats)
	}
}
