package exper

import (
	"fmt"
	"strings"

	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/proto"
	"farm/internal/sim"
	"farm/internal/tpcc"
)

// This file contains ablations of the design choices DESIGN.md calls out:
// validation transport (RDMA vs RPC, the tr threshold of §4), TPC-C
// locality (co-partitioning, §6.2), lease duration vs detection delay
// (§5.1), and data-recovery pacing (§5.4 / Figures 9 vs 14).

// AblationRow is one (setting, metrics) pair.
type AblationRow struct {
	Setting string
	Tput    float64
	Median  sim.Time
	P99     sim.Time
	Extra   string
}

// FormatAblation renders ablation rows.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %14s %12s %12s  %s\n", "setting", "tput(op/s)", "median", "p99", "notes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %14.0f %12v %12v  %s\n", r.Setting, r.Tput, r.Median, r.P99, r.Extra)
	}
	return b.String()
}

// AblationValidation isolates the tr trade-off of §4 step 2: a read-only
// transaction that reads many objects from ONE remote primary validates
// either with one one-sided read per object (tr high) or a single RPC
// carrying the whole read set (tr low). The paper sets tr = 4 because "the
// threshold reflects the CPU cost of an RPC relative to an RDMA read":
// past a few objects, one RPC beats many reads.
func AblationValidation(sc Scale, warm, measure sim.Time) []AblationRow {
	const objects = 12
	var rows []AblationRow
	for _, tr := range []int{1, 4, 1 << 20} {
		opts := sc.options()
		opts.ValidateRPCThreshold = tr
		c := core.New(opts)
		regions, err := c.CreateRegions(0, 1, 0)
		if err != nil {
			panic(err)
		}
		region := regions[0]
		// Allocate the objects in the single region.
		var addrs []proto.Addr
		hint := proto.Addr{Region: region}
		err = loadgen.RunSync(c, c.Machine(0), 0, func(tx *core.Tx, done func(error)) {
			var alloc func(i int)
			alloc = func(i int) {
				if i == objects {
					done(nil)
					return
				}
				tx.Alloc(8, []byte("12345678"), &hint, func(a proto.Addr, err error) {
					if err != nil {
						done(err)
						return
					}
					addrs = append(addrs, a)
					alloc(i + 1)
				})
			}
			alloc(0)
		})
		if err != nil {
			panic(err)
		}
		primary := c.Machine(0).PrimaryOf(region)
		// Drive read-only transactions from machines that are NOT the
		// primary, so every validation crosses the network.
		var drivers []int
		for i := 0; i < sc.Machines; i++ {
			if i != primary {
				drivers = append(drivers, i)
			}
		}
		op := func(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
			tx := m.Begin(thread)
			var read func(i int)
			read = func(i int) {
				if i == objects {
					tx.Commit(func(err error) { done(err == nil) })
					return
				}
				tx.Read(addrs[i], 8, func(_ []byte, err error) {
					if err != nil {
						done(false)
						return
					}
					read(i + 1)
				})
			}
			read(0)
		}
		g := loadgen.New(c, op)
		tput, med, p99 := g.RunPoint(drivers, 2, 1, warm, measure)
		name := fmt.Sprintf("tr=%d", tr)
		switch tr {
		case 1:
			name += " (RPC validation)"
		case 1 << 20:
			name += " (RDMA validation)"
		}
		rows = append(rows, AblationRow{
			Setting: name, Tput: tput, Median: med, P99: p99,
			Extra: fmt.Sprintf("%d-object read set, one remote primary", objects),
		})
	}
	return rows
}

// AblationLocality compares TPC-C with clients co-partitioned by warehouse
// against clients picking warehouses at random (§6.2's locality design).
func AblationLocality(sc Scale, warm, measure sim.Time) []AblationRow {
	var rows []AblationRow
	for _, ignore := range []bool{false, true} {
		c := core.New(sc.options())
		w, err := tpcc.Setup(c, tpcc.DefaultConfig(sc.Warehouses))
		if err != nil {
			panic(err)
		}
		w.IgnoreLocality = ignore
		w.MeasureFrom = c.Now() + warm
		g := loadgen.New(c, w.Mix())
		start := c.Now()
		g.RunPoint(allMachines(sc.Machines), sc.Threads/2, 1, warm, measure)
		noTput := w.NewOrderTimeline.WindowAverage(start+warm, start+warm+measure) * 1000
		name := "co-partitioned"
		if ignore {
			name = "random-warehouse"
		}
		rows = append(rows, AblationRow{
			Setting: name,
			Tput:    noTput,
			Median:  w.NewOrderLat.Median(),
			P99:     w.NewOrderLat.P99(),
			Extra:   fmt.Sprintf("remote-touches=%d", w.RemoteAccesses),
		})
	}
	return rows
}

// AblationLeaseDuration measures failure-detection delay (kill → suspect)
// across lease durations (§5.1: "FaRM leases are extremely short, which is
// key to high availability").
func AblationLeaseDuration(sc Scale, leases []sim.Time) []AblationRow {
	var rows []AblationRow
	for _, lease := range leases {
		spec := DefaultRecoverySpec(sc)
		spec.Lease = lease
		spec.WarmFor = 30 * sim.Millisecond
		spec.RunFor = 300*sim.Millisecond + 10*lease
		run := RunFailure(spec)
		detect := run.Milestones["suspect"]
		rows = append(rows, AblationRow{
			Setting: fmt.Sprintf("lease=%v", lease),
			Tput:    run.PreTput * 1000,
			Median:  detect,
			P99:     run.FullThroughput,
			Extra:   "median col = detection delay; p99 col = full recovery",
		})
	}
	return rows
}

// AblationRecoveryPacing compares paced data recovery (8 KB / 4 ms) with
// an unpaced variant, measuring the post-failure throughput dip and the
// re-replication completion time — the trade-off of Figures 9 vs 14.
func AblationRecoveryPacing(sc Scale) []AblationRow {
	var rows []AblationRow
	type cfg struct {
		name       string
		aggressive bool
	}
	for _, cc := range []cfg{{"paced 8KB/4ms", false}, {"aggressive 4×32KB", true}} {
		spec := DefaultRecoverySpec(sc)
		spec.Aggressive = cc.aggressive
		spec.Lease = 5 * sim.Millisecond
		spec.RunFor = 600 * sim.Millisecond
		run := RunFailure(spec)
		// Dip: minimum 1 ms throughput in the 100 ms after recovery of
		// locks, as a fraction of pre-failure throughput.
		minOps := run.PreTput
		base, ok := run.Milestones["all-active"]
		if !ok {
			base = 50 * sim.Millisecond
		}
		lo := run.KillAt + base
		for _, p := range run.Timeline {
			at := sim.Time(p.AtMs) * sim.Millisecond
			if at > lo && at < lo+100*sim.Millisecond && p.Ops < minOps {
				minOps = p.Ops
			}
		}
		rows = append(rows, AblationRow{
			Setting: cc.name,
			Tput:    run.PreTput * 1000,
			Median:  run.FullThroughput,
			P99:     run.DataRecoveryDone,
			Extra: fmt.Sprintf("post-recovery dip to %.0f%% of pre; median col = recovery, p99 col = re-replication done",
				100*minOps/run.PreTput),
		})
	}
	return rows
}
