package exper

import (
	"fmt"
	"sort"
	"strings"

	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/sim"
	"farm/internal/tatp"
	"farm/internal/tpcc"
	"farm/internal/trace"
)

// This file reproduces the failure experiments: Figures 9–15. The
// methodology follows §6.4: run the benchmark, kill a process mid-run,
// plot throughput of the survivors at 1 ms granularity, annotate the
// recovery milestones, and track re-replicated regions over time.

// FailureKind selects the victim.
type FailureKind int

// Victim kinds.
const (
	KillBackup FailureKind = iota // a non-CM machine (Figures 9, 10)
	KillCM                        // the configuration manager (Figure 11)
	KillDomain                    // a whole failure domain (Figure 13)
)

// RecoverySpec parameterizes a failure run.
type RecoverySpec struct {
	Scale    Scale
	Kind     FailureKind
	Domain   int // for KillDomain
	Workload string
	// Lease is the failure-detection lease (10 ms in §6.1).
	Lease sim.Time
	// WarmFor runs load before the kill; RunFor continues afterwards.
	WarmFor, RunFor sim.Time
	// Aggressive selects the §6.4 aggressive data recovery (4 concurrent
	// 32 KB fetches per thread).
	Aggressive bool
	Threads    int
	Conc       int
	// Trace enables causality tracing; the exported Chrome JSON and the
	// phase/timeline report land on the RecoveryRun.
	Trace trace.Options
}

// DefaultRecoverySpec mirrors the Figure 9 setup, scaled.
func DefaultRecoverySpec(sc Scale) RecoverySpec {
	return RecoverySpec{
		Scale:    sc,
		Kind:     KillBackup,
		Workload: "tatp",
		Lease:    10 * sim.Millisecond,
		WarmFor:  40 * sim.Millisecond,
		RunFor:   400 * sim.Millisecond,
		Threads:  sc.Threads,
		Conc:     4,
	}
}

// RecoveryRun is the outcome: the throughput timeline, milestone times
// (all relative to the kill), and the data-recovery progress curve.
type RecoveryRun struct {
	Victims  []int
	KillAt   sim.Time
	PreTput  float64 // committed ops per ms before the kill
	Timeline []TimelinePoint
	// Milestones: suspect, probe-done, zookeeper, config-commit,
	// all-active, data-rec-start (times after the kill).
	Milestones map[string]sim.Time
	// FullThroughput is when throughput regained 80% of the survivors'
	// share of PreTput (§6.4's recovery-time metric), relative to the
	// kill; <0 if never.
	FullThroughput sim.Time
	// DipFraction is the deepest 1 ms throughput bucket after the kill as
	// a fraction of the pre-failure throughput.
	DipFraction float64
	// RegionsRecovered is the cumulative re-replication curve.
	RegionsRecovered []RegionPoint
	// DataRecoveryDone is when the last region re-replicated (rel. kill).
	DataRecoveryDone sim.Time
	// RecoveringTxs is the number of transactions recovery examined.
	RecoveringTxs uint64
	// TraceJSON / TraceReport are set when the spec enabled tracing.
	TraceJSON   []byte
	TraceReport string
}

// TimelinePoint is one 1 ms bucket of survivor throughput.
type TimelinePoint struct {
	AtMs int64
	Ops  float64
}

// RegionPoint is one step of the re-replication curve.
type RegionPoint struct {
	After sim.Time
	Count int
}

// RunFailure executes one failure experiment.
func RunFailure(spec RecoverySpec) RecoveryRun {
	sc := spec.Scale
	opts := sc.options()
	opts.LeaseDuration = spec.Lease
	opts.Trace = spec.Trace
	if spec.Kind == KillDomain {
		opts.FailureDomains = 3
	}
	if spec.Aggressive {
		opts.DataRecBlock = 32 << 10
		opts.DataRecConcurrency = 4
	}
	c := core.New(opts)

	var op loadgen.Op
	var tpccW *tpcc.Workload
	switch spec.Workload {
	case "tpcc":
		// Keep the drivers-per-warehouse ratio sane (§6.2): TPC-C melts
		// under OCC when many drivers share a warehouse, which would
		// drown the recovery signal in conflict noise.
		if spec.Threads*spec.Conc*sc.Machines > 2*sc.Warehouses {
			spec.Conc = 1
			if spec.Threads*sc.Machines > 2*sc.Warehouses {
				spec.Threads = max(1, 2*sc.Warehouses/sc.Machines)
			}
		}
		w, err := tpcc.Setup(c, tpcc.DefaultConfig(sc.Warehouses))
		if err != nil {
			panic(err)
		}
		tpccW = w
		op = w.Mix()
	default:
		w, err := tatp.Setup(c, sc.Subscribers, sc.Regions)
		if err != nil {
			panic(err)
		}
		op = w.Mix()
	}
	_ = tpccW

	g := loadgen.New(c, op)
	g.Start(allMachines(sc.Machines), spec.Threads, spec.Conc)
	c.RunFor(spec.WarmFor)

	killAt := c.Now()
	var victims []int
	switch spec.Kind {
	case KillCM:
		victims = []int{0}
		c.Kill(0)
	case KillDomain:
		d := spec.Domain
		if d == 0 {
			d = 1 // domain 0 contains the CM
		}
		for _, m := range c.Machines {
			if m.Alive() && m.ConfigID() > 0 && d == mDomain(c, m.ID) {
				victims = append(victims, m.ID)
				c.Kill(m.ID)
			}
		}
	default:
		// The non-CM machine hosting the most regions (primaries weighted
		// double), so the failure actually exercises promotion, lock
		// recovery and data recovery.
		v, most := sc.Machines-1, -1
		for _, m := range c.Machines {
			if m.ID == 0 {
				continue
			}
			weight := 0
			for _, region := range m.HostedRegions() {
				weight++
				if m.PrimaryOf(region) == m.ID {
					weight++
				}
			}
			if weight > most {
				v, most = m.ID, weight
			}
		}
		victims = []int{v}
		c.Kill(v)
	}
	c.RunFor(spec.RunFor)
	g.Stop()

	run := RecoveryRun{Victims: victims, KillAt: killAt, Milestones: map[string]sim.Time{}}
	// Pre-failure throughput (skip the first ramp-up fifth).
	run.PreTput = g.Timeline.WindowAverage(spec.WarmFor/5, killAt)

	times, vals := g.Timeline.Series()
	for i, at := range times {
		run.Timeline = append(run.Timeline, TimelinePoint{AtMs: int64(at / sim.Millisecond), Ops: vals[i]})
	}
	for _, ev := range []string{"suspect", "probe-done", "zookeeper", "config-commit", "all-active", "data-rec-start"} {
		if at, ok := c.TraceTime(ev, killAt); ok {
			run.Milestones[ev] = at - killAt
		}
	}
	// Recovery target: 80% of the pre-failure throughput attributable to
	// the survivors. The paper's clusters lose 1/90 of capacity per kill,
	// which is negligible; at simulation scale the dead machines' share of
	// offered load matters and is factored out. Per §6.4's methodology the
	// clock runs "from the point where the failed machine is suspected by
	// the CM until throughput recovers to 80%".
	share := float64(sc.Machines-len(victims)) / float64(sc.Machines)
	target := 0.8 * run.PreTput * share
	from := killAt
	if s, ok := run.Milestones["suspect"]; ok {
		from = killAt + s
	}
	run.FullThroughput = -1
	minOps := run.PreTput
	for i, p := range run.Timeline {
		at := sim.Time(p.AtMs) * sim.Millisecond
		if at <= killAt {
			continue
		}
		if at <= from+spec.RunFor/2 && p.Ops < minOps {
			minOps = p.Ops
		}
		if at <= from {
			continue
		}
		if run.FullThroughput < 0 && p.Ops >= target &&
			i+1 < len(run.Timeline) && run.Timeline[i+1].Ops >= target*0.6 {
			run.FullThroughput = at - killAt
		}
	}
	if run.PreTput > 0 {
		run.DipFraction = minOps / run.PreTput
	}
	// Re-replication curve.
	var recTimes []sim.Time
	for _, at := range c.RegionRecoveredAt {
		if at >= killAt {
			recTimes = append(recTimes, at-killAt)
		}
	}
	sort.Slice(recTimes, func(i, j int) bool { return recTimes[i] < recTimes[j] })
	for i, at := range recTimes {
		run.RegionsRecovered = append(run.RegionsRecovered, RegionPoint{After: at, Count: i + 1})
	}
	if n := len(recTimes); n > 0 {
		run.DataRecoveryDone = recTimes[n-1]
	}
	run.RecoveringTxs = c.Counters.Get("recovering_tx_found")
	if c.Tracer != nil {
		run.TraceJSON = c.Tracer.Export()
		run.TraceReport = c.Tracer.Report()
	}
	return run
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mDomain(c *core.Cluster, id int) int {
	return id % 3 // matches FailureDomains=3 assignment in core
}

// String renders the run like the paper's figure annotations.
func (r RecoveryRun) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "killed machines %v at t=%v\n", r.Victims, r.KillAt)
	fmt.Fprintf(&b, "pre-failure throughput: %.1f ops/ms\n", r.PreTput)
	for _, ev := range []string{"suspect", "probe-done", "zookeeper", "config-commit", "all-active", "data-rec-start"} {
		if at, ok := r.Milestones[ev]; ok {
			fmt.Fprintf(&b, "  %-14s +%v\n", ev, at)
		}
	}
	if r.FullThroughput >= 0 {
		fmt.Fprintf(&b, "throughput dipped to %.0f%% of pre-failure; back to 80%% in %v after the kill\n",
			r.DipFraction*100, r.FullThroughput)
	} else {
		fmt.Fprintf(&b, "throughput dipped to %.0f%% and did NOT recover in the window\n", r.DipFraction*100)
	}
	fmt.Fprintf(&b, "recovering transactions: %d\n", r.RecoveringTxs)
	if len(r.RegionsRecovered) > 0 {
		fmt.Fprintf(&b, "regions re-replicated: %d (last at +%v)\n",
			len(r.RegionsRecovered), r.DataRecoveryDone)
	}
	return b.String()
}

// TimelineAround returns ±window of 1 ms buckets around the kill, for the
// zoomed "time to full throughput" views of Figures 9a/10a.
func (r RecoveryRun) TimelineAround(window sim.Time) []TimelinePoint {
	killMs := int64(r.KillAt / sim.Millisecond)
	w := int64(window / sim.Millisecond)
	var out []TimelinePoint
	for _, p := range r.Timeline {
		if p.AtMs >= killMs-w && p.AtMs <= killMs+w {
			out = append(out, p)
		}
	}
	return out
}

// RecoveryDistribution repeats the Figure 9 experiment n times with
// different seeds and returns the recovery times in ms, sorted (Figure
// 12's CDF).
func RecoveryDistribution(sc Scale, n int, lease sim.Time) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		spec := DefaultRecoverySpec(sc)
		spec.Scale.Seed = sc.Seed + uint64(i)*101
		spec.Lease = lease
		spec.WarmFor = 30 * sim.Millisecond
		spec.RunFor = 300 * sim.Millisecond
		run := RunFailure(spec)
		if run.FullThroughput >= 0 {
			out = append(out, run.FullThroughput.Millis())
		} else {
			out = append(out, spec.RunFor.Millis())
		}
	}
	sort.Float64s(out)
	return out
}

// Percentile picks from a sorted distribution.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
