package exper

import (
	"testing"

	"farm/internal/sim"
)

// smallScale keeps test runtimes short.
func smallScale() Scale {
	return Scale{Machines: 6, Threads: 4, Subscribers: 400, Warehouses: 8, Regions: 4, Seed: 3}
}

func TestFigure1Shape(t *testing.T) {
	rows := Figure1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].JoulesPerGB < 100 || rows[0].JoulesPerGB > 120 {
		t.Fatalf("1-SSD energy %v, paper ~110 J/GB", rows[0].JoulesPerGB)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].JoulesPerGB >= rows[i-1].JoulesPerGB {
			t.Fatal("energy not decreasing with SSDs")
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	rows := Figure2(4, 8, 2*sim.Millisecond)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	// RDMA beats RPC everywhere; small-transfer gap ≈ 4x.
	for _, r := range rows {
		if r.RDMA <= r.RPC {
			t.Fatalf("size %d: rdma %.2f <= rpc %.2f", r.Size, r.RDMA, r.RPC)
		}
	}
	gap := rows[0].RDMA / rows[0].RPC
	if gap < 2.5 {
		t.Fatalf("small-transfer gap %.1f, want ≳ 3", gap)
	}
	// Throughput decreases with size.
	if rows[len(rows)-1].RDMA >= rows[0].RDMA {
		t.Fatal("RDMA rate should fall with transfer size")
	}
}

func TestFigure7Point(t *testing.T) {
	pts := Figure7(smallScale(), [][2]int{{4, 2}}, 3*sim.Millisecond, 15*sim.Millisecond)
	if len(pts) != 1 {
		t.Fatal("points")
	}
	p := pts[0]
	if p.Tput < 100000 {
		t.Fatalf("TATP tput %.0f too low", p.Tput)
	}
	if p.Median <= 0 || p.P99 < p.Median {
		t.Fatalf("latency: %v %v", p.Median, p.P99)
	}
}

func TestFigure8Point(t *testing.T) {
	pts := Figure8(smallScale(), [][2]int{{2, 1}}, 3*sim.Millisecond, 20*sim.Millisecond)
	p := pts[0]
	if p.Tput < 1000 {
		t.Fatalf("TPC-C new-order tput %.0f too low", p.Tput)
	}
	// TPC-C latency must exceed TATP's (hundreds of µs vs tens).
	if p.Median < 20*sim.Microsecond {
		t.Fatalf("TPC-C median %v suspiciously low", p.Median)
	}
}

func TestKVReadPerformance(t *testing.T) {
	p := KVReadPerformance(smallScale(), 2*sim.Millisecond, 10*sim.Millisecond)
	if p.Tput < 200000 {
		t.Fatalf("lookup tput %.0f too low", p.Tput)
	}
	if p.Median > 100*sim.Microsecond {
		t.Fatalf("lookup median %v too high", p.Median)
	}
}

func TestFigure9Run(t *testing.T) {
	spec := DefaultRecoverySpec(smallScale())
	spec.Lease = 5 * sim.Millisecond
	run := RunFailure(spec)
	if run.PreTput <= 0 {
		t.Fatal("no pre-failure throughput")
	}
	if run.FullThroughput < 0 {
		t.Fatal("throughput never recovered")
	}
	// The headline: recovery within tens of ms (≤100 ms here).
	if run.FullThroughput > 100*sim.Millisecond {
		t.Fatalf("recovery took %v", run.FullThroughput)
	}
	if _, ok := run.Milestones["config-commit"]; !ok {
		t.Fatal("missing config-commit milestone")
	}
	if len(run.RegionsRecovered) == 0 {
		t.Fatal("no regions re-replicated")
	}
	t.Logf("recovery: %v, data recovery done +%v, recovering txs %d",
		run.FullThroughput, run.DataRecoveryDone, run.RecoveringTxs)
}

func TestFigure11CMFailure(t *testing.T) {
	spec := DefaultRecoverySpec(smallScale())
	spec.Kind = KillCM
	spec.Lease = 5 * sim.Millisecond
	spec.RunFor = 600 * sim.Millisecond
	run := RunFailure(spec)
	if run.FullThroughput < 0 {
		t.Fatal("throughput never recovered after CM failure")
	}
	// CM recovery is slower than non-CM (Figure 11 vs 9): expect more
	// than the plain-backup case due to backup-CM takeover + CM state
	// rebuild, but still well under a second.
	if run.FullThroughput > 300*sim.Millisecond {
		t.Fatalf("CM recovery took %v", run.FullThroughput)
	}
	t.Logf("CM failure recovery: %v", run.FullThroughput)
}

func TestFigure12Distribution(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	d := RecoveryDistribution(smallScale(), 4, 5*sim.Millisecond)
	if len(d) != 4 {
		t.Fatal("runs")
	}
	med := Percentile(d, 50)
	if med <= 0 || med > 150 {
		t.Fatalf("median recovery %v ms", med)
	}
	t.Logf("recovery distribution (ms): %v", d)
}

func TestFigure16LeaseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sc := smallScale()
	sc.Threads = 2
	cells := Figure16(sc, []sim.Time{5 * sim.Millisecond, 100 * sim.Millisecond}, 500*sim.Millisecond)
	byKey := map[string]float64{}
	for _, c := range cells {
		byKey[c.Variant.String()+c.Duration.String()] = c.Expiries
	}
	// The shipping configuration admits 5 ms leases with no false
	// positives; RPC at 100 ms must show many.
	if byKey["UD+thread+pri5.000ms"] > 0 {
		t.Fatalf("UD+thread+pri at 5ms: %v expiries", byKey["UD+thread+pri5.000ms"])
	}
	if byKey["RPC100.000ms"] == 0 {
		t.Fatal("RPC at 100ms shows no expiries")
	}
	// UD+thread is clean at 100 ms but not at 5 ms.
	if byKey["UD+thread100.000ms"] > 0 {
		t.Fatalf("UD+thread at 100ms: %v", byKey["UD+thread100.000ms"])
	}
	if byKey["UD+thread5.000ms"] == 0 {
		t.Fatal("UD+thread at 5ms should show expiries")
	}
}

func TestAblationValidation(t *testing.T) {
	rows := AblationValidation(smallScale(), 2*sim.Millisecond, 10*sim.Millisecond)
	if len(rows) != 3 {
		t.Fatal("rows")
	}
	for _, r := range rows {
		if r.Tput <= 0 {
			t.Fatalf("%s: no throughput", r.Setting)
		}
	}
	// For a 12-object read set at one primary, one validation RPC beats
	// twelve sequential one-sided reads — the reason tr exists (§4).
	if rows[0].Median >= rows[2].Median {
		t.Fatalf("RPC validation median %v should beat RDMA-only %v for large read sets",
			rows[0].Median, rows[2].Median)
	}
}

func TestAblationLocality(t *testing.T) {
	sc := smallScale()
	rows := AblationLocality(sc, 3*sim.Millisecond, 15*sim.Millisecond)
	co, rand := rows[0], rows[1]
	if co.Tput <= 0 || rand.Tput <= 0 {
		t.Fatal("no throughput")
	}
	// Random warehouse selection must commit fewer new orders per second
	// (remote rows, remote indexes on every access).
	if rand.Tput >= co.Tput {
		t.Fatalf("locality gave no benefit: co=%.0f rand=%.0f", co.Tput, rand.Tput)
	}
}

func TestAblationLeaseDuration(t *testing.T) {
	rows := AblationLeaseDuration(smallScale(), []sim.Time{2 * sim.Millisecond, 20 * sim.Millisecond})
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	// Detection delay scales with lease duration.
	if rows[1].Median <= rows[0].Median {
		t.Fatalf("detection: lease 20ms %v should exceed lease 2ms %v", rows[1].Median, rows[0].Median)
	}
}
