// Package exper reproduces the paper's experiments: every table and figure
// of the evaluation (§2.1 Figure 1 through §6.5 Figure 16) has a function
// here that runs the scaled simulation and returns the series the paper
// plots. cmd/farm-bench renders them as text; bench_test.go wraps them as
// Go benchmarks. EXPERIMENTS.md records paper-vs-measured values.
package exper

import (
	"fmt"
	"strings"

	"farm/internal/baseline"
	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/nvram"
	"farm/internal/sim"
	"farm/internal/tatp"
	"farm/internal/tpcc"
	"farm/internal/ycsb"
)

// Scale is the common knob set for the simulated cluster.
type Scale struct {
	Machines    int
	Threads     int
	Subscribers uint64 // TATP
	Warehouses  int    // TPC-C
	Regions     int    // extra data regions for TATP/KV
	Seed        uint64
}

// DefaultScale is sized to run every experiment in seconds on a laptop.
func DefaultScale() Scale {
	return Scale{Machines: 9, Threads: 8, Subscribers: 2000, Warehouses: 18, Regions: 6, Seed: 1}
}

func (s Scale) options() core.Options {
	o := core.Options{NumMachines: s.Machines, Threads: s.Threads, Seed: s.Seed}
	return o
}

func allMachines(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// --- Figure 1: energy to copy one GB from DRAM to SSD ---

// Fig1Row is one bar of Figure 1.
type Fig1Row struct {
	SSDs        int
	JoulesPerGB float64
	CostPerGB   float64
	SaveTime256 sim.Time // time to save a 256 GB machine
}

// Figure1 evaluates the distributed-UPS save model for 1–4 SSDs.
func Figure1() []Fig1Row {
	m := nvram.DefaultSaveModel()
	var rows []Fig1Row
	for ssds := 1; ssds <= 4; ssds++ {
		rows = append(rows, Fig1Row{
			SSDs:        ssds,
			JoulesPerGB: m.EnergyPerGB(ssds),
			CostPerGB:   m.CostPerGB(ssds),
			SaveTime256: m.SaveTime(256, ssds),
		})
	}
	return rows
}

// --- Figure 2: per-machine RDMA vs RPC read performance ---

// Figure2 sweeps transfer sizes, returning ops/µs/machine for both
// transports.
func Figure2(machines, threads int, duration sim.Time) []baseline.ReadBenchResult {
	cfg := baseline.DefaultReadBench()
	cfg.Machines = machines
	cfg.Threads = threads
	var rows []baseline.ReadBenchResult
	for _, size := range []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		rows = append(rows, baseline.RunReadBench(cfg, size, duration))
	}
	return rows
}

// --- Figures 7 and 8: throughput–latency curves ---

// CurvePoint is one load point of a throughput–latency curve.
type CurvePoint struct {
	Threads     int
	Concurrency int
	Tput        float64 // committed ops/s (new orders/s for TPC-C)
	PerMachine  float64 // ops/s/machine
	Median      sim.Time
	P99         sim.Time
	AbortRate   float64
}

// LoadPoints is the default sweep: grow threads, then concurrency (§6.3:
// "we varied the load by first increasing the number of active threads per
// machine ... and then increasing the concurrency per thread").
func LoadPoints(maxThreads int) [][2]int {
	var pts [][2]int
	for _, th := range []int{2, 4, maxThreads} {
		if th <= maxThreads {
			pts = append(pts, [2]int{th, 1})
		}
	}
	for _, cc := range []int{2, 4, 8} {
		pts = append(pts, [2]int{maxThreads, cc})
	}
	return pts
}

// Figure7 runs the TATP throughput–latency sweep; each point uses a fresh
// cluster for isolation.
func Figure7(sc Scale, points [][2]int, warm, measure sim.Time) []CurvePoint {
	var out []CurvePoint
	for _, p := range points {
		c := core.New(sc.options())
		w, err := tatp.Setup(c, sc.Subscribers, sc.Regions)
		if err != nil {
			panic(err)
		}
		g := loadgen.New(c, w.Mix())
		tput, med, p99 := g.RunPoint(allMachines(sc.Machines), p[0], p[1], warm, measure)
		out = append(out, CurvePoint{
			Threads: p[0], Concurrency: p[1],
			Tput: tput, PerMachine: tput / float64(sc.Machines),
			Median: med, P99: p99,
			AbortRate: rate(g.Aborted(), g.Committed()),
		})
	}
	return out
}

// Figure8 runs the TPC-C sweep, reporting committed "new order"
// transactions per second as the paper does. TPC-C contention is governed
// by drivers-per-warehouse (the paper runs 21600 warehouses for 2700
// threads, ≈ 8 per driver), so the database is sized to the load point:
// at least one warehouse per driver, with Scale.Warehouses as a floor.
func Figure8(sc Scale, points [][2]int, warm, measure sim.Time) []CurvePoint {
	var out []CurvePoint
	for _, p := range points {
		warehouses := sc.Warehouses
		if drivers := sc.Machines * p[0] * p[1]; warehouses < drivers {
			warehouses = drivers
		}
		// Cap database size so population stays tractable; beyond the cap
		// the drivers-per-warehouse ratio (and with it the abort rate)
		// rises above the paper's, which EXPERIMENTS.md notes.
		if warehouses > 96 {
			warehouses = 96
		}
		c := core.New(sc.options())
		w, err := tpcc.Setup(c, tpcc.DefaultConfig(warehouses))
		if err != nil {
			panic(err)
		}
		w.MeasureFrom = c.Now() + warm
		g := loadgen.New(c, w.Mix())
		start := c.Now()
		g.RunPoint(allMachines(sc.Machines), p[0], p[1], warm, measure)
		noTput := w.NewOrderTimeline.WindowAverage(start+warm, start+warm+measure) * 1000
		out = append(out, CurvePoint{
			Threads: p[0], Concurrency: p[1],
			Tput: noTput, PerMachine: noTput / float64(sc.Machines),
			Median: w.NewOrderLat.Median(), P99: w.NewOrderLat.P99(),
			AbortRate: rate(g.Aborted(), g.Committed()),
		})
	}
	return out
}

// KVReadPerformance reproduces §6.3's lookup workload (16 B keys, 32 B
// values, uniform): throughput and latency of lock-free reads.
func KVReadPerformance(sc Scale, warm, measure sim.Time) CurvePoint {
	c := core.New(sc.options())
	w, err := ycsb.Setup(c, sc.Subscribers, sc.Regions)
	if err != nil {
		panic(err)
	}
	g := loadgen.New(c, w.LookupOp())
	tput, med, p99 := g.RunPoint(allMachines(sc.Machines), sc.Threads, 4, warm, measure)
	return CurvePoint{
		Threads: sc.Threads, Concurrency: 4,
		Tput: tput, PerMachine: tput / float64(sc.Machines),
		Median: med, P99: p99,
	}
}

func rate(a, b uint64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}

// FormatCurve renders curve points as a table.
func FormatCurve(points []CurvePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %6s %14s %14s %12s %12s %8s\n",
		"threads", "conc", "tput(op/s)", "per-machine", "median", "p99", "aborts")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %6d %14.0f %14.0f %12v %12v %7.1f%%\n",
			p.Threads, p.Concurrency, p.Tput, p.PerMachine, p.Median, p.P99, p.AbortRate*100)
	}
	return b.String()
}
