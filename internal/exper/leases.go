package exper

import (
	"fmt"
	"strings"

	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/sim"
	"farm/internal/ycsb"
)

// This file reproduces Figure 16: false-positive lease expiries for the
// four lease-manager implementations across lease durations, measured with
// recovery disabled while all machines stress the CM with reads (§6.5).

// Fig16Cell is one (variant, duration) measurement.
type Fig16Cell struct {
	Variant  core.LeaseVariant
	Duration sim.Time
	// Expiries is normalized to a 10-minute run like the paper's y-axis.
	Expiries float64
}

// Figure16 measures every variant × duration combination. runFor is the
// simulated time per cell (the paper runs 10 minutes; counts are scaled).
func Figure16(sc Scale, durations []sim.Time, runFor sim.Time) []Fig16Cell {
	variants := []core.LeaseVariant{core.LeaseRPC, core.LeaseUD, core.LeaseUDThread, core.LeaseUDThreadPri}
	var out []Fig16Cell
	for _, v := range variants {
		for _, d := range durations {
			out = append(out, measureLeases(sc, v, d, runFor))
		}
	}
	return out
}

func measureLeases(sc Scale, variant core.LeaseVariant, lease sim.Time, runFor sim.Time) Fig16Cell {
	opts := sc.options()
	opts.LeaseVariant = variant
	opts.LeaseDuration = lease
	c := core.New(opts)
	c.DisableRecovery = true

	// Stress traffic: uniform lock-free reads keep worker threads and NICs
	// busy (the paper's storm reads from the CM; ours reads uniformly,
	// loading every machine's send path, including the CM's receive path).
	w, err := ycsb.Setup(c, 300, 2)
	if err != nil {
		panic(err)
	}
	g := loadgen.New(c, w.LookupOp())
	g.Start(allMachines(sc.Machines), sc.Threads, 2)
	before := c.Counters.Get("lease_expiry")
	c.RunFor(runFor)
	g.Stop()
	count := float64(c.Counters.Get("lease_expiry") - before)
	scale := (10 * 60 * sim.Second).Seconds() / runFor.Seconds()
	return Fig16Cell{Variant: variant, Duration: lease, Expiries: count * scale}
}

// FormatFig16 renders the grid.
func FormatFig16(cells []Fig16Cell) string {
	byVariant := map[core.LeaseVariant][]Fig16Cell{}
	var order []core.LeaseVariant
	for _, c := range cells {
		if _, ok := byVariant[c.Variant]; !ok {
			order = append(order, c.Variant)
		}
		byVariant[c.Variant] = append(byVariant[c.Variant], c)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "lease")
	for _, c := range byVariant[order[0]] {
		fmt.Fprintf(&b, "%12v", c.Duration)
	}
	b.WriteByte('\n')
	for _, v := range order {
		fmt.Fprintf(&b, "%-16s", v.String())
		for _, c := range byVariant[v] {
			fmt.Fprintf(&b, "%12.0f", c.Expiries)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
