package trace

import (
	"bytes"
	"strings"
	"testing"

	"farm/internal/sim"
)

// TestSpanLifecycle exercises Begin/End/Event on one buffer and checks the
// merged record stream: order, kinds, and cross-record linkage fields.
func TestSpanLifecycle(t *testing.T) {
	s := NewSet(Options{Enabled: true}, 2)
	b := s.Machine(0)

	ctx := b.Begin("tx", "tx", 100, 0, 0, 7)
	if !ctx.Valid() {
		t.Fatal("Begin returned an invalid context")
	}
	child := b.Begin("tx", "LOCK", 200, ctx.Trace, ctx.Span, 0)
	if child.Trace != ctx.Trace {
		t.Fatalf("child span joined trace %#x, want %#x", child.Trace, ctx.Trace)
	}
	b.Event("msg", "sent LOCK", 250, ctx.Trace, child.Span, 64)
	b.End(child, 300, 0)
	b.End(ctx, 400, 0)
	// Ending the zero context must be a no-op, not a bogus record.
	b.End(Ctx{}, 500, 0)

	recs := s.merged()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	wantKinds := []Kind{KindBegin, KindBegin, KindInstant, KindEnd, KindEnd}
	for i, r := range recs {
		if r.Kind != wantKinds[i] {
			t.Fatalf("record %d kind = %v, want %v", i, r.Kind, wantKinds[i])
		}
		if i > 0 && recs[i-1].At > r.At {
			t.Fatalf("records out of time order at %d", i)
		}
	}
	if recs[1].Parent != recs[0].Span {
		t.Fatal("child begin does not reference parent span")
	}
	if recs[2].Arg != 64 {
		t.Fatalf("instant arg = %d, want 64", recs[2].Arg)
	}
}

// TestRingEvictionKeepsNewest overfills a small bulk ring and asserts the
// oldest records are overwritten, drops are counted, and the survivors
// come back oldest-first.
func TestRingEvictionKeepsNewest(t *testing.T) {
	s := NewSet(Options{Enabled: true, BufferCap: 8, RecoveryCap: 4}, 1)
	b := s.Machine(0)
	const n = 20
	for i := 0; i < n; i++ {
		b.Event("tx", "op", sim.Time(i), 1, 0, int64(i))
	}
	if got := s.Dropped(); got != n-8 {
		t.Fatalf("Dropped() = %d, want %d", got, n-8)
	}
	recs := s.merged()
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
	for i, r := range recs {
		if want := int64(n - 8 + i); r.Arg != want {
			t.Fatalf("record %d arg = %d, want %d (oldest evicted first)", i, r.Arg, want)
		}
	}
}

// TestRecoveryRecordsShelteredFromTxFlood floods the bulk ring far past
// capacity and asserts recovery and fault records survive untouched: they
// live in their own ring, so the post-recovery transaction flood can never
// evict the Figure 9 timeline.
func TestRecoveryRecordsShelteredFromTxFlood(t *testing.T) {
	s := NewSet(Options{Enabled: true, BufferCap: 8, RecoveryCap: 4}, 1)
	b := s.Machine(0)
	b.Event("recovery", "suspect", 1, RecoveryTraceBit|1, 0, 3)
	b.Event("fault", "lease-expiry", 2, 0, 0, 3)
	for i := 0; i < 1000; i++ {
		b.Event("tx", "op", sim.Time(10+i), 1, 0, 0)
	}
	var gotSuspect, gotExpiry bool
	for _, r := range s.merged() {
		switch r.Name {
		case "suspect":
			gotSuspect = true
		case "lease-expiry":
			gotExpiry = true
		}
	}
	if !gotSuspect || !gotExpiry {
		t.Fatalf("recovery/fault records evicted by tx flood (suspect=%v expiry=%v)",
			gotSuspect, gotExpiry)
	}
}

// TestSampleTx checks the deterministic N-of-every-M transaction sampler.
func TestSampleTx(t *testing.T) {
	s := NewSet(Options{Enabled: true, SampleN: 1, SampleM: 4}, 1)
	b := s.Machine(0)
	want := []bool{true, false, false, false, true, false, false, false}
	for i, w := range want {
		if got := b.SampleTx(); got != w {
			t.Fatalf("SampleTx() call %d = %v, want %v", i, got, w)
		}
	}
}

// buildSet deterministically populates a two-machine set the way the
// instrumented protocol would.
func buildSet() *Set {
	s := NewSet(Options{Enabled: true}, 2)
	m0, m1 := s.Machine(0), s.Machine(1)
	tx := m0.Begin("tx", "tx", 1000, 0, 0, 0)
	lock := m0.Begin("tx", "LOCK", 1100, tx.Trace, tx.Span, 0)
	m0.Event("msg", "sent LOCK", 1150, lock.Trace, lock.Span, 96)
	m1.Event("msg", "recv LOCK", 1400, lock.Trace, lock.Span, 0)
	m0.End(lock, 1800, 0)
	m0.End(tx, 2000, 0)
	s.Cluster().Event("fault", "kill", 2100, 0, 0, 1)
	rid := RecoveryTraceBit | 2
	probe := m0.Begin("recovery", "probe", 2200, rid, 0, 1)
	m0.End(probe, 2300, 1)
	return s
}

// TestExportDeterministicAndValid asserts two identically-built sets
// export byte-identical JSON that passes schema validation, including the
// required-names check.
func TestExportDeterministicAndValid(t *testing.T) {
	a := buildSet().Export()
	b := buildSet().Export()
	if !bytes.Equal(a, b) {
		t.Fatal("identical record sets exported different JSON")
	}
	if err := Validate(a, []string{"tx", "LOCK", "probe", "kill"}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := Validate(a, []string{"re-replication"}); err == nil {
		t.Fatal("Validate accepted an export missing a required name")
	}
	if !bytes.Contains(a, []byte(`"displayTimeUnit":"ms"`)) {
		t.Fatal("export missing trace_event trailer fields")
	}
}

// TestValidateOrphanEnds checks the eviction contract: an async end whose
// begin was dropped by the ring is tolerated only when the export reports
// drops; with no drops it is a structural error.
func TestValidateOrphanEnds(t *testing.T) {
	// No drops: a hand-built end without a begin must fail validation.
	s := NewSet(Options{Enabled: true}, 1)
	s.Machine(0).End(Ctx{Trace: 1, Span: 99, Cat: "tx", Name: "LOCK"}, 100, 0)
	if err := Validate(s.Export(), nil); err == nil {
		t.Fatal("Validate accepted an orphan end with zero drops")
	}

	// With drops: overfill a cap-2 ring so the begin is evicted while its
	// end survives; Chrome ignores such orphans and so must Validate.
	s = NewSet(Options{Enabled: true, BufferCap: 2, RecoveryCap: 4}, 1)
	b := s.Machine(0)
	ctx := b.Begin("tx", "LOCK", 10, 0, 0, 0)
	b.Event("msg", "noise", 20, 0, 0, 0)
	b.Event("msg", "noise", 30, 0, 0, 0)
	b.End(ctx, 40, 0)
	if s.Dropped() == 0 {
		t.Fatal("test setup: expected ring drops")
	}
	if err := Validate(s.Export(), nil); err != nil {
		t.Fatalf("Validate rejected orphan end despite reported drops: %v", err)
	}
}

// TestReport checks the phase breakdown aggregates closed spans and the
// recovery timeline renders the recovery-namespaced trace.
func TestReport(t *testing.T) {
	out := buildSet().Report()
	for _, want := range []string{
		"phase breakdown", "tx/LOCK", "tx/tx", "recovery/probe",
		"recovery timeline (config 2",
		"begin probe",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
