package trace

// Chrome trace_event exporter. The JSON is marshaled by hand with a fixed
// field order and integer-only timestamp arithmetic so that identical
// record sets produce byte-identical output — the determinism tests
// compare exports with bytes.Equal.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"farm/internal/sim"
)

// phase letters of the trace_event format: async begin/end and instant.
func (k Kind) ph() string {
	switch k {
	case KindBegin:
		return "b"
	case KindEnd:
		return "e"
	default:
		return "i"
	}
}

// writeTS writes a sim.Time as trace_event microseconds with fixed
// 3-decimal nanosecond precision using integer math only.
func writeTS(w *bytes.Buffer, t sim.Time) {
	fmt.Fprintf(w, "%d.%03d", int64(t)/1000, int64(t)%1000)
}

// Export merges every buffer and renders Chrome trace_event JSON. Spans
// become async "b"/"e" pairs keyed by (cat, id); point events become
// instants with process scope. pid is the machine (the cluster buffer uses
// pid = number of machines); tid is always 0 — FaRM threads multiplex
// protocol work, so per-machine lanes are the readable unit.
func (s *Set) Export() []byte {
	recs := s.merged()
	var w bytes.Buffer
	w.WriteString("{\"traceEvents\":[\n")
	for i := range s.bufs {
		fmt.Fprintf(&w, "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"machine %d\"}},\n", i, i)
	}
	fmt.Fprintf(&w, "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cluster\"}}", len(s.bufs))
	for i := range recs {
		r := &recs[i]
		w.WriteString(",\n")
		fmt.Fprintf(&w, "{\"ph\":%q,\"cat\":%q,\"name\":%q,\"pid\":%d,\"tid\":0,\"ts\":",
			r.Kind.ph(), r.Cat, r.Name, r.Machine)
		writeTS(&w, r.At)
		if r.Kind == KindInstant {
			w.WriteString(",\"s\":\"p\"")
		} else {
			fmt.Fprintf(&w, ",\"id\":\"0x%x\"", uint64(r.Span))
		}
		fmt.Fprintf(&w, ",\"args\":{\"trace\":\"0x%x\"", r.Trace)
		if r.Parent != 0 {
			fmt.Fprintf(&w, ",\"parent\":\"0x%x\"", uint64(r.Parent))
		}
		if r.Arg != 0 {
			fmt.Fprintf(&w, ",\"v\":%d", r.Arg)
		}
		w.WriteString("}}")
	}
	fmt.Fprintf(&w, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":%d}}\n", s.Dropped())
	return w.Bytes()
}

// exportedEvent is the subset of trace_event fields the schema check
// verifies.
type exportedEvent struct {
	Ph   string   `json:"ph"`
	Cat  string   `json:"cat"`
	Name string   `json:"name"`
	Pid  *int     `json:"pid"`
	Ts   *float64 `json:"ts"`
	ID   string   `json:"id"`
}

type exportedTrace struct {
	TraceEvents []exportedEvent `json:"traceEvents"`
	OtherData   struct {
		Dropped uint64 `json:"dropped"`
	} `json:"otherData"`
}

// Validate parses a Chrome trace_event export and checks structural
// invariants: every event has ph/pid/name, non-metadata events have ts,
// async begins and ends pair up by id, and every name in `required`
// appears at least once. An end without a begin is tolerated when the
// export reports dropped records — ring eviction removes the oldest
// records first, so long runs shed begins whose ends survive (Chrome
// ignores such orphans). It returns nil when the export is well-formed.
func Validate(data []byte, required []string) error {
	var t exportedTrace
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("trace: export is not valid JSON: %w", err)
	}
	if len(t.TraceEvents) == 0 {
		return fmt.Errorf("trace: export has no events")
	}
	open := make(map[string]int)
	seen := make(map[string]bool)
	for i, ev := range t.TraceEvents {
		if ev.Ph == "" || ev.Pid == nil || ev.Name == "" {
			return fmt.Errorf("trace: event %d missing ph/pid/name", i)
		}
		if ev.Ph == "M" {
			continue
		}
		if ev.Ts == nil {
			return fmt.Errorf("trace: event %d (%s) missing ts", i, ev.Name)
		}
		seen[ev.Name] = true
		switch ev.Ph {
		case "b":
			if ev.ID == "" {
				return fmt.Errorf("trace: async begin %d (%s) missing id", i, ev.Name)
			}
			open[ev.Cat+"/"+ev.ID]++
		case "e":
			k := ev.Cat + "/" + ev.ID
			if open[k] == 0 {
				if t.OtherData.Dropped == 0 {
					return fmt.Errorf("trace: async end %d (%s) without begin", i, ev.Name)
				}
				continue
			}
			open[k]--
		case "i":
			// instants carry no id
		default:
			return fmt.Errorf("trace: event %d has unknown ph %q", i, ev.Ph)
		}
	}
	for _, name := range required {
		if !seen[name] {
			return fmt.Errorf("trace: export missing required event %q", name)
		}
	}
	return nil
}
