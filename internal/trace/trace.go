// Package trace is the deterministic cross-machine causality tracing
// subsystem. It records spans (Begin/End pairs) and point events stamped
// from sim.Engine virtual time into fixed-capacity per-machine rings, and
// links records across machines through a small Ctx (trace ID + parent
// span ID) that the typed transport piggybacks on coalesced fabric frames
// and direct sends.
//
// Determinism is load-bearing: the tracer consumes no randomness, schedules
// no events, and derives every identifier from per-buffer monotonic
// counters, so identical seed and configuration produce byte-identical
// exports. When tracing is disabled the per-machine buffer pointer is nil
// and every instrumentation site reduces to one nil check — no allocations
// and no behavioural change on the hot paths.
package trace

import (
	"sort"

	"farm/internal/sim"
)

// SpanID identifies one span. IDs encode the owning buffer, so they are
// unique across machines without coordination: (machine+1)<<40 | counter.
type SpanID uint64

// Kind discriminates record types in a buffer.
type Kind uint8

const (
	// KindBegin opens a span; a matching KindEnd with the same SpanID
	// closes it.
	KindBegin Kind = iota
	// KindEnd closes a span.
	KindEnd
	// KindInstant is a point event (annotations: lease expiry, nemesis
	// fault episodes, message sends/receives).
	KindInstant
)

// RecoveryTraceBit namespaces recovery trace IDs: all machines stamp
// records for the recovery of configuration C with RecoveryTraceBit|C, so
// one cluster-wide Figure 9 timeline assembles without coordination.
const RecoveryTraceBit = uint64(1) << 63

// Ctx is the causal context propagated with messages: which trace the
// sender was working for and which span was open. The zero Ctx means
// "untraced". Cat and Name ride along so End can emit a complete record
// without the buffer keeping an open-span table; they are static strings,
// so copying a Ctx never allocates.
type Ctx struct {
	Trace uint64
	Span  SpanID
	Cat   string
	Name  string
}

// Valid reports whether the context carries a trace.
func (c Ctx) Valid() bool { return c.Trace != 0 }

// Traced wraps a directly-sent (uncoalesced) message with its causal
// context. The transport wraps only when a context is present and tracing
// is enabled, so untraced runs never see (or allocate) it; receivers
// unwrap before registry dispatch.
type Traced struct {
	Ctx Ctx
	Msg interface{}
}

// Record is one trace event in a buffer.
type Record struct {
	At      sim.Time
	Machine int
	Kind    Kind
	Cat     string // category: "tx", "recovery", "msg", "fault", "audit"
	Name    string
	Trace   uint64
	Span    SpanID
	Parent  SpanID
	Arg     int64 // generic numeric attribute (charged bytes, machine id, …)
	Seq     uint64
}

// Options configures tracing on a cluster.
type Options struct {
	// Enabled turns the subsystem on. All other fields are ignored (and
	// no memory is allocated) when false.
	Enabled bool
	// SampleN / SampleM sample N of every M transactions per machine
	// (default 1 of 1: every transaction). Recovery, reconfiguration and
	// fault records are never sampled out — they are rare and are the
	// point of the timeline.
	SampleN, SampleM int
	// BufferCap is the per-machine ring capacity in records (default
	// 1<<16). The ring overwrites oldest records and counts drops.
	BufferCap int
	// RecoveryCap is the capacity of the separate per-machine ring for
	// recovery and fault records (default 1<<12). Keeping them out of the
	// bulk ring means a post-recovery flood of transaction records can
	// never evict the Figure 9 timeline.
	RecoveryCap int
}

func (o Options) withDefaults() Options {
	if o.SampleM <= 0 {
		o.SampleM = 1
	}
	if o.SampleN <= 0 {
		o.SampleN = 1
	}
	if o.SampleN > o.SampleM {
		o.SampleN = o.SampleM
	}
	if o.BufferCap <= 0 {
		o.BufferCap = 1 << 16
	}
	if o.RecoveryCap <= 0 {
		o.RecoveryCap = 1 << 12
	}
	return o
}

// Buffer is one machine's trace ring. All methods run on the simulation
// goroutine; there is no locking.
type Buffer struct {
	machine int
	bulk    ring   // transaction and message records
	rec     ring   // recovery and fault records, sheltered from the tx flood
	seq     uint64 // per-buffer monotonic, breaks same-timestamp ties
	nextID  uint64 // span/trace ID counter
	dropped uint64
	sampleN int
	sampleM int
	txSeen  int // sampling counter (N of every M)
}

// ring is a fixed-capacity overwrite-oldest record ring.
type ring struct {
	cap  int
	recs []Record
	head int // next write position once the ring is full
	full bool
}

func (g *ring) push(r Record, dropped *uint64) {
	if !g.full {
		g.recs = append(g.recs, r)
		if len(g.recs) == g.cap {
			g.full = true
		}
		return
	}
	g.recs[g.head] = r
	g.head = (g.head + 1) % g.cap
	*dropped++
}

// unwound appends the ring's records oldest-first.
func (g *ring) unwound(out []Record) []Record {
	if g.full {
		out = append(out, g.recs[g.head:]...)
		return append(out, g.recs[:g.head]...)
	}
	return append(out, g.recs...)
}

func newBuffer(machine int, o Options) *Buffer {
	return &Buffer{
		machine: machine,
		bulk:    ring{cap: o.BufferCap, recs: make([]Record, 0, o.BufferCap)},
		rec:     ring{cap: o.RecoveryCap, recs: make([]Record, 0, o.RecoveryCap)},
		sampleN: o.SampleN,
		sampleM: o.SampleM,
	}
}

// Machine returns the machine this buffer records for.
func (b *Buffer) Machine() int { return b.machine }

// Dropped returns how many records the ring overwrote.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// SampleTx returns whether the next transaction should be traced,
// advancing the deterministic N-of-every-M sampling counter.
func (b *Buffer) SampleTx() bool {
	s := b.txSeen % b.sampleM
	b.txSeen++
	return s < b.sampleN
}

func (b *Buffer) push(r Record) {
	r.Seq = b.seq
	b.seq++
	if r.Cat == "recovery" || r.Cat == "fault" || r.Cat == "audit" {
		b.rec.push(r, &b.dropped)
		return
	}
	b.bulk.push(r, &b.dropped)
}

func (b *Buffer) newID() uint64 {
	b.nextID++
	return uint64(b.machine+1)<<40 | b.nextID
}

// Begin opens a span and returns its context. traceID 0 allocates a fresh
// trace rooted here; parent 0 means a root span of that trace.
func (b *Buffer) Begin(cat, name string, at sim.Time, traceID uint64, parent SpanID, arg int64) Ctx {
	if traceID == 0 {
		traceID = b.newID()
	}
	span := SpanID(b.newID())
	b.push(Record{
		At: at, Machine: b.machine, Kind: KindBegin, Cat: cat, Name: name,
		Trace: traceID, Span: span, Parent: parent, Arg: arg,
	})
	return Ctx{Trace: traceID, Span: span, Cat: cat, Name: name}
}

// End closes the span identified by ctx. Ending an invalid context is a
// no-op so callers need no guards on error paths.
func (b *Buffer) End(ctx Ctx, at sim.Time, arg int64) {
	if !ctx.Valid() {
		return
	}
	b.push(Record{
		At: at, Machine: b.machine, Kind: KindEnd, Cat: ctx.Cat, Name: ctx.Name,
		Trace: ctx.Trace, Span: ctx.Span, Arg: arg,
	})
}

// Event records a point event. traceID 0 allocates a fresh trace (for
// standalone annotations like nemesis episodes).
func (b *Buffer) Event(cat, name string, at sim.Time, traceID uint64, parent SpanID, arg int64) {
	if traceID == 0 {
		traceID = b.newID()
	}
	b.push(Record{
		At: at, Machine: b.machine, Kind: KindInstant, Cat: cat, Name: name,
		Trace: traceID, Parent: parent, Arg: arg,
	})
}

// Set is the cluster-wide collection of buffers: one per machine plus one
// cluster-level buffer for events with no single machine owner (nemesis
// fault installation, kills).
type Set struct {
	opts    Options
	bufs    []*Buffer
	cluster *Buffer
}

// NewSet creates buffers for machines 0..machines-1 plus the cluster
// buffer. Callers should only construct a Set when tracing is enabled.
func NewSet(opts Options, machines int) *Set {
	o := opts.withDefaults()
	s := &Set{opts: o, cluster: newBuffer(machines, o)}
	s.bufs = make([]*Buffer, machines)
	for i := range s.bufs {
		s.bufs[i] = newBuffer(i, o)
	}
	return s
}

// Machine returns machine i's buffer (nil if out of range, so dynamically
// added clients degrade to untraced).
func (s *Set) Machine(i int) *Buffer {
	if s == nil || i < 0 || i >= len(s.bufs) {
		return nil
	}
	return s.bufs[i]
}

// Cluster returns the cluster-level buffer.
func (s *Set) Cluster() *Buffer { return s.cluster }

// Dropped sums ring overwrites across all buffers.
func (s *Set) Dropped() uint64 {
	n := s.cluster.Dropped()
	for _, b := range s.bufs {
		n += b.Dropped()
	}
	return n
}

// Records returns every record from every buffer in deterministic
// (At, Machine, Seq) order — the same stream Export renders.
func (s *Set) Records() []Record { return s.merged() }

// merged returns every record from every buffer in deterministic order:
// (At, Machine, Seq). Buffers are rings, so records are extracted oldest
// first before sorting.
func (s *Set) merged() []Record {
	var out []Record
	collect := func(b *Buffer) {
		out = b.bulk.unwound(out)
		out = b.rec.unwound(out)
	}
	for _, b := range s.bufs {
		collect(b)
	}
	collect(s.cluster)
	sortRecords(out)
	return out
}

// sortRecords orders records by (At, Machine, Seq) — a strict total order,
// so the result is independent of the input permutation.
func sortRecords(rs []Record) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.Seq < b.Seq
	})
}
