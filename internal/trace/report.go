package trace

// Text reports over a merged record set: a per-phase duration breakdown
// (the currency for comparing protocol variants) and a Figure-9-style
// recovery timeline assembled from the recovery-namespaced trace IDs.

import (
	"bytes"
	"fmt"
	"sort"

	"farm/internal/sim"
)

// spanStat aggregates closed spans of one (cat, name).
type spanStat struct {
	cat, name string
	count     int
	total     sim.Time
	max       sim.Time
}

// Report renders the phase breakdown and, when recovery records exist, the
// recovery timeline. Output is deterministic: aggregation keys are sorted.
func (s *Set) Report() string {
	recs := s.merged()
	var w bytes.Buffer

	// Pair async begins with their ends by span ID.
	begins := make(map[SpanID]Record)
	stats := make(map[string]*spanStat)
	for _, r := range recs {
		switch r.Kind {
		case KindBegin:
			begins[r.Span] = r
		case KindEnd:
			b, ok := begins[r.Span]
			if !ok {
				continue
			}
			delete(begins, r.Span)
			k := b.Cat + "/" + b.Name
			st := stats[k]
			if st == nil {
				st = &spanStat{cat: b.Cat, name: b.Name}
				stats[k] = st
			}
			st.count++
			d := r.At - b.At
			st.total += d
			if d > st.max {
				st.max = d
			}
		}
	}

	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.WriteString("phase breakdown (closed spans)\n")
	fmt.Fprintf(&w, "  %-28s %8s %12s %12s %12s\n", "span", "count", "mean", "max", "total")
	for _, k := range keys {
		st := stats[k]
		mean := st.total / sim.Time(st.count)
		fmt.Fprintf(&w, "  %-28s %8d %12s %12s %12s\n",
			st.cat+"/"+st.name, st.count, mean, st.max, st.total)
	}
	if n := len(begins); n > 0 {
		fmt.Fprintf(&w, "  (%d spans still open at export)\n", n)
	}

	if tl := recoveryTimeline(recs); tl != "" {
		w.WriteString("\n")
		w.WriteString(tl)
	}
	return w.String()
}

// recoveryTimeline renders the latest recovery trace as a Figure-9-style
// timeline: every milestone offset from the first record of that trace.
func recoveryTimeline(recs []Record) string {
	// Find the highest recovery trace ID (the latest configuration's
	// recovery) and collect its records in merged order.
	var latest uint64
	for _, r := range recs {
		if r.Trace&RecoveryTraceBit != 0 && r.Trace > latest {
			latest = r.Trace
		}
	}
	if latest == 0 {
		return ""
	}
	var mine []Record
	for _, r := range recs {
		if r.Trace == latest {
			mine = append(mine, r)
		}
	}
	var w bytes.Buffer
	fmt.Fprintf(&w, "recovery timeline (config %d, %d records)\n", latest&^RecoveryTraceBit, len(mine))
	t0 := mine[0].At
	line := func(r Record) {
		var verb string
		switch r.Kind {
		case KindBegin:
			verb = "begin"
		case KindEnd:
			verb = "end  "
		default:
			verb = "event"
		}
		fmt.Fprintf(&w, "  +%-12s m%-3d %s %s", r.At-t0, r.Machine, verb, r.Name)
		if r.Arg != 0 {
			fmt.Fprintf(&w, " (%d)", r.Arg)
		}
		w.WriteString("\n")
	}
	// Bound the rendering: a big recovery has thousands of per-transaction
	// vote records; the head and tail carry the Figure 9 shape.
	const headMax, tailMax = 48, 12
	if len(mine) <= headMax+tailMax {
		for _, r := range mine {
			line(r)
		}
		return w.String()
	}
	for _, r := range mine[:headMax] {
		line(r)
	}
	fmt.Fprintf(&w, "  … (%d records elided)\n", len(mine)-headMax-tailMax)
	for _, r := range mine[len(mine)-tailMax:] {
		line(r)
	}
	return w.String()
}
