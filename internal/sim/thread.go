package sim

// Thread models one hardware thread as a non-preemptive FIFO server with a
// two-level priority queue. Work items are (cpu-cost, completion) pairs; a
// thread serves one item at a time and charges its cost to the virtual
// clock, so CPU saturation and queueing delay emerge naturally. This is how
// the reproduction exposes the CPU bottlenecks the paper is about: RPC
// handling costs remote CPU here, one-sided RDMA does not.
type Thread struct {
	eng  *Engine
	name string

	busy   bool
	high   []workItem // served before normal work (lease-manager priority)
	normal []workItem

	// busyNS accumulates time spent serving work, for utilization metrics.
	busyNS Time
	// jitter, if set, is sampled and added to every item's service time.
	// It models scheduler preemption by unrelated OS tasks.
	jitter func(r *Rand) Time

	served uint64
}

type workItem struct {
	cost Time
	fn   func()
}

// NewThread creates an idle thread attached to eng.
func NewThread(eng *Engine, name string) *Thread {
	return &Thread{eng: eng, name: name}
}

// Name returns the diagnostic name given at construction.
func (t *Thread) Name() string { return t.name }

// SetJitter installs a per-item scheduling-delay sampler (may be nil).
func (t *Thread) SetJitter(f func(r *Rand) Time) { t.jitter = f }

// Do enqueues work costing cost CPU time; fn runs when the work completes.
// fn may be nil for pure CPU-burn accounting.
func (t *Thread) Do(cost Time, fn func()) { t.enqueue(cost, fn, false) }

// DoPriority enqueues work ahead of all normal-priority work.
func (t *Thread) DoPriority(cost Time, fn func()) { t.enqueue(cost, fn, true) }

func (t *Thread) enqueue(cost Time, fn func(), prio bool) {
	if cost < 0 {
		cost = 0
	}
	it := workItem{cost: cost, fn: fn}
	if prio {
		t.high = append(t.high, it)
	} else {
		t.normal = append(t.normal, it)
	}
	if !t.busy {
		t.serveNext()
	}
}

func (t *Thread) serveNext() {
	var it workItem
	switch {
	case len(t.high) > 0:
		it = t.high[0]
		t.high = t.high[1:]
	case len(t.normal) > 0:
		it = t.normal[0]
		t.normal = t.normal[1:]
	default:
		t.busy = false
		return
	}
	t.busy = true
	cost := it.cost
	if t.jitter != nil {
		cost += t.jitter(t.eng.Rand())
	}
	t.busyNS += cost
	t.eng.After(cost, func() {
		t.served++
		if it.fn != nil {
			it.fn()
		}
		t.serveNext()
	})
}

// QueueLen reports the number of items waiting (not counting the one in
// service).
func (t *Thread) QueueLen() int { return len(t.high) + len(t.normal) }

// Busy reports whether the thread is currently serving an item.
func (t *Thread) Busy() bool { return t.busy }

// BusyTime returns the cumulative service time charged so far.
func (t *Thread) BusyTime() Time { return t.busyNS }

// Served returns the number of completed work items.
func (t *Thread) Served() uint64 { return t.served }

// ThreadPool is a set of threads with least-loaded dispatch, modelling the
// worker threads of one machine.
type ThreadPool struct {
	Threads []*Thread
	rr      int
}

// NewThreadPool creates n threads named prefix/0..n-1.
func NewThreadPool(eng *Engine, n int, prefix string) *ThreadPool {
	p := &ThreadPool{}
	for i := 0; i < n; i++ {
		p.Threads = append(p.Threads, NewThread(eng, prefix+"/"+itoa(i)))
	}
	return p
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

// Size returns the number of threads in the pool.
func (p *ThreadPool) Size() int { return len(p.Threads) }

// Dispatch places work on the least-loaded thread (round-robin among ties).
func (p *ThreadPool) Dispatch(cost Time, fn func()) {
	p.pick().Do(cost, fn)
}

func (p *ThreadPool) pick() *Thread {
	best := -1
	bestLen := int(^uint(0) >> 1)
	n := len(p.Threads)
	for i := 0; i < n; i++ {
		idx := (p.rr + i) % n
		th := p.Threads[idx]
		l := th.QueueLen()
		if th.Busy() {
			l++
		}
		if l < bestLen {
			bestLen = l
			best = idx
			if l == 0 {
				break
			}
		}
	}
	p.rr = (best + 1) % n
	return p.Threads[best]
}

// ByIndex dispatches to a specific thread, used when the protocol shards
// work by thread id (e.g. FaRM recovery shards transactions by coordinator
// thread).
func (p *ThreadPool) ByIndex(i int) *Thread { return p.Threads[i%len(p.Threads)] }

// BusyTime sums service time across all threads.
func (p *ThreadPool) BusyTime() Time {
	var total Time
	for _, t := range p.Threads {
		total += t.BusyTime()
	}
	return total
}

// Utilization returns mean thread utilization over elapsed virtual time.
func (p *ThreadPool) Utilization(elapsed Time) float64 {
	if elapsed <= 0 || len(p.Threads) == 0 {
		return 0
	}
	return float64(p.BusyTime()) / float64(elapsed) / float64(len(p.Threads))
}
