package sim

// Thread models one hardware thread as a non-preemptive FIFO server with a
// two-level priority queue. Work items are (cpu-cost, completion) pairs; a
// thread serves one item at a time and charges its cost to the virtual
// clock, so CPU saturation and queueing delay emerge naturally. This is how
// the reproduction exposes the CPU bottlenecks the paper is about: RPC
// handling costs remote CPU here, one-sided RDMA does not.
//
// The queues are ring buffers and each thread owns a single pre-bound
// completion closure, so serving an item performs no heap allocation in
// steady state (the old slice-slide queues re-allocated their backing
// arrays continuously and bound one closure per item).
type Thread struct {
	eng  *Engine
	name string

	busy   bool
	high   workRing // served before normal work (lease-manager priority)
	normal workRing

	// cur is the item in service; finishFn is the completion closure bound
	// once at construction and reused for every item.
	cur      workItem
	finishFn func()

	// busyNS accumulates time spent serving work, for utilization metrics.
	busyNS Time
	// jitter, if set, is sampled and added to every item's service time.
	// It models scheduler preemption by unrelated OS tasks.
	jitter func(r *Rand) Time

	served uint64
}

type workItem struct {
	cost Time
	fn   func()
}

// workRing is a growable FIFO ring of work items. Pop zeroes the vacated
// entry so the ring never pins dead closures.
type workRing struct {
	items []workItem
	head  int
	n     int
}

func (r *workRing) push(it workItem) {
	if r.n == len(r.items) {
		grown := make([]workItem, max(8, 2*len(r.items)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.items[(r.head+i)%len(r.items)]
		}
		r.items = grown
		r.head = 0
	}
	r.items[(r.head+r.n)%len(r.items)] = it
	r.n++
}

func (r *workRing) pop() workItem {
	it := r.items[r.head]
	r.items[r.head] = workItem{}
	r.head = (r.head + 1) % len(r.items)
	r.n--
	return it
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewThread creates an idle thread attached to eng.
func NewThread(eng *Engine, name string) *Thread {
	t := &Thread{eng: eng, name: name}
	t.finishFn = t.finish
	return t
}

// Name returns the diagnostic name given at construction.
func (t *Thread) Name() string { return t.name }

// SetJitter installs a per-item scheduling-delay sampler (may be nil).
func (t *Thread) SetJitter(f func(r *Rand) Time) { t.jitter = f }

// Do enqueues work costing cost CPU time; fn runs when the work completes.
// fn may be nil for pure CPU-burn accounting.
func (t *Thread) Do(cost Time, fn func()) { t.enqueue(cost, fn, false) }

// DoPriority enqueues work ahead of all normal-priority work.
func (t *Thread) DoPriority(cost Time, fn func()) { t.enqueue(cost, fn, true) }

func (t *Thread) enqueue(cost Time, fn func(), prio bool) {
	if cost < 0 {
		cost = 0
	}
	it := workItem{cost: cost, fn: fn}
	if prio {
		t.high.push(it)
	} else {
		t.normal.push(it)
	}
	if !t.busy {
		t.serveNext()
	}
}

func (t *Thread) serveNext() {
	var it workItem
	switch {
	case t.high.n > 0:
		it = t.high.pop()
	case t.normal.n > 0:
		it = t.normal.pop()
	default:
		t.busy = false
		return
	}
	t.busy = true
	cost := it.cost
	if t.jitter != nil {
		cost += t.jitter(t.eng.Rand())
	}
	t.busyNS += cost
	t.cur = it
	t.eng.After(cost, t.finishFn)
}

// finish completes the item in service and starts the next one. It is the
// thread's single completion callback: cur is read before running fn so a
// completion that enqueues more work (busy is still true, so enqueue just
// queues) cannot clobber it.
func (t *Thread) finish() {
	it := t.cur
	t.cur = workItem{}
	t.served++
	if it.fn != nil {
		it.fn()
	}
	t.serveNext()
}

// QueueLen reports the number of items waiting (not counting the one in
// service).
func (t *Thread) QueueLen() int { return t.high.n + t.normal.n }

// Busy reports whether the thread is currently serving an item.
func (t *Thread) Busy() bool { return t.busy }

// BusyTime returns the cumulative service time charged so far.
func (t *Thread) BusyTime() Time { return t.busyNS }

// Served returns the number of completed work items.
func (t *Thread) Served() uint64 { return t.served }

// ThreadPool is a set of threads with least-loaded dispatch, modelling the
// worker threads of one machine.
type ThreadPool struct {
	Threads []*Thread
	rr      int
}

// NewThreadPool creates n threads named prefix/0..n-1.
func NewThreadPool(eng *Engine, n int, prefix string) *ThreadPool {
	p := &ThreadPool{}
	for i := 0; i < n; i++ {
		p.Threads = append(p.Threads, NewThread(eng, prefix+"/"+itoa(i)))
	}
	return p
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

// Size returns the number of threads in the pool.
func (p *ThreadPool) Size() int { return len(p.Threads) }

// Dispatch places work on the least-loaded thread (round-robin among ties).
func (p *ThreadPool) Dispatch(cost Time, fn func()) {
	p.pick().Do(cost, fn)
}

func (p *ThreadPool) pick() *Thread {
	best := -1
	bestLen := int(^uint(0) >> 1)
	n := len(p.Threads)
	for i := 0; i < n; i++ {
		idx := (p.rr + i) % n
		th := p.Threads[idx]
		l := th.QueueLen()
		if th.Busy() {
			l++
		}
		if l < bestLen {
			bestLen = l
			best = idx
			if l == 0 {
				break
			}
		}
	}
	p.rr = (best + 1) % n
	return p.Threads[best]
}

// ByIndex dispatches to a specific thread, used when the protocol shards
// work by thread id (e.g. FaRM recovery shards transactions by coordinator
// thread).
func (p *ThreadPool) ByIndex(i int) *Thread { return p.Threads[i%len(p.Threads)] }

// BusyTime sums service time across all threads.
func (p *ThreadPool) BusyTime() Time {
	var total Time
	for _, t := range p.Threads {
		total += t.BusyTime()
	}
	return total
}

// Utilization returns mean thread utilization over elapsed virtual time.
func (p *ThreadPool) Utilization(elapsed Time) float64 {
	if elapsed <= 0 || len(p.Threads) == 0 {
		return 0
	}
	return float64(p.BusyTime()) / float64(elapsed) / float64(len(p.Threads))
}
