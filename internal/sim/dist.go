package sim

// DistKind selects the shape of a DelayDist.
type DistKind int

const (
	// DistNone is the zero value: Sample always returns 0.
	DistNone DistKind = iota
	// DistFixed returns exactly Base.
	DistFixed
	// DistUniform returns Base plus a uniform draw in [0, Spread).
	DistUniform
	// DistExp returns Base plus an exponential draw with mean Spread,
	// capped at Base + 8*Spread so one unlucky sample cannot stall the
	// simulation for an unbounded stretch.
	DistExp
)

// DelayDist is a parameterized delay distribution. The nemesis layer uses
// it for per-link extra latency and degraded-NIC slowdowns; anything else
// that needs a seeded, replayable delay model can share it. The zero value
// means "no delay".
type DelayDist struct {
	Kind   DistKind
	Base   Time
	Spread Time
}

// Fixed returns a distribution that always yields d.
func Fixed(d Time) DelayDist { return DelayDist{Kind: DistFixed, Base: d} }

// Uniform returns a distribution over [lo, hi).
func Uniform(lo, hi Time) DelayDist {
	if hi < lo {
		hi = lo
	}
	return DelayDist{Kind: DistUniform, Base: lo, Spread: hi - lo}
}

// Exp returns a distribution of base plus an exponential tail with the
// given mean.
func Exp(base, mean Time) DelayDist { return DelayDist{Kind: DistExp, Base: base, Spread: mean} }

// Zero reports whether the distribution never yields a positive delay.
func (d DelayDist) Zero() bool {
	return d.Kind == DistNone || (d.Base <= 0 && (d.Kind == DistFixed || d.Spread <= 0))
}

// Sample draws one delay. It never returns a negative Time.
func (d DelayDist) Sample(r *Rand) Time {
	var out Time
	switch d.Kind {
	case DistFixed:
		out = d.Base
	case DistUniform:
		out = d.Base + r.Duration(d.Spread)
	case DistExp:
		tail := Time(float64(d.Spread) * r.ExpFloat64())
		if cap := 8 * d.Spread; tail > cap {
			tail = cap
		}
		out = d.Base + tail
	}
	if out < 0 {
		out = 0
	}
	return out
}
