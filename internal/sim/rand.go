package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64 core) used for all stochastic choices in the simulation.
// Using our own generator rather than math/rand keeps results stable across
// Go releases, which matters because EXPERIMENTS.md records exact numbers.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed. Seed zero is remapped so
// the state never sticks at the splitmix64 fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1 - u)
}

// Duration returns a uniform Time in [0, d).
func (r *Rand) Duration(d Time) Time {
	if d <= 0 {
		return 0
	}
	return Time(r.Int63n(int64(d)))
}

// Between returns a uniform Time in [lo, hi).
func (r *Rand) Between(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + r.Duration(hi-lo)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf draws from a Zipfian distribution over [0, n) with skew theta using
// rejection-inversion. theta = 0 degenerates to uniform. Used by workloads
// that model skewed key popularity (the paper attributes TATP throughput
// dips to access skew).
type Zipf struct {
	r     *Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf builds a Zipf sampler over [0, n). The construction is O(n) once;
// sampling is O(1) (YCSB-style).
func NewZipf(r *Rand, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("sim: Zipf with zero n")
	}
	z := &Zipf{r: r, n: n, theta: theta}
	if theta <= 0 {
		return z
	}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() uint64 {
	if z.theta <= 0 {
		return z.r.Uint64n(z.n)
	}
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
