package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, v)
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", fired)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntilAdvancesClockAndLeavesLaterEvents(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(10, func() { ran++ })
	e.At(100, func() { ran++ })
	e.RunUntil(50)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 2 || e.Now() != 100 {
		t.Fatalf("resume failed: ran=%d now=%v", ran, e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	timer := e.AfterTimer(10, func() { fired = true })
	e.At(5, func() { timer.Stop() })
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if !timer.Stopped() {
		t.Fatal("Stopped() should report true")
	}
}

func TestStopAndResume(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(1, func() { got = append(got, 1); e.Stop() })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 1 {
		t.Fatalf("Stop did not halt Run: %v", got)
	}
	e.Resume()
	e.Run()
	if len(got) != 2 {
		t.Fatalf("Resume did not continue: %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds too correlated: %d matches", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		if v := r.Between(100, 200); v < 100 || v >= 200 {
			t.Fatalf("Between out of range: %d", v)
		}
	}
}

func TestRandFloat64Quick(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfUniformAndSkewed(t *testing.T) {
	r := NewRand(11)
	u := NewZipf(r, 100, 0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[u.Next()]++
	}
	for k, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("uniform zipf too skewed at %d: %d", k, c)
		}
	}
	z := NewZipf(r, 100, 0.9)
	zc := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v >= 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
		zc[v]++
	}
	if zc[0] < 5*counts[0] {
		t.Fatalf("zipf theta=0.9 not skewed: head=%d uniform head=%d", zc[0], counts[0])
	}
}

func TestThreadServiceAndQueueing(t *testing.T) {
	e := NewEngine(1)
	th := NewThread(e, "t0")
	var done []Time
	// Two items of 100ns each, enqueued together: completions at 100 and 200.
	th.Do(100, func() { done = append(done, e.Now()) })
	th.Do(100, func() { done = append(done, e.Now()) })
	e.Run()
	if len(done) != 2 || done[0] != 100 || done[1] != 200 {
		t.Fatalf("service times wrong: %v", done)
	}
	if th.BusyTime() != 200 {
		t.Fatalf("busy time = %v, want 200", th.BusyTime())
	}
	if th.Served() != 2 {
		t.Fatalf("served = %d, want 2", th.Served())
	}
}

func TestThreadPriority(t *testing.T) {
	e := NewEngine(1)
	th := NewThread(e, "t0")
	var order []string
	th.Do(10, func() { order = append(order, "n1") })
	th.Do(10, func() { order = append(order, "n2") })
	th.DoPriority(10, func() { order = append(order, "hi") })
	e.Run()
	// n1 is already in service when hi arrives; hi must preempt the queue
	// (run before n2) but not the in-service item.
	if len(order) != 3 || order[0] != "n1" || order[1] != "hi" || order[2] != "n2" {
		t.Fatalf("priority order wrong: %v", order)
	}
}

func TestThreadJitter(t *testing.T) {
	e := NewEngine(1)
	th := NewThread(e, "t0")
	th.SetJitter(func(*Rand) Time { return 50 })
	var at Time
	th.Do(100, func() { at = e.Now() })
	e.Run()
	if at != 150 {
		t.Fatalf("jittered completion at %v, want 150", at)
	}
}

func TestThreadPoolLeastLoaded(t *testing.T) {
	e := NewEngine(1)
	p := NewThreadPool(e, 4, "m0")
	for i := 0; i < 8; i++ {
		p.Dispatch(100, nil)
	}
	// 8 items over 4 threads: everything should complete by t=200.
	e.Run()
	if e.Now() != 200 {
		t.Fatalf("pool did not balance: finished at %v, want 200", e.Now())
	}
	if got := p.Utilization(200); got != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", got)
	}
}

func TestThreadPoolByIndexSharding(t *testing.T) {
	e := NewEngine(1)
	p := NewThreadPool(e, 3, "m")
	if p.ByIndex(0) == p.ByIndex(1) {
		t.Fatal("distinct indices mapped to same thread")
	}
	if p.ByIndex(1) != p.ByIndex(4) {
		t.Fatal("index sharding not modular")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine(99)
		var trace []uint64
		var step func()
		step = func() {
			trace = append(trace, e.Rand().Uint64n(1000))
			if len(trace) < 50 {
				e.After(Time(e.Rand().Intn(100)+1), step)
			}
		}
		e.After(1, step)
		e.Run()
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
