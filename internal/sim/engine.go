// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the FaRM reproduction runs inside a single sim.Engine: machines,
// NICs, CPU threads, leases and workloads are event handlers scheduled on a
// virtual clock. Determinism (one goroutine, seeded randomness) makes every
// distributed-systems failure scenario replayable bit-for-bit, which the
// recovery tests rely on.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *Rand
	stopped bool
	// executed counts events processed, useful for run-away detection in tests.
	executed uint64
}

// NewEngine returns an engine whose clock starts at zero and whose
// pseudo-random source is seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled but not yet run.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a protocol bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d is clamped
// to zero.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Timer is a cancellable scheduled event returned by AfterTimer.
type Timer struct{ stopped bool }

// Stop cancels the timer; the associated function will not run. Stopping an
// already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Timer) Stopped() bool { return t.stopped }

// AfterTimer schedules fn after d and returns a handle that can cancel it.
func (e *Engine) AfterTimer(d Time, fn func()) *Timer {
	t := &Timer{}
	e.After(d, func() {
		if !t.stopped {
			fn()
		}
	})
	return t
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run processes events until none remain or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes all events scheduled at or before deadline and then
// advances the clock to exactly deadline. Events scheduled later remain
// pending.
func (e *Engine) RunUntil(deadline Time) {
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor processes events for d of virtual time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Stop halts Run/RunUntil after the current event returns. Pending events
// stay queued; a stopped engine can be resumed with Resume.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears the stopped flag set by Stop.
func (e *Engine) Resume() { e.stopped = false }
