// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the FaRM reproduction runs inside a single sim.Engine: machines,
// NICs, CPU threads, leases and workloads are event handlers scheduled on a
// virtual clock. Determinism (one goroutine, seeded randomness) makes every
// distributed-systems failure scenario replayable bit-for-bit, which the
// recovery tests rely on.
package sim

import "fmt"

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// event is one scheduled callback. Events are stored by value in a 4-ary
// heap: pushing and popping moves events around inside one backing array
// and never touches the garbage collector. slot is -1 for plain events;
// cancellable timers carry the index of their timerSlot so the heap can
// report position changes back to the handle table.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	slot int32  // timerSlot index, or noSlot
	fn   func()
}

const noSlot = int32(-1)

// timerSlot tracks one live cancellable timer: where its event currently
// sits in the heap and a generation stamp that invalidates stale Timer
// handles once the slot is recycled.
type timerSlot struct {
	pos int32
	gen uint32
}

// Engine is a single-threaded discrete-event scheduler with a virtual
// clock. The zero value is not usable; construct with NewEngine.
//
// The pending-event queue is a value-typed 4-ary min-heap ordered by
// (at, seq). Four-ary beats binary here because sift-down — the cost of
// every pop — does ~half the levels, and the per-level child scan is
// four adjacent comparisons in one cache line of events. The steady-state
// cost of scheduling and running an event is zero heap allocations: the
// heap array and the timer-slot table are reused in place, and cancelled
// timers are removed from the heap immediately rather than popped dead at
// their deadline.
type Engine struct {
	now     Time
	seq     uint64
	events  []event
	rng     *Rand
	stopped bool
	// executed counts events processed, useful for run-away detection in tests.
	executed uint64

	// slots is the cancellable-timer handle table; freeSlots is its free
	// list. Both grow to the high-water mark of concurrently-live timers
	// and are then reused forever.
	slots     []timerSlot
	freeSlots []int32
}

// NewEngine returns an engine whose clock starts at zero and whose
// pseudo-random source is seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled but not yet run. Cancelled
// timers leave the queue at Stop time and are not counted.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a protocol bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, slot: noSlot, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d is clamped
// to zero.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Timer is a cancellable scheduled event returned by AfterTimer. It is a
// value handle (index + generation) into the engine's timer table, so
// creating one allocates nothing. Each copy of a Timer tracks Stop calls
// independently; cancel through the copy you keep.
type Timer struct {
	e       *Engine
	slot    int32
	gen     uint32
	stopped bool
}

// Stop cancels the timer; the associated function will not run. The
// underlying event is removed from the queue immediately (it stops
// counting toward Pending and costs no future heap pop). Stopping an
// already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.e != nil {
		t.e.cancelTimer(t.slot, t.gen)
	}
}

// Stopped reports whether Stop has been called on this handle.
func (t *Timer) Stopped() bool { return t.stopped }

// AfterTimer schedules fn after d and returns a handle that can cancel it.
// Unlike older versions there is no wrapping closure: fn is stored in the
// queue entry directly and cancellation removes the entry.
func (e *Engine) AfterTimer(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	var idx int32
	if n := len(e.freeSlots); n > 0 {
		idx = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
	} else {
		idx = int32(len(e.slots))
		e.slots = append(e.slots, timerSlot{})
	}
	e.seq++
	e.push(event{at: e.now + d, seq: e.seq, slot: idx, fn: fn})
	return Timer{e: e, slot: idx, gen: e.slots[idx].gen}
}

// cancelTimer removes the timer's event from the heap if it has not fired
// yet; stale generations (the timer already fired) are ignored.
func (e *Engine) cancelTimer(slot int32, gen uint32) {
	s := &e.slots[slot]
	if s.gen != gen {
		return
	}
	pos := s.pos
	e.releaseSlot(slot)
	e.removeAt(int(pos))
}

// releaseSlot recycles a timer slot, invalidating outstanding handles.
func (e *Engine) releaseSlot(slot int32) {
	e.slots[slot].gen++
	e.freeSlots = append(e.freeSlots, slot)
}

// --- 4-ary heap ordered by (at, seq) ---

func evBefore(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// track records event i's heap position in its timer slot, if it has one.
func (e *Engine) track(i int) {
	if s := e.events[i].slot; s != noSlot {
		e.slots[s].pos = int32(i)
	}
}

func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		p := (i - 1) / 4
		if !evBefore(&ev, &e.events[p]) {
			break
		}
		e.events[i] = e.events[p]
		e.track(i)
		i = p
	}
	e.events[i] = ev
	e.track(i)
}

func (e *Engine) siftDown(i int) {
	n := len(e.events)
	ev := e.events[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if evBefore(&e.events[c], &e.events[min]) {
				min = c
			}
		}
		if !evBefore(&e.events[min], &ev) {
			break
		}
		e.events[i] = e.events[min]
		e.track(i)
		i = min
	}
	e.events[i] = ev
	e.track(i)
}

// removeAt deletes the event at heap index i, restoring heap order. The
// vacated tail entry is zeroed so the backing array does not pin the
// callback closure for the garbage collector.
func (e *Engine) removeAt(i int) {
	n := len(e.events) - 1
	last := e.events[n]
	e.events[n] = event{}
	e.events = e.events[:n]
	if i == n {
		return
	}
	e.events[i] = last
	e.track(i)
	if i > 0 && evBefore(&e.events[i], &e.events[(i-1)/4]) {
		e.siftUp(i)
	} else {
		e.siftDown(i)
	}
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	ev := e.events[0]
	e.removeAt(0)
	if ev.slot != noSlot {
		e.releaseSlot(ev.slot)
	}
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run processes events until none remain or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes all events scheduled at or before deadline and then
// advances the clock to exactly deadline. Events scheduled later remain
// pending.
func (e *Engine) RunUntil(deadline Time) {
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor processes events for d of virtual time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Stop halts Run/RunUntil after the current event returns. Pending events
// stay queued; a stopped engine can be resumed with Resume.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears the stopped flag set by Stop.
func (e *Engine) Resume() { e.stopped = false }
