package sim

import (
	"container/heap"
	"testing"
)

// This file guards the value-typed 4-ary event queue with a reference
// model: the straightforward container/heap implementation the engine used
// to have. The property test drives both through randomized schedules —
// bursts of same-time events, mixed At/After/AfterTimer, cancellations,
// nested scheduling — and asserts identical execution order, because the
// whole repo's determinism contract reduces to "the queue pops in (at, seq)
// order, FIFO among ties".

// refEvent is one scheduled callback in the reference model.
type refEvent struct {
	at        Time
	seq       uint64
	id        int
	cancelled bool
	popped    bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	return h[i].at < h[j].at || (h[i].at == h[j].at && h[i].seq < h[j].seq)
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// refModel mirrors the engine: same (at, seq) order, and cancelled timers
// never execute.
type refModel struct {
	h    refHeap
	seq  uint64
	now  Time
	live int // scheduled, not popped, not cancelled
}

func (m *refModel) schedule(at Time, id int) *refEvent {
	m.seq++
	ev := &refEvent{at: at, seq: m.seq, id: id}
	heap.Push(&m.h, ev)
	m.live++
	return ev
}

func (m *refModel) cancel(ev *refEvent) {
	if ev.popped || ev.cancelled {
		return
	}
	ev.cancelled = true
	m.live--
}

// pop returns the next event that should execute, or nil.
func (m *refModel) pop() *refEvent {
	for len(m.h) > 0 {
		ev := heap.Pop(&m.h).(*refEvent)
		ev.popped = true
		if ev.cancelled {
			continue
		}
		m.now = ev.at
		m.live--
		return ev
	}
	return nil
}

func TestQueueMatchesReferenceModel(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		e := NewEngine(seed)
		model := &refModel{}
		rng := NewRand(seed * 7919)

		var got, want []int
		record := func(id int) func() {
			return func() { got = append(got, id) }
		}

		type liveTimer struct {
			tm Timer
			ev *refEvent
		}
		var timers []liveTimer
		nextID := 0

		// Drive both queues through the same randomized schedule. The
		// engine's clock equals the model's clock after every step, so
		// scheduling "from outside" after a step is indistinguishable from
		// an event scheduling nested work at its own execution time.
		for op := 0; op < 3000; op++ {
			switch rng.Intn(10) {
			case 0, 1: // burst of same-time events — FIFO tie-break coverage
				d := Time(rng.Intn(50))
				for k := rng.Intn(4) + 2; k > 0; k-- {
					id := nextID
					nextID++
					e.At(e.Now()+d, record(id))
					model.schedule(model.now+d, id)
				}
			case 2, 3: // single After
				d := Time(rng.Intn(200))
				id := nextID
				nextID++
				e.After(d, record(id))
				model.schedule(model.now+d, id)
			case 4, 5: // cancellable timer
				d := Time(rng.Intn(200))
				id := nextID
				nextID++
				tm := e.AfterTimer(d, record(id))
				ev := model.schedule(model.now+d, id)
				timers = append(timers, liveTimer{tm, ev})
			case 6: // cancel a random timer (possibly already fired: no-op)
				if len(timers) > 0 {
					i := rng.Intn(len(timers))
					timers[i].tm.Stop()
					model.cancel(timers[i].ev)
					timers[i] = timers[len(timers)-1]
					timers = timers[:len(timers)-1]
				}
			default: // step both
				stepped := e.Step()
				ev := model.pop()
				if stepped != (ev != nil) {
					t.Fatalf("seed %d op %d: engine stepped=%v, model=%v", seed, op, stepped, ev != nil)
				}
				if ev != nil {
					want = append(want, ev.id)
					if e.Now() != ev.at {
						t.Fatalf("seed %d op %d: clock %v, model %v", seed, op, e.Now(), ev.at)
					}
				}
			}
			if e.Pending() != model.live {
				t.Fatalf("seed %d op %d: Pending()=%d, model live=%d", seed, op, e.Pending(), model.live)
			}
		}

		// Drain both.
		for e.Step() {
			ev := model.pop()
			if ev == nil {
				t.Fatalf("seed %d: engine had more events than model", seed)
			}
			want = append(want, ev.id)
		}
		if model.pop() != nil {
			t.Fatalf("seed %d: model had more events than engine", seed)
		}

		if len(got) != len(want) {
			t.Fatalf("seed %d: executed %d events, model %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: execution order diverged at %d: got %d, want %d", seed, i, got[i], want[i])
			}
		}
	}
}

// TestSteadyStateZeroAllocs pins the engine's zero-allocation contract:
// once the heap array and timer-slot table have grown to their high-water
// mark, scheduling and running events allocates nothing.
func TestSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}

	// Warm: grow the heap backing array and the timer slot table.
	for i := 0; i < 1024; i++ {
		e.After(Time(i), fn)
	}
	for i := 0; i < 64; i++ {
		e.AfterTimer(Time(i), fn)
	}
	e.Run()

	cases := []struct {
		name string
		body func()
	}{
		{"After+Step", func() { e.After(10, fn); e.Step() }},
		{"At+Step", func() { e.At(e.Now()+5, fn); e.Step() }},
		{"AfterTimer+Step", func() { e.AfterTimer(10, fn); e.Step() }},
		{"AfterTimer+Stop", func() { tm := e.AfterTimer(10, fn); tm.Stop() }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(1000, c.body); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per event, want 0", c.name, allocs)
		}
	}
}

// TestStoppedTimerLeavesQueueImmediately covers the Pending()/occupancy
// fix: a cancelled timer's entry is removed at Stop time, not popped dead
// at its deadline.
func TestStoppedTimerLeavesQueueImmediately(t *testing.T) {
	e := NewEngine(1)
	tm := e.AfterTimer(100, func() { t.Error("stopped timer fired") })
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	tm.Stop()
	if e.Pending() != 0 {
		t.Fatalf("Pending() after Stop = %d, want 0 (entry must be reclaimed)", e.Pending())
	}
	e.Run()
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v draining a cancelled timer, want 0", e.Now())
	}
	if e.Executed() != 0 {
		t.Fatalf("executed %d events, want 0", e.Executed())
	}
	// Double Stop is a no-op.
	tm.Stop()
	if !tm.Stopped() {
		t.Fatal("Stopped() should report true")
	}
}

// TestStaleTimerHandleDoesNotCancelRecycledSlot: once a timer fires, its
// slot is recycled; a Stop through the old handle must not cancel whatever
// timer now occupies the slot.
func TestStaleTimerHandleDoesNotCancelRecycledSlot(t *testing.T) {
	e := NewEngine(1)
	t1 := e.AfterTimer(10, func() {})
	e.Run() // t1 fires; its slot returns to the free list

	fired := false
	e.AfterTimer(10, func() { fired = true }) // reuses t1's slot
	t1.Stop()                                 // stale generation: must be a no-op
	e.Run()
	if !fired {
		t.Fatal("stale Stop cancelled an unrelated timer in the recycled slot")
	}
}

// TestCancelInteriorHeapEntry stops a timer whose event sits in the middle
// of a populated heap, exercising removeAt's sift-up and sift-down repair.
func TestCancelInteriorHeapEntry(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Time{50, 10, 90, 30, 70, 20, 80, 40, 60} {
		e.After(d, func() { got = append(got, e.Now()) })
	}
	tm := e.AfterTimer(55, func() { t.Error("cancelled timer fired") })
	tm.Stop()
	e.Run()
	wantLen := 9
	if len(got) != wantLen {
		t.Fatalf("ran %d events, want %d", len(got), wantLen)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order after interior removal: %v", got)
		}
	}
}
