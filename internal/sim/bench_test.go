package sim

import "testing"

// Micro-benchmarks for the event-engine hot path. Run via `make bench`;
// the -benchmem columns are the regression guard for the zero-alloc
// contract (all steady-state paths must report 0 allocs/op).

func BenchmarkEngineAfterStep(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(10, fn)
		e.Step()
	}
}

// BenchmarkEngineChurn measures push/pop against a populated heap (1k
// pending events), the regime a busy cluster run actually operates in.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.After(Time(i%97), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%97), fn)
		e.Step()
	}
}

func BenchmarkEngineAfterTimerFire(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterTimer(10, fn)
		e.Step()
	}
}

func BenchmarkEngineAfterTimerStop(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := e.AfterTimer(10, fn)
		tm.Stop()
	}
}

func BenchmarkThreadDo(b *testing.B) {
	e := NewEngine(1)
	th := NewThread(e, "bench")
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		th.Do(10, fn)
		e.Run()
	}
}
