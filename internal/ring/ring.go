// Package ring implements FaRM's ring buffers (§3): FIFO queues physically
// located in the receiver's non-volatile memory, appended to by the sender
// with one-sided RDMA writes acknowledged by the NIC, polled by the
// receiver, and truncated lazily. They serve as both transaction logs and
// message queues; each sender–receiver pair has its own ring.
//
// Space management follows §4: senders make reservations before starting a
// commit so every record needed to commit and truncate a transaction is
// guaranteed to fit, because the receiver's CPU is not involved and cannot
// push back.
//
// Frame format (all sizes multiples of 16):
//
//	[u32 payload length][u32 magic][u64 psn][payload][padding to 16]
//
// A frame lands atomically (one RDMA write), so a valid magic implies a
// complete frame. A wrap marker (magic wrapMagic) tells the reader to skip
// to offset 0. Truncated frames are zeroed so the reader never misparses
// stale bytes after the buffer wraps.
//
// The psn (packet sequence number) plays the role of RC transport
// sequencing: the writer stamps frames with a per-ring counter and the
// reader accepts a frame only when its psn is the next expected, exactly
// like an RDMA NIC dropping duplicate PSNs. This makes sender-side
// retransmission safe — a retry of a frame whose first landing was already
// processed (only the completion was lost) parses as a stale duplicate and
// is zeroed instead of being applied twice.
package ring

import (
	"encoding/binary"
	"errors"
	"fmt"

	"farm/internal/fabric"
	"farm/internal/nvram"
	"farm/internal/sim"
)

const (
	frameMagic  = 0xFA12FA12
	wrapMagic   = 0xFA12FFFF
	headerBytes = 16
)

func pad16(n int) int { return (n + 15) &^ 15 }

// FrameBytes returns the ring space consumed by a payload of n bytes —
// what a reservation for that payload must cover.
func FrameBytes(n int) int { return headerBytes + pad16(n) }

// Writer is the sender half of a ring. It tracks the tail and free space
// locally; the receiver's consumption is learned asynchronously through
// UpdateConsumed (lazy truncation updates, typically piggybacked).
type Writer struct {
	nic      *fabric.NIC
	dst      fabric.MachineID
	region   nvram.RegionID
	capacity int

	tail     int
	appended uint64 // total bytes ever appended (frames + wrap padding)
	consumed uint64 // total bytes the receiver reported truncated
	reserved int    // bytes promised to reservations not yet written
	psn      uint64 // next frame's packet sequence number
	closed   bool   // Close() called: no further writes or retries
}

// Retransmission of timed-out frame writes. An RC connection delivers
// writes in order or not at all, so a frame that timed out during a
// transient fault (one-way cut, flap) left a hole the reader's parse()
// stalls at — everything behind it is invisible until the hole is filled.
// Two guards make re-writing the same frame at the same offset safe:
// the reader's psn check discards a retry whose first landing was already
// processed (only the completion leg was lost), and a retry is cancelled —
// counted as delivered — once the receiver's truncation watermark passes
// the frame, since truncation implies processing and the slot may by then
// hold a newer frame the retry must not clobber. The retry span (~130 ms
// with these constants) comfortably outlives nemesis fault episodes; a
// destination that is genuinely dead fails every attempt and the final
// error surfaces to cb as before.
const (
	writeRetries    = 7
	writeRetryDelay = sim.Millisecond // doubles per attempt: ~127 ms total span
)

// NewWriter creates the sender side of the ring stored in (dst, region)
// with the given byte capacity. Capacity must be a multiple of 8 and large
// enough for at least one maximal frame.
func NewWriter(nic *fabric.NIC, dst fabric.MachineID, region nvram.RegionID, capacity int) *Writer {
	if capacity%16 != 0 || capacity < 64 {
		panic(fmt.Sprintf("ring: bad capacity %d", capacity))
	}
	return &Writer{nic: nic, dst: dst, region: region, capacity: capacity}
}

// Dst returns the receiving machine.
func (w *Writer) Dst() fabric.MachineID { return w.dst }

// free returns bytes available for new frames, keeping one header of slack
// for a possible wrap marker.
func (w *Writer) free() int {
	used := int(w.appended - w.consumed)
	return w.capacity - used - w.reserved - headerBytes
}

// Reserve sets aside space for a future payload of n bytes. It returns
// false if the ring cannot currently guarantee the space; the caller must
// then back off (FaRM coordinators retry or force explicit truncation).
func (w *Writer) Reserve(n int) bool {
	need := FrameBytes(n)
	if need > w.free() {
		return false
	}
	w.reserved += need
	return true
}

// Release returns an unused reservation for a payload of n bytes (e.g. a
// truncation record whose ids were piggybacked instead).
func (w *Writer) Release(n int) {
	w.reserved -= FrameBytes(n)
	if w.reserved < 0 {
		panic("ring: reservation underflow")
	}
}

// Append writes payload as one frame. reservedSize >= len(payload) must
// name a prior Reserve(reservedSize); pass -1 for unreserved appends, which
// fail (return false) when space is insufficient. cb, if non-nil, receives
// the hardware ack (or error) for the frame's RDMA write.
func (w *Writer) Append(payload []byte, reservedSize int, cb func(error)) bool {
	need := FrameBytes(len(payload))
	if reservedSize >= 0 {
		if len(payload) > reservedSize {
			panic(fmt.Sprintf("ring: payload %d exceeds reservation %d", len(payload), reservedSize))
		}
		w.reserved -= FrameBytes(reservedSize)
		if w.reserved < 0 {
			panic("ring: append without matching reservation")
		}
	} else if need > w.free() {
		return false
	}
	// Wrap if the frame does not fit before the end of the buffer.
	if w.tail+need > w.capacity {
		w.writeWrapMarker()
	}
	frame := make([]byte, need)
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], frameMagic)
	binary.LittleEndian.PutUint64(frame[8:], w.psn)
	w.psn++
	copy(frame[headerBytes:], payload)
	off := w.tail
	w.tail = (w.tail + need) % w.capacity
	w.appended += uint64(need)
	w.writeFrame(off, frame, w.appended, 0, cb)
	return true
}

// writeFrame issues the frame's RDMA write and retries timeouts in place
// with doubling backoff. end is the writer's cumulative appended counter
// after this frame: once the receiver's truncation watermark reaches it the
// frame was provably processed, so a pending retry reports success instead
// of firing (the slot may already hold a newer frame). Other errors (bad
// address = the ring is gone) and exhausted retries surface to cb.
func (w *Writer) writeFrame(off int, frame []byte, end uint64, attempt int, cb func(error)) {
	if w.closed {
		return
	}
	if w.consumed >= end {
		if cb != nil {
			cb(nil)
		}
		return
	}
	w.nic.Write(w.dst, w.region, off, frame, func(err error) {
		if err == nil || !errors.Is(err, fabric.ErrTimeout) || attempt >= writeRetries || w.closed {
			if cb != nil {
				cb(err)
			}
			return
		}
		backoff := writeRetryDelay << attempt
		w.nic.Engine().After(backoff, func() {
			w.writeFrame(off, frame, end, attempt+1, cb)
		})
	})
}

// Close permanently disables the writer: pending retries stop and further
// appends are dropped. Hosts close a writer when they replace it (ring
// re-establishment after a power cycle), so a stale writer's retries can
// never corrupt the re-created ring.
func (w *Writer) Close() { w.closed = true }

func (w *Writer) writeWrapMarker() {
	skip := w.capacity - w.tail
	marker := make([]byte, headerBytes)
	binary.LittleEndian.PutUint32(marker, uint32(skip))
	binary.LittleEndian.PutUint32(marker[4:], wrapMagic)
	binary.LittleEndian.PutUint64(marker[8:], w.psn)
	w.psn++
	w.appended += uint64(skip)
	w.writeFrame(w.tail, marker, w.appended, 0, nil)
	w.tail = 0
}

// UpdateConsumed installs the receiver's cumulative truncation counter.
// Values are monotonic; stale updates are ignored.
func (w *Writer) UpdateConsumed(total uint64) {
	if total > w.consumed {
		w.consumed = total
	}
}

// Appended returns the cumulative appended byte counter (diagnostics).
func (w *Writer) Appended() uint64 { return w.appended }

// ConsumedEstimate returns the last truncation watermark the receiver
// reported (diagnostics).
func (w *Writer) ConsumedEstimate() uint64 { return w.consumed }

// ReservedBytes returns bytes promised to outstanding reservations
// (diagnostics).
func (w *Writer) ReservedBytes() int { return w.reserved }

// FreeBytes returns the space currently available for new frames.
func (w *Writer) FreeBytes() int { return w.free() }

// Frame is a received, still-untruncated log entry.
type Frame struct {
	// Seq is the frame's position in arrival order, unique per ring.
	Seq uint64
	// Payload is the frame body (aliases ring memory readers must treat as
	// read-only; it is copied out at parse time).
	Payload []byte

	off  int
	size int
	gone bool
}

// Reader is the receiver half: it parses frames out of the local region
// bytes, hands them to the host exactly once via Poll, retains them until
// Truncate, and zeroes their bytes when truncating a contiguous prefix.
type Reader struct {
	mem      []byte
	head     int // truncation head: first byte of first retained frame
	scan     int // parse head: next byte to parse
	nextSeq  uint64
	nextPSN  uint64   // next expected writer psn (duplicate drop)
	frames   []*Frame // retained (parsed, not yet reclaimed), in order
	polled   int      // how many of frames were returned by Poll already
	consumed uint64   // cumulative truncated bytes (reported to writer)
}

// NewReader wraps the receiver's ring memory.
func NewReader(mem []byte) *Reader {
	if len(mem)%8 != 0 {
		panic("ring: reader memory not 8-aligned")
	}
	return &Reader{mem: mem}
}

// parse advances over newly landed frames. A frame whose psn is not the
// next expected is a stale retransmission resurrected in a reclaimed slot
// (its first landing was processed and truncated); it is zeroed — the RC
// duplicate drop — and the parser waits for the live frame to land there.
func (r *Reader) parse() {
	for {
		if r.scan+headerBytes > len(r.mem) {
			r.scan = 0
			continue
		}
		length := binary.LittleEndian.Uint32(r.mem[r.scan:])
		magic := binary.LittleEndian.Uint32(r.mem[r.scan+4:])
		psn := binary.LittleEndian.Uint64(r.mem[r.scan+8:])
		switch magic {
		case wrapMagic:
			if psn != r.nextPSN {
				r.zero(r.scan, headerBytes)
				return
			}
			// Wrap marker: account its span and restart at 0. It is
			// reclaimed like a frame, in order.
			f := &Frame{Seq: r.nextSeq, off: r.scan, size: int(length), gone: true}
			r.nextSeq++
			r.nextPSN++
			r.frames = append(r.frames, f)
			r.scan = 0
		case frameMagic:
			size := headerBytes + pad16(int(length))
			if r.scan+size > len(r.mem) {
				return // torn/garbage; wait
			}
			if psn != r.nextPSN {
				r.zero(r.scan, size)
				return
			}
			payload := make([]byte, length)
			copy(payload, r.mem[r.scan+headerBytes:])
			f := &Frame{Seq: r.nextSeq, Payload: payload, off: r.scan, size: size}
			r.nextSeq++
			r.nextPSN++
			r.frames = append(r.frames, f)
			r.scan += size
		default:
			return // nothing (or not yet) here
		}
	}
}

// zero clears a stale frame's span so its bytes cannot re-parse.
func (r *Reader) zero(off, size int) {
	end := off + size
	if end > len(r.mem) {
		end = len(r.mem)
	}
	for i := off; i < end; i++ {
		r.mem[i] = 0
	}
}

// Poll returns frames that have landed since the last Poll, in order.
// Frames remain in the log (for recovery draining and voting) until
// truncated.
func (r *Reader) Poll() []*Frame {
	r.parse()
	var out []*Frame
	for _, f := range r.frames[r.polled:] {
		if !f.gone { // skip wrap markers
			out = append(out, f)
		}
	}
	r.polled = len(r.frames)
	return out
}

// RewindTo makes frames with sequence numbers >= seq eligible for Poll
// again. Receivers use it when the processing of a polled batch is lost
// (e.g. the process dies mid-batch with the frames still in the
// non-volatile log): the records must be handed out again rather than
// silently skipped.
func (r *Reader) RewindTo(seq uint64) {
	for i, f := range r.frames {
		if f.Seq >= seq {
			if i < r.polled {
				r.polled = i
			}
			return
		}
	}
}

// Pending returns every parsed-but-untruncated frame (the records a drain
// or recovery vote examines).
func (r *Reader) Pending() []*Frame {
	r.parse()
	r.polled = len(r.frames)
	var out []*Frame
	for _, f := range r.frames {
		if !f.gone {
			out = append(out, f)
		}
	}
	return out
}

// Truncate marks the frame with the given sequence number reclaimable and
// reclaims the maximal contiguous prefix of reclaimable frames, zeroing
// their bytes. Out-of-order truncation is remembered and applied when the
// prefix catches up — mirroring FaRM's by-transaction truncation over a
// FIFO log.
func (r *Reader) Truncate(seq uint64) {
	for _, f := range r.frames {
		if f.Seq == seq {
			f.gone = true
			break
		}
	}
	r.reclaim()
}

func (r *Reader) reclaim() {
	i := 0
	for ; i < len(r.frames) && r.frames[i].gone; i++ {
		f := r.frames[i]
		end := f.off + f.size
		if end > len(r.mem) {
			end = len(r.mem)
		}
		for j := f.off; j < end; j++ {
			r.mem[j] = 0
		}
		r.consumed += uint64(f.size)
		r.head = (f.off + f.size) % len(r.mem)
	}
	r.frames = r.frames[i:]
	r.polled -= i
	if r.polled < 0 {
		r.polled = 0
	}
}

// ConsumedBytes returns the cumulative truncated byte counter the receiver
// lazily reports to the writer.
func (r *Reader) ConsumedBytes() uint64 { return r.consumed }

// Retained returns how many frames are currently held (diagnostics).
func (r *Reader) Retained() int {
	n := 0
	for _, f := range r.frames {
		if !f.gone {
			n++
		}
	}
	return n
}
