package ring

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"farm/internal/fabric"
	"farm/internal/nvram"
	"farm/internal/sim"
)

// rig builds a two-machine fabric with a ring from machine 0 to machine 1.
type rig struct {
	eng    *sim.Engine
	w      *Writer
	r      *Reader
	region []byte
}

func newRig(t *testing.T, capacity int) *rig {
	t.Helper()
	eng := sim.NewEngine(5)
	net := fabric.NewNetwork(eng, fabric.Options{})
	m0, m1 := nvram.NewStore(), nvram.NewStore()
	n0 := net.AddMachine(0, m0)
	net.AddMachine(1, m1)
	mem, err := m1.Allocate(100, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		eng:    eng,
		w:      NewWriter(n0, 1, 100, capacity),
		r:      NewReader(mem),
		region: mem,
	}
}

func (g *rig) pump() { g.eng.Run() }

func TestAppendPollRoundTrip(t *testing.T) {
	g := newRig(t, 4096)
	payloads := [][]byte{[]byte("alpha"), []byte("bravo-longer"), {}, []byte("x")}
	for _, p := range payloads {
		if !g.w.Append(p, -1, nil) {
			t.Fatal("append failed")
		}
	}
	g.pump()
	frames := g.r.Poll()
	if len(frames) != len(payloads) {
		t.Fatalf("polled %d frames, want %d", len(frames), len(payloads))
	}
	for i, f := range frames {
		if !bytes.Equal(f.Payload, payloads[i]) {
			t.Fatalf("frame %d = %q, want %q", i, f.Payload, payloads[i])
		}
		if i > 0 && f.Seq <= frames[i-1].Seq {
			t.Fatal("sequence numbers not increasing")
		}
	}
	// Second poll returns nothing new.
	if again := g.r.Poll(); len(again) != 0 {
		t.Fatalf("re-poll returned %d frames", len(again))
	}
	// But frames remain pending until truncated.
	if p := g.r.Pending(); len(p) != len(payloads) {
		t.Fatalf("pending = %d, want %d", len(p), len(payloads))
	}
}

func TestHardwareAckFires(t *testing.T) {
	g := newRig(t, 1024)
	acked := false
	g.w.Append([]byte("rec"), -1, func(err error) {
		if err != nil {
			t.Errorf("ack error: %v", err)
		}
		acked = true
	})
	g.pump()
	if !acked {
		t.Fatal("no hardware ack")
	}
}

func TestTruncateReclaimsInOrder(t *testing.T) {
	g := newRig(t, 1024)
	for i := 0; i < 3; i++ {
		g.w.Append([]byte{byte(i)}, -1, nil)
	}
	g.pump()
	fs := g.r.Poll()
	// Truncate out of order: seq 1 first — nothing reclaimable yet.
	g.r.Truncate(fs[1].Seq)
	if g.r.ConsumedBytes() != 0 {
		t.Fatal("reclaimed out of order")
	}
	g.r.Truncate(fs[0].Seq)
	want := uint64(FrameBytes(1) * 2)
	if g.r.ConsumedBytes() != want {
		t.Fatalf("consumed = %d, want %d", g.r.ConsumedBytes(), want)
	}
	if g.r.Retained() != 1 {
		t.Fatalf("retained = %d, want 1", g.r.Retained())
	}
}

func TestWrapAround(t *testing.T) {
	const cap = 256
	g := newRig(t, cap)
	payload := make([]byte, 40) // frame = 48 bytes
	total := 0
	for i := 0; i < 50; i++ {
		payload[0] = byte(i)
		if !g.w.Append(payload, -1, nil) {
			t.Fatalf("append %d failed (no space?)", i)
		}
		g.pump()
		fs := g.r.Poll()
		if len(fs) != 1 || fs[0].Payload[0] != byte(i) {
			t.Fatalf("iteration %d: frames %v", i, fs)
		}
		g.r.Truncate(fs[0].Seq)
		g.w.UpdateConsumed(g.r.ConsumedBytes())
		total++
	}
	if total != 50 {
		t.Fatal("lost frames across wrap")
	}
}

func TestWriterBlocksWhenFullThenRecovers(t *testing.T) {
	const cap = 256
	g := newRig(t, cap)
	payload := make([]byte, 40)
	n := 0
	for g.w.Append(payload, -1, nil) {
		n++
		if n > 100 {
			t.Fatal("writer never filled")
		}
	}
	// Must fit at least (cap/frame)-1 frames before refusing.
	if n < cap/FrameBytes(40)-1 {
		t.Fatalf("refused too early: %d frames", n)
	}
	g.pump()
	fs := g.r.Poll()
	for _, f := range fs {
		g.r.Truncate(f.Seq)
	}
	g.w.UpdateConsumed(g.r.ConsumedBytes())
	if !g.w.Append(payload, -1, nil) {
		t.Fatal("writer did not recover after truncation")
	}
}

func TestReservations(t *testing.T) {
	const cap = 256
	g := newRig(t, cap)
	if !g.w.Reserve(40) || !g.w.Reserve(40) {
		t.Fatal("reservations failed on empty ring")
	}
	// Reserve until refusal.
	n := 2
	for g.w.Reserve(40) {
		n++
	}
	// Unreserved appends must now fail: space is promised.
	if g.w.Append(make([]byte, 40), -1, nil) {
		t.Fatal("append stole reserved space")
	}
	// Reserved appends succeed.
	if !g.w.Append(make([]byte, 40), 40, nil) {
		t.Fatal("reserved append failed")
	}
	// Releasing frees space for unreserved use.
	for i := 0; i < n-1; i++ {
		g.w.Release(40)
	}
	if !g.w.Append(make([]byte, 40), -1, nil) {
		t.Fatal("append after release failed")
	}
}

func TestReservedAppendSmallerPayloadOK(t *testing.T) {
	g := newRig(t, 1024)
	if !g.w.Reserve(100) {
		t.Fatal("reserve")
	}
	if !g.w.Append([]byte("small"), 100, nil) {
		t.Fatal("smaller-than-reservation append failed")
	}
	g.pump()
	if fs := g.r.Poll(); len(fs) != 1 || string(fs[0].Payload) != "small" {
		t.Fatalf("frames: %v", fs)
	}
}

func TestZeroingPreventsStaleParse(t *testing.T) {
	// Fill the ring with payloads that contain valid-looking magic bytes,
	// truncate, wrap, and confirm the reader never produces a bogus frame.
	const cap = 256
	g := newRig(t, cap)
	evil := make([]byte, 40)
	for i := 0; i+4 <= len(evil); i += 4 {
		evil[i] = 0x12
		evil[i+1] = 0xFA
		evil[i+2] = 0x12
		evil[i+3] = 0xFA
	}
	for i := 0; i < 30; i++ {
		if !g.w.Append(evil, -1, nil) {
			t.Fatal("append failed")
		}
		g.pump()
		fs := g.r.Poll()
		if len(fs) != 1 {
			t.Fatalf("iteration %d: %d frames (stale parse?)", i, len(fs))
		}
		if !bytes.Equal(fs[0].Payload, evil) {
			t.Fatal("payload corrupted")
		}
		g.r.Truncate(fs[0].Seq)
		g.w.UpdateConsumed(g.r.ConsumedBytes())
	}
}

func TestRingFIFOQuick(t *testing.T) {
	// Property: any sequence of appends is received in order with equal
	// contents, across wraps, when frames are truncated as they arrive.
	f := func(seed uint64, sizes []uint8) bool {
		eng := sim.NewEngine(seed)
		net := fabric.NewNetwork(eng, fabric.Options{})
		m1 := nvram.NewStore()
		n0 := net.AddMachine(0, nvram.NewStore())
		net.AddMachine(1, m1)
		mem, _ := m1.Allocate(1, 512)
		w := NewWriter(n0, 1, 1, 512)
		r := NewReader(mem)
		var want, got [][]byte
		for i, s := range sizes {
			p := make([]byte, int(s)%100)
			for j := range p {
				p[j] = byte(i + j)
			}
			if !w.Append(p, -1, nil) {
				return false // must never fill: we truncate each round
			}
			want = append(want, p)
			eng.Run()
			for _, fr := range r.Poll() {
				cp := make([]byte, len(fr.Payload))
				copy(cp, fr.Payload)
				got = append(got, cp)
				r.Truncate(fr.Seq)
			}
			w.UpdateConsumed(r.ConsumedBytes())
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameBytes(t *testing.T) {
	cases := map[int]int{0: 16, 1: 32, 8: 32, 9: 32, 40: 64}
	for n, want := range cases {
		if got := FrameBytes(n); got != want {
			t.Errorf("FrameBytes(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestManySmallRecordsThroughput(t *testing.T) {
	// Smoke test: a few thousand records across many wraps.
	g := newRig(t, 8192)
	const total = 5000
	sent, received := 0, 0
	for sent < total {
		p := []byte(fmt.Sprintf("record-%d", sent))
		if !g.w.Append(p, -1, nil) {
			g.pump()
			for _, f := range g.r.Poll() {
				g.r.Truncate(f.Seq)
				received++
			}
			g.w.UpdateConsumed(g.r.ConsumedBytes())
			continue
		}
		sent++
	}
	g.pump()
	for _, f := range g.r.Poll() {
		g.r.Truncate(f.Seq)
		received++
	}
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestRewindToRedeliversFrames(t *testing.T) {
	g := newRig(t, 1024)
	for i := 0; i < 3; i++ {
		g.w.Append([]byte{byte(i)}, -1, nil)
	}
	g.pump()
	fs := g.r.Poll()
	if len(fs) != 3 {
		t.Fatalf("polled %d", len(fs))
	}
	// Processing of the last two was "lost": rewind to their first seq.
	g.r.RewindTo(fs[1].Seq)
	again := g.r.Poll()
	if len(again) != 2 || again[0].Seq != fs[1].Seq || again[1].Seq != fs[2].Seq {
		t.Fatalf("re-poll: %v", again)
	}
	// Truncation still reclaims everything once.
	for _, f := range fs {
		g.r.Truncate(f.Seq)
	}
	if g.r.Retained() != 0 {
		t.Fatalf("retained %d", g.r.Retained())
	}
}

func TestRewindToUnknownSeqIsNoop(t *testing.T) {
	g := newRig(t, 1024)
	g.w.Append([]byte("x"), -1, nil)
	g.pump()
	fs := g.r.Poll()
	g.r.RewindTo(fs[0].Seq + 100) // beyond anything retained
	if len(g.r.Poll()) != 0 {
		t.Fatal("phantom frames after bogus rewind")
	}
}

func TestWriterDiagnostics(t *testing.T) {
	g := newRig(t, 1024)
	if g.w.FreeBytes() <= 0 {
		t.Fatal("no free space on empty ring")
	}
	before := g.w.FreeBytes()
	if !g.w.Reserve(100) {
		t.Fatal("reserve")
	}
	if g.w.ReservedBytes() != FrameBytes(100) {
		t.Fatalf("reserved = %d", g.w.ReservedBytes())
	}
	if g.w.FreeBytes() != before-FrameBytes(100) {
		t.Fatalf("free = %d", g.w.FreeBytes())
	}
	g.w.Append(make([]byte, 100), 100, nil)
	g.pump()
	for _, f := range g.r.Poll() {
		g.r.Truncate(f.Seq)
	}
	g.w.UpdateConsumed(g.r.ConsumedBytes())
	if g.w.ConsumedEstimate() != g.r.ConsumedBytes() {
		t.Fatal("consumed estimate not propagated")
	}
	if g.w.FreeBytes() != before {
		t.Fatalf("space not reclaimed: %d vs %d", g.w.FreeBytes(), before)
	}
}
