package ring

import (
	"bytes"
	"testing"

	"farm/internal/fabric"
	"farm/internal/nvram"
	"farm/internal/sim"
)

// retryRig is like rig but keeps the network so tests can cut links.
type retryRig struct {
	eng *sim.Engine
	net *fabric.Network
	w   *Writer
	r   *Reader
	mem []byte
}

func newRetryRig(t *testing.T) *retryRig {
	t.Helper()
	eng := sim.NewEngine(5)
	net := fabric.NewNetwork(eng, fabric.Options{})
	m0, m1 := nvram.NewStore(), nvram.NewStore()
	n0 := net.AddMachine(0, m0)
	net.AddMachine(1, m1)
	mem, err := m1.Allocate(100, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return &retryRig{eng: eng, net: net, w: NewWriter(n0, 1, 100, 4096), r: NewReader(mem), mem: mem}
}

// TestAppendRetransmitsThroughTransientCut: frames appended during a
// one-way cut leave a hole the reader stalls at; retransmission fills it
// once the link heals and the reader proceeds in append order.
func TestAppendRetransmitsThroughTransientCut(t *testing.T) {
	g := newRetryRig(t)
	if !g.w.Append([]byte("before"), -1, nil) {
		t.Fatal("append failed")
	}
	g.eng.Run()

	g.net.CutLink(0, 1)
	var errB, errC error
	ackB, ackC := false, false
	g.w.Append([]byte("during-1"), -1, func(err error) { errB, ackB = err, true })
	g.w.Append([]byte("during-2"), -1, func(err error) { errC, ackC = err, true })
	g.eng.After(5*sim.Millisecond, func() { g.net.HealLink(0, 1) })
	g.eng.Run()

	if !ackB || errB != nil || !ackC || errC != nil {
		t.Fatalf("retransmitted frames must eventually ack: B=%v/%v C=%v/%v", ackB, errB, ackC, errC)
	}
	frames := g.r.Poll()
	want := [][]byte{[]byte("before"), []byte("during-1"), []byte("during-2")}
	if len(frames) != len(want) {
		t.Fatalf("polled %d frames, want %d", len(frames), len(want))
	}
	for i, f := range frames {
		if !bytes.Equal(f.Payload, want[i]) {
			t.Fatalf("frame %d = %q, want %q", i, f.Payload, want[i])
		}
	}
}

// TestRetriesExhaustAgainstDeadLink: if the cut outlives the whole retry
// span the final error surfaces to the append callback.
func TestRetriesExhaustAgainstDeadLink(t *testing.T) {
	g := newRetryRig(t)
	g.net.CutLink(0, 1)
	var got error
	done := false
	g.w.Append([]byte("doomed"), -1, func(err error) { got, done = err, true })
	g.eng.Run()
	if !done || got == nil {
		t.Fatalf("want surfaced error after retry exhaustion, got done=%v err=%v", done, got)
	}
}

// TestClosedWriterStopsRetrying: Close during the retry window must stop
// the retransmission so a stale writer cannot touch a re-created ring.
func TestClosedWriterStopsRetrying(t *testing.T) {
	g := newRetryRig(t)
	g.net.CutLink(0, 1)
	g.w.Append([]byte("stale"), -1, nil)
	g.eng.After(2*sim.Millisecond, func() {
		g.w.Close()
		g.net.HealLink(0, 1)
	})
	g.eng.Run()
	for i, b := range g.mem {
		if b != 0 {
			t.Fatalf("closed writer still wrote ring byte %d", i)
		}
	}
}
