package btree

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"farm/internal/core"
	"farm/internal/sim"
)

type rig struct {
	c *core.Cluster
	t *Tree
}

func newRig(t *testing.T, order int) *rig {
	t.Helper()
	c := core.New(core.Options{NumMachines: 5, Seed: 13})
	regions, err := c.CreateRegions(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree := MustCreate(c, c.Machine(0), Config{Name: "idx", Order: order, MaxVal: 16, Region: regions[0]})
	return &rig{c: c, t: tree}
}

func (r *rig) do(t *testing.T, mi int, fn func(tx *core.Tx, done func(error))) error {
	t.Helper()
	finished := false
	var result error
	tx := r.c.Machine(mi).Begin(0)
	fn(tx, func(err error) {
		if err != nil {
			finished, result = true, err
			return
		}
		tx.Commit(func(err error) { finished, result = true, err })
	})
	deadline := r.c.Eng.Now() + 5*sim.Second
	for !finished && r.c.Eng.Now() < deadline {
		if !r.c.Eng.Step() {
			break
		}
	}
	if !finished {
		t.Fatal("btree op stalled")
	}
	return result
}

func (r *rig) put(t *testing.T, mi int, key uint64, val string) {
	t.Helper()
	if err := r.do(t, mi, func(tx *core.Tx, done func(error)) {
		r.t.Put(tx, key, []byte(val), done)
	}); err != nil {
		t.Fatalf("put %d: %v", key, err)
	}
}

func (r *rig) get(t *testing.T, mi int, key uint64) (string, bool) {
	t.Helper()
	var out string
	var found bool
	if err := r.do(t, mi, func(tx *core.Tx, done func(error)) {
		r.t.Get(tx, r.c.Machine(mi), key, func(val []byte, ok bool, err error) {
			out, found = string(val), ok
			done(err)
		})
	}); err != nil {
		t.Fatalf("get %d: %v", key, err)
	}
	return out, found
}

func (r *rig) scan(t *testing.T, mi int, from uint64, limit int) []Pair {
	t.Helper()
	var out []Pair
	if err := r.do(t, mi, func(tx *core.Tx, done func(error)) {
		r.t.Scan(tx, from, limit, func(pairs []Pair, err error) {
			out = pairs
			done(err)
		})
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

func TestPutGetSingleLeaf(t *testing.T) {
	r := newRig(t, 8)
	r.put(t, 0, 42, "answer")
	if v, ok := r.get(t, 1, 42); !ok || v != "answer" {
		t.Fatalf("get: %q %v", v, ok)
	}
	if _, ok := r.get(t, 2, 43); ok {
		t.Fatal("phantom key")
	}
	r.put(t, 3, 42, "updated")
	if v, _ := r.get(t, 4, 42); v != "updated" {
		t.Fatalf("update: %q", v)
	}
}

func TestSplitsAndOrderedScan(t *testing.T) {
	r := newRig(t, 4) // small order → many splits
	const n = 100
	perm := sim.NewRand(3).Perm(n)
	for _, k := range perm {
		r.put(t, k%5, uint64(k)*2, fmt.Sprintf("v%d", k))
	}
	// All present.
	for k := 0; k < n; k++ {
		if v, ok := r.get(t, k%5, uint64(k)*2); !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d: %q %v", k*2, v, ok)
		}
	}
	// Scan must return keys in order.
	pairs := r.scan(t, 1, 0, n)
	if len(pairs) != n {
		t.Fatalf("scan returned %d, want %d", len(pairs), n)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key <= pairs[i-1].Key {
			t.Fatalf("scan unordered at %d: %d <= %d", i, pairs[i].Key, pairs[i-1].Key)
		}
	}
	// Partial scan from the middle.
	mid := r.scan(t, 2, 100, 10)
	if len(mid) != 10 || mid[0].Key < 100 {
		t.Fatalf("mid scan: %v", mid)
	}
}

func TestDelete(t *testing.T) {
	r := newRig(t, 4)
	for k := uint64(0); k < 30; k++ {
		r.put(t, 0, k, "x")
	}
	err := r.do(t, 1, func(tx *core.Tx, done func(error)) {
		r.t.Delete(tx, 15, func(ok bool, err error) {
			if !ok {
				t.Error("delete missed")
			}
			done(err)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.get(t, 2, 15); ok {
		t.Fatal("key survived delete")
	}
	if _, ok := r.get(t, 2, 16); !ok {
		t.Fatal("neighbour key lost")
	}
}

func TestCacheHitsAndStalenessSafety(t *testing.T) {
	r := newRig(t, 4)
	for k := uint64(0); k < 64; k++ {
		r.put(t, 0, k, fmt.Sprintf("v%d", k))
	}
	// Warm machine 1's cache.
	for k := uint64(0); k < 64; k += 8 {
		r.get(t, 1, k)
	}
	h0, m0 := r.t.CacheStats(1)
	// Repeat lookups: cache hits must grow much faster than misses.
	for k := uint64(0); k < 64; k++ {
		r.get(t, 1, k)
	}
	h1, m1 := r.t.CacheStats(1)
	if h1-h0 < 64 {
		t.Fatalf("cache barely used: hits %d→%d misses %d→%d", h0, h1, m0, m1)
	}
	// Now force splits from another machine (stale cache at machine 1)
	// and confirm machine 1 still reads correctly through fence checks.
	for k := uint64(1000); k < 1100; k++ {
		r.put(t, 2, k, "zzz")
	}
	for k := uint64(0); k < 64; k++ {
		if v, ok := r.get(t, 1, k); !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("stale-cache read of %d: %q %v", k, v, ok)
		}
	}
	for k := uint64(1000); k < 1100; k += 7 {
		if v, ok := r.get(t, 1, k); !ok || v != "zzz" {
			t.Fatalf("new key %d via stale cache: %q %v", k, v, ok)
		}
	}
}

func TestConcurrentInsertersConflictCleanly(t *testing.T) {
	r := newRig(t, 4)
	done := 0
	conflicts := 0
	for mi := 1; mi <= 3; mi++ {
		mi := mi
		var drive func(k uint64)
		drive = func(k uint64) {
			if k >= 30 {
				done++
				return
			}
			tx := r.c.Machine(mi).Begin(0)
			r.t.Put(tx, uint64(mi)*1000+k, []byte("c"), func(err error) {
				if err != nil {
					conflicts++
					r.c.Eng.After(20*sim.Microsecond, func() { drive(k) })
					return
				}
				tx.Commit(func(err error) {
					if err != nil {
						conflicts++
						r.c.Eng.After(sim.Time(r.c.Eng.Rand().Intn(30)+1)*sim.Microsecond, func() { drive(k) })
						return
					}
					drive(k + 1)
				})
			})
		}
		drive(0)
	}
	deadline := r.c.Eng.Now() + 10*sim.Second
	for done < 3 && r.c.Eng.Now() < deadline {
		if !r.c.Eng.Step() {
			break
		}
	}
	if done < 3 {
		t.Fatalf("inserters stalled (done=%d conflicts=%d)", done, conflicts)
	}
	for mi := 1; mi <= 3; mi++ {
		for k := uint64(0); k < 30; k++ {
			if _, ok := r.get(t, 0, uint64(mi)*1000+k); !ok {
				t.Fatalf("lost key %d", uint64(mi)*1000+k)
			}
		}
	}
	t.Logf("concurrent insert conflicts retried: %d", conflicts)
}

func TestQuickSortedMapEquivalence(t *testing.T) {
	f := func(keys []uint16) bool {
		if len(keys) > 80 {
			keys = keys[:80]
		}
		r := newRig(t, 5)
		model := map[uint64]string{}
		for i, k := range keys {
			key := uint64(k % 500)
			val := fmt.Sprintf("v%d", i)
			r.put(t, i%5, key, val)
			model[key] = val
		}
		// Everything retrievable.
		for k, want := range model {
			if got, ok := r.get(t, 0, k); !ok || got != want {
				return false
			}
		}
		// Scan equals sorted model keys.
		var want []uint64
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		pairs := r.scan(t, 1, 0, len(model)+5)
		if len(pairs) != len(want) {
			return false
		}
		for i := range want {
			if pairs[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSurvivesMachineFailure(t *testing.T) {
	// Insert under load, kill a machine holding tree nodes, and verify
	// structure and contents after recovery.
	c := core.New(core.Options{NumMachines: 5, Seed: 101, LeaseDuration: 5 * sim.Millisecond})
	regions, err := c.CreateRegions(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree := MustCreate(c, c.Machine(0), Config{Name: "failidx", Order: 4, MaxVal: 8, Region: regions[0]})
	r := &rig{c: c, t: tree}

	for k := uint64(0); k < 40; k++ {
		r.put(t, int(k)%5, k, fmt.Sprintf("v%d", k))
	}
	c.RunFor(20 * sim.Millisecond)

	// Kill a replica holder of the tree's region (not the CM).
	rm := c.Machine(0).PrimaryOf(regions[0])
	victim := rm
	if victim == 0 {
		victim = (victim + 1) % 5
	}
	c.Kill(victim)
	c.RunFor(400 * sim.Millisecond)

	// All keys still present, via machines other than the victim.
	reader := 0
	for reader == victim {
		reader++
	}
	for k := uint64(0); k < 40; k++ {
		if v, ok := r.get(t, reader, k); !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d after failure: %q %v", k, v, ok)
		}
	}
	// Inserts keep working (splits included).
	for k := uint64(100); k < 130; k++ {
		r.put(t, reader, k, "post")
	}
	pairs := r.scan(t, reader, 0, 100)
	if len(pairs) != 70 {
		t.Fatalf("scan after failure+inserts: %d pairs", len(pairs))
	}
}
