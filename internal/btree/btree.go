// Package btree implements the FaRM B-tree used for TPC-C's range indexes
// (§6.2): a B-link tree whose nodes are FaRM objects. Internal nodes are
// cached at each machine so a lookup costs a single (RDMA) leaf read in the
// common case; fence keys on every node make stale-cache traversals safe —
// a reader that lands on the wrong node detects it from the fences and
// either follows the right-link or re-traverses transactionally, as in
// Minuet [37].
//
// All mutations run inside the caller's transaction; structure
// modifications (splits) update the whole affected path atomically within
// that transaction.
package btree

import (
	"encoding/binary"
	"fmt"
	"math"

	"farm/internal/core"
	"farm/internal/proto"
)

// maxKey is the hiFence of the rightmost path.
const maxKey = math.MaxUint64

// Tree is a B-tree descriptor, shared by all machines (like a kv.Table,
// this is application-distributed metadata; the anchor object holds the
// root address so the descriptor never changes).
type Tree struct {
	Name   string
	anchor proto.Addr
	order  int
	maxVal int

	// caches holds per-machine internal-node caches ("The B-Tree caches
	// internal nodes at each machine", §6.2).
	caches map[int]*cache
}

type cache struct {
	nodes map[proto.Addr][]byte
	hits  uint64
	miss  uint64
}

// Node layout (payload bytes):
//
//	isLeaf u8 | pad u8 | nkeys u16 | pad u32
//	loFence u64 | hiFence u64 | next (u32 region, u32 off)
//	keys   order × u64
//	leaf:  vals order × (u16 len | maxVal bytes)
//	inner: children (order+1) × (u32 region, u32 off)
const nodeHeader = 8 + 8 + 8 + 8

func (t *Tree) valSlot() int { return 2 + t.maxVal }

// NodeBytes is the payload size of one node object.
func (t *Tree) NodeBytes() int {
	leaf := t.order * t.valSlot()
	inner := (t.order + 1) * 8
	body := leaf
	if inner > body {
		body = inner
	}
	return nodeHeader + t.order*8 + body
}

type node struct {
	t    *Tree
	data []byte
}

func (n node) isLeaf() bool   { return n.data[0] != 0 }
func (n node) setLeaf(v bool) { n.data[0] = b2u(v) }
func (n node) nkeys() int     { return int(binary.LittleEndian.Uint16(n.data[2:])) }
func (n node) setNKeys(k int) { binary.LittleEndian.PutUint16(n.data[2:], uint16(k)) }
func (n node) lo() uint64     { return binary.LittleEndian.Uint64(n.data[8:]) }
func (n node) hi() uint64     { return binary.LittleEndian.Uint64(n.data[16:]) }
func (n node) setLo(v uint64) { binary.LittleEndian.PutUint64(n.data[8:], v) }
func (n node) setHi(v uint64) { binary.LittleEndian.PutUint64(n.data[16:], v) }
func (n node) next() proto.Addr {
	return proto.Addr{Region: binary.LittleEndian.Uint32(n.data[24:]), Off: binary.LittleEndian.Uint32(n.data[28:])}
}
func (n node) setNext(a proto.Addr) {
	binary.LittleEndian.PutUint32(n.data[24:], a.Region)
	binary.LittleEndian.PutUint32(n.data[28:], a.Off)
}

func (n node) key(i int) uint64 { return binary.LittleEndian.Uint64(n.data[nodeHeader+i*8:]) }
func (n node) setKey(i int, k uint64) {
	binary.LittleEndian.PutUint64(n.data[nodeHeader+i*8:], k)
}

func (n node) valOff(i int) int { return nodeHeader + n.t.order*8 + i*n.t.valSlot() }

func (n node) val(i int) []byte {
	off := n.valOff(i)
	l := int(binary.LittleEndian.Uint16(n.data[off:]))
	return n.data[off+2 : off+2+l]
}

func (n node) setVal(i int, v []byte) {
	off := n.valOff(i)
	binary.LittleEndian.PutUint16(n.data[off:], uint16(len(v)))
	copy(n.data[off+2:], v)
}

func (n node) childOff(i int) int { return nodeHeader + n.t.order*8 + i*8 }

func (n node) child(i int) proto.Addr {
	off := n.childOff(i)
	return proto.Addr{Region: binary.LittleEndian.Uint32(n.data[off:]), Off: binary.LittleEndian.Uint32(n.data[off+4:])}
}

func (n node) setChild(i int, a proto.Addr) {
	off := n.childOff(i)
	binary.LittleEndian.PutUint32(n.data[off:], a.Region)
	binary.LittleEndian.PutUint32(n.data[off+4:], a.Off)
}

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// childIndex returns which child to descend into for key.
func (n node) childIndex(key uint64) int {
	i := 0
	for i < n.nkeys() && key >= n.key(i) {
		i++
	}
	return i
}

// leafIndex returns the slot of key in a leaf, or (insertPos, false).
func (n node) leafIndex(key uint64) (int, bool) {
	i := 0
	for i < n.nkeys() && n.key(i) < key {
		i++
	}
	if i < n.nkeys() && n.key(i) == key {
		return i, true
	}
	return i, false
}

// insertAt shifts keys/vals (leaf) right from position i.
func (n node) leafInsertAt(i int, key uint64, val []byte) {
	for j := n.nkeys(); j > i; j-- {
		n.setKey(j, n.key(j-1))
		n.setVal(j, n.val(j-1))
	}
	n.setKey(i, key)
	n.setVal(i, val)
	n.setNKeys(n.nkeys() + 1)
}

func (n node) leafRemoveAt(i int) {
	for j := i; j < n.nkeys()-1; j++ {
		n.setKey(j, n.key(j+1))
		n.setVal(j, n.val(j+1))
	}
	n.setNKeys(n.nkeys() - 1)
}

func (n node) innerInsertAt(i int, key uint64, right proto.Addr) {
	for j := n.nkeys(); j > i; j-- {
		n.setKey(j, n.key(j-1))
	}
	for j := n.nkeys() + 1; j > i+1; j-- {
		n.setChild(j, n.child(j-1))
	}
	n.setKey(i, key)
	n.setChild(i+1, right)
	n.setNKeys(n.nkeys() + 1)
}

// Config sizes a tree.
type Config struct {
	Name   string
	Order  int // keys per node (default 8)
	MaxVal int
	Region uint32 // region for the anchor and root
}

// Create allocates the anchor and an empty root leaf from machine m.
func Create(m *core.Machine, cfg Config, cb func(*Tree, error)) {
	if cfg.Order == 0 {
		cfg.Order = 8
	}
	if cfg.Order < 3 || cfg.Region == 0 {
		cb(nil, fmt.Errorf("btree: bad config %+v", cfg))
		return
	}
	t := &Tree{Name: cfg.Name, order: cfg.Order, maxVal: cfg.MaxVal, caches: make(map[int]*cache)}
	hint := proto.Addr{Region: cfg.Region}
	tx := m.Begin(0)
	root := node{t: t, data: make([]byte, t.NodeBytes())}
	root.setLeaf(true)
	root.setHi(maxKey)
	tx.Alloc(len(root.data), root.data, &hint, func(rootAddr proto.Addr, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		anchor := make([]byte, 8)
		binary.LittleEndian.PutUint32(anchor, rootAddr.Region)
		binary.LittleEndian.PutUint32(anchor[4:], rootAddr.Off)
		tx.Alloc(8, anchor, &hint, func(anchorAddr proto.Addr, err error) {
			if err != nil {
				cb(nil, err)
				return
			}
			t.anchor = anchorAddr
			tx.Commit(func(err error) {
				if err != nil {
					cb(nil, err)
					return
				}
				cb(t, nil)
			})
		})
	})
}

// MustCreate drives the simulation until Create completes.
func MustCreate(c *core.Cluster, m *core.Machine, cfg Config) *Tree {
	var tree *Tree
	var cerr error
	done := false
	Create(m, cfg, func(t *Tree, err error) { tree, cerr, done = t, err, true })
	for !done {
		if !c.Eng.Step() {
			break
		}
	}
	if !done || cerr != nil {
		panic(fmt.Sprintf("btree: MustCreate(%s): %v", cfg.Name, cerr))
	}
	return tree
}

func (t *Tree) cacheFor(id int) *cache {
	c := t.caches[id]
	if c == nil {
		c = &cache{nodes: make(map[proto.Addr][]byte)}
		t.caches[id] = c
	}
	return c
}

// CacheStats reports (hits, misses) of a machine's internal-node cache.
func (t *Tree) CacheStats(machine int) (uint64, uint64) {
	c := t.cacheFor(machine)
	return c.hits, c.miss
}

// Get looks key up within tx. The descent uses the machine-local cache of
// internal nodes; only the leaf is read transactionally, so the common
// case costs one remote read. Fence keys catch stale cache entries.
func (t *Tree) Get(tx *core.Tx, m *core.Machine, key uint64, cb func(val []byte, ok bool, err error)) {
	t.cachedDescend(tx, m, key, 0, func(leafAddr proto.Addr, leafData []byte, err error) {
		if err != nil {
			cb(nil, false, err)
			return
		}
		n := node{t: t, data: leafData}
		if i, found := n.leafIndex(key); found {
			cb(append([]byte(nil), n.val(i)...), true, nil)
		} else {
			cb(nil, false, nil)
		}
	})
}

// cachedDescend finds the leaf covering key: cached internal hops, a
// transactional leaf read, fence validation, right-links for splits, and a
// full transactional re-traverse when the cache proves stale.
func (t *Tree) cachedDescend(tx *core.Tx, m *core.Machine, key uint64, attempt int, cb func(proto.Addr, []byte, error)) {
	if attempt > 2 {
		// Cache hopeless: transactional descent from the anchor.
		t.txDescend(tx, key, cb)
		return
	}
	c := t.cacheFor(m.ID)
	var step func(addr proto.Addr, depth int)
	step = func(addr proto.Addr, depth int) {
		if depth > 64 {
			cb(proto.Addr{}, nil, fmt.Errorf("btree: descent too deep"))
			return
		}
		if cached, ok := c.nodes[addr]; ok {
			c.hits++
			n := node{t: t, data: cached}
			if n.isLeaf() || key < n.lo() || key >= n.hi() {
				// A cached leaf (root just created) or a stale span:
				// resolve transactionally below.
				delete(c.nodes, addr)
				t.cachedDescend(tx, m, key, attempt+1, cb)
				return
			}
			step(n.child(n.childIndex(key)), depth+1)
			return
		}
		c.miss++
		// Fetch the node with a lock-free read; cache it if internal.
		m.LockFreeRead(tx2thread(tx), addr, t.NodeBytes(), func(data []byte, err error) {
			if err != nil {
				cb(proto.Addr{}, nil, err)
				return
			}
			n := node{t: t, data: data}
			if key < n.lo() {
				// Stale parent pointed too far right: re-traverse.
				t.cachedDescend(tx, m, key, attempt+1, cb)
				return
			}
			if key >= n.hi() {
				// Node split since: follow the right-link (B-link move).
				step(n.next(), depth+1)
				return
			}
			if !n.isLeaf() {
				cp := append([]byte(nil), data...)
				c.nodes[addr] = cp
				step(n.child(n.childIndex(key)), depth+1)
				return
			}
			// Leaf: (re)read transactionally so commit-time validation
			// covers it.
			tx.Read(addr, t.NodeBytes(), func(ld []byte, err error) {
				if err != nil {
					cb(proto.Addr{}, nil, err)
					return
				}
				ln := node{t: t, data: ld}
				if key < ln.lo() || key >= ln.hi() {
					t.cachedDescend(tx, m, key, attempt+1, cb)
					return
				}
				cb(addr, ld, nil)
			})
		})
	}
	// The anchor is tiny and hot: cache it like an internal node.
	if cachedRoot, ok := c.nodes[t.anchor]; ok && len(cachedRoot) == 8 {
		c.hits++
		step(addrFromBytes(cachedRoot), 0)
		return
	}
	c.miss++
	m.LockFreeRead(tx2thread(tx), t.anchor, 8, func(data []byte, err error) {
		if err != nil {
			cb(proto.Addr{}, nil, err)
			return
		}
		c.nodes[t.anchor] = append([]byte(nil), data...)
		step(addrFromBytes(data), 0)
	})
}

func addrFromBytes(b []byte) proto.Addr {
	return proto.Addr{Region: binary.LittleEndian.Uint32(b), Off: binary.LittleEndian.Uint32(b[4:])}
}

// tx2thread recovers the coordinator thread for auxiliary lock-free reads.
func tx2thread(tx *core.Tx) int { return tx.Thread() }

// txDescend is the fully transactional descent used by writers and by
// readers whose cache failed: every node on the path joins the read set.
func (t *Tree) txDescend(tx *core.Tx, key uint64, cb func(proto.Addr, []byte, error)) {
	t.txDescendPath(tx, key, func(path []pathEntry, err error) {
		if err != nil {
			cb(proto.Addr{}, nil, err)
			return
		}
		last := path[len(path)-1]
		cb(last.addr, last.data, nil)
	})
}

type pathEntry struct {
	addr proto.Addr
	data []byte
}

// txDescendPath returns the whole root→leaf path (transactionally read).
func (t *Tree) txDescendPath(tx *core.Tx, key uint64, cb func([]pathEntry, error)) {
	tx.Read(t.anchor, 8, func(ab []byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		var path []pathEntry
		var step func(addr proto.Addr, depth int)
		step = func(addr proto.Addr, depth int) {
			if depth > 64 {
				cb(nil, fmt.Errorf("btree: descent too deep"))
				return
			}
			tx.Read(addr, t.NodeBytes(), func(data []byte, err error) {
				if err != nil {
					cb(nil, err)
					return
				}
				n := node{t: t, data: data}
				if key >= n.hi() {
					// Concurrent split: B-link right move (replace the
					// path tail with the right sibling).
					step(n.next(), depth)
					return
				}
				path = append(path, pathEntry{addr: addr, data: data})
				if n.isLeaf() {
					cb(path, nil)
					return
				}
				step(n.child(n.childIndex(key)), depth+1)
			})
		}
		step(addrFromBytes(ab), 0)
	})
}

// Put inserts or updates key within tx, splitting full nodes along the
// path (all inside the transaction, so the structure change is atomic).
func (t *Tree) Put(tx *core.Tx, key uint64, val []byte, cb func(err error)) {
	if len(val) > t.maxVal {
		cb(fmt.Errorf("btree: value too long"))
		return
	}
	t.txDescendPath(tx, key, func(path []pathEntry, err error) {
		if err != nil {
			cb(err)
			return
		}
		leaf := path[len(path)-1]
		n := node{t: t, data: leaf.data}
		if i, found := n.leafIndex(key); found {
			n.setVal(i, val)
			tx.Write(leaf.addr, n.data)
			cb(nil)
			return
		}
		if n.nkeys() < t.order {
			i, _ := n.leafIndex(key)
			n.leafInsertAt(i, key, val)
			tx.Write(leaf.addr, n.data)
			cb(nil)
			return
		}
		t.splitAndInsert(tx, path, key, val, cb)
	})
}

// splitAndInsert splits the full leaf at the end of path and inserts the
// separator upward, splitting parents as needed.
func (t *Tree) splitAndInsert(tx *core.Tx, path []pathEntry, key uint64, val []byte, cb func(error)) {
	leafE := path[len(path)-1]
	left := node{t: t, data: leafE.data}

	right := node{t: t, data: make([]byte, t.NodeBytes())}
	right.setLeaf(true)
	mid := t.order / 2
	sep := left.key(mid)
	// Move upper half to right.
	for i := mid; i < left.nkeys(); i++ {
		right.setKey(i-mid, left.key(i))
		right.setVal(i-mid, left.val(i))
	}
	right.setNKeys(left.nkeys() - mid)
	left.setNKeys(mid)
	right.setLo(sep)
	right.setHi(left.hi())
	right.setNext(left.next())
	left.setHi(sep)

	// Insert the new pair into the proper half.
	if key < sep {
		i, _ := left.leafIndex(key)
		left.leafInsertAt(i, key, val)
	} else {
		i, _ := right.leafIndex(key)
		right.leafInsertAt(i, key, val)
	}

	hint := leafE.addr
	tx.Alloc(len(right.data), right.data, &hint, func(rightAddr proto.Addr, err error) {
		if err != nil {
			cb(err)
			return
		}
		left.setNext(rightAddr)
		tx.Write(leafE.addr, left.data)
		t.insertUp(tx, path[:len(path)-1], sep, rightAddr, leafE.addr, cb)
	})
}

// insertUp adds (sep → right) into the parent chain.
func (t *Tree) insertUp(tx *core.Tx, path []pathEntry, sep uint64, right, leftAddr proto.Addr, cb func(error)) {
	if len(path) == 0 {
		// Root split: new root with two children; update the anchor.
		newRoot := node{t: t, data: make([]byte, t.NodeBytes())}
		newRoot.setLeaf(false)
		newRoot.setHi(maxKey)
		newRoot.setNKeys(1)
		newRoot.setKey(0, sep)
		newRoot.setChild(0, leftAddr)
		newRoot.setChild(1, right)
		hint := leftAddr
		tx.Alloc(len(newRoot.data), newRoot.data, &hint, func(rootAddr proto.Addr, err error) {
			if err != nil {
				cb(err)
				return
			}
			anchor := make([]byte, 8)
			binary.LittleEndian.PutUint32(anchor, rootAddr.Region)
			binary.LittleEndian.PutUint32(anchor[4:], rootAddr.Off)
			tx.Write(t.anchor, anchor)
			cb(nil)
		})
		return
	}
	parentE := path[len(path)-1]
	p := node{t: t, data: parentE.data}
	if p.nkeys() < t.order {
		p.innerInsertAt(p.childIndex(sep), sep, right)
		tx.Write(parentE.addr, p.data)
		cb(nil)
		return
	}
	// Split the internal node.
	rn := node{t: t, data: make([]byte, t.NodeBytes())}
	rn.setLeaf(false)
	mid := t.order / 2
	upSep := p.key(mid)
	for i := mid + 1; i < p.nkeys(); i++ {
		rn.setKey(i-mid-1, p.key(i))
	}
	for i := mid + 1; i <= p.nkeys(); i++ {
		rn.setChild(i-mid-1, p.child(i))
	}
	rn.setNKeys(p.nkeys() - mid - 1)
	p.setNKeys(mid)
	rn.setLo(upSep)
	rn.setHi(p.hi())
	rn.setNext(p.next())
	p.setHi(upSep)

	if sep < upSep {
		p.innerInsertAt(p.childIndex(sep), sep, right)
	} else {
		rn.innerInsertAt(rn.childIndex(sep), sep, right)
	}
	hint := parentE.addr
	tx.Alloc(len(rn.data), rn.data, &hint, func(rightAddr proto.Addr, err error) {
		if err != nil {
			cb(err)
			return
		}
		p.setNext(rightAddr)
		tx.Write(parentE.addr, p.data)
		t.insertUp(tx, path[:len(path)-1], upSep, rightAddr, parentE.addr, cb)
	})
}

// Delete removes key within tx (lazy deletion: leaves may underflow but
// are never merged, which keeps fence keys stable).
func (t *Tree) Delete(tx *core.Tx, key uint64, cb func(ok bool, err error)) {
	t.txDescend(tx, key, func(addr proto.Addr, data []byte, err error) {
		if err != nil {
			cb(false, err)
			return
		}
		n := node{t: t, data: data}
		i, found := n.leafIndex(key)
		if !found {
			cb(false, nil)
			return
		}
		n.leafRemoveAt(i)
		tx.Write(addr, n.data)
		cb(true, nil)
	})
}

// Pair is one key/value result of a Scan.
type Pair struct {
	Key uint64
	Val []byte
}

// Scan returns up to limit pairs with key >= from, in key order, reading
// leaves transactionally (TPC-C's range queries).
func (t *Tree) Scan(tx *core.Tx, from uint64, limit int, cb func(pairs []Pair, err error)) {
	t.txDescend(tx, from, func(addr proto.Addr, data []byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		var out []Pair
		var walk func(data []byte)
		walk = func(data []byte) {
			n := node{t: t, data: data}
			for i := 0; i < n.nkeys() && len(out) < limit; i++ {
				if n.key(i) >= from {
					out = append(out, Pair{Key: n.key(i), Val: append([]byte(nil), n.val(i)...)})
				}
			}
			next := n.next()
			if len(out) >= limit || next == (proto.Addr{}) {
				cb(out, nil)
				return
			}
			tx.Read(next, t.NodeBytes(), func(nd []byte, err error) {
				if err != nil {
					cb(nil, err)
					return
				}
				walk(nd)
			})
		}
		walk(data)
	})
}
