package regionmem_test

// Property test for Rebuild (§5.5 allocator recovery): any sequence of
// Alloc / Free / CommitWrite operations, followed by Rebuild from the
// replicated block headers, must yield an allocator whose live-object set
// matches the original AND whose scanned audit digest matches the digest
// maintained incrementally through every commit — i.e. recovery loses no
// allocator state and no committed bytes. External test package, driving
// only the exported API.

import (
	"math/rand"
	"reflect"
	"testing"

	"farm/internal/audit"
	"farm/internal/regionmem"
)

func TestRebuildProperty(t *testing.T) {
	layout := regionmem.Layout{RegionSize: 1 << 16, BlockSize: 1 << 12}
	sizes := []int{8, 8, 8, 24, 56, 120} // mixed classes, biased small

	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mem := make([]byte, layout.RegionSize)
		a := regionmem.NewAllocator(layout, mem)
		headers := make(map[int]int) // replicated block → class metadata
		var dig audit.Digest
		// Record headers and fold newly classed blocks into the digest
		// domain as the allocator claims them, exactly like the core
		// layer's allocation hook.
		a.OnNewBlock(func(block, slot int) {
			headers[block] = slot
			base := block * layout.BlockSize
			for off := base; off+slot <= base+layout.BlockSize; off += slot {
				dig.Fold(off, regionmem.MaskLock(regionmem.ReadHeader(mem, off)),
					mem[off+regionmem.HeaderSize:off+slot])
			}
		})

		type obj struct{ off, size int }
		var live []obj
		version := uint64(0)

		for op := 0; op < 400; op++ {
			switch k := rng.Intn(10); {
			case k < 5: // alloc + commit its first write
				size := sizes[rng.Intn(len(sizes))]
				off, ok := a.Alloc(size)
				if !ok {
					continue
				}
				version++
				payload := make([]byte, size)
				rng.Read(payload)
				class := regionmem.SlotSize(size)
				regionmem.CommitWriteDigest(mem, off, version, true, payload, class, &dig)
				live = append(live, obj{off, size})
			case k < 7 && len(live) > 0: // free: clear alloc bit, return slot
				i := rng.Intn(len(live))
				o := live[i]
				version++
				class := regionmem.SlotSize(o.size)
				regionmem.CommitWriteDigest(mem, o.off, version, false, make([]byte, o.size), class, &dig)
				a.Free(o.off)
				live = append(live[:i], live[i+1:]...)
			case len(live) > 0: // overwrite an existing object
				o := live[rng.Intn(len(live))]
				version++
				payload := make([]byte, o.size)
				rng.Read(payload)
				regionmem.CommitWriteDigest(mem, o.off, version, true, payload, regionmem.SlotSize(o.size), &dig)
			}
		}

		// The incremental digest must equal a fresh scan at all times.
		if scan := audit.ScanRegion(mem, layout.BlockSize, headers); scan != dig.Value() {
			t.Fatalf("seed %d: incremental digest %#x != scan %#x", seed, dig.Value(), scan)
		}

		// Recover: rebuild from the replicated headers and the raw bytes.
		var rebuilt audit.Digest
		b := regionmem.RebuildWithDigest(layout, mem, headers, &rebuilt)

		if got, want := b.LiveObjects(), a.LiveObjects(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: live-object set diverged after Rebuild:\n got %v\nwant %v", seed, got, want)
		}
		if rebuilt.Value() != dig.Value() {
			t.Fatalf("seed %d: rebuild digest %#x != original %#x", seed, rebuilt.Value(), dig.Value())
		}
		// The rebuilt allocator must also hand out only slots the original
		// considered free (same free capacity per class).
		for _, size := range sizes {
			if a.FreeCount(size) != b.FreeCount(size) {
				t.Fatalf("seed %d: free count for size %d diverged: %d vs %d",
					seed, size, a.FreeCount(size), b.FreeCount(size))
			}
		}
	}
}
