package regionmem

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeaderWordBits(t *testing.T) {
	w := Compose(42, true, true)
	if !Locked(w) || !Allocated(w) || Version(w) != 42 {
		t.Fatalf("compose/extract broken: %x", w)
	}
	w = Compose(1<<61, false, false)
	if Locked(w) || Allocated(w) || Version(w) != 1<<61 {
		t.Fatalf("large version broken: %x", w)
	}
}

func TestHeaderQuick(t *testing.T) {
	f := func(v uint64, l, a bool) bool {
		v &= verMask
		w := Compose(v, l, a)
		return Locked(w) == l && Allocated(w) == a && Version(w) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTryLockSemantics(t *testing.T) {
	b := make([]byte, 64)
	WriteHeader(b, 0, Compose(5, false, true))
	if TryLock(b, 0, 4) {
		t.Fatal("locked at wrong version")
	}
	if !TryLock(b, 0, 5) {
		t.Fatal("failed to lock at correct version")
	}
	if TryLock(b, 0, 5) {
		t.Fatal("double lock succeeded")
	}
	Unlock(b, 0)
	w := ReadHeader(b, 0)
	if Locked(w) || Version(w) != 5 || !Allocated(w) {
		t.Fatalf("unlock corrupted header: %x", w)
	}
	if !TryLock(b, 0, 5) {
		t.Fatal("relock after unlock failed")
	}
}

func TestCommitWriteAdvancesVersionAndUnlocks(t *testing.T) {
	b := make([]byte, 64)
	WriteHeader(b, 0, Compose(3, true, true))
	CommitWrite(b, 0, 4, true, []byte("new value"))
	w, data := ReadObject(b, 0, 9)
	if Locked(w) || Version(w) != 4 || !Allocated(w) {
		t.Fatalf("header after commit: %x", w)
	}
	if string(data) != "new value" {
		t.Fatalf("payload = %q", data)
	}
}

func TestSizeClasses(t *testing.T) {
	cases := map[int]int{0: 16, 8: 16, 9: 32, 24: 32, 56: 64, 120: 128, 1000: 1024}
	for payload, want := range cases {
		if got := SlotSize(payload); got != want {
			t.Errorf("SlotSize(%d) = %d, want %d", payload, got, want)
		}
	}
}

func testLayout() Layout { return Layout{RegionSize: 1 << 16, BlockSize: 1 << 12} }

func TestAllocatorBasics(t *testing.T) {
	l := testLayout()
	mem := make([]byte, l.RegionSize)
	a := NewAllocator(l, mem)
	off1, ok := a.Alloc(24)
	if !ok || off1 != 0 {
		t.Fatalf("first alloc: %d %v", off1, ok)
	}
	off2, ok := a.Alloc(24)
	if !ok || off2 != 32 {
		t.Fatalf("second alloc in same slab: %d", off2)
	}
	if a.SlotPayload(off1) != 24 {
		t.Fatalf("slot payload = %d", a.SlotPayload(off1))
	}
	// Different class gets a different block.
	off3, ok := a.Alloc(100)
	if !ok || off3 != l.BlockSize {
		t.Fatalf("new class alloc: %d", off3)
	}
	a.Free(off2)
	off4, ok := a.Alloc(20)
	if !ok || off4 != off2 {
		t.Fatalf("free slot not reused: %d vs %d", off4, off2)
	}
}

func TestAllocatorNeverOverlaps(t *testing.T) {
	l := testLayout()
	a := NewAllocator(l, make([]byte, l.RegionSize))
	type span struct{ off, size int }
	var spans []span
	sizes := []int{8, 24, 56, 120, 8, 8, 500, 24}
	for i := 0; i < 200; i++ {
		sz := sizes[i%len(sizes)]
		off, ok := a.Alloc(sz)
		if !ok {
			break
		}
		spans = append(spans, span{off, SlotSize(sz)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	for i := 1; i < len(spans); i++ {
		if spans[i-1].off+spans[i-1].size > spans[i].off {
			t.Fatalf("overlap: %+v and %+v", spans[i-1], spans[i])
		}
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	l := Layout{RegionSize: 1 << 12, BlockSize: 1 << 12} // one block
	a := NewAllocator(l, make([]byte, l.RegionSize))
	slots := l.BlockSize / 16
	for i := 0; i < slots; i++ {
		if _, ok := a.Alloc(8); !ok {
			t.Fatalf("alloc %d failed early", i)
		}
	}
	if _, ok := a.Alloc(8); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if _, ok := a.Alloc(l.BlockSize); ok {
		t.Fatal("oversized alloc succeeded")
	}
}

func TestOnNewBlockHookAndHeaders(t *testing.T) {
	l := testLayout()
	a := NewAllocator(l, make([]byte, l.RegionSize))
	var hooked [][2]int
	a.OnNewBlock(func(b, c int) { hooked = append(hooked, [2]int{b, c}) })
	a.Alloc(8)
	a.Alloc(8)   // same slab, no new block
	a.Alloc(100) // new block
	if len(hooked) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(hooked))
	}
	want := map[int]int{0: 16, 1: 128}
	if got := a.BlockHeaders(); !reflect.DeepEqual(got, want) {
		t.Fatalf("headers = %v, want %v", got, want)
	}
}

// commitAt simulates a committed allocating write: sets alloc bit.
func commitAt(mem []byte, off int) { WriteHeader(mem, off, Compose(1, false, true)) }

func TestRebuildMatchesLiveState(t *testing.T) {
	l := testLayout()
	mem := make([]byte, l.RegionSize)
	a := NewAllocator(l, mem)
	var live []int
	for i := 0; i < 50; i++ {
		off, ok := a.Alloc(24)
		if !ok {
			t.Fatal("alloc failed")
		}
		if i%3 == 0 {
			// Committed allocation.
			commitAt(mem, off)
			live = append(live, off)
		} else {
			// Aborted: slot stays free-bit-clear; return it.
			a.Free(off)
		}
	}
	r := Rebuild(l, mem, a.BlockHeaders())
	if got := r.LiveObjects(); !reflect.DeepEqual(got, live) {
		sort.Ints(live)
		if !reflect.DeepEqual(got, live) {
			t.Fatalf("live objects: %v want %v", got, live)
		}
	}
	// Every subsequent allocation from the rebuilt allocator must not
	// collide with a live object.
	taken := map[int]bool{}
	for _, off := range live {
		taken[off] = true
	}
	for {
		off, ok := r.Alloc(24)
		if !ok {
			break
		}
		if taken[off] {
			t.Fatalf("rebuilt allocator handed out live offset %d", off)
		}
		taken[off] = true
	}
}

func TestRebuildFreeCountsQuick(t *testing.T) {
	l := Layout{RegionSize: 1 << 14, BlockSize: 1 << 12}
	f := func(commits []bool) bool {
		if len(commits) > 100 {
			commits = commits[:100]
		}
		mem := make([]byte, l.RegionSize)
		a := NewAllocator(l, mem)
		liveCount := 0
		for _, c := range commits {
			off, ok := a.Alloc(40)
			if !ok {
				break
			}
			if c {
				commitAt(mem, off)
				liveCount++
			} else {
				a.Free(off)
			}
		}
		r := Rebuild(l, mem, a.BlockHeaders())
		return len(r.LiveObjects()) == liveCount &&
			r.FreeCount(40) == a.FreeCount(40)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScanWork(t *testing.T) {
	l := testLayout()
	headers := map[int]int{0: 16, 1: 128}
	want := l.BlockSize/16 + l.BlockSize/128
	if got := ScanWork(l, headers); got != want {
		t.Fatalf("ScanWork = %d, want %d", got, want)
	}
}

func TestFreePanicsOnBadOffset(t *testing.T) {
	l := testLayout()
	a := NewAllocator(l, make([]byte, l.RegionSize))
	a.Alloc(8)
	for _, off := range []int{l.BlockSize, 7} { // unused block; misaligned
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Free(%d) did not panic", off)
				}
			}()
			a.Free(off)
		}()
	}
}
