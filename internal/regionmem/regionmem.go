// Package regionmem implements the FaRM memory layout of §3 and §5.5: the
// global address space is made of regions; each object starts with a 64-bit
// header word holding a lock bit, an allocation bit and a version; regions
// are split into blocks used as slabs for small-object allocation, with
// block headers (object size per block) and per-slab free lists kept at the
// primary.
//
// Everything here operates on plain byte slices so the same code runs
// against local memory, the bytes a one-sided RDMA read returned, or a
// backup's replica during recovery scans.
package regionmem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// HeaderSize is the size of the per-object version word.
const HeaderSize = 8

// Header word layout: bit 63 = lock, bit 62 = allocated, bits 0..61 =
// version (§4: "Each object has a 64-bit version that is used for
// concurrency control and replication"; §5.5: "Each object has a bit in its
// header that is set by an allocation").
const (
	lockBit  = uint64(1) << 63
	allocBit = uint64(1) << 62
	verMask  = allocBit - 1
)

// Compose builds a header word.
func Compose(version uint64, locked, allocated bool) uint64 {
	w := version & verMask
	if locked {
		w |= lockBit
	}
	if allocated {
		w |= allocBit
	}
	return w
}

// Locked reports the lock bit.
func Locked(word uint64) bool { return word&lockBit != 0 }

// Allocated reports the allocation bit.
func Allocated(word uint64) bool { return word&allocBit != 0 }

// Version extracts the version number.
func Version(word uint64) uint64 { return word & verMask }

// MaskLock clears the lock bit of a header word. State-integrity digests
// hash lock-masked words: the lock bit is transient coordination state
// that legitimately differs between a primary and its backups.
func MaskLock(word uint64) uint64 { return word &^ lockBit }

// ReadHeader loads the header word of the object at off.
func ReadHeader(b []byte, off int) uint64 {
	return binary.LittleEndian.Uint64(b[off:])
}

// WriteHeader stores the header word of the object at off.
func WriteHeader(b []byte, off int, word uint64) {
	binary.LittleEndian.PutUint64(b[off:], word)
}

// TryLock attempts the compare-and-swap a primary performs for a LOCK
// record (§4 step 1): it succeeds iff the object is unlocked and its
// version equals version. On success the lock bit is set.
func TryLock(b []byte, off int, version uint64) bool {
	w := ReadHeader(b, off)
	if Locked(w) || Version(w) != version {
		return false
	}
	WriteHeader(b, off, w|lockBit)
	return true
}

// Unlock clears the lock bit without changing version or allocation state
// (used when a transaction aborts after locking).
func Unlock(b []byte, off int) {
	WriteHeader(b, off, ReadHeader(b, off)&^lockBit)
}

// CommitWrite installs a committed write at off: the payload is copied,
// the version advanced to newVersion, the allocation bit set as given, and
// the lock released (§4 step 4).
func CommitWrite(b []byte, off int, newVersion uint64, allocated bool, payload []byte) {
	copy(b[off+HeaderSize:], payload)
	WriteHeader(b, off, Compose(newVersion, false, allocated))
}

// DigestSink receives incremental state-digest updates from digest-aware
// memory operations. It is structural (rather than a concrete type from
// the audit package) so regionmem stays dependency-free; internal/audit's
// Digest satisfies it. Both methods take the slot's offset, its
// lock-masked header word, and its full payload extent.
type DigestSink interface {
	Fold(off int, word uint64, payload []byte)
	Unfold(off int, word uint64, payload []byte)
}

// CommitWriteDigest is CommitWrite with an incremental digest update: the
// slot's old state (lock-masked word + full payload extent of its size
// class) is unfolded from the sink, the write installed, and the new state
// folded in — O(1) per mutation, no allocation. class is the slot size of
// the block containing off; a zero class (block not yet classed at this
// replica) or nil sink degrades to a plain CommitWrite, leaving the slot
// outside the digest domain until its block header arrives.
func CommitWriteDigest(b []byte, off int, newVersion uint64, allocated bool, payload []byte, class int, sink DigestSink) {
	if sink == nil || class == 0 {
		CommitWrite(b, off, newVersion, allocated, payload)
		return
	}
	ext := b[off+HeaderSize : off+class]
	sink.Unfold(off, MaskLock(ReadHeader(b, off)), ext)
	CommitWrite(b, off, newVersion, allocated, payload)
	sink.Fold(off, MaskLock(ReadHeader(b, off)), ext)
}

// ReadObject returns the header word and a copy of size payload bytes of
// the object at off.
func ReadObject(b []byte, off, size int) (word uint64, data []byte) {
	word = ReadHeader(b, off)
	data = make([]byte, size)
	copy(data, b[off+HeaderSize:off+HeaderSize+size])
	return word, data
}

// Layout fixes the geometry of regions. The paper uses 2 GB regions and
// 1 MB blocks; simulations scale both down, preserving the ratios that
// matter (many blocks per region, many objects per block).
type Layout struct {
	RegionSize int
	BlockSize  int
}

// DefaultLayout is the scaled-down simulation geometry.
func DefaultLayout() Layout { return Layout{RegionSize: 1 << 20, BlockSize: 1 << 14} }

// Validate checks the geometry is usable.
func (l Layout) Validate() error {
	if l.BlockSize < 2*HeaderSize || l.RegionSize < l.BlockSize || l.RegionSize%l.BlockSize != 0 {
		return fmt.Errorf("regionmem: invalid layout %+v", l)
	}
	return nil
}

// Blocks returns the number of blocks per region.
func (l Layout) Blocks() int { return l.RegionSize / l.BlockSize }

// sizeClass returns the slot size (header included) for a payload of size
// bytes: the smallest power of two ≥ size + HeaderSize, minimum 16.
func sizeClass(size int) int {
	need := size + HeaderSize
	c := 16
	for c < need {
		c <<= 1
	}
	return c
}

// SlotSize exposes the slot size chosen for a payload size (for tests and
// capacity planning).
func SlotSize(payload int) int { return sizeClass(payload) }

// Allocator manages one region's blocks and slab free lists. It lives at
// the region's primary only (§5.5); backups learn block headers through
// replication messages and rebuild free lists by scanning after a failure.
type Allocator struct {
	layout Layout
	mem    []byte

	// class[b] is the slot size of block b; 0 means the block is unused.
	class []int
	// free maps slot size → offsets of free slots, LIFO.
	free map[int][]int
	// used counts allocated slots per block, to return empty blocks.
	used []int

	// onNewBlock, if set, is called when a block is assigned a size class
	// — the hook the core layer uses to replicate block headers to backups
	// at allocation time (§5.5).
	onNewBlock func(block, slotSize int)
}

// NewAllocator creates an allocator over a fresh region.
func NewAllocator(layout Layout, mem []byte) *Allocator {
	if err := layout.Validate(); err != nil {
		panic(err)
	}
	if len(mem) != layout.RegionSize {
		panic(fmt.Sprintf("regionmem: region size %d != layout %d", len(mem), layout.RegionSize))
	}
	return &Allocator{
		layout: layout,
		mem:    mem,
		class:  make([]int, layout.Blocks()),
		free:   make(map[int][]int),
		used:   make([]int, layout.Blocks()),
	}
}

// OnNewBlock installs the block-header replication hook.
func (a *Allocator) OnNewBlock(fn func(block, slotSize int)) { a.onNewBlock = fn }

// Alloc reserves a slot for a payload of size bytes and returns the object
// offset (of the header). The allocation bit is NOT set here: FaRM sets it
// through the transaction write at commit time; the slot is merely removed
// from the free list so concurrent transactions cannot claim it.
func (a *Allocator) Alloc(size int) (int, bool) {
	c := sizeClass(size)
	if c > a.layout.BlockSize {
		return 0, false
	}
	if lst := a.free[c]; len(lst) > 0 {
		off := lst[len(lst)-1]
		a.free[c] = lst[:len(lst)-1]
		a.used[off/a.layout.BlockSize]++
		return off, true
	}
	// Claim a fresh block as a slab of class c.
	for b, cls := range a.class {
		if cls != 0 {
			continue
		}
		a.class[b] = c
		if a.onNewBlock != nil {
			a.onNewBlock(b, c)
		}
		base := b * a.layout.BlockSize
		slots := a.layout.BlockSize / c
		// Push in reverse so allocation proceeds from the block's start.
		for s := slots - 1; s >= 1; s-- {
			a.free[c] = append(a.free[c], base+s*c)
		}
		a.used[b] = 1
		return base, true
	}
	return 0, false
}

// Free returns a slot to its slab's free list. The caller is responsible
// for having cleared the allocation bit via a committed transaction first.
func (a *Allocator) Free(off int) {
	b := off / a.layout.BlockSize
	c := a.class[b]
	if c == 0 {
		panic(fmt.Sprintf("regionmem: free of offset %d in unused block", off))
	}
	if off%c != 0 {
		panic(fmt.Sprintf("regionmem: free of misaligned offset %d (class %d)", off, c))
	}
	a.free[c] = append(a.free[c], off)
	a.used[b]--
}

// SlotPayload returns the payload capacity of the slot at off.
func (a *Allocator) SlotPayload(off int) int {
	c := a.class[off/a.layout.BlockSize]
	if c == 0 {
		return 0
	}
	return c - HeaderSize
}

// BlockHeaders returns a copy of the block → slot-size map for blocks in
// use: the metadata replicated to backups.
func (a *Allocator) BlockHeaders() map[int]int {
	out := make(map[int]int)
	for b, c := range a.class {
		if c != 0 {
			out[b] = c
		}
	}
	return out
}

// FreeCount returns the number of free slots of the class serving payload
// size (diagnostics and tests).
func (a *Allocator) FreeCount(size int) int { return len(a.free[sizeClass(size)]) }

// LiveObjects returns the offsets of all slots whose allocation bit is set,
// in address order (used by data recovery and tests).
func (a *Allocator) LiveObjects() []int {
	var out []int
	for b, c := range a.class {
		if c == 0 {
			continue
		}
		base := b * a.layout.BlockSize
		for off := base; off+c <= base+a.layout.BlockSize; off += c {
			if Allocated(ReadHeader(a.mem, off)) {
				out = append(out, off)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Rebuild reconstructs an allocator from a region replica and replicated
// block headers by scanning allocation bits — the §5.5 recovery path a new
// primary runs. It returns the allocator plus the scanned offsets in scan
// order so the caller can pace the scan (100 objects per 100 µs in the
// paper).
func Rebuild(layout Layout, mem []byte, headers map[int]int) *Allocator {
	a := NewAllocator(layout, mem)
	// Deterministic block order.
	blocks := make([]int, 0, len(headers))
	for b := range headers {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		c := headers[b]
		a.class[b] = c
		base := b * layout.BlockSize
		for off := base; off+c <= base+layout.BlockSize; off += c {
			if Allocated(ReadHeader(mem, off)) {
				a.used[b]++
			} else {
				a.free[c] = append(a.free[c], off)
			}
		}
	}
	return a
}

// RebuildWithDigest is Rebuild with a digest pass: while the §5.5 scan
// walks every slot of every classed block it also folds each slot's state
// into sink, so the caller gets the allocator AND a freshly scanned state
// digest from the same pass. Callers replace their replica's incremental
// digest with the result (allocator recovery runs exactly when incremental
// state may be stale — after a promotion).
func RebuildWithDigest(layout Layout, mem []byte, headers map[int]int, sink DigestSink) *Allocator {
	a := Rebuild(layout, mem, headers)
	if sink != nil {
		for b, c := range headers {
			base := b * layout.BlockSize
			for off := base; off+c <= base+layout.BlockSize; off += c {
				sink.Fold(off, MaskLock(ReadHeader(mem, off)), mem[off+HeaderSize:off+c])
			}
		}
	}
	return a
}

// ScanWork returns the number of slots Rebuild must examine for the given
// headers — the unit the paced recovery scan charges time against.
func ScanWork(layout Layout, headers map[int]int) int {
	total := 0
	for _, c := range headers {
		total += layout.BlockSize / c
	}
	return total
}
