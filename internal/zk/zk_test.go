package zk

import (
	"errors"
	"testing"

	"farm/internal/sim"
)

func TestGetInitial(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, "cfg-1")
	var v uint64
	var d interface{}
	s.Get(func(version uint64, data interface{}, err error) {
		if err != nil {
			t.Error(err)
		}
		v, d = version, data
	})
	eng.Run()
	if v != 1 || d != "cfg-1" {
		t.Fatalf("got v=%d d=%v", v, d)
	}
	if eng.Now() < s.ReadLatency {
		t.Fatal("read had no latency")
	}
}

func TestCASSuccessAndVersionAdvance(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, "a")
	s.CAS(1, "b", func(ok bool, v uint64, cur interface{}, err error) {
		if !ok || v != 2 || cur != "b" || err != nil {
			t.Errorf("CAS: ok=%v v=%d cur=%v err=%v", ok, v, cur, err)
		}
	})
	eng.Run()
	s.Get(func(v uint64, d interface{}, _ error) {
		if v != 2 || d != "b" {
			t.Errorf("after CAS: v=%d d=%v", v, d)
		}
	})
	eng.Run()
}

func TestCASOnlyOneWinnerPerVersion(t *testing.T) {
	// The §5.2 property: many machines racing to move c -> c+1; exactly
	// one succeeds.
	eng := sim.NewEngine(1)
	s := New(eng, "c0")
	wins := 0
	for i := 0; i < 10; i++ {
		i := i
		s.CAS(1, i, func(ok bool, _ uint64, _ interface{}, _ error) {
			if ok {
				wins++
			}
		})
	}
	eng.Run()
	if wins != 1 {
		t.Fatalf("%d winners, want exactly 1", wins)
	}
	attempts, casWins := s.Stats()
	if attempts != 10 || casWins != 1 {
		t.Fatalf("stats: %d/%d", attempts, casWins)
	}
}

func TestCASStaleVersionFails(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, "x")
	s.CAS(1, "y", func(bool, uint64, interface{}, error) {})
	eng.Run()
	s.CAS(1, "z", func(ok bool, v uint64, cur interface{}, err error) {
		if ok {
			t.Error("stale CAS succeeded")
		}
		if v != 2 || cur != "y" {
			t.Errorf("stale CAS did not return current state: v=%d cur=%v", v, cur)
		}
	})
	eng.Run()
}

func TestUnavailable(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, "x")
	s.SetAvailable(false)
	s.Get(func(_ uint64, _ interface{}, err error) {
		if !errors.Is(err, ErrUnavailable) {
			t.Errorf("get err = %v", err)
		}
	})
	s.CAS(1, "y", func(ok bool, _ uint64, _ interface{}, err error) {
		if ok || !errors.Is(err, ErrUnavailable) {
			t.Errorf("cas ok=%v err=%v", ok, err)
		}
	})
	eng.Run()
	s.SetAvailable(true)
	s.CAS(1, "y", func(ok bool, _ uint64, _ interface{}, err error) {
		if !ok || err != nil {
			t.Errorf("after recovery: ok=%v err=%v", ok, err)
		}
	})
	eng.Run()
}
