// Package zk models the Zookeeper coordination service FaRM uses as its
// vertical-Paxos configuration store (§3, §5.2). FaRM deliberately keeps
// Zookeeper off the critical path: it is invoked once per configuration
// change to atomically advance the configuration record, using znode
// sequence numbers as a compare-and-swap. This model provides exactly that:
// a linearizable versioned register with quorum-write latency, plus an
// availability switch so tests can exercise the "majority of Zookeeper
// replicas reachable" requirement.
package zk

import (
	"errors"

	"farm/internal/sim"
)

// ErrUnavailable is reported when the service has no quorum.
var ErrUnavailable = errors.New("zk: no quorum")

// Service is the replicated configuration store.
type Service struct {
	eng *sim.Engine

	// ReadLatency and WriteLatency model a quorum round trip from a FaRM
	// machine to the 5-replica ensemble.
	ReadLatency  sim.Time
	WriteLatency sim.Time

	version   uint64
	data      interface{}
	available bool

	casAttempts uint64
	casWins     uint64
}

// New creates a service holding initial data at version 1.
func New(eng *sim.Engine, initial interface{}) *Service {
	return &Service{
		eng:          eng,
		ReadLatency:  500 * sim.Microsecond,
		WriteLatency: 1 * sim.Millisecond,
		version:      1,
		data:         initial,
		available:    true,
	}
}

// SetAvailable simulates losing or regaining the Zookeeper quorum.
func (s *Service) SetAvailable(ok bool) { s.available = ok }

// Get reads the current version and data.
func (s *Service) Get(cb func(version uint64, data interface{}, err error)) {
	s.eng.After(s.ReadLatency, func() {
		if !s.available {
			cb(0, nil, ErrUnavailable)
			return
		}
		cb(s.version, s.data, nil)
	})
}

// CAS atomically replaces the stored data if the current version equals
// expect; on success the version advances to expect+1. On failure the
// current version and data are returned so the caller can re-evaluate —
// this is the znode sequence-number CAS of §5.2 step 3, which guarantees
// only one machine can move the system from configuration c to c+1.
func (s *Service) CAS(expect uint64, data interface{}, cb func(ok bool, version uint64, cur interface{}, err error)) {
	s.eng.After(s.WriteLatency, func() {
		if !s.available {
			cb(false, 0, nil, ErrUnavailable)
			return
		}
		s.casAttempts++
		if s.version != expect {
			cb(false, s.version, s.data, nil)
			return
		}
		s.version++
		s.data = data
		s.casWins++
		cb(true, s.version, s.data, nil)
	})
}

// Stats reports CAS attempts and successes (test observability).
func (s *Service) Stats() (attempts, wins uint64) { return s.casAttempts, s.casWins }
