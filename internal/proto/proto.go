// Package proto defines the wire-visible vocabulary of the FaRM protocols:
// the log record types of Table 1 (which are binary-encoded, because they
// are written into remote non-volatile ring buffers with one-sided RDMA and
// must be re-parseable during recovery) and the message types of Table 2
// plus the reconfiguration/lease control messages of §5.1–§5.2 (which
// travel as in-memory values over the simulated reliable transport).
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is a FaRM global address: a region identifier plus an offset within
// the region (§3). Objects are always read at their primary.
type Addr struct {
	Region uint32
	Off    uint32
}

// String formats an address as region:offset.
func (a Addr) String() string { return fmt.Sprintf("%d:%d", a.Region, a.Off) }

// TxID is the transaction identifier ⟨c, m, t, l⟩ of §5.3: the
// configuration in which commit started, the coordinator machine, the
// coordinator thread, and a thread-local sequence number.
type TxID struct {
	Config  uint64
	Machine uint16
	Thread  uint16
	Local   uint64
}

// IsZero reports whether the id is unset.
func (id TxID) IsZero() bool { return id == TxID{} }

// String formats the id as ⟨c,m,t,l⟩.
func (id TxID) String() string {
	return fmt.Sprintf("⟨%d,%d,%d,%d⟩", id.Config, id.Machine, id.Thread, id.Local)
}

// CoordKey identifies the coordinating thread — the log/queue pair and the
// truncation lower-bound domain.
type CoordKey struct {
	Machine uint16
	Thread  uint16
}

// Coord returns the coordinator thread key of the transaction.
func (id TxID) Coord() CoordKey { return CoordKey{Machine: id.Machine, Thread: id.Thread} }

// RecordType enumerates the log record types of Table 1.
type RecordType uint8

// Table 1 log record types.
const (
	RecInvalid RecordType = iota
	RecLock
	RecCommitBackup
	RecCommitPrimary
	RecAbort
	RecTruncate
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecLock:
		return "LOCK"
	case RecCommitBackup:
		return "COMMIT-BACKUP"
	case RecCommitPrimary:
		return "COMMIT-PRIMARY"
	case RecAbort:
		return "ABORT"
	case RecTruncate:
		return "TRUNCATE"
	default:
		return "INVALID"
	}
}

// ObjectWrite is one written object carried in a LOCK or COMMIT-BACKUP
// record: its address, the version observed at read time (the version to
// lock at), and the new value. Allocated is the object's allocation bit
// after commit — set for writes and allocations, clear for frees, because
// FaRM replicates allocation-state changes through the transaction write
// path (§5.5).
type ObjectWrite struct {
	Addr      Addr
	Version   uint64
	Allocated bool
	Value     []byte
}

// Record is a Table 1 log record. Per the table's note, every record
// piggybacks the coordinator thread's truncation state: a low bound on
// non-truncated local transaction ids and a set of transaction ids to
// truncate now.
type Record struct {
	Type RecordType
	Tx   TxID
	// Regions lists the ids of all regions containing objects written by
	// the transaction (LOCK and COMMIT-BACKUP records).
	Regions []uint32
	// Writes holds the addresses, lock versions and new values of written
	// objects the destination is primary (LOCK) or backup (COMMIT-BACKUP)
	// for.
	Writes []ObjectWrite
	// TruncLow is the piggybacked low bound on non-truncated local ids for
	// this coordinator thread.
	TruncLow uint64
	// TruncIDs are piggybacked local ids (same coordinator thread) whose
	// records can be truncated.
	TruncIDs []uint64
}

// ErrBadRecord is returned when a log record fails to parse.
var ErrBadRecord = errors.New("proto: malformed log record")

// MarshalRecord encodes r into self-describing bytes suitable for a ring
// buffer frame.
func MarshalRecord(r *Record) []byte {
	size := 1 + 8 + 2 + 2 + 8 + 8 + 2 + 8*len(r.TruncIDs) + 2 + 4*len(r.Regions) + 2
	for _, w := range r.Writes {
		size += 4 + 4 + 8 + 1 + 4 + len(w.Value)
	}
	b := make([]byte, 0, size)
	b = append(b, byte(r.Type))
	b = binary.LittleEndian.AppendUint64(b, r.Tx.Config)
	b = binary.LittleEndian.AppendUint16(b, r.Tx.Machine)
	b = binary.LittleEndian.AppendUint16(b, r.Tx.Thread)
	b = binary.LittleEndian.AppendUint64(b, r.Tx.Local)
	b = binary.LittleEndian.AppendUint64(b, r.TruncLow)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.TruncIDs)))
	for _, id := range r.TruncIDs {
		b = binary.LittleEndian.AppendUint64(b, id)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Regions)))
	for _, rg := range r.Regions {
		b = binary.LittleEndian.AppendUint32(b, rg)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Writes)))
	for _, w := range r.Writes {
		b = binary.LittleEndian.AppendUint32(b, w.Addr.Region)
		b = binary.LittleEndian.AppendUint32(b, w.Addr.Off)
		b = binary.LittleEndian.AppendUint64(b, w.Version)
		if w.Allocated {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(w.Value)))
		b = append(b, w.Value...)
	}
	return b
}

type reader struct {
	b   []byte
	pos int
	err bool
}

func (r *reader) take(n int) []byte {
	if r.err || r.pos+n > len(r.b) {
		r.err = true
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// UnmarshalRecord decodes a record previously produced by MarshalRecord.
func UnmarshalRecord(data []byte) (*Record, error) {
	rd := &reader{b: data}
	rec := &Record{}
	rec.Type = RecordType(rd.u8())
	if rec.Type == RecInvalid || rec.Type > RecTruncate {
		return nil, ErrBadRecord
	}
	rec.Tx.Config = rd.u64()
	rec.Tx.Machine = rd.u16()
	rec.Tx.Thread = rd.u16()
	rec.Tx.Local = rd.u64()
	rec.TruncLow = rd.u64()
	if n := int(rd.u16()); n > 0 {
		rec.TruncIDs = make([]uint64, n)
		for i := range rec.TruncIDs {
			rec.TruncIDs[i] = rd.u64()
		}
	}
	if n := int(rd.u16()); n > 0 {
		rec.Regions = make([]uint32, n)
		for i := range rec.Regions {
			rec.Regions[i] = rd.u32()
		}
	}
	if n := int(rd.u16()); n > 0 {
		rec.Writes = make([]ObjectWrite, n)
		for i := range rec.Writes {
			w := &rec.Writes[i]
			w.Addr.Region = rd.u32()
			w.Addr.Off = rd.u32()
			w.Version = rd.u64()
			w.Allocated = rd.u8() != 0
			vlen := int(rd.u32())
			v := rd.take(vlen)
			if v != nil {
				w.Value = make([]byte, vlen)
				copy(w.Value, v)
			}
		}
	}
	if rd.err || rd.pos != len(data) {
		return nil, ErrBadRecord
	}
	return rec, nil
}

// Vote is a recovery vote (§5.3 step 6) sent by the primary of a region to
// the recovery coordinator of a transaction.
type Vote uint8

// Vote values, strongest first.
const (
	VoteUnknown Vote = iota
	VoteAbort
	VoteLock
	VoteCommitBackup
	VoteCommitPrimary
	VoteTruncated
)

// String names the vote.
func (v Vote) String() string {
	switch v {
	case VoteCommitPrimary:
		return "commit-primary"
	case VoteCommitBackup:
		return "commit-backup"
	case VoteLock:
		return "lock"
	case VoteAbort:
		return "abort"
	case VoteTruncated:
		return "truncated"
	default:
		return "unknown"
	}
}
