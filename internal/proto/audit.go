package proto

// This file defines the state-integrity audit protocol messages: a
// primary snapshots its region digest at a fenced point, asks every
// backup for theirs, and on divergence drills down block → object. All
// audit messages are registered priority (they bypass send coalescing):
// audits run right after heals and recoveries, exactly when queues are
// fullest, and a fence is held while they are in flight.

// AuditSnap asks a backup for its digest snapshot of one region. The
// primary's block-header map rides along so a backup that missed a
// BLOCK-HEADER-SYNC can install the metadata (and fold the blocks into
// its digest domain) before scanning — digest domains must match for the
// comparison to be meaningful.
type AuditSnap struct {
	AuditID uint64
	Config  uint64
	Region  uint32
	Headers map[int]int
}

// AuditSnapReply carries one backup's snapshot. Settled is false when the
// backup could not reach a quiescent point (pending transactions on the
// region, data recovery in flight, configuration mismatch) — the audit is
// then inconclusive, never a divergence. Inc is the incrementally
// maintained digest, Scan the fresh ground-truth scan (their disagreement
// is the backup's self-check), and Blocks the per-block scan digests for
// the drill-down.
type AuditSnapReply struct {
	AuditID uint64
	Config  uint64
	Region  uint32
	Settled bool
	Inc     uint64
	Scan    uint64
	Blocks  map[int]uint64
}

// AuditObjectsReq asks a diverged backup for one block's per-slot digests.
type AuditObjectsReq struct {
	AuditID uint64
	Config  uint64
	Region  uint32
	Block   int
}

// AuditObjectsReply answers with the block's slot digests in slot order.
type AuditObjectsReply struct {
	AuditID uint64
	Region  uint32
	Block   int
	Objects []uint64
}

// AuditRepair fences a divergent backup into re-replication: the backup
// re-runs §5.4 data recovery against the primary in force-copy mode
// (every differing slot is overwritten, not just newer-versioned ones)
// and reseeds its digest from a fresh scan when done.
type AuditRepair struct {
	AuditID uint64
	Config  uint64
	Region  uint32
}

// AuditRepairDone reports a repair re-replication finished; the primary
// re-audits the region to verify the repair took.
type AuditRepairDone struct {
	AuditID uint64
	Config  uint64
	Region  uint32
	OK      bool
}
