package proto

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecord() *Record {
	return &Record{
		Type:    RecLock,
		Tx:      TxID{Config: 3, Machine: 7, Thread: 11, Local: 42},
		Regions: []uint32{1, 9, 200},
		Writes: []ObjectWrite{
			{Addr: Addr{Region: 1, Off: 64}, Version: 5, Value: []byte("hello")},
			{Addr: Addr{Region: 9, Off: 128}, Version: 77, Value: []byte{}},
		},
		TruncLow: 40,
		TruncIDs: []uint64{40, 41},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := sampleRecord()
	b := MarshalRecord(r)
	got, err := UnmarshalRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != r.Type || got.Tx != r.Tx || got.TruncLow != r.TruncLow {
		t.Fatalf("header mismatch: %+v vs %+v", got, r)
	}
	if !reflect.DeepEqual(got.Regions, r.Regions) {
		t.Fatalf("regions: %v vs %v", got.Regions, r.Regions)
	}
	if !reflect.DeepEqual(got.TruncIDs, r.TruncIDs) {
		t.Fatalf("trunc ids: %v vs %v", got.TruncIDs, r.TruncIDs)
	}
	if len(got.Writes) != len(r.Writes) {
		t.Fatalf("writes: %d vs %d", len(got.Writes), len(r.Writes))
	}
	for i := range r.Writes {
		if got.Writes[i].Addr != r.Writes[i].Addr || got.Writes[i].Version != r.Writes[i].Version {
			t.Fatalf("write %d header mismatch", i)
		}
		if !bytes.Equal(got.Writes[i].Value, r.Writes[i].Value) {
			t.Fatalf("write %d value mismatch", i)
		}
	}
}

func TestAllTable1RecordTypesRoundTrip(t *testing.T) {
	for _, typ := range []RecordType{RecLock, RecCommitBackup, RecCommitPrimary, RecAbort, RecTruncate} {
		r := &Record{Type: typ, Tx: TxID{Config: 1, Machine: 2, Thread: 3, Local: 4}}
		got, err := UnmarshalRecord(MarshalRecord(r))
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if got.Type != typ || got.Tx != r.Tx {
			t.Fatalf("%v: round trip mismatch", typ)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                                      // invalid type
		{255, 1, 2, 3},                           // unknown type
		MarshalRecord(sampleRecord())[:10],       // truncated
		append(MarshalRecord(sampleRecord()), 0), // trailing bytes
	}
	for i, c := range cases {
		if _, err := UnmarshalRecord(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(cfg uint64, m, th uint16, local uint64, regions []uint32, low uint64, vals [][]byte) bool {
		if len(regions) > 1000 || len(vals) > 100 {
			return true
		}
		r := &Record{
			Type:     RecCommitBackup,
			Tx:       TxID{Config: cfg, Machine: m, Thread: th, Local: local},
			Regions:  regions,
			TruncLow: low,
		}
		for i, v := range vals {
			r.Writes = append(r.Writes, ObjectWrite{
				Addr:    Addr{Region: uint32(i), Off: uint32(i * 8)},
				Version: uint64(i),
				Value:   v,
			})
		}
		got, err := UnmarshalRecord(MarshalRecord(r))
		if err != nil {
			return false
		}
		if got.Tx != r.Tx || len(got.Writes) != len(r.Writes) {
			return false
		}
		for i := range r.Writes {
			if !bytes.Equal(got.Writes[i].Value, r.Writes[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTxIDHelpers(t *testing.T) {
	id := TxID{Config: 1, Machine: 2, Thread: 3, Local: 4}
	if id.IsZero() {
		t.Fatal("non-zero id reported zero")
	}
	if (TxID{}).IsZero() == false {
		t.Fatal("zero id not detected")
	}
	if id.Coord() != (CoordKey{Machine: 2, Thread: 3}) {
		t.Fatalf("coord key = %+v", id.Coord())
	}
	if id.String() != "⟨1,2,3,4⟩" {
		t.Fatalf("String = %s", id)
	}
}

func TestVoteAndRecordTypeNames(t *testing.T) {
	if VoteCommitPrimary.String() != "commit-primary" || VoteTruncated.String() != "truncated" {
		t.Fatal("vote names wrong")
	}
	if RecLock.String() != "LOCK" || RecCommitBackup.String() != "COMMIT-BACKUP" {
		t.Fatal("record names wrong")
	}
	if RecordType(99).String() != "INVALID" {
		t.Fatal("unknown record type name")
	}
}

func TestConfigMember(t *testing.T) {
	c := &Config{ID: 5, Machines: []uint16{0, 2, 4}, CM: 0}
	if !c.Member(2) || c.Member(1) {
		t.Fatal("Member wrong")
	}
}
