package proto

// This file defines the typed message-handler registry that replaces
// per-receiver type switches: each transported message type is registered
// once with its Table 2 (or infrastructure) name, an optional wire-size
// model, and a typed handler. Counter names are precomputed at
// registration so the receive hot path never builds strings.

import "reflect"

// DefaultMsgSize is the modeled wire size of a small fixed-shape control
// message: transport headers plus a few payload words. Messages with
// variable payloads register an explicit size model.
const DefaultMsgSize = 64

// Handler is one registered message handler. Fn is nil for send-only
// registrations (message types a machine emits but never receives, e.g.
// client responses); such messages still get wire-size accounting on the
// send side, and count as unknown if one ever arrives at a machine.
type Handler struct {
	// Name is the protocol-vocabulary name, e.g. "LOCK-REPLY".
	Name string
	// RecvCounter / SentCounter / BytesCounter are the precomputed counter
	// keys ("msg NAME", "sent NAME", "wire NAME").
	RecvCounter  string
	SentCounter  string
	BytesCounter string

	// RecvCell / SentCell / BytesCell are pre-resolved counter cells the
	// transport installs after registration (stats.Counters.Cell), so the
	// per-message hot paths bump a pointer instead of hashing the name.
	RecvCell  *uint64
	SentCell  *uint64
	BytesCell *uint64

	// Fn dispatches a received message (src is the sender machine id).
	Fn func(src int, msg interface{})
	// Size models the message's wire size in bytes (nil: DefaultMsgSize).
	Size func(msg interface{}) int
	// Priority marks failure-detection and recovery control messages
	// (RECOVERY-VOTE, NEW-CONFIG class) that bypass the transport's
	// coalescing queues: they are latency-critical during exactly the
	// windows when queues are fullest, so they are never batched.
	Priority bool
}

// SizeOf returns the modeled wire size of msg.
func (h *Handler) SizeOf(msg interface{}) int {
	if h == nil || h.Size == nil {
		return DefaultMsgSize
	}
	return h.Size(msg)
}

// Registry maps concrete message types to their handlers. Each Machine
// builds one at startup; lookups are single map hits keyed by dynamic
// type.
type Registry struct {
	handlers map[reflect.Type]*Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{handlers: make(map[reflect.Type]*Handler)}
}

// Register installs fn as the handler for messages of T's concrete type.
// size may be nil (DefaultMsgSize); fn may be nil for send-only types.
// Registering the same type twice panics: exactly one owner per message
// type is the point of the registry.
func Register[T any](r *Registry, name string, size func(T) int, fn func(src int, msg T)) {
	var zero T
	t := reflect.TypeOf(zero)
	if t == nil {
		panic("proto: Register needs a concrete (pointer) message type")
	}
	if _, dup := r.handlers[t]; dup {
		panic("proto: duplicate handler for " + t.String())
	}
	h := &Handler{
		Name:         name,
		RecvCounter:  "msg " + name,
		SentCounter:  "sent " + name,
		BytesCounter: "wire " + name,
	}
	if fn != nil {
		h.Fn = func(src int, msg interface{}) { fn(src, msg.(T)) }
	}
	if size != nil {
		h.Size = func(msg interface{}) int { return size(msg.(T)) }
	}
	r.handlers[t] = h
}

// RegisterPriority is Register for message types that must bypass send
// coalescing (see Handler.Priority).
func RegisterPriority[T any](r *Registry, name string, size func(T) int, fn func(src int, msg T)) {
	Register(r, name, size, fn)
	var zero T
	r.handlers[reflect.TypeOf(zero)].Priority = true
}

// Lookup returns the handler registered for msg's concrete type, or nil.
func (r *Registry) Lookup(msg interface{}) *Handler {
	return r.handlers[reflect.TypeOf(msg)]
}

// Handles reports whether msg's type has a receive handler (a send-only
// registration does not count).
func (r *Registry) Handles(msg interface{}) bool {
	h := r.Lookup(msg)
	return h != nil && h.Fn != nil
}

// Len returns the number of registered types.
func (r *Registry) Len() int { return len(r.handlers) }

// Each calls fn for every registered handler (iteration order is
// unspecified). The transport uses it to pre-resolve counter cells.
func (r *Registry) Each(fn func(h *Handler)) {
	for _, h := range r.handlers {
		fn(h)
	}
}

// WireMessages returns one sample value of every top-level message type
// this package defines for the reliable transport. The registry-
// completeness test asserts a machine registers a handler for each.
func WireMessages() []interface{} {
	return []interface{}{
		// Transaction protocol (Table 2).
		&LockReply{}, &ValidateReq{}, &ValidateReply{},
		// Transaction state recovery (§5.3).
		&NeedRecovery{}, &FetchTxState{}, &SendTxState{},
		&ReplicateTxState{}, &ReplicateTxStateAck{},
		&RecoveryVote{}, &RequestVote{},
		&CommitRecovery{}, &AbortRecovery{},
		&RecoveryDecisionAck{}, &TruncateRecovery{},
		// Leases over the reliable transport (LeaseRPC variant, §5.1).
		&LeaseRequest{}, &LeaseGrant{},
		// Reconfiguration (§5.2).
		&NewConfig{}, &NewConfigAck{}, &NewConfigCommit{},
		&RegionsActive{}, &AllRegionsActive{}, &BlockHeaderSync{},
		// Region allocation (§3).
		&AllocRegionPrepare{}, &AllocRegionPrepared{}, &AllocRegionCommit{},
		&MappingResp{},
		// State-integrity auditing.
		&AuditSnap{}, &AuditSnapReply{}, &AuditObjectsReq{},
		&AuditObjectsReply{}, &AuditRepair{}, &AuditRepairDone{},
	}
}

// RPCBodies returns one sample of every request type this package defines
// for the request/response envelope transport.
func RPCBodies() []interface{} {
	return []interface{}{&ValidateReq{}, &MappingReq{}, &AllocRegionReq{}}
}
