package proto

// This file defines the message types of Table 2 plus the lease,
// reconfiguration and region-allocation control messages of §3 and §5.
// Messages travel over the simulated reliable transport as values; only log
// records (proto.go) need binary encoding because they live in NVRAM.

// LockReply reports whether a primary managed to lock all objects named in
// a LOCK record (Table 2).
type LockReply struct {
	Tx TxID
	OK bool
}

// ValidateReq carries read-set addresses and versions for validation over
// RPC, used when a primary holds more than tr objects read by the
// transaction (§4 step 2; Table 2's VALIDATE message).
type ValidateReq struct {
	Tx       TxID
	Addrs    []Addr
	Versions []uint64
}

// ValidateReply reports the outcome of RPC validation.
type ValidateReply struct {
	Tx TxID
	OK bool
}

// Saw bits summarize which record types a replica holds for a transaction;
// the region's vote is computed over what *any* replica saw (§5.3 step 6).
const (
	SawLock uint8 = 1 << iota
	SawCommitBackup
	SawCommitPrimary
	SawAbort
	SawCommitRecovery
	SawAbortRecovery
)

// TxSeen pairs a recovering transaction with the record types the sending
// replica has for it.
type TxSeen struct {
	Tx  TxID
	Saw uint8
}

// NeedRecovery is sent by a backup to the primary of a region with the
// recovering transactions that updated the region (§5.3 step 3), annotated
// with which records the backup holds so the primary can both vote over
// all replicas' knowledge and fetch records it is missing.
type NeedRecovery struct {
	Config uint64
	Region uint32
	Txs    []TxSeen
}

// FetchTxState asks a backup for the log records of recovering
// transactions the primary is missing (§5.3 step 4).
type FetchTxState struct {
	Config uint64
	Region uint32
	TxIDs  []TxID
}

// SendTxState answers FetchTxState with the contents of the lock record.
type SendTxState struct {
	Config uint64
	Region uint32
	Tx     TxID
	Lock   *Record
}

// ReplicateTxState pushes a transaction's lock record from the primary to
// a backup that is missing it (§5.3 step 5).
type ReplicateTxState struct {
	Config uint64
	Region uint32
	Tx     TxID
	Lock   *Record
}

// ReplicateTxStateAck confirms a backup stored the replicated record.
type ReplicateTxStateAck struct {
	Config uint64
	Region uint32
	Tx     TxID
}

// RecoveryVote is a region primary's vote on a recovering transaction
// (§5.3 step 6).
type RecoveryVote struct {
	Config  uint64
	Region  uint32
	Tx      TxID
	Regions []uint32 // regions modified by the transaction
	Vote    Vote
}

// RequestVote is the coordinator's explicit vote request to primaries that
// have not voted within the timeout (§5.3 step 6).
type RequestVote struct {
	Config uint64
	Tx     TxID
	Region uint32
}

// CommitRecovery tells participant replicas to commit a recovering
// transaction: processed like COMMIT-PRIMARY at primaries and
// COMMIT-BACKUP at backups (§5.3 step 7).
type CommitRecovery struct {
	Config uint64
	Tx     TxID
}

// AbortRecovery aborts a recovering transaction at a replica.
type AbortRecovery struct {
	Config uint64
	Tx     TxID
}

// RecoveryDecisionAck confirms a replica processed CommitRecovery or
// AbortRecovery.
type RecoveryDecisionAck struct {
	Config uint64
	Region uint32
	Tx     TxID
}

// TruncateRecovery is sent after the coordinator has collected all
// decision acks (§5.3 step 7).
type TruncateRecovery struct {
	Config uint64
	Tx     TxID
}

// --- Lease protocol (§5.1) ---

// LeaseRequest asks the CM (or, from the CM, a member) for a lease grant;
// leases use the 3-way handshake: request → grant+request → grant.
type LeaseRequest struct {
	Config uint64
	// Grant piggybacks a grant in the CM's combined grant+request message.
	Grant bool
}

// LeaseGrant completes the handshake.
type LeaseGrant struct {
	Config uint64
}

// --- Reconfiguration protocol (§5.2) ---

// RegionMap describes one region's placement: the first element is the
// primary, the rest are backups.
type RegionMap struct {
	Region   uint32
	Replicas []uint16 // machine ids
	// LastPrimaryChange and LastReplicaChange are the configuration ids of
	// the last primary/any-replica change, used to identify recovering
	// transactions (§5.3 step 3).
	LastPrimaryChange uint64
	LastReplicaChange uint64
	// Size is the region's byte size, so new replicas can allocate.
	Size int
}

// Config is the configuration tuple ⟨i, S, F, CM⟩ of §3.
type Config struct {
	ID       uint64
	Machines []uint16
	// Domains maps machine → failure domain.
	Domains map[uint16]int
	CM      uint16
}

// Member reports whether machine m is in the configuration.
func (c *Config) Member(m uint16) bool {
	for _, x := range c.Machines {
		if x == m {
			return true
		}
	}
	return false
}

// NewConfig is the CM's configuration push (§5.2 step 5): the new
// configuration plus all region mappings. It also acts as a lease request
// from a new CM.
type NewConfig struct {
	Config  Config
	Regions []RegionMap
}

// NewConfigAck acknowledges NewConfig (and grants/requests leases when the
// CM changed).
type NewConfigAck struct {
	ConfigID uint64
}

// NewConfigCommit commits the configuration once all members acked and old
// leases have expired (§5.2 step 7); it also acts as a lease grant and
// triggers log draining.
type NewConfigCommit struct {
	ConfigID uint64
}

// RegionsActive tells the CM all regions this machine is primary for are
// active again (§5.4).
type RegionsActive struct {
	ConfigID uint64
}

// AllRegionsActive broadcasts that every region is active; data recovery
// for new backups may begin (§5.4).
type AllRegionsActive struct {
	ConfigID uint64
}

// BlockHeaderSync carries allocator block headers from a new primary to
// backups right after reconfiguration (§5.5).
type BlockHeaderSync struct {
	ConfigID uint64
	Region   uint32
	// Headers maps block index → object size class of the slab.
	Headers map[int]int
}

// --- Region allocation (§3) ---

// AllocRegionReq asks the CM for a new region, optionally co-located with
// a target region (locality hint).
type AllocRegionReq struct {
	Size     int
	Locality uint32 // 0 = none; region id to co-locate with
	HasHint  bool
}

// AllocRegionPrepare is the CM→replica prepare of the two-phase region
// allocation protocol.
type AllocRegionPrepare struct {
	Region uint32
	Size   int
}

// AllocRegionPrepared is the replica's success report.
type AllocRegionPrepared struct {
	Region uint32
	OK     bool
}

// AllocRegionCommit commits the mapping at the replicas.
type AllocRegionCommit struct {
	Region uint32
	Map    RegionMap
}

// AllocRegionResp returns the new region's mapping to the requester.
type AllocRegionResp struct {
	OK  bool
	Map RegionMap
}

// MappingReq fetches a region's mapping on demand (cache miss).
type MappingReq struct {
	Region uint32
}

// MappingResp answers MappingReq.
type MappingResp struct {
	OK  bool
	Map RegionMap
}
