package stats

import (
	"math"
	"testing"
	"testing/quick"

	"farm/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Median() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i * 1000))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 100000 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 50000 || mean > 51000 {
		t.Fatalf("mean = %v, want ~50500", mean)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Record(sim.Time(i))
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		got := float64(h.Percentile(p))
		want := p / 100 * 10000
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("p%v = %v, want ~%v", p, got, want)
		}
	}
	if h.Percentile(0) != 1 || h.Percentile(100) != 10000 {
		t.Errorf("extremes: %v %v", h.Percentile(0), h.Percentile(100))
	}
}

// TestHistogramSummarize pins the Summary snapshot to the histogram's own
// accessors (the perf report serializes Summaries, so they must agree)
// and requires the empty histogram to summarize to the zero value.
func TestHistogramSummarize(t *testing.T) {
	h := NewHistogram()
	if s := h.Summarize(); s != (Summary{}) {
		t.Fatalf("empty summary not zero: %+v", s)
	}
	for i := 1; i <= 1000; i++ {
		h.Record(sim.Time(i * 37))
	}
	s := h.Summarize()
	if s.Count != h.Count() || s.P50 != h.Median() || s.P99 != h.P99() ||
		s.Mean != h.Mean() || s.Max != h.Max() {
		t.Fatalf("summary disagrees with accessors: %+v vs n=%d p50=%v p99=%v mean=%v max=%v",
			s, h.Count(), h.Median(), h.P99(), h.Mean(), h.Max())
	}
}

func TestHistogramMergeEqualsCombinedRecording(t *testing.T) {
	a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 1; i < 500; i++ {
		v := sim.Time(i * i)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), both.Count())
	}
	for _, p := range []float64{25, 50, 75, 99} {
		if a.Percentile(p) != both.Percentile(p) {
			t.Errorf("p%v: merged %v != combined %v", p, a.Percentile(p), both.Percentile(p))
		}
	}
}

func TestHistogramResolutionBound(t *testing.T) {
	// Property: a histogram with a single repeated value reports a median
	// within the documented ~4.4% relative error.
	f := func(raw uint32) bool {
		v := sim.Time(raw%1000000 + 1)
		h := NewHistogram()
		for i := 0; i < 10; i++ {
			h.Record(v)
		}
		got := float64(h.Median())
		return math.Abs(got-float64(v))/float64(v) <= 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(55)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(10)
	if h.Min() != 10 {
		t.Fatalf("min after reset = %v", h.Min())
	}
}

func TestTimelineSeries(t *testing.T) {
	tl := NewTimeline(sim.Millisecond)
	tl.Add(500*sim.Microsecond, 1)  // bucket 0
	tl.Add(1500*sim.Microsecond, 2) // bucket 1
	tl.Add(3500*sim.Microsecond, 4) // bucket 3; bucket 2 empty
	times, vals := tl.Series()
	if len(times) != 4 {
		t.Fatalf("series length %d, want 4 (gap filled)", len(times))
	}
	want := []float64{1, 2, 0, 4}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	if times[3] != 3*sim.Millisecond {
		t.Fatalf("times[3] = %v", times[3])
	}
}

func TestTimelineWindowAverageAndRecoveryDetection(t *testing.T) {
	tl := NewTimeline(sim.Millisecond)
	// Steady 100/ms until 35 ms, dip, then recover at 80 ms.
	for ms := 0; ms < 120; ms++ {
		v := 100.0
		if ms >= 35 && ms < 80 {
			v = 5
		}
		tl.Add(sim.Time(ms)*sim.Millisecond+sim.Microsecond, v)
	}
	pre := tl.WindowAverage(0, 35*sim.Millisecond)
	if pre != 100 {
		t.Fatalf("pre-failure average = %v", pre)
	}
	at, ok := tl.FirstBucketAtLeast(36*sim.Millisecond, 0.8*pre)
	if !ok || at != 80*sim.Millisecond {
		t.Fatalf("recovery detected at %v ok=%v, want 80ms", at, ok)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("rdma_read", 3)
	c.Inc("rdma_write", 1)
	c.Inc("rdma_read", 2)
	if c.Get("rdma_read") != 5 {
		t.Fatalf("rdma_read = %d", c.Get("rdma_read"))
	}
	snap := c.Snapshot()
	c.Inc("rdma_read", 10)
	d := c.Diff(snap)
	if d["rdma_read"] != 10 || len(d) != 1 {
		t.Fatalf("diff = %v", d)
	}
	if s := c.String(); s != "rdma_read=15 rdma_write=1" {
		t.Fatalf("String() = %q", s)
	}
	c.Reset()
	if c.Get("rdma_read") != 0 {
		t.Fatal("reset failed")
	}
}
