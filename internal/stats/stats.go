// Package stats provides the measurement primitives used by the benchmark
// harness: log-bucketed latency histograms with percentile queries,
// fixed-interval throughput timelines (the paper's recovery figures are
// throughput aggregated at 1 ms intervals), and labelled counters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"farm/internal/sim"
)

// Histogram records durations in logarithmic buckets (~2% resolution) so a
// multi-million-sample run costs constant memory. Values are sim.Time
// nanoseconds.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    sim.Time
	max    sim.Time
}

// bucketsPerOctave controls resolution: 16 sub-buckets per power of two
// bounds relative error to ~4.4%.
const bucketsPerOctave = 16

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketOf(v sim.Time) int {
	if v < 1 {
		v = 1
	}
	f := float64(v)
	exp := math.Log2(f)
	return int(exp * bucketsPerOctave)
}

func bucketValue(b int) sim.Time {
	return sim.Time(math.Exp2(float64(b)/bucketsPerOctave + 0.5/bucketsPerOctave))
}

// Record adds one observation.
func (h *Histogram) Record(v sim.Time) {
	b := bucketOf(v)
	if b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() sim.Time {
	if h.total == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.total))
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() sim.Time {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() sim.Time { return h.max }

// Percentile returns the value at quantile p in [0,100]. Within a bucket it
// returns the bucket's geometric midpoint, except the exact min/max at the
// extremes.
func (h *Histogram) Percentile(p float64) sim.Time {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	target := uint64(math.Ceil(float64(h.total) * p / 100))
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			v := bucketValue(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Median is Percentile(50).
func (h *Histogram) Median() sim.Time { return h.Percentile(50) }

// P99 is Percentile(99).
func (h *Histogram) P99() sim.Time { return h.Percentile(99) }

// Summary is a plain-value snapshot of a histogram's headline statistics,
// in the form benchmark reports serialize (all durations sim.Time).
type Summary struct {
	Count uint64
	P50   sim.Time
	P99   sim.Time
	Mean  sim.Time
	Max   sim.Time
}

// Summarize snapshots the distribution; a zero Summary means no samples.
func (h *Histogram) Summarize() Summary {
	if h.total == 0 {
		return Summary{}
	}
	return Summary{Count: h.total, P50: h.Median(), P99: h.P99(), Mean: h.Mean(), Max: h.Max()}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	h.counts = h.counts[:0]
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d min=%v p50=%v p99=%v max=%v mean=%v",
		h.total, h.Min(), h.Median(), h.P99(), h.Max(), h.Mean())
}

// Timeline accumulates event counts into fixed-width virtual-time buckets,
// reproducing the paper's "throughput aggregated at 1 ms intervals" plots.
type Timeline struct {
	Interval sim.Time
	buckets  map[int64]float64
}

// NewTimeline returns a timeline with the given bucket width.
func NewTimeline(interval sim.Time) *Timeline {
	if interval <= 0 {
		interval = sim.Millisecond
	}
	return &Timeline{Interval: interval, buckets: make(map[int64]float64)}
}

// Add records weight at time t.
func (tl *Timeline) Add(t sim.Time, weight float64) {
	tl.buckets[int64(t/tl.Interval)] += weight
}

// Series returns (bucket start time, count) pairs in time order.
func (tl *Timeline) Series() ([]sim.Time, []float64) {
	if len(tl.buckets) == 0 {
		return nil, nil
	}
	keys := make([]int64, 0, len(tl.buckets))
	for k := range tl.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	lo, hi := keys[0], keys[len(keys)-1]
	times := make([]sim.Time, 0, hi-lo+1)
	vals := make([]float64, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		times = append(times, sim.Time(k)*tl.Interval)
		vals = append(vals, tl.buckets[k])
	}
	return times, vals
}

// RatePerSecond converts a bucket count to an events/second rate.
func (tl *Timeline) RatePerSecond(count float64) float64 {
	return count / tl.Interval.Seconds()
}

// WindowAverage returns the mean bucket count in [from, to).
func (tl *Timeline) WindowAverage(from, to sim.Time) float64 {
	lo, hi := int64(from/tl.Interval), int64(to/tl.Interval)
	if hi <= lo {
		return 0
	}
	var sum float64
	for k := lo; k < hi; k++ {
		sum += tl.buckets[k]
	}
	return sum / float64(hi-lo)
}

// FirstBucketAtLeast returns the start of the first bucket at or after
// "from" whose count reaches threshold, and whether one was found.
func (tl *Timeline) FirstBucketAtLeast(from sim.Time, threshold float64) (sim.Time, bool) {
	times, vals := tl.Series()
	for i, t := range times {
		if t >= from && vals[i] >= threshold {
			return t, true
		}
	}
	return 0, false
}

// LatencySet is a collection of named latency histograms, created lazily
// on first record. The message transport keeps one histogram per message
// type (delivery latency from enqueue to handler dispatch).
type LatencySet struct {
	m map[string]*Histogram
}

// NewLatencySet returns an empty set.
func NewLatencySet() *LatencySet { return &LatencySet{m: make(map[string]*Histogram)} }

// Record adds one observation to the named histogram.
func (ls *LatencySet) Record(name string, v sim.Time) {
	h := ls.m[name]
	if h == nil {
		h = NewHistogram()
		ls.m[name] = h
	}
	h.Record(v)
}

// Get returns the named histogram, or nil if nothing was recorded under
// that name.
func (ls *LatencySet) Get(name string) *Histogram { return ls.m[name] }

// Names returns the recorded names in sorted order.
func (ls *LatencySet) Names() []string {
	names := make([]string, 0, len(ls.m))
	for k := range ls.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders one summary line per name.
func (ls *LatencySet) String() string {
	var b strings.Builder
	for i, n := range ls.Names() {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s: %s", n, ls.m[n].String())
	}
	return b.String()
}

// Counters is a set of named monotonic counters, used to account message
// and RDMA-operation counts (the unit of the paper's §4 analysis).
//
// Counters are stored as cells (pointers): hot paths that increment the
// same counter millions of times per run resolve the name once with Cell
// and then bump the cell directly, skipping the per-increment map hash.
type Counters struct {
	m map[string]*uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]*uint64)} }

// Cell returns the addressable cell of the named counter, creating it at
// zero if needed. Cells stay valid across Reset (which zeroes in place).
func (c *Counters) Cell(name string) *uint64 {
	p := c.m[name]
	if p == nil {
		p = new(uint64)
		c.m[name] = p
	}
	return p
}

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta uint64) { *c.Cell(name) += delta }

// Get returns the named counter's value.
func (c *Counters) Get(name string) uint64 {
	if p := c.m[name]; p != nil {
		return *p
	}
	return 0
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = *v
	}
	return out
}

// Diff returns counters minus a previous snapshot.
func (c *Counters) Diff(prev map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for k, v := range c.m {
		if d := *v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Reset zeroes all counters in place; cells handed out by Cell stay valid.
func (c *Counters) Reset() {
	for _, p := range c.m {
		*p = 0
	}
}

// String renders nonzero counters sorted by name.
func (c *Counters) String() string {
	names := make([]string, 0, len(c.m))
	for k, v := range c.m {
		if *v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, *c.m[n])
	}
	return b.String()
}
