package baseline

import (
	"farm/internal/sim"
	"farm/internal/stats"
)

// This file implements a compact Silo-style single-machine in-memory OCC
// engine (Tu et al., SOSP'13), the paper's single-machine comparison point
// (§6.3: "FaRM's throughput is 17x higher than Silo without logging, and
// its latency at this throughput level is 128x better than Silo with
// logging"; §7: recovery from storage takes orders of magnitude longer).
//
// The engine runs on the same simulation substrate: worker threads with
// per-operation CPU costs, epoch-based group commit, and optional logging
// to an SSD model with batching — which is exactly what makes Silo's
// latency long: committed transactions wait for their epoch's log batch.

// SiloConfig sizes the engine.
type SiloConfig struct {
	Threads int
	// CPUAccess is the cost of one record access (read or write).
	CPUAccess sim.Time
	// CPUCommit is the commit-time overhead (validation, TID assignment).
	CPUCommit sim.Time
	// Logging enables SSD logging; EpochInterval is the group-commit
	// epoch (40 ms in Silo); SSDLatency per batch write.
	Logging       bool
	EpochInterval sim.Time
	SSDLatency    sim.Time
	Seed          uint64
}

// DefaultSilo mirrors Silo's published setup, scaled to this simulator's
// CPU calibration.
func DefaultSilo(threads int) SiloConfig {
	return SiloConfig{
		Threads:       threads,
		CPUAccess:     250 * sim.Nanosecond,
		CPUCommit:     800 * sim.Nanosecond,
		EpochInterval: 40 * sim.Millisecond,
		SSDLatency:    500 * sim.Microsecond,
		Seed:          1,
	}
}

// Silo is the engine: records are versioned counters; transactions touch k
// records with OCC semantics. Conflicts are modelled by version CAS on the
// records, as in the real system.
type Silo struct {
	cfg  SiloConfig
	eng  *sim.Engine
	pool *sim.ThreadPool

	versions []uint64
	locks    []bool

	Latency   *stats.Histogram
	Committed uint64
	Aborted   uint64

	epochWaiters []func()
}

// NewSilo builds an engine with n records.
func NewSilo(cfg SiloConfig, n int) *Silo {
	eng := sim.NewEngine(cfg.Seed)
	s := &Silo{
		cfg:      cfg,
		eng:      eng,
		pool:     sim.NewThreadPool(eng, cfg.Threads, "silo"),
		versions: make([]uint64, n),
		locks:    make([]bool, n),
		Latency:  stats.NewHistogram(),
	}
	if cfg.Logging {
		s.epochTick()
	}
	return s
}

// Eng exposes the engine for driving.
func (s *Silo) Eng() *sim.Engine { return s.eng }

func (s *Silo) epochTick() {
	s.eng.After(s.cfg.EpochInterval, func() {
		waiters := s.epochWaiters
		s.epochWaiters = nil
		// One batched SSD write persists the epoch.
		s.eng.After(s.cfg.SSDLatency, func() {
			for _, w := range waiters {
				w()
			}
		})
		s.epochTick()
	})
}

// Txn runs one transaction touching the given records (reads first, then
// writes at commit). done(ok) reports the OCC outcome; with logging on,
// completion waits for the epoch's group commit, as in Silo.
func (s *Silo) Txn(thread int, reads, writes []int, done func(ok bool)) {
	begin := s.eng.Now()
	cost := sim.Time(len(reads)+len(writes))*s.cfg.CPUAccess + s.cfg.CPUCommit
	observed := make([]uint64, len(reads))
	s.pool.ByIndex(thread).Do(cost, func() {
		for i, r := range reads {
			observed[i] = s.versions[r]
		}
		// Commit: lock writes, validate reads, install.
		for _, w := range writes {
			if s.locks[w] {
				s.Aborted++
				done(false)
				return
			}
		}
		for i, r := range reads {
			if s.versions[r] != observed[i] {
				s.Aborted++
				done(false)
				return
			}
		}
		for _, w := range writes {
			s.locks[w] = true
		}
		// Install after a short lock-hold window (models the write phase).
		s.eng.After(s.cfg.CPUCommit, func() {
			for _, w := range writes {
				s.versions[w]++
				s.locks[w] = false
			}
			finish := func() {
				s.Committed++
				s.Latency.Record(s.eng.Now() - begin)
				done(true)
			}
			if s.cfg.Logging {
				s.epochWaiters = append(s.epochWaiters, finish)
				return
			}
			finish()
		})
	})
}

// RunUniform drives a closed-loop uniform workload: each of the threads
// keeps one transaction outstanding doing nReads reads + nWrites writes
// over the record space; returns throughput (txn/s).
func (s *Silo) RunUniform(nReads, nWrites int, duration sim.Time) float64 {
	rng := sim.NewRand(s.cfg.Seed + 5)
	n := len(s.versions)
	for th := 0; th < s.cfg.Threads; th++ {
		th := th
		var loop func()
		loop = func() {
			reads := make([]int, nReads)
			writes := make([]int, nWrites)
			for i := range reads {
				reads[i] = rng.Intn(n)
			}
			for i := range writes {
				writes[i] = rng.Intn(n)
			}
			s.Txn(th, reads, writes, func(bool) { loop() })
		}
		loop()
	}
	s.eng.RunUntil(duration)
	return float64(s.Committed) / duration.Seconds()
}
