// Package baseline implements the comparison systems the paper evaluates
// FaRM against: the RDMA-vs-RPC read microbenchmark of Figure 2, a
// Spanner-style commit protocol (2PC over Paxos-replicated participants,
// §4's message-count analysis), and a Silo-style single-machine in-memory
// OCC engine (§6.3, §7).
package baseline

import (
	"fmt"

	"farm/internal/fabric"
	"farm/internal/nvram"
	"farm/internal/sim"
)

// ReadBenchConfig drives the Figure 2 experiment: every machine reads
// randomly chosen objects of a given size from the other machines, either
// with one-sided RDMA reads (no remote CPU) or with an RPC implemented as
// request + response messages (CPU at both ends). Both become CPU bound,
// which is the paper's point: the RPC spends ~4 message handlings of CPU
// per op where RDMA spends ~1 verb issue.
type ReadBenchConfig struct {
	Machines int
	Threads  int
	// CPUVerb is the worker cost to issue a one-sided verb; CPUMsg the
	// cost to send or handle one message (same calibration as core).
	CPUVerb sim.Time
	CPUMsg  sim.Time
	// CPUPerByte models per-byte handling cost (copies, cache pollution) —
	// why larger transfers lower the op rate even when CPU bound.
	CPUPerByte sim.Time
	Fabric     fabric.Options
	Seed       uint64
}

// DefaultReadBench mirrors the paper's per-machine setup (30 worker
// threads); the cluster is scaled by the caller.
func DefaultReadBench() ReadBenchConfig {
	return ReadBenchConfig{
		Machines:   10,
		Threads:    30,
		CPUVerb:    2500 * sim.Nanosecond,
		CPUMsg:     2500 * sim.Nanosecond,
		CPUPerByte: sim.Nanosecond,
		Seed:       1,
	}
}

// ReadBenchResult is one point of Figure 2 (ops/µs/machine).
type ReadBenchResult struct {
	Size int
	RDMA float64
	RPC  float64
}

type rpcReq struct {
	From   fabric.MachineID
	Size   int
	Thread int
}

type rpcResp struct {
	Thread int
	Data   []byte
}

// RunReadBench measures both transports at one transfer size.
func RunReadBench(cfg ReadBenchConfig, size int, duration sim.Time) ReadBenchResult {
	return ReadBenchResult{
		Size: size,
		RDMA: runReadMode(cfg, size, duration, true),
		RPC:  runReadMode(cfg, size, duration, false),
	}
}

func runReadMode(cfg ReadBenchConfig, size int, duration sim.Time, rdma bool) float64 {
	eng := sim.NewEngine(cfg.Seed)
	net := fabric.NewNetwork(eng, cfg.Fabric)
	type machine struct {
		nic     *fabric.NIC
		pool    *sim.ThreadPool
		waiters [][]func() // per-thread RPC continuation queues (FIFO)
	}
	const region = 1
	machines := make([]*machine, cfg.Machines)
	perByte := sim.Time(size) * cfg.CPUPerByte
	for i := range machines {
		store := nvram.NewStore()
		if _, err := store.Allocate(region, 1<<20); err != nil {
			panic(err)
		}
		m := &machine{
			nic:     net.AddMachine(fabric.MachineID(i), store),
			pool:    sim.NewThreadPool(eng, cfg.Threads, fmt.Sprintf("rb%d", i)),
			waiters: make([][]func(), cfg.Threads),
		}
		machines[i] = m
		m.nic.SetMessageHandler(func(src fabric.MachineID, msg interface{}) {
			switch v := msg.(type) {
			case *rpcReq:
				// Handle the request, then send the response: two CPU
				// charges at the server.
				m.pool.Dispatch(cfg.CPUMsg+perByte, func() {
					m.pool.Dispatch(cfg.CPUMsg, func() {
						m.nic.Send(v.From, &rpcResp{Thread: v.Thread, Data: make([]byte, v.Size)})
					})
				})
			case *rpcResp:
				if q := m.waiters[v.Thread]; len(q) > 0 {
					m.waiters[v.Thread] = q[1:]
					q[0]()
				}
			}
		})
	}

	completed := uint64(0)
	warm := duration / 5
	// Several outstanding ops per thread keep the workers CPU bound (the
	// paper's event loops pipeline verbs; with one outstanding op the
	// wire round trip would dominate instead).
	const pipeline = 4
	for id, m := range machines {
		id, m := id, m
		rng := sim.NewRand(cfg.Seed + uint64(id)*97 + 3)
		for th := 0; th < cfg.Threads; th++ {
			th := th
			var loop func()
			loop = func() {
				dst := fabric.MachineID((id + 1 + rng.Intn(cfg.Machines-1)) % cfg.Machines)
				off := rng.Intn((1<<20)/size) * size
				finish := func() {
					if eng.Now() > warm {
						completed++
					}
					loop()
				}
				if rdma {
					m.pool.ByIndex(th).Do(cfg.CPUVerb+perByte, func() {
						m.nic.Read(dst, region, off, size, func([]byte, error) { finish() })
					})
					return
				}
				m.pool.ByIndex(th).Do(cfg.CPUMsg, func() {
					// Response handling costs CPU on the requester too.
					m.waiters[th] = append(m.waiters[th],
						func() { m.pool.ByIndex(th).Do(cfg.CPUMsg+perByte, finish) })
					m.nic.Send(dst, &rpcReq{From: fabric.MachineID(id), Size: size, Thread: th})
				})
			}
			for k := 0; k < pipeline; k++ {
				loop()
			}
		}
	}
	eng.RunUntil(duration)
	measured := duration - warm
	return float64(completed) / measured.Micros() / float64(cfg.Machines)
}
