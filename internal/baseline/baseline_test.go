package baseline

import (
	"testing"

	"farm/internal/sim"
)

func TestReadBenchRDMAbeatsRPC(t *testing.T) {
	cfg := DefaultReadBench()
	cfg.Machines = 6
	cfg.Threads = 10
	res := RunReadBench(cfg, 64, 3*sim.Millisecond)
	if res.RDMA <= 0 || res.RPC <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	ratio := res.RDMA / res.RPC
	// Figure 2's CPU-bound regime: gap ≈ 4x (we accept 2.5–6).
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("RDMA/RPC ratio = %.2f (rdma=%.2f rpc=%.2f), want ~4", ratio, res.RDMA, res.RPC)
	}
}

func TestReadBenchSizeDependence(t *testing.T) {
	cfg := DefaultReadBench()
	cfg.Machines = 4
	cfg.Threads = 8
	small := RunReadBench(cfg, 16, 2*sim.Millisecond)
	large := RunReadBench(cfg, 2048, 2*sim.Millisecond)
	if large.RDMA >= small.RDMA {
		t.Fatalf("RDMA rate should fall with size: %v vs %v", small.RDMA, large.RDMA)
	}
}

func TestSpannerMessageCountMatchesFormula(t *testing.T) {
	cfg := DefaultSpanner()
	for _, p := range []int{1, 2, 3} {
		res := MeasureSpannerCommit(cfg, p)
		if res.Participants != p {
			t.Fatalf("participants = %d", res.Participants)
		}
		// The measured count should be within ~2x of 4P(2f+1): the model
		// counts accepts and acks individually and logs a BEGIN round,
		// where the paper's formula counts coarser "round trips".
		want := SpannerMessagesFormula(p, cfg.F)
		lo, hi := want*6/10, want*17/10
		if int(res.Messages) < lo || int(res.Messages) > hi {
			t.Fatalf("p=%d messages=%d want ≈%d", p, res.Messages, want)
		}
		if res.Latency <= 0 {
			t.Fatal("no latency measured")
		}
	}
}

func TestProtocolFormulas(t *testing.T) {
	// §4: FaRM Pw(f+3) writes vs Spanner 4P(2f+1) messages. For Pw=P=2,
	// f=1: FaRM 8 vs Spanner 24 — FaRM wins by 3x.
	if FaRMWritesFormula(2, 1) != 8 {
		t.Fatal("FaRM formula")
	}
	if SpannerMessagesFormula(2, 1) != 24 {
		t.Fatal("Spanner formula")
	}
	// §7: the SOSP'15 protocol sends up to 44% fewer messages than
	// NSDI'14. With f=2, Pw=1: old = 5+4 = 9, new = 5 → 44% fewer.
	oldMsgs := NSDI14MessagesFormula(1, 2)
	newMsgs := FaRMWritesFormula(1, 2)
	saving := float64(oldMsgs-newMsgs) / float64(oldMsgs)
	if saving < 0.43 || saving > 0.45 {
		t.Fatalf("NSDI'14 saving = %.2f, want ≈0.44", saving)
	}
}

func TestSpannerLatencyScalesWithParticipants(t *testing.T) {
	cfg := DefaultSpanner()
	r1 := MeasureSpannerCommit(cfg, 1)
	r3 := MeasureSpannerCommit(cfg, 3)
	if r3.Messages <= r1.Messages {
		t.Fatalf("messages did not grow: %d vs %d", r1.Messages, r3.Messages)
	}
}

func TestSiloCommitsAndConflicts(t *testing.T) {
	s := NewSilo(DefaultSilo(8), 1000)
	tput := s.RunUniform(2, 2, 20*sim.Millisecond)
	if tput < 100000 {
		t.Fatalf("silo throughput %.0f too low", tput)
	}
	if s.Aborted == 0 {
		t.Log("no aborts (ok for low contention)")
	}
	if s.Latency.Median() <= 0 {
		t.Fatal("no latency")
	}
}

func TestSiloLoggingLatencyGap(t *testing.T) {
	// Silo with logging: commit latency is dominated by the epoch (group
	// commit), which is the paper's "latency 128x better" comparison.
	fast := NewSilo(DefaultSilo(4), 500)
	fastTput := fast.RunUniform(2, 2, 50*sim.Millisecond)

	cfg := DefaultSilo(4)
	cfg.Logging = true
	logged := NewSilo(cfg, 500)
	loggedTput := logged.RunUniform(2, 2, 200*sim.Millisecond)

	if fastTput <= 0 || loggedTput <= 0 {
		t.Fatal("no throughput")
	}
	if logged.Latency.Median() < 50*fast.Latency.Median() {
		t.Fatalf("logged latency %v vs unlogged %v: epoch group commit should dominate",
			logged.Latency.Median(), fast.Latency.Median())
	}
	if logged.Latency.Median() < 10*sim.Millisecond {
		t.Fatalf("logged median %v, want ≳ epoch/2", logged.Latency.Median())
	}
}
