package baseline

import (
	"fmt"

	"farm/internal/fabric"
	"farm/internal/nvram"
	"farm/internal/sim"
)

// This file implements the §4 comparison target: a Spanner-style commit —
// two-phase commit where the coordinator and every participant is a Paxos
// state machine with 2f+1 replicas, so each logical 2PC step costs a Paxos
// round (leader → 2f accepts → f acks). The paper's count: 4P(2f+1)
// messages per transaction versus FaRM's Pw(f+3) one-sided writes.

// SpannerConfig sizes the model.
type SpannerConfig struct {
	// Groups is the number of Paxos groups (each plays coordinator or
	// participant); F is the tolerated failures (2F+1 replicas per group).
	Groups int
	F      int
	CPUMsg sim.Time
	Fabric fabric.Options
	Seed   uint64
}

// DefaultSpanner matches FaRM's f=1-equivalent durability comparison in §4
// (f failures tolerated → 2f+1 Paxos replicas vs FaRM's f+1 copies).
func DefaultSpanner() SpannerConfig {
	return SpannerConfig{Groups: 4, F: 1, CPUMsg: 2500 * sim.Nanosecond, Seed: 1}
}

// SpannerResult reports one transaction's cost in the model.
type SpannerResult struct {
	Participants int
	Messages     uint64
	Latency      sim.Time
}

// spannerSim is a small cluster: Groups × (2F+1) machines; machine g*R+0
// is group g's leader.
type spannerSim struct {
	cfg   SpannerConfig
	eng   *sim.Engine
	net   *fabric.Network
	pools []*sim.ThreadPool
	nics  []*fabric.NIC
	// handlers keyed by message kind are installed per machine.
}

type paxosAccept struct {
	From  int
	Round uint64
}

type paxosAck struct {
	Round uint64
}

type twoPCMsg struct {
	Kind  string // "prepare", "prepared", "commit", "committed"
	From  int
	TxnID uint64
}

// NewSpannerSim builds the cluster.
func NewSpannerSim(cfg SpannerConfig) *spannerSim {
	s := &spannerSim{cfg: cfg, eng: sim.NewEngine(cfg.Seed)}
	s.net = fabric.NewNetwork(s.eng, cfg.Fabric)
	n := cfg.Groups * (2*cfg.F + 1)
	for i := 0; i < n; i++ {
		store := nvram.NewStore()
		s.nics = append(s.nics, s.net.AddMachine(fabric.MachineID(i), store))
		s.pools = append(s.pools, sim.NewThreadPool(s.eng, 4, fmt.Sprintf("sp%d", i)))
	}
	return s
}

func (s *spannerSim) replicas() int { return 2*s.cfg.F + 1 }

func (s *spannerSim) leader(group int) int { return group * s.replicas() }

// paxosRound replicates one state-machine operation in a group: leader
// sends accept to 2F followers and waits for F acks.
func (s *spannerSim) paxosRound(group int, cb func()) {
	leader := s.leader(group)
	acks := 0
	needed := s.cfg.F
	if needed == 0 {
		s.pools[leader].Dispatch(s.cfg.CPUMsg, cb)
		return
	}
	for r := 1; r < s.replicas(); r++ {
		follower := leader + r
		s.pools[leader].Dispatch(s.cfg.CPUMsg, func() {
			s.net.Counters.Inc("spanner_msg", 1)
			// Follower processes and acks.
			s.eng.After(s.net.Opts.WireLatency*2+2*s.cfg.CPUMsg, func() {
				s.net.Counters.Inc("spanner_msg", 1)
				s.pools[follower].Dispatch(s.cfg.CPUMsg, nil)
				acks++
				if acks == needed {
					cb()
				}
			})
		})
	}
}

// Commit runs one 2PC with the given participant groups (group 0 is the
// coordinator) and reports message count and latency.
func (s *spannerSim) Commit(participants []int, cb func(SpannerResult)) {
	start := s.eng.Now()
	snap := s.net.Counters.Snapshot()
	// Coordinator logs BEGIN via Paxos, then prepares all participants.
	s.paxosRound(0, func() {
		prepared := 0
		for _, g := range participants {
			g := g
			// prepare message leader→leader.
			s.net.Counters.Inc("spanner_msg", 1)
			s.eng.After(s.net.Opts.WireLatency+s.cfg.CPUMsg, func() {
				// Participant logs PREPARE via Paxos, replies PREPARED.
				s.paxosRound(g, func() {
					s.net.Counters.Inc("spanner_msg", 1)
					s.eng.After(s.net.Opts.WireLatency+s.cfg.CPUMsg, func() {
						prepared++
						if prepared < len(participants) {
							return
						}
						// Coordinator logs COMMIT via Paxos, then tells
						// participants, who log it via Paxos and ack.
						s.paxosRound(0, func() {
							committed := 0
							for range participants {
								s.net.Counters.Inc("spanner_msg", 1)
							}
							for _, g2 := range participants {
								g2 := g2
								s.eng.After(s.net.Opts.WireLatency+s.cfg.CPUMsg, func() {
									s.paxosRound(g2, func() {
										s.net.Counters.Inc("spanner_msg", 1)
										committed++
										if committed == len(participants) {
											diff := s.net.Counters.Diff(snap)
											cb(SpannerResult{
												Participants: len(participants),
												Messages:     diff["spanner_msg"],
												Latency:      s.eng.Now() - start,
											})
										}
									})
								})
							}
						})
					})
				})
			})
		}
	})
}

// MeasureSpannerCommit runs one transaction with p participant groups.
func MeasureSpannerCommit(cfg SpannerConfig, p int) SpannerResult {
	s := NewSpannerSim(cfg)
	var res SpannerResult
	done := false
	parts := make([]int, p)
	for i := range parts {
		parts[i] = (i % (cfg.Groups - 1)) + 1
	}
	s.Commit(parts, func(r SpannerResult) { res, done = r, true })
	for !done {
		if !s.eng.Step() {
			break
		}
	}
	return res
}

// SpannerMessagesFormula is the paper's analytic count: 4P(2f+1).
func SpannerMessagesFormula(p, f int) int { return 4 * p * (2*f + 1) }

// FaRMWritesFormula is FaRM's commit cost: Pw(f+3) one-sided writes
// (§4 "Performance").
func FaRMWritesFormula(pw, f int) int { return pw * (f + 3) }

// NSDI14MessagesFormula approximates the original FaRM protocol [16],
// which also sent LOCK messages to backups during the lock phase: relative
// to the SOSP'15 protocol it adds 2·Pw·f messages (lock + reply per
// backup), matching the paper's "up to 44% fewer messages" claim for
// typical f=2, Pw=1..3 shapes.
func NSDI14MessagesFormula(pw, f int) int {
	return FaRMWritesFormula(pw, f) + 2*pw*f
}
