package perf

import (
	"path/filepath"
	"reflect"
	"testing"

	"farm/internal/sim"
)

// TestScale100TATP is the headline scale gate: a 100-machine TATP cluster
// with 3200 closed-loop clients must set up, warm, and chew through a
// measured window without stalling — inside the ordinary test suite, not
// just the perf harness. The window is shorter than farm-perf's (this is
// a completion gate, not a measurement), and the run is skipped under the
// race detector: the simulator is single-goroutine, so race instrumenting
// a 100-machine run buys nothing except a many-fold slowdown.
func TestScale100TATP(t *testing.T) {
	if raceEnabled {
		t.Skip("100-machine scale run under -race: no concurrency to check, only slowdown")
	}
	if testing.Short() {
		t.Skip("100-machine scale run skipped in -short mode")
	}
	spec := PointSpec{Name: "tatp-100", Machines: 100, Threads: 8, Concurrency: 4,
		Subscribers: 10000, Regions: 12, Warm: sim.Millisecond, Measure: 2 * sim.Millisecond, Seed: 1}
	p, err := Run(spec)
	if err != nil {
		t.Fatalf("100-machine TATP run failed: %v", err)
	}
	if p.Machines != 100 || p.ClientThreads != 100*8*4 {
		t.Fatalf("spec not honored: %+v", p)
	}
	if p.Committed == 0 {
		t.Fatalf("100-machine cluster committed nothing: %+v", p)
	}
	if p.HostEvents == 0 || p.EventsPerSec <= 0 {
		t.Fatalf("no events measured: %+v", p)
	}
	t.Logf("tatp-100: %.0f events/sec, %d committed, %.2f allocs/event, %.1fs wall",
		p.EventsPerSec, p.Committed, p.AllocsPerEvent, p.WallSeconds)
}

// TestEngineAllocsPerEventIsZero pins the zero-alloc contract at the
// harness's own measurement point, so a regression fails `go test` even
// when nobody runs farm-perf.
func TestEngineAllocsPerEventIsZero(t *testing.T) {
	if got := EngineAllocsPerEvent(); got != 0 {
		t.Fatalf("engine steady-state allocs/event = %v, want 0", got)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := &Report{
		Schema:       SchemaVersion,
		GoVersion:    "go1.24.0",
		GeneratedBy:  "test",
		PeakMachines: 100,
		Points: []Point{{
			Name: "tatp-9", Workload: "tatp", Machines: 9, ClientThreads: 288,
			SimulatedMS: 10, WallSeconds: 1.5, HostEvents: 1e6,
			EventsPerSec: 666666, Committed: 1234, TxPerWallSec: 822.7,
			SimTxPerSec: 123400, AllocsPerEvent: 2.5, HeapMB: 64,
		}},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip changed report:\n  wrote %+v\n  read  %+v", r, got)
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Points: []Point{
		{Name: "a", EventsPerSec: 1000},
		{Name: "b", EventsPerSec: 500},
	}}
	ok := &Report{Points: []Point{
		{Name: "a", EventsPerSec: 950}, // -5%: inside a 10% threshold
		{Name: "b", EventsPerSec: 800}, // improvement
	}}
	if bad := Compare(base, ok, 0.10, 0.10); len(bad) != 0 {
		t.Fatalf("clean report flagged: %v", bad)
	}

	regressed := &Report{Points: []Point{
		{Name: "a", EventsPerSec: 850}, // -15%: beyond threshold
		{Name: "b", EventsPerSec: 500},
	}}
	if bad := Compare(base, regressed, 0.10, 0.10); len(bad) != 1 {
		t.Fatalf("want exactly the point-a regression, got: %v", bad)
	}

	missing := &Report{Points: []Point{{Name: "a", EventsPerSec: 1000}}}
	if bad := Compare(base, missing, 0.10, 0.10); len(bad) != 1 {
		t.Fatalf("want exactly the missing-b violation, got: %v", bad)
	}

	// The zero-alloc contract is enforced regardless of speed.
	leaky := &Report{EngineAllocsPerEvent: 0.5, Points: base.Points}
	if bad := Compare(base, leaky, 0.10, 0.10); len(bad) != 1 {
		t.Fatalf("want exactly the allocs violation, got: %v", bad)
	}
}

// TestCompareProtocolGates exercises the v2 gates: committed-tx p99 and
// msgs/tx regress against ceilings, and a v1 baseline (zero fields)
// skips them instead of flagging every fresh report.
func TestCompareProtocolGates(t *testing.T) {
	base := &Report{Points: []Point{
		{Name: "a", EventsPerSec: 1000, TxP99Us: 100, MsgsPerTx: 4.0},
	}}
	ok := &Report{Points: []Point{
		{Name: "a", EventsPerSec: 1000, TxP99Us: 105, MsgsPerTx: 4.2}, // +5%: inside
	}}
	if bad := Compare(base, ok, 0.10, 0.10); len(bad) != 0 {
		t.Fatalf("clean report flagged: %v", bad)
	}
	slow := &Report{Points: []Point{
		{Name: "a", EventsPerSec: 1000, TxP99Us: 120, MsgsPerTx: 4.0}, // p99 +20%
	}}
	if bad := Compare(base, slow, 0.25, 0.10); len(bad) != 1 {
		t.Fatalf("want exactly the p99 violation, got: %v", bad)
	}
	chatty := &Report{Points: []Point{
		{Name: "a", EventsPerSec: 1000, TxP99Us: 100, MsgsPerTx: 5.0}, // msgs/tx +25%
	}}
	if bad := Compare(base, chatty, 0.25, 0.10); len(bad) != 1 {
		t.Fatalf("want exactly the msgs/tx violation, got: %v", bad)
	}
	// A v1 baseline has no protocol fields: both gates must skip.
	v1 := &Report{Points: []Point{{Name: "a", EventsPerSec: 1000}}}
	if bad := Compare(v1, chatty, 0.25, 0.10); len(bad) != 0 {
		t.Fatalf("v1 baseline fired protocol gates: %v", bad)
	}
}

// TestBankPointRuns is the completion gate for the bank workload in the
// perf harness: a small bank point must set up, measure, and report
// non-zero protocol metrics.
func TestBankPointRuns(t *testing.T) {
	spec := PointSpec{Name: "bank-tiny", Workload: "bank", Machines: 5, Threads: 2, Concurrency: 2,
		Accounts: 256, Regions: 3, Warm: sim.Millisecond, Measure: 2 * sim.Millisecond, Seed: 1}
	p, err := Run(spec)
	if err != nil {
		t.Fatalf("bank point failed: %v", err)
	}
	if p.Committed == 0 || p.TxP99Us <= 0 || p.MsgsPerTx <= 0 || p.WireBytesPerTx <= 0 {
		t.Fatalf("bank point missing protocol metrics: %+v", p)
	}
	t.Logf("bank-tiny: %d committed, p50 %.1fµs p99 %.1fµs, %.2f msgs/tx",
		p.Committed, p.TxP50Us, p.TxP99Us, p.MsgsPerTx)
}
