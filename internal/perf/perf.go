// Package perf is the simulator's performance trajectory, measured at two
// levels. Host-level: events per wall-second, simulated transactions per
// wall-second, allocations per event — how big a cluster the simulator
// can chew through. Protocol-level: committed-transaction latency
// percentiles (virtual time), fabric messages and wire bytes per
// committed transaction, abort rate — what the transport and commit
// pipeline actually cost, measured deterministically so regressions are
// exact, not noise. Every workload/scale point runs twice, once per
// coalescing policy, so the adaptive-vs-fixed trade-off is part of the
// committed record. cmd/farm-perf runs the suite, writes BENCH_sim.json,
// and checks it against the committed baseline so regressions fail CI
// instead of silently eroding the scale ceiling.
//
// Simulated system throughput experiments (Figures 7–8 style sweeps)
// belong to internal/exper and EXPERIMENTS.md; this package measures the
// simulator and the protocol hot path, not the paper's cluster.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"farm/internal/bank"
	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/sim"
	"farm/internal/tatp"
)

// SchemaVersion identifies the BENCH_sim.json layout. v2 added the
// protocol-level columns (policy, tx_p50_us, tx_p99_us, msgs_per_tx,
// wire_bytes_per_tx, abort_rate) and the bank workload points.
const SchemaVersion = "farm/bench-sim/v2"

// PointSpec describes one scale run.
type PointSpec struct {
	Name        string
	Workload    string // "tatp" or "bank"
	Policy      core.CoalescePolicy
	Machines    int
	Threads     int    // worker threads per machine
	Concurrency int    // outstanding ops per client thread
	Subscribers uint64 // tatp: database size
	Accounts    int    // bank: database size
	Regions     int
	Warm        sim.Time
	Measure     sim.Time
	Seed        uint64
}

// Point is one measured scale run, as serialized into BENCH_sim.json.
type Point struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	// Policy is the transport coalescing policy the run used
	// ("adaptive" or "fixed").
	Policy   string `json:"policy"`
	Machines int    `json:"machines"`
	// ClientThreads is machines × threads × concurrency: the number of
	// closed-loop simulated clients driving load.
	ClientThreads int `json:"client_threads"`
	// SimulatedMS is the measured window of virtual time, in milliseconds.
	SimulatedMS float64 `json:"simulated_ms"`
	// WallSeconds is host time spent simulating the measured window
	// (setup and warmup excluded).
	WallSeconds float64 `json:"wall_seconds"`
	// HostEvents is the number of engine events executed in the window.
	HostEvents uint64 `json:"host_events"`
	// EventsPerSec is the headline simulator speed: engine events
	// executed per wall-clock second.
	EventsPerSec float64 `json:"events_per_sec"`
	// Committed is the number of transactions committed in the window.
	Committed uint64 `json:"committed"`
	// TxPerWallSec is simulated committed transactions per wall-second:
	// how much workload the simulator chews through in real time.
	TxPerWallSec float64 `json:"tx_per_wall_sec"`
	// SimTxPerSec is the simulated system's own throughput (committed
	// transactions per second of virtual time), for cross-checking
	// against internal/exper numbers.
	SimTxPerSec float64 `json:"sim_tx_per_sec"`
	// TxP50Us and TxP99Us are committed-transaction latency percentiles
	// in microseconds of virtual time, over the measure window. Virtual
	// time is deterministic: these regress exactly, never noisily.
	TxP50Us float64 `json:"tx_p50_us"`
	TxP99Us float64 `json:"tx_p99_us"`
	// MsgsPerTx is fabric sends per committed transaction over the
	// window (all traffic included — lease, heartbeat and recovery
	// overhead is part of the protocol's real cost).
	MsgsPerTx float64 `json:"msgs_per_tx"`
	// WireBytesPerTx is fabric payload+frame bytes per committed
	// transaction over the window.
	WireBytesPerTx float64 `json:"wire_bytes_per_tx"`
	// AbortRate is aborted / (committed + aborted) over the window.
	AbortRate float64 `json:"abort_rate"`
	// AllocsPerEvent is heap allocations per engine event during the
	// window (workload allocations included, so it bounds the engine's
	// own cost from above).
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// HeapMB is the live heap after the run, in MiB.
	HeapMB float64 `json:"heap_mb"`
}

// Report is the BENCH_sim.json document.
type Report struct {
	Schema      string `json:"schema"`
	GoVersion   string `json:"go_version"`
	GeneratedBy string `json:"generated_by"`
	// PeakMachines is the largest cluster simulated in this report.
	PeakMachines int `json:"peak_machines"`
	// EngineAllocsPerEvent is the engine's own steady-state allocation
	// cost (schedule + dispatch of one event, measured in isolation with
	// testing.AllocsPerRun). The zero-alloc contract pins this at 0.
	EngineAllocsPerEvent float64 `json:"engine_allocs_per_event"`
	Points               []Point `json:"points"`
}

// FixedSuffix marks the fixed-policy twin of an adaptive point; farm-perf
// pairs "<name>" with "<name>-fixed" for its A/B table.
const FixedSuffix = "-fixed"

// DefaultSpecs is the committed trajectory: both workloads at the seed
// scale and the paper scales, each as an adaptive/fixed policy pair.
// Windows are sized so the full suite runs in a few minutes of host time.
func DefaultSpecs() []PointSpec {
	base := []PointSpec{
		{Name: "tatp-9", Workload: "tatp", Machines: 9, Threads: 8, Concurrency: 4,
			Subscribers: 2000, Regions: 6, Warm: sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 1},
		{Name: "tatp-50", Workload: "tatp", Machines: 50, Threads: 8, Concurrency: 4,
			Subscribers: 10000, Regions: 12, Warm: sim.Millisecond, Measure: 4 * sim.Millisecond, Seed: 1},
		{Name: "tatp-100", Workload: "tatp", Machines: 100, Threads: 8, Concurrency: 4,
			Subscribers: 10000, Regions: 12, Warm: sim.Millisecond, Measure: 3 * sim.Millisecond, Seed: 1},
		{Name: "bank-9", Workload: "bank", Machines: 9, Threads: 8, Concurrency: 4,
			Accounts: 4096, Regions: 6, Warm: sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 1},
		{Name: "bank-50", Workload: "bank", Machines: 50, Threads: 8, Concurrency: 4,
			Accounts: 12288, Regions: 12, Warm: sim.Millisecond, Measure: 4 * sim.Millisecond, Seed: 1},
		{Name: "bank-100", Workload: "bank", Machines: 100, Threads: 8, Concurrency: 4,
			Accounts: 12288, Regions: 12, Warm: sim.Millisecond, Measure: 3 * sim.Millisecond, Seed: 1},
	}
	specs := make([]PointSpec, 0, 2*len(base))
	for _, s := range base {
		s.Policy = core.CoalesceAdaptive
		specs = append(specs, s)
		s.Name += FixedSuffix
		s.Policy = core.CoalesceFixed
		specs = append(specs, s)
	}
	return specs
}

// options sizes cluster knobs to the machine count: big clusters shrink
// the per-sender log rings (machines × machines of them) so memory stays
// bounded — a 100-machine cluster with default 256 KB rings would need
// gigabytes for rings alone.
func (s PointSpec) options() core.Options {
	o := core.Options{NumMachines: s.Machines, Threads: s.Threads, Seed: s.Seed,
		CoalescePolicy: s.Policy}
	switch {
	case s.Machines >= 80:
		o.LogCapacity = 1 << 15
	case s.Machines >= 30:
		o.LogCapacity = 1 << 16
	}
	return o
}

// bankInitial is the per-account starting balance for bank points; the
// value only matters in that it keeps declined transfers rare.
const bankInitial = 1000

// Run executes one scale run and measures it.
func Run(s PointSpec) (Point, error) {
	c := core.New(s.options())
	var op loadgen.Op
	switch s.Workload {
	case "bank":
		w, err := bank.Setup(c, s.Accounts, s.Regions, bankInitial)
		if err != nil {
			return Point{}, err
		}
		op = w.Mix()
	case "tatp", "":
		w, err := tatp.Setup(c, s.Subscribers, s.Regions)
		if err != nil {
			return Point{}, err
		}
		op = w.Mix()
	default:
		return Point{}, fmt.Errorf("unknown workload %q", s.Workload)
	}
	machines := make([]int, s.Machines)
	for i := range machines {
		machines[i] = i
	}
	g := loadgen.New(c, op)
	g.Warmup = s.Warm
	g.Start(machines, s.Threads, s.Concurrency)
	c.RunFor(s.Warm)

	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	ev0, cm0, ab0 := c.Eng.Executed(), g.Committed(), g.Aborted()
	msg0 := c.Net.Counters.Get("msg_send")
	byt0 := c.Net.Counters.Get("msg_send_bytes")
	t0 := time.Now()
	c.RunFor(s.Measure)
	wall := time.Since(t0).Seconds()
	runtime.ReadMemStats(&ms1)
	ev, cm, ab := c.Eng.Executed()-ev0, g.Committed()-cm0, g.Aborted()-ab0
	msgs := c.Net.Counters.Get("msg_send") - msg0
	bytes := c.Net.Counters.Get("msg_send_bytes") - byt0
	// The latency histogram records committed operations after Warmup,
	// which is exactly the measure window.
	lat := g.Latency.Summarize()

	p := Point{
		Name:          s.Name,
		Workload:      s.Workload,
		Policy:        s.Policy.String(),
		Machines:      s.Machines,
		ClientThreads: s.Machines * s.Threads * s.Concurrency,
		SimulatedMS:   s.Measure.Millis(),
		WallSeconds:   wall,
		HostEvents:    ev,
		Committed:     cm,
		TxP50Us:       float64(lat.P50) / float64(sim.Microsecond),
		TxP99Us:       float64(lat.P99) / float64(sim.Microsecond),
		HeapMB:        float64(ms1.HeapAlloc) / (1 << 20),
	}
	if p.Workload == "" {
		p.Workload = "tatp"
	}
	if wall > 0 {
		p.EventsPerSec = float64(ev) / wall
		p.TxPerWallSec = float64(cm) / wall
	}
	if s.Measure > 0 {
		p.SimTxPerSec = float64(cm) / s.Measure.Seconds()
	}
	if cm > 0 {
		p.MsgsPerTx = float64(msgs) / float64(cm)
		p.WireBytesPerTx = float64(bytes) / float64(cm)
	}
	if cm+ab > 0 {
		p.AbortRate = float64(ab) / float64(cm+ab)
	}
	if ev > 0 {
		p.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(ev)
	}
	return p, nil
}

// EngineAllocsPerEvent measures the engine's own steady-state cost of one
// scheduled-and-dispatched event, in heap allocations.
func EngineAllocsPerEvent() float64 {
	e := sim.NewEngine(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.After(sim.Time(i), fn)
	}
	e.Run()
	return testing.AllocsPerRun(1000, func() {
		e.After(10, fn)
		e.Step()
	})
}

// RunAll runs every spec and assembles the report. progress (may be nil)
// receives one line per completed point.
func RunAll(specs []PointSpec, progress func(string)) (*Report, error) {
	r := &Report{
		Schema:               SchemaVersion,
		GoVersion:            runtime.Version(),
		GeneratedBy:          "cmd/farm-perf",
		EngineAllocsPerEvent: EngineAllocsPerEvent(),
	}
	for _, s := range specs {
		p, err := Run(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		if p.Machines > r.PeakMachines {
			r.PeakMachines = p.Machines
		}
		r.Points = append(r.Points, p)
		if progress != nil {
			progress(fmt.Sprintf("%-14s %3dm %-8s %8.0f ev/s  p50 %6.1fµs  p99 %7.1fµs  %5.2f msg/tx  %6.0f B/tx  %4.1f%% abort  %.1fs wall",
				p.Name, p.Machines, p.Policy, p.EventsPerSec, p.TxP50Us, p.TxP99Us,
				p.MsgsPerTx, p.WireBytesPerTx, p.AbortRate*100, p.WallSeconds))
		}
	}
	return r, nil
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a BENCH_sim.json document.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Point returns the named point, or nil.
func (r *Report) Point(name string) *Point {
	for i := range r.Points {
		if r.Points[i].Name == name {
			return &r.Points[i]
		}
	}
	return nil
}

// Compare checks got against a committed baseline: every baseline point
// must be present, events/sec must not regress by more than wall
// (0.25 = 25%), and the protocol-level metrics — committed-tx p99 and
// messages per transaction — must not grow by more than exact. The two
// thresholds exist because the metrics have different noise floors:
// events/sec is a wall-clock measure that swings with host load, while
// the protocol metrics are deterministic functions of the simulation and
// regress bit-exactly, so their gate can be tight without ever firing on
// noise. A baseline whose protocol field is zero (a v1 report, or a
// window with no commits) skips that gate. The engine's zero-alloc
// contract is also enforced here. It returns a list of human-readable
// violations, empty when the report passes.
func Compare(baseline, got *Report, wall, exact float64) []string {
	var bad []string
	if got.EngineAllocsPerEvent > 0 {
		bad = append(bad, fmt.Sprintf(
			"engine steady-state allocs/event = %.2f, want 0", got.EngineAllocsPerEvent))
	}
	byName := make(map[string]Point, len(got.Points))
	for _, p := range got.Points {
		byName[p.Name] = p
	}
	for _, b := range baseline.Points {
		g, ok := byName[b.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("point %q missing from new report", b.Name))
			continue
		}
		if floor := b.EventsPerSec * (1 - wall); g.EventsPerSec < floor {
			bad = append(bad, fmt.Sprintf(
				"%s: %.0f events/sec is a >%.0f%% regression from baseline %.0f",
				b.Name, g.EventsPerSec, wall*100, b.EventsPerSec))
		}
		if b.TxP99Us > 0 {
			if ceil := b.TxP99Us * (1 + exact); g.TxP99Us > ceil {
				bad = append(bad, fmt.Sprintf(
					"%s: committed-tx p99 %.1fµs is a >%.0f%% regression from baseline %.1fµs",
					b.Name, g.TxP99Us, exact*100, b.TxP99Us))
			}
		}
		if b.MsgsPerTx > 0 {
			if ceil := b.MsgsPerTx * (1 + exact); g.MsgsPerTx > ceil {
				bad = append(bad, fmt.Sprintf(
					"%s: %.2f msgs/tx is a >%.0f%% regression from baseline %.2f",
					b.Name, g.MsgsPerTx, exact*100, b.MsgsPerTx))
			}
		}
	}
	return bad
}
