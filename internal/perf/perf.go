// Package perf is the simulator's performance trajectory: scale
// experiments (TATP at 50 and 100+ simulated machines, thousands of
// simulated client threads) measured in host terms — events per
// wall-second, simulated transactions per wall-second, allocations per
// event. cmd/farm-perf runs the suite, writes BENCH_sim.json, and checks
// it against the committed baseline so engine regressions fail CI instead
// of silently eroding the scale ceiling.
//
// Simulated metrics (tx/s of virtual time) belong to internal/exper and
// EXPERIMENTS.md; this package measures the *simulator*, not the system
// under simulation.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/sim"
	"farm/internal/tatp"
)

// SchemaVersion identifies the BENCH_sim.json layout.
const SchemaVersion = "farm/bench-sim/v1"

// PointSpec describes one scale run.
type PointSpec struct {
	Name        string
	Machines    int
	Threads     int // worker threads per machine
	Concurrency int // outstanding ops per client thread
	Subscribers uint64
	Regions     int
	Warm        sim.Time
	Measure     sim.Time
	Seed        uint64
}

// Point is one measured scale run, as serialized into BENCH_sim.json.
type Point struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	Machines int    `json:"machines"`
	// ClientThreads is machines × threads × concurrency: the number of
	// closed-loop simulated clients driving load.
	ClientThreads int `json:"client_threads"`
	// SimulatedMS is the measured window of virtual time, in milliseconds.
	SimulatedMS float64 `json:"simulated_ms"`
	// WallSeconds is host time spent simulating the measured window
	// (setup and warmup excluded).
	WallSeconds float64 `json:"wall_seconds"`
	// HostEvents is the number of engine events executed in the window.
	HostEvents uint64 `json:"host_events"`
	// EventsPerSec is the headline simulator speed: engine events
	// executed per wall-clock second.
	EventsPerSec float64 `json:"events_per_sec"`
	// Committed is the number of transactions committed in the window.
	Committed uint64 `json:"committed"`
	// TxPerWallSec is simulated committed transactions per wall-second:
	// how much workload the simulator chews through in real time.
	TxPerWallSec float64 `json:"tx_per_wall_sec"`
	// SimTxPerSec is the simulated system's own throughput (committed
	// transactions per second of virtual time), for cross-checking
	// against internal/exper numbers.
	SimTxPerSec float64 `json:"sim_tx_per_sec"`
	// AllocsPerEvent is heap allocations per engine event during the
	// window (workload allocations included, so it bounds the engine's
	// own cost from above).
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// HeapMB is the live heap after the run, in MiB.
	HeapMB float64 `json:"heap_mb"`
}

// Report is the BENCH_sim.json document.
type Report struct {
	Schema      string `json:"schema"`
	GoVersion   string `json:"go_version"`
	GeneratedBy string `json:"generated_by"`
	// PeakMachines is the largest cluster simulated in this report.
	PeakMachines int `json:"peak_machines"`
	// EngineAllocsPerEvent is the engine's own steady-state allocation
	// cost (schedule + dispatch of one event, measured in isolation with
	// testing.AllocsPerRun). The zero-alloc contract pins this at 0.
	EngineAllocsPerEvent float64 `json:"engine_allocs_per_event"`
	Points               []Point `json:"points"`
}

// DefaultSpecs is the committed trajectory: the seed scale for context,
// then the paper-scale runs. Windows are sized so the full suite runs in
// well under a minute of host time.
func DefaultSpecs() []PointSpec {
	return []PointSpec{
		{Name: "tatp-9", Machines: 9, Threads: 8, Concurrency: 4,
			Subscribers: 2000, Regions: 6, Warm: sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 1},
		{Name: "tatp-50", Machines: 50, Threads: 8, Concurrency: 4,
			Subscribers: 10000, Regions: 12, Warm: sim.Millisecond, Measure: 4 * sim.Millisecond, Seed: 1},
		{Name: "tatp-100", Machines: 100, Threads: 8, Concurrency: 4,
			Subscribers: 10000, Regions: 12, Warm: sim.Millisecond, Measure: 3 * sim.Millisecond, Seed: 1},
	}
}

// options sizes cluster knobs to the machine count: big clusters shrink
// the per-sender log rings (machines × machines of them) so memory stays
// bounded — a 100-machine cluster with default 256 KB rings would need
// gigabytes for rings alone.
func (s PointSpec) options() core.Options {
	o := core.Options{NumMachines: s.Machines, Threads: s.Threads, Seed: s.Seed}
	switch {
	case s.Machines >= 80:
		o.LogCapacity = 1 << 15
	case s.Machines >= 30:
		o.LogCapacity = 1 << 16
	}
	return o
}

// Run executes one scale run and measures it.
func Run(s PointSpec) (Point, error) {
	c := core.New(s.options())
	w, err := tatp.Setup(c, s.Subscribers, s.Regions)
	if err != nil {
		return Point{}, err
	}
	machines := make([]int, s.Machines)
	for i := range machines {
		machines[i] = i
	}
	g := loadgen.New(c, w.Mix())
	g.Warmup = s.Warm
	g.Start(machines, s.Threads, s.Concurrency)
	c.RunFor(s.Warm)

	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	ev0, cm0 := c.Eng.Executed(), g.Committed()
	t0 := time.Now()
	c.RunFor(s.Measure)
	wall := time.Since(t0).Seconds()
	runtime.ReadMemStats(&ms1)
	ev, cm := c.Eng.Executed()-ev0, g.Committed()-cm0

	p := Point{
		Name:          s.Name,
		Workload:      "tatp",
		Machines:      s.Machines,
		ClientThreads: s.Machines * s.Threads * s.Concurrency,
		SimulatedMS:   s.Measure.Millis(),
		WallSeconds:   wall,
		HostEvents:    ev,
		Committed:     cm,
		HeapMB:        float64(ms1.HeapAlloc) / (1 << 20),
	}
	if wall > 0 {
		p.EventsPerSec = float64(ev) / wall
		p.TxPerWallSec = float64(cm) / wall
	}
	if s.Measure > 0 {
		p.SimTxPerSec = float64(cm) / s.Measure.Seconds()
	}
	if ev > 0 {
		p.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(ev)
	}
	return p, nil
}

// EngineAllocsPerEvent measures the engine's own steady-state cost of one
// scheduled-and-dispatched event, in heap allocations.
func EngineAllocsPerEvent() float64 {
	e := sim.NewEngine(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.After(sim.Time(i), fn)
	}
	e.Run()
	return testing.AllocsPerRun(1000, func() {
		e.After(10, fn)
		e.Step()
	})
}

// RunAll runs every spec and assembles the report. progress (may be nil)
// receives one line per completed point.
func RunAll(specs []PointSpec, progress func(string)) (*Report, error) {
	r := &Report{
		Schema:               SchemaVersion,
		GoVersion:            runtime.Version(),
		GeneratedBy:          "cmd/farm-perf",
		EngineAllocsPerEvent: EngineAllocsPerEvent(),
	}
	for _, s := range specs {
		p, err := Run(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		if p.Machines > r.PeakMachines {
			r.PeakMachines = p.Machines
		}
		r.Points = append(r.Points, p)
		if progress != nil {
			progress(fmt.Sprintf("%-10s %3d machines %5d clients  %8.0f ev/s  %7.0f tx/wall-s  %.2f allocs/ev  %.1fs wall",
				p.Name, p.Machines, p.ClientThreads, p.EventsPerSec, p.TxPerWallSec, p.AllocsPerEvent, p.WallSeconds))
		}
	}
	return r, nil
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a BENCH_sim.json document.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Compare checks got against a committed baseline: every baseline point
// must be present and not regress events/sec by more than threshold
// (0.10 = 10%). The engine's zero-alloc contract is also enforced here —
// wall-clock noise cannot fake an allocation. It returns a list of
// human-readable violations, empty when the report passes.
func Compare(baseline, got *Report, threshold float64) []string {
	var bad []string
	if got.EngineAllocsPerEvent > 0 {
		bad = append(bad, fmt.Sprintf(
			"engine steady-state allocs/event = %.2f, want 0", got.EngineAllocsPerEvent))
	}
	byName := make(map[string]Point, len(got.Points))
	for _, p := range got.Points {
		byName[p.Name] = p
	}
	for _, b := range baseline.Points {
		g, ok := byName[b.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("point %q missing from new report", b.Name))
			continue
		}
		floor := b.EventsPerSec * (1 - threshold)
		if g.EventsPerSec < floor {
			bad = append(bad, fmt.Sprintf(
				"%s: %.0f events/sec is a >%.0f%% regression from baseline %.0f",
				b.Name, g.EventsPerSec, threshold*100, b.EventsPerSec))
		}
	}
	return bad
}
