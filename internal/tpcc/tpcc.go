// Package tpcc implements the TPC-C benchmark on the FaRM API (§6.2):
// nine tables over sixteen indexes — twelve point indexes as FaRM hash
// tables and four range indexes (orders, order lines, new orders, customer
// names) as FaRM B-trees — with the full five-transaction mix. Tables and
// clients are co-partitioned by warehouse ("around 10% of all transactions
// access remote data"), and throughput is reported as successfully
// committed "new order" transactions, as the paper does.
//
// Scale knobs are reduced from the TPC-C defaults (customers per district,
// items) so simulated populations stay tractable; the transaction logic is
// complete.
package tpcc

import (
	"encoding/binary"
	"fmt"

	"farm/internal/btree"
	"farm/internal/core"
	"farm/internal/kv"
	"farm/internal/loadgen"
	"farm/internal/sim"
	"farm/internal/stats"
)

// Config scales the database.
type Config struct {
	Warehouses       int
	Districts        int // per warehouse (10 in the spec)
	CustomersPerDist int // 3000 in the spec; scaled down by default
	Items            int // 100000 in the spec; scaled down by default
	RegionsPerWH     int
	RemotePaymentPct int // 15 in the spec
	RemoteItemPct    int // 1 in the spec
}

// DefaultConfig returns the scaled simulation defaults.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:       warehouses,
		Districts:        10,
		CustomersPerDist: 30,
		Items:            200,
		RegionsPerWH:     2,
		RemotePaymentPct: 15,
		RemoteItemPct:    1,
	}
}

// warehouse holds one warehouse's co-partitioned tables and indexes.
type warehouse struct {
	id      int
	regions []uint32
	home    int // primary machine of the warehouse's first region

	// Point indexes (hash tables).
	wTbl    *kv.Table // warehouse row
	dTbl    *kv.Table // districts
	cTbl    *kv.Table // customers
	sTbl    *kv.Table // stock
	iTbl    *kv.Table // items (replicated per warehouse, standard trick)
	histTbl *kv.Table // history (append-only)

	// Range indexes (B-trees). The orders, order-line and new-order
	// indexes are physically partitioned by district (their TPC-C keys are
	// district-prefixed), which keeps B-tree growth splits from
	// manufacturing cross-district conflicts; logically they are the four
	// range indexes of §6.2.
	orders     []*btree.Tree // per district
	orderLines []*btree.Tree // per district
	newOrders  []*btree.Tree // per district
	custByName *btree.Tree
}

// Workload is the populated database.
type Workload struct {
	C   *core.Cluster
	Cfg Config
	whs []*warehouse

	histSeq uint64

	// NewOrderLat and NewOrderTimeline record only "new order"
	// transactions, the metric of Figures 8 and 10.
	NewOrderLat      *stats.Histogram
	NewOrderTimeline *stats.Timeline
	NewOrders        uint64
	// MeasureFrom gates recording (set after warmup).
	MeasureFrom sim.Time

	// RemoteAccesses counts transactions that touched another warehouse.
	RemoteAccesses uint64

	// IgnoreLocality makes drivers pick random warehouses instead of ones
	// homed on their machine — the ablation for §6.2's co-partitioning
	// ("around 10% of all transactions access remote data" relies on it).
	IgnoreLocality bool
}

// Row sizes.
const (
	warehouseRow = 16 // ytd, tax
	districtRow  = 16 // next_o_id, ytd, tax
	customerRow  = 32 // balance, ytd_payment, payment_cnt, delivery_cnt
	stockRow     = 16 // quantity, ytd, order_cnt
	itemRow      = 8  // price
	historyRow   = 16
	orderVal     = 16 // c_id, entry_d, carrier, ol_cnt
	orderLineVal = 16 // i_id, qty, amount
)

// B-tree keys within one warehouse.
func orderKey(d, o int) uint64 { return uint64(d)<<40 | uint64(o) }
func olKey(d, o, n int) uint64 { return uint64(d)<<40 | uint64(o)<<8 | uint64(n) }
func custKey(d, c int) []byte  { return kv.U64Key(uint64(d)<<16 | uint64(c)) }
func custNameKey(d, c int) uint64 {
	// Customers keyed by (district, synthetic last-name bucket, id) so
	// by-name range lookups are possible.
	return uint64(d)<<32 | uint64(c%10)<<16 | uint64(c)
}

// Setup creates and populates the database.
func Setup(c *core.Cluster, cfg Config) (*Workload, error) {
	w := &Workload{
		C:                c,
		Cfg:              cfg,
		NewOrderLat:      stats.NewHistogram(),
		NewOrderTimeline: stats.NewTimeline(sim.Millisecond),
	}
	for wid := 0; wid < cfg.Warehouses; wid++ {
		wh, err := w.setupWarehouse(wid)
		if err != nil {
			return nil, fmt.Errorf("tpcc: warehouse %d: %w", wid, err)
		}
		w.whs = append(w.whs, wh)
	}
	return w, nil
}

func (w *Workload) setupWarehouse(wid int) (*warehouse, error) {
	c := w.C
	cfg := w.Cfg
	// Allocate the warehouse's regions with locality chaining so they land
	// on one replica set (§3 locality hints).
	regions, err := c.CreateRegions(wid%len(c.Machines), 1, 0)
	if err != nil {
		return nil, err
	}
	for i := 1; i < cfg.RegionsPerWH; i++ {
		more, err := c.CreateRegions(wid%len(c.Machines), 1, regions[0])
		if err != nil {
			return nil, err
		}
		regions = append(regions, more...)
	}
	wh := &warehouse{id: wid, regions: regions}
	wh.home = c.Machine(0).PrimaryOf(regions[0])
	if wh.home < 0 {
		wh.home = 0
	}
	m := c.Machine(wh.home)

	mk := func(name string, buckets, maxVal int) *kv.Table {
		return kv.MustCreate(c, m, kv.Config{
			Name: fmt.Sprintf("%s-%d", name, wid), Buckets: buckets, Slots: 4,
			MaxKey: 8, MaxVal: maxVal, Regions: regions,
		})
	}
	// Buckets are sized generously for the write-heavy tables: a bucket is
	// the conflict granularity (one FaRM object), so co-hashing two hot
	// rows would manufacture false conflicts.
	nCust := cfg.Districts * cfg.CustomersPerDist
	wh.wTbl = mk("warehouse", 1, warehouseRow)
	wh.dTbl = mk("district", cfg.Districts*4, districtRow)
	wh.cTbl = mk("customer", nCust, customerRow)
	wh.sTbl = mk("stock", cfg.Items, stockRow)
	wh.iTbl = mk("item", cfg.Items/3+1, itemRow)
	wh.histTbl = mk("history", nCust*2, historyRow)

	mkTree := func(name string, maxVal int) *btree.Tree {
		return btree.MustCreate(c, m, btree.Config{
			Name: fmt.Sprintf("%s-%d", name, wid), Order: 32, MaxVal: maxVal, Region: regions[0],
		})
	}
	for d := 0; d <= cfg.Districts; d++ {
		wh.orders = append(wh.orders, mkTree(fmt.Sprintf("orders-%d", d), orderVal))
		wh.orderLines = append(wh.orderLines, mkTree(fmt.Sprintf("order_lines-%d", d), orderLineVal))
		wh.newOrders = append(wh.newOrders, mkTree(fmt.Sprintf("new_orders-%d", d), 1))
	}
	wh.custByName = mkTree("cust_by_name", 8)

	// Populate.
	put := func(tx *core.Tx, t *kv.Table, key, val []byte) func(func(error)) {
		return func(next func(error)) { t.Put(tx, key, val, next) }
	}
	var steps []func(func(error))
	collect := func(tx *core.Tx) {
		steps = steps[:0]
		wrow := make([]byte, warehouseRow)
		binary.LittleEndian.PutUint32(wrow[8:], uint32(wid%20)) // tax
		steps = append(steps, put(tx, wh.wTbl, kv.U64Key(0), wrow))
	}
	_ = collect

	// Warehouse + districts in one transaction.
	err = loadgen.RunSync(c, m, 0, func(tx *core.Tx, done func(error)) {
		var fns []func(func(error))
		wrow := make([]byte, warehouseRow)
		binary.LittleEndian.PutUint32(wrow[8:], uint32(wid%20))
		fns = append(fns, put(tx, wh.wTbl, kv.U64Key(0), wrow))
		for d := 1; d <= cfg.Districts; d++ {
			drow := make([]byte, districtRow)
			binary.LittleEndian.PutUint32(drow, 1) // next_o_id
			fns = append(fns, put(tx, wh.dTbl, kv.U64Key(uint64(d)), drow))
		}
		chain(fns, done)
	})
	if err != nil {
		return nil, err
	}

	// Customers (hash + name index), batched.
	for d := 1; d <= cfg.Districts; d++ {
		for base := 0; base < cfg.CustomersPerDist; base += 16 {
			d, base := d, base
			err := loadgen.RunSync(c, m, base%m.Threads(), func(tx *core.Tx, done func(error)) {
				var fns []func(func(error))
				for i := base; i < base+16 && i < cfg.CustomersPerDist; i++ {
					crow := make([]byte, customerRow)
					binary.LittleEndian.PutUint64(crow, 10) // balance -10.00 semantics aside
					fns = append(fns, put(tx, wh.cTbl, custKey(d, i), crow))
					i := i
					fns = append(fns, func(next func(error)) {
						wh.custByName.Put(tx, custNameKey(d, i), kv.U64Key(uint64(i)), next)
					})
				}
				chain(fns, done)
			})
			if err != nil {
				return nil, err
			}
		}
	}

	// Items + stock, batched.
	for base := 0; base < cfg.Items; base += 16 {
		base := base
		err := loadgen.RunSync(c, m, base%m.Threads(), func(tx *core.Tx, done func(error)) {
			var fns []func(func(error))
			for i := base; i < base+16 && i < cfg.Items; i++ {
				irow := make([]byte, itemRow)
				binary.LittleEndian.PutUint32(irow, uint32(100+i%900)) // price
				fns = append(fns, put(tx, wh.iTbl, kv.U64Key(uint64(i)), irow))
				srow := make([]byte, stockRow)
				binary.LittleEndian.PutUint32(srow, 100) // quantity
				fns = append(fns, put(tx, wh.sTbl, kv.U64Key(uint64(i)), srow))
			}
			chain(fns, done)
		})
		if err != nil {
			return nil, err
		}
	}
	return wh, nil
}

func chain(fns []func(func(error)), done func(error)) {
	var run func(i int)
	run = func(i int) {
		if i == len(fns) {
			done(nil)
			return
		}
		fns[i](func(err error) {
			if err != nil {
				done(err)
				return
			}
			run(i + 1)
		})
	}
	run(0)
}

// HomeMachines maps each machine to the warehouses it serves (clients are
// co-partitioned with their warehouse, §6.2).
func (w *Workload) HomeMachines() map[int][]int {
	out := make(map[int][]int)
	for _, wh := range w.whs {
		out[wh.home] = append(out[wh.home], wh.id)
	}
	return out
}

// warehouseFor picks a home warehouse for a driver on machine m (falling
// back to any warehouse when m hosts none).
func (w *Workload) warehouseFor(m *core.Machine, rng *sim.Rand) *warehouse {
	if w.IgnoreLocality {
		return w.whs[rng.Intn(len(w.whs))]
	}
	var local []*warehouse
	for _, wh := range w.whs {
		if wh.home == m.ID {
			local = append(local, wh)
		}
	}
	if len(local) == 0 {
		return w.whs[rng.Intn(len(w.whs))]
	}
	return local[rng.Intn(len(local))]
}

// Mix returns the standard TPC-C mix: 45% new-order, 43% payment, 4%
// order-status, 4% delivery, 4% stock-level.
func (w *Workload) Mix() loadgen.Op {
	return func(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
		wh := w.warehouseFor(m, rng)
		switch p := rng.Intn(100); {
		case p < 45:
			begin := w.C.Eng.Now()
			w.NewOrder(m, thread, wh, rng, func(ok bool) {
				if ok {
					now := w.C.Eng.Now()
					if now >= w.MeasureFrom {
						w.NewOrderLat.Record(now - begin)
						w.NewOrderTimeline.Add(now, 1)
					}
				}
				done(ok)
			})
		case p < 88:
			w.Payment(m, thread, wh, rng, done)
		case p < 92:
			w.OrderStatus(m, thread, wh, rng, done)
		case p < 96:
			w.Delivery(m, thread, wh, rng, done)
		default:
			w.StockLevel(m, thread, wh, rng, done)
		}
	}
}

// NewOrder is the measured transaction: read warehouse/district/customer,
// advance the district's next_o_id, insert the order, its new-order entry
// and 5–15 order lines, reading and updating stock for each item (1%
// remote warehouse per item).
func (w *Workload) NewOrder(m *core.Machine, thread int, wh *warehouse, rng *sim.Rand, done func(bool)) {
	cfg := w.Cfg
	d := rng.Intn(cfg.Districts) + 1
	cid := rng.Intn(cfg.CustomersPerDist)
	nItems := rng.Intn(11) + 5
	fail := func(error) { done(false) }

	tx := m.Begin(thread)
	wh.wTbl.Get(tx, kv.U64Key(0), func(_ []byte, ok bool, err error) {
		if err != nil || !ok {
			fail(err)
			return
		}
		wh.dTbl.Get(tx, kv.U64Key(uint64(d)), func(drow []byte, ok bool, err error) {
			if err != nil || !ok {
				fail(err)
				return
			}
			oid := int(binary.LittleEndian.Uint32(drow))
			binary.LittleEndian.PutUint32(drow, uint32(oid+1))
			wh.dTbl.Put(tx, kv.U64Key(uint64(d)), drow, func(err error) {
				if err != nil {
					fail(err)
					return
				}
				wh.cTbl.Get(tx, custKey(d, cid), func(_ []byte, ok bool, err error) {
					if err != nil || !ok {
						fail(err)
						return
					}
					// Insert order + new-order entries.
					orow := make([]byte, orderVal)
					binary.LittleEndian.PutUint32(orow, uint32(cid))
					orow[12] = byte(nItems)
					wh.orders[d].Put(tx, orderKey(d, oid), orow, func(err error) {
						if err != nil {
							fail(err)
							return
						}
						wh.newOrders[d].Put(tx, orderKey(d, oid), []byte{1}, func(err error) {
							if err != nil {
								fail(err)
								return
							}
							w.orderLinesLoop(tx, m, wh, rng, d, oid, cid, nItems, 0, done)
						})
					})
				})
			})
		})
	})
}

// orderLinesLoop inserts order lines and updates stock (possibly remote).
func (w *Workload) orderLinesLoop(tx *core.Tx, m *core.Machine, wh *warehouse, rng *sim.Rand, d, oid, cid, nItems, n int, done func(bool)) {
	if n == nItems {
		tx.Commit(func(err error) {
			if err == nil {
				w.NewOrders++
			}
			done(err == nil)
		})
		return
	}
	item := rng.Intn(w.Cfg.Items)
	supply := wh
	if rng.Intn(100) < w.Cfg.RemoteItemPct && len(w.whs) > 1 {
		supply = w.whs[rng.Intn(len(w.whs))]
		if supply != wh {
			w.RemoteAccesses++
		}
	}
	wh.iTbl.Get(tx, kv.U64Key(uint64(item)), func(irow []byte, ok bool, err error) {
		if err != nil || !ok {
			done(false)
			return
		}
		price := binary.LittleEndian.Uint32(irow)
		supply.sTbl.Get(tx, kv.U64Key(uint64(item)), func(srow []byte, ok bool, err error) {
			if err != nil || !ok {
				done(false)
				return
			}
			qty := binary.LittleEndian.Uint32(srow)
			if qty < 10 {
				qty += 91
			}
			order := uint32(rng.Intn(10) + 1)
			binary.LittleEndian.PutUint32(srow, qty-order)
			binary.LittleEndian.PutUint32(srow[8:], binary.LittleEndian.Uint32(srow[8:])+1) // order_cnt
			supply.sTbl.Put(tx, kv.U64Key(uint64(item)), srow, func(err error) {
				if err != nil {
					done(false)
					return
				}
				ol := make([]byte, orderLineVal)
				binary.LittleEndian.PutUint32(ol, uint32(item))
				binary.LittleEndian.PutUint32(ol[4:], order)
				binary.LittleEndian.PutUint32(ol[8:], order*price)
				wh.orderLines[d].Put(tx, olKey(d, oid, n), ol, func(err error) {
					if err != nil {
						done(false)
						return
					}
					w.orderLinesLoop(tx, m, wh, rng, d, oid, cid, nItems, n+1, done)
				})
			})
		})
	})
}

// Payment updates warehouse/district ytd and the customer balance (15%
// remote customer) and appends a history row.
func (w *Workload) Payment(m *core.Machine, thread int, wh *warehouse, rng *sim.Rand, done func(bool)) {
	d := rng.Intn(w.Cfg.Districts) + 1
	cwh := wh
	if rng.Intn(100) < w.Cfg.RemotePaymentPct && len(w.whs) > 1 {
		cwh = w.whs[rng.Intn(len(w.whs))]
		if cwh != wh {
			w.RemoteAccesses++
		}
	}
	cid := rng.Intn(w.Cfg.CustomersPerDist)
	amount := uint64(rng.Intn(5000) + 1)

	tx := m.Begin(thread)
	wh.wTbl.Get(tx, kv.U64Key(0), func(wrow []byte, ok bool, err error) {
		if err != nil || !ok {
			done(false)
			return
		}
		binary.LittleEndian.PutUint64(wrow, binary.LittleEndian.Uint64(wrow)+amount)
		wh.wTbl.Put(tx, kv.U64Key(0), wrow, func(err error) {
			if err != nil {
				done(false)
				return
			}
			wh.dTbl.Get(tx, kv.U64Key(uint64(d)), func(drow []byte, ok bool, err error) {
				if err != nil || !ok {
					done(false)
					return
				}
				binary.LittleEndian.PutUint64(drow[8:], binary.LittleEndian.Uint64(drow[8:])+amount)
				wh.dTbl.Put(tx, kv.U64Key(uint64(d)), drow, func(err error) {
					if err != nil {
						done(false)
						return
					}
					cwh.cTbl.Get(tx, custKey(d, cid), func(crow []byte, ok bool, err error) {
						if err != nil || !ok {
							done(false)
							return
						}
						binary.LittleEndian.PutUint64(crow, binary.LittleEndian.Uint64(crow)+amount)
						binary.LittleEndian.PutUint32(crow[16:], binary.LittleEndian.Uint32(crow[16:])+1)
						cwh.cTbl.Put(tx, custKey(d, cid), crow, func(err error) {
							if err != nil {
								done(false)
								return
							}
							w.histSeq++
							hrow := make([]byte, historyRow)
							binary.LittleEndian.PutUint64(hrow, amount)
							wh.histTbl.Put(tx, kv.U64Key(w.histSeq<<8|uint64(wh.id)), hrow, func(err error) {
								if err != nil {
									done(false)
									return
								}
								tx.Commit(func(err error) { done(err == nil) })
							})
						})
					})
				})
			})
		})
	})
}

// OrderStatus reads a customer (by id or through the name index) and the
// lines of the district's most recent order (read-only; B-tree range
// read).
func (w *Workload) OrderStatus(m *core.Machine, thread int, wh *warehouse, rng *sim.Rand, done func(bool)) {
	d := rng.Intn(w.Cfg.Districts) + 1
	cid := rng.Intn(w.Cfg.CustomersPerDist)
	tx := m.Begin(thread)
	lookupOrder := func() {
		wh.dTbl.Get(tx, kv.U64Key(uint64(d)), func(drow []byte, ok bool, err error) {
			if err != nil || !ok {
				done(false)
				return
			}
			next := int(binary.LittleEndian.Uint32(drow))
			if next <= 1 {
				tx.Commit(func(err error) { done(err == nil) })
				return
			}
			oid := next - 1
			wh.orders[d].Get(tx, m, orderKey(d, oid), func(_ []byte, _ bool, err error) {
				if err != nil {
					done(false)
					return
				}
				wh.orderLines[d].Scan(tx, olKey(d, oid, 0), 15, func(_ []btree.Pair, err error) {
					if err != nil {
						done(false)
						return
					}
					tx.Commit(func(err error) { done(err == nil) })
				})
			})
		})
	}
	if rng.Bool(0.6) {
		// 60% select customer by last name through the name index.
		wh.custByName.Scan(tx, custNameKey(d, cid)&^0xFFFF, 3, func(_ []btree.Pair, err error) {
			if err != nil {
				done(false)
				return
			}
			lookupOrder()
		})
		return
	}
	wh.cTbl.Get(tx, custKey(d, cid), func(_ []byte, ok bool, err error) {
		if err != nil || !ok {
			done(false)
			return
		}
		lookupOrder()
	})
}

// Delivery processes the oldest undelivered order of each district, one
// transaction per district as the spec permits.
func (w *Workload) Delivery(m *core.Machine, thread int, wh *warehouse, rng *sim.Rand, done func(bool)) {
	var perDistrict func(d int)
	perDistrict = func(d int) {
		if d > w.Cfg.Districts {
			done(true)
			return
		}
		tx := m.Begin(thread)
		wh.newOrders[d].Scan(tx, orderKey(d, 0), 1, func(pairs []btree.Pair, err error) {
			if err != nil {
				done(false)
				return
			}
			if len(pairs) == 0 || pairs[0].Key>>40 != uint64(d) {
				// No undelivered orders in this district.
				tx.Commit(func(error) { perDistrict(d + 1) })
				return
			}
			key := pairs[0].Key
			oid := int(key & (1<<40 - 1))
			wh.newOrders[d].Delete(tx, key, func(_ bool, err error) {
				if err != nil {
					done(false)
					return
				}
				wh.orders[d].Get(tx, m, key, func(orow []byte, ok bool, err error) {
					if err != nil || !ok {
						done(false)
						return
					}
					orow[13] = byte(rng.Intn(10) + 1) // carrier
					wh.orders[d].Put(tx, key, orow, func(err error) {
						if err != nil {
							done(false)
							return
						}
						cid := int(binary.LittleEndian.Uint32(orow))
						wh.orderLines[d].Scan(tx, olKey(d, oid, 0), 15, func(lines []btree.Pair, err error) {
							if err != nil {
								done(false)
								return
							}
							var total uint64
							for _, l := range lines {
								if l.Key>>8 == uint64(d)<<32|uint64(oid) {
									total += uint64(binary.LittleEndian.Uint32(l.Val[8:]))
								}
							}
							wh.cTbl.Get(tx, custKey(d, cid), func(crow []byte, ok bool, err error) {
								if err != nil || !ok {
									done(false)
									return
								}
								binary.LittleEndian.PutUint64(crow, binary.LittleEndian.Uint64(crow)+total)
								binary.LittleEndian.PutUint32(crow[20:], binary.LittleEndian.Uint32(crow[20:])+1)
								wh.cTbl.Put(tx, custKey(d, cid), crow, func(err error) {
									if err != nil {
										done(false)
										return
									}
									tx.Commit(func(err error) {
										if err != nil {
											done(false)
											return
										}
										perDistrict(d + 1)
									})
								})
							})
						})
					})
				})
			})
		})
	}
	perDistrict(1)
}

// StockLevel counts recent-order items below a stock threshold (read-only,
// large B-tree scan + stock point reads).
func (w *Workload) StockLevel(m *core.Machine, thread int, wh *warehouse, rng *sim.Rand, done func(bool)) {
	d := rng.Intn(w.Cfg.Districts) + 1
	threshold := uint32(rng.Intn(11) + 10)
	tx := m.Begin(thread)
	wh.dTbl.Get(tx, kv.U64Key(uint64(d)), func(drow []byte, ok bool, err error) {
		if err != nil || !ok {
			done(false)
			return
		}
		next := int(binary.LittleEndian.Uint32(drow))
		if next <= 1 {
			tx.Commit(func(err error) { done(err == nil) })
			return
		}
		from := next - 10
		if from < 1 {
			from = 1
		}
		wh.orderLines[d].Scan(tx, olKey(d, from, 0), 60, func(lines []btree.Pair, err error) {
			if err != nil {
				done(false)
				return
			}
			items := make(map[uint32]bool)
			for _, l := range lines {
				if int(l.Key>>40) != d {
					break
				}
				items[binary.LittleEndian.Uint32(l.Val)] = true
			}
			ids := make([]uint32, 0, len(items))
			for i := range items {
				ids = append(ids, i)
			}
			low := 0
			var check func(i int)
			check = func(i int) {
				if i == len(ids) {
					tx.Commit(func(err error) { done(err == nil) })
					return
				}
				wh.sTbl.Get(tx, kv.U64Key(uint64(ids[i])), func(srow []byte, ok bool, err error) {
					if err != nil {
						done(false)
						return
					}
					if ok && binary.LittleEndian.Uint32(srow) < threshold {
						low++
					}
					check(i + 1)
				})
			}
			check(0)
		})
	})
}
