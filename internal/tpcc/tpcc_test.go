package tpcc

import (
	"encoding/binary"
	"testing"

	"farm/internal/core"
	"farm/internal/kv"
	"farm/internal/loadgen"
	"farm/internal/sim"
)

func setup(t *testing.T, warehouses int) (*core.Cluster, *Workload) {
	t.Helper()
	c := core.New(core.Options{NumMachines: 5, Seed: 41})
	cfg := DefaultConfig(warehouses)
	cfg.CustomersPerDist = 12
	cfg.Items = 240
	w, err := Setup(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, w
}

func TestSetupPartitionsByWarehouse(t *testing.T) {
	c, w := setup(t, 4)
	_ = c
	homes := w.HomeMachines()
	total := 0
	for _, whs := range homes {
		total += len(whs)
	}
	if total != 4 {
		t.Fatalf("warehouses homed: %d", total)
	}
}

func runOp(t *testing.T, c *core.Cluster, fn func(done func(bool))) bool {
	t.Helper()
	completed, ok := false, false
	fn(func(r bool) { completed, ok = true, r })
	deadline := c.Eng.Now() + 5*sim.Second
	for !completed && c.Eng.Now() < deadline {
		if !c.Eng.Step() {
			break
		}
	}
	if !completed {
		t.Fatal("tpcc op stalled")
	}
	return ok
}

func TestNewOrderCommitsAndAdvancesDistrict(t *testing.T) {
	c, w := setup(t, 2)
	wh := w.whs[0]
	m := c.Machine(wh.home)
	rng := sim.NewRand(5)
	for i := 0; i < 5; i++ {
		if !runOp(t, c, func(d func(bool)) { w.NewOrder(m, 0, wh, rng, d) }) {
			t.Fatalf("new order %d failed", i)
		}
	}
	// District 1..10: total next_o_id advances must equal 5.
	var advanced int
	for d := 1; d <= w.Cfg.Districts; d++ {
		var next uint32
		err := loadgen.RunSync(c, m, 0, func(tx *core.Tx, done func(error)) {
			wh.dTbl.Get(tx, kv.U64Key(uint64(d)), func(drow []byte, ok bool, err error) {
				if ok {
					next = binary.LittleEndian.Uint32(drow)
				}
				done(err)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		advanced += int(next) - 1
	}
	if advanced != 5 {
		t.Fatalf("next_o_id advanced %d, want 5", advanced)
	}
	if w.NewOrders != 5 {
		t.Fatalf("NewOrders counter = %d", w.NewOrders)
	}
}

func TestPaymentMovesMoney(t *testing.T) {
	c, w := setup(t, 2)
	wh := w.whs[1]
	m := c.Machine(wh.home)
	rng := sim.NewRand(6)
	for i := 0; i < 5; i++ {
		if !runOp(t, c, func(d func(bool)) { w.Payment(m, 0, wh, rng, d) }) {
			t.Fatalf("payment %d failed", i)
		}
	}
	// Warehouse ytd must be positive.
	var ytd uint64
	err := loadgen.RunSync(c, m, 0, func(tx *core.Tx, done func(error)) {
		wh.wTbl.Get(tx, kv.U64Key(0), func(wrow []byte, ok bool, err error) {
			if ok {
				ytd = binary.LittleEndian.Uint64(wrow)
			}
			done(err)
		})
	})
	if err != nil || ytd == 0 {
		t.Fatalf("warehouse ytd = %d err=%v", ytd, err)
	}
}

func TestOrderLifecycle(t *testing.T) {
	// New orders → order status sees them → delivery consumes new-order
	// entries → stock level runs.
	c, w := setup(t, 2)
	wh := w.whs[0]
	m := c.Machine(wh.home)
	rng := sim.NewRand(7)
	for i := 0; i < 12; i++ {
		if !runOp(t, c, func(d func(bool)) { w.NewOrder(m, 0, wh, rng, d) }) {
			t.Fatalf("new order %d failed", i)
		}
	}
	if !runOp(t, c, func(d func(bool)) { w.OrderStatus(m, 1, wh, rng, d) }) {
		t.Fatal("order status failed")
	}
	if !runOp(t, c, func(d func(bool)) { w.Delivery(m, 1, wh, rng, d) }) {
		t.Fatal("delivery failed")
	}
	if !runOp(t, c, func(d func(bool)) { w.StockLevel(m, 2, wh, rng, d) }) {
		t.Fatal("stock level failed")
	}
}

func TestMixThroughput(t *testing.T) {
	c, w := setup(t, 8)
	g := loadgen.New(c, w.Mix())
	w.MeasureFrom = c.Now() + 5*sim.Millisecond
	// TPC-C abort rates are governed by drivers-per-warehouse (the paper
	// runs 21600 warehouses for 2700 threads); keep the ratio comparable.
	tput, _, _ := g.RunPoint([]int{0, 1, 2, 3, 4}, 2, 1, 5*sim.Millisecond, 40*sim.Millisecond)
	if tput < 1000 {
		t.Fatalf("TPC-C mix throughput %v/s too low", tput)
	}
	if w.NewOrders == 0 {
		t.Fatal("no new orders committed")
	}
	noTput := w.NewOrderTimeline.WindowAverage(w.MeasureFrom, c.Now()) * 1000
	med, p99 := w.NewOrderLat.Median(), w.NewOrderLat.P99()
	if med <= 0 || p99 < med {
		t.Fatalf("new-order latency: %v %v", med, p99)
	}
	abortRate := float64(g.Aborted()) / float64(g.Committed()+g.Aborted())
	t.Logf("TPC-C: total %.0f tx/s, new-order %.0f/s, med=%v p99=%v, aborts=%.3f, remote=%d",
		tput, noTput, med, p99, abortRate, w.RemoteAccesses)
	if abortRate > 0.35 {
		t.Fatalf("abort rate %.2f too high", abortRate)
	}
}

func TestTPCCContinuesAcrossFailure(t *testing.T) {
	c := core.New(core.Options{NumMachines: 5, Seed: 43, LeaseDuration: 5 * sim.Millisecond})
	cfg := DefaultConfig(8)
	cfg.CustomersPerDist = 12
	cfg.Items = 120
	w, err := Setup(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := loadgen.New(c, w.Mix())
	g.Start([]int{0, 1, 2, 3, 4}, 2, 1)
	c.RunFor(20 * sim.Millisecond)
	before := w.NewOrders

	c.Kill(4)
	c.RunFor(400 * sim.Millisecond)
	g.Stop()
	c.RunFor(10 * sim.Millisecond)

	if w.NewOrders <= before {
		t.Fatalf("no new orders after the failure: %d -> %d", before, w.NewOrders)
	}
	// Consistency audit: district next_o_id-1 must equal the number of
	// orders retrievable from the orders index for that district.
	wh := w.whs[0]
	reader := wh.home
	if reader == 4 {
		reader = 0
	}
	m := c.Machine(reader)
	for d := 1; d <= 3; d++ {
		var next uint32
		err := loadgen.RunSync(c, m, 0, func(tx *core.Tx, done func(error)) {
			wh.dTbl.Get(tx, kv.U64Key(uint64(d)), func(drow []byte, ok bool, err error) {
				if ok {
					next = binary.LittleEndian.Uint32(drow)
				}
				done(err)
			})
		})
		if err != nil {
			t.Fatalf("district read: %v", err)
		}
		if next == 0 {
			t.Fatalf("district %d row lost", d)
		}
		// Every committed order must be present in the index.
		for o := 1; o < int(next); o++ {
			o := o
			err := loadgen.RunSync(c, m, 1, func(tx *core.Tx, done func(error)) {
				wh.orders[d].Get(tx, m, orderKey(d, o), func(_ []byte, ok bool, err error) {
					if err == nil && !ok {
						t.Errorf("district %d order %d missing from index", d, o)
					}
					done(err)
				})
			})
			if err != nil {
				t.Fatalf("order read: %v", err)
			}
		}
	}
}
