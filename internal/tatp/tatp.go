// Package tatp implements the Telecommunication Application Transaction
// Processing benchmark (§6.2–§6.3) on the FaRM API: four tables stored as
// FaRM hash tables, the standard seven-transaction mix, lock-free reads
// for the 70% of operations that are single-row lookups, read validation
// for the 10% that read 2–4 rows, the full commit protocol for the 20%
// updates, and — as in the paper — function shipping of single-field
// updates to the primary of the row.
//
// The database is deliberately NOT partitioned ("TATP is partitionable but
// we have not partitioned it, so most operations access data on remote
// machines", §6.2).
package tatp

import (
	"encoding/binary"
	"fmt"

	"farm/internal/core"
	"farm/internal/kv"
	"farm/internal/loadgen"
	"farm/internal/sim"
)

// Row sizes (bytes).
const (
	subscriberRow = 40 // bit/hex/byte2 fields + locations
	accessInfoRow = 16
	specialFacRow = 12
	callFwdRow    = 16
)

// Workload holds the populated database.
type Workload struct {
	C *core.Cluster
	N uint64 // subscribers

	Subscriber *kv.Table
	AccessInfo *kv.Table
	SpecialFac *kv.Table
	CallFwd    *kv.Table

	// Function-shipping plumbing for UPDATE_LOCATION.
	nextToken uint64
	pending   map[uint64]func(bool)

	// FunctionShipped counts UPDATE_LOCATION operations executed at the
	// row's primary instead of through a distributed commit.
	FunctionShipped uint64
}

// Composite keys.
func aiKey(s uint64, ai int) []byte { return kv.U64Key(s<<2 | uint64(ai-1)) }
func sfKey(s uint64, sf int) []byte { return kv.U64Key(s<<2 | uint64(sf-1)) }
func cfKey(s uint64, sf, start int) []byte {
	return kv.U64Key(s<<7 | uint64(sf-1)<<5 | uint64(start))
}

// Setup creates the tables over `regions` fresh regions and populates n
// subscribers. Population follows the TATP generator: every subscriber has
// 1–4 access-info rows, 1–4 special facilities, and 0–3 call forwardings
// per facility, chosen pseudo-randomly.
func Setup(c *core.Cluster, n uint64, regions int) (*Workload, error) {
	regionIDs, err := c.CreateRegions(0, regions, 0)
	if err != nil {
		return nil, err
	}
	w := &Workload{C: c, N: n, pending: make(map[uint64]func(bool))}
	w.Subscriber = kv.MustCreate(c, c.Machine(0), kv.Config{
		Name: "subscriber", Buckets: int(n/3) + 1, Slots: 4, MaxKey: 8, MaxVal: subscriberRow, Regions: regionIDs,
	})
	w.AccessInfo = kv.MustCreate(c, c.Machine(0), kv.Config{
		Name: "access_info", Buckets: int(n) + 1, Slots: 4, MaxKey: 8, MaxVal: accessInfoRow, Regions: regionIDs,
	})
	w.SpecialFac = kv.MustCreate(c, c.Machine(0), kv.Config{
		Name: "special_facility", Buckets: int(n) + 1, Slots: 4, MaxKey: 8, MaxVal: specialFacRow, Regions: regionIDs,
	})
	w.CallFwd = kv.MustCreate(c, c.Machine(0), kv.Config{
		Name: "call_forwarding", Buckets: int(n) + 1, Slots: 4, MaxKey: 8, MaxVal: callFwdRow, Regions: regionIDs,
	})

	rng := sim.NewRand(c.Opts.Seed * 77)
	const perTx = 8
	for base := uint64(0); base < n; base += perTx {
		base := base
		err := loadgen.RunSync(c, c.Machine(int(base)%len(c.Machines)), 0, func(tx *core.Tx, done func(error)) {
			var popSub func(i uint64)
			popSub = func(i uint64) {
				s := base + i
				if i >= perTx || s >= n {
					done(nil)
					return
				}
				steps := w.populateOne(tx, rng, s)
				runSteps(steps, func(err error) {
					if err != nil {
						done(err)
						return
					}
					popSub(i + 1)
				})
			}
			popSub(0)
		})
		if err != nil {
			return nil, fmt.Errorf("tatp: populate at %d: %w", base, err)
		}
	}
	w.installHandlers()
	return w, nil
}

// step is a population action; runSteps chains them.
type step func(next func(error))

func runSteps(steps []step, done func(error)) {
	var run func(i int)
	run = func(i int) {
		if i == len(steps) {
			done(nil)
			return
		}
		steps[i](func(err error) {
			if err != nil {
				done(err)
				return
			}
			run(i + 1)
		})
	}
	run(0)
}

func (w *Workload) populateOne(tx *core.Tx, rng *sim.Rand, s uint64) []step {
	var steps []step
	put := func(t *kv.Table, key, val []byte) {
		steps = append(steps, func(next func(error)) { t.Put(tx, key, val, next) })
	}
	put(w.Subscriber, kv.U64Key(s), subscriberValue(s, uint32(s%1000), uint32(s%997)))
	nAI := rng.Intn(4) + 1
	for ai := 1; ai <= nAI; ai++ {
		row := make([]byte, accessInfoRow)
		binary.LittleEndian.PutUint64(row, s)
		row[8] = byte(ai)
		put(w.AccessInfo, aiKey(s, ai), row)
	}
	nSF := rng.Intn(4) + 1
	for sf := 1; sf <= nSF; sf++ {
		row := make([]byte, specialFacRow)
		binary.LittleEndian.PutUint64(row, s)
		row[8] = byte(sf)
		if rng.Bool(0.85) {
			row[9] = 1 // is_active
		}
		put(w.SpecialFac, sfKey(s, sf), row)
		nCF := rng.Intn(4)
		for k := 0; k < nCF; k++ {
			start := []int{0, 8, 16}[k%3]
			row := make([]byte, callFwdRow)
			binary.LittleEndian.PutUint64(row, s)
			row[8] = byte(sf)
			row[9] = byte(start)
			row[10] = byte(start + 8)
			put(w.CallFwd, cfKey(s, sf, start), row)
		}
	}
	return steps
}

func subscriberValue(s uint64, msc, vlr uint32) []byte {
	row := make([]byte, subscriberRow)
	binary.LittleEndian.PutUint64(row, s)
	binary.LittleEndian.PutUint32(row[28:], msc)
	binary.LittleEndian.PutUint32(row[32:], vlr)
	return row
}

// --- Function shipping (UPDATE_LOCATION, §6.2) ---

type shipUpdateLocation struct {
	S     uint64
	VLR   uint32
	Token uint64
	From  int
}

type shipAck struct {
	Token uint64
	OK    bool
}

func (w *Workload) installHandlers() {
	for _, m := range w.C.Machines {
		m := m
		m.SetAppHandler(func(src int, msg interface{}) {
			switch v := msg.(type) {
			case *shipUpdateLocation:
				w.execUpdateLocation(m, v, func(ok bool) {
					m.SendApp(v.From, &shipAck{Token: v.Token, OK: ok})
				})
			case *shipAck:
				if cb := w.pending[v.Token]; cb != nil {
					delete(w.pending, v.Token)
					cb(v.OK)
				}
			}
		})
	}
}

// execUpdateLocation runs the single-field update as a local transaction
// at (ideally) the row's primary.
func (w *Workload) execUpdateLocation(m *core.Machine, req *shipUpdateLocation, done func(bool)) {
	tx := m.Begin(int(req.S) % m.Threads())
	w.Subscriber.Get(tx, kv.U64Key(req.S), func(val []byte, ok bool, err error) {
		if err != nil || !ok {
			done(false)
			return
		}
		binary.LittleEndian.PutUint32(val[32:], req.VLR)
		w.Subscriber.Put(tx, kv.U64Key(req.S), val, func(err error) {
			if err != nil {
				done(false)
				return
			}
			tx.Commit(func(err error) { done(err == nil) })
		})
	})
}

// --- The seven TATP transactions ---

// Mix returns the standard TATP operation with the standard percentages:
// 35 GET_SUBSCRIBER_DATA, 10 GET_NEW_DESTINATION, 35 GET_ACCESS_DATA,
// 2 UPDATE_SUBSCRIBER_DATA, 14 UPDATE_LOCATION, 2 INSERT_CALL_FORWARDING,
// 2 DELETE_CALL_FORWARDING.
func (w *Workload) Mix() loadgen.Op {
	return func(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
		s := rng.Uint64n(w.N)
		switch p := rng.Intn(100); {
		case p < 35:
			w.GetSubscriberData(m, thread, s, done)
		case p < 45:
			w.GetNewDestination(m, thread, s, rng, done)
		case p < 80:
			w.GetAccessData(m, thread, s, rng, done)
		case p < 82:
			w.UpdateSubscriberData(m, thread, s, rng, done)
		case p < 96:
			w.UpdateLocation(m, thread, s, rng, done)
		case p < 98:
			w.InsertCallForwarding(m, thread, s, rng, done)
		default:
			w.DeleteCallForwarding(m, thread, s, rng, done)
		}
	}
}

// GetSubscriberData is a single-row lookup using a lock-free read (70% of
// TATP together with GetAccessData; usually one RDMA read, no commit
// phase).
func (w *Workload) GetSubscriberData(m *core.Machine, thread int, s uint64, done func(bool)) {
	w.Subscriber.LockFreeGet(m, thread, kv.U64Key(s), func(_ []byte, ok bool, err error) {
		done(err == nil && ok)
	})
}

// GetAccessData is the other single-row lock-free lookup; a miss (the
// access-info row does not exist) still counts as a completed transaction.
func (w *Workload) GetAccessData(m *core.Machine, thread int, s uint64, rng *sim.Rand, done func(bool)) {
	ai := rng.Intn(4) + 1
	w.AccessInfo.LockFreeGet(m, thread, aiKey(s, ai), func(_ []byte, _ bool, err error) {
		done(err == nil)
	})
}

// GetNewDestination reads a special facility and its call-forwarding rows
// (2–4 rows) and needs validation at commit (§6.2).
func (w *Workload) GetNewDestination(m *core.Machine, thread int, s uint64, rng *sim.Rand, done func(bool)) {
	sf := rng.Intn(4) + 1
	tx := m.Begin(thread)
	w.SpecialFac.Get(tx, sfKey(s, sf), func(val []byte, ok bool, err error) {
		if err != nil {
			done(false)
			return
		}
		if !ok || val[9] == 0 {
			tx.Commit(func(err error) { done(err == nil) })
			return
		}
		starts := []int{0, 8, 16}
		var read func(i int)
		read = func(i int) {
			if i == len(starts) {
				tx.Commit(func(err error) { done(err == nil) })
				return
			}
			w.CallFwd.Get(tx, cfKey(s, sf, starts[i]), func(_ []byte, _ bool, err error) {
				if err != nil {
					done(false)
					return
				}
				read(i + 1)
			})
		}
		read(0)
	})
}

// UpdateSubscriberData updates one subscriber bit and one special-facility
// field in a single distributed transaction.
func (w *Workload) UpdateSubscriberData(m *core.Machine, thread int, s uint64, rng *sim.Rand, done func(bool)) {
	sf := rng.Intn(4) + 1
	tx := m.Begin(thread)
	w.Subscriber.Get(tx, kv.U64Key(s), func(sub []byte, ok bool, err error) {
		if err != nil || !ok {
			done(false)
			return
		}
		sub[8] ^= 1 // bit_1
		w.Subscriber.Put(tx, kv.U64Key(s), sub, func(err error) {
			if err != nil {
				done(false)
				return
			}
			w.SpecialFac.Get(tx, sfKey(s, sf), func(fac []byte, ok bool, err error) {
				if err != nil {
					done(false)
					return
				}
				if !ok {
					tx.Commit(func(err error) { done(err == nil) })
					return
				}
				fac[10] = byte(rng.Intn(256)) // data_a
				w.SpecialFac.Put(tx, sfKey(s, sf), fac, func(err error) {
					if err != nil {
						done(false)
						return
					}
					tx.Commit(func(err error) { done(err == nil) })
				})
			})
		})
	})
}

// UpdateLocation updates a single subscriber field. Since 70% of TATP
// updates touch one field, the paper function-ships them to the primary;
// we ship when the row's primary is known and remote, and run locally
// otherwise.
func (w *Workload) UpdateLocation(m *core.Machine, thread int, s uint64, rng *sim.Rand, done func(bool)) {
	vlr := uint32(rng.Intn(1 << 30))
	pm := m.PrimaryOf(w.Subscriber.BucketAddr(kv.U64Key(s)).Region)
	if pm >= 0 && pm != m.ID {
		w.FunctionShipped++
		w.nextToken++
		token := w.nextToken
		w.pending[token] = done
		m.SendApp(pm, &shipUpdateLocation{S: s, VLR: vlr, Token: token, From: m.ID})
		return
	}
	w.execUpdateLocation(m, &shipUpdateLocation{S: s, VLR: vlr}, done)
}

// InsertCallForwarding reads the subscriber and special facility, then
// inserts a call-forwarding row (full commit protocol).
func (w *Workload) InsertCallForwarding(m *core.Machine, thread int, s uint64, rng *sim.Rand, done func(bool)) {
	sf := rng.Intn(4) + 1
	start := []int{0, 8, 16}[rng.Intn(3)]
	tx := m.Begin(thread)
	w.Subscriber.Get(tx, kv.U64Key(s), func(_ []byte, ok bool, err error) {
		if err != nil || !ok {
			done(false)
			return
		}
		row := make([]byte, callFwdRow)
		binary.LittleEndian.PutUint64(row, s)
		row[8] = byte(sf)
		row[9] = byte(start)
		row[10] = byte(start + 8)
		w.CallFwd.Put(tx, cfKey(s, sf, start), row, func(err error) {
			if err != nil {
				done(false)
				return
			}
			tx.Commit(func(err error) { done(err == nil) })
		})
	})
}

// DeleteCallForwarding removes a call-forwarding row.
func (w *Workload) DeleteCallForwarding(m *core.Machine, thread int, s uint64, rng *sim.Rand, done func(bool)) {
	sf := rng.Intn(4) + 1
	start := []int{0, 8, 16}[rng.Intn(3)]
	tx := m.Begin(thread)
	w.CallFwd.Delete(tx, cfKey(s, sf, start), func(_ bool, err error) {
		if err != nil {
			done(false)
			return
		}
		tx.Commit(func(err error) { done(err == nil) })
	})
}
