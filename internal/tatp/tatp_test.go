package tatp

import (
	"testing"

	"farm/internal/core"
	"farm/internal/kv"
	"farm/internal/loadgen"
	"farm/internal/sim"
)

func setup(t *testing.T, n uint64) (*core.Cluster, *Workload) {
	t.Helper()
	c := core.New(core.Options{NumMachines: 5, Seed: 31})
	w, err := Setup(c, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c, w
}

func TestPopulation(t *testing.T) {
	c, w := setup(t, 200)
	// Every subscriber row must exist.
	missing := 0
	fired := 0
	for s := uint64(0); s < 200; s += 7 {
		w.Subscriber.LockFreeGet(c.Machine(int(s)%5), 0, kv.U64Key(s), func(_ []byte, ok bool, err error) {
			fired++
			if err != nil || !ok {
				missing++
			}
		})
	}
	c.RunFor(50 * sim.Millisecond)
	if fired == 0 || missing != 0 {
		t.Fatalf("fired=%d missing=%d", fired, missing)
	}
}

func TestEachTransactionType(t *testing.T) {
	c, w := setup(t, 100)
	rng := sim.NewRand(4)
	run := func(name string, op func(done func(bool))) {
		t.Helper()
		completed, ok := false, false
		op(func(r bool) { completed, ok = true, r })
		deadline := c.Eng.Now() + 2*sim.Second
		for !completed && c.Eng.Now() < deadline {
			if !c.Eng.Step() {
				break
			}
		}
		if !completed {
			t.Fatalf("%s never completed", name)
		}
		if !ok {
			t.Logf("%s reported not-ok (acceptable for probabilistic rows)", name)
		}
	}
	m := c.Machine(1)
	run("GetSubscriberData", func(d func(bool)) { w.GetSubscriberData(m, 0, 5, d) })
	run("GetAccessData", func(d func(bool)) { w.GetAccessData(m, 0, 5, rng, d) })
	run("GetNewDestination", func(d func(bool)) { w.GetNewDestination(m, 0, 5, rng, d) })
	run("UpdateSubscriberData", func(d func(bool)) { w.UpdateSubscriberData(m, 1, 6, rng, d) })
	run("UpdateLocation", func(d func(bool)) { w.UpdateLocation(m, 1, 7, rng, d) })
	run("InsertCallForwarding", func(d func(bool)) { w.InsertCallForwarding(m, 2, 8, rng, d) })
	run("DeleteCallForwarding", func(d func(bool)) { w.DeleteCallForwarding(m, 2, 8, rng, d) })
}

func TestUpdateLocationPersists(t *testing.T) {
	c, w := setup(t, 50)
	rng := sim.NewRand(9)
	// Run several UPDATE_LOCATIONs from a machine that is not the primary
	// so function shipping triggers, then check the field changed.
	m := c.Machine(2)
	doneCount := 0
	var next func(s uint64)
	next = func(s uint64) {
		if s >= 10 {
			return
		}
		w.UpdateLocation(m, 0, s, rng, func(ok bool) {
			if !ok {
				t.Errorf("update location of %d failed", s)
			}
			doneCount++
			next(s + 1)
		})
	}
	next(0)
	deadline := c.Eng.Now() + 2*sim.Second
	for doneCount < 10 && c.Eng.Now() < deadline {
		c.Eng.Step()
	}
	if doneCount != 10 {
		t.Fatalf("completed %d/10", doneCount)
	}
	// With 10 subscribers spread over buckets in many regions, at least
	// one primary must have been remote from machine 2.
	if w.FunctionShipped == 0 {
		t.Error("no update was function-shipped")
	}
}

func TestMixRunsAndCommits(t *testing.T) {
	c, w := setup(t, 300)
	g := loadgen.New(c, w.Mix())
	tput, med, p99 := g.RunPoint([]int{0, 1, 2, 3, 4}, 4, 2, 5*sim.Millisecond, 30*sim.Millisecond)
	if tput < 50000 {
		t.Fatalf("TATP throughput %v/s too low", tput)
	}
	if med <= 0 || p99 < med {
		t.Fatalf("latencies: %v %v", med, p99)
	}
	abortRate := float64(g.Aborted()) / float64(g.Committed()+g.Aborted())
	if abortRate > 0.2 {
		t.Fatalf("abort rate %.2f too high", abortRate)
	}
	t.Logf("TATP: %.0f tx/s med=%v p99=%v shipped=%d aborts=%.3f",
		tput, med, p99, w.FunctionShipped, abortRate)
}

func TestTATPSurvivesFailureWithIntegrity(t *testing.T) {
	c := core.New(core.Options{NumMachines: 5, Seed: 59, LeaseDuration: 5 * sim.Millisecond})
	w, err := Setup(c, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := loadgen.New(c, w.Mix())
	g.Start([]int{0, 1, 2, 3, 4}, 3, 2)
	c.RunFor(20 * sim.Millisecond)
	c.Kill(3)
	c.RunFor(300 * sim.Millisecond)
	g.Stop()
	c.RunFor(20 * sim.Millisecond)

	// Every subscriber row must still be readable through a survivor.
	missing, fired := 0, 0
	for s := uint64(0); s < 300; s += 5 {
		w.Subscriber.LockFreeGet(c.Machine(1), 0, kv.U64Key(s), func(_ []byte, ok bool, err error) {
			fired++
			if err != nil || !ok {
				missing++
			}
		})
	}
	deadline := c.Now() + 2*sim.Second
	for fired < 60 && c.Now() < deadline {
		if !c.Eng.Step() {
			break
		}
	}
	if missing > 0 || fired == 0 {
		t.Fatalf("fired=%d missing=%d after failure", fired, missing)
	}
	if g.Committed() == 0 {
		t.Fatal("no commits")
	}
}
