package loadgen

import (
	"testing"

	"farm/internal/core"
	"farm/internal/proto"
	"farm/internal/sim"
)

func setup(t *testing.T) (*core.Cluster, proto.Addr) {
	t.Helper()
	c := core.New(core.Options{NumMachines: 4, Seed: 61})
	if _, err := c.CreateRegions(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	var addr proto.Addr
	err := RunSync(c, c.Machine(0), 0, func(tx *core.Tx, done func(error)) {
		tx.Alloc(8, []byte("workload"), nil, func(a proto.Addr, err error) {
			addr = a
			done(err)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, addr
}

func TestRunSync(t *testing.T) {
	c, addr := setup(t)
	var got []byte
	err := RunSync(c, c.Machine(2), 1, func(tx *core.Tx, done func(error)) {
		tx.Read(addr, 8, func(data []byte, err error) {
			got = data
			done(err)
		})
	})
	if err != nil || string(got) != "workload" {
		t.Fatalf("RunSync: %q %v", got, err)
	}
}

func TestGeneratorClosedLoop(t *testing.T) {
	c, addr := setup(t)
	ops := 0
	g := New(c, func(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
		ops++
		m.LockFreeRead(thread, addr, 8, func(_ []byte, err error) { done(err == nil) })
	})
	g.Start([]int{0, 1, 2, 3}, 2, 3)
	c.RunFor(5 * sim.Millisecond)
	g.Stop()
	c.RunFor(sim.Millisecond)
	if g.Committed() == 0 || ops == 0 {
		t.Fatal("no operations ran")
	}
	// Closed loop: operations stop shortly after Stop.
	before := g.Committed()
	c.RunFor(5 * sim.Millisecond)
	if g.Committed() != before {
		t.Fatalf("operations continued after Stop: %d -> %d", before, g.Committed())
	}
}

func TestGeneratorWarmupExcluded(t *testing.T) {
	c, addr := setup(t)
	g := New(c, func(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
		m.LockFreeRead(thread, addr, 8, func(_ []byte, err error) { done(err == nil) })
	})
	g.Warmup = 3 * sim.Millisecond
	g.Start([]int{1}, 1, 1)
	c.RunFor(2 * sim.Millisecond)
	if g.Latency.Count() != 0 {
		t.Fatalf("latency recorded during warmup: %d", g.Latency.Count())
	}
	c.RunFor(5 * sim.Millisecond)
	g.Stop()
	if g.Latency.Count() == 0 {
		t.Fatal("no latency after warmup")
	}
}

func TestGeneratorAbortBackoffAndAccounting(t *testing.T) {
	c, _ := setup(t)
	fail := true
	g := New(c, func(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
		ok := !fail
		fail = !fail
		c.Eng.After(sim.Microsecond, func() { done(ok) })
	})
	g.Start([]int{0}, 1, 1)
	c.RunFor(2 * sim.Millisecond)
	g.Stop()
	if g.Aborted() == 0 || g.Committed() == 0 {
		t.Fatalf("accounting: committed=%d aborted=%d", g.Committed(), g.Aborted())
	}
	// Alternating success/failure: counts within 2x of each other.
	ratio := float64(g.Aborted()) / float64(g.Committed())
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("ratio %v", ratio)
	}
}

func TestRunPointReportsThroughputAndLatency(t *testing.T) {
	c, addr := setup(t)
	g := New(c, func(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
		m.LockFreeRead(thread, addr, 8, func(_ []byte, err error) { done(err == nil) })
	})
	tput, med, p99 := g.RunPoint([]int{0, 1, 2, 3}, 2, 2, sim.Millisecond, 10*sim.Millisecond)
	if tput <= 0 || med <= 0 || p99 < med {
		t.Fatalf("RunPoint: %v %v %v", tput, med, p99)
	}
}
