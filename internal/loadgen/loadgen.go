// Package loadgen drives closed-loop workloads against a cluster the way
// the paper's benchmarks do (§6.3): every machine runs the benchmark code
// itself (symmetric model), each worker thread keeps a fixed number of
// operations outstanding, and the harness records per-operation latency
// histograms and a 1 ms throughput timeline. Load is varied by changing
// active thread count and per-thread concurrency, exactly how Figures 7–8
// sweep their throughput–latency curves.
package loadgen

import (
	"farm/internal/core"
	"farm/internal/sim"
	"farm/internal/stats"
)

// Op runs one operation on machine m / worker thread `thread` and must
// call done exactly once (ok=false counts as an abort/retry, not reported
// in throughput).
type Op func(m *core.Machine, thread int, rng *sim.Rand, done func(ok bool))

// Generator drives Ops in a closed loop.
type Generator struct {
	c  *core.Cluster
	op Op

	// Latency is recorded for successful operations only, after Warmup.
	Latency *stats.Histogram
	// Timeline counts successful completions per 1 ms bucket.
	Timeline *stats.Timeline
	// Warmup excludes the initial ramp from the statistics.
	Warmup sim.Time

	committed uint64
	aborted   uint64
	stopped   bool
	startAt   sim.Time
}

// New creates a generator for op.
func New(c *core.Cluster, op Op) *Generator {
	return &Generator{
		c:        c,
		op:       op,
		Latency:  stats.NewHistogram(),
		Timeline: stats.NewTimeline(sim.Millisecond),
	}
}

// Start launches the closed loops: on every listed machine, `threads`
// worker threads each keep `concurrency` operations outstanding.
func (g *Generator) Start(machines []int, threads, concurrency int) {
	g.startAt = g.c.Eng.Now()
	for _, mi := range machines {
		m := g.c.Machines[mi]
		for th := 0; th < threads; th++ {
			for slot := 0; slot < concurrency; slot++ {
				rng := sim.NewRand(g.c.Opts.Seed*1_000_003 + uint64(mi)*1009 + uint64(th)*31 + uint64(slot) + 1)
				g.loop(m, th, rng)
			}
		}
	}
}

func (g *Generator) loop(m *core.Machine, thread int, rng *sim.Rand) {
	if g.stopped || !m.Alive() {
		return
	}
	begin := g.c.Eng.Now()
	g.op(m, thread, rng, func(ok bool) {
		now := g.c.Eng.Now()
		if ok {
			g.committed++
			if now-g.startAt >= g.Warmup {
				g.Latency.Record(now - begin)
				g.Timeline.Add(now, 1)
			}
			g.loop(m, thread, rng)
			return
		}
		g.aborted++
		// Back off briefly on aborts (conflict retry).
		g.c.Eng.After(rng.Duration(20*sim.Microsecond)+sim.Microsecond, func() {
			g.loop(m, thread, rng)
		})
	})
}

// Stop ends the loops after in-flight operations complete.
func (g *Generator) Stop() { g.stopped = true }

// Committed and Aborted report operation counts.
func (g *Generator) Committed() uint64 { return g.committed }
func (g *Generator) Aborted() uint64   { return g.aborted }

// ThroughputPerSecond is the successful-operation rate over [from, to).
func (g *Generator) ThroughputPerSecond(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	return g.Timeline.WindowAverage(from, to) * 1000
}

// RunSync drives one transaction to completion synchronously (setup and
// population helper). fn must call done(err) exactly once; a nil error
// commits the transaction.
func RunSync(c *core.Cluster, m *core.Machine, thread int, fn func(tx *core.Tx, done func(error))) error {
	finished := false
	var result error
	tx := m.Begin(thread)
	fn(tx, func(err error) {
		if err != nil {
			finished, result = true, err
			return
		}
		tx.Commit(func(err error) { finished, result = true, err })
	})
	deadline := c.Eng.Now() + 30*sim.Second
	for !finished && c.Eng.Now() < deadline {
		if !c.Eng.Step() {
			break
		}
	}
	if !finished {
		return core.ErrUnavailable
	}
	return result
}

// RunPoint drives one load point for the throughput–latency sweeps: run
// for warmup+measure of virtual time and return (throughput ops/s, median,
// p99).
func (g *Generator) RunPoint(machines []int, threads, concurrency int, warmup, measure sim.Time) (float64, sim.Time, sim.Time) {
	g.Warmup = warmup
	g.Start(machines, threads, concurrency)
	g.c.Eng.RunFor(warmup + measure)
	g.Stop()
	start := g.startAt + warmup
	tput := g.ThroughputPerSecond(start, start+measure)
	return tput, g.Latency.Median(), g.Latency.P99()
}
