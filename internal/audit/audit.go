// Package audit implements replica state-integrity digests: an
// order-independent, incrementally maintainable summary of a region
// replica's committed state, plus the scan and drill-down helpers the
// cluster-wide audit protocol uses to compare a primary against its
// backups and localize the first divergent object.
//
// The digest algebra is a commutative composable hash: each slot of each
// classed block contributes ObjectHash(offset, header word, payload), and
// a replica's digest is the sum of all contributions modulo 2^64. Sums
// commute, so primaries and backups converge to the same digest no matter
// in which order they applied the same set of committed writes — the
// property that makes an O(1)-per-mutation incremental update sound:
// installing a write is Unfold(old slot state) followed by Fold(new slot
// state), regardless of what else happened in between.
//
// The lock bit is masked out of the header word before hashing: locks are
// transient coordination state that legitimately differs across replicas
// (only primaries lock), while version, allocation bit and payload are
// the replicated state §4/§5 promise to keep identical.
//
// Digest domain. A replica's digest covers every slot of every block
// whose size class the replica knows (its block-header map), allocated or
// free — free slots carry residual bytes that re-replication must also
// reproduce. Blocks without a known class are outside the domain until
// their header arrives; AddBlock folds their current contents in at that
// moment. The domain therefore always equals "what a fresh scan over the
// replica's own headers would hash", which is the invariant the per-replica
// self-check (incremental value vs. fresh scan) enforces.
package audit

import "farm/internal/regionmem"

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters; the digest is
// not cryptographic — it defends against bugs and bit rot, not adversaries.
const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

// ObjectHash hashes one slot's state: its region offset, its header word
// (callers pass the lock-masked word) and its payload bytes (the full slot
// extent past the header). It allocates nothing.
func ObjectHash(off int, word uint64, payload []byte) uint64 {
	h := fnvOffset
	h = (h ^ uint64(off)) * fnvPrime
	for s := 0; s < 64; s += 8 {
		h = (h ^ (word>>s)&0xff) * fnvPrime
	}
	for _, b := range payload {
		h = (h ^ uint64(b)) * fnvPrime
	}
	// One more round so a zero payload still mixes the length in.
	h = (h ^ uint64(len(payload))) * fnvPrime
	return h
}

// Digest is the incrementally maintained commutative digest of one
// replica. The zero value is the digest of an empty domain. Fold and
// Unfold are exact inverses, so maintaining a Digest costs two hashes per
// mutation and no allocation.
type Digest struct {
	sum uint64
}

// Fold adds one slot state's contribution. The word must already be
// lock-masked (regionmem.MaskLock); payload is the slot's full payload
// extent.
func (d *Digest) Fold(off int, word uint64, payload []byte) {
	d.sum += ObjectHash(off, word, payload)
}

// Unfold removes a contribution previously folded in.
func (d *Digest) Unfold(off int, word uint64, payload []byte) {
	d.sum -= ObjectHash(off, word, payload)
}

// Value returns the current digest.
func (d *Digest) Value() uint64 { return d.sum }

// Reseed overwrites the digest with a freshly scanned value (used after a
// repair re-replication, whose force-copies replace bytes that were never
// folded in because the corruption bypassed the write hooks).
func (d *Digest) Reseed(v uint64) { d.sum = v }

// ScanBlock hashes every slot of one block of size class `class` whose
// bytes start at mem[base]. It is the ground truth the incremental digest
// is audited against: it reads the memory as it is, so silent corruption
// (which bypasses the incremental hooks) shows up here.
func ScanBlock(mem []byte, base, blockSize, class int) uint64 {
	var sum uint64
	for off := base; off+class <= base+blockSize; off += class {
		word := regionmem.MaskLock(regionmem.ReadHeader(mem, off))
		sum += ObjectHash(off, word, mem[off+regionmem.HeaderSize:off+class])
	}
	return sum
}

// ScanRegion hashes a replica's full digest domain: every slot of every
// classed block. Summation commutes, so the header map may be ranged
// directly (per the determinism rule in internal/core/order.go).
func ScanRegion(mem []byte, blockSize int, headers map[int]int) uint64 {
	var sum uint64
	for b, class := range headers {
		sum += ScanBlock(mem, b*blockSize, blockSize, class)
	}
	return sum
}

// BlockDigests returns each classed block's scan digest, for the
// region → block step of the drill-down diff.
func BlockDigests(mem []byte, blockSize int, headers map[int]int) map[int]uint64 {
	out := make(map[int]uint64, len(headers))
	for b, class := range headers {
		out[b] = ScanBlock(mem, b*blockSize, blockSize, class)
	}
	return out
}

// ObjectDigests returns the per-slot digests of one block in slot order,
// for the block → object step of the drill-down diff.
func ObjectDigests(mem []byte, base, blockSize, class int) []uint64 {
	out := make([]uint64, 0, blockSize/class)
	for off := base; off+class <= base+blockSize; off += class {
		word := regionmem.MaskLock(regionmem.ReadHeader(mem, off))
		out = append(out, ObjectHash(off, word, mem[off+regionmem.HeaderSize:off+class]))
	}
	return out
}

// FirstDivergentBlock compares two per-block digest maps over the blocks
// `blocks` (callers pass sorted keys for determinism) and returns the
// first block whose digests differ, or -1.
func FirstDivergentBlock(blocks []int, a, b map[int]uint64) int {
	for _, blk := range blocks {
		if a[blk] != b[blk] {
			return blk
		}
	}
	return -1
}

// FirstDivergentObject compares two per-slot digest sequences and returns
// the first differing slot index, or -1.
func FirstDivergentObject(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
