package audit

import (
	"testing"

	"farm/internal/regionmem"
)

// layout returns a small two-block geometry for digest tests.
func layout() regionmem.Layout { return regionmem.Layout{RegionSize: 1 << 12, BlockSize: 1 << 10} }

// write commits a payload at off, maintaining dig incrementally.
func write(mem []byte, off int, ver uint64, alloc bool, payload []byte, class int, dig *Digest) {
	regionmem.CommitWriteDigest(mem, off, ver, alloc, payload, class, dig)
}

// TestFoldUnfoldInverse asserts Unfold exactly cancels Fold, in any order.
func TestFoldUnfoldInverse(t *testing.T) {
	var d Digest
	d.Fold(16, 42, []byte{1, 2, 3})
	d.Fold(32, 7, []byte{9})
	d.Unfold(16, 42, []byte{1, 2, 3})
	d.Unfold(32, 7, []byte{9})
	if d.Value() != 0 {
		t.Fatalf("fold/unfold did not cancel: %#x", d.Value())
	}
}

// TestOrderIndependence applies the same set of writes in two different
// orders (with different intermediate states) and requires identical
// digests — the property that lets primaries and backups converge despite
// applying commits in different interleavings.
func TestOrderIndependence(t *testing.T) {
	const class = 16
	lo := layout()
	writes := []struct {
		off int
		ver uint64
		val byte
	}{
		{0, 1, 0xAA}, {16, 1, 0xBB}, {32, 2, 0xCC}, {48, 3, 0xDD}, {64, 1, 0xEE},
	}

	run := func(order []int) (uint64, []byte) {
		mem := make([]byte, lo.RegionSize)
		var d Digest
		// Fold the empty block in first (AddBlock semantics).
		for off := 0; off+class <= lo.BlockSize; off += class {
			d.Fold(off, regionmem.MaskLock(regionmem.ReadHeader(mem, off)), mem[off+regionmem.HeaderSize:off+class])
		}
		for _, i := range order {
			w := writes[i]
			write(mem, w.off, w.ver, true, []byte{w.val, 0, 0, 0, 0, 0, 0, 0}, class, &d)
		}
		return d.Value(), mem
	}

	a, memA := run([]int{0, 1, 2, 3, 4})
	b, memB := run([]int{4, 2, 0, 3, 1})
	if a != b {
		t.Fatalf("digest depends on apply order: %#x vs %#x", a, b)
	}
	// And both equal the ground-truth scan.
	headers := map[int]int{0: class}
	if s := ScanRegion(memA, lo.BlockSize, headers); s != a {
		t.Fatalf("incremental %#x != scan %#x", a, s)
	}
	if s := ScanRegion(memB, lo.BlockSize, headers); s != b {
		t.Fatalf("incremental %#x != scan %#x (order B)", b, s)
	}
}

// TestLockBitMasked asserts locking and unlocking an object leaves its
// scan digest untouched (locks legitimately differ across replicas).
func TestLockBitMasked(t *testing.T) {
	lo := layout()
	mem := make([]byte, lo.RegionSize)
	headers := map[int]int{0: 16}
	regionmem.CommitWrite(mem, 16, 3, true, []byte{5})
	before := ScanRegion(mem, lo.BlockSize, headers)
	if !regionmem.TryLock(mem, 16, 3) {
		t.Fatal("TryLock failed")
	}
	if got := ScanRegion(mem, lo.BlockSize, headers); got != before {
		t.Fatalf("lock bit changed digest: %#x vs %#x", got, before)
	}
	regionmem.Unlock(mem, 16)
	if got := ScanRegion(mem, lo.BlockSize, headers); got != before {
		t.Fatalf("unlock changed digest: %#x vs %#x", got, before)
	}
}

// TestScanDetectsSilentCorruption flips one payload byte behind the
// incremental digest's back and requires the scan (but not the incremental
// value) to move — the reason cross-replica comparison and the self-check
// both use scans.
func TestScanDetectsSilentCorruption(t *testing.T) {
	lo := layout()
	mem := make([]byte, lo.RegionSize)
	var d Digest
	for off := 0; off+16 <= lo.BlockSize; off += 16 {
		d.Fold(off, 0, mem[off+regionmem.HeaderSize:off+16])
	}
	write(mem, 32, 1, true, []byte{1, 2, 3, 4}, 16, &d)
	headers := map[int]int{0: 16}
	if s := ScanRegion(mem, lo.BlockSize, headers); s != d.Value() {
		t.Fatalf("pre-corruption mismatch: inc %#x scan %#x", d.Value(), s)
	}
	mem[32+regionmem.HeaderSize] ^= 0xFF // silent corruption
	if s := ScanRegion(mem, lo.BlockSize, headers); s == d.Value() {
		t.Fatal("scan did not detect the corrupted byte")
	}
}

// TestDrillDown asserts the block → object diff localizes exactly the
// divergent slot.
func TestDrillDown(t *testing.T) {
	lo := layout()
	const class = 32
	a := make([]byte, lo.RegionSize)
	b := make([]byte, lo.RegionSize)
	headers := map[int]int{0: class, 2: class}
	for _, mem := range [][]byte{a, b} {
		regionmem.CommitWrite(mem, 0, 1, true, []byte{1})
		regionmem.CommitWrite(mem, 2*lo.BlockSize+class, 4, true, []byte{7, 7})
	}
	// Diverge one object in block 2.
	targetOff := 2*lo.BlockSize + 3*class
	b[targetOff+regionmem.HeaderSize+5] = 0x5A

	da := BlockDigests(a, lo.BlockSize, headers)
	db := BlockDigests(b, lo.BlockSize, headers)
	blk := FirstDivergentBlock([]int{0, 2}, da, db)
	if blk != 2 {
		t.Fatalf("divergent block = %d, want 2", blk)
	}
	oa := ObjectDigests(a, blk*lo.BlockSize, lo.BlockSize, class)
	ob := ObjectDigests(b, blk*lo.BlockSize, lo.BlockSize, class)
	slot := FirstDivergentObject(oa, ob)
	if got := blk*lo.BlockSize + slot*class; got != targetOff {
		t.Fatalf("localized offset %d, want %d", got, targetOff)
	}
	if FirstDivergentBlock([]int{0, 2}, da, da) != -1 {
		t.Fatal("identical block maps reported divergent")
	}
	if FirstDivergentObject(oa, oa) != -1 {
		t.Fatal("identical object digests reported divergent")
	}
}

// TestReseed asserts Reseed replaces the incremental value (the repair
// path: force-copied bytes were never folded in, so the digest is rebuilt
// from a scan).
func TestReseed(t *testing.T) {
	var d Digest
	d.Fold(0, 1, []byte{1})
	d.Reseed(0xDEAD)
	if d.Value() != 0xDEAD {
		t.Fatalf("Reseed: got %#x", d.Value())
	}
}

// TestCommitDigestUpdateZeroAlloc pins the per-commit digest update to 0
// allocations, mirroring the trace layer's enqueue-path guard: the hook
// runs on every commit apply at every replica, so an allocation here would
// be a per-transaction regression. The *Digest → DigestSink conversion is
// part of the measured path.
func TestCommitDigestUpdateZeroAlloc(t *testing.T) {
	lo := layout()
	mem := make([]byte, lo.RegionSize)
	var d Digest
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ver := uint64(0)
	avg := testing.AllocsPerRun(1000, func() {
		ver++
		regionmem.CommitWriteDigest(mem, 16, ver, true, payload, 16, &d)
	})
	if avg != 0 {
		t.Fatalf("per-commit digest update allocates: %v allocs/op", avg)
	}
}
