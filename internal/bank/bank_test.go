package bank

import (
	"testing"

	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/sim"
)

// TestBankConservation drives the full mix for a while and then audits
// that the sum of all balances is exactly what Setup deposited — the
// transfer transactions must neither mint nor destroy money under
// concurrent conflicting commits.
func TestBankConservation(t *testing.T) {
	c := core.New(core.Options{NumMachines: 5, Seed: 3})
	const accounts, initial = 64, 100
	w, err := Setup(c, accounts, 3, initial)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	machines := []int{0, 1, 2, 3, 4}
	g := loadgen.New(c, w.Mix())
	g.Start(machines, 2, 2)
	c.RunFor(20 * sim.Millisecond)
	g.Stop()
	c.RunFor(5 * sim.Millisecond) // drain in-flight operations
	if g.Committed() == 0 {
		t.Fatal("no transactions committed")
	}
	var sum uint64
	err = loadgen.RunSync(c, c.Machine(0), 0, func(tx *core.Tx, done func(error)) {
		var read func(i int)
		read = func(i int) {
			if i == accounts {
				done(nil)
				return
			}
			tx.Read(w.Accounts[i], 8, func(b []byte, err error) {
				if err != nil {
					done(err)
					return
				}
				sum += u64(b)
				read(i + 1)
			})
		}
		read(0)
	})
	if err != nil {
		t.Fatalf("final audit: %v", err)
	}
	if sum != w.Total() {
		t.Fatalf("conservation violated: Σ=%d want %d after %d commits / %d aborts",
			sum, w.Total(), g.Committed(), g.Aborted())
	}
	t.Logf("bank: %d commits, %d aborts, Σ=%d", g.Committed(), g.Aborted(), sum)
}
