// Package bank implements the uniform bank-transfer microbenchmark used
// across the repo's experiments: fixed-size accounts spread over a set of
// regions, two-account transfers that exercise the full four-phase commit
// (locks at two primaries, backup fan-out), and read-only audits that
// exercise validation-only commits. It is the write-heavy counterpart to
// TATP's read-dominated mix, so latency experiments report both ends of
// the spectrum.
//
// The chaos harness keeps its own inlined transfer driver (it needs
// fault-aware bookkeeping wired into the nemesis loop); this package is
// the reusable, measurement-friendly form for benchmarks.
package bank

import (
	"encoding/binary"
	"fmt"

	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/proto"
	"farm/internal/sim"
)

// auditReads is how many accounts one read-only audit scans.
const auditReads = 4

// Workload holds the opened accounts.
type Workload struct {
	C        *core.Cluster
	Accounts []proto.Addr
	Initial  uint64
}

// Setup creates `regions` fresh regions and opens `accounts` accounts with
// `initial` balance each. Accounts are opened in batches of eight per
// setup transaction, rotating the allocating machine so the allocator's
// local-primary preference spreads accounts across the cluster.
func Setup(c *core.Cluster, accounts, regions int, initial uint64) (*Workload, error) {
	if _, err := c.CreateRegions(0, regions, 0); err != nil {
		return nil, err
	}
	w := &Workload{C: c, Accounts: make([]proto.Addr, accounts), Initial: initial}
	const perTx = 8
	for base := 0; base < accounts; base += perTx {
		base := base
		m := c.Machine(base / perTx % len(c.Machines))
		err := loadgen.RunSync(c, m, 0, func(tx *core.Tx, done func(error)) {
			var open func(i int)
			open = func(i int) {
				if i >= perTx || base+i >= accounts {
					done(nil)
					return
				}
				tx.Alloc(8, u64b(initial), nil, func(a proto.Addr, err error) {
					if err != nil {
						done(err)
						return
					}
					w.Accounts[base+i] = a
					open(i + 1)
				})
			}
			open(0)
		})
		if err != nil {
			return nil, fmt.Errorf("bank: open accounts at %d: %w", base, err)
		}
	}
	return w, nil
}

// Total is the conserved sum of all balances.
func (w *Workload) Total() uint64 { return w.Initial * uint64(len(w.Accounts)) }

// Mix returns the standard operation mix: 90% two-account transfers and
// 10% read-only audits.
func (w *Workload) Mix() loadgen.Op {
	return func(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
		if rng.Intn(10) == 0 {
			w.Audit(m, thread, rng, done)
			return
		}
		w.Transfer(m, thread, rng, done)
	}
}

// Transfer moves a small random amount between two uniformly chosen
// accounts: read both, check funds, write both, full commit protocol. An
// insufficient balance still commits — as a read-only transaction through
// validation — because the business outcome ("declined") is a completed
// operation, not a conflict.
func (w *Workload) Transfer(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
	n := len(w.Accounts)
	from := w.Accounts[rng.Intn(n)]
	to := w.Accounts[rng.Intn(n)]
	for to == from {
		to = w.Accounts[rng.Intn(n)]
	}
	amount := uint64(rng.Intn(9) + 1)
	tx := m.Begin(thread)
	tx.Read(from, 8, func(fb []byte, err error) {
		if err != nil {
			tx.Abort()
			done(false)
			return
		}
		tx.Read(to, 8, func(tb []byte, err error) {
			if err != nil {
				tx.Abort()
				done(false)
				return
			}
			if u64(fb) < amount {
				tx.Commit(func(err error) { done(err == nil) })
				return
			}
			tx.Write(from, u64b(u64(fb)-amount))
			tx.Write(to, u64b(u64(tb)+amount))
			tx.Commit(func(err error) { done(err == nil) })
		})
	})
}

// Audit reads a handful of uniformly chosen accounts and commits without
// writing, exercising the read-validation-only commit path.
func (w *Workload) Audit(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
	tx := m.Begin(thread)
	var read func(i int)
	read = func(i int) {
		if i == auditReads {
			tx.Commit(func(err error) { done(err == nil) })
			return
		}
		tx.Read(w.Accounts[rng.Intn(len(w.Accounts))], 8, func(_ []byte, err error) {
			if err != nil {
				tx.Abort()
				done(false)
				return
			}
			read(i + 1)
		})
	}
	read(0)
}

func u64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func u64b(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}
