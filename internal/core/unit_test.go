package core

import (
	"testing"
	"testing/quick"

	"farm/internal/proto"
	"farm/internal/sim"
)

// Focused unit tests for protocol helpers.

func TestTruncDomainAddAndLowBound(t *testing.T) {
	d := &truncDomain{ids: make(map[uint64]bool)}
	d.low = 1
	d.add(3)
	d.add(5)
	if d.truncated(1) || !d.truncated(3) || d.truncated(4) || !d.truncated(5) {
		t.Fatal("membership wrong")
	}
	d.add(1)
	d.add(2) // now 1,2,3 contiguous → low advances past 3
	if d.low != 4 {
		t.Fatalf("low = %d, want 4", d.low)
	}
	if len(d.ids) != 1 { // only 5 remains
		t.Fatalf("ids = %v", d.ids)
	}
	d.setLow(10)
	if !d.truncated(5) || !d.truncated(9) || d.truncated(10) {
		t.Fatal("setLow semantics wrong")
	}
	if len(d.ids) != 0 {
		t.Fatalf("ids not pruned: %v", d.ids)
	}
}

func TestTruncDomainQuick(t *testing.T) {
	f := func(adds []uint16) bool {
		d := &truncDomain{low: 1, ids: make(map[uint64]bool)}
		model := map[uint64]bool{}
		for _, a := range adds {
			v := uint64(a%100) + 1
			d.add(v)
			model[v] = true
		}
		for v := uint64(1); v <= 100; v++ {
			if d.truncated(v) != model[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackTruncIDRoundTrip(t *testing.T) {
	f := func(thread uint16, local uint64) bool {
		local &= 1<<48 - 1
		th, l := unpackTruncID(packTruncID(thread, local))
		return th == thread && l == local
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThreadTruncRetireOrder(t *testing.T) {
	c := New(Options{NumMachines: 2, Seed: 1})
	m := c.Machine(0)
	s := m.threadTrunc(0)
	if s.low() != 1 {
		t.Fatalf("initial low %d", s.low())
	}
	s.retire(2)
	s.retire(3)
	if s.low() != 1 {
		t.Fatal("low advanced past unretired 1")
	}
	s.retire(1)
	if s.low() != 4 {
		t.Fatalf("low = %d, want 4", s.low())
	}
	if len(s.retired) != 0 {
		t.Fatal("retired set not compacted")
	}
}

func TestCMSuccessorsRing(t *testing.T) {
	c := New(Options{NumMachines: 5, Seed: 1})
	succ := c.Machine(3).cmSuccessors()
	// CM is 0; ring order from 0: 1,2,3,4.
	want := []int{1, 2, 3, 4}
	if len(succ) != 4 {
		t.Fatalf("successors: %v", succ)
	}
	for i := range want {
		if succ[i] != want[i] {
			t.Fatalf("successors = %v, want %v", succ, want)
		}
	}
}

func TestRecoveryCoordinatorDeterministicAndMemberPreferring(t *testing.T) {
	c := New(Options{NumMachines: 5, Seed: 1})
	id := proto.TxID{Config: 1, Machine: 3, Thread: 2, Local: 9}
	// Coordinator alive: itself.
	for _, m := range c.Machines {
		if got := m.recoveryCoordinator(id); got != 3 {
			t.Fatalf("machine %d chose %d, want 3", m.ID, got)
		}
	}
	// Coordinator not a member: all machines agree on the same hash pick.
	dead := proto.TxID{Config: 1, Machine: 99, Thread: 2, Local: 9}
	first := c.Machine(0).recoveryCoordinator(dead)
	for _, m := range c.Machines {
		if got := m.recoveryCoordinator(dead); got != first {
			t.Fatalf("hash coordinators disagree: %d vs %d", got, first)
		}
	}
	if first == 99 {
		t.Fatal("picked a non-member")
	}
}

func TestPlacementRespectsFailureDomains(t *testing.T) {
	o := Options{NumMachines: 9, FailureDomains: 3, Seed: 1}
	c := New(o)
	regions, err := c.CreateRegions(0, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		rm := c.Machine(0).mappings[r]
		domains := map[int]bool{}
		for _, rep := range rm.Replicas {
			domains[c.Machine(0).config.Domains[rep]] = true
		}
		if len(domains) != 3 {
			t.Fatalf("region %d replicas %v share failure domains", r, rm.Replicas)
		}
	}
}

func TestPlacementBalances(t *testing.T) {
	c := New(Options{NumMachines: 6, Seed: 1})
	if _, err := c.CreateRegions(0, 12, 0); err != nil {
		t.Fatal(err)
	}
	// 12 regions × 3 replicas = 36 slots over 6 machines → 6 each.
	counts := map[uint16]int{}
	for _, rm := range c.Machine(0).cm.regions {
		for _, r := range rm.Replicas {
			counts[r]++
		}
	}
	for mID, n := range counts {
		if n < 4 || n > 8 {
			t.Fatalf("machine %d hosts %d replicas (want ≈6): %v", mID, n, counts)
		}
	}
}

func TestLocalityCoPlacement(t *testing.T) {
	c := New(Options{NumMachines: 6, Seed: 1})
	base, err := c.CreateRegions(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	co, err := c.CreateRegions(0, 3, base[0])
	if err != nil {
		t.Fatal(err)
	}
	want := c.Machine(0).mappings[base[0]].Replicas
	for _, r := range co {
		got := c.Machine(0).mappings[r].Replicas
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("locality hint ignored: %v vs %v", got, want)
			}
		}
	}
}

func TestValidationSwitchesToRPCOverThreshold(t *testing.T) {
	// A read-write transaction reading tr+2 objects from one remote
	// primary must validate with one RPC instead of tr+2 RDMA reads.
	o := Options{NumMachines: 5, Seed: 19}
	c := New(o)
	regions, err := c.CreateRegions(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	region := regions[0]
	hint := proto.Addr{Region: region}
	var addrs []proto.Addr
	m0 := c.Machine(0)
	done := false
	tx := m0.Begin(0)
	var alloc func(i int)
	alloc = func(i int) {
		if i == 8 {
			tx.Commit(func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				done = true
			})
			return
		}
		tx.Alloc(8, []byte("xxxxxxxx"), &hint, func(a proto.Addr, err error) {
			if err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, a)
			alloc(i + 1)
		})
	}
	alloc(0)
	runUntil(t, c, sim.Second, func() bool { return done })
	c.RunFor(10 * sim.Millisecond)

	primary := m0.PrimaryOf(region)
	coord := (primary + 1) % 5
	m := c.Machine(coord)
	// Read 6 objects (> tr=4) and write one object elsewhere so the full
	// (non-read-only) commit path runs.
	other, err := c.CreateRegions(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var waddr proto.Addr
	done = false
	setup := m.Begin(0)
	whint := proto.Addr{Region: other[0]}
	setup.Alloc(8, []byte("wwwwwwww"), &whint, func(a proto.Addr, err error) {
		waddr = a
		setup.Commit(func(error) { done = true })
	})
	runUntil(t, c, sim.Second, func() bool { return done })

	snap := c.Net.Counters.Snapshot()
	done = false
	tx2 := m.Begin(1)
	var read func(i int)
	read = func(i int) {
		if i == 6 {
			tx2.Read(waddr, 8, func(_ []byte, err error) {
				tx2.Write(waddr, []byte("uuuuuuuu"))
				tx2.Commit(func(err error) {
					if err != nil {
						t.Fatalf("commit: %v", err)
					}
					done = true
				})
			})
			return
		}
		tx2.Read(addrs[i], 8, func(_ []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			read(i + 1)
		})
	}
	read(0)
	runUntil(t, c, sim.Second, func() bool { return done })
	diff := c.Net.Counters.Diff(snap)
	// Execution reads: 6 + 1 (waddr, likely remote). Validation: ONE RPC
	// for the 6-object primary instead of 6 one-sided reads. So total
	// one-sided reads must stay ≤ 8.
	if diff["rdma_read"] > 8 {
		t.Fatalf("validation did not switch to RPC: %d one-sided reads (%v)", diff["rdma_read"], diff)
	}
}

func TestBlockedRegionQueuesReads(t *testing.T) {
	c, region := testCluster(t, Options{NumMachines: 5, Seed: 23})
	addr := writeObject(t, c, c.Machine(0), []byte("qqqq"))
	m := c.Machine(2)
	// Manually block the region (as reconfiguration would) and issue a
	// read: it must not complete until the region is unblocked.
	m.blocked[region] = nil
	got := false
	tx := m.Begin(0)
	tx.Read(addr, 4, func(_ []byte, err error) {
		if err != nil {
			t.Errorf("read failed: %v", err)
		}
		got = true
	})
	c.RunFor(20 * sim.Millisecond)
	if got {
		t.Fatal("read completed against a blocked region")
	}
	m.unblockRegion(region)
	runUntil(t, c, sim.Second, func() bool { return got })
}

func TestVoteFromSawPrecedence(t *testing.T) {
	cases := []struct {
		saw  uint8
		want proto.Vote
	}{
		{proto.SawCommitPrimary | proto.SawLock, proto.VoteCommitPrimary},
		{proto.SawCommitRecovery, proto.VoteCommitPrimary},
		{proto.SawCommitBackup | proto.SawLock, proto.VoteCommitBackup},
		{proto.SawCommitBackup | proto.SawAbortRecovery, proto.VoteAbort},
		{proto.SawLock, proto.VoteLock},
		{proto.SawLock | proto.SawAbort, proto.VoteLock}, // normal abort ≠ abort-recovery
		{proto.SawLock | proto.SawAbortRecovery, proto.VoteAbort},
		{0, proto.VoteAbort},
	}
	for _, tc := range cases {
		if got := voteFromSaw(tc.saw); got != tc.want {
			t.Errorf("saw=%b: %v, want %v", tc.saw, got, tc.want)
		}
	}
}

func TestProtocolVocabularyExercised(t *testing.T) {
	// Tables 1 and 2: a run with failures must exercise every log record
	// type and every recovery message type the paper defines.
	o := recoveryOpts()
	c := New(o)
	if _, err := c.CreateRegions(0, 3, 0); err != nil {
		t.Fatal(err)
	}
	addr := writeObject(t, c, c.Machine(1), []byte("vocabvoc"))
	// Drive updates (LOCK/COMMIT-BACKUP/COMMIT-PRIMARY/TRUNCATE) plus a
	// conflict (ABORT) and a big-read-set commit (VALIDATE RPC).
	conflictSeen := false
	for i := 0; i < 50 && !conflictSeen; i++ {
		results := 0
		for j := 0; j < 2; j++ {
			tx := c.Machine(1 + j).Begin(0)
			tx.Read(addr, 8, func(_ []byte, err error) {
				if err != nil {
					results++
					return
				}
				tx.Write(addr, []byte{byte(i), byte(j), 2, 3, 4, 5, 6, 7})
				tx.Commit(func(err error) {
					if err != nil {
						conflictSeen = true
					}
					results++
				})
			})
		}
		runUntil(t, c, sim.Second, func() bool { return results == 2 })
	}
	// Failure: kill a machine mid-write-stream so recovery messages flow.
	stop := false
	m := c.Machine(1)
	var loop func(i byte)
	loop = func(i byte) {
		if stop || !m.Alive() {
			return
		}
		tx := m.Begin(int(i) % m.Threads())
		tx.Read(addr, 8, func(_ []byte, err error) {
			if err != nil {
				c.Eng.After(100*sim.Microsecond, func() { loop(i + 1) })
				return
			}
			tx.Write(addr, []byte{i, 1, 1, 1, 1, 1, 1, 1})
			tx.Commit(func(error) { loop(i + 1) })
		})
	}
	loop(0)
	c.RunFor(10 * sim.Millisecond)
	rm := c.Machine(0).mappings[addr.Region]
	victim := int(rm.Replicas[0])
	if victim == 0 || victim == 1 {
		victim = int(rm.Replicas[1])
	}
	if victim == 0 || victim == 1 {
		victim = int(rm.Replicas[2])
	}
	c.Kill(victim)
	c.RunFor(400 * sim.Millisecond)
	stop = true
	c.RunFor(20 * sim.Millisecond)

	for _, rec := range []string{"LOCK", "COMMIT-BACKUP", "COMMIT-PRIMARY", "ABORT", "TRUNCATE"} {
		if c.Counters.Get("rec "+rec) == 0 {
			t.Errorf("Table 1 record type %s never used", rec)
		}
	}
	for _, msg := range []string{"LOCK-REPLY", "NEED-RECOVERY", "RECOVERY-VOTE",
		"NEW-CONFIG", "NEW-CONFIG-ACK", "NEW-CONFIG-COMMIT", "REGIONS-ACTIVE", "ALL-REGIONS-ACTIVE"} {
		if c.Counters.Get("msg "+msg) == 0 {
			t.Errorf("message type %s never used", msg)
		}
	}
	// Recovery decisions must have flowed one way or the other.
	if c.Counters.Get("msg COMMIT-RECOVERY")+c.Counters.Get("msg ABORT-RECOVERY") == 0 {
		t.Error("no recovery decisions exchanged")
	}
	// Every message that arrived must have found a registered handler.
	if n := c.Counters.Get("msg unknown"); n != 0 {
		t.Errorf("%d messages dropped with no registered handler", n)
	}
}

func TestPlacementRespectsCapacity(t *testing.T) {
	o := Options{NumMachines: 4, Seed: 1, MaxRegionsPerMachine: 3}
	c := New(o)
	// 4 machines × 3 slots = 12 replica slots = 4 regions at 3-way.
	regions, err := c.CreateRegions(0, 4, 0)
	if err != nil {
		t.Fatalf("within capacity: %v", err)
	}
	if len(regions) != 4 {
		t.Fatalf("allocated %d", len(regions))
	}
	counts := map[uint16]int{}
	for _, rm := range c.Machine(0).cm.regions {
		for _, r := range rm.Replicas {
			counts[r]++
		}
	}
	for id, n := range counts {
		if n > 3 {
			t.Fatalf("machine %d over capacity: %d", id, n)
		}
	}
	// The next allocation must fail cleanly.
	if _, err := c.CreateRegions(0, 1, 0); err == nil {
		t.Fatal("allocation beyond cluster capacity succeeded")
	}
}
