// Package core implements the paper's primary contribution: FaRM's
// transaction, replication and failure-recovery protocols (§3–§5).
//
// A Cluster is a set of Machines on one simulated RDMA fabric. Each machine
// runs worker threads (event-driven, like FaRM's per-hardware-thread event
// loops), stores region replicas in non-volatile memory, holds one
// transaction-log ring buffer per peer, and participates in the lease,
// reconfiguration and recovery protocols. One machine acts as the
// configuration manager (CM); Zookeeper stores the configuration record.
//
// File map:
//
//	core.go      Options, ids, errors
//	cluster.go   bootstrap, failure injection, test/bench observability
//	machine.go   per-machine state, message dispatch, log polling
//	cm.go        region allocation and placement at the CM
//	lease.go     failure detection: 3-way lease handshake, manager variants
//	tx.go        transaction API: reads, writes, alloc/free, lock-free reads
//	commit.go    the four-phase commit protocol (Figure 4)
//	apply.go     participant-side log record processing and truncation
//	reconfig.go  precise-membership reconfiguration (Figure 5)
//	recovery.go  transaction state recovery (Figure 6)
//	datarec.go   bulk data re-replication and allocator recovery
package core

import (
	"errors"
	"fmt"

	"farm/internal/fabric"
	"farm/internal/regionmem"
	"farm/internal/sim"
	"farm/internal/trace"
)

// Transaction outcome errors.
var (
	// ErrConflict: optimistic concurrency control lost a race (lock or
	// validation failure); the application should retry.
	ErrConflict = errors.New("farm: transaction conflict")
	// ErrAborted: the transaction was aborted by failure recovery.
	ErrAborted = errors.New("farm: transaction aborted by recovery")
	// ErrNoSpace: log reservations or region allocation failed.
	ErrNoSpace = errors.New("farm: out of space")
	// ErrUnavailable: the target region is not currently accessible (its
	// primary is being recovered, or the machine is not in the
	// configuration).
	ErrUnavailable = errors.New("farm: region unavailable")
	// ErrReadLocked: a lock-free read observed a locked object and
	// exhausted its retries.
	ErrReadLocked = errors.New("farm: object locked")
)

// LeaseVariant selects the lease-manager implementation, reproducing the
// four configurations of Figure 16.
type LeaseVariant int

// Lease manager variants in decreasing order of robustness (§6.5). The
// zero value is deliberately the shipping configuration so Options default
// to it.
const (
	// LeaseUDThreadPri is the shipping configuration: dedicated thread at
	// highest user-space priority, interrupt driven, memory pinned.
	LeaseUDThreadPri LeaseVariant = iota
	// LeaseUDThread uses a dedicated lease-manager thread at normal
	// priority (subject to OS scheduling contention).
	LeaseUDThread
	// LeaseUD uses dedicated unreliable-datagram queue pairs but still
	// handles messages on a shared worker thread.
	LeaseUD
	// LeaseRPC piggybacks leases on the normal RPC path: lease messages
	// share queue pairs and worker threads with all other traffic.
	LeaseRPC
)

// String names the variant as in Figure 16's legend.
func (v LeaseVariant) String() string {
	switch v {
	case LeaseRPC:
		return "RPC"
	case LeaseUD:
		return "UD"
	case LeaseUDThread:
		return "UD+thread"
	case LeaseUDThreadPri:
		return "UD+thread+pri"
	default:
		return "unknown"
	}
}

// CoalescePolicy selects how the message transport decides when a
// per-destination coalescing queue flushes into one fabric frame.
type CoalescePolicy int

const (
	// CoalesceAdaptive is the default: a queue flushes immediately when it
	// crosses a byte or message-count budget (CoalesceMaxBytes /
	// CoalesceMaxMsgs) or when a protocol phase rings the doorbell
	// (transport.flushHint); otherwise a per-destination timer flushes it.
	// The timer interval adapts — it stretches toward CoalesceMaxInterval
	// while budgets keep firing (sustained load: bigger frames, fewer
	// sends) and shrinks toward CoalesceMinInterval when timers find
	// near-empty queues (idle: latency matters more than batching). The
	// policy is a pure function of simulated state, so runs stay
	// deterministic and replayable.
	CoalesceAdaptive CoalescePolicy = iota
	// CoalesceFixed is the original policy: every queue flushes exactly
	// CoalesceInterval after its first message arrives; budgets and
	// doorbells are ignored. Kept selectable as the A/B baseline.
	CoalesceFixed
)

// String names the policy for reports and benchmark output.
func (p CoalescePolicy) String() string {
	switch p {
	case CoalesceAdaptive:
		return "adaptive"
	case CoalesceFixed:
		return "fixed"
	default:
		return "unknown"
	}
}

// CoalesceDisabled is the explicit spelling for "no coalescing": set
// Options.CoalesceInterval to it and every message becomes its own fabric
// send. Any other negative interval is rejected by New.
const CoalesceDisabled = -1 * sim.Nanosecond

// Options configures a cluster. Zero fields take defaults from
// DefaultOptions. CPU-cost constants are calibrated so that per-machine
// verb rates match Figure 2 when Threads is set to the paper's 30.
type Options struct {
	// NumMachines is the cluster size (the paper uses 90; simulations
	// default to 9 and report per-machine rates).
	NumMachines int
	// Replication is the number of copies per region, f+1. The paper runs
	// 3-way (one primary, two backups).
	Replication int
	// Threads is the number of worker threads per machine.
	Threads int
	// FailureDomains is the number of failure domains machines are spread
	// over round-robin; 0 places every machine in its own domain.
	FailureDomains int
	// MaxRegionsPerMachine caps how many region replicas one machine may
	// host (§3's capacity constraint; the paper expects ~250 2 GB regions
	// per 512 GB machine). 0 means unlimited.
	MaxRegionsPerMachine int

	// Layout is the region geometry.
	Layout regionmem.Layout
	// LogCapacity is the per-sender transaction-log ring size in bytes.
	LogCapacity int

	// Fabric carries the network model constants.
	Fabric fabric.Options

	// LeaseDuration is the failure-detection lease (10 ms in §6.1).
	LeaseDuration sim.Time
	// LeaseVariant selects the lease manager implementation.
	LeaseVariant LeaseVariant
	// LeaseGroupSize, when > 0, enables the two-level lease hierarchy
	// §5.1 prescribes for significantly larger clusters: machines are
	// grouped; the CM exchanges leases only with group leaders, leaders
	// with their members. Worst-case detection time doubles.
	LeaseGroupSize int
	// BackupCMs is k, the number of CM successors asked to take over
	// reconfiguration before a machine tries itself (§5.2 step 1).
	BackupCMs int

	// ValidateRPCThreshold is tr: primaries holding more than this many
	// read objects are validated over RPC instead of RDMA reads (§4).
	ValidateRPCThreshold int
	// VoteTimeout is how long the recovery coordinator waits for votes
	// before sending explicit REQUEST-VOTE messages (250 µs in §5.3).
	VoteTimeout sim.Time
	// TxStallTimeout bounds how long a committing transaction may sit in
	// its lock or validate phase without progress before the coordinator
	// aborts it. Lost LOCK-REPLY or VALIDATE-REPLY messages (drop faults,
	// one-way cuts) otherwise leave the transaction holding locks forever.
	// Aborting is safe only in those phases; from COMMIT-BACKUP on, the
	// outcome belongs to recovery. Negative disables the watchdog.
	TxStallTimeout sim.Time
	// TruncateFlushInterval bounds how lazily truncations are delivered
	// when no records are available to piggyback on.
	TruncateFlushInterval sim.Time

	// DataRecBlock is the data-recovery fetch granularity (8 KB in §5.4).
	DataRecBlock int
	// DataRecInterval is the pacing interval: the next fetch starts at a
	// random point within it (4 ms in §5.4).
	DataRecInterval sim.Time
	// DataRecConcurrency is the number of concurrent fetches per thread
	// (1 normally; 4 in the aggressive mode of §6.4).
	DataRecConcurrency int
	// AllocScanBatch/AllocScanInterval pace allocator recovery (100
	// objects every 100 µs in §5.5).
	AllocScanBatch    int
	AllocScanInterval sim.Time

	// CoalesceInterval is how long the message transport buffers small
	// control messages per destination before flushing them as one fabric
	// frame (§1/§4: reduce message counts). 0 takes the library default
	// (3 µs); CoalesceDisabled turns coalescing off (every message is its
	// own fabric send); any other negative value is rejected by New. Under
	// CoalesceAdaptive this is the starting interval each queue adapts
	// from; under CoalesceFixed it is the exact flush delay. Lease traffic
	// never coalesces regardless.
	CoalesceInterval sim.Time
	// CoalescePolicy selects the flush policy; the zero value is
	// CoalesceAdaptive.
	CoalescePolicy CoalescePolicy
	// CoalesceMaxBytes is the adaptive byte budget: a queue whose buffered
	// payload reaches it flushes immediately instead of waiting out the
	// timer. 0 takes the default; negative is rejected by New.
	CoalesceMaxBytes int
	// CoalesceMaxMsgs is the adaptive message-count budget, with the same
	// zero/negative conventions.
	CoalesceMaxMsgs int
	// CoalesceMinInterval and CoalesceMaxInterval bound the adaptive
	// timer. 0 takes defaults derived from CoalesceInterval (interval/6
	// and interval×4); negatives and min > max are rejected by New.
	CoalesceMinInterval sim.Time
	CoalesceMaxInterval sim.Time

	// CPUVerb is the worker-thread cost to issue a one-sided verb and
	// later reap its completion.
	CPUVerb sim.Time
	// CPUMsg is the worker-thread cost to send or handle one message.
	CPUMsg sim.Time
	// CPUPerObject is the extra cost per object processed in a log record
	// (lock CAS, in-place update, ...).
	CPUPerObject sim.Time
	// CPULocal is the cost of a local-memory object access.
	CPULocal sim.Time
	// PollDelay models the gap between a log write landing and the
	// receiver's event loop noticing it.
	PollDelay sim.Time

	// AuditRepair lets a state-integrity audit that localized a divergent
	// backup fence that backup into force-copy re-replication and then
	// re-audit the repair (self-healing). Detection and localization always
	// run when audits are requested; acting on the finding is opt-in.
	AuditRepair bool

	// Trace configures the deterministic causality tracer
	// (internal/trace): spans per transaction and commit phase, recovery
	// timelines, fault annotations. Disabled by default; when disabled no
	// buffers are allocated and the hot paths pay one nil check.
	Trace trace.Options

	// History enables the client-side history recorder (internal/history):
	// every transaction's invoke/complete interval in simulated time, its
	// reads with the versions they observed, and its buffered writes are
	// recorded for offline strict-serializability checking. Disabled by
	// default; when disabled the recorder is nil and every hook in the
	// transaction hot path is a single nil check with no allocations.
	History bool

	// SkipReadValidation disables commit-time read validation (§4 step 2)
	// for read-write and read-only transactions alike. TEST-ONLY: it
	// deliberately breaks strict serializability so the history checker
	// can demonstrate it catches real consistency bugs; never enable it
	// outside that experiment.
	SkipReadValidation bool

	// Seed drives all randomness.
	Seed uint64
}

// DefaultOptions returns the scaled-down simulation defaults.
func DefaultOptions() Options {
	return Options{
		NumMachines:           9,
		Replication:           3,
		Threads:               8,
		FailureDomains:        0,
		Layout:                regionmem.DefaultLayout(),
		LogCapacity:           1 << 18,
		LeaseDuration:         10 * sim.Millisecond,
		LeaseVariant:          LeaseUDThreadPri,
		BackupCMs:             2,
		ValidateRPCThreshold:  4,
		VoteTimeout:           250 * sim.Microsecond,
		TxStallTimeout:        30 * sim.Millisecond,
		TruncateFlushInterval: 200 * sim.Microsecond,
		DataRecBlock:          8 << 10,
		DataRecInterval:       4 * sim.Millisecond,
		DataRecConcurrency:    1,
		AllocScanBatch:        100,
		AllocScanInterval:     100 * sim.Microsecond,
		CoalesceInterval:      3 * sim.Microsecond,
		CoalesceMaxBytes:      1024,
		CoalesceMaxMsgs:       16,
		CPUVerb:               2500 * sim.Nanosecond,
		CPUMsg:                2500 * sim.Nanosecond,
		CPUPerObject:          300 * sim.Nanosecond,
		CPULocal:              150 * sim.Nanosecond,
		PollDelay:             1 * sim.Microsecond,
		Seed:                  1,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.NumMachines == 0 {
		o.NumMachines = d.NumMachines
	}
	if o.Replication == 0 {
		o.Replication = d.Replication
	}
	if o.Threads == 0 {
		o.Threads = d.Threads
	}
	if o.Layout.RegionSize == 0 {
		o.Layout = d.Layout
	}
	if o.LogCapacity == 0 {
		o.LogCapacity = d.LogCapacity
	}
	if o.LeaseDuration == 0 {
		o.LeaseDuration = d.LeaseDuration
	}
	if o.BackupCMs == 0 {
		o.BackupCMs = d.BackupCMs
	}
	if o.ValidateRPCThreshold == 0 {
		o.ValidateRPCThreshold = d.ValidateRPCThreshold
	}
	if o.VoteTimeout == 0 {
		o.VoteTimeout = d.VoteTimeout
	}
	if o.TxStallTimeout == 0 {
		o.TxStallTimeout = d.TxStallTimeout
	}
	if o.TruncateFlushInterval == 0 {
		o.TruncateFlushInterval = d.TruncateFlushInterval
	}
	if o.DataRecBlock == 0 {
		o.DataRecBlock = d.DataRecBlock
	}
	if o.DataRecInterval == 0 {
		o.DataRecInterval = d.DataRecInterval
	}
	if o.DataRecConcurrency == 0 {
		o.DataRecConcurrency = d.DataRecConcurrency
	}
	if o.AllocScanBatch == 0 {
		o.AllocScanBatch = d.AllocScanBatch
	}
	if o.AllocScanInterval == 0 {
		o.AllocScanInterval = d.AllocScanInterval
	}
	if o.CoalesceInterval == 0 {
		o.CoalesceInterval = d.CoalesceInterval
	}
	if o.CoalesceMaxBytes == 0 {
		o.CoalesceMaxBytes = d.CoalesceMaxBytes
	}
	if o.CoalesceMaxMsgs == 0 {
		o.CoalesceMaxMsgs = d.CoalesceMaxMsgs
	}
	// The adaptive timer bounds default relative to the base interval
	// (500 ns and 12 µs at the 3 µs default), so overriding just
	// CoalesceInterval keeps a sensible adaptation range.
	if o.CoalesceMinInterval == 0 && o.CoalesceInterval > 0 {
		o.CoalesceMinInterval = o.CoalesceInterval / 6
		if o.CoalesceMinInterval < sim.Nanosecond {
			o.CoalesceMinInterval = sim.Nanosecond
		}
	}
	if o.CoalesceMaxInterval == 0 && o.CoalesceInterval > 0 {
		o.CoalesceMaxInterval = 4 * o.CoalesceInterval
	}
	if o.CPUVerb == 0 {
		o.CPUVerb = d.CPUVerb
	}
	if o.CPUMsg == 0 {
		o.CPUMsg = d.CPUMsg
	}
	if o.CPUPerObject == 0 {
		o.CPUPerObject = d.CPUPerObject
	}
	if o.CPULocal == 0 {
		o.CPULocal = d.CPULocal
	}
	if o.PollDelay == 0 {
		o.PollDelay = d.PollDelay
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// validate rejects malformed coalescing knobs. It runs in New after
// withDefaults, so 0 has already been resolved to the library default and
// anything still out of range was asked for explicitly. Returning an error
// instead of silently reinterpreting (the old behavior: any negative
// interval meant "send direct") keeps configuration typos loud.
func (o Options) validate() error {
	if o.CoalesceInterval < 0 && o.CoalesceInterval != CoalesceDisabled {
		return fmt.Errorf("core: CoalesceInterval %d is negative; use core.CoalesceDisabled (%d) to turn coalescing off",
			o.CoalesceInterval, CoalesceDisabled)
	}
	if o.CoalescePolicy != CoalesceAdaptive && o.CoalescePolicy != CoalesceFixed {
		return fmt.Errorf("core: unknown CoalescePolicy %d", o.CoalescePolicy)
	}
	if o.CoalesceMaxBytes < 0 {
		return fmt.Errorf("core: CoalesceMaxBytes %d is negative", o.CoalesceMaxBytes)
	}
	if o.CoalesceMaxMsgs < 0 {
		return fmt.Errorf("core: CoalesceMaxMsgs %d is negative", o.CoalesceMaxMsgs)
	}
	if o.CoalesceMinInterval < 0 {
		return fmt.Errorf("core: CoalesceMinInterval %d is negative", o.CoalesceMinInterval)
	}
	if o.CoalesceMaxInterval < 0 {
		return fmt.Errorf("core: CoalesceMaxInterval %d is negative", o.CoalesceMaxInterval)
	}
	if o.CoalesceMinInterval > o.CoalesceMaxInterval {
		return fmt.Errorf("core: CoalesceMinInterval %d exceeds CoalesceMaxInterval %d",
			o.CoalesceMinInterval, o.CoalesceMaxInterval)
	}
	return nil
}

// logRegionID returns the reserved region id of the transaction-log ring
// written by sender into a receiver's memory. The high bit separates the
// system region namespace from application regions.
func logRegionID(sender int) uint32 { return 0x80000000 | uint32(sender) }
