package core

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"farm/internal/proto"
	"farm/internal/sim"
)

// These tests check the transactional guarantees as properties over
// randomized concurrent histories, with and without failure injection.
// Determinism of the simulator means any failure reproduces exactly from
// the logged seed.

func u64(b []byte) uint64  { return binary.LittleEndian.Uint64(b) }
func u64b(v uint64) []byte { b := make([]byte, 8); binary.LittleEndian.PutUint64(b, v); return b }

// TestLostUpdateFreedom: concurrent read-modify-write increments from many
// machines/threads; the final counter must equal the number of commits
// reported successful. Any lost update or phantom commit breaks equality.
func TestLostUpdateFreedom(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		o := Options{NumMachines: 5, Seed: seed}
		c := New(o)
		if _, err := c.CreateRegions(0, 1, 0); err != nil {
			t.Fatal(err)
		}
		addr := writeObject(t, c, c.Machine(0), u64b(0))

		committed := 0
		attempts := 0
		const perDriver = 40
		for mi := 0; mi < 5; mi++ {
			for th := 0; th < 2; th++ {
				m := c.Machine(mi)
				th := th
				var drive func(n int)
				drive = func(n int) {
					if n >= perDriver || !m.Alive() {
						return
					}
					attempts++
					tx := m.Begin(th)
					tx.Read(addr, 8, func(data []byte, err error) {
						if err != nil {
							c.Eng.After(10*sim.Microsecond, func() { drive(n) })
							return
						}
						tx.Write(addr, u64b(u64(data)+1))
						tx.Commit(func(err error) {
							if err == nil {
								committed++
								drive(n + 1)
							} else {
								c.Eng.After(sim.Time(c.Eng.Rand().Intn(20)+1)*sim.Microsecond,
									func() { drive(n) })
							}
						})
					})
				}
				drive(0)
			}
		}
		c.RunFor(5 * sim.Second)
		got := u64(readObject(t, c, c.Machine(1), addr, 8))
		if got != uint64(committed) {
			t.Fatalf("seed %d: counter=%d committed=%d attempts=%d", seed, got, committed, attempts)
		}
		if committed != 5*2*perDriver {
			t.Fatalf("seed %d: drivers did not finish: %d", seed, committed)
		}
	}
}

// TestAtomicTransfersPreserveTotal: random transfers between accounts
// (multi-object read-write transactions) with a machine killed mid-run.
// The sum of all account balances is invariant under serializable
// execution; partial (non-atomic) commits would break it.
func TestAtomicTransfersPreserveTotal(t *testing.T) {
	const accounts = 16
	const initial = 1000
	for _, seed := range []uint64{5, 6} {
		o := recoveryOpts()
		o.Seed = seed
		c := New(o)
		if _, err := c.CreateRegions(0, 2, 0); err != nil {
			t.Fatal(err)
		}
		var addrs []proto.Addr
		for i := 0; i < accounts; i++ {
			addrs = append(addrs, writeObject(t, c, c.Machine(i%6), u64b(initial)))
		}
		c.RunFor(20 * sim.Millisecond)

		// Drivers on machines 0-2 (machine 4 will be killed).
		for mi := 0; mi < 3; mi++ {
			m := c.Machine(mi)
			rng := sim.NewRand(seed*100 + uint64(mi))
			var drive func(n int)
			drive = func(n int) {
				if n >= 150 || !m.Alive() {
					return
				}
				a := addrs[rng.Intn(accounts)]
				b := addrs[rng.Intn(accounts)]
				if a == b {
					c.Eng.After(sim.Microsecond, func() { drive(n + 1) })
					return
				}
				amount := uint64(rng.Intn(50))
				tx := m.Begin(n % m.Threads())
				tx.Read(a, 8, func(da []byte, err error) {
					if err != nil {
						c.Eng.After(20*sim.Microsecond, func() { drive(n) })
						return
					}
					tx.Read(b, 8, func(db []byte, err error) {
						if err != nil {
							c.Eng.After(20*sim.Microsecond, func() { drive(n) })
							return
						}
						if u64(da) < amount {
							tx.Commit(func(error) { drive(n + 1) })
							return
						}
						tx.Write(a, u64b(u64(da)-amount))
						tx.Write(b, u64b(u64(db)+amount))
						tx.Commit(func(error) { drive(n + 1) })
					})
				})
			}
			drive(0)
		}
		// Kill a machine mid-run.
		c.Eng.After(3*sim.Millisecond, func() { c.Kill(4) })
		c.RunFor(2 * sim.Second)

		var total uint64
		for _, a := range addrs {
			total += u64(readObject(t, c, c.Machine(0), a, 8))
		}
		if total != accounts*initial {
			t.Fatalf("seed %d: total=%d want %d (atomicity violated)", seed, total, accounts*initial)
		}
	}
}

// TestVersionsNeverRegress: object versions are strictly monotonic at the
// primary across updates and failures.
func TestVersionsNeverRegress(t *testing.T) {
	o := recoveryOpts()
	c := New(o)
	if _, err := c.CreateRegions(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	addr := writeObject(t, c, c.Machine(0), u64b(7))

	var lastVer uint64
	violations := 0
	m := c.Machine(2)
	var drive func(n int)
	drive = func(n int) {
		if n >= 300 || !m.Alive() {
			return
		}
		tx := m.Begin(0)
		tx.Read(addr, 8, func(data []byte, err error) {
			if err != nil {
				c.Eng.After(50*sim.Microsecond, func() { drive(n) })
				return
			}
			tx.Write(addr, u64b(u64(data)+1))
			tx.Commit(func(err error) {
				if err == nil {
					// Observe version through a lock-free read.
					m.LockFreeRead(1, addr, 8, func([]byte, error) {})
				}
				drive(n + 1)
			})
		})
	}
	drive(0)
	// Sample versions continuously at the (current) primary.
	var sample func()
	sample = func() {
		rm := c.Machine(0).mappings[addr.Region]
		if rm != nil {
			p := c.Machine(int(rm.Replicas[0]))
			if p.Alive() {
				if rep := p.replicas[addr.Region]; rep != nil {
					word := u64(rep.mem[addr.Off : addr.Off+8])
					v := word & (1<<62 - 1)
					if v < lastVer {
						violations++
					}
					if v > lastVer {
						lastVer = v
					}
				}
			}
		}
		c.Eng.After(100*sim.Microsecond, sample)
	}
	c.Eng.After(sim.Millisecond, sample)
	c.Eng.After(5*sim.Millisecond, func() {
		// Kill a backup to force recovery mid-stream.
		rm := c.Machine(0).mappings[addr.Region]
		for _, r := range rm.Replicas[1:] {
			if int(r) != 0 && int(r) != 2 {
				c.Kill(int(r))
				break
			}
		}
	})
	c.RunFor(500 * sim.Millisecond)
	if violations > 0 {
		t.Fatalf("%d version regressions observed", violations)
	}
	if lastVer < 50 {
		t.Fatalf("too few updates observed: version %d", lastVer)
	}
}

// TestRandomKillSchedulesQuick: random single-machine kill times against a
// running transfer workload; the balance invariant and cluster liveness
// must hold for every schedule.
func TestRandomKillSchedulesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	f := func(seed uint64, killAtMs uint8, victimRaw uint8) bool {
		o := recoveryOpts()
		o.Seed = seed%1000 + 1
		c := New(o)
		if _, err := c.CreateRegions(0, 1, 0); err != nil {
			return false
		}
		var addrs []proto.Addr
		for i := 0; i < 4; i++ {
			var done bool
			tx := c.Machine(0).Begin(0)
			tx.Alloc(8, u64b(100), nil, func(a proto.Addr, err error) {
				if err != nil {
					return
				}
				addrs = append(addrs, a)
				tx.Commit(func(error) { done = true })
			})
			deadline := c.Eng.Now() + sim.Second
			for !done && c.Eng.Now() < deadline {
				if !c.Eng.Step() {
					break
				}
			}
			if !done {
				return false
			}
		}
		c.RunFor(10 * sim.Millisecond)
		victim := 1 + int(victimRaw)%5 // never the CM, for liveness of this check
		m := c.Machine((victim + 1) % 6)
		if victim == (victim+1)%6 {
			return false
		}
		rng := sim.NewRand(seed + 42)
		var drive func(n int)
		drive = func(n int) {
			if n > 100 || !m.Alive() {
				return
			}
			a, b := addrs[rng.Intn(4)], addrs[rng.Intn(4)]
			if a == b {
				drive(n + 1)
				return
			}
			tx := m.Begin(0)
			tx.Read(a, 8, func(da []byte, err error) {
				if err != nil {
					c.Eng.After(100*sim.Microsecond, func() { drive(n + 1) })
					return
				}
				tx.Read(b, 8, func(db []byte, err error) {
					if err != nil {
						c.Eng.After(100*sim.Microsecond, func() { drive(n + 1) })
						return
					}
					tx.Write(a, u64b(u64(da)-1))
					tx.Write(b, u64b(u64(db)+1))
					tx.Commit(func(error) { drive(n + 1) })
				})
			})
		}
		drive(0)
		c.Eng.After(sim.Time(killAtMs%30)*sim.Millisecond+sim.Millisecond, func() { c.Kill(victim) })
		c.RunFor(800 * sim.Millisecond)

		var total uint64
		for _, a := range addrs {
			var got []byte
			done := false
			tx := m.Begin(1)
			tx.Read(a, 8, func(data []byte, err error) {
				if err == nil {
					got = data
				}
				done = true
			})
			deadline := c.Eng.Now() + sim.Second
			for !done && c.Eng.Now() < deadline {
				if !c.Eng.Step() {
					break
				}
			}
			if got == nil {
				return false // liveness violated
			}
			total += u64(got)
		}
		return total == 400
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
