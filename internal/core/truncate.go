package core

import (
	"farm/internal/proto"
	"farm/internal/sim"
	"farm/internal/trace"
)

// This file implements the coordinator side of §4 step 5: lazy truncation.
// After all COMMIT-PRIMARY (or ABORT) records are acked, the transaction's
// ids are queued per participant and delivered by piggybacking on later
// records; an explicit TRUNCATE record is written only when no carrier
// appears within TruncateFlushInterval or when logs fill — using the
// truncate-record reservations pooled at commit time.

// threadTruncState tracks, per coordinator thread, the low bound on local
// transaction ids that are fully truncated at every participant. The low
// bound is piggybacked on records (Table 1) so participants can compact
// their truncated-id sets (§5.3 step 6).
type threadTruncState struct {
	next    uint64 // all locals < next are fully truncated
	retired map[uint64]bool
}

func (m *Machine) threadTrunc(thread int) *threadTruncState {
	if m.truncThreads == nil {
		m.truncThreads = make([]*threadTruncState, m.c.Opts.Threads)
	}
	s := m.truncThreads[thread]
	if s == nil {
		s = &threadTruncState{next: 1, retired: make(map[uint64]bool)}
		m.truncThreads[thread] = s
	}
	return s
}

// open notes that a local id is now in use (ids are contiguous per thread).
func (s *threadTruncState) open(uint64) {}

// retire marks a local id fully truncated and advances the low bound over
// the contiguous prefix.
func (s *threadTruncState) retire(local uint64) {
	if local < s.next {
		return
	}
	s.retired[local] = true
	for s.retired[s.next] {
		delete(s.retired, s.next)
		s.next++
	}
}

func (s *threadTruncState) low() uint64 { return s.next }

// truncQueueFor returns (creating) the truncation queue toward dst.
func (m *Machine) truncQueueFor(dst int) *truncQueue {
	q := m.truncQ[dst]
	if q == nil {
		q = &truncQueue{}
		m.truncQ[dst] = q
	}
	return q
}

// truncPoolReserve reserves one pooled truncate-record slot at dst.
func (m *Machine) truncPoolReserve(dst int) bool {
	w := m.logW[dst]
	if w == nil || !w.Reserve(truncateRecordSize()) {
		return false
	}
	m.truncQueueFor(dst).pool++
	return true
}

// truncPoolRelease returns one pooled slot.
func (m *Machine) truncPoolRelease(dst int) {
	q := m.truncQueueFor(dst)
	if q.pool <= 0 {
		return
	}
	q.pool--
	if w := m.logW[dst]; w != nil {
		w.Release(truncateRecordSize())
	}
}

// endTruncSpan closes a transaction's TRUNCATE span once every participant
// has had the truncation delivered (or left the configuration).
func (m *Machine) endTruncSpan(ct *coordTx) {
	if ct.truncCtx.Valid() {
		m.trb.End(ct.truncCtx, m.c.Eng.Now(), 0)
		ct.truncCtx = trace.Ctx{}
	}
}

// queueTruncation enqueues a finished transaction's id for truncation at
// each participant and arms the flush timer.
func (m *Machine) queueTruncation(ct *coordTx, participants []int) {
	if ct.traceCtx.Valid() {
		ct.truncCtx = m.trb.Begin("tx", "TRUNCATE", m.c.Eng.Now(),
			ct.traceCtx.Trace, ct.traceCtx.Span, int64(len(participants)))
	}
	packed := packTruncID(ct.id.Thread, ct.id.Local)
	ct.truncRemaining = make(map[int]bool, len(participants))
	for _, dst := range participants {
		if !m.isMember(dst) {
			continue
		}
		ct.truncRemaining[dst] = true
		q := m.truncQueueFor(dst)
		q.ids = append(q.ids, packed)
		if m.truncPending == nil {
			m.truncPending = make(map[int]map[uint64]*coordTx)
		}
		if m.truncPending[dst] == nil {
			m.truncPending[dst] = make(map[uint64]*coordTx)
		}
		m.truncPending[dst][packed] = ct
		m.armTruncFlush(dst)
	}
	if len(ct.truncRemaining) == 0 {
		m.threadTrunc(int(ct.id.Thread)).retire(ct.id.Local)
		m.endTruncSpan(ct)
	}
}

// attachPiggyback moves queued truncation ids (up to the per-record
// budget) onto an outgoing record and stamps the thread's low bound.
func (m *Machine) attachPiggyback(dst int, rec *proto.Record) {
	rec.TruncLow = m.threadTrunc(int(rec.Tx.Thread)).low()
	q := m.truncQ[dst]
	if q == nil || len(q.ids) == 0 {
		return
	}
	n := len(q.ids)
	if n > maxPiggyIDs {
		n = maxPiggyIDs
	}
	rec.TruncIDs = append(rec.TruncIDs, q.ids[:n]...)
	q.ids = q.ids[n:]
}

// requeuePiggyback puts ids back when a record could not be appended.
func (m *Machine) requeuePiggyback(dst int, rec *proto.Record) {
	if len(rec.TruncIDs) == 0 {
		return
	}
	q := m.truncQueueFor(dst)
	q.ids = append(append([]uint64(nil), rec.TruncIDs...), q.ids...)
	rec.TruncIDs = nil
}

// truncDelivered runs when a record carrying truncation ids is acked:
// every delivered id frees one pooled reservation (minus any slot the
// carrier record itself consumed) and may complete a transaction's
// truncation, advancing the thread low bound.
func (m *Machine) truncDelivered(dst int, ids []uint64, slotsConsumed int) {
	if len(ids) == 0 {
		return
	}
	release := len(ids) - slotsConsumed
	for i := 0; i < release; i++ {
		m.truncPoolRelease(dst)
	}
	pend := m.truncPending[dst]
	for _, id := range ids {
		ct := pend[id]
		if ct == nil {
			continue
		}
		delete(pend, id)
		delete(ct.truncRemaining, dst)
		if len(ct.truncRemaining) == 0 {
			m.threadTrunc(int(ct.id.Thread)).retire(ct.id.Local)
			m.endTruncSpan(ct)
		}
	}
}

// armTruncFlush schedules an explicit TRUNCATE record toward dst in case
// no carrier record shows up (rare in steady state, needed for liveness).
func (m *Machine) armTruncFlush(dst int) {
	q := m.truncQueueFor(dst)
	if q.flushArmed {
		return
	}
	q.flushArmed = true
	m.c.Eng.After(m.c.Opts.TruncateFlushInterval, func() {
		q.flushArmed = false
		if !m.alive || !m.isMember(dst) {
			return
		}
		m.flushTruncations(dst)
	})
}

// flushTruncations writes explicit TRUNCATE records for all queued ids.
func (m *Machine) flushTruncations(dst int) {
	q := m.truncQueueFor(dst)
	for len(q.ids) > 0 {
		rec := &proto.Record{
			Type: proto.RecTruncate,
			Tx:   proto.TxID{Config: m.config.ID, Machine: uint16(m.ID)},
		}
		m.attachPiggyback(dst, rec)
		if len(rec.TruncIDs) == 0 {
			return
		}
		// Consume one pooled reservation for the record itself.
		reserved := -1
		if q.pool > 0 {
			q.pool--
			reserved = truncateRecordSize()
		}
		delivered := rec.TruncIDs
		payload := proto.MarshalRecord(rec)
		ok := m.logW[dst].Append(payload, reserved, func(err error) {
			if err == nil && m.alive {
				m.truncDelivered(dst, delivered, 1)
			}
		})
		if !ok {
			m.requeuePiggyback(dst, rec)
			m.armTruncFlush(dst)
			return
		}
		m.c.Counters.Inc("explicit_truncate", 1)
	}
}

// startTruncSweep arms the liveness sweep for truncation delivery: a
// carrier record whose hardware ack was lost (partition, receiver eviction
// window) leaves its transaction ids pending; the sweep re-queues them so
// backups converge and the pooled reservations are eventually released.
// Redelivery is idempotent at the receiver (§4 step 5's laziness cuts both
// ways: delivery may happen more than once).
func (m *Machine) startTruncSweep() {
	if m.truncSweepOn {
		return
	}
	m.truncSweepOn = true
	m.armTruncSweep()
}

func (m *Machine) armTruncSweep() {
	m.c.Eng.After(20*sim.Millisecond, func() {
		if !m.alive {
			// Dies with the machine; RestorePower re-arms via
			// startTruncSweep, whose guard prevents duplicate sweeps.
			m.truncSweepOn = false
			return
		}
		for _, dst := range intKeys(m.truncPending) {
			pend := m.truncPending[dst]
			if len(pend) == 0 || !m.isMember(dst) {
				continue
			}
			q := m.truncQueueFor(dst)
			queued := make(map[uint64]bool, len(q.ids))
			for _, id := range q.ids {
				queued[id] = true
			}
			requeued := false
			for _, id := range u64Keys(pend) {
				if !queued[id] {
					q.ids = append(q.ids, id)
					requeued = true
				}
			}
			if requeued {
				m.armTruncFlush(dst)
			}
		}
		m.armTruncSweep()
	})
}

// dropTruncStateFor discards truncation bookkeeping toward a machine that
// left the configuration (its log, and with it our reservations, is gone).
func (m *Machine) dropTruncStateFor(dst int) {
	for id, ct := range m.truncPending[dst] {
		delete(m.truncPending[dst], id)
		delete(ct.truncRemaining, dst)
		if len(ct.truncRemaining) == 0 {
			m.threadTrunc(int(ct.id.Thread)).retire(ct.id.Local)
			m.endTruncSpan(ct)
		}
	}
	delete(m.truncQ, dst)
}
