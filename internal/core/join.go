package core

import (
	"fmt"

	"farm/internal/fabric"
	"farm/internal/nvram"
	"farm/internal/proto"
	"farm/internal/ring"
)

// This file implements cluster growth: §3's configurations "change over
// time as machines fail or new machines are added". A joining machine
// registers with the CM, which runs the standard reconfiguration protocol
// with the member added; ring buffers toward and from the newcomer are
// established lazily, and the placement logic starts assigning it region
// replicas on the next allocations and remaps.

// joinReq is the newcomer's registration message to the CM.
type joinReq struct {
	ID     int
	Domain int
}

// Join adds a fresh machine to the cluster: it is wired to the fabric,
// registers with the CM, and becomes a member through a reconfiguration.
// The returned machine is usable once its ConfigID catches up (drive the
// simulation and check, or use WaitFor in the public API).
func (c *Cluster) Join() *Machine {
	id := len(c.Machines)
	m := c.newMachine(id)
	// The newcomer starts outside any configuration: an empty config with
	// only the CM contact carried over from deployment configuration.
	m.config = proto.Config{ID: 0, CM: c.Machines[0].config.CM}
	c.Machines = append(c.Machines, m)

	// Receive rings for every possible peer (including future ones up to
	// the current population) plus self; peers establish their halves on
	// NEW-CONFIG.
	m.initLogs()
	for _, peer := range c.Machines[:id] {
		peer.ensureLogPair(id)
	}
	m.lease = newLeaseManager(m)
	m.startTruncSweep()
	m.startTxStallSweep()

	domain := id
	if c.Opts.FailureDomains > 0 {
		domain = id % c.Opts.FailureDomains
	}
	// Register with the CM; the CM adds us via reconfiguration.
	cm := int(m.config.CM)
	m.c.Eng.After(0, func() {
		m.send(cm, &joinReq{ID: id, Domain: domain})
	})
	c.trace("join-requested", id, 0)
	return m
}

// ensureLogPair makes sure this machine has a receive ring for peer and a
// writer toward peer (idempotent; used when machines appear dynamically).
func (m *Machine) ensureLogPair(peer int) {
	if m.logR[peer] == nil {
		mem, err := m.store.Allocate(nvram.RegionID(logRegionID(peer)), m.c.Opts.LogCapacity)
		if err != nil {
			panic(fmt.Sprintf("core: log ring for peer %d: %v", peer, err))
		}
		m.logR[peer] = newLogReader(m, peer, ring.NewReader(mem))
	}
	if m.logW[peer] == nil {
		m.logW[peer] = ring.NewWriter(m.nic, fabric.MachineID(peer),
			nvram.RegionID(logRegionID(m.ID)), m.c.Opts.LogCapacity)
	}
}

// onJoinReq runs at the CM: admit the machine through the reconfiguration
// protocol (same ZK CAS path as failures; §5.2).
func (m *Machine) onJoinReq(req *joinReq) {
	if !m.IsCM() || m.reconfiguring {
		// Not CM (stale contact) or busy: the joiner's lease protocol will
		// retry registration via timeout at the caller level; here we just
		// drop, and the test harness re-drives Join when needed.
		if !m.IsCM() {
			// Redirect to the current CM.
			m.send(int(m.config.CM), req)
		}
		return
	}
	if m.config.Member(uint16(req.ID)) {
		return
	}
	m.reconfiguring = true
	m.c.Counters.Inc("joins", 1)

	newCfg := proto.Config{
		ID:       m.config.ID + 1,
		Machines: append(append([]uint16(nil), m.config.Machines...), uint16(req.ID)),
		Domains:  make(map[uint16]int),
		CM:       m.config.CM,
	}
	for k, v := range m.config.Domains {
		newCfg.Domains[k] = v
	}
	newCfg.Domains[uint16(req.ID)] = req.Domain

	m.c.ZK.CAS(m.config.ID, &newCfg, func(ok bool, _ uint64, _ interface{}, err error) {
		if !m.alive {
			return
		}
		m.reconfiguring = false
		if err != nil || !ok {
			return
		}
		m.c.trace("join-admitted", req.ID, int(newCfg.ID))
		// No regions changed: NEW-CONFIG with the enlarged membership.
		m.becomeCM(&newCfg, map[int]bool{}, false)
	})
}
