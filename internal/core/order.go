package core

import (
	"sort"

	"farm/internal/proto"
)

// Deterministic iteration order.
//
// The simulation's event sequence must be a pure function of the seed: the
// chaos harness and every failure-reproduction workflow depend on a seed
// replaying the exact run that produced a violation. Go randomizes map
// iteration order per range statement, so any loop whose body emits
// simulation events (ring writes, messages, one-sided reads, thread
// dispatches, timers) or mutates order-sensitive state (placement load,
// truncation queues) must walk its map in sorted key order. regionmem.Rebuild
// applies the same rule to block headers. Loops that only aggregate
// commutatively (counting, flag folding, map-to-map copies) may still range
// directly.

func intKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func regionKeys[V any](m map[uint32]V) []uint32 {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func u64Keys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func mtlKeys[V any](m map[mtl]V) []mtl {
	keys := make([]mtl, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return mtlLess(keys[i], keys[j]) })
	return keys
}

func mtlLess(a, b mtl) bool {
	if a.m != b.m {
		return a.m < b.m
	}
	if a.t != b.t {
		return a.t < b.t
	}
	return a.local < b.local
}

func txIDKeys[V any](m map[proto.TxID]V) []proto.TxID {
	keys := make([]proto.TxID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return txIDLess(keys[i], keys[j]) })
	return keys
}

func txIDLess(a, b proto.TxID) bool {
	if a.Config != b.Config {
		return a.Config < b.Config
	}
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	if a.Thread != b.Thread {
		return a.Thread < b.Thread
	}
	return a.Local < b.Local
}

func addrKeys[V any](m map[proto.Addr]V) []proto.Addr {
	keys := make([]proto.Addr, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return addrLess(keys[i], keys[j]) })
	return keys
}

func addrLess(a, b proto.Addr) bool {
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	return a.Off < b.Off
}
