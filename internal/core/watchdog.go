package core

// Coordinator stall watchdog. FaRM's normal path assumes reliable sends:
// LOCK-REPLY and VALIDATE-REPLY are messages, and a dropped reply (RC retry
// exhaustion, one-way cut) leaves the coordinator waiting forever while the
// primaries hold the transaction's locks — every later transaction touching
// those objects aborts on conflict. No protocol message ever comes to break
// the tie, because nothing failed in a way leases notice.
//
// The watchdog sweeps in-flight transactions and aborts those stuck in the
// lock or validate phase past Options.TxStallTimeout. Aborting there is
// safe: the ABORT record is ordered after the LOCK record in each primary's
// ring, so it releases exactly the locks this transaction took, and no
// backup has seen anything. From COMMIT-BACKUP on the watchdog must NOT
// decide unilaterally — a backup may hold a COMMIT-BACKUP record, making
// the transaction's outcome recovery's to settle (§5.3) — so those phases
// rely on ring-writer retransmission plus the reportWriteFailure backstop.

func (m *Machine) startTxStallSweep() {
	if m.c.Opts.TxStallTimeout <= 0 || m.stallSweepOn {
		return
	}
	m.stallSweepOn = true
	m.armTxStallSweep()
}

func (m *Machine) armTxStallSweep() {
	d := m.c.Opts.TxStallTimeout
	m.c.Eng.After(d/2, func() {
		if !m.alive {
			m.stallSweepOn = false
			return
		}
		now := m.c.Eng.Now()
		// Sorted iteration: the sweep emits events (abort records) and maps
		// iterate in random order.
		for _, id := range txIDKeys(m.inflight) {
			ct := m.inflight[id]
			if ct == nil || ct.recovering {
				continue
			}
			if ct.phase != phaseLock && ct.phase != phaseValidate {
				continue
			}
			if now-ct.lastProgress < d {
				continue
			}
			m.c.Counters.Inc("tx_stall_aborted", 1)
			m.abortTx(ct, ErrAborted)
		}
		// Participant side: recovering transactions whose COMMIT/ABORT-
		// RECOVERY or TRUNCATE-RECOVERY was lost re-query their recovery
		// coordinator (recovery.go).
		m.sweepStuckRecovering(now)
		m.armTxStallSweep()
	})
}

// reportWriteFailure tells the membership layer a log write's retries were
// exhausted against a configuration member. The CM double-checks with its
// own probe protocol before evicting anyone, so false positives cost a
// probe round, not a machine.
func (m *Machine) reportWriteFailure(dst int) {
	if !m.isMember(dst) || dst == m.ID {
		return
	}
	m.c.Counters.Inc("log_write_failed", 1)
	if m.IsCM() {
		m.suspect(dst)
		return
	}
	m.send(int(m.config.CM), &suspectReport{Config: m.config.ID, Suspect: dst})
}
