package core

import (
	"hash/fnv"

	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/sim"
	"farm/internal/trace"
)

// This file implements transaction state recovery (§5.3 / Figure 6):
//
//  1. block access to recovering regions (set up in reconfig.go)
//  2. drain logs, record LastDrained
//  3. find recovering transactions; backups send NEED-RECOVERY
//  4. lock recovery at the (possibly new) primary, sharded by coordinator
//     thread; regions become active as soon as their locks are recovered
//  5. replicate lock records to backups that miss them
//  6. vote: region primaries send RECOVERY-VOTE to the transaction's
//     recovery coordinator; explicit REQUEST-VOTE after a 250 µs timeout
//  7. decide, then COMMIT/ABORT-RECOVERY and TRUNCATE-RECOVERY
//
// The recovery coordinator is the original coordinator if it is still in
// the configuration, otherwise a machine chosen by hashing the transaction
// id over the membership — a deterministic rule every machine evaluates
// identically, which is what the paper's consistent hashing provides.

// earlyNeed buffers NEED-RECOVERY messages that arrive before this
// machine's NEW-CONFIG-COMMIT.
type earlyNeed struct {
	src int
	msg *proto.NeedRecovery
}

// recoveryState is per-machine, per-configuration recovery progress.
type recoveryState struct {
	configID uint64
	drained  bool
	// regions under recovery at this machine (we are the primary).
	regions map[uint32]*regionRecovery
	// votes collected by this machine as a recovery coordinator.
	votes map[proto.TxID]*voteCollector
	// regionsActiveSent guards the REGIONS-ACTIVE report.
	regionsActiveSent bool
	// ctx is the open "drain" span (§5.3 step 2) when tracing is on.
	ctx trace.Ctx
}

// recoveryTraceCtx tags a send with the current configuration's recovery
// timeline. It is for sends made from timer or thread-pool closures, where
// the dispatch-scoped curCtx of the message that caused them is gone.
func (m *Machine) recoveryTraceCtx() trace.Ctx {
	if m.trb == nil {
		return trace.Ctx{}
	}
	return trace.Ctx{Trace: trace.RecoveryTraceBit | m.config.ID}
}

// regionRecovery drives steps 3–6 for one region at its primary.
type regionRecovery struct {
	region uint32
	// needed lists backups whose NEED-RECOVERY has not arrived yet.
	needed map[int]bool
	txs    map[mtl]*recTx
	// phase: 0 waiting (drain+NEED-RECOVERY), 1 fetching/locking,
	// 2 active (locks recovered; replication/votes may still be running).
	phase int
	// ctx is the open "lock-recovery" span for this region.
	ctx trace.Ctx
	// pendingLock resumes lock acquisition once record fetches complete.
	pendingLock func()
}

// recTx is one recovering transaction's state at a region primary.
type recTx struct {
	id  proto.TxID
	saw uint8 // merged over all replicas of the region
	// sawBy[machine] is each replica's own view, for replication targets.
	sawBy            map[int]uint8
	lock             *proto.Record
	fetchOutstanding int
	replOutstanding  int
	voted            bool
}

// voteCollector gathers votes at the recovery coordinator.
type voteCollector struct {
	id           proto.TxID
	regions      map[uint32]proto.Vote
	known        map[uint32]bool
	decided      bool
	commit       bool
	participants map[int]bool
	// acked records which participants acknowledged the decision. A set —
	// not a countdown — because decisions are retransmitted (late voters,
	// QUERY-DECISION) and duplicate acks must not trip truncation early:
	// a premature TRUNCATE-RECOVERY at a participant that never saw an
	// ABORT-RECOVERY would apply the aborted writes at its backups.
	acked map[int]bool
	// ctx is the "vote-decide" span, open from the collector's creation to
	// the decision; decision fan-out reuses it as the causal context.
	ctx trace.Ctx
}

// startTxRecovery runs on NEW-CONFIG-COMMIT.
func (m *Machine) startTxRecovery(configID uint64) {
	m.recov = &recoveryState{
		configID: configID,
		regions:  make(map[uint32]*regionRecovery),
		votes:    make(map[proto.TxID]*voteCollector),
	}
	if m.trb != nil {
		m.recov.ctx = m.trb.Begin("recovery", "drain", m.c.Eng.Now(),
			trace.RecoveryTraceBit|configID, 0, int64(len(m.logR)))
	}
	// Replay NEED-RECOVERY messages that raced ahead of our commit.
	early := m.earlyNeedRec
	m.earlyNeedRec = nil
	for _, e := range early {
		if e.msg.Config == configID {
			m.onNeedRecovery(e.src, e.msg)
		}
	}
	// Step 2: drain all logs. Records present in the rings at this instant
	// are processed as part of the drain; records landing from now on see
	// LastDrained = current configuration and are rejected if they belong
	// to recovering transactions.
	m.lastDrained = configID
	outstanding := 1 // sentinel so the barrier cannot fire early
	done := func() {
		outstanding--
		if outstanding > 0 {
			return
		}
		if !m.alive || m.recov == nil || m.recov.configID != m.config.ID {
			return
		}
		m.recov.drained = true
		if m.recov.ctx.Valid() {
			m.trb.End(m.recov.ctx, m.c.Eng.Now(), 0)
			m.recov.ctx = trace.Ctx{}
		}
		m.findRecoveringTxs()
	}
	for _, src := range intKeys(m.logR) {
		lr := m.logR[src]
		outstanding++
		m.drainLog(lr, func() { done() })
	}
	done()
}

// drainLog polls one ring and processes everything found, bypassing the
// stale-record rejection (these records were in the log at drain time and
// must be examined, §5.3 step 2). cb runs after processing completes on
// the owning thread — behind any earlier poll batches for the same ring,
// preserving record order.
func (m *Machine) drainLog(lr *logReader, cb func()) {
	frames := lr.rd.Poll()
	type parsed struct {
		rec *proto.Record
		seq uint64
	}
	var batch []parsed
	var cost sim.Time
	for _, f := range frames {
		rec, err := proto.UnmarshalRecord(f.Payload)
		if err != nil {
			continue
		}
		batch = append(batch, parsed{rec, f.Seq})
		cost += m.c.Opts.CPUMsg/4 + sim.Time(len(rec.Writes))*m.c.Opts.CPUPerObject
	}
	m.pool.ByIndex(lr.src).Do(cost, func() {
		if m.alive {
			for _, p := range batch {
				m.handleRecordInner(lr, p.rec, p.seq, true)
			}
		} else if len(batch) > 0 {
			lr.rd.RewindTo(batch[0].seq)
		}
		cb()
	})
}

// findRecoveringTxs is step 3: classify every transaction with records in
// our logs; route NEED-RECOVERY messages; set up per-region recovery.
func (m *Machine) findRecoveringTxs() {
	rs := m.recov
	// Initialize region recovery for every region we are (now) primary
	// for. Regions whose replicas are all unchanged never instantiate
	// recovery state, matching the paper's "only recovering transactions
	// go through transaction recovery".
	for id, rep := range m.replicas {
		rm := m.mappings[id]
		if rm == nil || !rep.primary {
			continue
		}
		if rm.LastReplicaChange < m.config.ID && !m.configShrank {
			continue
		}
		if rs.regions[id] != nil {
			continue // created on demand by an early NEED-RECOVERY
		}
		rr := &regionRecovery{region: id, needed: make(map[int]bool), txs: make(map[mtl]*recTx)}
		for _, b := range rm.Replicas[1:] {
			if int(b) != m.ID {
				rr.needed[int(b)] = true
			}
		}
		rs.regions[id] = rr
	}

	// Classify our participant-side transactions.
	needByPrimary := make(map[int]map[uint32][]proto.TxSeen)
	for _, k := range mtlKeys(m.pend) {
		rt := m.pend[k]
		if !m.txIsRecovering(rt) {
			continue
		}
		for _, region := range rt.regions() {
			rm := m.mappings[region]
			if rm == nil || len(rm.Replicas) == 0 {
				continue
			}
			hosted := m.replicas[region]
			if hosted == nil {
				continue
			}
			if int(rm.Replicas[0]) == m.ID {
				// We are the primary: fold into region recovery directly.
				rr := rs.regions[region]
				if rr == nil {
					rr = &regionRecovery{region: region, needed: make(map[int]bool), txs: make(map[mtl]*recTx)}
					for _, b := range rm.Replicas[1:] {
						if int(b) != m.ID {
							rr.needed[int(b)] = true
						}
					}
					rs.regions[region] = rr
				}
				rr.add(m.ID, rt.id, rt.saw, rt.lock)
			} else {
				// We are a backup: report to the primary (step 3).
				p := int(rm.Replicas[0])
				if needByPrimary[p] == nil {
					needByPrimary[p] = make(map[uint32][]proto.TxSeen)
				}
				needByPrimary[p][region] = append(needByPrimary[p][region],
					proto.TxSeen{Tx: rt.id, Saw: rt.saw})
			}
		}
	}
	// Every backup sends NEED-RECOVERY for every recovering region it
	// backs, even when it has nothing, so primaries can detect completion.
	for id, rep := range m.replicas {
		rm := m.mappings[id]
		if rm == nil || rep.primary || len(rm.Replicas) == 0 || int(rm.Replicas[0]) == m.ID {
			continue
		}
		if rm.LastReplicaChange < m.config.ID && !m.configShrank {
			continue
		}
		p := int(rm.Replicas[0])
		if needByPrimary[p] == nil {
			needByPrimary[p] = make(map[uint32][]proto.TxSeen)
		}
		if _, ok := needByPrimary[p][id]; !ok {
			needByPrimary[p][id] = nil
		}
	}
	for _, p := range intKeys(needByPrimary) {
		byRegion := needByPrimary[p]
		for _, region := range regionKeys(byRegion) {
			m.sendCtx(p, &proto.NeedRecovery{Config: m.config.ID, Region: region, Txs: byRegion[region]},
				m.recoveryTraceCtx())
		}
	}
	m.c.Counters.Inc("recovering_tx_found", uint64(countRecovering(rs)))

	// Coordinator side: arm vote collection for our own recovering
	// transactions so read-set-only recoveries make progress too.
	for _, id := range txIDKeys(m.inflight) {
		if ct := m.inflight[id]; ct.recovering {
			m.armVoteCollector(ct.id, ct.writeRegions, ct.participantSet())
		}
	}
	for _, region := range regionKeys(rs.regions) {
		m.maybeRecoverRegion(rs.regions[region])
	}
	m.maybeAllPrimariesActive()
}

func countRecovering(rs *recoveryState) int {
	seen := make(map[mtl]bool)
	for _, rr := range rs.regions {
		for k := range rr.txs {
			seen[k] = true
		}
	}
	return len(seen)
}

// regions returns the region list a participant knows for a transaction.
func (rt *remoteTx) regions() []uint32 {
	if rt.lock != nil {
		return rt.lock.Regions
	}
	return rt.regionHint
}

// txIsRecovering is the participant-side §5.3 predicate.
func (m *Machine) txIsRecovering(rt *remoteTx) bool {
	if rt.id.Config >= m.config.ID {
		return false
	}
	if !m.config.Member(rt.id.Machine) {
		return true
	}
	for _, region := range rt.regions() {
		rm := m.mappings[region]
		if rm == nil || rm.LastReplicaChange >= m.config.ID {
			return true
		}
	}
	return false
}

// add merges one replica's knowledge of a recovering transaction into the
// region's recovery state.
func (rr *regionRecovery) add(from int, id proto.TxID, saw uint8, lock *proto.Record) {
	k := mtlOf(id)
	rt := rr.txs[k]
	if rt == nil {
		rt = &recTx{id: id, sawBy: make(map[int]uint8)}
		rr.txs[k] = rt
	}
	rt.saw |= saw
	rt.sawBy[from] |= saw
	if rt.lock == nil && lock != nil {
		rt.lock = lock
	}
}

// onNeedRecovery merges a backup's report (step 3 → step 4 hand-off).
func (m *Machine) onNeedRecovery(src int, nr *proto.NeedRecovery) {
	if nr.Config != m.config.ID {
		return
	}
	if m.recov == nil || m.recov.configID != m.config.ID {
		// NEW-CONFIG-COMMIT has not reached us yet; replay once it does.
		m.earlyNeedRec = append(m.earlyNeedRec, earlyNeed{src: src, msg: nr})
		return
	}
	rr := m.recov.regions[nr.Region]
	if rr == nil {
		// We did not classify this region as recovering (e.g. only the
		// coordinator died); create recovery state on demand.
		rm := m.mappings[nr.Region]
		rep := m.replicas[nr.Region]
		if rm == nil || rep == nil || !rep.primary {
			return
		}
		rr = &regionRecovery{region: nr.Region, needed: make(map[int]bool), txs: make(map[mtl]*recTx)}
		for _, b := range rm.Replicas[1:] {
			if int(b) != m.ID {
				rr.needed[int(b)] = true
			}
		}
		// Fold in our own matching pending transactions.
		for _, rt := range m.pend {
			if !m.txIsRecovering(rt) {
				continue
			}
			for _, r := range rt.regions() {
				if r == nr.Region {
					rr.add(m.ID, rt.id, rt.saw, rt.lock)
				}
			}
		}
		m.recov.regions[nr.Region] = rr
	}
	for _, ts := range nr.Txs {
		rr.add(src, ts.Tx, ts.Saw, nil)
	}
	delete(rr.needed, src)
	m.maybeRecoverRegion(rr)
}

// maybeRecoverRegion runs step 4 once the logs are drained and every
// backup reported: fetch missing lock records, then acquire locks; the
// region becomes active immediately after (§5.3's fast path), with record
// replication and voting continuing in the background.
func (m *Machine) maybeRecoverRegion(rr *regionRecovery) {
	if m.recov == nil || !m.recov.drained || len(rr.needed) > 0 || rr.phase != 0 {
		return
	}
	rr.phase = 1
	if m.trb != nil {
		rr.ctx = m.trb.Begin("recovery", "lock-recovery", m.c.Eng.Now(),
			trace.RecoveryTraceBit|m.config.ID, 0, int64(rr.region))
	}
	rep := m.replicas[rr.region]
	if rep == nil {
		return
	}
	var lockAll func()
	lockAll = func() {
		for _, rt := range rr.txs {
			if rt.fetchOutstanding > 0 {
				return
			}
		}
		// Shard lock recovery across threads by coordinator thread id and
		// charge the CPU there (§5.3 step 4).
		work := make(map[int][]*recTx)
		for _, k := range mtlKeys(rr.txs) {
			rt := rr.txs[k]
			work[int(rt.id.Thread)%m.c.Opts.Threads] = append(work[int(rt.id.Thread)%m.c.Opts.Threads], rt)
		}
		pendingThreads := len(work)
		finish := func() {
			pendingThreads--
			if pendingThreads > 0 {
				return
			}
			rr.phase = 2
			m.endLockRecSpan(rr)
			m.activateRegion(rr.region)
			m.replicateAndVote(rr)
		}
		if len(work) == 0 {
			rr.phase = 2
			m.endLockRecSpan(rr)
			m.activateRegion(rr.region)
			m.replicateAndVote(rr)
			return
		}
		for _, th := range intKeys(work) {
			th, txs := th, work[th]
			cost := sim.Time(len(txs)) * (m.c.Opts.CPUPerObject*4 + m.c.Opts.CPULocal)
			m.pool.ByIndex(th).Do(cost, func() {
				if !m.alive {
					return
				}
				for _, rt := range txs {
					m.recoverLocks(rep, rt)
				}
				finish()
			})
		}
	}
	// Fetch lock records we are missing but some backup saw (step 4).
	for _, k := range mtlKeys(rr.txs) {
		rt := rr.txs[k]
		if rt.lock != nil || rt.saw&(proto.SawLock|proto.SawCommitBackup) == 0 {
			continue
		}
		for _, b := range intKeys(rt.sawBy) {
			if saw := rt.sawBy[b]; b != m.ID && saw&(proto.SawLock|proto.SawCommitBackup) != 0 {
				rt.fetchOutstanding++
				m.sendCtx(b, &proto.FetchTxState{Config: m.config.ID, Region: rr.region, TxIDs: []proto.TxID{rt.id}}, rr.ctx)
				break
			}
		}
	}
	rr.pendingLock = lockAll
	lockAll()
}

// installPendLock upserts a recovered lock record into the participant
// state used by record application.
func (m *Machine) installPendLock(id proto.TxID, lock *proto.Record) {
	k := mtlOf(id)
	rt := m.pend[k]
	if rt == nil {
		rt = &remoteTx{id: id}
		m.pend[k] = rt
	}
	if rt.lock == nil {
		rt.lock = lock
	} else if lock != nil {
		rt.lock = mergeRecords(rt.lock, lock)
	}
	rt.saw |= proto.SawLock
	rt.lastChange = m.c.Eng.Now()
	if lock != nil && len(lock.Regions) > 0 {
		rt.regionHint = lock.Regions
	}
}

// recoverLocks write-locks every object a recovering transaction modified
// in this region (§5.3 step 4).
func (m *Machine) recoverLocks(rep *replica, rt *recTx) {
	if rt.lock == nil || rt.saw&(proto.SawAbort|proto.SawAbortRecovery) != 0 {
		return
	}
	for _, w := range rt.lock.Writes {
		if w.Addr.Region != rep.id {
			continue
		}
		off := int(w.Addr.Off)
		if owner, held := rep.lockOwner[w.Addr.Off]; held {
			if owner == rt.id {
				continue
			}
			continue // another recovering transaction holds it; version
			// checks at decision time keep this safe
		}
		word := regionmem.ReadHeader(rep.mem, off)
		if regionmem.Version(word) > w.Version {
			// This replica already applied the write (it was primary in the
			// old configuration, or a backup that truncated): nothing left
			// to protect. A backup promoted to primary has NOT applied yet
			// even when the transaction reached COMMIT-PRIMARY elsewhere,
			// so the per-object version — not the per-transaction saw set —
			// decides; the lock held here keeps readers off the stale value
			// until the recovery decision applies it.
			continue
		}
		if !regionmem.Locked(word) {
			regionmem.WriteHeader(rep.mem, off, word|1<<63)
		}
		rep.lockOwner[w.Addr.Off] = rt.id
	}
}

// endLockRecSpan closes a region's "lock-recovery" span as it activates.
func (m *Machine) endLockRecSpan(rr *regionRecovery) {
	if rr.ctx.Valid() {
		m.trb.End(rr.ctx, m.c.Eng.Now(), int64(len(rr.txs)))
		rr.ctx = trace.Ctx{}
	}
}

// activateRegion completes §5.3 step 4's fast path: the region accepts
// reads and commits again, long before data recovery finishes.
func (m *Machine) activateRegion(region uint32) {
	rep := m.replicas[region]
	if rep != nil {
		rep.active = true
	}
	m.unblockRegion(region)
	for _, mem := range m.config.Machines {
		if int(mem) != m.ID {
			m.sendCtx(int(mem), &regionActiveAnnounce{ConfigID: m.config.ID, Region: region}, m.recoveryTraceCtx())
		}
	}
	m.c.trace("region-active", m.ID, int(region))
	m.maybeAllPrimariesActive()
}

// maybeAllPrimariesActive sends REGIONS-ACTIVE once every region this
// machine is primary for is active (§5.4).
func (m *Machine) maybeAllPrimariesActive() {
	if m.recov == nil || m.recov.regionsActiveSent {
		return
	}
	for _, rep := range m.replicas {
		if rep.primary && !rep.active {
			return
		}
	}
	for _, rr := range m.recov.regions {
		if rr.phase < 2 {
			return
		}
	}
	m.recov.regionsActiveSent = true
	m.sendCtx(int(m.config.CM), &proto.RegionsActive{ConfigID: m.config.ID}, m.recoveryTraceCtx())
}

// replicateAndVote is steps 5–6: push lock records to backups missing
// them, then vote to the recovery coordinator, sharded by thread.
func (m *Machine) replicateAndVote(rr *regionRecovery) {
	rm := m.mappings[rr.region]
	if rm == nil {
		return
	}
	for _, k := range mtlKeys(rr.txs) {
		rt := rr.txs[k]
		if rt.voted {
			continue
		}
		if rt.lock != nil {
			for _, b := range rm.Replicas[1:] {
				bid := int(b)
				if bid == m.ID {
					continue
				}
				if rt.sawBy[bid]&(proto.SawLock|proto.SawCommitBackup) == 0 {
					rt.replOutstanding++
					m.sendCtx(bid, &proto.ReplicateTxState{
						Config: m.config.ID, Region: rr.region, Tx: rt.id, Lock: rt.lock,
					}, m.recoveryTraceCtx())
				}
			}
		}
		if rt.replOutstanding == 0 {
			m.voteFor(rr, rt)
		}
	}
}

// voteFor computes and sends the region's vote (§5.3 step 6 rules).
func (m *Machine) voteFor(rr *regionRecovery, rt *recTx) {
	if rt.voted {
		return
	}
	rt.voted = true
	vote := voteFromSaw(rt.saw)
	var regions []uint32
	if rt.lock != nil {
		regions = rt.lock.Regions
	}
	coord := m.recoveryCoordinator(rt.id)
	msg := &proto.RecoveryVote{
		Config:  m.config.ID,
		Region:  rr.region,
		Tx:      rt.id,
		Regions: regions,
		Vote:    vote,
	}
	m.sendFromThreadCtx(int(rt.id.Thread), coord, msg, m.recoveryTraceCtx())
}

// voteFromSaw implements the vote precedence of §5.3 step 6.
func voteFromSaw(saw uint8) proto.Vote {
	switch {
	case saw&(proto.SawCommitPrimary|proto.SawCommitRecovery) != 0:
		return proto.VoteCommitPrimary
	case saw&proto.SawCommitBackup != 0 && saw&proto.SawAbortRecovery == 0:
		return proto.VoteCommitBackup
	case saw&proto.SawLock != 0 && saw&proto.SawAbortRecovery == 0:
		return proto.VoteLock
	default:
		return proto.VoteAbort
	}
}

// recoveryCoordinator maps a transaction to its recovery coordinator: the
// original coordinator while it remains a member, otherwise a hash over
// the membership (§5.3 step 6).
func (m *Machine) recoveryCoordinator(id proto.TxID) int {
	if m.config.Member(id.Machine) {
		return int(id.Machine)
	}
	h := fnv.New64a()
	var buf [20]byte
	le := buf[:0]
	le = append(le, byte(id.Config), byte(id.Config>>8), byte(id.Config>>16), byte(id.Config>>24))
	le = append(le, byte(id.Machine), byte(id.Machine>>8))
	le = append(le, byte(id.Thread), byte(id.Thread>>8))
	le = append(le, byte(id.Local), byte(id.Local>>8), byte(id.Local>>16), byte(id.Local>>24),
		byte(id.Local>>32), byte(id.Local>>40), byte(id.Local>>48), byte(id.Local>>56))
	h.Write(le)
	members := m.config.Machines
	return int(members[h.Sum64()%uint64(len(members))])
}

// onFetchTxState serves a primary's request for missing lock records
// (step 4).
func (m *Machine) onFetchTxState(src int, f *proto.FetchTxState) {
	if f.Config != m.config.ID {
		return
	}
	for _, id := range f.TxIDs {
		rt := m.pend[mtlOf(id)]
		var lock *proto.Record
		if rt != nil {
			lock = rt.lock
		}
		m.send(src, &proto.SendTxState{Config: m.config.ID, Region: f.Region, Tx: id, Lock: lock})
	}
}

// onSendTxState installs a fetched record and resumes lock recovery.
func (m *Machine) onSendTxState(s *proto.SendTxState) {
	if s.Config != m.config.ID || m.recov == nil {
		return
	}
	rr := m.recov.regions[s.Region]
	if rr == nil {
		return
	}
	rt := rr.txs[mtlOf(s.Tx)]
	if rt == nil {
		return
	}
	if rt.lock == nil && s.Lock != nil {
		rt.lock = s.Lock
	}
	// Also install the record in the participant state so a later
	// COMMIT-RECOVERY can apply the writes (the primary may never have
	// received the original LOCK record).
	if s.Lock != nil {
		m.installPendLock(s.Tx, s.Lock)
	}
	if rt.fetchOutstanding > 0 {
		rt.fetchOutstanding--
	}
	if rr.pendingLock != nil {
		// Recount: all fetches done?
		for _, other := range rr.txs {
			if other.fetchOutstanding > 0 {
				return
			}
		}
		fn := rr.pendingLock
		rr.pendingLock = nil
		fn()
	}
}

// onReplicateTxState stores a replicated lock record at a backup (step 5).
func (m *Machine) onReplicateTxState(src int, r *proto.ReplicateTxState) {
	if r.Config != m.config.ID {
		return
	}
	k := mtlOf(r.Tx)
	rt := m.pend[k]
	if rt == nil {
		rt = &remoteTx{id: r.Tx}
		m.pend[k] = rt
	}
	if rt.lock == nil {
		rt.lock = r.Lock
	}
	rt.saw |= proto.SawLock
	rt.lastChange = m.c.Eng.Now()
	if r.Lock != nil {
		rt.regionHint = r.Lock.Regions
	}
	m.send(src, &proto.ReplicateTxStateAck{Config: r.Config, Region: r.Region, Tx: r.Tx})
}

// onReplicateTxStateAck resumes voting once replication completed (step 5
// → 6: "vote as before after first waiting for log replication ... to
// complete").
func (m *Machine) onReplicateTxStateAck(a *proto.ReplicateTxStateAck) {
	if a.Config != m.config.ID || m.recov == nil {
		return
	}
	rr := m.recov.regions[a.Region]
	if rr == nil {
		return
	}
	rt := rr.txs[mtlOf(a.Tx)]
	if rt == nil {
		return
	}
	rt.replOutstanding--
	if rt.replOutstanding <= 0 && rr.phase == 2 {
		m.voteFor(rr, rt)
	}
}

// armVoteCollector creates (or refreshes) a vote collector and its
// REQUEST-VOTE timeout.
func (m *Machine) armVoteCollector(id proto.TxID, knownRegions []uint32, participants map[int]bool) *voteCollector {
	if m.recov == nil {
		m.recov = &recoveryState{
			configID: m.config.ID,
			regions:  make(map[uint32]*regionRecovery),
			votes:    make(map[proto.TxID]*voteCollector),
		}
	}
	vc := m.recov.votes[id]
	if vc == nil {
		vc = &voteCollector{
			id:           id,
			regions:      make(map[uint32]proto.Vote),
			known:        make(map[uint32]bool),
			participants: make(map[int]bool),
		}
		m.recov.votes[id] = vc
		if m.trb != nil {
			vc.ctx = m.trb.Begin("recovery", "vote-decide", m.c.Eng.Now(),
				trace.RecoveryTraceBit|m.config.ID, 0, int64(id.Local))
		}
		m.c.Eng.After(m.c.Opts.VoteTimeout, func() {
			if m.alive {
				m.requestMissingVotes(vc)
			}
		})
	}
	for _, r := range knownRegions {
		vc.known[r] = true
	}
	for p := range participants {
		vc.participants[p] = true
	}
	return vc
}

// participantSet lists all machines holding records for a coordinator's
// transaction.
func (ct *coordTx) participantSet() map[int]bool {
	out := make(map[int]bool)
	for _, p := range ct.participants {
		out[p] = true
	}
	return out
}

// onRecoveryVote collects a region's vote (step 6) at the recovery
// coordinator.
func (m *Machine) onRecoveryVote(src int, v *proto.RecoveryVote) {
	if v.Config != m.config.ID {
		return
	}
	vc := m.armVoteCollector(v.Tx, v.Regions, map[int]bool{src: true})
	if vc.decided {
		// Late vote after decision: resend the decision to the voter.
		m.sendDecision(vc, src)
		return
	}
	vc.known[v.Region] = true
	if old, ok := vc.regions[v.Region]; !ok || v.Vote > old {
		vc.regions[v.Region] = v.Vote
	}
	m.maybeDecide(vc)
}

// requestMissingVotes is the 250 µs timeout path of step 6.
func (m *Machine) requestMissingVotes(vc *voteCollector) {
	if vc.decided || m.recov == nil {
		return
	}
	missing := false
	for _, region := range regionKeys(vc.known) {
		if _, ok := vc.regions[region]; ok {
			continue
		}
		missing = true
		rm := m.mappings[region]
		if rm == nil || len(rm.Replicas) == 0 {
			continue
		}
		m.sendCtx(int(rm.Replicas[0]), &proto.RequestVote{Config: m.config.ID, Tx: vc.id, Region: region}, vc.ctx)
	}
	if missing {
		m.c.Eng.After(m.c.Opts.VoteTimeout, func() {
			if m.alive {
				m.requestMissingVotes(vc)
			}
		})
	}
	if len(vc.known) == 0 {
		// A recovering transaction with no write regions (read-set-only
		// recovery): abort it.
		m.decide(vc, false)
	}
}

// onRequestVote answers explicit vote requests, including for transactions
// this primary never classified as recovering (§5.3: primaries with
// records vote as before; without records they vote truncated or unknown).
func (m *Machine) onRequestVote(src int, rv *proto.RequestVote) {
	if rv.Config != m.config.ID {
		return
	}
	// Vote only after this configuration's drain has completed and (if the
	// region is recovering) its lock recovery has merged every replica's
	// knowledge: a premature vote from partial state could read as LOCK a
	// transaction whose COMMIT-BACKUP exists only at a backup, turning a
	// reported commit into an abort. The requester retries on its timeout.
	if m.recov == nil || m.recov.configID != m.config.ID || !m.recov.drained {
		return
	}
	if rr := m.recov.regions[rv.Region]; rr != nil && rr.phase < 2 {
		return
	}
	k := mtlOf(rv.Tx)
	vote := proto.VoteUnknown
	var regions []uint32
	if m.recov != nil {
		if rr := m.recov.regions[rv.Region]; rr != nil {
			if rt := rr.txs[k]; rt != nil {
				if rt.replOutstanding > 0 {
					return // will vote when replication completes
				}
				rt.voted = true
				vote = voteFromSaw(rt.saw)
				if rt.lock != nil {
					regions = rt.lock.Regions
				}
				m.send(src, &proto.RecoveryVote{Config: m.config.ID, Region: rv.Region, Tx: rv.Tx, Regions: regions, Vote: vote})
				return
			}
		}
	}
	if rt := m.pend[k]; rt != nil {
		vote = voteFromSaw(rt.saw)
		regions = rt.regions()
	} else if m.truncDomainFor(rv.Tx.Coord()).truncated(rv.Tx.Local) {
		vote = proto.VoteTruncated
	}
	m.send(src, &proto.RecoveryVote{Config: m.config.ID, Region: rv.Region, Tx: rv.Tx, Regions: regions, Vote: vote})
}

// maybeDecide applies the decision rule of step 7.
func (m *Machine) maybeDecide(vc *voteCollector) {
	if vc.decided {
		return
	}
	anyCommitPrimary := false
	anyCommitBackup := false
	allCompatible := true
	for region := range vc.known {
		v, ok := vc.regions[region]
		if !ok {
			// Commit-primary short-circuits waiting for all regions.
			allCompatible = false
			continue
		}
		switch v {
		case proto.VoteCommitPrimary:
			anyCommitPrimary = true
		case proto.VoteCommitBackup:
			anyCommitBackup = true
		case proto.VoteLock, proto.VoteTruncated:
			// compatible with commit
		default:
			allCompatible = false
		}
	}
	if anyCommitPrimary {
		m.decide(vc, true)
		return
	}
	if len(vc.regions) == len(vc.known) && len(vc.known) > 0 {
		m.decide(vc, anyCommitBackup && allCompatible)
	}
}

// decide is step 7: fix the outcome, inform every participant replica,
// and finish the coordinator-side transaction if it is ours.
func (m *Machine) decide(vc *voteCollector, commit bool) {
	if vc.decided {
		return
	}
	vc.decided = true
	vc.commit = commit
	if vc.ctx.Valid() {
		arg := int64(0)
		if commit {
			arg = 1
		}
		// End the span but keep vc.ctx: the decision fan-out (and any late
		// re-sends) stays causally linked to it.
		m.trb.End(vc.ctx, m.c.Eng.Now(), arg)
	}
	m.c.Counters.Inc("recovery_decided", 1)
	if commit {
		m.c.Counters.Inc("recovery_committed", 1)
	} else {
		m.c.Counters.Inc("recovery_aborted", 1)
	}
	// Participants: all replicas of all written regions.
	for region := range vc.known {
		if rm := m.mappings[region]; rm != nil {
			for _, r := range rm.Replicas {
				vc.participants[int(r)] = true
			}
		}
	}
	vc.acked = make(map[int]bool)
	anySent := false
	for _, p := range intKeys(vc.participants) {
		if !m.isMember(p) {
			continue
		}
		anySent = true
		m.sendDecision(vc, p)
	}
	// Finish our own in-flight transaction, preserving any outcome
	// already reported to the application.
	if ct, ok := m.inflight[vc.id]; ok {
		delete(m.inflight, vc.id)
		ct.phase = phaseDone
		// The records recovery makes unnecessary are never written, so
		// their log reservations must be returned (they would otherwise
		// leak ring space forever).
		m.releaseCoordReservations(ct)
		if commit {
			if !ct.reported {
				ct.reported = true
				m.reportCommitted(ct)
			}
		} else {
			if ct.reported {
				panic("farm: recovery aborted a transaction already reported committed")
			}
			ct.tx.releaseAllocs()
			m.Aborted++
			m.c.Counters.Inc("tx_aborted", 1)
			ct.cb(ErrAborted)
		}
	}
	if !anySent {
		m.sendTruncateRecovery(vc)
	}
}

// decisionAcksComplete reports whether every member participant has
// acknowledged the decision (non-members are fenced and never ack).
func (m *Machine) decisionAcksComplete(vc *voteCollector) bool {
	for p := range vc.participants {
		if m.isMember(p) && !vc.acked[p] {
			return false
		}
	}
	return true
}

func (m *Machine) sendDecision(vc *voteCollector, dst int) {
	if vc.commit {
		m.sendCtx(dst, &proto.CommitRecovery{Config: m.config.ID, Tx: vc.id}, vc.ctx)
	} else {
		m.sendCtx(dst, &proto.AbortRecovery{Config: m.config.ID, Tx: vc.id}, vc.ctx)
	}
}

// onRecoveryDecision processes COMMIT-RECOVERY / ABORT-RECOVERY at a
// participant: like COMMIT-PRIMARY at primaries and COMMIT-BACKUP at
// backups; ABORT-RECOVERY releases locks (§5.3 step 7).
func (m *Machine) onRecoveryDecision(src int, id proto.TxID, commit bool) {
	k := mtlOf(id)
	if m.truncDomainFor(id.Coord()).truncated(id.Local) {
		// A retransmitted decision for a transaction we already truncated:
		// recreating participant state here would leak a pend entry that no
		// future truncation cleans. Just re-acknowledge.
		m.send(src, &proto.RecoveryDecisionAck{Config: m.config.ID, Tx: id})
		return
	}
	rt := m.pend[k]
	if rt == nil {
		rt = &remoteTx{id: id}
		m.pend[k] = rt
	}
	rt.lastChange = m.c.Eng.Now()
	if commit {
		rt.saw |= proto.SawCommitRecovery
		// Apply at primary regions now; backup regions apply at
		// TRUNCATE-RECOVERY, like the normal protocol. A machine that
		// already applied as primary of one written region may since have
		// been promoted to primary of another (region remap): clear the
		// one-shot flag so the newly owned region's writes apply too —
		// per-object version gating keeps the pass idempotent.
		rt.applied = false
		m.applyCommitPrimary(rt)
	} else {
		rt.saw |= proto.SawAbortRecovery
		m.releaseLocksRecovered(rt)
	}
	m.send(src, &proto.RecoveryDecisionAck{Config: m.config.ID, Tx: id})
}

// releaseLocksRecovered releases both normal and recovery locks held for
// an aborted recovering transaction.
func (m *Machine) releaseLocksRecovered(rt *remoteTx) {
	m.releaseLocks(rt)
	// Recovery locks may be registered in lockOwner without appearing in
	// rt.lockedObjs (they were taken by recoverLocks).
	if rt.lock == nil {
		return
	}
	for _, w := range rt.lock.Writes {
		rep := m.replicas[w.Addr.Region]
		if rep == nil {
			continue
		}
		if owner, ok := rep.lockOwner[w.Addr.Off]; ok && owner == rt.id {
			regionmem.Unlock(rep.mem, int(w.Addr.Off))
			delete(rep.lockOwner, w.Addr.Off)
		}
	}
}

// onRecoveryDecisionAck records a participant ack; when every member
// participant has acknowledged, send TRUNCATE-RECOVERY (§5.3 step 7).
// Duplicate acks (decision retransmissions) are idempotent.
func (m *Machine) onRecoveryDecisionAck(src int, a *proto.RecoveryDecisionAck) {
	if m.recov == nil {
		return
	}
	vc := m.recov.votes[a.Tx]
	if vc == nil || !vc.decided || vc.acked[src] {
		return
	}
	vc.acked[src] = true
	if m.decisionAcksComplete(vc) {
		m.sendTruncateRecovery(vc)
	}
}

func (m *Machine) sendTruncateRecovery(vc *voteCollector) {
	for _, p := range intKeys(vc.participants) {
		if m.isMember(p) {
			m.sendCtx(p, &proto.TruncateRecovery{Config: m.config.ID, Tx: vc.id}, vc.ctx)
		}
	}
}

// onTruncateRecovery reclaims a recovered transaction's state: backups
// apply committed writes, locks are dropped, frames reclaimed.
func (m *Machine) onTruncateRecovery(t *proto.TruncateRecovery) {
	k := mtlOf(t.Tx)
	lr := m.logR[int(t.Tx.Machine)]
	if lr != nil {
		m.truncateTx(lr, t.Tx.Coord(), t.Tx.Local)
	} else {
		if rt := m.pend[k]; rt != nil {
			if rt.saw&(proto.SawAbort|proto.SawAbortRecovery) == 0 {
				m.applyAtBackup(rt)
			}
			delete(m.pend, k)
		}
		m.truncDomainFor(t.Tx.Coord()).add(t.Tx.Local)
	}
}

// queryDecision asks a transaction's recovery coordinator what became of a
// recovering transaction. Decisions and truncations are plain messages, so
// a participant whose COMMIT/ABORT-RECOVERY or TRUNCATE-RECOVERY was lost
// (gray NIC, one-way cut during the recovery window) would otherwise hold
// its pend entry forever: backups never vote, so no protocol message ever
// comes to break the tie. The stall sweep detects such entries and sends
// this query; see onQueryDecision for the coordinator side.
type queryDecision struct {
	Config  uint64
	Tx      proto.TxID
	Regions []uint32
}

// sweepStuckRecovering is the participant side: find recovering pend
// entries with no protocol progress for a full stall period and ask their
// recovery coordinator to retransmit the outcome. Called from the tx stall
// sweep; rate-limited to one query per entry per period by bumping
// lastChange.
func (m *Machine) sweepStuckRecovering(now sim.Time) {
	if m.recov != nil && (m.recov.configID != m.config.ID || !m.recov.drained) {
		return // recovery for this configuration is still classifying
	}
	d := m.c.Opts.TxStallTimeout
	for _, k := range mtlKeys(m.pend) {
		rt := m.pend[k]
		if now-rt.lastChange < d || !m.txIsRecovering(rt) {
			continue
		}
		regions := rt.regions()
		if len(regions) == 0 {
			continue
		}
		rt.lastChange = now
		m.c.Counters.Inc("recovery_query", 1)
		q := &queryDecision{Config: m.config.ID, Tx: rt.id, Regions: regions}
		coord := m.recoveryCoordinator(rt.id)
		if coord == m.ID {
			m.onQueryDecision(m.ID, q)
		} else {
			m.sendCtx(coord, q, m.recoveryTraceCtx())
		}
	}
}

// onQueryDecision serves a participant stuck on a recovering transaction.
// Three cases: the transaction was already truncated here (the participant
// only missed TRUNCATE-RECOVERY); a decision exists (retransmit it, or the
// truncation if this participant already acknowledged the decision); or no
// vote collector exists at all — every region vote was lost — in which
// case a fresh vote collection is started against the written regions'
// primaries, which vote from their merged post-drain state.
func (m *Machine) onQueryDecision(src int, q *queryDecision) {
	if q.Config != m.config.ID || !m.isMember(src) {
		return
	}
	if m.truncDomainFor(q.Tx.Coord()).truncated(q.Tx.Local) {
		m.c.Counters.Inc("recovery_query_truncated", 1)
		m.send(src, &proto.TruncateRecovery{Config: m.config.ID, Tx: q.Tx})
		return
	}
	if m.recov != nil && m.recov.configID == m.config.ID {
		if vc := m.recov.votes[q.Tx]; vc != nil {
			if !vc.decided {
				return // vote collection in progress; the sweep retries
			}
			vc.participants[src] = true
			if vc.acked[src] {
				// It has the decision; only its truncation was lost.
				m.c.Counters.Inc("recovery_query_retruncate", 1)
				m.sendCtx(src, &proto.TruncateRecovery{Config: m.config.ID, Tx: q.Tx}, vc.ctx)
			} else {
				m.c.Counters.Inc("recovery_query_redecide", 1)
				m.sendDecision(vc, src)
			}
			return
		}
	}
	// No collector: the decision or every vote for it was lost in flight.
	m.c.Counters.Inc("recovery_query_revote", 1)
	vc := m.armVoteCollector(q.Tx, q.Regions, map[int]bool{src: true})
	m.requestMissingVotes(vc)
}
