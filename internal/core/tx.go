package core

import (
	"errors"

	"farm/internal/fabric"
	"farm/internal/history"
	"farm/internal/nvram"
	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/sim"
	"farm/internal/trace"
)

// mtl identifies a transaction without its configuration component:
// coordinator machine, thread, and thread-local id. Local ids are monotonic
// per thread across configurations, so the triple is unique; truncation
// piggybacks reference transactions this way (Table 1).
type mtl struct {
	m, t  uint16
	local uint64
}

func mtlOf(id proto.TxID) mtl { return mtl{m: id.Machine, t: id.Thread, local: id.Local} }

// readEntry records one object read during execution.
type readEntry struct {
	addr    proto.Addr
	version uint64
	size    int
	data    []byte
}

// writeEntry is a buffered write.
type writeEntry struct {
	addr      proto.Addr
	version   uint64 // version observed at read/alloc time (lock target)
	value     []byte
	allocated bool // allocation bit after commit (false for frees)
	isAlloc   bool // freshly allocated slot: released back on abort
}

// Tx is a FaRM transaction. The thread that begins a transaction is its
// coordinator (§3). All methods are asynchronous: they charge CPU to the
// coordinator thread and deliver results through callbacks; a thread can
// run several transactions concurrently, like FaRM's event loops.
type Tx struct {
	m      *Machine
	thread int

	reads  map[proto.Addr]*readEntry
	writes map[proto.Addr]*writeEntry
	order  []proto.Addr // write order, for deterministic record layout

	started  sim.Time
	finished bool

	// ctx is the root trace span of a sampled transaction (zero when this
	// transaction is untraced); reads and commit phases hang off it.
	ctx trace.Ctx

	// hrec is the per-transaction history recording handle (nil when
	// recording is disabled — the hist* hooks then cost one nil check).
	hrec *history.TxRec
}

// Begin starts a transaction coordinated by worker thread `thread` of m.
// When tracing is enabled, the deterministic N-of-every-M sampler decides
// here whether this transaction gets a root span.
func (m *Machine) Begin(thread int) *Tx {
	t := &Tx{
		m:       m,
		thread:  thread % m.c.Opts.Threads,
		reads:   make(map[proto.Addr]*readEntry),
		writes:  make(map[proto.Addr]*writeEntry),
		started: m.c.Eng.Now(),
	}
	if m.trb != nil && m.trb.SampleTx() {
		t.ctx = m.trb.Begin("tx", "tx", t.started, 0, 0, int64(t.thread))
	}
	if m.c.Hist != nil {
		t.hrec = m.c.Hist.Open(m.ID, t.thread, t.started)
	}
	return t
}

// histRead records a fresh object read with the version it observed.
func (t *Tx) histRead(addr proto.Addr, version uint64) {
	if t.hrec != nil {
		t.hrec.Read(addr, version)
	}
}

// histWrite records (or updates) a buffered write.
func (t *Tx) histWrite(addr proto.Addr, version uint64, value []byte, alloc, free bool) {
	if t.hrec != nil {
		t.hrec.Write(addr, version, value, alloc, free)
	}
}

// histFinish reports the transaction's outcome to the recorder
// (idempotent; safe against commit-path callback re-wrapping).
func (t *Tx) histFinish(o history.Outcome) {
	if t.hrec != nil {
		t.hrec.Finish(t.m.c.Eng.Now(), o)
	}
}

// endTxSpan closes the transaction's root span (no-op when untraced).
func (t *Tx) endTxSpan(err error) {
	if !t.ctx.Valid() {
		return
	}
	var arg int64
	if err != nil {
		arg = 1 // aborted
	}
	t.m.trb.End(t.ctx, t.m.c.Eng.Now(), arg)
	t.ctx = trace.Ctx{}
}

// maxReadRetries bounds spinning on locked objects before reporting a
// conflict to the application.
const maxReadRetries = 64

// Mapping retries use capped exponential backoff with a retry budget:
// transient staleness (a reconfiguration in flight) resolves within a few
// short retries, while a permanently unresolvable region burns through the
// budget in bounded time and surfaces ErrUnavailable instead of spinning.
const (
	mappingBackoffBase = 100 * sim.Microsecond
	mappingBackoffCap  = 2 * sim.Millisecond
	maxMappingRetries  = 40
)

// mappingBackoff returns the delay before mapping retry number retry:
// base doubled per attempt, capped (no jitter — the simulation needs
// determinism, and retries are already desynchronized by fetch latency).
func mappingBackoff(retry int) sim.Time {
	d := mappingBackoffBase
	for i := 0; i < retry && d < mappingBackoffCap; i++ {
		d *= 2
	}
	if d > mappingBackoffCap {
		d = mappingBackoffCap
	}
	return d
}

// Read reads size payload bytes of the object at addr. Individual reads
// are atomic and see only committed data (§3); consistency across objects
// is enforced at commit time by validation.
func (t *Tx) Read(addr proto.Addr, size int, cb func(data []byte, err error)) {
	// Read-your-writes.
	if w, ok := t.writes[addr]; ok {
		t.m.OnThread(t.thread, t.m.c.Opts.CPULocal, func() { cb(append([]byte(nil), w.value...), nil) })
		return
	}
	// Repeated reads return the same data (§3).
	if r, ok := t.reads[addr]; ok {
		t.m.OnThread(t.thread, t.m.c.Opts.CPULocal, func() { cb(append([]byte(nil), r.data...), nil) })
		return
	}
	rctx := trace.Ctx{}
	if t.ctx.Valid() {
		rctx = t.m.trb.Begin("tx", "read", t.m.c.Eng.Now(), t.ctx.Trace, t.ctx.Span, int64(addr.Region))
	}
	t.m.readObject(t.thread, addr, size, 0, 0, func(word uint64, data []byte, err error) {
		if rctx.Valid() {
			t.m.trb.End(rctx, t.m.c.Eng.Now(), 0)
		}
		if err != nil {
			cb(nil, err)
			return
		}
		t.reads[addr] = &readEntry{addr: addr, version: regionmem.Version(word), size: size, data: data}
		t.histRead(addr, regionmem.Version(word))
		cb(append([]byte(nil), data...), nil)
	})
}

// Write buffers a write of value to addr. The object must have been read
// (or allocated) by this transaction first, so the coordinator knows the
// version to lock at — FaRM applications read objects before updating
// them.
func (t *Tx) Write(addr proto.Addr, value []byte) {
	if w, ok := t.writes[addr]; ok {
		w.value = append(w.value[:0], value...)
		t.histWrite(addr, w.version, value, w.isAlloc, !w.allocated)
		return
	}
	r, ok := t.reads[addr]
	if !ok {
		panic("farm: Write of object not read or allocated in this transaction")
	}
	t.writes[addr] = &writeEntry{
		addr:      addr,
		version:   r.version,
		value:     append([]byte(nil), value...),
		allocated: true,
	}
	t.order = append(t.order, addr)
	t.histWrite(addr, r.version, value, false, false)
}

// Alloc allocates a new object of the given payload size and buffers its
// first write. If hint is non-nil the object is placed in the same region
// as the hint (locality, §3); otherwise a region with a local primary is
// preferred. The object becomes visible only when the transaction commits.
func (t *Tx) Alloc(size int, value []byte, hint *proto.Addr, cb func(addr proto.Addr, err error)) {
	regions := t.m.allocCandidates(hint)
	if len(regions) == 0 {
		t.m.OnThread(t.thread, t.m.c.Opts.CPULocal, func() { cb(proto.Addr{}, ErrNoSpace) })
		return
	}
	t.tryAlloc(regions, 0, size, value, cb)
}

func (t *Tx) tryAlloc(regions []uint32, i, size int, value []byte, cb func(proto.Addr, error)) {
	if i >= len(regions) {
		cb(proto.Addr{}, ErrNoSpace)
		return
	}
	region := regions[i]
	t.m.allocSlot(t.thread, region, size, func(off uint32, version uint64, err error) {
		if err != nil {
			t.tryAlloc(regions, i+1, size, value, cb)
			return
		}
		addr := proto.Addr{Region: region, Off: off}
		t.writes[addr] = &writeEntry{
			addr:      addr,
			version:   version,
			value:     append([]byte(nil), value...),
			allocated: true,
			isAlloc:   true,
		}
		t.order = append(t.order, addr)
		t.histWrite(addr, version, value, true, false)
		cb(addr, nil)
	})
}

// Free deallocates the object at addr. The object must have been read in
// this transaction. The allocation-bit clear is replicated through the
// commit like any write (§5.5); the slot returns to the primary's free
// list when the commit is applied.
func (t *Tx) Free(addr proto.Addr) {
	r, ok := t.reads[addr]
	if !ok {
		panic("farm: Free of object not read in this transaction")
	}
	t.writes[addr] = &writeEntry{
		addr:      addr,
		version:   r.version,
		value:     make([]byte, len(r.data)),
		allocated: false,
	}
	t.order = append(t.order, addr)
	t.histWrite(addr, r.version, t.writes[addr].value, false, true)
}

// ReadSetSize and WriteSetSize expose execution-phase footprints.
func (t *Tx) ReadSetSize() int  { return len(t.reads) }
func (t *Tx) WriteSetSize() int { return len(t.writes) }

// Thread returns the coordinator thread index running this transaction.
func (t *Tx) Thread() int { return t.thread }

// Coordinator returns the machine coordinating this transaction.
func (t *Tx) Coordinator() *Machine { return t.m }

// Abort abandons a transaction during the execute phase. Before Commit no
// remote state exists — reads are one-sided and take no locks (§3) — so
// aborting releases locally allocated slots and finishes the transaction.
// Calling Abort after Commit (or twice) panics, like Commit.
func (t *Tx) Abort() {
	if t.finished {
		panic(errTxDone)
	}
	t.finished = true
	t.releaseAllocs()
	t.endTxSpan(errTxDone)
	t.histFinish(history.UserAborted)
	t.m.c.Counters.Inc("tx_user_abort", 1)
}

// abortLocal cleans up execute-phase side effects (allocated slots) for a
// transaction abandoned before or during commit.
func (t *Tx) releaseAllocs() {
	for _, w := range t.writes {
		if w.isAlloc {
			t.m.releaseSlot(w.addr)
		}
	}
}

// LockFreeRead performs FaRM's optimized single-object read-only
// transaction (§3): one RDMA read, no commit phase. It retries while the
// object is write-locked.
func (m *Machine) LockFreeRead(thread int, addr proto.Addr, size int, cb func(data []byte, err error)) {
	m.readObject(thread, addr, size, 0, 0, func(_ uint64, data []byte, err error) {
		cb(data, err)
	})
}

// readObject resolves the primary and reads header+payload, retrying on
// locks, stale mappings, blocked regions and transient failures.
func (m *Machine) readObject(thread int, addr proto.Addr, size, lockRetries, mapRetries int, cb func(word uint64, data []byte, err error)) {
	if !m.alive {
		return
	}
	if m.clientsBlocked {
		// §5.2: from the moment a machine suspects a reconfiguration it
		// blocks requests until it learns the outcome. An evicted machine
		// never learns one and stays fenced (until it rejoins), so a
		// machine partitioned out of the configuration cannot serve reads
		// of its own stale replicas to local transactions.
		m.clientQueue = append(m.clientQueue, func() {
			m.readObject(thread, addr, size, lockRetries, mapRetries, cb)
		})
		return
	}
	retryMapping := func() {
		if mapRetries >= maxMappingRetries {
			cb(0, nil, ErrUnavailable)
			return
		}
		m.c.Eng.After(mappingBackoff(mapRetries), func() {
			m.fetchMapping(addr.Region, func() {
				m.readObject(thread, addr, size, lockRetries, mapRetries+1, cb)
			})
		})
	}
	p := m.primaryOf(addr.Region)
	if p == -1 {
		retryMapping()
		return
	}
	if m.regionBlocked(addr.Region) {
		// §5.3 step 1: requests for references to recovering regions block
		// until lock recovery completes.
		m.blockUntilActive(addr.Region, func() {
			m.readObject(thread, addr, size, lockRetries, mapRetries, cb)
		})
		return
	}
	handle := func(raw []byte, err error) {
		if !m.alive {
			return
		}
		if err != nil {
			retryMapping()
			return
		}
		word := regionmem.ReadHeader(raw, 0)
		if regionmem.Locked(word) {
			if lockRetries >= maxReadRetries {
				cb(0, nil, ErrReadLocked)
				return
			}
			m.c.Eng.After(2*sim.Microsecond, func() {
				m.readObject(thread, addr, size, lockRetries+1, mapRetries, cb)
			})
			return
		}
		cb(word, raw[regionmem.HeaderSize:], nil)
	}
	if p == m.ID {
		rep := m.replicas[addr.Region]
		if rep == nil || !rep.primary {
			retryMapping()
			return
		}
		m.OnThread(thread, m.c.Opts.CPULocal, func() {
			if int(addr.Off)+regionmem.HeaderSize+size > len(rep.mem) {
				cb(0, nil, fabric.ErrBadAddress)
				return
			}
			raw := make([]byte, regionmem.HeaderSize+size)
			copy(raw, rep.mem[addr.Off:])
			handle(raw, nil)
		})
		return
	}
	if !m.isMember(p) {
		retryMapping()
		return
	}
	m.OnThread(thread, m.c.Opts.CPUVerb, func() {
		m.nic.Read(fabric.MachineID(p), nvram.RegionID(addr.Region), int(addr.Off),
			regionmem.HeaderSize+size, func(raw []byte, err error) {
				handle(raw, err)
			})
	})
}

// allocCandidates orders regions to try for an allocation.
func (m *Machine) allocCandidates(hint *proto.Addr) []uint32 {
	if hint != nil {
		return []uint32{hint.Region}
	}
	var local, remote []uint32
	for _, id := range regionKeys(m.mappings) {
		rm := m.mappings[id]
		if len(rm.Replicas) == 0 {
			continue
		}
		if int(rm.Replicas[0]) == m.ID {
			local = append(local, id)
		} else {
			remote = append(remote, id)
		}
	}
	// Deterministic order: sort ascending.
	sortU32(local)
	sortU32(remote)
	return append(local, remote...)
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// allocSlotReq and friends are the slot-reservation RPCs between a
// coordinator and a region's primary (the free lists live only at the
// primary, §5.5).
type allocSlotReq struct {
	Region uint32
	Size   int
}

type allocSlotResp struct {
	Region  uint32
	OK      bool
	Off     uint32
	Version uint64
	ReqID   uint64
}

type releaseSlotReq struct {
	Region uint32
	Off    uint32
}

// allocSlot reserves a slot in region (locally or via the primary).
func (m *Machine) allocSlot(thread int, region uint32, size int, cb func(off uint32, version uint64, err error)) {
	p := m.primaryOf(region)
	if p == -1 {
		cb(0, 0, ErrUnavailable)
		return
	}
	if p == m.ID {
		m.OnThread(thread, m.c.Opts.CPULocal, func() {
			off, ver, err := m.allocSlotLocal(region, size)
			cb(off, ver, err)
		})
		return
	}
	req := &allocSlotReq{Region: region, Size: size}
	id := m.nextRPC
	m.nextRPC++
	m.rpcWaiters[id] = func(resp interface{}) {
		r := resp.(*allocSlotResp)
		if !r.OK {
			cb(0, 0, ErrNoSpace)
			return
		}
		cb(r.Off, r.Version, nil)
	}
	m.sendFromThread(thread, p, &rpcEnvelope{ID: id, From: m.ID, Body: req})
}

// allocSlotLocal pops a slot from the local primary's free list.
func (m *Machine) allocSlotLocal(region uint32, size int) (uint32, uint64, error) {
	rep := m.replicas[region]
	if rep == nil || !rep.primary {
		return 0, 0, ErrUnavailable
	}
	if rep.allocRecovering {
		return 0, 0, ErrUnavailable
	}
	off, ok := rep.alloc.Alloc(size)
	if !ok {
		return 0, 0, ErrNoSpace
	}
	word := regionmem.ReadHeader(rep.mem, off)
	return uint32(off), regionmem.Version(word), nil
}

// releaseSlot returns an execute-phase allocation after an abort.
func (m *Machine) releaseSlot(addr proto.Addr) {
	p := m.primaryOf(addr.Region)
	if p == m.ID {
		if rep := m.replicas[addr.Region]; rep != nil && rep.primary && !rep.allocRecovering {
			rep.alloc.Free(int(addr.Off))
		}
		return
	}
	if p >= 0 && m.isMember(p) {
		m.send(p, &releaseSlotReq{Region: addr.Region, Off: addr.Off})
	}
	// If the primary is gone, allocator recovery's scan reclaims the slot
	// (its allocation bit was never set).
}

// rpcEnvelope carries a request id so responses can be matched, and
// piggybacks the sender's causal trace context so the service side can
// parent its work (and its reply) on the requesting span even when the
// envelope reaches it outside a traced batch.
type rpcEnvelope struct {
	ID   uint64
	From int
	Body interface{}
	Ctx  trace.Ctx
}

// rpcReply pairs the response with the request id.
type rpcReply struct {
	ID   uint64
	Body interface{}
}

// errTxDone guards double commits.
var errTxDone = errors.New("farm: transaction already finished")
