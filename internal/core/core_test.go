package core

import (
	"errors"
	"testing"

	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/sim"
)

// testCluster builds a small cluster with one region and settles it.
func testCluster(t *testing.T, opts Options) (*Cluster, uint32) {
	t.Helper()
	if opts.NumMachines == 0 {
		opts.NumMachines = 5
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	c := New(opts)
	regions, err := c.CreateRegions(0, 1, 0)
	if err != nil {
		t.Fatalf("CreateRegions: %v", err)
	}
	return c, regions[0]
}

// runUntil drives the simulation until pred is true or the deadline.
func runUntil(t *testing.T, c *Cluster, d sim.Time, pred func() bool) {
	t.Helper()
	deadline := c.Eng.Now() + d
	for !pred() && c.Eng.Now() < deadline {
		if !c.Eng.Step() {
			break
		}
	}
	if !pred() {
		t.Fatalf("condition not reached within %v (now %v)", d, c.Eng.Now())
	}
}

// writeObject commits a transaction writing data to a fresh allocation and
// returns its address.
func writeObject(t *testing.T, c *Cluster, m *Machine, data []byte) proto.Addr {
	t.Helper()
	tx := m.Begin(0)
	var addr proto.Addr
	var done bool
	var txErr error
	tx.Alloc(len(data), data, nil, func(a proto.Addr, err error) {
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		addr = a
		tx.Commit(func(err error) { done, txErr = true, err })
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	if txErr != nil {
		t.Fatalf("commit: %v", txErr)
	}
	return addr
}

func readObject(t *testing.T, c *Cluster, m *Machine, addr proto.Addr, size int) []byte {
	t.Helper()
	var out []byte
	var done bool
	tx := m.Begin(1)
	tx.Read(addr, size, func(data []byte, err error) {
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		out = data
		tx.Commit(func(err error) {
			if err != nil {
				t.Fatalf("read-only commit: %v", err)
			}
			done = true
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	return out
}

func TestCommitAndReadBack(t *testing.T) {
	c, _ := testCluster(t, Options{})
	m := c.Machine(1)
	addr := writeObject(t, c, m, []byte("hello farm"))
	// Read from a different machine (remote RDMA path).
	got := readObject(t, c, c.Machine(3), addr, 10)
	if string(got) != "hello farm" {
		t.Fatalf("read back %q", got)
	}
	if c.Counters.Get("tx_committed") < 2 {
		t.Fatalf("counters: %s", c.Counters)
	}
}

func TestReadYourWritesAndRepeatedRead(t *testing.T) {
	c, _ := testCluster(t, Options{})
	m := c.Machine(0)
	addr := writeObject(t, c, m, []byte("v1v1"))
	done := false
	tx := m.Begin(0)
	tx.Read(addr, 4, func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		tx.Write(addr, []byte("v2v2"))
		tx.Read(addr, 4, func(data2 []byte, err error) {
			if err != nil || string(data2) != "v2v2" {
				t.Fatalf("read-your-writes: %q %v", data2, err)
			}
			tx.Commit(func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				done = true
			})
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	if got := readObject(t, c, c.Machine(2), addr, 4); string(got) != "v2v2" {
		t.Fatalf("after commit: %q", got)
	}
}

func TestUpdateIncrementsVersionAndReplicates(t *testing.T) {
	c, region := testCluster(t, Options{})
	m := c.Machine(0)
	addr := writeObject(t, c, m, []byte("aaaa"))

	// Update it.
	done := false
	tx := c.Machine(2).Begin(3)
	tx.Read(addr, 4, func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		tx.Write(addr, []byte("bbbb"))
		tx.Commit(func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done = true
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	// Let truncation propagate so backups apply the update.
	c.RunFor(50 * sim.Millisecond)

	rm := c.Machine(0).mappings[region]
	if rm == nil || len(rm.Replicas) != 3 {
		t.Fatalf("mapping: %+v", rm)
	}
	for i, r := range rm.Replicas {
		rep := c.Machine(int(r)).replicas[region]
		if rep == nil {
			t.Fatalf("replica %d missing at machine %d", i, r)
		}
		word, data := regionmem.ReadObject(rep.mem, int(addr.Off), 4)
		if string(data) != "bbbb" {
			t.Fatalf("replica %d at m%d has %q", i, r, data)
		}
		if regionmem.Version(word) != 2 {
			t.Fatalf("replica %d version = %d, want 2", i, regionmem.Version(word))
		}
		if regionmem.Locked(word) {
			t.Fatalf("replica %d still locked", i)
		}
	}
}

func TestConflictingWritersOneAborts(t *testing.T) {
	c, _ := testCluster(t, Options{})
	addr := writeObject(t, c, c.Machine(0), []byte("base"))

	results := make([]error, 0, 2)
	start := func(m *Machine, val string) {
		tx := m.Begin(0)
		tx.Read(addr, 4, func(_ []byte, err error) {
			if err != nil {
				results = append(results, err)
				return
			}
			tx.Write(addr, []byte(val))
			tx.Commit(func(err error) { results = append(results, err) })
		})
	}
	// Two machines read the same version then both try to commit.
	start(c.Machine(1), "1111")
	start(c.Machine(2), "2222")
	runUntil(t, c, sim.Second, func() bool { return len(results) == 2 })
	ok, conflict := 0, 0
	for _, err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrConflict):
			conflict++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok != 1 || conflict != 1 {
		t.Fatalf("ok=%d conflict=%d", ok, conflict)
	}
	// Object must be unlocked afterwards and hold one winner's value.
	got := readObject(t, c, c.Machine(3), addr, 4)
	if string(got) != "1111" && string(got) != "2222" {
		t.Fatalf("final value %q", got)
	}
}

func TestValidationCatchesStaleRead(t *testing.T) {
	c, _ := testCluster(t, Options{})
	a := writeObject(t, c, c.Machine(0), []byte("AAAA"))
	b := writeObject(t, c, c.Machine(0), []byte("BBBB"))

	var r1Err error
	r1Done := false
	// Tx1 reads a then writes b; between read and commit, Tx2 updates a.
	tx1 := c.Machine(1).Begin(0)
	tx1.Read(a, 4, func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		// Interleave a conflicting update to a.
		tx2 := c.Machine(2).Begin(0)
		tx2.Read(a, 4, func(_ []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			tx2.Write(a, []byte("XXXX"))
			tx2.Commit(func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				// Now tx1 writes b and commits: validation of a must fail.
				tx1.Read(b, 4, func(_ []byte, err error) {
					if err != nil {
						t.Fatal(err)
					}
					tx1.Write(b, []byte("YYYY"))
					tx1.Commit(func(err error) { r1Err, r1Done = err, true })
				})
			})
		})
	})
	runUntil(t, c, sim.Second, func() bool { return r1Done })
	if !errors.Is(r1Err, ErrConflict) {
		t.Fatalf("tx1 result: %v, want conflict", r1Err)
	}
	// b must be untouched.
	if got := readObject(t, c, c.Machine(3), b, 4); string(got) != "BBBB" {
		t.Fatalf("b = %q", got)
	}
}

func TestLockFreeRead(t *testing.T) {
	c, _ := testCluster(t, Options{})
	addr := writeObject(t, c, c.Machine(0), []byte("lockfree"))
	var got []byte
	c.Machine(4).LockFreeRead(0, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = data
	})
	runUntil(t, c, sim.Second, func() bool { return got != nil })
	if string(got) != "lockfree" {
		t.Fatalf("got %q", got)
	}
}

func TestFreeReturnsSlotAndClearsAllocBit(t *testing.T) {
	c, region := testCluster(t, Options{})
	m := c.Machine(0)
	addr := writeObject(t, c, m, []byte("temp"))

	done := false
	tx := m.Begin(0)
	tx.Read(addr, 4, func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		tx.Free(addr)
		tx.Commit(func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done = true
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	c.RunFor(10 * sim.Millisecond)

	primary := c.Machine(int(m.mappings[region].Replicas[0]))
	rep := primary.replicas[region]
	word := regionmem.ReadHeader(rep.mem, int(addr.Off))
	if regionmem.Allocated(word) {
		t.Fatal("allocation bit still set after free")
	}
	// The slot must be reusable: a new allocation should hand it back
	// eventually (it is on the free list).
	if rep.alloc.FreeCount(4) == 0 {
		t.Fatal("slot not returned to free list")
	}
}

func TestTransactionAcrossMultipleRegions(t *testing.T) {
	c, r1 := testCluster(t, Options{})
	regions, err := c.CreateRegions(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2 := regions[0]
	m := c.Machine(1)
	h1 := proto.Addr{Region: r1}
	h2 := proto.Addr{Region: r2}

	var a1, a2 proto.Addr
	done := false
	tx := m.Begin(2)
	tx.Alloc(8, []byte("region-1"), &h1, func(addr proto.Addr, err error) {
		if err != nil {
			t.Fatal(err)
		}
		a1 = addr
		tx.Alloc(8, []byte("region-2"), &h2, func(addr proto.Addr, err error) {
			if err != nil {
				t.Fatal(err)
			}
			a2 = addr
			tx.Commit(func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				done = true
			})
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	if a1.Region != r1 || a2.Region != r2 {
		t.Fatalf("locality hints ignored: %v %v", a1, a2)
	}
	if string(readObject(t, c, c.Machine(4), a1, 8)) != "region-1" {
		t.Fatal("cross-region read a1")
	}
	if string(readObject(t, c, c.Machine(4), a2, 8)) != "region-2" {
		t.Fatal("cross-region read a2")
	}
}

func TestAbortReleasesAllocation(t *testing.T) {
	c, _ := testCluster(t, Options{})
	m := c.Machine(0)
	base := writeObject(t, c, m, []byte("base"))

	// Force an abort: allocate in a tx that also writes a stale object.
	done := false
	tx := m.Begin(0)
	tx.Read(base, 4, func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		// Concurrent update invalidates tx's read.
		tx2 := c.Machine(1).Begin(0)
		tx2.Read(base, 4, func(_ []byte, err error) {
			tx2.Write(base, []byte("mod!"))
			tx2.Commit(func(error) {
				tx.Alloc(8, []byte("leaked??"), nil, func(_ proto.Addr, err error) {
					if err != nil {
						t.Fatal(err)
					}
					tx.Write(base, []byte("lose"))
					tx.Commit(func(err error) {
						if !errors.Is(err, ErrConflict) {
							t.Fatalf("want conflict, got %v", err)
						}
						done = true
					})
				})
			})
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	c.RunFor(10 * sim.Millisecond)
	// The allocated slot must have been released (no allocation bit set,
	// returned to a free list): verified by the absence of leaked live
	// objects across all regions.
	for _, mm := range c.Machines {
		for _, rep := range mm.replicas {
			if rep.primary {
				for _, off := range rep.alloc.LiveObjects() {
					_, data := regionmem.ReadObject(rep.mem, off, 8)
					if string(data) == "leaked??" {
						t.Fatal("aborted allocation leaked")
					}
				}
			}
		}
	}
}

func TestCommitLatencyIsMicroseconds(t *testing.T) {
	c, _ := testCluster(t, Options{})
	m := c.Machine(1)
	addr := writeObject(t, c, m, []byte("yyyy"))

	start := c.Now()
	done := false
	tx := m.Begin(0)
	tx.Read(addr, 4, func(_ []byte, err error) {
		tx.Write(addr, []byte("zzzz"))
		tx.Commit(func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done = true
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	elapsed := c.Now() - start
	// The paper reports multi-object distributed commits in tens of µs;
	// a single-object update at low load should land well under 100 µs.
	if elapsed > 100*sim.Microsecond {
		t.Fatalf("commit latency %v, want < 100µs", elapsed)
	}
	if elapsed < 5*sim.Microsecond {
		t.Fatalf("commit latency %v suspiciously low (costs not charged?)", elapsed)
	}
}

func TestRingSpaceReclaimedOverManyTransactions(t *testing.T) {
	// Thousands of updates through the same logs must not exhaust ring
	// space if truncation works.
	c, _ := testCluster(t, Options{LogCapacity: 1 << 16})
	m := c.Machine(1)
	addr := writeObject(t, c, m, []byte("0000"))
	completed := 0
	failures := 0
	var loop func(i int)
	loop = func(i int) {
		if i == 2000 {
			return
		}
		tx := m.Begin(i % m.Threads())
		tx.Read(addr, 4, func(_ []byte, err error) {
			if err != nil {
				failures++
				return
			}
			tx.Write(addr, []byte("next"))
			tx.Commit(func(err error) {
				if err != nil {
					failures++
				} else {
					completed++
				}
				loop(i + 1)
			})
		})
	}
	loop(0)
	runUntil(t, c, 10*sim.Second, func() bool { return completed+failures >= 2000 })
	if failures > 0 {
		t.Fatalf("%d transactions failed (ring exhaustion?)", failures)
	}
	// Participant-side pending state must be bounded (truncation GC).
	for _, mm := range c.Machines {
		if len(mm.pend) > 100 {
			t.Fatalf("machine %d holds %d pending txs; truncation leak", mm.ID, len(mm.pend))
		}
	}
}

func TestMessageCountsCommitProtocol(t *testing.T) {
	// Figure 4 / §4 analysis: Pw(f+3) one-sided writes and Pr one-sided
	// reads for a transaction writing one object and reading one other.
	c, _ := testCluster(t, Options{NumMachines: 7})
	w := writeObject(t, c, c.Machine(0), []byte("wwww"))
	r := writeObject(t, c, c.Machine(0), []byte("rrrr"))
	c.RunFor(20 * sim.Millisecond)

	// Coordinator on a machine hosting neither object's region.
	rm := c.Machine(0).mappings[w.Region]
	hosts := map[int]bool{}
	for _, rr := range rm.Replicas {
		hosts[int(rr)] = true
	}
	coord := -1
	for i := 0; i < 7; i++ {
		if !hosts[i] {
			coord = i
			break
		}
	}
	m := c.Machine(coord)

	snap := c.Net.Counters.Snapshot()
	done := false
	tx := m.Begin(0)
	tx.Read(w, 4, func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		tx.Read(r, 4, func(_ []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			tx.Write(w, []byte("WWWW"))
			tx.Commit(func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				done = true
			})
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	diff := c.Net.Counters.Diff(snap)

	// Pw = 1 written primary machine, f+1 = 3 replicas → Pw(f+3) = 5
	// writes: 1 LOCK + 2 COMMIT-BACKUP + 1 COMMIT-PRIMARY + (lazy
	// truncation piggyback, not counted here). Reads: 2 execution reads +
	// 1 validation read. Allow slack for the truncation-report write.
	writes := diff["rdma_write"]
	reads := diff["rdma_read"]
	if writes < 4 || writes > 6 {
		t.Fatalf("one-sided writes = %d, want ≈ Pw(f+3)-1..Pw(f+3)+1 (diff %v)", writes, diff)
	}
	if reads < 3 || reads > 4 {
		t.Fatalf("one-sided reads = %d, want 3-4", reads)
	}
	// Backups' worker CPUs must not have been touched by commit: no
	// messages should have been handled there. (LOCK-REPLY is the only
	// message, from the written primary.)
	if diff["msg_send"] > 2 {
		t.Fatalf("messages = %d, want ≤ 2 (lock reply)", diff["msg_send"])
	}
}
