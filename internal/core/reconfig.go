package core

import (
	"farm/internal/fabric"
	"farm/internal/proto"
	"farm/internal/sim"
	"farm/internal/trace"
)

// This file implements the reconfiguration protocol of §5.2 / Figure 5:
// SUSPECT → PROBE → UPDATE CONFIGURATION (Zookeeper CAS) → REMAP REGIONS →
// SEND NEW-CONFIG → APPLY NEW-CONFIG → COMMIT NEW-CONFIG. One-sided RDMA
// makes server-side lease checks impossible, so consistency comes from
// precise membership: after NEW-CONFIG, machines stop issuing requests to
// non-members and ignore their replies and acks.

// reconfigAsk is the "please initiate reconfiguration" message a machine
// sends to the CM's k consistent-hashing successors when it suspects the
// CM (§5.2 step 1).
type reconfigAsk struct {
	Suspect  int
	ConfigID uint64
}

// regionActiveAnnounce tells members that a recovering region finished
// lock recovery and accepts references again (§5.3 step 4).
type regionActiveAnnounce struct {
	ConfigID uint64
	Region   uint32
}

// suspect starts reconfiguration with the given machine removed. Runs on
// the CM (lease expiry there) or on a machine taking over as CM.
func (m *Machine) suspect(failed int) { m.suspectFull(failed, false) }

// suspectFull is suspect with power-failure semantics: failed == -1 means
// no machine is being removed, and bumpAll forces every region's epochs to
// advance so all in-flight transactions recover (§5.3 applied cluster-wide
// after a power restoration).
func (m *Machine) suspectFull(failed int, bumpAll bool) {
	if !m.alive || m.reconfiguring {
		return
	}
	m.reconfiguring = true
	m.blockClients() // §5.2 step 1: block external clients at suspicion
	m.c.trace("suspect", m.ID, failed)
	m.c.Counters.Inc("reconfig_started", 1)
	if m.trb != nil {
		// All recovery spans for the configuration being formed share one
		// trace id so every machine's records merge into a single timeline.
		rid := trace.RecoveryTraceBit | (m.config.ID + 1)
		now := m.c.Eng.Now()
		m.trb.Event("recovery", "suspect", now, rid, 0, int64(failed))
		m.reconfigCtx = m.trb.Begin("recovery", "probe", now, rid, 0, int64(failed))
	}

	// Step 2: probe every other member with an RDMA read; non-responders
	// are also suspected. Proceed only with responses from a majority.
	suspects := map[int]bool{}
	if failed >= 0 {
		suspects[failed] = true
	}
	pending := 0
	responses := 1 // self
	total := len(m.config.Machines)
	finished := false
	finish := func() {
		if finished || !m.alive {
			return
		}
		finished = true
		if m.reconfigCtx.Valid() {
			m.trb.End(m.reconfigCtx, m.c.Eng.Now(), int64(responses))
			m.reconfigCtx = trace.Ctx{}
		}
		if responses*2 <= total {
			// We are in the minority partition: do not reconfigure.
			m.reconfiguring = false
			m.c.Counters.Inc("reconfig_minority_abandon", 1)
			return
		}
		m.c.trace("probe-done", m.ID, 0)
		m.updateConfiguration(suspects, bumpAll)
	}
	for _, mem := range m.config.Machines {
		id := int(mem)
		if id == m.ID || id == failed {
			continue
		}
		pending++
		m.nic.Probe(fabric.MachineID(id), func(err error) {
			if !m.alive {
				return
			}
			if err != nil {
				suspects[id] = true
			} else {
				responses++
			}
			pending--
			if pending == 0 {
				finish()
			}
		})
	}
	if pending == 0 {
		finish()
	}
}

// maybeWithdrawSuspicion undoes the §5.2 client block when the failure
// detector withdraws the suspicion behind it: the configuration is
// unchanged and committed, no reconfiguration is in flight, and every
// lease this machine watches is fresh again. The block runs "from the
// moment a suspicion occurs until the machine learns the outcome" — if
// the attempt was abandoned (probe minority, lost CAS) and the leases
// later recover with the configuration intact, the outcome IS the current
// configuration. Without this, a transient partition that makes
// reconfiguration impossible — both members of a two-machine
// configuration suspecting each other and abandoning as probe
// minorities — leaves every member blocked forever after the network
// heals. An evicted zombie never takes this path: the CM drops its
// stale-configuration lease requests, so its CM lease stays expired.
func (m *Machine) maybeWithdrawSuspicion() {
	if !m.clientsBlocked || m.reconfiguring || !m.configCommitted || !m.isMember(m.ID) {
		return
	}
	if !m.lease.fresh() {
		return
	}
	m.c.Counters.Inc("reconfig_suspicion_withdrawn", 1)
	m.c.trace("suspicion-withdrawn", m.ID, 0)
	m.unblockClients()
}

// suspectCM reacts to an expired CM lease: ask the k backup CMs (the CM's
// consistent-hashing successors) to reconfigure, then try ourselves if the
// configuration is unchanged after a timeout.
func (m *Machine) suspectCM() {
	if !m.alive || m.reconfiguring {
		return
	}
	cm := int(m.config.CM)
	cfg := m.config.ID
	succ := m.cmSuccessors()
	if len(succ) > 0 && succ[0] == m.ID {
		// We are the first backup CM: take over immediately.
		m.suspect(cm)
		return
	}
	for i, s := range succ {
		if i >= m.c.Opts.BackupCMs {
			break
		}
		m.send(s, &reconfigAsk{Suspect: cm, ConfigID: cfg})
	}
	m.c.Eng.After(2*m.c.Opts.LeaseDuration, func() {
		if m.alive && m.config.ID == cfg && !m.reconfiguring {
			m.suspect(cm)
		}
	})
}

// cmSuccessors returns the members after the CM in ring order.
func (m *Machine) cmSuccessors() []int {
	members := make([]int, 0, len(m.config.Machines))
	cmIdx := -1
	for i, mem := range m.config.Machines {
		members = append(members, int(mem))
		if mem == m.config.CM {
			cmIdx = i
		}
	}
	if cmIdx == -1 || len(members) < 2 {
		return nil
	}
	var out []int
	for i := 1; i < len(members); i++ {
		out = append(out, members[(cmIdx+i)%len(members)])
	}
	return out
}

// onReconfigAsk handles a backup-CM takeover request.
func (m *Machine) onReconfigAsk(ask *reconfigAsk) {
	if ask.ConfigID != m.config.ID {
		return
	}
	m.suspect(ask.Suspect)
}

// updateConfiguration is step 3: CAS the new configuration into Zookeeper;
// exactly one contender wins the move from c to c+1.
func (m *Machine) updateConfiguration(suspects map[int]bool, bumpAll bool) {
	var members []uint16
	for _, mem := range m.config.Machines {
		if !suspects[int(mem)] {
			members = append(members, mem)
		}
	}
	newCfg := proto.Config{
		ID:       m.config.ID + 1,
		Machines: members,
		Domains:  m.config.Domains,
		CM:       uint16(m.ID),
	}
	m.c.ZK.CAS(m.config.ID, &newCfg, func(ok bool, _ uint64, _ interface{}, err error) {
		if !m.alive {
			return
		}
		m.reconfiguring = false
		if err != nil || !ok {
			// Someone else won; we will learn the new configuration via
			// NEW-CONFIG.
			m.c.Counters.Inc("reconfig_cas_lost", 1)
			return
		}
		m.c.trace("zookeeper", m.ID, int(newCfg.ID))
		if m.trb != nil {
			m.trb.Event("recovery", "zookeeper", m.c.Eng.Now(),
				trace.RecoveryTraceBit|newCfg.ID, 0, int64(newCfg.ID))
		}
		m.becomeCM(&newCfg, suspects, bumpAll)
	})
}

// becomeCM runs steps 4–5 at the (possibly new) CM: rebuild CM state if
// needed, remap regions, and push NEW-CONFIG to all members.
func (m *Machine) becomeCM(cfg *proto.Config, suspects map[int]bool, bumpAll bool) {
	cmChanged := m.config.CM != cfg.CM
	proceed := func() {
		if !m.alive {
			return
		}
		if m.cm == nil {
			m.cm = newCMState()
			// Rebuild the region table from our mapping cache.
			next := uint32(1)
			for id, rm := range m.mappings {
				cp := *rm
				m.cm.regions[id] = &cp
				if id >= next {
					next = id + 1
				}
			}
			m.cm.nextRegion = next
		}
		m.cm.regionsActive = make(map[int]bool)
		if bumpAll {
			for _, rm := range m.cm.regions {
				rm.LastPrimaryChange = cfg.ID
				rm.LastReplicaChange = cfg.ID
			}
		}
		m.remapRegions(cfg, suspects)
		nc := &proto.NewConfig{Config: *cfg}
		for _, id := range regionKeys(m.cm.regions) {
			nc.Regions = append(nc.Regions, *m.cm.regions[id])
		}
		m.c.trace("remap-done", m.ID, 0)
		if m.trb != nil {
			rid := trace.RecoveryTraceBit | cfg.ID
			now := m.c.Eng.Now()
			m.trb.Event("recovery", "remap-done", now, rid, 0, 0)
			m.reconfigCtx = m.trb.Begin("recovery", "new-config", now, rid, 0, int64(len(cfg.Machines)))
		}
		m.cmAwaitAcks = make(map[int]bool)
		m.cmAckRound++
		for _, mem := range cfg.Machines {
			m.cmAwaitAcks[int(mem)] = true
			m.sendCtx(int(mem), nc, m.reconfigCtx)
		}
		m.armAckTimeout(m.cmAckRound, nc, 0)
	}
	if cmChanged && m.cm == nil {
		// A new CM must first build the data structures only the CM
		// maintains — the dominant cost in Figure 11's slower recovery.
		cost := sim.Time(len(m.mappings)) * 16 * sim.Microsecond
		m.pool.ByIndex(0).Do(cost, proceed)
		return
	}
	proceed()
}

// remapRegions is step 4: restore f+1 replicas for regions that lost any,
// promoting surviving backups to primary so the region recovers fast.
func (m *Machine) remapRegions(cfg *proto.Config, suspects map[int]bool) {
	for _, id := range regionKeys(m.cm.regions) {
		rm := m.cm.regions[id]
		var survivors []uint16
		primaryFailed := false
		for i, r := range rm.Replicas {
			if suspects[int(r)] || !cfg.Member(r) {
				if i == 0 {
					primaryFailed = true
				}
				continue
			}
			survivors = append(survivors, r)
		}
		if len(survivors) == len(rm.Replicas) && !primaryFailed {
			continue // untouched
		}
		if len(survivors) == 0 {
			m.c.noteLostRegion(rm.Region)
			continue
		}
		exclude := make(map[uint16]bool)
		for _, s := range survivors {
			exclude[s] = true
		}
		var target *proto.RegionMap
		if loc, ok := m.cm.locality[rm.Region]; ok {
			target = m.cm.regions[loc]
		}
		// Survivors stay (first survivor is promoted primary); new backups
		// fill the remainder.
		needed := m.c.Opts.Replication - len(survivors)
		added := m.addBackups(cfg, exclude, survivors, needed, target)
		rm.Replicas = added
		rm.LastReplicaChange = cfg.ID
		if primaryFailed {
			rm.LastPrimaryChange = cfg.ID
		}
	}
}

// addBackups extends survivors with `needed` new machines.
func (m *Machine) addBackups(cfg *proto.Config, exclude map[uint16]bool, survivors []uint16, needed int, target *proto.RegionMap) []uint16 {
	out := append([]uint16(nil), survivors...)
	if needed <= 0 {
		return out
	}
	// Temporarily act with the new membership for placement decisions.
	saved := m.config
	m.config = *cfg
	if target != nil {
		for _, r := range target.Replicas {
			if needed == 0 {
				break
			}
			if cfg.Member(r) && !exclude[r] {
				out = append(out, r)
				exclude[r] = true
				needed--
			}
		}
	}
	if needed > 0 {
		filled := m.fillReplicas(out, exclude, len(out)+needed, int(cfg.ID))
		out = filled
	}
	m.config = saved
	return out
}

// onNewConfig is step 6 at every member: adopt the configuration and
// mappings, allocate space for newly assigned replicas, stop talking to
// non-members, classify in-flight transactions, and ack.
func (m *Machine) onNewConfig(src int, nc *proto.NewConfig) {
	if nc.Config.ID <= m.config.ID {
		return
	}
	oldCM := m.config.CM
	// Track whether any machine left: a removed machine may have been the
	// coordinator of transactions touching ANY region, so every region
	// must run the (possibly empty) recovery handshake (§5.3 step 3's
	// coordinator-removed clause).
	m.configShrank = false
	for _, old := range m.config.Machines {
		if !nc.Config.Member(old) {
			m.configShrank = true
			break
		}
	}
	// A new epoch invalidates every in-flight audit (digest comparisons
	// are only meaningful within one configuration) and must drop all
	// audit fences so they cannot outlive the epoch they were taken in.
	m.abortAudits("configuration changed")
	m.config = nc.Config
	m.reconfiguring = false
	if !m.config.Member(uint16(m.ID)) {
		// We were evicted: halt normal operation.
		m.c.Counters.Inc("evicted", 1)
		return
	}
	// Install mappings; note which replicas are new here, which are
	// promotions, and which regions must block pending lock recovery.
	for i := range nc.Regions {
		rm := nc.Regions[i]
		cp := rm
		m.mappings[rm.Region] = &cp
		hosted := false
		idx := -1
		for j, r := range rm.Replicas {
			if int(r) == m.ID {
				hosted = true
				idx = j
			}
		}
		rep := m.replicas[rm.Region]
		switch {
		case hosted && rep == nil:
			// Newly assigned backup: fresh zeroed replica, to be filled by
			// data recovery (§5.4).
			nr := m.hostReplica(rm.Region, rm.Size, false)
			nr.needsDataRecovery = true
		case hosted && rep != nil && idx == 0 && !rep.primary:
			// Promoted from backup to primary (§5.2 step 4).
			rep.primary = true
			rep.active = false
			rep.allocRecovering = true
			rep.promotedAt = m.config.ID
		case !hosted && rep != nil:
			// No longer a replica here (shouldn't normally happen: the CM
			// never removes live replicas); drop it.
			delete(m.replicas, rm.Region)
			m.store.Free(toNVRAM(rm.Region))
		}
		// Block access to regions whose primary changed until their lock
		// recovery completes (§5.3 step 1).
		if rm.LastPrimaryChange == m.config.ID {
			if _, already := m.blocked[rm.Region]; !already {
				m.blocked[rm.Region] = nil
			}
		}
	}
	// Precise membership: drop state toward machines no longer present,
	// and establish log rings toward newcomers.
	for _, peer := range m.c.Machines {
		if peer.ID != m.ID && !m.isMember(peer.ID) {
			m.dropTruncStateFor(peer.ID)
		}
	}
	for _, mem := range m.config.Machines {
		if int(mem) != m.ID {
			m.ensureLogPair(int(mem))
		}
	}
	// Classify in-flight transactions (§5.3 step 3, coordinator side).
	for _, ct := range m.inflight {
		if m.coordTxRecovering(ct) {
			ct.recovering = true
		}
	}
	// Step 6: "It also starts blocking requests from external clients."
	m.blockClients()
	// NEW-CONFIG resets the lease protocol if the CM changed (step 5).
	if oldCM != m.config.CM {
		m.lease.resetFor(&m.config)
	}
	m.send(src, &proto.NewConfigAck{ConfigID: m.config.ID})
	// Repair for lost acks / lost commits: until NEW-CONFIG-COMMIT arrives
	// re-ack periodically. The interval is well inside the CM's ack-timeout
	// eviction window, so a member whose single ack was dropped recovers
	// instead of being evicted for it.
	m.configCommitted = false
	m.armCommitReack(m.config.ID)
}

// armCommitReack re-sends NEW-CONFIG-ACK while the commit is outstanding.
func (m *Machine) armCommitReack(cfgID uint64) {
	m.c.Eng.After(m.c.Opts.LeaseDuration+m.c.Opts.LeaseDuration/2, func() {
		if !m.alive || m.configCommitted || m.config.ID != cfgID || !m.isMember(m.ID) {
			return
		}
		m.c.Counters.Inc("reconfig_ack_resend", 1)
		m.send(int(m.config.CM), &proto.NewConfigAck{ConfigID: cfgID})
		m.armCommitReack(cfgID)
	})
}

// coordTxRecovering evaluates the recovering predicate with the
// coordinator's full knowledge: written regions' replica epochs, read
// regions' primary epochs, and its own membership (§5.3 step 3).
func (m *Machine) coordTxRecovering(ct *coordTx) bool {
	if ct.id.Config >= m.config.ID || ct.phase == phaseDone {
		return false
	}
	for _, region := range ct.writeRegions {
		rm := m.mappings[region]
		if rm == nil || rm.LastReplicaChange >= m.config.ID {
			return true
		}
	}
	for addr := range ct.tx.reads {
		rm := m.mappings[addr.Region]
		if rm == nil || rm.LastPrimaryChange >= m.config.ID {
			return true
		}
	}
	return false
}

// armAckTimeout guards the CM's NEW-CONFIG-ACK collection against members
// that cannot receive (one-way cuts) or whose acks are lost. The original
// protocol waits for ALL acks with no timeout, so a single half-dead member
// wedges reconfiguration forever while every client sits blocked. Repair:
// re-push NEW-CONFIG to the silent members twice, then suspect them — a
// member that cannot complete the handshake within ~6 lease durations is
// treated exactly like one that failed its lease.
func (m *Machine) armAckTimeout(round int, nc *proto.NewConfig, resends int) {
	m.c.Eng.After(2*m.c.Opts.LeaseDuration, func() {
		if !m.alive || m.cmAckRound != round || m.cmAwaitAcks == nil ||
			len(m.cmAwaitAcks) == 0 || m.config.ID != nc.Config.ID || !m.IsCM() {
			return
		}
		if resends < 2 {
			m.c.Counters.Inc("reconfig_newconfig_resend", 1)
			for _, id := range intKeys(m.cmAwaitAcks) {
				m.sendCtx(id, nc, m.reconfigCtx)
			}
			m.armAckTimeout(round, nc, resends+1)
			return
		}
		// Deaf member: evict the lowest-id non-acker; a follow-up round
		// removes any others.
		silent := intKeys(m.cmAwaitAcks)[0]
		m.cmAwaitAcks = nil
		m.c.Counters.Inc("reconfig_ack_timeout", 1)
		m.c.trace("ack-timeout", m.ID, silent)
		m.suspect(silent)
	})
}

// onNewConfigAck is step 7 at the CM: once every member acked, wait out
// leases granted in previous configurations, then commit.
func (m *Machine) onNewConfigAck(src int, ack *proto.NewConfigAck) {
	if ack.ConfigID != m.config.ID {
		return
	}
	if m.cmAwaitAcks == nil {
		// Ack collection already finished: this is a member re-acking
		// because it never saw NEW-CONFIG-COMMIT (the commit was dropped, or
		// its original ack was a duplicate). The commit wait already ran, so
		// answer directly.
		if m.IsCM() && m.configCommitted {
			m.send(src, &proto.NewConfigCommit{ConfigID: m.config.ID})
		}
		return
	}
	delete(m.cmAwaitAcks, src)
	if len(m.cmAwaitAcks) > 0 {
		return
	}
	m.cmAwaitAcks = nil
	m.c.Eng.After(m.c.Opts.LeaseDuration, func() {
		if !m.alive || !m.IsCM() {
			return
		}
		m.c.trace("config-commit", m.ID, int(m.config.ID))
		if m.reconfigCtx.Valid() {
			m.trb.End(m.reconfigCtx, m.c.Eng.Now(), int64(m.config.ID))
			m.reconfigCtx = trace.Ctx{}
		}
		if m.trb != nil {
			m.trb.Event("recovery", "config-commit", m.c.Eng.Now(),
				trace.RecoveryTraceBit|m.config.ID, 0, int64(m.config.ID))
		}
		for _, mem := range m.config.Machines {
			m.sendCtx(int(mem), &proto.NewConfigCommit{ConfigID: m.config.ID}, m.recoveryTraceCtx())
		}
	})
}

// onNewConfigCommit triggers transaction state recovery (§5.3).
func (m *Machine) onNewConfigCommit(cc *proto.NewConfigCommit) {
	if cc.ConfigID != m.config.ID {
		return
	}
	if m.configCommitted {
		return // duplicate commit (re-ack answered after the original landed)
	}
	m.configCommitted = true
	m.lease.start()
	// Step 7: "All members now unblock previously blocked external client
	// requests."
	m.unblockClients()
	// New primaries push block headers to all backups right away so
	// allocator metadata survives further failures (§5.5).
	for _, id := range regionKeys(m.replicas) {
		if rep := m.replicas[id]; rep.primary && rep.promotedAt == m.config.ID {
			m.syncBlockHeaders(rep)
		}
	}
	m.startTxRecovery(cc.ConfigID)
}

// syncBlockHeaders replicates a region's block headers to all backups.
func (m *Machine) syncBlockHeaders(rep *replica) {
	headers := make(map[int]int, len(rep.headers))
	for b, s := range rep.headers {
		headers[b] = s
	}
	for _, b := range m.backupsOf(rep.id) {
		if int(b) != m.ID {
			m.send(int(b), &proto.BlockHeaderSync{ConfigID: m.config.ID, Region: rep.id, Headers: headers})
		}
	}
}

// onBlockHeaderSync installs replicated allocator metadata at a backup,
// folding newly classed blocks into the digest domain (block classes are
// immutable, so an already known header never changes the domain).
func (m *Machine) onBlockHeaderSync(s *proto.BlockHeaderSync) {
	rep := m.replicas[s.Region]
	if rep == nil {
		return
	}
	for _, b := range intKeys(s.Headers) {
		if _, known := rep.headers[b]; !known {
			rep.headers[b] = s.Headers[b]
			m.foldBlock(rep, b, s.Headers[b])
		}
	}
}

// onRegionsActive (CM): a machine finished lock recovery for all its
// primary regions; when everyone has, broadcast ALL-REGIONS-ACTIVE (§5.4).
func (m *Machine) onRegionsActive(src int, ra *proto.RegionsActive) {
	if !m.IsCM() || ra.ConfigID != m.config.ID || m.cm == nil {
		return
	}
	m.cm.regionsActive[src] = true
	for _, mem := range m.config.Machines {
		if !m.cm.regionsActive[int(mem)] {
			return
		}
	}
	m.c.trace("all-active", m.ID, 0)
	for _, mem := range m.config.Machines {
		m.send(int(mem), &proto.AllRegionsActive{ConfigID: m.config.ID})
	}
}

// onAllRegionsActive starts data recovery for new backups and allocator
// recovery at promoted primaries (§5.4, §5.5).
func (m *Machine) onAllRegionsActive(aa *proto.AllRegionsActive) {
	if aa.ConfigID != m.config.ID {
		return
	}
	m.c.trace("data-rec-start", m.ID, 0)
	for _, id := range regionKeys(m.replicas) {
		rep := m.replicas[id]
		if rep.needsDataRecovery {
			m.startDataRecovery(rep)
		}
		if rep.primary && rep.allocRecovering && rep.alloc == nil {
			m.startAllocRecovery(rep)
		}
	}
}
