package core

import (
	"farm/internal/fabric"
	"farm/internal/proto"
	"farm/internal/ring"
	"farm/internal/sim"
)

// This file implements whole-cluster power-failure semantics (§2.1, §5):
// "We provide durability for all committed transactions even if the entire
// cluster fails or loses power: all committed state can be recovered from
// regions and logs stored in non-volatile DRAM."
//
// The distributed UPS saves each machine's entire memory to SSD and
// restores it on power-up, so a power failure behaves like a simultaneous
// pause of every process: memory (regions, logs, and process state)
// survives; everything in flight on the network is lost; all leases are
// long expired by the time power returns.
//
// Recovery after power restoration is a reconfiguration with unchanged
// membership in which every region's epochs are advanced: every in-flight
// transaction becomes a recovering transaction (its coordinator can no
// longer trust any ack it never received), logs are drained, lock recovery
// runs for every region, and the vote/decide protocol settles every
// outcome — the normal §5.3 machinery, applied to the whole address space.

// PowerFailure cuts power to every machine: CPUs stop, NICs stop
// answering, in-flight completions are lost. The UPS save preserves all
// memory.
func (c *Cluster) PowerFailure() {
	for _, m := range c.Machines {
		if m.alive {
			m.alive = false
			m.poweredOff = true
			m.nic.SetPowered(false)
			m.lease.stop()
		}
	}
	c.trace("power-failure", -1, 0)
	c.Counters.Inc("power_failures", 1)
}

// RestorePower brings every machine (previously alive or not — replaced
// hardware comes back empty-handed and simply rejoins with its preserved
// memory) back up and triggers power-failure recovery.
func (c *Cluster) RestorePower() {
	var initiator *Machine
	for _, m := range c.Machines {
		if !m.poweredOff {
			continue // was already dead before the outage: stays dead
		}
		m.poweredOff = false
		m.alive = true
		m.nic.SetPowered(true)
		m.lease = newLeaseManager(m)
		m.lease.start()
		m.startTruncSweep()
		m.startTxStallSweep()
		m.reconfiguring = false
		// Audits in flight at the outage are void (their messages died with
		// the network); drop them and every fence before traffic resumes.
		m.abortAudits("power cycle")
		// Every in-flight transaction's completions were lost with the
		// outage: mark them recovering now so stray replies produced while
		// reprocessing logs below cannot drive the normal path.
		for _, ct := range m.inflight {
			if ct.phase != phaseDone {
				ct.recovering = true
			}
		}
	}
	c.reestablishRings()
	c.trace("power-restore", -1, 0)
	// The machine that believes it is CM initiates the recovery
	// reconfiguration; with identical memory images all machines agree.
	for _, m := range c.Machines {
		if m.IsCM() {
			initiator = m
			break
		}
	}
	if initiator == nil {
		for _, m := range c.Machines {
			if m.alive {
				initiator = m
				break
			}
		}
	}
	if initiator == nil {
		return
	}
	init := initiator
	c.Eng.After(sim.Millisecond, func() {
		if init.alive {
			init.suspectFull(-1, true)
		}
	})
}

// reestablishRings rebuilds every transaction-log ring after a power
// outage. The log *contents* are durable and are re-examined record by
// record (the §5.3 drain, done eagerly here); the ring endpoints' runtime
// state (tails, reservations, in-flight acks) refers to connections that
// no longer exist — exactly like RDMA queue pairs after a power cycle — so
// both halves are recreated from scratch.
func (c *Cluster) reestablishRings() {
	// 1. Re-examine everything still in the non-volatile logs. Processing
	// is idempotent: applied commits are version-gated, locks are owner-
	// tracked, and coordinators were marked recovering above.
	for _, m := range c.Machines {
		if !m.alive {
			continue
		}
		for _, src := range intKeys(m.logR) {
			lr := m.logR[src]
			for _, f := range lr.rd.Pending() {
				rec, err := proto.UnmarshalRecord(f.Payload)
				if err != nil {
					continue
				}
				m.handleRecordInner(lr, rec, f.Seq, true)
			}
		}
	}
	// 2. Fresh ring state on both ends.
	for _, m := range c.Machines {
		if !m.alive {
			continue
		}
		for src := range m.logR {
			mem := m.store.Region(toNVRAM(logRegionID(src)))
			for i := range mem {
				mem[i] = 0
			}
			m.logR[src] = newLogReader(m, src, ring.NewReader(mem))
			sender := c.Machines[src]
			// Close the replaced writer so any retransmissions it still has
			// scheduled die with it instead of landing in the fresh ring.
			if old := sender.logW[m.ID]; old != nil {
				old.Close()
			}
			sender.logW[m.ID] = ring.NewWriter(sender.nic, fabric.MachineID(m.ID),
				toNVRAM(logRegionID(src)), c.Opts.LogCapacity)
			// Restore the pooled truncate-record reservations the sender
			// still accounts for.
			if q := sender.truncQ[m.ID]; q != nil {
				for i := 0; i < q.pool; i++ {
					sender.logW[m.ID].Reserve(truncateRecordSize())
				}
			}
		}
	}
	// 3. Per-transaction reservations named slots in the old rings; drop
	// them (recovering transactions finish through messages, not records)
	// and requeue undelivered truncations so backups converge.
	for _, m := range c.Machines {
		if !m.alive {
			continue
		}
		for _, ct := range m.inflight {
			ct.reservations = make(map[int]*resSet)
		}
		for _, dst := range intKeys(m.truncPending) {
			pend := m.truncPending[dst]
			q := m.truncQueueFor(dst)
			queued := make(map[uint64]bool, len(q.ids))
			for _, id := range q.ids {
				queued[id] = true
			}
			for _, id := range u64Keys(pend) {
				if !queued[id] {
					q.ids = append(q.ids, id)
				}
			}
		}
		for _, dst := range intKeys(m.truncQ) {
			if q := m.truncQ[dst]; len(q.ids) > 0 && !q.flushArmed {
				m.armTruncFlush(dst)
			}
		}
	}
}

// PowerCycle is PowerFailure + outage + RestorePower, driving the
// simulation through the outage.
func (c *Cluster) PowerCycle(outage sim.Time) {
	c.PowerFailure()
	c.RunFor(outage)
	c.RestorePower()
}
