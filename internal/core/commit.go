package core

import (
	"farm/internal/fabric"
	"farm/internal/history"
	"farm/internal/nvram"
	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/sim"
	"farm/internal/trace"
)

// maxPiggyIDs bounds how many truncation ids one record carries; the
// reservation for every record includes this budget (Table 1's note: "The
// low bound ... and a transaction identifier for truncation are piggybacked
// on each record").
const maxPiggyIDs = 8

const piggyBudget = 8 * maxPiggyIDs

// commit phases.
const (
	phaseLock = iota
	phaseValidate
	phaseCommitBackup
	phaseCommitPrimary
	phaseDone
)

// coordTx is the coordinator-side state of one committing transaction.
type coordTx struct {
	id proto.TxID
	tx *Tx
	cb func(error)

	phase int

	writeRegions []uint32
	// primWrites / backupWrites group the write set by destination machine.
	primWrites   map[int][]proto.ObjectWrite
	backupWrites map[int][]proto.ObjectWrite
	participants []int // all machines holding records (dedup, sorted)

	// reservations[machine] holds the per-record-kind payload sizes
	// reserved there, consumed as records are written.
	reservations map[int]*resSet

	lockOutstanding int
	lockFailed      bool

	valOutstanding int

	cbOutstanding int

	cpOutstanding int
	reported      bool

	// recovering is set when reconfiguration classifies this transaction
	// as recovering (§5.3): normal-path acks and replies are ignored from
	// then on and the outcome comes from vote/decide.
	recovering bool
	// lastProgress is when the commit last advanced (started, or received
	// a lock/validate reply); the stall watchdog aborts lock/validate-phase
	// transactions whose replies were lost to network faults.
	lastProgress sim.Time
	// truncRemaining tracks participants that have not yet had this
	// transaction's truncation delivered.
	truncRemaining map[int]bool

	// traceCtx is a copy of the transaction's root span context (it
	// survives the root span closing at the commit report, because the
	// TRUNCATE phase outlives it); phaseCtx is the currently open commit-
	// phase child span; truncCtx covers queueing → delivery of truncation.
	traceCtx trace.Ctx
	phaseCtx trace.Ctx
	truncCtx trace.Ctx
}

// beginPhase opens the named commit-phase child span, closing whichever
// phase span was open (phases are strictly sequential, §4). No-ops for
// untraced transactions.
func (m *Machine) beginPhase(ct *coordTx, name string) {
	if !ct.traceCtx.Valid() {
		return
	}
	now := m.c.Eng.Now()
	if ct.phaseCtx.Valid() {
		m.trb.End(ct.phaseCtx, now, 0)
	}
	ct.phaseCtx = m.trb.Begin("tx", name, now, ct.traceCtx.Trace, ct.traceCtx.Span, 0)
}

// endPhase closes the open commit-phase span, if any.
func (m *Machine) endPhase(ct *coordTx) {
	if ct.phaseCtx.Valid() {
		m.trb.End(ct.phaseCtx, m.c.Eng.Now(), 0)
		ct.phaseCtx = trace.Ctx{}
	}
}

// Commit runs the four-phase commit protocol of §4 / Figure 4 and reports
// the outcome through cb. Read-only transactions skip straight to
// validation and have no commit phase.
func (t *Tx) Commit(cb func(err error)) {
	if t.finished {
		panic(errTxDone)
	}
	t.finished = true
	m := t.m
	if !m.alive {
		return
	}

	if m.clientsBlocked {
		// §5.2: commits block alongside reads while a reconfiguration is
		// in sight. A fenced (possibly evicted) coordinator must not push
		// LOCK records built on pre-eviction reads; if a new configuration
		// arrives the retry locks at the observed versions and aborts on
		// staleness.
		t.finished = false
		m.clientQueue = append(m.clientQueue, func() { t.Commit(cb) })
		return
	}

	if t.ctx.Valid() {
		// Close the root trace span on whatever path reports the outcome.
		inner := cb
		cb = func(err error) { t.endTxSpan(err); inner(err) }
	}
	if t.hrec != nil {
		// Record the reported outcome and its simulated time. Requeue
		// paths below may wrap cb again on re-entry; Finish is idempotent,
		// so only the first (outermost) report lands. A coordinator that
		// dies before reporting leaves the event indeterminate — exactly
		// what the checker's commit inference is for.
		inner := cb
		cb = func(err error) {
			o := history.Committed
			if err != nil {
				o = history.Aborted
			}
			t.histFinish(o)
			inner(err)
		}
	}

	if len(t.writes) == 0 {
		t.validateReadOnly(cb)
		return
	}

	// Wait for any blocked (recovering) write region before starting.
	for _, addr := range t.order {
		if m.regionBlocked(addr.Region) {
			region := addr.Region
			t.finished = false
			m.blockUntilActive(region, func() { t.Commit(cb) })
			return
		}
	}

	ct := &coordTx{
		tx:           t,
		cb:           cb,
		primWrites:   make(map[int][]proto.ObjectWrite),
		backupWrites: make(map[int][]proto.ObjectWrite),
		reservations: make(map[int]*resSet),
	}

	// Group the write set by primary and backup machines.
	seenRegion := make(map[uint32]bool)
	part := make(map[int]bool)
	for _, addr := range t.order {
		w := t.writes[addr]
		rm := m.mapping(addr.Region)
		if rm == nil || len(rm.Replicas) < 1 {
			t.releaseAllocs()
			m.failTx(cb, ErrUnavailable)
			return
		}
		if !seenRegion[addr.Region] {
			seenRegion[addr.Region] = true
			ct.writeRegions = append(ct.writeRegions, addr.Region)
		}
		ow := proto.ObjectWrite{Addr: addr, Version: w.version, Allocated: w.allocated, Value: w.value}
		pm := int(rm.Replicas[0])
		ct.primWrites[pm] = append(ct.primWrites[pm], ow)
		part[pm] = true
		for _, b := range rm.Replicas[1:] {
			ct.backupWrites[int(b)] = append(ct.backupWrites[int(b)], ow)
			part[int(b)] = true
		}
	}
	for p := range part {
		ct.participants = append(ct.participants, p)
	}
	sortInts(ct.participants)

	// Assign the transaction id ⟨c, m, t, l⟩ at the start of commit (§5.3).
	m.nextLocal[t.thread]++
	ct.id = proto.TxID{
		Config:  m.config.ID,
		Machine: uint16(m.ID),
		Thread:  uint16(t.thread),
		Local:   m.nextLocal[t.thread],
	}
	m.threadTrunc(t.thread).open(ct.id.Local)

	// Reserve log space for every record this commit and its truncation
	// will need (§4): LOCK + COMMIT-PRIMARY/ABORT at primaries,
	// COMMIT-BACKUP at backups, and a truncate record everywhere.
	if !m.reserveCommit(ct) {
		m.threadTrunc(t.thread).retire(ct.id.Local)
		t.releaseAllocs()
		m.failTx(cb, ErrNoSpace)
		return
	}

	m.inflight[ct.id] = ct
	m.c.Counters.Inc("tx_commit_started", 1)
	ct.phase = phaseLock
	ct.lastProgress = m.c.Eng.Now()
	ct.traceCtx = t.ctx
	m.beginPhase(ct, "LOCK")
	m.sendLocks(ct)
}

// failTx reports a commit failure on the coordinator thread.
func (m *Machine) failTx(cb func(error), err error) {
	m.c.Eng.After(m.c.Opts.CPULocal, func() {
		if m.alive {
			m.Aborted++
			cb(err)
		}
	})
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// recordSizes computes the marshaled payload sizes to reserve.
func (m *Machine) lockRecordFor(ct *coordTx, pm int) *proto.Record {
	return &proto.Record{
		Type:    proto.RecLock,
		Tx:      ct.id,
		Regions: ct.writeRegions,
		Writes:  ct.primWrites[pm],
	}
}

func (m *Machine) backupRecordFor(ct *coordTx, bm int) *proto.Record {
	return &proto.Record{
		Type:    proto.RecCommitBackup,
		Tx:      ct.id,
		Regions: ct.writeRegions,
		Writes:  ct.backupWrites[bm],
	}
}

func recordSize(r *proto.Record) int { return len(proto.MarshalRecord(r)) + piggyBudget }

// truncateRecordSize is the reservation for a worst-case explicit
// TRUNCATE record.
func truncateRecordSize() int {
	return recordSize(&proto.Record{Type: proto.RecTruncate})
}

// resSet holds one participant's outstanding reservations by record kind
// (0 = none). Truncate-record reservations are pooled per destination in
// truncQueue instead, because truncation is batched across transactions;
// pooled counts this transaction's contributions to that pool.
type resSet struct{ lock, cp, cb, pooled int }

// reserveCommit makes all per-participant ring reservations, rolling back
// on failure.
func (m *Machine) reserveCommit(ct *coordTx) bool {
	res := func(dst int) *resSet {
		r := ct.reservations[dst]
		if r == nil {
			r = &resSet{}
			ct.reservations[dst] = r
		}
		return r
	}
	rollback := func() bool {
		for dst, r := range ct.reservations {
			w := m.logW[dst]
			for _, s := range []int{r.lock, r.cp, r.cb} {
				if s > 0 {
					w.Release(s)
				}
			}
			for i := 0; i < r.pooled; i++ {
				m.truncPoolRelease(dst)
			}
		}
		ct.reservations = make(map[int]*resSet)
		return false
	}
	smallRec := recordSize(&proto.Record{Type: proto.RecCommitPrimary, Tx: ct.id, Regions: ct.writeRegions})
	for pm := range ct.primWrites {
		w := m.logW[pm]
		lockSz := recordSize(m.lockRecordFor(ct, pm))
		if w == nil || !w.Reserve(lockSz) {
			return rollback()
		}
		res(pm).lock = lockSz
		if !w.Reserve(smallRec) {
			return rollback()
		}
		res(pm).cp = smallRec
	}
	for bm := range ct.backupWrites {
		w := m.logW[bm]
		cbSz := recordSize(m.backupRecordFor(ct, bm))
		if w == nil || !w.Reserve(cbSz) {
			return rollback()
		}
		res(bm).cb = cbSz
	}
	// Exactly ONE pooled truncate-record slot per participant machine: a
	// machine that is both primary (for one region) and backup (for
	// another) still receives a single truncation for the transaction.
	for _, p := range ct.participants {
		if !m.truncPoolReserve(p) {
			return rollback()
		}
		res(p).pooled++
	}
	return true
}

// releaseCoordReservations returns every unconsumed reservation of a
// transaction finished outside the normal record-writing path (recovery
// decisions). Reservations toward machines that left the configuration
// vanished with their rings.
func (m *Machine) releaseCoordReservations(ct *coordTx) {
	for dst, r := range ct.reservations {
		w := m.logW[dst]
		if w == nil || !m.isMember(dst) {
			continue
		}
		for _, s := range []int{r.lock, r.cp, r.cb} {
			if s > 0 {
				w.Release(s)
			}
		}
		for i := 0; i < r.pooled; i++ {
			m.truncPoolRelease(dst)
		}
	}
	ct.reservations = make(map[int]*resSet)
}

// takeReservation consumes the reservation matching a record kind.
func (ct *coordTx) takeReservation(dst int, typ proto.RecordType) int {
	r := ct.reservations[dst]
	if r == nil {
		return -1
	}
	var s *int
	switch typ {
	case proto.RecLock:
		s = &r.lock
	case proto.RecCommitPrimary, proto.RecAbort:
		s = &r.cp
	case proto.RecCommitBackup:
		s = &r.cb
	default:
		return -1
	}
	size := *s
	*s = 0
	if size == 0 {
		return -1
	}
	return size
}

// writeRecord marshals rec with piggybacked truncation ids for dst and
// appends it to dst's log; ack receives the hardware ack.
func (m *Machine) writeRecord(ct *coordTx, dst int, rec *proto.Record, ack func(error)) {
	m.attachPiggyback(dst, rec)
	reserved := -1
	if ct != nil {
		reserved = ct.takeReservation(dst, rec.Type)
	}
	payload := proto.MarshalRecord(rec)
	delivered := rec.TruncIDs
	w := m.logW[dst]
	okAck := func(err error) {
		if err == nil {
			m.truncDelivered(dst, delivered, 0)
		}
		if ack != nil {
			ack(err)
		}
	}
	if !w.Append(payload, reserved, okAck) {
		// Only possible for unreserved writes; the caller retries.
		m.requeuePiggyback(dst, rec)
		if ack != nil {
			ack(ErrNoSpace)
		}
	}
}

// sendLocks writes a LOCK record to the log at every primary of a written
// object (§4 step 1). The coordinator thread issues one verb per record.
func (m *Machine) sendLocks(ct *coordTx) {
	ct.lockOutstanding = len(ct.primWrites)
	for _, pm := range intKeys(ct.primWrites) {
		pm := pm
		rec := m.lockRecordFor(ct, pm)
		m.pool.ByIndex(ct.tx.thread).Do(m.c.Opts.CPUVerb, func() {
			if !m.alive {
				return
			}
			m.writeRecord(ct, pm, rec, nil)
			// Phase-end doorbell: the LOCK record is on the wire; any
			// transport traffic queued toward pm departs with it instead
			// of trailing the phase by a flush interval.
			m.tp.flushHint(pm)
		})
	}
}

// onLockReply handles a primary's lock result (Table 2 LOCK-REPLY).
func (m *Machine) onLockReply(reply *proto.LockReply) {
	ct := m.inflight[reply.Tx]
	if ct == nil || ct.recovering || ct.phase != phaseLock {
		return
	}
	if !reply.OK {
		ct.lockFailed = true
	}
	ct.lastProgress = m.c.Eng.Now()
	ct.lockOutstanding--
	if ct.lockOutstanding > 0 {
		return
	}
	if ct.lockFailed {
		m.abortTx(ct, ErrConflict)
		return
	}
	ct.phase = phaseValidate
	m.validate(ct)
}

// abortTx writes ABORT records to all lock-phase primaries, releases
// unused reservations, and reports the conflict (§4 step 1).
func (m *Machine) abortTx(ct *coordTx, err error) {
	ct.phase = phaseDone
	m.endPhase(ct)
	delete(m.inflight, ct.id)
	ct.tx.releaseAllocs()
	acks := len(ct.primWrites)
	for _, pm := range intKeys(ct.primWrites) {
		rec := &proto.Record{Type: proto.RecAbort, Tx: ct.id, Regions: ct.writeRegions}
		pm := pm
		m.pool.ByIndex(ct.tx.thread).Do(m.c.Opts.CPUVerb, func() {
			if !m.alive {
				return
			}
			m.writeRecord(ct, pm, rec, func(e error) {
				acks--
				if acks == 0 && m.alive {
					m.queueTruncation(ct, ct.primariesOnly())
				}
			})
			m.tp.flushHint(pm) // phase-end doorbell
		})
	}
	// Backups never see this transaction: release their COMMIT-BACKUP
	// space (and, for pure backups, their pooled truncate reservation —
	// they will get no record to truncate).
	for bm := range ct.backupWrites {
		if r := ct.reservations[bm]; r != nil && r.cb > 0 {
			m.logW[bm].Release(r.cb)
			r.cb = 0
		}
		if _, alsoPrimary := ct.primWrites[bm]; !alsoPrimary {
			m.truncPoolRelease(bm)
		}
	}
	m.c.Counters.Inc("tx_aborted", 1)
	m.Aborted++
	ct.cb(err)
}

func (ct *coordTx) primariesOnly() []int {
	out := make([]int, 0, len(ct.primWrites))
	for pm := range ct.primWrites {
		out = append(out, pm)
	}
	sortInts(out)
	return out
}

// validate performs read validation (§4 step 2): one-sided reads of the
// version words of all read-but-not-written objects, switching to RPC for
// primaries holding more than tr of them.
func (m *Machine) validate(ct *coordTx) {
	m.beginPhase(ct, "VALIDATE")
	if m.c.Opts.SkipReadValidation {
		// TEST-ONLY consistency bug (Options.SkipReadValidation): commit
		// without checking that read versions still stand.
		ct.phase = phaseCommitBackup
		m.commitBackups(ct)
		return
	}
	t := ct.tx
	byPrimary := make(map[int][]*readEntry)
	for _, addr := range addrKeys(t.reads) {
		if _, written := t.writes[addr]; written {
			continue
		}
		pm := m.primaryOf(addr.Region)
		if pm == -1 {
			m.abortTx(ct, ErrUnavailable)
			return
		}
		byPrimary[pm] = append(byPrimary[pm], t.reads[addr])
	}
	if len(byPrimary) == 0 {
		ct.phase = phaseCommitBackup
		m.commitBackups(ct)
		return
	}
	// abortTx sets phase to done, so late replies become no-ops.
	fail := func() {
		if ct.phase == phaseValidate && !ct.recovering {
			m.abortTx(ct, ErrConflict)
		}
	}
	done := func() {
		ct.lastProgress = m.c.Eng.Now()
		ct.valOutstanding--
		if ct.valOutstanding == 0 && ct.phase == phaseValidate && !ct.recovering {
			ct.phase = phaseCommitBackup
			m.commitBackups(ct)
		}
	}
	for pm, entries := range byPrimary {
		if pm != m.ID && len(entries) > m.c.Opts.ValidateRPCThreshold {
			ct.valOutstanding++
		} else {
			ct.valOutstanding += len(entries)
		}
	}
	for _, pm := range intKeys(byPrimary) {
		pm, entries := pm, byPrimary[pm]
		switch {
		case pm == m.ID:
			// Local validation: direct header loads.
			for _, r := range entries {
				r := r
				m.OnThread(t.thread, m.c.Opts.CPULocal, func() {
					if ct.phase != phaseValidate || ct.recovering {
						return
					}
					rep := m.replicas[r.addr.Region]
					if rep == nil || !validHeader(rep.mem, r) {
						fail()
						return
					}
					done()
				})
			}
		case len(entries) > m.c.Opts.ValidateRPCThreshold:
			// Validation over RPC (Table 2 VALIDATE). The phase span's
			// context rides along, so the primary's work and its reply are
			// parented on this validation.
			req := &proto.ValidateReq{Tx: ct.id}
			for _, r := range entries {
				req.Addrs = append(req.Addrs, r.addr)
				req.Versions = append(req.Versions, r.version)
			}
			// Doorbell: this request is the validate phase's entire
			// fan-out to pm; it should depart with the phase.
			m.sendFromThreadCtxDoorbell(t.thread, pm, req, ct.phaseCtx)
		default:
			for _, r := range entries {
				r := r
				m.OnThread(t.thread, m.c.Opts.CPUVerb, func() {
					m.nic.Read(fabric.MachineID(pm), nvram.RegionID(r.addr.Region),
						int(r.addr.Off), regionmem.HeaderSize, func(raw []byte, err error) {
							if !m.alive || ct.phase != phaseValidate || ct.recovering {
								return
							}
							if err != nil || !validHeaderWord(regionmem.ReadHeader(raw, 0), r.version) {
								fail()
								return
							}
							done()
						})
				})
			}
		}
	}
}

func validHeader(mem []byte, r *readEntry) bool {
	return validHeaderWord(regionmem.ReadHeader(mem, int(r.addr.Off)), r.version)
}

func validHeaderWord(word, version uint64) bool {
	return !regionmem.Locked(word) && regionmem.Version(word) == version
}

// onValidateReply finishes an RPC validation.
func (m *Machine) onValidateReply(reply *proto.ValidateReply) {
	ct := m.inflight[reply.Tx]
	if ct == nil || ct.recovering || ct.phase != phaseValidate {
		return
	}
	if !reply.OK {
		m.abortTx(ct, ErrConflict)
		return
	}
	ct.lastProgress = m.c.Eng.Now()
	ct.valOutstanding--
	if ct.valOutstanding == 0 {
		ct.phase = phaseCommitBackup
		m.commitBackups(ct)
	}
}

// commitBackups writes COMMIT-BACKUP records to every backup's
// non-volatile log and waits for all hardware acks, without interrupting
// any backup CPU (§4 step 3).
func (m *Machine) commitBackups(ct *coordTx) {
	m.beginPhase(ct, "COMMIT-BACKUP")
	if len(ct.backupWrites) == 0 {
		ct.phase = phaseCommitPrimary
		m.commitPrimaries(ct)
		return
	}
	ct.cbOutstanding = len(ct.backupWrites)
	for _, bm := range intKeys(ct.backupWrites) {
		bm := bm
		rec := m.backupRecordFor(ct, bm)
		m.pool.ByIndex(ct.tx.thread).Do(m.c.Opts.CPUVerb, func() {
			if !m.alive {
				return
			}
			m.writeRecord(ct, bm, rec, func(err error) {
				if !m.alive || ct.recovering || ct.phase != phaseCommitBackup {
					return
				}
				if err != nil {
					// The ring writer retried far longer than any transient
					// fault episode: the backup is effectively unreachable.
					// The transaction must wait for recovery (the backup may
					// hold its COMMIT-BACKUP record), but the membership
					// layer should know about the dead destination.
					m.reportWriteFailure(bm)
					return
				}
				// Precise membership: ignore acks from non-members (§5.2).
				if !m.isMember(bm) {
					return
				}
				ct.cbOutstanding--
				if ct.cbOutstanding == 0 {
					ct.phase = phaseCommitPrimary
					m.commitPrimaries(ct)
				}
			})
			m.tp.flushHint(bm) // phase-end doorbell
		})
	}
}

// commitPrimaries writes COMMIT-PRIMARY records; completion is reported to
// the application on the first hardware ack (§4 step 4). Truncation is
// queued once all primaries acked (§4 step 5).
func (m *Machine) commitPrimaries(ct *coordTx) {
	m.beginPhase(ct, "COMMIT-PRIMARY")
	ct.cpOutstanding = len(ct.primWrites)
	for _, pm := range intKeys(ct.primWrites) {
		pm := pm
		rec := &proto.Record{Type: proto.RecCommitPrimary, Tx: ct.id, Regions: ct.writeRegions}
		m.pool.ByIndex(ct.tx.thread).Do(m.c.Opts.CPUVerb, func() {
			if !m.alive {
				return
			}
			m.writeRecord(ct, pm, rec, func(err error) {
				if !m.alive || ct.recovering {
					return
				}
				if err != nil {
					m.reportWriteFailure(pm)
					return
				}
				if !m.isMember(pm) {
					return
				}
				if !ct.reported {
					ct.reported = true
					m.reportCommitted(ct)
				}
				ct.cpOutstanding--
				if ct.cpOutstanding == 0 {
					ct.phase = phaseDone
					m.endPhase(ct)
					delete(m.inflight, ct.id)
					m.queueTruncation(ct, ct.participants)
				}
			})
			m.tp.flushHint(pm) // phase-end doorbell
		})
	}
}

// selfLeaseOK reports whether this machine may tell its application a
// transaction committed: every lease it watches is current, so it cannot
// have been evicted without knowing it. Leases are exactly the mechanism
// the paper uses to fence a machine before the surviving configuration
// acts without it (§5.2) — a coordinator whose lease has lapsed may hold
// hardware acks from a configuration that no longer exists, and recovery
// may be deciding its transaction's real fate right now.
func (m *Machine) selfLeaseOK() bool {
	return m.lease == nil || m.lease.fresh()
}

// fencedReport runs an application-visible success report now if the
// machine's membership is provably current, and defers it otherwise. A
// deferred report flushes when (if ever) the lease is renewed; until then
// the application sees the transaction as in flight — the honest answer,
// since only recovery on the surviving configuration knows the outcome.
func (m *Machine) fencedReport(report func()) {
	if m.selfLeaseOK() {
		report()
		return
	}
	m.c.Counters.Inc("report_fenced", 1)
	m.fencedReports = append(m.fencedReports, report)
}

// flushFencedReports delivers deferred outcome reports; called from the
// lease tick so delivery is deterministic.
func (m *Machine) flushFencedReports() {
	if len(m.fencedReports) == 0 || !m.alive || !m.selfLeaseOK() {
		return
	}
	reports := m.fencedReports
	m.fencedReports = nil
	for _, r := range reports {
		r()
	}
}

// reportCommitted finalizes a successful commit at the application.
func (m *Machine) reportCommitted(ct *coordTx) {
	m.fencedReport(func() {
		m.Committed++
		m.c.Counters.Inc("tx_committed", 1)
		ct.cb(nil)
	})
}

// validateReadOnly is the read-only fast path: committed read-only
// transactions serialize at their last read, so only validation is needed.
// Primaries holding more than tr read objects are validated with a single
// RPC, like the read-write path (§4 step 2).
func (t *Tx) validateReadOnly(cb func(error)) {
	m := t.m
	if m.c.Opts.SkipReadValidation || len(t.reads) == 0 {
		m.c.Eng.After(m.c.Opts.CPULocal, func() {
			if m.alive {
				m.fencedReport(func() {
					m.Committed++
					m.c.Counters.Inc("tx_committed", 1)
					cb(nil)
				})
			}
		})
		return
	}
	byPrimary := make(map[int][]*readEntry)
	for _, addr := range addrKeys(t.reads) {
		r := t.reads[addr]
		byPrimary[m.primaryOf(r.addr.Region)] = append(byPrimary[m.primaryOf(r.addr.Region)], r)
	}
	outstanding := 0
	for pm, entries := range byPrimary {
		if pm != m.ID && len(entries) > m.c.Opts.ValidateRPCThreshold {
			outstanding++
		} else {
			outstanding += len(entries)
		}
	}
	failed := false
	finish := func(ok bool) {
		if failed {
			return
		}
		if !ok {
			failed = true
			m.Aborted++
			m.c.Counters.Inc("tx_aborted", 1)
			cb(ErrConflict)
			return
		}
		outstanding--
		if outstanding == 0 {
			// Read-only commits serialize at their last read; the report is
			// lease-fenced like the read-write path, so a coordinator that
			// validated against replicas the configuration has moved past
			// cannot vouch for a stale snapshot.
			m.fencedReport(func() {
				m.Committed++
				m.c.Counters.Inc("tx_committed", 1)
				cb(nil)
			})
		}
	}
	for _, pm := range intKeys(byPrimary) {
		pm, entries := pm, byPrimary[pm]
		switch {
		case pm == m.ID:
			for _, r := range entries {
				r := r
				m.OnThread(t.thread, m.c.Opts.CPULocal, func() {
					rep := m.replicas[r.addr.Region]
					finish(rep != nil && validHeader(rep.mem, r))
				})
			}
		case pm == -1 || !m.isMember(pm):
			m.OnThread(t.thread, m.c.Opts.CPULocal, func() { finish(false) })
		case len(entries) > m.c.Opts.ValidateRPCThreshold:
			// One RPC validates the whole per-primary read set.
			req := &proto.ValidateReq{}
			for _, r := range entries {
				req.Addrs = append(req.Addrs, r.addr)
				req.Versions = append(req.Versions, r.version)
			}
			id := m.nextRPC
			m.nextRPC++
			m.rpcWaiters[id] = func(resp interface{}) {
				finish(resp.(*proto.ValidateReply).OK)
			}
			// Doorbell: a read-only commit waits on nothing else.
			m.sendFromThreadDoorbell(t.thread, pm, &rpcEnvelope{ID: id, From: m.ID, Body: req, Ctx: t.ctx})
		default:
			for _, r := range entries {
				r := r
				m.OnThread(t.thread, m.c.Opts.CPUVerb, func() {
					m.nic.Read(fabric.MachineID(pm), nvram.RegionID(r.addr.Region), int(r.addr.Off),
						regionmem.HeaderSize, func(raw []byte, err error) {
							if !m.alive || failed {
								return
							}
							finish(err == nil && validHeaderWord(regionmem.ReadHeader(raw, 0), r.version))
						})
				})
			}
		}
	}
}
