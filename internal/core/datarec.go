package core

import (
	"bytes"

	"farm/internal/audit"
	"farm/internal/fabric"
	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/sim"
	"farm/internal/trace"
)

// This file implements bulk data recovery (§5.4) and allocator state
// recovery (§5.5). Both are deliberately delayed until ALL-REGIONS-ACTIVE
// and paced so the latency-critical lock recovery and the foreground
// workload are not disturbed.

// dataRecoveryDone notifies the CM (bookkeeping only; the throughput
// effect the paper measures comes from the fetch traffic itself).
type dataRecoveryDone struct {
	ConfigID uint64
	Region   uint32
}

// startDataRecovery re-replicates one region at a freshly assigned backup:
// worker threads divide the region and fetch blocks from the primary with
// one-sided reads, each thread scheduling its next read at a random point
// within the pacing interval (§5.4).
func (m *Machine) startDataRecovery(rep *replica) {
	rm := m.mappings[rep.id]
	if rm == nil || len(rm.Replicas) == 0 || int(rm.Replicas[0]) == m.ID {
		return
	}
	primary := int(rm.Replicas[0])
	if m.trb != nil {
		rep.recCtx = m.trb.Begin("recovery", "re-replication", m.c.Eng.Now(),
			trace.RecoveryTraceBit|m.config.ID, 0, int64(rep.id))
	}
	unit := m.c.Opts.DataRecBlock
	if unit%m.c.Opts.Layout.BlockSize != 0 {
		unit += m.c.Opts.Layout.BlockSize - unit%m.c.Opts.Layout.BlockSize
	}
	units := (rep.size + unit - 1) / unit
	threads := m.c.Opts.Threads
	chains := threads * m.c.Opts.DataRecConcurrency
	if chains > units {
		chains = units
	}
	remaining := units
	cfgAtStart := m.config.ID

	var fetch func(chain, u int)
	fetch = func(chain, u int) {
		if !m.alive || m.config.ID != cfgAtStart || u >= units {
			return
		}
		off := u * unit
		n := unit
		if off+n > rep.size {
			n = rep.size - off
		}
		// Pacing: start at a random point within the interval (§5.4).
		m.c.Eng.After(m.c.Eng.Rand().Duration(m.c.Opts.DataRecInterval), func() {
			if !m.alive || m.config.ID != cfgAtStart {
				return
			}
			m.pool.ByIndex(chain).Do(m.c.Opts.CPUVerb, func() {
				if !m.alive {
					return
				}
				m.nic.Read(fabric.MachineID(primary), toNVRAM(rep.id), off, n, func(data []byte, err error) {
					if !m.alive || m.config.ID != cfgAtStart {
						return
					}
					if err != nil {
						// Primary failed mid-recovery: the next
						// reconfiguration restarts data recovery.
						return
					}
					cost := m.c.Opts.CPULocal + sim.Time(n/256)*m.c.Opts.CPUPerObject/8
					m.pool.ByIndex(chain).Do(cost, func() {
						if !m.alive {
							return
						}
						m.applyRecoveredBlock(rep, off, data)
						remaining--
						if remaining == 0 {
							m.finishDataRecovery(rep)
							return
						}
						fetch(chain, u+chains)
					})
				})
			})
		})
	}
	for c := 0; c < chains; c++ {
		fetch(c, c)
	}
	if units == 0 {
		m.finishDataRecovery(rep)
	}
}

// applyRecoveredBlock merges fetched bytes object by object: an object is
// copied only if its recovered version is newer than the local one, using
// a lock/update/unlock sequence so races with concurrent transaction
// commits are safe (§5.4). Each copy keeps the replica's incremental
// digest current (unfold old slot state, fold new) so a freshly recovered
// backup is immediately auditable.
//
// In audit-repair mode (rep.repairing) the version gate widens to "any
// difference": the primary's bytes win wherever the masked header word or
// payload disagrees, which is what heals silent corruption that left the
// version untouched. Repair skips the incremental updates — the corrupted
// old bytes were never folded in, so unfolding them would skew the sum —
// and the digest is reseeded from a fresh scan in finishDataRecovery.
func (m *Machine) applyRecoveredBlock(rep *replica, base int, data []byte) {
	layout := m.c.Opts.Layout
	for rel := 0; rel < len(data); rel += layout.BlockSize {
		block := (base + rel) / layout.BlockSize
		class, ok := rep.headers[block]
		if !ok {
			// Unused block: copy wholesale (it is zeroed at both ends in
			// the common case).
			copy(rep.mem[base+rel:], data[rel:min(rel+layout.BlockSize, len(data))])
			continue
		}
		blockEnd := rel + layout.BlockSize
		if blockEnd > len(data) {
			blockEnd = len(data)
		}
		for so := rel; so+class <= blockEnd; so += class {
			recovered := regionmem.ReadHeader(data, so)
			off := base + so
			local := regionmem.ReadHeader(rep.mem, off)
			take := regionmem.Version(recovered) > regionmem.Version(local)
			if !take && rep.repairing {
				take = regionmem.MaskLock(recovered) != regionmem.MaskLock(local) ||
					!bytes.Equal(rep.mem[off+regionmem.HeaderSize:off+class],
						data[so+regionmem.HeaderSize:so+class])
			}
			if !take {
				continue
			}
			// Lock with CAS, update, unlock.
			if regionmem.Locked(local) {
				continue // being updated by a newer transaction
			}
			if !rep.repairing {
				rep.dig.Unfold(off, regionmem.MaskLock(local),
					rep.mem[off+regionmem.HeaderSize:off+class])
			}
			copy(rep.mem[off:off+class], data[so:so+class])
			// Recovered state is stored unlocked.
			regionmem.WriteHeader(rep.mem, off,
				regionmem.Compose(regionmem.Version(recovered), false, regionmem.Allocated(recovered)))
			if !rep.repairing {
				rep.dig.Fold(off, regionmem.MaskLock(regionmem.ReadHeader(rep.mem, off)),
					rep.mem[off+regionmem.HeaderSize:off+class])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// finishDataRecovery marks the replica whole again. An audit repair ends
// here too: the digest is reseeded from a ground-truth scan (force-copied
// slots bypassed the incremental updates) and the auditing primary is told
// to re-verify, instead of the normal CM bookkeeping.
func (m *Machine) finishDataRecovery(rep *replica) {
	if !rep.needsDataRecovery {
		return
	}
	rep.needsDataRecovery = false
	if rep.recCtx.Valid() {
		m.trb.End(rep.recCtx, m.c.Eng.Now(), int64(rep.size))
		rep.recCtx = trace.Ctx{}
	}
	if rep.repairing {
		rep.repairing = false
		rep.dig.Reseed(audit.ScanRegion(rep.mem, m.c.Opts.Layout.BlockSize, rep.headers))
		m.c.Counters.Inc("audit_repairs_completed", 1)
		if p := m.primaryOf(rep.id); p >= 0 && p != m.ID {
			m.send(p, &proto.AuditRepairDone{
				AuditID: rep.repairAuditID, Config: m.config.ID, Region: rep.id, OK: true,
			})
		}
		return
	}
	m.c.Counters.Inc("regions_rereplicated", 1)
	m.c.noteRegionRecovered(rep.id)
	m.sendCtx(int(m.config.CM), &dataRecoveryDone{ConfigID: m.config.ID, Region: rep.id}, m.recoveryTraceCtx())
}

// onDataRecoveryDone is CM bookkeeping.
func (m *Machine) onDataRecoveryDone(*dataRecoveryDone) {}

// startAllocRecovery rebuilds a promoted primary's slab free lists by
// scanning allocation bits, paced at AllocScanBatch objects per
// AllocScanInterval (§5.5). Deallocations queue until the scan completes.
func (m *Machine) startAllocRecovery(rep *replica) {
	layout := m.c.Opts.Layout
	total := regionmem.ScanWork(layout, rep.headers)
	batches := (total + m.c.Opts.AllocScanBatch - 1) / m.c.Opts.AllocScanBatch
	duration := sim.Time(batches) * m.c.Opts.AllocScanInterval
	cfgAtStart := m.config.ID
	var actx trace.Ctx
	if m.trb != nil {
		actx = m.trb.Begin("recovery", "alloc-recovery", m.c.Eng.Now(),
			trace.RecoveryTraceBit|cfgAtStart, 0, int64(rep.id))
	}
	m.c.Eng.After(duration, func() {
		if !m.alive || m.config.ID != cfgAtStart || rep.alloc != nil {
			return
		}
		headers := make(map[int]int, len(rep.headers))
		for b, s := range rep.headers {
			headers[b] = s
		}
		// Rebuild doubles as a digest reseed point: the promoted primary's
		// digest is recomputed from the same full scan of the bytes.
		var dig audit.Digest
		rep.alloc = regionmem.RebuildWithDigest(layout, rep.mem, headers, &dig)
		rep.dig = dig
		m.installAllocHook(rep)
		rep.allocRecovering = false
		for _, off := range rep.freeQ {
			rep.alloc.Free(off)
		}
		rep.freeQ = nil
		if actx.Valid() {
			m.trb.End(actx, m.c.Eng.Now(), 0)
		}
		m.c.Counters.Inc("alloc_recovered", 1)
	})
}
