package core

import (
	"sort"

	"farm/internal/nvram"
	"farm/internal/proto"
	"farm/internal/regionmem"
)

// cmState is the configuration manager's authoritative view (§3): the
// region → replicas mapping, locality constraints, and allocation progress.
// It exists only on the machine currently acting as CM; a new CM rebuilds
// it during reconfiguration (the cost the paper measures in Figure 11).
type cmState struct {
	regions    map[uint32]*proto.RegionMap
	locality   map[uint32]uint32 // region → co-located target region
	nextRegion uint32

	pendingAllocs map[uint32]*allocPending

	// regionsActive tracks REGIONS-ACTIVE reports during recovery.
	regionsActive map[int]bool
}

type allocPending struct {
	rm        proto.RegionMap
	requester int
	reqID     uint64
	awaiting  map[int]bool
	failed    bool
}

func newCMState() *cmState {
	return &cmState{
		regions:       make(map[uint32]*proto.RegionMap),
		locality:      make(map[uint32]uint32),
		nextRegion:    1,
		pendingAllocs: make(map[uint32]*allocPending),
		regionsActive: make(map[int]bool),
	}
}

// AllocateRegion asks the CM for a new region, optionally co-located with
// the region containing hint (§3's locality constraint). cb receives the
// new region id.
func (m *Machine) AllocateRegion(hint uint32, cb func(region uint32, err error)) {
	req := &proto.AllocRegionReq{Size: m.c.Opts.Layout.RegionSize}
	if hint != 0 {
		req.Locality = hint
		req.HasHint = true
	}
	id := m.nextRPC
	m.nextRPC++
	m.rpcWaiters[id] = func(resp interface{}) {
		r := resp.(*proto.AllocRegionResp)
		if !r.OK {
			cb(0, ErrNoSpace)
			return
		}
		cp := r.Map
		m.mappings[cp.Region] = &cp
		cb(cp.Region, nil)
	}
	m.send(int(m.config.CM), &rpcEnvelope{ID: id, From: m.ID, Body: req})
}

// onAllocRegionReq runs at the CM: pick replicas, then run the two-phase
// prepare/commit of §3 so the mapping is valid and replicated at all region
// replicas before use.
func (m *Machine) onAllocRegionReq(from int, reqID uint64, req *proto.AllocRegionReq) {
	if m.cm == nil {
		m.send(from, &rpcReply{ID: reqID, Body: &proto.AllocRegionResp{}})
		return
	}
	var target *proto.RegionMap
	if req.HasHint {
		target = m.cm.regions[req.Locality]
	}
	replicas := m.pickReplicas(nil, m.c.Opts.Replication, target, int(m.cm.nextRegion))
	if len(replicas) < m.c.Opts.Replication {
		m.send(from, &rpcReply{ID: reqID, Body: &proto.AllocRegionResp{}})
		return
	}
	region := m.cm.nextRegion
	m.cm.nextRegion++
	rm := proto.RegionMap{
		Region:            region,
		Replicas:          replicas,
		Size:              req.Size,
		LastPrimaryChange: m.config.ID,
		LastReplicaChange: m.config.ID,
	}
	if req.HasHint && target != nil {
		m.cm.locality[region] = req.Locality
	}
	p := &allocPending{rm: rm, requester: from, reqID: reqID, awaiting: make(map[int]bool)}
	m.cm.pendingAllocs[region] = p
	for _, r := range replicas {
		p.awaiting[int(r)] = true
		m.send(int(r), &proto.AllocRegionPrepare{Region: region, Size: req.Size})
	}
}

// onAllocPrepare runs at a selected replica: reserve the NVRAM.
func (m *Machine) onAllocPrepare(src int, req *proto.AllocRegionPrepare) {
	_, err := m.store.Allocate(toNVRAM(req.Region), req.Size)
	m.send(src, &proto.AllocRegionPrepared{Region: req.Region, OK: err == nil})
}

// onAllocPrepared collects prepare responses at the CM and commits or
// aborts.
func (m *Machine) onAllocPrepared(src int, resp *proto.AllocRegionPrepared) {
	if m.cm == nil {
		return
	}
	p := m.cm.pendingAllocs[resp.Region]
	if p == nil || !p.awaiting[src] {
		return
	}
	delete(p.awaiting, src)
	if !resp.OK {
		p.failed = true
	}
	if len(p.awaiting) > 0 {
		return
	}
	delete(m.cm.pendingAllocs, resp.Region)
	if p.failed {
		for _, r := range p.rm.Replicas {
			m.send(int(r), &proto.AllocRegionCommit{Region: resp.Region}) // empty map = abort
		}
		m.send(p.requester, &rpcReply{ID: p.reqID, Body: &proto.AllocRegionResp{}})
		return
	}
	rm := p.rm
	m.cm.regions[rm.Region] = &rm
	cp := rm
	m.mappings[rm.Region] = &cp
	for _, r := range rm.Replicas {
		m.send(int(r), &proto.AllocRegionCommit{Region: rm.Region, Map: rm})
	}
	// Announce the mapping to every other member so caches stay warm.
	for _, member := range m.config.Machines {
		m.send(int(member), &proto.MappingResp{OK: true, Map: rm})
	}
	m.send(p.requester, &rpcReply{ID: p.reqID, Body: &proto.AllocRegionResp{OK: true, Map: rm}})
}

// onAllocCommit finalizes (or aborts) a prepared region at a replica.
func (m *Machine) onAllocCommit(msg *proto.AllocRegionCommit) {
	if len(msg.Map.Replicas) == 0 {
		m.store.Free(toNVRAM(msg.Region))
		return
	}
	mem := m.store.Region(toNVRAM(msg.Region))
	if mem == nil {
		return
	}
	primary := int(msg.Map.Replicas[0]) == m.ID
	r := &replica{
		id:        msg.Region,
		mem:       mem,
		size:      msg.Map.Size,
		primary:   primary,
		active:    true,
		headers:   make(map[int]int),
		lockOwner: make(map[uint32]proto.TxID),
	}
	m.replicas[msg.Region] = r
	cp := msg.Map
	m.mappings[msg.Region] = &cp
	if primary {
		r.alloc = regionmem.NewAllocator(m.c.Opts.Layout, mem)
		m.installAllocHook(r)
	}
}

// pickReplicas chooses count machines for a region, balancing hosted
// region counts subject to failure-domain separation, skipping machines in
// exclude. A locality target pins placement to the target's replica set
// (§3: "the region is co-located with a target region when the application
// specifies a locality constraint").
func (m *Machine) pickReplicas(exclude map[uint16]bool, count int, target *proto.RegionMap, rotate int) []uint16 {
	if target != nil {
		var out []uint16
		for _, r := range target.Replicas {
			if m.config.Member(r) && !exclude[r] {
				out = append(out, r)
			}
			if len(out) == count {
				return out
			}
		}
		// Target shrank below count: fall through and fill the remainder.
		if len(out) > 0 {
			extra := m.fillReplicas(out, exclude, count, rotate)
			return extra
		}
	}
	return m.fillReplicas(nil, exclude, count, rotate)
}

// fillReplicas extends a partial replica list to count machines. Ties in
// load are broken by a rotation so primaries spread across the cluster.
func (m *Machine) fillReplicas(have []uint16, exclude map[uint16]bool, count, rotate int) []uint16 {
	load := make(map[uint16]int)
	if m.cm != nil {
		for _, rm := range m.cm.regions {
			for _, r := range rm.Replicas {
				load[r]++
			}
		}
	}
	usedDomains := make(map[int]bool)
	used := make(map[uint16]bool)
	for _, r := range have {
		used[r] = true
		usedDomains[m.config.Domains[r]] = true
	}
	candidates := candidates0(m)
	n := len(candidates)
	rank := func(x uint16) int { return (int(x) + rotate) % max(n, 1) }
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if load[a] != load[b] {
			return load[a] < load[b]
		}
		return rank(a) < rank(b)
	})
	atCapacity := func(c uint16) bool {
		cap := m.c.Opts.MaxRegionsPerMachine
		return cap > 0 && load[c] >= cap
	}
	out := append([]uint16(nil), have...)
	// First pass: respect failure-domain separation and capacity (§3).
	for _, c := range candidates {
		if len(out) == count {
			return out
		}
		if used[c] || exclude[c] || atCapacity(c) || usedDomains[m.config.Domains[c]] {
			continue
		}
		out = append(out, c)
		used[c] = true
		usedDomains[m.config.Domains[c]] = true
	}
	// Second pass: relax domain separation if the cluster is too small
	// (capacity is never relaxed).
	for _, c := range candidates {
		if len(out) == count {
			return out
		}
		if used[c] || exclude[c] || atCapacity(c) {
			continue
		}
		out = append(out, c)
		used[c] = true
	}
	return out
}

// candidates0 snapshots the membership for placement.
func candidates0(m *Machine) []uint16 {
	return append([]uint16(nil), m.config.Machines...)
}

// toNVRAM converts a FaRM region id to its NVRAM store key.
func toNVRAM(region uint32) nvram.RegionID { return nvram.RegionID(region) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
