package core

import (
	"errors"
	"testing"

	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/sim"
)

// collectAudit runs a cluster-wide audit to completion and returns the
// per-region reports.
func collectAudit(t *testing.T, c *Cluster) []AuditReport {
	t.Helper()
	var reports []AuditReport
	done := false
	c.StartAudit(func(rs []AuditReport) { reports, done = rs, true })
	runUntil(t, c, sim.Second, func() bool { return done })
	return reports
}

// conclusiveAudit retries collectAudit until every report is conclusive
// (an audit racing background truncation can legitimately skip).
func conclusiveAudit(t *testing.T, c *Cluster) []AuditReport {
	t.Helper()
	for attempt := 0; ; attempt++ {
		reports := collectAudit(t, c)
		allDone := true
		for _, r := range reports {
			if !r.Conclusive {
				allDone = false
			}
		}
		if allDone {
			return reports
		}
		if attempt == 3 {
			t.Fatalf("audit still inconclusive after %d attempts: %v", attempt+1, reports)
		}
		c.RunFor(20 * sim.Millisecond)
	}
}

func TestAuditCleanAfterWorkload(t *testing.T) {
	c, _ := testCluster(t, Options{})
	m := c.Machine(1)
	addrs := make([]proto.Addr, 0, 8)
	for i := 0; i < 8; i++ {
		addrs = append(addrs, writeObject(t, c, m, []byte{byte(i), 1, 2, 3}))
	}
	// Update a few and free one, then let truncation reach the backups.
	for i := 0; i < 3; i++ {
		done := false
		tx := m.Begin(i)
		addr := addrs[i]
		tx.Read(addr, 4, func(_ []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			tx.Write(addr, []byte{0xFF, byte(i), 0, 0})
			tx.Commit(func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				done = true
			})
		})
		runUntil(t, c, sim.Second, func() bool { return done })
	}
	c.RunFor(50 * sim.Millisecond)

	for _, r := range conclusiveAudit(t, c) {
		if !r.Clean {
			t.Fatalf("audit not clean: %v", r)
		}
	}
	if c.Counters.Get("audit_divergence") != 0 {
		t.Fatalf("false positive: %s", c.Counters)
	}
}

func TestAuditDetectsLocalizesAndRepairsCorruption(t *testing.T) {
	c, region := testCluster(t, Options{AuditRepair: true})
	m := c.Machine(0)
	var addrs []proto.Addr
	for i := 0; i < 6; i++ {
		addrs = append(addrs, writeObject(t, c, m, []byte{byte(i), 9, 9, 9}))
	}
	c.RunFor(50 * sim.Millisecond)

	victim, off, ok := c.CorruptBackupObject(region, true)
	if !ok {
		t.Fatal("no allocated backup object to corrupt")
	}

	reports := conclusiveAudit(t, c)
	var hit *AuditReport
	for i := range reports {
		if !reports[i].Clean || reports[i].Backup >= 0 {
			if hit != nil {
				t.Fatalf("multiple divergences: %v and %v", *hit, reports[i])
			}
			hit = &reports[i]
		}
	}
	if hit == nil {
		t.Fatalf("corruption not detected: %v", reports)
	}
	// Localization must name the exact machine and object.
	if hit.Region != region || hit.Backup != victim || hit.Off != off {
		t.Fatalf("localization: got region %d backup m%d off %d, want region %d m%d off %d (%v)",
			hit.Region, hit.Backup, hit.Off, region, victim, off, *hit)
	}
	if !hit.Repaired {
		t.Fatalf("corruption not repaired: %v", *hit)
	}

	// The repaired backup's bytes must match the primary's again, and a
	// fresh audit must be clean.
	prim := c.Machine(int(c.Machine(0).mappings[region].Replicas[0])).replicas[region]
	rep := c.Machine(victim).replicas[region]
	pw, pd := regionmem.ReadObject(prim.mem, off, 4)
	bw, bd := regionmem.ReadObject(rep.mem, off, 4)
	if regionmem.MaskLock(pw) != regionmem.MaskLock(bw) || string(pd) != string(bd) {
		t.Fatalf("backup still divergent after repair: %x/%q vs %x/%q", pw, pd, bw, bd)
	}
	for _, r := range conclusiveAudit(t, c) {
		if !r.Clean {
			t.Fatalf("re-audit after repair not clean: %v", r)
		}
	}
	// Workload data must have survived the repair.
	if got := readObject(t, c, c.Machine(3), addrs[0], 4); got[1] != 9 {
		t.Fatalf("data damaged by repair: %v", got)
	}
}

func TestAuditDetectionWithoutRepair(t *testing.T) {
	c, region := testCluster(t, Options{}) // AuditRepair off
	writeObject(t, c, c.Machine(0), []byte("solo"))
	c.RunFor(50 * sim.Millisecond)

	victim, off, ok := c.CorruptBackupObject(region, true)
	if !ok {
		t.Fatal("nothing to corrupt")
	}
	reports := conclusiveAudit(t, c)
	found := false
	for _, r := range reports {
		if r.Region == region && !r.Clean {
			found = true
			if r.Backup != victim || r.Off != off || r.Repaired {
				t.Fatalf("report: %v, want backup m%d off %d unrepaired", r, victim, off)
			}
		}
	}
	if !found {
		t.Fatalf("divergence not reported: %v", reports)
	}
	// Without repair the corruption persists: a second audit reports it
	// again (detection is not destructive).
	again := conclusiveAudit(t, c)
	stillThere := false
	for _, r := range again {
		if r.Region == region && !r.Clean {
			stillThere = true
		}
	}
	if !stillThere {
		t.Fatalf("divergence vanished without repair: %v", again)
	}
}

// TestStaleMappingSurfacesError pins the retry budget: a read of a region
// that no machine can resolve must surface ErrUnavailable after the capped
// exponential backoff burns the mapping-retry budget, not spin forever.
func TestStaleMappingSurfacesError(t *testing.T) {
	c, _ := testCluster(t, Options{})
	m := c.Machine(2)
	start := c.Now()
	var got error
	done := false
	tx := m.Begin(0)
	tx.Read(proto.Addr{Region: 4242, Off: 16}, 4, func(_ []byte, err error) {
		got, done = err, true
	})
	runUntil(t, c, 5*sim.Second, func() bool { return done })
	if !errors.Is(got, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", got)
	}
	// Budget: ~40 retries with 2 ms cap ≈ 73 ms of backoff plus fetch
	// round trips — an order of magnitude under the old 200-retry spin,
	// and strictly bounded.
	if elapsed := c.Now() - start; elapsed > 500*sim.Millisecond {
		t.Fatalf("gave up after %v, want bounded backoff", elapsed)
	}
}
