package core

import (
	"strings"
	"testing"

	"farm/internal/sim"
)

// TestUnknownMessageDroppedAtSend is the regression test for the
// enqueue nil-handler ordering: an unregistered message type must hit the
// msg-unknown drop path at the send side — counted, never transmitted,
// never panicking — with coalescing enabled, disabled, and when it is the
// first message ever enqueued (the path that touched the handler before
// the nil guard).
func TestUnknownMessageDroppedAtSend(t *testing.T) {
	type bogusMsg struct{ X int }
	for _, interval := range []sim.Time{0, CoalesceDisabled} {
		c := New(Options{NumMachines: 2, Seed: 1, CoalesceInterval: interval})
		wireBefore := c.Net.Counters.Get("msg_send")
		c.Machine(0).send(1, &bogusMsg{X: 1})
		c.RunFor(sim.Millisecond)
		if n := c.Counters.Get("msg unknown"); n != 1 {
			t.Fatalf("interval %d: msg unknown = %d, want 1", interval, n)
		}
		// Protocol traffic keeps flowing, so compare against a twin run
		// that never sends the bogus message: the wire send counts must
		// match exactly — the unknown type contributed zero fabric sends.
		c2 := New(Options{NumMachines: 2, Seed: 1, CoalesceInterval: interval})
		wire2Before := c2.Net.Counters.Get("msg_send")
		c2.RunFor(sim.Millisecond)
		sent := c.Net.Counters.Get("msg_send") - wireBefore
		sent2 := c2.Net.Counters.Get("msg_send") - wire2Before
		if sent != sent2 {
			t.Fatalf("interval %d: unknown message reached the wire (%d vs %d sends)",
				interval, sent, sent2)
		}
	}
}

// TestOptionValidation asserts New rejects malformed coalescing knobs with
// a descriptive panic, and accepts the documented spellings (0 = library
// default, CoalesceDisabled = off).
func TestOptionValidation(t *testing.T) {
	mustPanic := func(name string, o Options, wantSub string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: New accepted invalid options", name)
			}
			if err, ok := r.(error); !ok || !strings.Contains(err.Error(), wantSub) {
				t.Fatalf("%s: panic %v does not mention %q", name, r, wantSub)
			}
		}()
		New(o)
	}
	mustPanic("interval", Options{NumMachines: 2, CoalesceInterval: -2 * sim.Nanosecond}, "CoalesceInterval")
	mustPanic("maxbytes", Options{NumMachines: 2, CoalesceMaxBytes: -1}, "CoalesceMaxBytes")
	mustPanic("maxmsgs", Options{NumMachines: 2, CoalesceMaxMsgs: -1}, "CoalesceMaxMsgs")
	mustPanic("mininterval", Options{NumMachines: 2, CoalesceMinInterval: -sim.Nanosecond}, "CoalesceMinInterval")
	mustPanic("maxinterval", Options{NumMachines: 2, CoalesceMaxInterval: -sim.Nanosecond}, "CoalesceMaxInterval")
	mustPanic("min>max", Options{NumMachines: 2,
		CoalesceMinInterval: 2 * sim.Microsecond, CoalesceMaxInterval: sim.Microsecond}, "exceeds")

	// The documented spellings must construct clean clusters.
	New(Options{NumMachines: 2})                                     // 0 = default (adaptive)
	New(Options{NumMachines: 2, CoalesceInterval: CoalesceDisabled}) // explicit off
	New(Options{NumMachines: 2, CoalescePolicy: CoalesceFixed})      // A/B baseline
	New(Options{NumMachines: 2, CoalesceInterval: sim.Microsecond})  // custom interval
}

// TestFlushOnBudgetOrdering streams enough same-destination messages to
// cross the message-count budget several times and asserts (a) delivery
// order is exactly enqueue order across budget-flush boundaries, (b) the
// budget path actually fired, and (c) the stream still coalesced — far
// fewer fabric frames than messages.
func TestFlushOnBudgetOrdering(t *testing.T) {
	const n = 80
	c := New(Options{NumMachines: 2, Seed: 5}) // adaptive default, budget 16 msgs
	var got []int
	var done bool
	c.Machine(1).SetAppHandler(func(_ int, msg interface{}) {
		got = append(got, msg.(int))
		done = len(got) == n
	})
	c.RunFor(sim.Millisecond) // settle boot traffic
	budgetBefore := c.Counters.Get("coalesce_flush_budget")
	sendsBefore := c.Net.Counters.Get("msg_send")
	for i := 0; i < n; i++ {
		c.Machine(0).SendApp(1, i)
	}
	runUntil(t, c, sim.Second, func() bool { return done })
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery out of order at %d: got %v", i, got[:i+1])
		}
	}
	if b := c.Counters.Get("coalesce_flush_budget") - budgetBefore; b == 0 {
		t.Fatal("message budget never triggered a flush")
	}
	if sends := c.Net.Counters.Get("msg_send") - sendsBefore; sends >= n {
		t.Fatalf("budget flushing destroyed coalescing: %d sends for %d messages", sends, n)
	}
}

// TestDoorbellVsTimerFlushEquivalence sends the same message stream twice
// — once flushed by an explicit doorbell, once left to the flush timer —
// and asserts the delivered order is identical. The doorbell may change
// *when* a frame departs, never *what* it carries or in what order.
func TestDoorbellVsTimerFlushEquivalence(t *testing.T) {
	const n = 6
	run := func(bell bool) ([]int, sim.Time) {
		// A long interval separates the two mechanisms cleanly: the timer
		// run (fixed policy: no budgets, no adaptation) waits it out, the
		// doorbell run must not.
		policy := CoalesceAdaptive
		if !bell {
			policy = CoalesceFixed
		}
		c := New(Options{NumMachines: 2, Seed: 9,
			CoalesceInterval: 200 * sim.Microsecond, CoalescePolicy: policy})
		var got []int
		var doneAt sim.Time
		c.Machine(1).SetAppHandler(func(_ int, msg interface{}) {
			got = append(got, msg.(int))
			if len(got) == n {
				doneAt = c.Eng.Now()
			}
		})
		c.RunFor(sim.Millisecond)
		start := c.Eng.Now()
		m := c.Machine(0)
		for i := 0; i < n-1; i++ {
			m.send(1, &appMsg{Body: i})
		}
		if bell {
			m.sendDoorbell(1, &appMsg{Body: n - 1})
		} else {
			m.send(1, &appMsg{Body: n - 1})
		}
		runUntil(t, c, sim.Second, func() bool { return len(got) == n })
		return got, doneAt - start
	}

	belled, bellLatency := run(true)
	timed, timerLatency := run(false)
	for i := range belled {
		if belled[i] != timed[i] {
			t.Fatalf("doorbell changed delivery order: %v vs %v", belled, timed)
		}
	}
	if bellLatency >= 200*sim.Microsecond {
		t.Fatalf("doorbell run still waited out the flush timer: %v", bellLatency)
	}
	if timerLatency < 200*sim.Microsecond {
		t.Fatalf("timer run flushed before its interval: %v", timerLatency)
	}
}

// TestAdaptiveIntervalStretchesAndShrinks drives one destination hard
// enough to stretch its flush interval via budget flushes, then goes idle
// and sends sparsely; the shrink path must bring the interval back down.
// Both directions are observed through the policy's own counters.
func TestAdaptiveIntervalStretchesAndShrinks(t *testing.T) {
	c := New(Options{NumMachines: 2, Seed: 11})
	delivered := 0
	c.Machine(1).SetAppHandler(func(int, interface{}) { delivered++ })
	c.RunFor(sim.Millisecond)

	// Sustained load: several budget crossings stretch the interval.
	for i := 0; i < 200; i++ {
		c.Machine(0).SendApp(1, i)
	}
	runUntil(t, c, sim.Second, func() bool { return delivered >= 200 })
	q := c.Machine(0).tp.queues[1]
	if q == nil {
		t.Fatal("no send queue materialized")
	}
	stretched := q.interval
	if stretched <= c.Opts.CoalesceInterval {
		t.Fatalf("sustained load did not stretch the interval: %v <= base %v",
			stretched, c.Opts.CoalesceInterval)
	}

	// Idle then sparse: each lone message arms after a long empty gap, so
	// the interval must walk back down to the minimum.
	for i := 0; i < 8; i++ {
		c.Machine(0).SendApp(1, 1000+i)
		c.RunFor(sim.Millisecond)
	}
	if q.interval >= stretched {
		t.Fatalf("idle traffic did not shrink the interval: %v (was %v)", q.interval, stretched)
	}
	if q.interval != c.Opts.CoalesceMinInterval {
		t.Fatalf("sparse traffic should settle at the minimum interval %v, got %v",
			c.Opts.CoalesceMinInterval, q.interval)
	}
}
