package core

import (
	"testing"

	"farm/internal/sim"
)

// Lease-protocol unit tests (§5.1).

func TestLeaseHandshakeKeepsClusterStable(t *testing.T) {
	// With everything healthy, no lease may expire over many renewals —
	// at durations each variant supports (§6.5): the shipping variant at
	// 5 ms, the normal-priority thread variant at 100 ms.
	for variant, lease := range map[LeaseVariant]sim.Time{
		LeaseUDThreadPri: 5 * sim.Millisecond,
		LeaseUDThread:    100 * sim.Millisecond,
	} {
		c := New(Options{NumMachines: 5, Seed: 17, LeaseDuration: lease, LeaseVariant: variant})
		c.RunFor(2 * sim.Second)
		if got := c.Counters.Get("lease_expiry"); got != 0 {
			t.Fatalf("%v: %d expiries on an idle healthy cluster", variant, got)
		}
		for _, m := range c.Machines {
			if m.config.ID != 1 {
				t.Fatalf("%v: spurious reconfiguration to %d", variant, m.config.ID)
			}
		}
	}
}

func TestLeaseRenewalIntervalQuantization(t *testing.T) {
	c := New(Options{NumMachines: 2, Seed: 1})
	lm := c.Machine(1).lease
	cases := []struct {
		lease sim.Time
		want  sim.Time
	}{
		{10 * sim.Millisecond, 2 * sim.Millisecond},
		{5 * sim.Millisecond, 1 * sim.Millisecond},
		{2 * sim.Millisecond, 500 * sim.Microsecond}, // 0.4ms rounds up to timer res
		{1 * sim.Millisecond, 500 * sim.Microsecond},
	}
	for _, tc := range cases {
		lm.duration = tc.lease
		if got := lm.renewInterval(); got != tc.want {
			t.Errorf("lease %v: interval %v, want %v (timer resolution %v)",
				tc.lease, got, tc.want, timerResolution)
		}
	}
}

func TestLeaseExpiryCountingWithRecoveryDisabled(t *testing.T) {
	// The Figure 16 methodology: expiries are counted, configuration never
	// changes.
	o := Options{NumMachines: 4, Seed: 23, LeaseDuration: 2 * sim.Millisecond, LeaseVariant: LeaseRPC}
	c := New(o)
	c.DisableRecovery = true
	c.RunFor(3 * sim.Second)
	if c.Counters.Get("lease_expiry") == 0 {
		t.Fatal("RPC variant with 2ms leases should show false positives")
	}
	for _, m := range c.Machines {
		if m.config.ID != 1 {
			t.Fatal("recovery ran despite DisableRecovery")
		}
	}
}

func TestLeaseVariantOrderingUnderStress(t *testing.T) {
	// The Figure 16 ladder: expiry counts must be monotone across
	// variants at a 5 ms lease.
	counts := map[LeaseVariant]uint64{}
	for _, v := range []LeaseVariant{LeaseRPC, LeaseUD, LeaseUDThread, LeaseUDThreadPri} {
		c := New(Options{NumMachines: 4, Seed: 29, LeaseDuration: 5 * sim.Millisecond, LeaseVariant: v})
		c.DisableRecovery = true
		c.RunFor(4 * sim.Second)
		counts[v] = c.Counters.Get("lease_expiry")
	}
	if counts[LeaseUDThreadPri] != 0 {
		t.Fatalf("UD+thread+pri at 5ms: %d expiries, want 0", counts[LeaseUDThreadPri])
	}
	if counts[LeaseRPC] == 0 || counts[LeaseUD] == 0 {
		t.Fatalf("shared-path variants show no expiries: %v", counts)
	}
	if counts[LeaseRPC] < counts[LeaseUD] {
		t.Fatalf("RPC (%d) should be worse than UD (%d)", counts[LeaseRPC], counts[LeaseUD])
	}
}

func TestDeadCMIsDetectedByMembers(t *testing.T) {
	c := New(Options{NumMachines: 4, Seed: 31, LeaseDuration: 3 * sim.Millisecond})
	c.RunFor(10 * sim.Millisecond)
	c.Kill(0)
	c.RunFor(200 * sim.Millisecond)
	// A backup CM must have taken over.
	for _, m := range c.Machines[1:] {
		if m.config.CM == 0 {
			t.Fatalf("machine %d still trusts the dead CM", m.ID)
		}
	}
}

func TestLeaseResetOnNewConfig(t *testing.T) {
	// After a CM change, leases must be re-established with the new CM
	// and keep the cluster stable afterwards.
	c := New(Options{NumMachines: 5, Seed: 37, LeaseDuration: 4 * sim.Millisecond})
	c.RunFor(10 * sim.Millisecond)
	c.Kill(0)
	c.RunFor(300 * sim.Millisecond)
	cfgAfter := c.Machine(1).config.ID
	// No further reconfigurations over a long quiet period.
	c.RunFor(1 * sim.Second)
	for _, m := range c.Machines[1:] {
		if m.config.ID != cfgAfter {
			t.Fatalf("config drifted from %d to %d after CM failover", cfgAfter, m.config.ID)
		}
	}
}

func TestZKOutageBlocksReconfigurationThenRecovers(t *testing.T) {
	// Vertical Paxos: without a Zookeeper majority no configuration can
	// change (§5: availability needs "a majority of replicas in the
	// Zookeeper service"). Once ZK returns, lease expiry retries drive the
	// reconfiguration through.
	c := New(Options{NumMachines: 5, Seed: 41, LeaseDuration: 4 * sim.Millisecond})
	c.RunFor(10 * sim.Millisecond)
	c.ZK.SetAvailable(false)
	c.Kill(3)
	c.RunFor(300 * sim.Millisecond)
	for _, m := range c.Machines {
		if m.Alive() && m.ConfigID() != 1 {
			t.Fatalf("configuration changed without Zookeeper: %d", m.ConfigID())
		}
	}
	c.ZK.SetAvailable(true)
	c.RunFor(400 * sim.Millisecond)
	for _, m := range c.Machines {
		if m.Alive() && m.config.Member(3) {
			t.Fatalf("machine %d still sees the victim after ZK recovery", m.ID)
		}
	}
}

func TestHierarchicalLeasesStableAndDetecting(t *testing.T) {
	// §5.1's two-level hierarchy: stable when healthy, detects a member
	// failure within ~2 lease durations (leader detects, reports to CM).
	o := Options{NumMachines: 9, Seed: 47, LeaseDuration: 5 * sim.Millisecond, LeaseGroupSize: 3}
	c := New(o)
	c.RunFor(500 * sim.Millisecond)
	if got := c.Counters.Get("lease_expiry"); got != 0 {
		t.Fatalf("%d expiries on a healthy hierarchical cluster", got)
	}
	for _, m := range c.Machines {
		if m.ConfigID() != 1 {
			t.Fatalf("spurious reconfiguration: %d", m.ConfigID())
		}
	}

	// Kill a NON-leader member (machine 4 is in group 1, led by 3).
	killAt := c.Now()
	c.Kill(4)
	c.RunFor(300 * sim.Millisecond)
	suspectAt, ok := c.TraceTime("suspect", killAt)
	if !ok {
		t.Fatal("member failure never detected through the hierarchy")
	}
	detect := suspectAt - killAt
	if detect > 3*o.LeaseDuration {
		t.Fatalf("hierarchical detection took %v (> 3 leases)", detect)
	}
	for _, m := range c.Machines {
		if m.Alive() && m.config.Member(4) {
			t.Fatalf("machine %d still sees the victim", m.ID)
		}
	}
	t.Logf("hierarchical member detection in %v (flat would be ≤ %v)", detect, o.LeaseDuration)
}

func TestHierarchicalLeaderFailure(t *testing.T) {
	o := Options{NumMachines: 9, Seed: 53, LeaseDuration: 5 * sim.Millisecond, LeaseGroupSize: 3}
	c := New(o)
	c.RunFor(30 * sim.Millisecond)
	// Machine 3 leads group 1: the CM holds its lease directly.
	c.Kill(3)
	c.RunFor(300 * sim.Millisecond)
	for _, m := range c.Machines {
		if m.Alive() && m.config.Member(3) {
			t.Fatalf("machine %d still sees the dead leader", m.ID)
		}
	}
	// The group's survivors re-home to the next leader (4) and stay
	// stable: no further reconfigurations.
	cfg := c.Machine(0).ConfigID()
	c.RunFor(500 * sim.Millisecond)
	if c.Machine(0).ConfigID() != cfg {
		t.Fatalf("config churn after leader failover: %d -> %d", cfg, c.Machine(0).ConfigID())
	}
}

// Asymmetric-partition coverage (the nemesis layer's hardest lease cases).

// TestRxCutMachineIsEvicted: machine 3 can send (its lease requests reach
// the CM, so the CM keeps granting) but receives nothing — every grant is
// lost. Its own CM lease expires, it complains to the CM's successors, and
// the ensuing reconfiguration must evict it (probes into it fail), leaving
// the survivors agreeing on a configuration without it.
func TestRxCutMachineIsEvicted(t *testing.T) {
	c := New(Options{NumMachines: 6, Seed: 37, LeaseDuration: 3 * sim.Millisecond})
	c.RunFor(10 * sim.Millisecond)
	c.IsolateInbound(3)
	c.RunFor(400 * sim.Millisecond)
	c.RestoreMachine(3)
	c.RunFor(100 * sim.Millisecond)

	var cfg uint64
	for _, m := range c.Machines {
		if !m.alive || m.ID == 3 {
			continue
		}
		if !m.config.Member(uint16(m.ID)) {
			continue // itself evicted in the shuffle; judged by survivors
		}
		if m.config.Member(3) {
			t.Fatalf("machine %d still counts the deaf machine 3 as a member (config %d)", m.ID, m.config.ID)
		}
		if cfg == 0 {
			cfg = m.config.ID
		} else if m.config.ID != cfg {
			t.Fatalf("surviving members disagree: %d vs %d", m.config.ID, cfg)
		}
	}
	if cfg <= 1 {
		t.Fatalf("no reconfiguration happened (config %d)", cfg)
	}
}

// TestTxCutMachineIsEvicted: machine 2 hears everything but nothing it
// sends gets out — its lease requests never reach the CM, so the CM expires
// it and evicts it. NEW-CONFIG goes only to the new configuration's
// members, so the evicted machine never hears of its eviction; safety rests
// on it fencing itself: its own CM lease expires, its takeover probes fail
// (it is in the minority), and clients stay blocked from suspicion on.
func TestTxCutMachineIsEvicted(t *testing.T) {
	c := New(Options{NumMachines: 6, Seed: 41, LeaseDuration: 3 * sim.Millisecond})
	c.RunFor(10 * sim.Millisecond)
	c.IsolateOutbound(2)
	c.RunFor(300 * sim.Millisecond)

	cm := c.Machine(0)
	if cm.config.Member(2) {
		t.Fatalf("CM still counts the mute machine 2 as a member (config %d)", cm.config.ID)
	}
	mute := c.Machine(2)
	if mute.config.ID >= cm.config.ID {
		t.Fatalf("mute machine advanced to config %d despite sending nothing", mute.config.ID)
	}
	if !mute.clientsBlocked {
		t.Fatal("evicted machine that never learned the new config must fence clients")
	}
	for _, m := range c.Machines {
		if m.alive && m.config.Member(uint16(m.ID)) && m.ID != 2 && m.config.ID != cm.config.ID {
			t.Fatalf("member %d at config %d, CM at %d", m.ID, m.config.ID, cm.config.ID)
		}
	}
}

// TestReconfigSurvivesLostNewConfigAck: a member whose inbound links die
// right as reconfiguration starts can never receive NEW-CONFIG; the ack
// timeout must evict it instead of wedging the protocol with every client
// blocked forever.
func TestReconfigSurvivesLostNewConfigAck(t *testing.T) {
	c := New(Options{NumMachines: 6, Seed: 43, LeaseDuration: 3 * sim.Millisecond})
	c.RunFor(10 * sim.Millisecond)
	// Kill 5 to force a reconfiguration, and simultaneously deafen 4 so it
	// cannot ack the resulting NEW-CONFIG.
	c.Kill(5)
	c.IsolateInbound(4)
	c.RunFor(500 * sim.Millisecond)
	c.RestoreMachine(4)
	c.RunFor(100 * sim.Millisecond)

	cm := -1
	for _, m := range c.Machines {
		if m.alive && m.IsCM() && m.config.Member(uint16(m.ID)) {
			cm = m.ID
			break
		}
	}
	if cm == -1 {
		t.Fatal("no live CM after reconfiguration under a deaf member")
	}
	cfg := c.Machine(cm).config
	if cfg.Member(5) || cfg.Member(4) {
		t.Fatalf("config %d retains dead (5) or deaf (4) member: %v", cfg.ID, cfg.Machines)
	}
	// The commit must have gone through: members of the final config run
	// with leases armed (clients unblocked), not stuck awaiting COMMIT.
	for _, mem := range cfg.Machines {
		m := c.Machine(int(mem))
		if !m.configCommitted {
			t.Fatalf("member %d never saw NEW-CONFIG-COMMIT for config %d", m.ID, cfg.ID)
		}
	}
}
