package core

import (
	"testing"

	"farm/internal/history"
	"farm/internal/proto"
	"farm/internal/sim"
)

// TestHistoryRecordsTxLifecycle drives a few transactions with recording
// enabled and checks the events carry the facts the checker needs: invoke/
// complete intervals, read versions, write versions/values, outcomes.
func TestHistoryRecordsTxLifecycle(t *testing.T) {
	c, _ := testCluster(t, Options{History: true})
	if c.Hist == nil {
		t.Fatal("recorder not constructed")
	}
	m := c.Machine(1)

	addr := writeObject(t, c, m, []byte{1, 2, 3, 4}) // alloc+commit
	_ = readObject(t, c, m, addr, 4)                 // read-only commit

	// Update transaction.
	var done bool
	tx := m.Begin(2)
	tx.Read(addr, 4, func(data []byte, err error) {
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		tx.Write(addr, []byte{5, 6, 7, 8})
		tx.Commit(func(err error) {
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
			done = true
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })

	// User abort.
	tx2 := m.Begin(0)
	var aborted bool
	tx2.Read(addr, 4, func(data []byte, err error) {
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		tx2.Abort()
		aborted = true
	})
	runUntil(t, c, sim.Second, func() bool { return aborted })

	h := c.Hist.Export()
	// Events: the region-allocation path runs no transactions, so we see
	// exactly our four (plus none from the system).
	if len(h.Events) != 4 {
		t.Fatalf("want 4 events, got %d: %+v", len(h.Events), h.Events)
	}
	alloc, ro, upd, ua := h.Events[0], h.Events[1], h.Events[2], h.Events[3]

	if alloc.Outcome != history.Committed || len(alloc.Writes) != 1 || !alloc.Writes[0].Alloc {
		t.Fatalf("alloc event: %+v", alloc)
	}
	if alloc.Writes[0].Addr != addr {
		t.Fatalf("alloc addr %v want %v", alloc.Writes[0].Addr, addr)
	}
	if alloc.Complete <= alloc.Invoke {
		t.Fatalf("alloc interval [%d,%d]", alloc.Invoke, alloc.Complete)
	}

	if ro.Outcome != history.Committed || len(ro.Reads) != 1 || len(ro.Writes) != 0 {
		t.Fatalf("read-only event: %+v", ro)
	}
	// The read observed the version the alloc installed: alloc observed
	// version +1.
	if ro.Reads[0].Version != alloc.Writes[0].Version+1 {
		t.Fatalf("read version %d, want %d", ro.Reads[0].Version, alloc.Writes[0].Version+1)
	}

	if upd.Outcome != history.Committed || len(upd.Reads) != 1 || len(upd.Writes) != 1 {
		t.Fatalf("update event: %+v", upd)
	}
	if upd.Writes[0].Version != upd.Reads[0].Version {
		t.Fatalf("update locks at its read version: %+v", upd)
	}
	if string(upd.Writes[0].Value) != string([]byte{5, 6, 7, 8}) {
		t.Fatalf("update value: %+v", upd.Writes[0])
	}

	if ua.Outcome != history.UserAborted || len(ua.Reads) != 1 {
		t.Fatalf("user-abort event: %+v", ua)
	}

	// The whole recorded run must pass the checker.
	rep := history.Check(h)
	if !rep.Ok() {
		t.Fatalf("checker flagged a clean run: %v", rep.Violations)
	}
}

// TestHistoryDisabledAllocsNothing pins the zero-cost contract: with
// recording disabled (hrec == nil) the history hooks on the transaction
// hot path allocate nothing.
func TestHistoryDisabledAllocsNothing(t *testing.T) {
	c := New(Options{NumMachines: 2, Seed: 1})
	if c.Hist != nil {
		t.Fatal("history unexpectedly enabled")
	}
	m := c.Machine(0)
	tx := &Tx{m: m} // bare Tx: only the nil-guarded hooks run
	addr := proto.Addr{Region: 1, Off: 64}
	val := []byte{1, 2, 3}
	allocs := testing.AllocsPerRun(200, func() {
		tx.histRead(addr, 7)
		tx.histWrite(addr, 7, val, false, false)
		tx.histFinish(history.Committed)
	})
	if allocs != 0 {
		t.Fatalf("history hooks with recording disabled allocate %.1f objects per call, want 0", allocs)
	}
}

// TestSkipReadValidationKnobBreaksValidation sanity-checks the test-only
// bug knob: a transaction whose read went stale commits anyway.
func TestSkipReadValidationKnobBreaksValidation(t *testing.T) {
	c, _ := testCluster(t, Options{SkipReadValidation: true})
	m := c.Machine(1)
	addr := writeObject(t, c, m, []byte{1, 0, 0, 0})

	// Tx A reads addr, then Tx B updates it, then A commits read-only: the
	// validation that should abort A is skipped.
	txA := m.Begin(0)
	var readDone bool
	txA.Read(addr, 4, func(_ []byte, err error) {
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		readDone = true
	})
	runUntil(t, c, sim.Second, func() bool { return readDone })

	var updated bool
	txB := m.Begin(1)
	txB.Read(addr, 4, func(data []byte, err error) {
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		txB.Write(addr, []byte{2, 0, 0, 0})
		txB.Commit(func(err error) {
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
			updated = true
		})
	})
	runUntil(t, c, sim.Second, func() bool { return updated })

	var commitErr error
	var done bool
	txA.Commit(func(err error) { commitErr, done = err, true })
	runUntil(t, c, sim.Second, func() bool { return done })
	if commitErr != nil {
		t.Fatalf("SkipReadValidation should have let the stale read commit, got %v", commitErr)
	}
}
