package core

import (
	"testing"

	"farm/internal/proto"
	"farm/internal/sim"
	"farm/internal/trace"
)

// TestTracingDisabledEnqueueAllocsNothing pins the zero-cost contract: with
// tracing off (trb == nil) the transport's steady-state enqueue path — a
// message joining an already-armed coalescing queue — performs no heap
// allocations. The queue is pre-grown and re-wound each iteration so the
// measurement sees the hot path, not slice growth or timer arming.
func TestTracingDisabledEnqueueAllocsNothing(t *testing.T) {
	c := New(Options{NumMachines: 2, Seed: 1})
	m := c.Machine(0)
	if m.trb != nil {
		t.Fatal("tracing unexpectedly enabled")
	}
	b := m.nic.GetBatch()
	b.Msgs = make([]interface{}, 0, 8)
	b.Stamps = make([]sim.Time, 0, 8)
	q := &sendQueue{
		b:     b,
		armed: true, // flush timer already pending: steady-state coalescing
	}
	m.tp.queues[1] = q
	msg := &proto.LockReply{}
	allocs := testing.AllocsPerRun(200, func() {
		b.Msgs = b.Msgs[:0]
		b.Stamps = b.Stamps[:0]
		q.bytes = 0
		m.tp.enqueue(1, msg, trace.Ctx{})
	})
	if allocs != 0 {
		t.Fatalf("enqueue with tracing disabled allocates %.1f objects per call, want 0", allocs)
	}
}

// TestPriorityTypesNeverBatched covers both halves of the priority
// contract: the failure-detection and recovery control classes are
// registered priority, and priority enqueues go straight to the fabric —
// they never enter a coalescing queue, so no batch can contain them.
func TestPriorityTypesNeverBatched(t *testing.T) {
	c := New(Options{NumMachines: 3, Seed: 2}) // default coalescing interval: on
	m := c.Machine(0)

	priority := []interface{}{
		&suspectReport{},
		&reconfigAsk{}, &proto.NewConfig{}, &proto.NewConfigAck{}, &proto.NewConfigCommit{},
		&proto.RecoveryVote{}, &proto.RequestVote{},
		&proto.CommitRecovery{}, &proto.AbortRecovery{}, &proto.RecoveryDecisionAck{},
	}
	for _, msg := range priority {
		h := m.tp.reg.Lookup(msg)
		if h == nil || !h.Priority {
			t.Errorf("%T is not registered as a priority type", msg)
		}
	}
	for _, msg := range []interface{}{&proto.LockReply{}, &proto.ValidateReq{}, &appMsg{}} {
		if h := m.tp.reg.Lookup(msg); h == nil || h.Priority {
			t.Errorf("%T should not be a priority type", msg)
		}
	}

	c.RunFor(sim.Millisecond) // settle boot traffic
	const n = 8
	sendsBefore := c.Net.Counters.Get("msg_send")

	// Priority sends transmit immediately — one fabric send each, no queue.
	// Config 999 never matches, so the receiver's handler ignores them.
	for i := 0; i < n; i++ {
		m.tp.enqueue(1, &suspectReport{Config: 999, Suspect: 2}, trace.Ctx{})
	}
	if got := c.Net.Counters.Get("msg_send") - sendsBefore; got != n {
		t.Fatalf("priority messages used %d fabric sends, want %d (one each, uncoalesced)", got, n)
	}
	if q := m.tp.queues[1]; q != nil && q.b != nil && len(q.b.Msgs) != 0 {
		t.Fatalf("priority messages sat in a coalescing queue: %d queued", len(q.b.Msgs))
	}

	// Non-priority sends queue up and flush as one batch.
	coalescedBefore := c.Net.Counters.Get("msg_send_coalesced")
	for i := 0; i < n; i++ {
		m.tp.enqueue(1, &appMsg{}, trace.Ctx{})
	}
	q := m.tp.queues[1]
	if q == nil || q.b == nil || len(q.b.Msgs) != n {
		t.Fatalf("non-priority messages did not queue for coalescing")
	}
	for _, queued := range q.b.Msgs {
		if h := m.tp.reg.Lookup(queued); h != nil && h.Priority {
			t.Fatalf("priority message %T found in a coalescing queue", queued)
		}
	}
	c.RunFor(sim.Millisecond)
	if got := c.Net.Counters.Get("msg_send_coalesced") - coalescedBefore; got != n {
		t.Fatalf("flushed batch coalesced %d messages, want %d", got, n)
	}
}

// TestTracedMessagesCarryChargedBytes asserts the enqueue path records the
// registry wire-size model's charge as the span attribute of the send
// event — the charged-bytes accounting rides on the trace.
func TestTracedMessagesCarryChargedBytes(t *testing.T) {
	c := New(Options{NumMachines: 2, Seed: 1, Trace: trace.Options{Enabled: true}})
	m := c.Machine(0)
	if m.trb == nil {
		t.Fatal("tracing not wired to the machine")
	}
	ctx := m.trb.Begin("tx", "tx", c.Eng.Now(), 0, 0, 0)
	// clientResp is send-only with a payload-dependent size model, so the
	// receive side is inert and the charge is easy to predict.
	m.tp.enqueue(1, &clientResp{Data: make([]byte, 10)}, ctx)
	c.RunFor(sim.Millisecond)

	want := int64(24 + 10) // CLIENT-RESP's registered size model
	found := false
	for _, r := range c.Tracer.Records() {
		if r.Kind == trace.KindInstant && r.Name == "sent CLIENT-RESP" {
			found = true
			if r.Arg != want {
				t.Fatalf("sent CLIENT-RESP charged %d bytes in trace, want %d", r.Arg, want)
			}
		}
	}
	if !found {
		t.Fatal("no send event recorded for the traced message")
	}
}
