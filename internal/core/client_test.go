package core

import (
	"testing"

	"farm/internal/sim"
)

func TestClientReadAndUpdate(t *testing.T) {
	c, _ := testCluster(t, Options{NumMachines: 5, Seed: 83})
	addr := writeObject(t, c, c.Machine(0), []byte("external"))

	cl := c.NewClient()
	var got []byte
	cl.Read(2, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Errorf("client read: %v", err)
		}
		got = data
	})
	runUntil(t, c, sim.Second, func() bool { return got != nil })
	if string(got) != "external" {
		t.Fatalf("client read %q", got)
	}

	done := false
	cl.Update(3, addr, []byte("updated!"), func(err error) {
		if err != nil {
			t.Errorf("client update: %v", err)
		}
		done = true
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	if got := readObject(t, c, c.Machine(1), addr, 8); string(got) != "updated!" {
		t.Fatalf("after client update: %q", got)
	}
}

func TestClientRequestsBlockedDuringReconfiguration(t *testing.T) {
	o := Options{NumMachines: 5, Seed: 89, LeaseDuration: 5 * sim.Millisecond}
	c, _ := testCluster(t, o)
	addr := writeObject(t, c, c.Machine(0), []byte("blocked?"))
	cl := c.NewClient()
	c.RunFor(10 * sim.Millisecond)

	// Kill a machine; during the window between suspicion and
	// NEW-CONFIG-COMMIT, client requests to members must queue.
	c.Kill(4)
	// Wait for suspicion to begin, then immediately issue a client read.
	runUntil(t, c, sim.Second, func() bool {
		_, ok := c.TraceTime("suspect", 10*sim.Millisecond)
		return ok
	})
	suspectAt, _ := c.TraceTime("suspect", 10*sim.Millisecond)
	var answeredAt sim.Time
	cl.Read(0, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Errorf("client read during reconfig: %v", err)
		}
		answeredAt = c.Now()
	})
	c.RunFor(300 * sim.Millisecond)
	if answeredAt == 0 {
		t.Fatal("client request never answered")
	}
	commitAt, ok := c.TraceTime("config-commit", suspectAt)
	if !ok {
		t.Fatal("no config-commit")
	}
	// The CM blocked at suspicion; the answer must come only after the
	// commit unblocked external requests.
	if answeredAt < commitAt {
		t.Fatalf("client served at %v, before NEW-CONFIG-COMMIT at %v", answeredAt, commitAt)
	}
	t.Logf("client blocked for %v (suspect→answer)", answeredAt-suspectAt)
}

func TestClientSurvivesServerFailureByRetrying(t *testing.T) {
	o := Options{NumMachines: 5, Seed: 97, LeaseDuration: 5 * sim.Millisecond}
	c, _ := testCluster(t, o)
	addr := writeObject(t, c, c.Machine(0), []byte("retryme!"))
	cl := c.NewClient()
	c.RunFor(10 * sim.Millisecond)

	c.Kill(3)
	// A request to the dead server goes nowhere; the client times out at
	// its own layer and retries elsewhere (modelled explicitly here).
	var got []byte
	cl.Read(3, addr, 8, func(data []byte, err error) { got = data })
	c.RunFor(50 * sim.Millisecond)
	if got != nil {
		t.Fatal("dead server answered")
	}
	cl.Read(1, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Errorf("retry: %v", err)
		}
		got = data
	})
	runUntil(t, c, sim.Second, func() bool { return got != nil })
	if string(got) != "retryme!" {
		t.Fatalf("retry read %q", got)
	}
}
