package core

import (
	"errors"
	"testing"

	"farm/internal/fabric"
	"farm/internal/sim"
)

func TestClientReadAndUpdate(t *testing.T) {
	c, _ := testCluster(t, Options{NumMachines: 5, Seed: 83})
	addr := writeObject(t, c, c.Machine(0), []byte("external"))

	cl := c.NewClient()
	var got []byte
	cl.Read(2, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Errorf("client read: %v", err)
		}
		got = data
	})
	runUntil(t, c, sim.Second, func() bool { return got != nil })
	if string(got) != "external" {
		t.Fatalf("client read %q", got)
	}

	done := false
	cl.Update(3, addr, []byte("updated!"), func(err error) {
		if err != nil {
			t.Errorf("client update: %v", err)
		}
		done = true
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	if got := readObject(t, c, c.Machine(1), addr, 8); string(got) != "updated!" {
		t.Fatalf("after client update: %q", got)
	}
}

func TestClientRequestsBlockedDuringReconfiguration(t *testing.T) {
	o := Options{NumMachines: 5, Seed: 89, LeaseDuration: 5 * sim.Millisecond}
	c, _ := testCluster(t, o)
	addr := writeObject(t, c, c.Machine(0), []byte("blocked?"))
	cl := c.NewClient()
	c.RunFor(10 * sim.Millisecond)

	// Kill a machine; during the window between suspicion and
	// NEW-CONFIG-COMMIT, client requests to members must queue.
	c.Kill(4)
	// Wait for suspicion to begin, then immediately issue a client read.
	runUntil(t, c, sim.Second, func() bool {
		_, ok := c.TraceTime("suspect", 10*sim.Millisecond)
		return ok
	})
	suspectAt, _ := c.TraceTime("suspect", 10*sim.Millisecond)
	var answeredAt sim.Time
	cl.Read(0, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Errorf("client read during reconfig: %v", err)
		}
		answeredAt = c.Now()
	})
	c.RunFor(300 * sim.Millisecond)
	if answeredAt == 0 {
		t.Fatal("client request never answered")
	}
	commitAt, ok := c.TraceTime("config-commit", suspectAt)
	if !ok {
		t.Fatal("no config-commit")
	}
	// The CM blocked at suspicion; the answer must come only after the
	// commit unblocked external requests.
	if answeredAt < commitAt {
		t.Fatalf("client served at %v, before NEW-CONFIG-COMMIT at %v", answeredAt, commitAt)
	}
	t.Logf("client blocked for %v (suspect→answer)", answeredAt-suspectAt)
}

func TestClientSurvivesServerFailureByRetrying(t *testing.T) {
	o := Options{NumMachines: 5, Seed: 97, LeaseDuration: 5 * sim.Millisecond}
	c, _ := testCluster(t, o)
	addr := writeObject(t, c, c.Machine(0), []byte("retryme!"))
	cl := c.NewClient()
	c.RunFor(10 * sim.Millisecond)

	c.Kill(3)
	// A request to the dead server goes nowhere; the client times out at
	// its own layer and retries elsewhere (modelled explicitly here).
	var got []byte
	cl.Read(3, addr, 8, func(data []byte, err error) { got = data })
	c.RunFor(50 * sim.Millisecond)
	if got != nil {
		t.Fatal("dead server answered")
	}
	cl.Read(1, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Errorf("retry: %v", err)
		}
		got = data
	})
	runUntil(t, c, sim.Second, func() bool { return got != nil })
	if string(got) != "retryme!" {
		t.Fatalf("retry read %q", got)
	}
}

// TestClientSurvivesGrayServerByRetrying is the gray-NIC variant: the
// server the client picked is not dead, just gray-failed (slow, inbound
// cut) — its silence looks identical to a crash from the client's side.
// The client retries against a healthy server, and once the gray fault
// heals the original server serves again (the half that distinguishes
// gray from dead).
func TestClientSurvivesGrayServerByRetrying(t *testing.T) {
	// Long lease: the gray episode stays inside lease margins, so the
	// victim is never evicted — unlike a kill, a healed gray server must
	// serve again.
	o := Options{NumMachines: 5, Seed: 97, LeaseDuration: 50 * sim.Millisecond}
	c, region := testCluster(t, o)
	addr := writeObject(t, c, c.Machine(0), []byte("grayme!!"))
	cl := c.NewClient()
	c.RunFor(5 * sim.Millisecond)

	// Gray a machine that is not the region's primary, so a retry against
	// a healthy server can still reach the data.
	primary := c.Machine(0).primaryOf(region)
	victim := 1
	for victim == primary {
		victim++
	}
	retry := victim + 1
	for retry == primary || retry >= o.NumMachines {
		retry = (retry + 1) % o.NumMachines
	}
	c.DegradeMachine(victim, fabric.MachineFault{}.WithRxCut(true))

	var got []byte
	cl.Read(victim, addr, 8, func(data []byte, err error) { got = data })
	c.RunFor(20 * sim.Millisecond)
	if got != nil {
		t.Fatal("gray server with a cut inbound path answered")
	}
	cl.Read(retry, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Errorf("retry: %v", err)
		}
		got = data
	})
	runUntil(t, c, sim.Second, func() bool { return got != nil })
	if string(got) != "grayme!!" {
		t.Fatalf("retry read %q", got)
	}

	// Heal: the gray server was silent, not dead; it serves again.
	c.RestoreMachine(victim)
	c.RunFor(10 * sim.Millisecond)
	var healed []byte
	cl.Read(victim, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Errorf("healed read: %v", err)
		}
		healed = data
	})
	runUntil(t, c, sim.Second, func() bool { return healed != nil })
	if string(healed) != "grayme!!" {
		t.Fatalf("healed read %q", healed)
	}
}

// TestMappingRetryBudgetSurfacesUnavailable pins the capped-backoff budget
// in readObject: when a region's only replica goes permanently gray (both
// directions cut, never healed), a member-side read must burn through the
// bounded mapping-retry budget and report ErrUnavailable in bounded
// virtual time — not spin forever waiting for a heal that never comes.
func TestMappingRetryBudgetSurfacesUnavailable(t *testing.T) {
	o := Options{NumMachines: 5, Seed: 101, Replication: 1, LeaseDuration: 5 * sim.Millisecond}
	c, region := testCluster(t, o)
	addr := writeObject(t, c, c.Machine(0), []byte("unavail!"))

	primary := c.Machine(0).primaryOf(region)
	if primary < 0 {
		t.Fatal("no primary")
	}
	reader := c.Machine((primary + 1) % o.NumMachines)

	// Permanent gray failure: the sole replica's host neither sends nor
	// receives, and no nemesis ever heals it.
	c.DegradeMachine(primary, fabric.MachineFault{}.WithTxCut(true).WithRxCut(true))

	start := c.Now()
	var readErr error
	var done bool
	tx := reader.Begin(0)
	tx.Read(addr, 8, func(_ []byte, err error) {
		readErr, done = err, true
		tx.Abort()
	})
	runUntil(t, c, 2*sim.Second, func() bool { return done })
	if !errors.Is(readErr, ErrUnavailable) {
		t.Fatalf("read error %v, want ErrUnavailable", readErr)
	}
	if elapsed := c.Now() - start; elapsed > 500*sim.Millisecond {
		t.Fatalf("budget took %v to surface ErrUnavailable (want bounded ≪ 500ms)", elapsed)
	}
}
