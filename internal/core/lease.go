package core

import (
	"farm/internal/fabric"
	"farm/internal/proto"
	"farm/internal/sim"
)

// leaseManager implements §5.1: every machine holds a lease at the CM and
// the CM holds a lease at every machine, granted by a 3-way handshake
// (request → grant+request → grant) and renewed every lease/5. Expiry of
// any lease triggers failure recovery.
//
// The four implementation variants of Figure 16 differ in how lease
// messages are transported and scheduled:
//
//	RPC            reliable transport, shared queue pairs, shared worker
//	               threads — lease traffic queues behind everything else.
//	UD             dedicated unreliable-datagram queue pair, but handling
//	               still dispatched to the shared worker pool.
//	UD+thread      dedicated lease-manager thread at normal priority —
//	               subject to occasional OS-level preemption.
//	UD+thread+pri  dedicated high-priority interrupt-driven thread with
//	               pinned memory: only a few microseconds of latency, rare
//	               sub-millisecond preemption.
//
// Renewal timers are quantized to the system-timer resolution (0.5 ms),
// which is what limits the shortest usable lease in the paper (§6.5).
type leaseManager struct {
	m        *Machine
	variant  LeaseVariant
	duration sim.Time

	// Dedicated thread for the UD+thread variants.
	thread *sim.Thread

	// stallUntil models head-of-line stalls of the shared transport: the
	// RPC variant's shared reliable queue pairs back up behind bulk
	// traffic for long stretches; the UD variant's shared worker thread
	// stalls when its event loop is stuck in application batches. During
	// a stall every lease message through that path waits.
	stallUntil sim.Time

	// lastFromCM is when the CM's lease to this machine was last renewed.
	lastFromCM sim.Time
	// grants (CM only): machine → last time its lease was renewed.
	grants map[int]sim.Time

	stopped bool
	// expirySuspended pauses suspecting (used between a member-side CM
	// suspicion and the resulting reconfiguration).
	started bool
}

// timerResolution is the system timer granularity (0.5 ms in §6.5).
const timerResolution = 500 * sim.Microsecond

func newLeaseManager(m *Machine) *leaseManager {
	lm := &leaseManager{
		m:        m,
		variant:  m.c.Opts.LeaseVariant,
		duration: m.c.Opts.LeaseDuration,
		grants:   make(map[int]sim.Time),
	}
	lm.thread = sim.NewThread(m.c.Eng, "lease")
	switch lm.variant {
	case LeaseUDThread:
		// Normal priority: occasionally preempted for many milliseconds by
		// background processes sharing the machine.
		lm.thread.SetJitter(func(r *sim.Rand) sim.Time {
			if r.Bool(0.002) {
				return r.Between(2*sim.Millisecond, 60*sim.Millisecond)
			}
			return r.Duration(20 * sim.Microsecond)
		})
	case LeaseUDThreadPri:
		// Interrupt driven at highest user-space priority: a few
		// microseconds of interrupt latency, very rare short preemption.
		lm.thread.SetJitter(func(r *sim.Rand) sim.Time {
			if r.Bool(0.00002) {
				return r.Between(200*sim.Microsecond, 1200*sim.Microsecond)
			}
			return 3*sim.Microsecond + r.Duration(4*sim.Microsecond)
		})
	}
	m.nic.SetUDHandler(lm.onUD)
	switch lm.variant {
	case LeaseRPC:
		// Shared QP stalls: frequent and long (§6.5: "With shared queue
		// pairs, even 100 ms leases expire very often").
		lm.scheduleStalls(2*sim.Second, 50*sim.Millisecond, 600*sim.Millisecond)
	case LeaseUD:
		// Shared-thread stalls: shorter ("reduced ... but not eliminated
		// due to contention for the CPU").
		lm.scheduleStalls(1500*sim.Millisecond, 5*sim.Millisecond, 120*sim.Millisecond)
	}
	return lm
}

// scheduleStalls arms a renewal-path stall process with exponential
// inter-arrivals and uniform durations.
func (lm *leaseManager) scheduleStalls(mean, durLo, durHi sim.Time) {
	eng := lm.m.c.Eng
	gap := sim.Time(float64(mean) * eng.Rand().ExpFloat64())
	eng.After(gap, func() {
		if lm.stopped || !lm.m.alive {
			return
		}
		until := eng.Now() + eng.Rand().Between(durLo, durHi)
		if until > lm.stallUntil {
			lm.stallUntil = until
		}
		lm.scheduleStalls(mean, durLo, durHi)
	})
}

// stallDelay returns how long the shared path is currently blocked.
func (lm *leaseManager) stallDelay() sim.Time {
	if d := lm.stallUntil - lm.m.c.Eng.Now(); d > 0 {
		return d
	}
	return 0
}

// renewInterval is lease/5 rounded up to the timer resolution.
func (lm *leaseManager) renewInterval() sim.Time {
	iv := lm.duration / 5
	if rem := iv % timerResolution; rem != 0 {
		iv += timerResolution - rem
	}
	if iv < timerResolution {
		iv = timerResolution
	}
	return iv
}

// start arms renewal and expiry checking.
func (lm *leaseManager) start() {
	if lm.started {
		return
	}
	lm.started = true
	now := lm.m.c.Eng.Now()
	lm.lastFromCM = now
	if lm.m.IsCM() {
		for _, mem := range lm.m.config.Machines {
			if int(mem) != lm.m.ID {
				lm.grants[int(mem)] = now
			}
		}
	}
	if lm.hierarchical() {
		lm.hierTick()
	} else {
		lm.tick()
	}
}

func (lm *leaseManager) stop() { lm.stopped = true }

// tick runs every renewal interval: send renewals and check expiries.
func (lm *leaseManager) tick() {
	if lm.stopped || !lm.m.alive {
		return
	}
	now := lm.m.c.Eng.Now()
	if lm.m.IsCM() {
		for _, mem := range lm.m.config.Machines {
			id := int(mem)
			if id == lm.m.ID {
				continue
			}
			if _, ok := lm.grants[id]; !ok {
				lm.grants[id] = now
			}
			if now-lm.grants[id] > lm.duration {
				lm.expired(id)
			}
		}
	} else {
		// Renew our lease at the CM.
		lm.transmit(int(lm.m.config.CM), &proto.LeaseRequest{Config: lm.m.config.ID})
		if now-lm.lastFromCM > lm.duration {
			lm.expired(int(lm.m.config.CM))
		}
	}
	lm.m.maybeWithdrawSuspicion()
	lm.m.flushFencedReports()
	lm.m.c.Eng.After(lm.renewInterval(), func() { lm.tick() })
}

// fresh reports whether every lease this machine watches — the ones whose
// expiry triggers suspicion — is currently unexpired.
func (lm *leaseManager) fresh() bool {
	now := lm.m.c.Eng.Now()
	if lm.hierarchical() {
		_, track := lm.hierarchyPeers()
		for _, id := range track {
			if g, ok := lm.grants[id]; ok && now-g > lm.duration {
				return false
			}
		}
		if !lm.m.IsCM() && now-lm.lastFromCM > lm.duration {
			return false
		}
		return true
	}
	if lm.m.IsCM() {
		for _, mem := range lm.m.config.Machines {
			id := int(mem)
			if id == lm.m.ID {
				continue
			}
			if g, ok := lm.grants[id]; ok && now-g > lm.duration {
				return false
			}
		}
		return true
	}
	return now-lm.lastFromCM <= lm.duration
}

// expired handles a lease expiry: count it, and unless the cluster runs
// with recovery disabled (the Figure 16 methodology), start recovery.
func (lm *leaseManager) expired(machine int) {
	lm.m.c.Counters.Inc("lease_expiry", 1)
	if lm.m.trb != nil {
		lm.m.trb.Event("fault", "lease-expiry", lm.m.c.Eng.Now(), 0, 0, int64(machine))
	}
	if lm.m.c.DisableRecovery {
		// Reset so each expiry is counted once, as in §6.5.
		now := lm.m.c.Eng.Now()
		if lm.m.IsCM() {
			lm.grants[machine] = now
		} else {
			lm.lastFromCM = now
		}
		return
	}
	if lm.m.IsCM() {
		lm.m.suspect(machine)
	} else {
		lm.m.suspectCM()
	}
}

// transmit sends a lease message using the variant's transport and charges
// the variant's send-side scheduling.
func (lm *leaseManager) transmit(dst int, msg interface{}) {
	m := lm.m
	switch lm.variant {
	case LeaseRPC:
		// Shared queue pairs and worker threads: wait out any QP stall,
		// then queue behind normal work.
		m.c.Eng.After(lm.stallDelay()+m.c.Eng.Rand().Duration(200*sim.Microsecond), func() {
			m.pool.Dispatch(m.c.Opts.CPUMsg, func() {
				if m.alive {
					// Lease RPCs share the reliable queue pairs, so they
					// occupy wire bandwidth like any other reliable send.
					m.nic.SendSized(fabric.MachineID(dst), msg, proto.DefaultMsgSize)
				}
			})
		})
	case LeaseUD:
		// Own queue pair, shared thread: wait out event-loop stalls, then
		// the send is prioritized within the thread.
		m.c.Eng.After(lm.stallDelay()+m.c.Eng.Rand().Duration(50*sim.Microsecond), func() {
			m.pool.ByIndex(0).DoPriority(m.c.Opts.CPUMsg, func() {
				if m.alive {
					m.nic.SendUD(fabric.MachineID(dst), msg)
				}
			})
		})
	default:
		lm.thread.Do(sim.Microsecond, func() {
			if m.alive {
				m.nic.SendUD(fabric.MachineID(dst), msg)
			}
		})
	}
}

// onUD is the datagram upcall: route to the variant's processing context.
func (lm *leaseManager) onUD(src fabric.MachineID, msg interface{}) {
	if !lm.m.alive || lm.stopped {
		return
	}
	s := int(src)
	process := func() {
		if !lm.m.alive {
			return
		}
		switch v := msg.(type) {
		case *proto.LeaseRequest:
			lm.onRequest(s, v)
		case *proto.LeaseGrant:
			lm.onGrant(s, v)
		}
	}
	switch lm.variant {
	case LeaseUD:
		// Same event-loop stall exposure on the receive side.
		lm.m.c.Eng.After(lm.stallDelay(), func() {
			lm.m.pool.ByIndex(0).DoPriority(lm.m.c.Opts.CPUMsg, process)
		})
	default:
		lm.thread.Do(sim.Microsecond, process)
	}
}

// onRequest handles a lease request: at the CM the reply is the combined
// grant+request of the 3-way handshake; at a member a grant-tagged request
// renews the CM's lease and is answered with the final grant.
func (lm *leaseManager) onRequest(src int, req *proto.LeaseRequest) {
	if lm.hierarchical() {
		lm.onHierRequest(src, req)
		return
	}
	if req.Config < lm.m.config.ID {
		return
	}
	if lm.m.IsCM() && !req.Grant {
		lm.transmit(src, &proto.LeaseRequest{Config: lm.m.config.ID, Grant: true})
		return
	}
	if req.Grant && src == int(lm.m.config.CM) {
		lm.lastFromCM = lm.m.c.Eng.Now()
		lm.transmit(src, &proto.LeaseGrant{Config: lm.m.config.ID})
	}
}

// onGrant completes the handshake at the grantor (CM, or a group leader
// in hierarchical mode).
func (lm *leaseManager) onGrant(src int, g *proto.LeaseGrant) {
	if g.Config < lm.m.config.ID {
		return
	}
	if !lm.m.IsCM() && !(lm.hierarchical() && lm.isLeader()) {
		return
	}
	lm.grants[src] = lm.m.c.Eng.Now()
}

// resetFor adjusts lease state after a configuration change: NEW-CONFIG
// acts as a lease request from a (possibly new) CM, NEW-CONFIG-ACK as a
// grant+request, and NEW-CONFIG-COMMIT as a grant (§5.2 steps 5–7).
func (lm *leaseManager) resetFor(cfg *proto.Config) {
	now := lm.m.c.Eng.Now()
	lm.lastFromCM = now
	lm.grants = make(map[int]sim.Time)
	if int(cfg.CM) == lm.m.ID {
		for _, mem := range cfg.Machines {
			if int(mem) != lm.m.ID {
				lm.grants[int(mem)] = now
			}
		}
	}
	lm.started = true
}

// --- Two-level lease hierarchy (§5.1) ---
//
// "Significantly larger clusters may require a two-level hierarchy, which
// in the worst case would double failure detection time." With
// Options.LeaseGroupSize > 0, members exchange leases with their group's
// leader instead of the CM; leaders exchange leases with the CM. A leader
// that loses a member's lease reports the suspicion to the CM, which runs
// the ordinary reconfiguration.

// suspectReport carries a hierarchical suspicion to the CM.
type suspectReport struct {
	Config  uint64
	Suspect int
}

// hierarchical reports whether the two-level mode is on.
func (lm *leaseManager) hierarchical() bool { return lm.m.c.Opts.LeaseGroupSize > 0 }

// groupOf returns the index of a machine's lease group.
func (lm *leaseManager) groupOf(id int) int { return id / lm.m.c.Opts.LeaseGroupSize }

// leaderOf returns the lease leader for a machine: the first member of its
// group in configuration order (deterministic across the cluster).
func (lm *leaseManager) leaderOf(id int) int {
	g := lm.groupOf(id)
	for _, mem := range lm.m.config.Machines {
		if lm.groupOf(int(mem)) == g {
			return int(mem)
		}
	}
	return int(lm.m.config.CM)
}

// isLeader reports whether this machine leads its group.
func (lm *leaseManager) isLeader() bool { return lm.leaderOf(lm.m.ID) == lm.m.ID }

// hierarchyPeers returns (whom I renew with, whom I track leases for).
func (lm *leaseManager) hierarchyPeers() (renewWith []int, track []int) {
	m := lm.m
	if m.IsCM() {
		// The CM tracks every group leader (and leads its own group).
		for _, mem := range m.config.Machines {
			id := int(mem)
			if id != m.ID && (lm.leaderOf(id) == id || lm.groupOf(id) == lm.groupOf(m.ID)) {
				track = append(track, id)
			}
		}
		return nil, track
	}
	if lm.isLeader() {
		renewWith = []int{int(m.config.CM)}
		for _, mem := range m.config.Machines {
			id := int(mem)
			if id != m.ID && lm.groupOf(id) == lm.groupOf(m.ID) {
				track = append(track, id)
			}
		}
		return renewWith, track
	}
	return []int{lm.leaderOf(m.ID)}, nil
}

// hierTick is the hierarchical replacement for tick().
func (lm *leaseManager) hierTick() {
	if lm.stopped || !lm.m.alive {
		return
	}
	now := lm.m.c.Eng.Now()
	renewWith, track := lm.hierarchyPeers()
	for _, dst := range renewWith {
		lm.transmit(dst, &proto.LeaseRequest{Config: lm.m.config.ID})
	}
	for _, id := range track {
		if _, ok := lm.grants[id]; !ok {
			lm.grants[id] = now
		}
		if now-lm.grants[id] > lm.duration {
			lm.hierExpired(id)
		}
	}
	if !lm.m.IsCM() && len(renewWith) > 0 {
		if now-lm.lastFromCM > lm.duration {
			lm.hierExpired(renewWith[0])
		}
	}
	lm.m.maybeWithdrawSuspicion()
	lm.m.c.Eng.After(lm.renewInterval(), func() { lm.hierTick() })
}

// hierExpired routes a hierarchical expiry: the CM reconfigures directly;
// leaders and members report suspicions upward.
func (lm *leaseManager) hierExpired(id int) {
	m := lm.m
	m.c.Counters.Inc("lease_expiry", 1)
	if m.trb != nil {
		m.trb.Event("fault", "lease-expiry", m.c.Eng.Now(), 0, 0, int64(id))
	}
	if m.c.DisableRecovery {
		now := m.c.Eng.Now()
		lm.grants[id] = now
		if !m.IsCM() {
			lm.lastFromCM = now
		}
		return
	}
	switch {
	case m.IsCM():
		m.suspect(id)
	case id == int(m.config.CM) && lm.isLeader():
		m.suspectCM()
	default:
		// Report to the CM; if the CM itself is unreachable the leader
		// lease path will notice separately.
		m.send(int(m.config.CM), &suspectReport{Config: m.config.ID, Suspect: id})
		lm.grants[id] = m.c.Eng.Now() // report once per expiry
	}
}

// onHierRequest serves hierarchical lease requests at leaders and the CM:
// the 3-way handshake is the same, only the grantor differs.
func (lm *leaseManager) onHierRequest(src int, req *proto.LeaseRequest) {
	if req.Config < lm.m.config.ID {
		return
	}
	if !req.Grant {
		lm.transmit(src, &proto.LeaseRequest{Config: lm.m.config.ID, Grant: true})
		return
	}
	// Grant+request from our grantor (leader, or CM for leaders).
	lm.lastFromCM = lm.m.c.Eng.Now()
	lm.transmit(src, &proto.LeaseGrant{Config: lm.m.config.ID})
}
