package core

import (
	"fmt"

	"farm/internal/fabric"
	"farm/internal/history"
	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/sim"
	"farm/internal/stats"
	"farm/internal/trace"
	"farm/internal/zk"
)

// TraceEvent is one recovery milestone, matching the annotations on the
// paper's Figures 9–11 (suspect, probe, zookeeper, config-commit,
// all-active, data-rec-start, region recoveries).
type TraceEvent struct {
	At      sim.Time
	Event   string
	Machine int
	Arg     int
}

// Cluster is a FaRM instance: machines, fabric, and the coordination
// service, all on one simulation engine.
type Cluster struct {
	Eng      *sim.Engine
	Net      *fabric.Network
	ZK       *zk.Service
	Opts     Options
	Machines []*Machine

	// Counters aggregates protocol-level counts (commits, aborts,
	// recovering transactions, lease expiries, ...).
	Counters *stats.Counters
	// MsgLatency holds per-message-type delivery latency (transport
	// enqueue → receiver dispatch), recorded by the message transport.
	MsgLatency *stats.LatencySet

	// DisableRecovery makes lease expiries count-only (the Figure 16
	// methodology: "We disabled recovery and counted the number of lease
	// expiry events").
	DisableRecovery bool

	// Trace holds recovery milestones; RegionRecoveredAt records when each
	// re-replicated region completed (the dashed line of Figures 9–10).
	Trace             []TraceEvent
	RegionRecoveredAt map[uint32]sim.Time

	// Tracer is the causality-tracing buffer set (nil unless
	// Opts.Trace.Enabled). Cluster-level milestones and fault injections
	// are mirrored into its cluster buffer so they annotate the same
	// timeline as the protocol spans.
	Tracer *trace.Set

	// Hist records every transaction's client-observable history for the
	// offline strict-serializability checker (nil unless Opts.History).
	Hist *history.Recorder

	// LostRegions lists regions that lost all replicas (a fatal condition
	// the CM signals, §5.2 step 4).
	LostRegions []uint32

	// clients counts attached external clients (their fabric ids).
	clients int
}

// New builds and boots a cluster: configuration 1 contains all machines
// with machine 0 as CM, stored in Zookeeper; leases are armed.
func New(opts Options) *Cluster {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		panic(err)
	}
	eng := sim.NewEngine(opts.Seed)
	c := &Cluster{
		Eng:               eng,
		Net:               fabric.NewNetwork(eng, opts.Fabric),
		Opts:              opts,
		Counters:          stats.NewCounters(),
		MsgLatency:        stats.NewLatencySet(),
		RegionRecoveredAt: make(map[uint32]sim.Time),
	}

	if opts.Trace.Enabled {
		c.Tracer = trace.NewSet(opts.Trace, opts.NumMachines)
	}
	if opts.History {
		c.Hist = history.NewRecorder()
	}

	cfg := proto.Config{ID: 1, CM: 0, Domains: make(map[uint16]int)}
	for i := 0; i < opts.NumMachines; i++ {
		cfg.Machines = append(cfg.Machines, uint16(i))
		if opts.FailureDomains > 0 {
			cfg.Domains[uint16(i)] = i % opts.FailureDomains
		} else {
			cfg.Domains[uint16(i)] = i
		}
	}
	c.ZK = zk.New(eng, &cfg)

	for i := 0; i < opts.NumMachines; i++ {
		m := c.newMachine(i)
		m.config = cfg
		m.trb = c.Tracer.Machine(i)
		c.Machines = append(c.Machines, m)
	}
	for _, m := range c.Machines {
		m.initLogs()
		m.lease = newLeaseManager(m)
	}
	c.Machines[0].cm = newCMState()
	for _, m := range c.Machines {
		m.lease.start()
		m.startTruncSweep()
		m.startTxStallSweep()
	}
	return c
}

// Machine returns machine i.
func (c *Cluster) Machine(i int) *Machine { return c.Machines[i] }

// Kill crashes a machine's FaRM process: its CPU stops, its NIC stops
// answering, and — per the non-volatile DRAM model — its memory contents
// survive untouched in the Store.
func (c *Cluster) Kill(i int) {
	m := c.Machines[i]
	if !m.alive {
		return
	}
	m.alive = false
	m.nic.SetPowered(false)
	m.lease.stop()
	c.trace("killed", i, 0)
	c.Counters.Inc("machines_killed", 1)
}

// KillDomain crashes every machine in a failure domain (the §6.4
// correlated-failure experiment: "We fail all the processes in one of
// these failure domains at the same time").
func (c *Cluster) KillDomain(domain int) int {
	killed := 0
	for _, m := range c.Machines {
		if m.alive && m.config.Domains[uint16(m.ID)] == domain {
			c.Kill(m.ID)
			killed++
		}
	}
	return killed
}

// Partition splits the network into connectivity groups.
func (c *Cluster) Partition(groups map[int]int) {
	g := make(map[fabric.MachineID]int, len(groups))
	for id, grp := range groups {
		g[fabric.MachineID(id)] = grp
	}
	c.Net.SetPartition(g)
}

// Heal restores full connectivity.
func (c *Cluster) Heal() { c.Net.HealPartition() }

// Fault-control API over the fabric's nemesis layer (fabric/nemesis.go).
// These are thin, traced wrappers: chaos schedules and tests drive faults
// through the Cluster so every injection shows up in the recovery trace
// alongside the milestones it provokes.

// CutLink cuts the directed link a→b only; b→a keeps delivering. Verbs
// whose request or completion leg crosses the cut time out.
func (c *Cluster) CutLink(a, b int) {
	c.Net.CutLink(fabric.MachineID(a), fabric.MachineID(b))
	c.trace("cut-link", a, b)
}

// HealLink restores the directed link a→b.
func (c *Cluster) HealLink(a, b int) {
	c.Net.HealLink(fabric.MachineID(a), fabric.MachineID(b))
	c.trace("heal-link", a, b)
}

// SetLinkFault installs an arbitrary fault (delay, drop, dup, cut) on the
// directed link a→b.
func (c *Cluster) SetLinkFault(a, b int, f fabric.LinkFault) {
	c.Net.SetLinkFault(fabric.MachineID(a), fabric.MachineID(b), f)
	c.trace("link-fault", a, b)
}

// IsolateInbound cuts every link INTO machine i: it can still send (its
// suspicions and lease requests go out) but hears nothing back — the
// asymmetric half-death lease-based membership must resolve by eviction.
func (c *Cluster) IsolateInbound(i int) {
	c.Net.SetMachineFault(fabric.MachineID(i), c.Net.MachineFaultOf(fabric.MachineID(i)).WithRxCut(true))
	c.trace("cut-inbound", i, 0)
}

// IsolateOutbound cuts every link OUT of machine i: it hears the cluster
// but nothing it says (lease requests included) gets through.
func (c *Cluster) IsolateOutbound(i int) {
	c.Net.SetMachineFault(fabric.MachineID(i), c.Net.MachineFaultOf(fabric.MachineID(i)).WithTxCut(true))
	c.trace("cut-outbound", i, 0)
}

// DegradeMachine puts machine i's NIC into gray-failure mode.
func (c *Cluster) DegradeMachine(i int, f fabric.MachineFault) {
	c.Net.SetMachineFault(fabric.MachineID(i), f)
	c.trace("degrade", i, 0)
}

// RestoreMachine clears machine i's NIC faults (direction cuts included).
func (c *Cluster) RestoreMachine(i int) {
	c.Net.ClearMachineFault(fabric.MachineID(i))
	c.trace("restore", i, 0)
}

// ClearNetworkFaults removes every injected fault: link faults, machine
// faults, and partitions.
func (c *Cluster) ClearNetworkFaults() {
	c.Net.ClearFaults()
	c.trace("clear-faults", -1, 0)
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d sim.Time) { c.Eng.RunFor(d) }

// Now returns the current virtual time.
func (c *Cluster) Now() sim.Time { return c.Eng.Now() }

// CreateRegions synchronously allocates n regions (running the simulation
// as needed) and returns their ids. It drives allocation requests from
// machine `from`. A locality hint of 0 means none.
func (c *Cluster) CreateRegions(from, n int, hint uint32) ([]uint32, error) {
	var out []uint32
	var lastErr error
	for i := 0; i < n; i++ {
		done := false
		c.Machines[from].AllocateRegion(hint, func(region uint32, err error) {
			done = true
			lastErr = err
			if err == nil {
				out = append(out, region)
			}
		})
		deadline := c.Eng.Now() + 10*sim.Second
		for !done && c.Eng.Now() < deadline {
			if !c.Eng.Step() {
				break
			}
		}
		if !done {
			return out, fmt.Errorf("farm: region allocation stalled")
		}
		if lastErr != nil {
			return out, lastErr
		}
	}
	// Let mapping announcements settle.
	c.RunFor(5 * sim.Millisecond)
	return out, nil
}

// trace appends a recovery milestone, mirrored as a fault/milestone
// annotation onto the causality timeline when tracing is enabled.
func (c *Cluster) trace(event string, machine, arg int) {
	if len(c.Trace) < 100000 {
		c.Trace = append(c.Trace, TraceEvent{At: c.Eng.Now(), Event: event, Machine: machine, Arg: arg})
	}
	if c.Tracer != nil {
		b := c.Tracer.Machine(machine)
		if b == nil {
			b = c.Tracer.Cluster()
		}
		b.Event("fault", event, c.Eng.Now(), 0, 0, int64(arg))
	}
}

// TraceTime returns the first occurrence of an event at or after `from`.
func (c *Cluster) TraceTime(event string, from sim.Time) (sim.Time, bool) {
	for _, e := range c.Trace {
		if e.Event == event && e.At >= from {
			return e.At, true
		}
	}
	return 0, false
}

func (c *Cluster) noteLostRegion(region uint32) {
	c.LostRegions = append(c.LostRegions, region)
	c.trace("region-lost", -1, int(region))
}

func (c *Cluster) noteRegionRecovered(region uint32) {
	c.RegionRecoveredAt[region] = c.Eng.Now()
	c.trace("region-recovered", -1, int(region))
}

// PeekObject reads the committed payload of addr directly out of the
// current primary replica's memory, bypassing the transaction layer
// entirely. It is an audit/test observability hook: invariants over final
// state (e.g. bank conservation) should be judged from what the replicas
// actually store, not from what transactions reported reading. Returns
// ErrUnavailable when no alive machine is primary for the region.
func (c *Cluster) PeekObject(addr proto.Addr, size int) ([]byte, error) {
	var best *Machine
	for _, m := range c.Machines {
		if !m.alive || m.primaryOf(addr.Region) != m.ID {
			continue
		}
		rep := m.replicas[addr.Region]
		if rep == nil || !rep.primary {
			continue
		}
		if best == nil || m.config.ID > best.config.ID {
			best = m
		}
	}
	if best == nil {
		return nil, ErrUnavailable
	}
	rep := best.replicas[addr.Region]
	start := int(addr.Off) + regionmem.HeaderSize
	if start+size > len(rep.mem) {
		return nil, fabric.ErrBadAddress
	}
	return append([]byte(nil), rep.mem[start:start+size]...), nil
}

// TotalCommitted sums committed transactions across machines.
func (c *Cluster) TotalCommitted() uint64 {
	var total uint64
	for _, m := range c.Machines {
		total += m.Committed
	}
	return total
}

// AliveMachines returns the ids of machines whose process is running.
func (c *Cluster) AliveMachines() []int {
	var out []int
	for _, m := range c.Machines {
		if m.alive {
			out = append(out, m.ID)
		}
	}
	return out
}
