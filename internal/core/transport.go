package core

import (
	"reflect"

	"farm/internal/fabric"
	"farm/internal/proto"
	"farm/internal/sim"
	"farm/internal/trace"
)

// This file is the typed message transport: the single choke point between
// the protocol components and the fabric. Every reliable message a machine
// sends or receives goes through here (lease traffic excepted — it keeps
// its dedicated priority path so failure-detection timing is independent
// of control-plane load, §5.1).
//
// The transport owns three things:
//
//   - The handler registry: each message type is registered once with its
//     protocol name, wire-size model and typed handler, replacing the old
//     monolithic type switches in handleMessage/onRPC. Counter names are
//     precomputed at registration, so the receive path allocates nothing.
//   - Per-destination send queues: FaRM's first design principle is to
//     reduce message counts (§1, §4). Small control messages to the same
//     destination travel as a single fabric frame (fabric.Batch); the
//     receiver dispatches them individually, so handlers and per-message
//     CPU costs are unchanged. When a queue flushes is the adaptive
//     policy's job (CoalescePolicy): byte/message budgets flush busy
//     queues immediately, phase-end doorbells (flushHint) flush
//     commit-critical traffic without waiting out the timer, and the
//     per-queue timer interval stretches under sustained load and shrinks
//     when the destination goes idle — all from simulated state only, so
//     runs replay byte-identically.
//   - Accounting: per-type sent/wire-byte counters and per-type delivery
//     latency histograms (enqueue → handler dispatch) via internal/stats.

// batchFrameOverhead models the transport header of one coalesced frame.
const batchFrameOverhead = 16

// sendQueue buffers outbound messages for one destination until a flush:
// the armed timer firing, a budget crossing, or a phase-end doorbell
// (flushHint). Messages accumulate directly into a pooled fabric.Batch
// frame (b.Ctxs is parallel to b.Msgs only while tracing is enabled;
// untraced runs never append to it), and flushFn is the queue's single
// pre-bound flush closure, so steady-state coalescing allocates nothing:
// the fabric recycles the frame after delivery and the queue grabs a
// fresh one from the pool on the next enqueue.
//
// interval is the queue's current adaptive flush interval — per
// destination, adjusted only from simulated events (enqueue budget
// crossings and timer firings), so it is a deterministic function of the
// run. lastFlush remembers when the queue last went empty; a long gap
// before the next arm means the destination went idle and the interval
// shrinks back toward the minimum.
type sendQueue struct {
	dst       int
	b         *fabric.Batch
	bytes     int
	armed     bool
	interval  sim.Time
	lastFlush sim.Time
	timer     sim.Timer
	flushFn   func()
}

// rpcHandler serves one request type arriving inside an rpcEnvelope.
type rpcHandler struct {
	name string
	fn   func(from int, id uint64, body interface{})
}

// transport is one machine's message layer.
type transport struct {
	m      *Machine
	reg    *proto.Registry
	rpc    map[reflect.Type]*rpcHandler
	queues map[int]*sendQueue

	// Flush policy (from Options): interval is the base (and fixed-policy)
	// flush delay, negative when coalescing is disabled. Under the adaptive
	// policy, queues flush early at the byte/message budgets and their
	// timers wander within [minInterval, maxInterval].
	interval    sim.Time
	adaptive    bool
	budgetBytes int
	budgetMsgs  int
	minInterval sim.Time
	maxInterval sim.Time

	// Pre-resolved counter cells for the flush paths.
	cUnknown     *uint64
	cFlushBudget *uint64
	cFlushTimer  *uint64
	cFlushBell   *uint64
}

func newTransport(m *Machine) *transport {
	o := m.c.Opts
	t := &transport{
		m:           m,
		reg:         proto.NewRegistry(),
		rpc:         make(map[reflect.Type]*rpcHandler),
		queues:      make(map[int]*sendQueue),
		interval:    o.CoalesceInterval,
		adaptive:    o.CoalescePolicy == CoalesceAdaptive,
		budgetBytes: o.CoalesceMaxBytes,
		budgetMsgs:  o.CoalesceMaxMsgs,
		minInterval: o.CoalesceMinInterval,
		maxInterval: o.CoalesceMaxInterval,
	}
	t.registerHandlers()
	t.registerRPCHandlers()
	// Pre-resolve every handler's counter cells so the send and receive hot
	// paths bump pointers instead of hashing counter names per message.
	ctr := m.c.Counters
	t.reg.Each(func(h *proto.Handler) {
		h.RecvCell = ctr.Cell(h.RecvCounter)
		h.SentCell = ctr.Cell(h.SentCounter)
		h.BytesCell = ctr.Cell(h.BytesCounter)
	})
	t.cUnknown = ctr.Cell("msg unknown")
	t.cFlushBudget = ctr.Cell("coalesce_flush_budget")
	t.cFlushTimer = ctr.Cell("coalesce_flush_timer")
	t.cFlushBell = ctr.Cell("coalesce_flush_doorbell")
	return t
}

// enqueue accepts one outbound message. It runs on a worker thread with
// the send CPU cost already charged (m.send / m.sendFromThread dispatch
// here from inside their costed closures). Priority types (failure
// detection and recovery control, proto.RegisterPriority) and transports
// with coalescing disabled send directly — never batched; everything else
// joins the destination's queue and the first message arms the flush
// timer. ctx is the sender's causal context (zero when untraced).
func (t *transport) enqueue(dst int, msg interface{}, ctx trace.Ctx) {
	h := t.reg.Lookup(msg)
	if h == nil {
		// Unregistered types have no wire format or receive handler; count
		// and drop here at the send side instead of shipping bytes the
		// receiver will only discard. The guard must run before any use of
		// h's counter cells — h.SizeOf tolerates a nil receiver, but
		// h.SentCell does not.
		*t.cUnknown++
		return
	}
	sz := h.SizeOf(msg)
	*h.SentCell++
	*h.BytesCell += uint64(sz)
	if t.m.trb != nil && ctx.Valid() {
		// h.SentCounter ("sent NAME") doubles as the precomputed event
		// name; the charged wire bytes ride along as the span attribute.
		t.m.trb.Event("msg", h.SentCounter, t.m.c.Eng.Now(), ctx.Trace, ctx.Span, int64(sz))
	}
	if t.interval < 0 || h.Priority {
		t.sendDirect(dst, msg, sz, ctx)
		return
	}
	q := t.queues[dst]
	if q == nil {
		q = &sendQueue{dst: dst, interval: t.interval}
		q.flushFn = func() { t.timerFlush(q) }
		t.queues[dst] = q
	}
	if q.b == nil {
		q.b = t.m.nic.GetBatch()
	}
	q.b.Msgs = append(q.b.Msgs, msg)
	q.b.Stamps = append(q.b.Stamps, t.m.c.Eng.Now())
	if t.m.trb != nil {
		// Parallel to Msgs, so zero contexts pad untraced messages.
		q.b.Ctxs = append(q.b.Ctxs, ctx)
	}
	q.bytes += sz
	if t.adaptive && (len(q.b.Msgs) >= t.budgetMsgs || q.bytes >= t.budgetBytes) {
		// Budget crossed: the frame already carries enough to be worth a
		// send on its own, so it departs now — and the queue is clearly
		// under sustained load, so the timer stretches to gather bigger
		// frames next time.
		*t.cFlushBudget++
		q.interval = t.stretched(q.interval)
		t.fire(q)
		return
	}
	if !q.armed {
		q.armed = true
		iv := t.interval
		if t.adaptive {
			// An arm after the queue sat empty for longer than its own
			// interval means the destination went idle: shrink back toward
			// the minimum so sparse traffic stops paying peak-load delays.
			if now := t.m.c.Eng.Now(); now-q.lastFlush > q.interval {
				q.interval = t.shrunk(q.interval)
			}
			iv = q.interval
		}
		q.timer = t.m.c.Eng.AfterTimer(iv, q.flushFn)
	}
}

// stretched and shrunk move an adaptive interval one step toward its
// bound; both are pure functions of the argument, so the policy stays
// deterministic.
func (t *transport) stretched(iv sim.Time) sim.Time {
	if iv *= 2; iv > t.maxInterval {
		return t.maxInterval
	}
	return iv
}

func (t *transport) shrunk(iv sim.Time) sim.Time {
	if iv /= 2; iv < t.minInterval {
		return t.minInterval
	}
	return iv
}

// sendDirect transmits one uncoalesced message, charging its modeled wire
// size against the NIC (all reliable sends occupy the wire, not just
// batches). A live causal context travels in a trace.Traced wrapper —
// allocated only on traced sends, so untraced runs are byte-for-byte the
// old direct path.
func (t *transport) sendDirect(dst int, msg interface{}, sz int, ctx trace.Ctx) {
	if t.m.trb != nil && ctx.Valid() {
		msg = &trace.Traced{Ctx: ctx, Msg: msg}
	}
	t.m.nic.SendSized(fabric.MachineID(dst), msg, sz)
}

// timerFlush is the armed timer's path: the queue flushes because its
// interval elapsed. Under the adaptive policy the timer's own harvest
// steers the interval — a near-empty frame means the interval is too long
// for the current traffic (shrink), a frame at half the message budget or
// more means budget flushes are imminent anyway (stretch).
func (t *transport) timerFlush(q *sendQueue) {
	if !q.armed {
		return
	}
	if t.adaptive && q.b != nil {
		if n := len(q.b.Msgs); n <= 1 {
			q.interval = t.shrunk(q.interval)
		} else if 2*n >= t.budgetMsgs {
			q.interval = t.stretched(q.interval)
		}
	}
	*t.cFlushTimer++
	t.fire(q)
}

// flushHint is the phase-end doorbell: a commit-protocol step that just
// finished fanning out to dst rings it so whatever the step queued departs
// now instead of waiting out the flush timer. It is a hint — empty queues
// and the fixed policy (the A/B baseline, which models the pre-doorbell
// transport) ignore it — so callers ring unconditionally.
func (t *transport) flushHint(dst int) {
	if !t.adaptive {
		return
	}
	q := t.queues[dst]
	if q == nil || !q.armed {
		return
	}
	*t.cFlushBell++
	t.fire(q)
}

// fire drains one destination's queue into a single fabric frame,
// cancelling any armed timer. A machine that died since enqueueing sends
// nothing — the same messages would have been dropped by the old per-send
// alive check — and its frame goes back to the pool.
func (t *transport) fire(q *sendQueue) {
	q.armed = false
	q.timer.Stop() // no-op when fire runs from the timer itself
	q.lastFlush = t.m.c.Eng.Now()
	b, bytes := q.b, q.bytes
	q.b, q.bytes = nil, 0
	if b == nil {
		return
	}
	if len(b.Msgs) == 0 || !t.m.alive {
		t.m.nic.ReleaseBatch(b)
		return
	}
	t.m.nic.SendBatch(fabric.MachineID(q.dst), b, bytes+batchFrameOverhead)
}

// dispatchRPC routes an rpcEnvelope body to its registered service method.
// An envelope-piggybacked trace context parents the service work (and any
// reply it sends) on the requester's span.
func (t *transport) dispatchRPC(env *rpcEnvelope) {
	h := t.rpc[reflect.TypeOf(env.Body)]
	if h == nil {
		t.m.c.Counters.Inc("rpc unknown", 1)
		return
	}
	if t.m.trb != nil && env.Ctx.Valid() {
		prev := t.m.curCtx
		t.m.curCtx = env.Ctx
		h.fn(env.From, env.ID, env.Body)
		t.m.curCtx = prev
		return
	}
	h.fn(env.From, env.ID, env.Body)
}

// registerRPC installs a typed service method for one envelope body type.
func registerRPC[T any](t *transport, name string, fn func(from int, id uint64, req T)) {
	var zero T
	typ := reflect.TypeOf(zero)
	if _, dup := t.rpc[typ]; dup {
		panic("core: duplicate RPC handler for " + typ.String())
	}
	t.rpc[typ] = &rpcHandler{name: name, fn: func(from int, id uint64, body interface{}) {
		fn(from, id, body.(T))
	}}
}

// innerSize models the wire size of a value nested inside an envelope or
// reply, via its own registration.
func (t *transport) innerSize(body interface{}) int {
	return t.reg.Lookup(body).SizeOf(body)
}

// recordWireSize models the serialized size of a log record carried inside
// a recovery message (MarshalRecord's framing plus payloads).
func recordWireSize(r *proto.Record) int {
	if r == nil {
		return 0
	}
	n := 48 + 8*len(r.TruncIDs) + 4*len(r.Regions)
	for _, w := range r.Writes {
		n += 24 + len(w.Value)
	}
	return n
}

// registerHandlers wires every message type this machine can receive (or
// send, for send-only entries) to its owner. This table is the complete
// protocol vocabulary; the registry panics on duplicates and the
// completeness test fails on omissions.
func (t *transport) registerHandlers() {
	m := t.m
	r := t.reg

	// Transaction protocol (Table 2).
	proto.Register(r, "LOCK-REPLY", nil,
		func(_ int, v *proto.LockReply) { m.onLockReply(v) })
	proto.Register(r, "VALIDATE",
		func(v *proto.ValidateReq) int { return 24 + 16*len(v.Addrs) },
		func(src int, v *proto.ValidateReq) { m.onValidateReq(src, v) })
	proto.Register(r, "VALIDATE-REPLY", nil,
		func(_ int, v *proto.ValidateReply) { m.onValidateReply(v) })

	// Slot allocation and mapping RPCs.
	proto.Register(r, "RPC",
		func(v *rpcEnvelope) int { return 16 + t.innerSize(v.Body) },
		func(_ int, v *rpcEnvelope) { t.dispatchRPC(v) })
	proto.Register(r, "RPC-REPLY",
		func(v *rpcReply) int { return 16 + t.innerSize(v.Body) },
		func(_ int, v *rpcReply) {
			if w := m.rpcWaiters[v.ID]; w != nil {
				delete(m.rpcWaiters, v.ID)
				w(v.Body)
			}
		})
	proto.Register(r, "RELEASE-SLOT", nil,
		func(src int, v *releaseSlotReq) {
			// §5.2: only current members may return slots; a zombie's
			// release could double-free a slot allocator recovery already
			// reclaimed and handed out again.
			if !m.isMember(src) {
				return
			}
			if rep := m.replicas[v.Region]; rep != nil && rep.primary && !rep.allocRecovering {
				rep.alloc.Free(int(v.Off))
			}
		})
	proto.Register(r, "MAPPING-RESP", nil,
		func(_ int, v *proto.MappingResp) {
			if v.OK {
				cp := v.Map
				m.mappings[cp.Region] = &cp
			}
			// Wake waiters on failure too (the CM echoes the region in a
			// miss): they retry with backoff and eventually surface an
			// error, instead of hanging on a region the CM cannot resolve.
			m.wakeMappingWaiters(v.Map.Region)
		})

	// Region allocation (CM side + replica side, §3).
	proto.Register(r, "ALLOC-REGION-PREPARE", nil,
		func(src int, v *proto.AllocRegionPrepare) { m.onAllocPrepare(src, v) })
	proto.Register(r, "ALLOC-REGION-PREPARED", nil,
		func(src int, v *proto.AllocRegionPrepared) { m.onAllocPrepared(src, v) })
	proto.Register(r, "ALLOC-REGION-COMMIT", nil,
		func(_ int, v *proto.AllocRegionCommit) { m.onAllocCommit(v) })

	// Leases over the RPC transport (LeaseRPC variant; the lease manager is
	// installed after machine construction, hence the dispatch-time deref).
	proto.Register(r, "LEASE-REQUEST", nil,
		func(src int, v *proto.LeaseRequest) {
			if m.lease != nil {
				m.lease.onRequest(src, v)
			}
		})
	proto.Register(r, "LEASE-GRANT", nil,
		func(src int, v *proto.LeaseGrant) {
			if m.lease != nil {
				m.lease.onGrant(src, v)
			}
		})

	// Hierarchical lease suspicions (§5.1). Priority: suspicion reports
	// feed failure detection and must not sit in coalescing queues.
	proto.RegisterPriority(r, "SUSPECT-REPORT", nil,
		func(_ int, v *suspectReport) {
			if v.Config == m.config.ID && m.IsCM() {
				m.suspect(v.Suspect)
			}
		})

	// Reconfiguration (§5.2). The NEW-CONFIG class is priority: during
	// reconfiguration the queues are at their fullest and these messages
	// gate every other protocol's progress.
	proto.RegisterPriority(r, "RECONFIG-ASK", nil,
		func(_ int, v *reconfigAsk) { m.onReconfigAsk(v) })
	proto.RegisterPriority(r, "NEW-CONFIG",
		func(v *proto.NewConfig) int {
			n := 32 + 2*len(v.Config.Machines)
			for i := range v.Regions {
				n += 28 + 2*len(v.Regions[i].Replicas)
			}
			return n
		},
		func(src int, v *proto.NewConfig) { m.onNewConfig(src, v) })
	proto.RegisterPriority(r, "NEW-CONFIG-ACK", nil,
		func(src int, v *proto.NewConfigAck) { m.onNewConfigAck(src, v) })
	proto.RegisterPriority(r, "NEW-CONFIG-COMMIT", nil,
		func(_ int, v *proto.NewConfigCommit) { m.onNewConfigCommit(v) })
	proto.Register(r, "REGIONS-ACTIVE", nil,
		func(src int, v *proto.RegionsActive) { m.onRegionsActive(src, v) })
	proto.Register(r, "ALL-REGIONS-ACTIVE", nil,
		func(_ int, v *proto.AllRegionsActive) { m.onAllRegionsActive(v) })
	proto.Register(r, "REGION-ACTIVE", nil,
		func(_ int, v *regionActiveAnnounce) { m.unblockRegion(v.Region) })
	proto.Register(r, "BLOCK-HEADER-SYNC",
		func(v *proto.BlockHeaderSync) int { return 16 + 16*len(v.Headers) },
		func(_ int, v *proto.BlockHeaderSync) { m.onBlockHeaderSync(v) })

	// Transaction state recovery (§5.3).
	proto.Register(r, "NEED-RECOVERY",
		func(v *proto.NeedRecovery) int { return 24 + 24*len(v.Txs) },
		func(src int, v *proto.NeedRecovery) { m.onNeedRecovery(src, v) })
	proto.Register(r, "FETCH-TX-STATE",
		func(v *proto.FetchTxState) int { return 24 + 16*len(v.TxIDs) },
		func(src int, v *proto.FetchTxState) { m.onFetchTxState(src, v) })
	proto.Register(r, "SEND-TX-STATE",
		func(v *proto.SendTxState) int { return 32 + recordWireSize(v.Lock) },
		func(_ int, v *proto.SendTxState) { m.onSendTxState(v) })
	proto.Register(r, "REPLICATE-TX-STATE",
		func(v *proto.ReplicateTxState) int { return 32 + recordWireSize(v.Lock) },
		func(src int, v *proto.ReplicateTxState) { m.onReplicateTxState(src, v) })
	proto.Register(r, "REPLICATE-TX-STATE-ACK", nil,
		func(_ int, v *proto.ReplicateTxStateAck) { m.onReplicateTxStateAck(v) })
	// Votes and decisions are priority: recovery latency is bounded by the
	// slowest vote, so they bypass coalescing (never batched).
	proto.RegisterPriority(r, "RECOVERY-VOTE",
		func(v *proto.RecoveryVote) int { return 40 + 4*len(v.Regions) },
		func(src int, v *proto.RecoveryVote) { m.onRecoveryVote(src, v) })
	proto.RegisterPriority(r, "REQUEST-VOTE", nil,
		func(src int, v *proto.RequestVote) { m.onRequestVote(src, v) })
	proto.RegisterPriority(r, "COMMIT-RECOVERY", nil,
		func(src int, v *proto.CommitRecovery) { m.onRecoveryDecision(src, v.Tx, true) })
	proto.RegisterPriority(r, "ABORT-RECOVERY", nil,
		func(src int, v *proto.AbortRecovery) { m.onRecoveryDecision(src, v.Tx, false) })
	proto.RegisterPriority(r, "RECOVERY-DECISION-ACK", nil,
		func(src int, v *proto.RecoveryDecisionAck) { m.onRecoveryDecisionAck(src, v) })
	proto.Register(r, "TRUNCATE-RECOVERY", nil,
		func(_ int, v *proto.TruncateRecovery) { m.onTruncateRecovery(v) })
	proto.RegisterPriority(r, "QUERY-DECISION",
		func(v *queryDecision) int { return 28 + 4*len(v.Regions) },
		func(src int, v *queryDecision) { m.onQueryDecision(src, v) })

	// Data recovery (§5.4).
	proto.Register(r, "DATA-REC-DONE", nil,
		func(_ int, v *dataRecoveryDone) { m.onDataRecoveryDone(v) })

	// State-integrity auditing. Priority: audits run right after heals and
	// recoveries (queues at their fullest) and hold a region fence while in
	// flight, so they must not sit in coalescing queues.
	proto.RegisterPriority(r, "AUDIT-SNAP",
		func(v *proto.AuditSnap) int { return 24 + 16*len(v.Headers) },
		func(src int, v *proto.AuditSnap) { m.onAuditSnap(src, v) })
	proto.RegisterPriority(r, "AUDIT-SNAP-REPLY",
		func(v *proto.AuditSnapReply) int { return 48 + 16*len(v.Blocks) },
		func(src int, v *proto.AuditSnapReply) { m.onAuditSnapReply(src, v) })
	proto.RegisterPriority(r, "AUDIT-OBJECTS-REQ", nil,
		func(src int, v *proto.AuditObjectsReq) { m.onAuditObjectsReq(src, v) })
	proto.RegisterPriority(r, "AUDIT-OBJECTS-REPLY",
		func(v *proto.AuditObjectsReply) int { return 24 + 8*len(v.Objects) },
		func(src int, v *proto.AuditObjectsReply) { m.onAuditObjectsReply(src, v) })
	proto.RegisterPriority(r, "AUDIT-REPAIR", nil,
		func(src int, v *proto.AuditRepair) { m.onAuditRepair(src, v) })
	proto.RegisterPriority(r, "AUDIT-REPAIR-DONE", nil,
		func(src int, v *proto.AuditRepairDone) { m.onAuditRepairDone(src, v) })

	// Cluster growth (§3).
	proto.Register(r, "JOIN-REQ", nil,
		func(_ int, v *joinReq) { m.onJoinReq(v) })

	// External clients (§5.2).
	proto.Register(r, "CLIENT-READ", nil,
		func(src int, v *clientReadReq) { m.onClientRead(src, v) })
	proto.Register(r, "CLIENT-UPDATE",
		func(v *clientUpdateReq) int { return 24 + len(v.Value) },
		func(src int, v *clientUpdateReq) { m.onClientUpdate(src, v) })
	proto.Register[*clientResp](r, "CLIENT-RESP",
		func(v *clientResp) int { return 24 + len(v.Data) + len(v.Err) },
		nil) // send-only: responses terminate at external clients

	// Application messages (function shipping, §6.2).
	proto.Register(r, "APP", nil,
		func(src int, v *appMsg) {
			if m.appHandler != nil {
				m.appHandler(src, v.Body)
			}
		})

	// Send-only size models for RPC bodies nested in envelopes/replies.
	proto.Register[*allocSlotReq](r, "ALLOC-SLOT", nil, nil)
	proto.Register[*allocSlotResp](r, "ALLOC-SLOT-RESP", nil, nil)
	proto.Register[*proto.MappingReq](r, "MAPPING-REQ", nil, nil)
	proto.Register[*proto.AllocRegionReq](r, "ALLOC-REGION-REQ", nil, nil)
	proto.Register[*proto.AllocRegionResp](r, "ALLOC-REGION-RESP", nil, nil)
}

// registerRPCHandlers wires the envelope-carried request types to their
// service methods (the old onRPC switch).
func (t *transport) registerRPCHandlers() {
	m := t.m
	registerRPC(t, "ALLOC-SLOT", m.rpcAllocSlot)
	registerRPC(t, "VALIDATE", m.rpcValidate)
	registerRPC(t, "MAPPING", m.rpcMapping)
	registerRPC(t, "ALLOC-REGION",
		func(from int, id uint64, req *proto.AllocRegionReq) { m.onAllocRegionReq(from, id, req) })
}
