package core

import (
	"testing"

	"farm/internal/sim"
)

func TestJoinAddsMember(t *testing.T) {
	c, _ := testCluster(t, Options{NumMachines: 4, Seed: 71})
	addr := writeObject(t, c, c.Machine(1), []byte("pre-join"))

	nj := c.Join()
	c.RunFor(100 * sim.Millisecond)

	// Everyone, including the newcomer, agrees on a configuration that
	// contains it.
	cfg := c.Machine(0).ConfigID()
	if cfg < 2 {
		t.Fatalf("no join reconfiguration: config %d", cfg)
	}
	for _, m := range c.Machines {
		if m.ConfigID() != cfg {
			t.Fatalf("machine %d at config %d, want %d", m.ID, m.ConfigID(), cfg)
		}
		if !m.config.Member(uint16(nj.ID)) {
			t.Fatalf("machine %d does not see the newcomer", m.ID)
		}
	}
	// The newcomer can read existing data...
	var got []byte
	nj.LockFreeRead(0, addr, 8, func(data []byte, err error) {
		if err != nil {
			t.Errorf("newcomer read: %v", err)
		}
		got = data
	})
	runUntil(t, c, sim.Second, func() bool { return got != nil })
	if string(got) != "pre-join" {
		t.Fatalf("newcomer read %q", got)
	}
	// ...and coordinate its own transactions.
	addr2 := writeObject(t, c, nj, []byte("by-newcomer"))
	if got := readObject(t, c, c.Machine(2), addr2, 11); string(got) != "by-newcomer" {
		t.Fatalf("newcomer-coordinated write: %q", got)
	}
}

func TestJoinBecomesPlacementTarget(t *testing.T) {
	c, _ := testCluster(t, Options{NumMachines: 4, Seed: 73})
	nj := c.Join()
	c.RunFor(100 * sim.Millisecond)

	// New regions must start landing on the (least-loaded) newcomer.
	regions, err := c.CreateRegions(0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	hosted := 0
	for _, r := range regions {
		for _, rep := range c.Machine(0).mappings[r].Replicas {
			if int(rep) == nj.ID {
				hosted++
			}
		}
	}
	if hosted == 0 {
		t.Fatal("newcomer received no region replicas")
	}
}

func TestJoinedMachineParticipatesInRecovery(t *testing.T) {
	o := Options{NumMachines: 4, Seed: 79, LeaseDuration: 5 * sim.Millisecond}
	c, _ := testCluster(t, o)
	nj := c.Join()
	c.RunFor(100 * sim.Millisecond)
	if !c.Machine(0).config.Member(uint16(nj.ID)) {
		t.Fatal("join did not complete")
	}
	// Allocate data spread over the grown cluster, then kill an original
	// machine; the newcomer should absorb re-replication work.
	if _, err := c.CreateRegions(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	addr := writeObject(t, c, c.Machine(1), []byte("grow-then-fail"))
	c.RunFor(20 * sim.Millisecond)
	c.Kill(3)
	c.RunFor(500 * sim.Millisecond)
	for _, m := range c.Machines {
		if m.Alive() && m.config.Member(3) {
			t.Fatalf("machine %d still sees the victim", m.ID)
		}
	}
	if got := readObject(t, c, nj, addr, 14); string(got) != "grow-then-fail" {
		t.Fatalf("read after kill via newcomer: %q", got)
	}
}
