package core

import (
	"reflect"
	"testing"

	"farm/internal/proto"
	"farm/internal/sim"
)

// TestRegistryCompleteness asserts every message type the system can put
// on the wire has a registered handler: the proto package's public
// vocabulary, the envelope-RPC request types, and core's internal control
// messages. A type added to the protocol without a registration fails
// here rather than being silently dropped at runtime.
func TestRegistryCompleteness(t *testing.T) {
	c := New(Options{NumMachines: 2, Seed: 1})
	m := c.Machine(0)

	for _, msg := range proto.WireMessages() {
		if !m.tp.reg.Handles(msg) {
			t.Errorf("no handler registered for %T", msg)
		}
	}
	internal := []interface{}{
		&rpcEnvelope{}, &rpcReply{}, &releaseSlotReq{},
		&suspectReport{}, &reconfigAsk{}, &regionActiveAnnounce{},
		&dataRecoveryDone{}, &joinReq{},
		&clientReadReq{}, &clientUpdateReq{}, &appMsg{},
	}
	for _, msg := range internal {
		if !m.tp.reg.Handles(msg) {
			t.Errorf("no handler registered for internal type %T", msg)
		}
	}
	// Send-only types must still be registered (for wire-size accounting)
	// even though machines never receive them.
	if m.tp.reg.Lookup(&clientResp{}) == nil {
		t.Error("clientResp not registered for send-side accounting")
	}
	for _, body := range proto.RPCBodies() {
		if _, ok := m.tp.rpc[reflect.TypeOf(body)]; !ok {
			t.Errorf("no RPC service method for envelope body %T", body)
		}
	}
	if _, ok := m.tp.rpc[reflect.TypeOf(&allocSlotReq{})]; !ok {
		t.Error("no RPC service method for allocSlotReq")
	}
}

// TestUnknownMessageCounted asserts an unregistered type arriving at a
// machine is counted under "msg unknown" instead of vanishing.
func TestUnknownMessageCounted(t *testing.T) {
	type bogusMsg struct{ X int }
	c := New(Options{NumMachines: 2, Seed: 1})
	c.Machine(0).send(1, &bogusMsg{X: 42})
	c.RunFor(sim.Millisecond)
	if n := c.Counters.Get("msg unknown"); n != 1 {
		t.Fatalf("msg unknown = %d, want 1", n)
	}
}

// TestCoalescedBatchesPreserveHandlerSequence sends a stream of
// application messages between two machines with coalescing enabled and
// asserts (a) the batched frames decode to the exact enqueue sequence and
// (b) the stream costs fewer fabric sends than one per message.
func TestCoalescedBatchesPreserveHandlerSequence(t *testing.T) {
	const n = 24
	run := func(interval sim.Time) ([]int, uint64) {
		c := New(Options{NumMachines: 2, Seed: 5, CoalesceInterval: interval})
		var got []int
		var done bool
		c.Machine(1).SetAppHandler(func(_ int, msg interface{}) {
			got = append(got, msg.(int))
			done = len(got) == n
		})
		c.RunFor(sim.Millisecond) // settle boot traffic
		before := c.Net.Counters.Get("msg_send")
		for i := 0; i < n; i++ {
			c.Machine(0).SendApp(1, i)
		}
		runUntil(t, c, sim.Second, func() bool { return done })
		return got, c.Net.Counters.Get("msg_send") - before
	}

	coalesced, coalescedSends := run(0)                   // 0 → default interval
	uncoalesced, uncoalescedSends := run(-sim.Nanosecond) // negative → disabled

	for i, v := range coalesced {
		if v != i {
			t.Fatalf("coalesced delivery out of order at %d: got %v", i, coalesced)
		}
	}
	if len(uncoalesced) != n {
		t.Fatalf("uncoalesced run delivered %d of %d", len(uncoalesced), n)
	}
	if uncoalescedSends < n {
		t.Fatalf("uncoalesced run used %d fabric sends for %d messages", uncoalescedSends, n)
	}
	if coalescedSends >= uncoalescedSends {
		t.Fatalf("coalescing did not reduce fabric sends: %d vs %d",
			coalescedSends, uncoalescedSends)
	}
}

// TestCoalescingReducesFabricSendsPerTransaction runs the same bank-style
// transfer workload with coalescing on and off and asserts the on-run
// commits transactions with fewer fabric sends each — the counter-level
// form of FaRM's "reduce message counts" principle (§1, §4).
func TestCoalescingReducesFabricSendsPerTransaction(t *testing.T) {
	const (
		accounts = 16
		target   = 250
		drivers  = 4
	)
	run := func(interval sim.Time) (sendsPerTx float64, c *Cluster) {
		c = New(Options{NumMachines: 6, Seed: 3, CoalesceInterval: interval})
		if _, err := c.CreateRegions(0, 1, 0); err != nil {
			t.Fatal(err)
		}
		addrs := make([]proto.Addr, accounts)
		for i := range addrs {
			addrs[i] = writeObject(t, c, c.Machine(1+i%3), []byte{byte(i), 0, 0, 0, 0, 0, 0, 0})
		}
		c.RunFor(5 * sim.Millisecond)
		committedBefore := c.TotalCommitted()
		sendsBefore := c.Net.Counters.Get("msg_send")

		for _, mm := range c.Machines {
			m := mm
			for d := 0; d < drivers; d++ {
				dd := d
				var loop func(i int)
				loop = func(i int) {
					if !m.Alive() || c.TotalCommitted()-committedBefore >= target {
						return
					}
					a := addrs[(i*7+dd+m.ID)%accounts]
					b := addrs[(i*11+dd*3+m.ID*5+1)%accounts]
					if a == b {
						loop(i + 1)
						return
					}
					tx := m.Begin(dd % m.Threads())
					tx.Read(a, 8, func(av []byte, err error) {
						if err != nil {
							c.Eng.After(50*sim.Microsecond, func() { loop(i + 1) })
							return
						}
						tx.Read(b, 8, func(bv []byte, err error) {
							if err != nil {
								c.Eng.After(50*sim.Microsecond, func() { loop(i + 1) })
								return
							}
							av[0]++
							bv[0]--
							tx.Write(a, av)
							tx.Write(b, bv)
							tx.Commit(func(error) { loop(i + 1) })
						})
					})
				}
				loop(m.ID * 17)
			}
		}
		runUntil(t, c, 5*sim.Second, func() bool {
			return c.TotalCommitted()-committedBefore >= target
		})
		committed := c.TotalCommitted() - committedBefore
		sends := c.Net.Counters.Get("msg_send") - sendsBefore
		return float64(sends) / float64(committed), c
	}

	onRatio, onCluster := run(0)
	offRatio, offCluster := run(-sim.Nanosecond)

	t.Logf("fabric sends per committed tx: coalescing on %.2f, off %.2f", onRatio, offRatio)
	if onRatio >= offRatio {
		t.Fatalf("fabric sends per committed tx did not drop: coalescing on %.2f, off %.2f",
			onRatio, offRatio)
	}
	if onCluster.Net.Counters.Get("msg_send_coalesced") == 0 {
		t.Error("coalescing-on run never batched anything")
	}
	// The transport's accounting must have been populated.
	if h := onCluster.MsgLatency.Get("LOCK-REPLY"); h == nil || h.Count() == 0 {
		t.Error("no delivery-latency stats recorded for LOCK-REPLY")
	}
	if onCluster.Counters.Get("sent LOCK-REPLY") == 0 || onCluster.Counters.Get("wire LOCK-REPLY") == 0 {
		t.Error("per-type sent/wire counters not populated")
	}
	for _, c := range []*Cluster{onCluster, offCluster} {
		if n := c.Counters.Get("msg unknown"); n != 0 {
			t.Errorf("%d messages dropped with no registered handler", n)
		}
	}
}
