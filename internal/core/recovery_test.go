package core

import (
	"errors"
	"testing"

	"farm/internal/proto"
	"farm/internal/sim"
)

// writeObjectIn commits a fresh allocation placed in a specific region.
func writeObjectIn(t *testing.T, c *Cluster, m *Machine, region uint32, data []byte) proto.Addr {
	t.Helper()
	hint := proto.Addr{Region: region}
	tx := m.Begin(0)
	var addr proto.Addr
	var done bool
	tx.Alloc(len(data), data, &hint, func(a proto.Addr, err error) {
		if err != nil {
			t.Fatalf("alloc in region %d: %v", region, err)
		}
		addr = a
		tx.Commit(func(err error) {
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
			done = true
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	return addr
}

// recoveryOpts uses short leases so tests run fast.
func recoveryOpts() Options {
	o := Options{}
	o.NumMachines = 6
	o.LeaseDuration = 5 * sim.Millisecond
	o.Seed = 11
	return o
}

func TestReconfigurationAfterKill(t *testing.T) {
	c, region := testCluster(t, recoveryOpts())
	addr := writeObject(t, c, c.Machine(0), []byte("survive me"))
	c.RunFor(20 * sim.Millisecond)

	// Kill a backup of the region (not the primary, not the CM).
	rm := c.Machine(0).mappings[region]
	victim := int(rm.Replicas[1])
	if victim == 0 {
		victim = int(rm.Replicas[2])
	}
	c.Kill(victim)
	killAt := c.Now()
	c.RunFor(300 * sim.Millisecond)

	// A new configuration must have committed without the victim.
	for _, m := range c.Machines {
		if m.ID == victim || !m.alive {
			continue
		}
		if m.config.ID < 2 {
			t.Fatalf("machine %d still in config %d", m.ID, m.config.ID)
		}
		if m.config.Member(uint16(victim)) {
			t.Fatalf("victim still a member at machine %d", m.ID)
		}
	}
	if _, ok := c.TraceTime("config-commit", killAt); !ok {
		t.Fatal("no config-commit trace event")
	}
	// Region must have been remapped back to 3 replicas.
	rm2 := c.Machine(0).mappings[region]
	if len(rm2.Replicas) != 3 {
		t.Fatalf("replicas after remap: %v", rm2.Replicas)
	}
	for _, r := range rm2.Replicas {
		if int(r) == victim {
			t.Fatal("victim still a replica")
		}
	}
	// Data still readable.
	if got := readObject(t, c, c.Machine(0), addr, 10); string(got) != "survive me" {
		t.Fatalf("data lost: %q", got)
	}
}

// regionWithPrimaryNotIn allocates regions until one's primary avoids the
// given machines (so tests can kill the primary without touching the CM or
// the coordinator).
func regionWithPrimaryNotIn(t *testing.T, c *Cluster, avoid ...int) uint32 {
	t.Helper()
	bad := map[int]bool{}
	for _, a := range avoid {
		bad[a] = true
	}
	for i := 0; i < 12; i++ {
		regions, err := c.CreateRegions(0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		rm := c.Machine(0).mappings[regions[0]]
		if rm != nil && !bad[int(rm.Replicas[0])] {
			return regions[0]
		}
	}
	t.Fatal("could not place a region with suitable primary")
	return 0
}

func TestPrimaryFailurePromotesBackupAndPreservesData(t *testing.T) {
	c, _ := testCluster(t, recoveryOpts())
	region := regionWithPrimaryNotIn(t, c, 0, 1, 2, 3)
	hint := proto.Addr{Region: region}
	_ = hint
	addr := writeObjectIn(t, c, c.Machine(1), region, []byte("primary-data"))
	// Update once more so versions are > 1 and backups applied via
	// truncation.
	done := false
	tx := c.Machine(2).Begin(0)
	tx.Read(addr, 12, func(_ []byte, err error) {
		tx.Write(addr, []byte("updated-data"))
		tx.Commit(func(err error) { done = true })
	})
	runUntil(t, c, sim.Second, func() bool { return done })
	c.RunFor(30 * sim.Millisecond)

	rm := c.Machine(0).mappings[region]
	oldPrimary := int(rm.Replicas[0])
	oldBackup := int(rm.Replicas[1])
	c.Kill(oldPrimary)
	c.RunFor(400 * sim.Millisecond)

	rm2 := c.Machine(0).mappings[region]
	if int(rm2.Replicas[0]) != oldBackup {
		t.Fatalf("promotion: new primary %d, want surviving backup %d", rm2.Replicas[0], oldBackup)
	}
	newCfg := c.Machine(0).config.ID
	if rm2.LastPrimaryChange != newCfg || rm2.LastReplicaChange != newCfg {
		t.Fatalf("epochs: %+v (config %d)", rm2, newCfg)
	}
	// Reads must work against the new primary.
	if got := readObject(t, c, c.Machine(3), addr, 12); string(got) != "updated-data" {
		t.Fatalf("data after promotion: %q", got)
	}
	// And updates must still commit (allocator recovery etc. done).
	c.RunFor(200 * sim.Millisecond)
	done = false
	tx2 := c.Machine(3).Begin(1)
	tx2.Read(addr, 12, func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		tx2.Write(addr, []byte("post-failure"))
		tx2.Commit(func(err error) {
			if err != nil {
				t.Fatalf("post-failure commit: %v", err)
			}
			done = true
		})
	})
	runUntil(t, c, sim.Second, func() bool { return done })
}

func TestDataRecoveryRestoresReplication(t *testing.T) {
	c, region := testCluster(t, recoveryOpts())
	m := c.Machine(1)
	var addrs []proto.Addr
	for i := 0; i < 20; i++ {
		addrs = append(addrs, writeObject(t, c, m, []byte{byte(i), 1, 2, 3}))
	}
	c.RunFor(30 * sim.Millisecond)

	rm := c.Machine(0).mappings[region]
	victim := int(rm.Replicas[1])
	if victim == 0 {
		victim = int(rm.Replicas[2])
	}
	c.Kill(victim)
	// Wait for reconfig + paced data recovery (region 1 MB, 8 KB blocks,
	// ~2 ms/block/thread-chain → well under 2 s with 8 threads).
	c.RunFor(2 * sim.Second)

	rm2 := c.Machine(0).mappings[region]
	newBackup := -1
	for _, r := range rm2.Replicas {
		if int(r) != int(rm.Replicas[0]) && int(r) != int(rm.Replicas[2]) && int(r) != victim {
			newBackup = int(r)
		}
	}
	if newBackup == -1 {
		// The new backup may equal old third replica ordering; find the
		// replica that was not in the old set.
		old := map[uint16]bool{}
		for _, r := range rm.Replicas {
			old[r] = true
		}
		for _, r := range rm2.Replicas {
			if !old[r] {
				newBackup = int(r)
			}
		}
	}
	if newBackup == -1 {
		t.Fatalf("no new backup: old %v new %v", rm.Replicas, rm2.Replicas)
	}
	if c.Counters.Get("regions_rereplicated") == 0 {
		t.Fatal("data recovery did not complete")
	}
	// The new backup's bytes must match the primary's for every object.
	pRep := c.Machine(int(rm2.Replicas[0])).replicas[region]
	bRep := c.Machine(newBackup).replicas[region]
	for _, a := range addrs {
		for i := 0; i < 12; i++ {
			if pRep.mem[int(a.Off)+i] != bRep.mem[int(a.Off)+i] {
				t.Fatalf("replica divergence at %v+%d", a, i)
			}
		}
	}
}

func TestCMFailureRecovers(t *testing.T) {
	c, _ := testCluster(t, recoveryOpts())
	addr := writeObject(t, c, c.Machine(1), []byte("cm-test"))
	c.RunFor(20 * sim.Millisecond)

	c.Kill(0) // machine 0 is the CM
	c.RunFor(500 * sim.Millisecond)

	// Someone else must be CM in a committed new configuration.
	for _, m := range c.Machines {
		if !m.alive {
			continue
		}
		if m.config.ID < 2 {
			t.Fatalf("machine %d still in config %d", m.ID, m.config.ID)
		}
		if m.config.CM == 0 {
			t.Fatalf("machine %d still thinks 0 is CM", m.ID)
		}
	}
	// Exactly one CM.
	cms := 0
	for _, m := range c.Machines {
		if m.alive && m.IsCM() {
			cms++
		}
	}
	if cms != 1 {
		t.Fatalf("%d CMs after recovery", cms)
	}
	// The system still serves reads and commits.
	if got := readObject(t, c, c.Machine(2), addr, 7); string(got) != "cm-test" {
		t.Fatalf("read after CM failure: %q", got)
	}
	// And can still allocate regions via the new CM.
	if _, err := c.CreateRegions(3, 1, 0); err != nil {
		t.Fatalf("allocation after CM failure: %v", err)
	}
}

func TestOutcomePreservation(t *testing.T) {
	// Transactions in flight when a participant dies must either commit
	// everywhere or abort everywhere — and transactions already reported
	// committed must survive. We run a stream of updates while killing a
	// backup, then audit.
	c, _ := testCluster(t, recoveryOpts())
	m := c.Machine(1)
	addr := writeObject(t, c, m, []byte{0, 0, 0, 0, 0, 0, 0, 9})

	type result struct {
		val byte
		err error
	}
	var results []result
	stop := false
	var loop func(i byte)
	loop = func(i byte) {
		if stop {
			return
		}
		tx := m.Begin(int(i) % m.Threads())
		tx.Read(addr, 8, func(_ []byte, err error) {
			if err != nil {
				results = append(results, result{i, err})
				c.Eng.After(100*sim.Microsecond, func() { loop(i + 1) })
				return
			}
			tx.Write(addr, []byte{i, i, i, i, i, i, i, i})
			tx.Commit(func(err error) {
				results = append(results, result{i, err})
				loop(i + 1)
			})
		})
	}
	loop(1)
	c.RunFor(30 * sim.Millisecond)
	rm := c.Machine(0).mappings[addr.Region]
	victim := int(rm.Replicas[1])
	if victim == 0 || victim == 1 {
		victim = int(rm.Replicas[2])
	}
	c.Kill(victim)
	c.RunFor(500 * sim.Millisecond)
	stop = true
	c.RunFor(50 * sim.Millisecond)

	if len(results) < 10 {
		t.Fatalf("only %d transactions ran", len(results))
	}
	// The final value must correspond to the LAST successfully committed
	// transaction (monotone counter writes). Compute the last commit
	// *after* the read so trailing in-flight completions are counted.
	reader := 3
	if victim == 3 {
		reader = 4
	}
	got := readObject(t, c, c.Machine(reader), addr, 8)
	var lastOK byte
	for _, r := range results {
		if r.err == nil {
			lastOK = r.val
		}
	}
	if victim == 1 && got[0] == lastOK+1 {
		// The driver machine itself was killed with one transaction in
		// flight; recovery may legitimately commit it with no coordinator
		// left to report to (§5.3: outcomes are preserved, reporting is
		// best-effort once the coordinator is gone).
		lastOK++
	}
	if got[0] != lastOK {
		// One legal exception: a trailing transaction that was recovered
		// as committed after `stop` flipped. Accept value == lastOK or a
		// successfully committed successor recorded later.
		t.Fatalf("final value %d, last reported commit %d (results %d)", got[0], lastOK, len(results))
	}
	// No transaction may be reported with an unexpected error class.
	for _, r := range results {
		if r.err != nil && !errors.Is(r.err, ErrConflict) && !errors.Is(r.err, ErrAborted) &&
			!errors.Is(r.err, ErrUnavailable) && !errors.Is(r.err, ErrReadLocked) {
			t.Fatalf("unexpected error: %v", r.err)
		}
	}
}

func TestRecoveringTransactionCompletes(t *testing.T) {
	// Kill the primary of a region between LOCK and COMMIT-PRIMARY: the
	// transaction becomes recovering and must be finished by vote/decide
	// without hanging forever.
	c, _ := testCluster(t, recoveryOpts())
	region := regionWithPrimaryNotIn(t, c, 0, 1, 3)
	addr := writeObjectIn(t, c, c.Machine(1), region, []byte("xxxxxxxx"))
	c.RunFor(20 * sim.Millisecond)
	rm := c.Machine(0).mappings[region]
	primary := int(rm.Replicas[0])

	var txErr error
	txDone := false
	tx := c.Machine(1).Begin(0)
	tx.Read(addr, 8, func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		tx.Write(addr, []byte("yyyyyyyy"))
		// Kill the primary at the exact moment commit starts.
		c.Kill(primary)
		tx.Commit(func(err error) { txErr, txDone = err, true })
	})
	c.RunFor(2 * sim.Second)
	if !txDone {
		t.Fatal("recovering transaction never completed")
	}
	// Either outcome is legal; state must match the outcome.
	c.RunFor(100 * sim.Millisecond)
	got := readObject(t, c, c.Machine(3), addr, 8)
	if txErr == nil && string(got) != "yyyyyyyy" {
		t.Fatalf("reported committed but value %q", got)
	}
	if txErr != nil && string(got) != "xxxxxxxx" {
		t.Fatalf("reported aborted (%v) but value %q", txErr, got)
	}
}

func TestEvictedMachineStopsOperating(t *testing.T) {
	// A machine cut off by a partition is evicted; when the partition
	// heals, its one-sided operations must be ignored by members (precise
	// membership) — here we check it at least stops being a member and the
	// cluster continues without it.
	c, _ := testCluster(t, recoveryOpts())
	addr := writeObject(t, c, c.Machine(1), []byte("pppp"))
	c.RunFor(20 * sim.Millisecond)

	victim := 5
	c.Partition(map[int]int{victim: 1})
	c.RunFor(400 * sim.Millisecond)
	for _, m := range c.Machines {
		if m.ID == victim {
			continue
		}
		if m.config.Member(uint16(victim)) {
			t.Fatalf("machine %d still considers %d a member", m.ID, victim)
		}
	}
	c.Heal()
	c.RunFor(50 * sim.Millisecond)
	// Cluster still works.
	if got := readObject(t, c, c.Machine(2), addr, 4); string(got) != "pppp" {
		t.Fatalf("read after eviction: %q", got)
	}
}

func TestMinorityPartitionDoesNotReconfigure(t *testing.T) {
	c, _ := testCluster(t, recoveryOpts())
	c.RunFor(20 * sim.Millisecond)
	// Partition machines {4,5} away from {0,1,2,3}.
	c.Partition(map[int]int{4: 1, 5: 1})
	c.RunFor(400 * sim.Millisecond)
	// The majority side reconfigured to exclude 4 and 5.
	m0 := c.Machine(0)
	if m0.config.Member(4) || m0.config.Member(5) {
		t.Fatal("majority did not evict minority")
	}
	// The minority side must NOT have installed a new configuration of its
	// own making (it cannot win the ZK CAS nor a probe majority).
	for _, id := range []int{4, 5} {
		m := c.Machine(id)
		if m.IsCM() && m.config.ID > 1 {
			t.Fatalf("minority machine %d became CM of config %d", id, m.config.ID)
		}
	}
}

func TestCorrelatedFailureDomain(t *testing.T) {
	o := recoveryOpts()
	o.NumMachines = 9
	o.FailureDomains = 3
	c := New(o)
	if _, err := c.CreateRegions(0, 3, 0); err != nil {
		t.Fatal(err)
	}
	addr := writeObject(t, c, c.Machine(1), []byte("domain-safe"))
	c.RunFor(30 * sim.Millisecond)

	// Replicas must span three distinct domains, so killing any one
	// domain leaves ≥ 2 copies.
	rm := c.Machine(1).mappings[addr.Region]
	domains := map[int]bool{}
	for _, r := range rm.Replicas {
		domains[c.Machine(0).config.Domains[r]] = true
	}
	if len(domains) != 3 {
		t.Fatalf("replicas share domains: %v", rm.Replicas)
	}

	// Kill domain 1 entirely (machines 1, 4, 7; CM 0 survives).
	killed := c.KillDomain(1)
	if killed != 3 {
		t.Fatalf("killed %d machines", killed)
	}
	c.RunFor(time800ms())
	if got := readObject(t, c, c.Machine(0), addr, 11); string(got) != "domain-safe" {
		t.Fatalf("data lost in correlated failure: %q", got)
	}
	for _, m := range c.Machines {
		if !m.alive {
			continue
		}
		for _, dead := range []uint16{1, 4, 7} {
			if m.config.Member(dead) {
				t.Fatalf("machine %d still member after domain kill", dead)
			}
		}
	}
}

func time800ms() sim.Time { return 800 * sim.Millisecond }

func TestThroughputRecoversAfterFailure(t *testing.T) {
	// The headline claim: throughput returns to (near) pre-failure levels
	// within tens of milliseconds of the lease expiring.
	o := recoveryOpts()
	o.NumMachines = 6
	c := New(o)
	if _, err := c.CreateRegions(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	// Seed objects.
	var addrs []proto.Addr
	for i := 0; i < 40; i++ {
		addrs = append(addrs, writeObject(t, c, c.Machine(i%6), []byte{byte(i), 0, 0, 0}))
	}
	c.RunFor(30 * sim.Millisecond)

	// Drive a closed-loop workload from every surviving machine.
	commits := sim.NewEngine(0) // unused; placeholder to avoid confusion
	_ = commits
	committedAt := make([]sim.Time, 0, 100000)
	victim := 5
	for mi := 0; mi < 6; mi++ {
		if mi == victim {
			continue
		}
		m := c.Machine(mi)
		for th := 0; th < 4; th++ {
			th := th
			var loop func(i int)
			loop = func(i int) {
				if !m.Alive() {
					return
				}
				a := addrs[(i*7+mi*13+th*29)%len(addrs)]
				tx := m.Begin(th)
				tx.Read(a, 4, func(_ []byte, err error) {
					if err != nil {
						c.Eng.After(50*sim.Microsecond, func() { loop(i + 1) })
						return
					}
					tx.Write(a, []byte{byte(i), 1, 1, 1})
					tx.Commit(func(err error) {
						if err == nil {
							committedAt = append(committedAt, c.Now())
						}
						loop(i + 1)
					})
				})
			}
			loop(th)
		}
	}
	c.RunFor(100 * sim.Millisecond)
	killAt := c.Now()
	c.Kill(victim)
	c.RunFor(400 * sim.Millisecond)

	// Build a 1 ms timeline of commits.
	tl := map[int64]int{}
	for _, at := range committedAt {
		tl[int64(at/sim.Millisecond)]++
	}
	pre := 0.0
	for ms := int64(50); ms < int64(killAt/sim.Millisecond); ms++ {
		pre += float64(tl[ms])
	}
	pre /= float64(int64(killAt/sim.Millisecond) - 50)
	if pre < 1 {
		t.Fatalf("pre-failure throughput too low to measure: %v/ms", pre)
	}
	// Find when throughput returns to 80% of pre-failure.
	recoveredMs := int64(-1)
	for ms := int64(killAt/sim.Millisecond) + 1; ms < int64(c.Now()/sim.Millisecond)-5; ms++ {
		if float64(tl[ms]) >= 0.8*pre && float64(tl[ms+1]) >= 0.5*pre {
			recoveredMs = ms
			break
		}
	}
	if recoveredMs < 0 {
		t.Fatal("throughput never recovered to 80% of pre-failure")
	}
	recovery := recoveredMs - int64(killAt/sim.Millisecond)
	// Lease 5 ms: the paper's shape is recovery within tens of ms. Allow
	// up to 100 ms in the scaled simulation.
	if recovery > 100 {
		t.Fatalf("throughput recovery took %d ms, want < 100 ms", recovery)
	}
	t.Logf("throughput recovered %d ms after kill (pre=%.1f commits/ms)", recovery, pre)
}
