package core

import (
	"fmt"

	"farm/internal/audit"
	"farm/internal/fabric"
	"farm/internal/nvram"
	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/ring"
	"farm/internal/sim"
	"farm/internal/trace"
)

// replica is one hosted copy of a region.
type replica struct {
	id   uint32
	mem  []byte
	size int

	primary bool
	// active gates access at a primary: false while the region's lock
	// recovery is in progress (§5.3 step 1).
	active bool

	// alloc is the slab allocator, maintained only while primary (§5.5).
	alloc *regionmem.Allocator
	// headers is the replicated block-header metadata (block → slot size).
	headers map[int]int
	// allocRecovering is true while free lists are being rebuilt by
	// scanning; frees queue in freeQ meanwhile.
	allocRecovering bool
	freeQ           []int
	// needsDataRecovery marks a freshly assigned backup replica awaiting
	// bulk re-replication (§5.4).
	needsDataRecovery bool
	// promotedAt is the configuration in which this replica was promoted
	// to primary (0 if it started as primary).
	promotedAt uint64
	// recCtx is the open "re-replication" span while bulk data recovery
	// (§5.4) runs for this replica.
	recCtx trace.Ctx

	// lockOwner tracks which transaction holds each object lock, for
	// correct unlocking on aborts and recovery decisions.
	lockOwner map[uint32]proto.TxID

	// dig is the incrementally maintained state-integrity digest over
	// every slot of every classed block (internal/audit). Updated in O(1)
	// at every commit apply, recovery replay, and re-replication write.
	dig audit.Digest
	// auditFence blocks new LOCK acquisitions on this region at its
	// primary while an audit snapshot/repair is in flight (lock failures
	// surface as ordinary conflict aborts). Cleared when the audit ends
	// and whenever the configuration changes.
	auditFence bool
	// repairing marks a backup replica re-running data recovery in
	// force-copy mode to heal an audit divergence; finishing reseeds dig
	// from a fresh scan and reports to repairAuditID's primary.
	repairing     bool
	repairAuditID uint64
}

// remoteTx is participant-side state for a transaction whose records
// appear in this machine's logs.
type remoteTx struct {
	id   proto.TxID
	lock *proto.Record // LOCK or COMMIT-BACKUP contents (our objects)
	saw  uint8         // proto.Saw* bits
	// lockedObjs are objects this machine locked as primary.
	lockedObjs []proto.Addr
	applied    bool
	// frameSeqs are ring frame sequence numbers per source machine (all
	// records of one transaction arrive from its coordinator).
	frameSeqs []uint64
	// regionHint caches the written-region list from any record, for
	// recovery classification when the lock record is absent.
	regionHint []uint32
	// lastChange is when this entry last made protocol progress (a record,
	// replicated state, or a recovery decision arrived). The stall sweep
	// uses it to detect recovering transactions whose decision was lost.
	lastChange sim.Time
}

// truncDomain tracks truncation state for one coordinator thread (§5.3
// step 6): the set of truncated local ids, compacted with a low bound.
type truncDomain struct {
	low uint64
	ids map[uint64]bool
}

func (d *truncDomain) truncated(local uint64) bool {
	return local < d.low || d.ids[local]
}

func (d *truncDomain) add(local uint64) {
	if local < d.low {
		return
	}
	d.ids[local] = true
	for d.ids[d.low] {
		delete(d.ids, d.low)
		d.low++
	}
}

func (d *truncDomain) setLow(low uint64) {
	if low <= d.low {
		return
	}
	for l := range d.ids {
		if l < low {
			delete(d.ids, l)
		}
	}
	if d.low < low {
		d.low = low
	}
	for d.ids[d.low] {
		delete(d.ids, d.low)
		d.low++
	}
}

// logReader wraps the receiver side of one peer's transaction log.
type logReader struct {
	src           int
	rd            *ring.Reader
	pollScheduled bool
	// pollFn is the reader's single pre-bound poll callback (see
	// newLogReader), so scheduling a poll allocates nothing.
	pollFn func()
	// frames indexes untruncated frame seqs by transaction (keyed without
	// the configuration component, matching truncation references).
	frames map[mtl][]uint64
	// reported is the consumed-bytes watermark last pushed to the sender.
	reported uint64
}

// newLogReader builds the reader for one peer's log ring with its poll
// callback bound once.
func newLogReader(m *Machine, src int, rd *ring.Reader) *logReader {
	lr := &logReader{src: src, rd: rd, frames: make(map[mtl][]uint64)}
	lr.pollFn = func() {
		lr.pollScheduled = false
		if m.alive {
			m.pollLog(lr)
		}
	}
	return lr
}

// Machine is one FaRM machine: worker threads, NVRAM-hosted region
// replicas, per-peer transaction logs, a lease manager, coordinator state
// for its own transactions, and participant state for others'.
type Machine struct {
	ID int

	c     *Cluster
	nic   *fabric.NIC
	store *nvram.Store
	pool  *sim.ThreadPool
	// tp is the typed message transport: handler registry, per-destination
	// coalescing queues, and per-type accounting.
	tp *transport

	alive bool
	// poweredOff marks machines taken down by a cluster-wide power
	// failure (they restart on RestorePower, unlike crashed machines).
	poweredOff bool

	// config is this machine's view of the current configuration.
	config proto.Config
	// mappings caches region → placement, refreshed by NEW-CONFIG and
	// allocation announcements.
	mappings    map[uint32]*proto.RegionMap
	lastDrained uint64

	replicas map[uint32]*replica
	logW     map[int]*ring.Writer
	logR     map[int]*logReader
	pend     map[mtl]*remoteTx
	trunc    map[proto.CoordKey]*truncDomain

	// Coordinator-side state.
	inflight     map[proto.TxID]*coordTx
	nextLocal    []uint64
	truncQ       map[int]*truncQueue
	truncThreads []*threadTruncState
	truncPending map[int]map[uint64]*coordTx

	lease *leaseManager
	// fencedReports holds application outcome reports deferred because
	// this machine's own lease lapsed (it may have been evicted without
	// knowing). They flush from the lease tick once every watched lease is
	// current again; on a machine that really was evicted they never fire
	// and the outcomes stay indeterminate.
	fencedReports []func()
	cm            *cmState
	recov         *recoveryState
	// earlyNeedRec buffers NEED-RECOVERY messages racing our own
	// NEW-CONFIG-COMMIT.
	earlyNeedRec []earlyNeed

	// reconfiguring guards against concurrent reconfiguration attempts by
	// this machine; cmAwaitAcks tracks outstanding NEW-CONFIG-ACKs.
	reconfiguring bool
	cmAwaitAcks   map[int]bool
	// cmAckRound versions cmAwaitAcks so ack-collection timeout timers from
	// a superseded NEW-CONFIG push cannot act on a newer one.
	cmAckRound int
	// configCommitted is false between adopting a NEW-CONFIG and receiving
	// its COMMIT; while false the member periodically re-acks so a lost ack
	// or lost COMMIT cannot wedge the protocol (clients stay blocked until
	// COMMIT arrives).
	configCommitted bool
	// configShrank records whether the latest NEW-CONFIG removed any
	// machine (then every region runs the recovery handshake).
	configShrank bool
	// truncSweepOn/stallSweepOn guard the periodic sweeps against duplicate
	// arming across power cycles.
	truncSweepOn bool
	stallSweepOn bool

	// RPC plumbing for slot allocation and mapping fetches.
	nextRPC    uint64
	rpcWaiters map[uint64]func(interface{})
	// blocked holds callbacks waiting for recovering regions to become
	// active again (§5.3 step 1).
	blocked map[uint32][]func()
	// mappingWaiters holds callbacks waiting on mapping fetches.
	mappingWaiters map[uint32][]func()

	// appHandler receives application messages (function shipping).
	appHandler func(src int, msg interface{})

	// audits tracks state-integrity audits this machine coordinates (as
	// the audited region's primary), keyed by audit id; nextAudit feeds
	// the deterministic id scheme (machine+1)<<40 | counter.
	audits    map[uint64]*auditRun
	nextAudit uint64

	// External-client gating (§5.2): requests queue between suspicion/
	// NEW-CONFIG and NEW-CONFIG-COMMIT.
	clientsBlocked bool
	clientQueue    []func()

	// trb is this machine's trace ring (nil when tracing is disabled —
	// every instrumentation site guards on that nil, so the disabled hot
	// path costs one pointer compare and zero allocations). curCtx is the
	// causal context of the message handler currently running, inherited
	// by any sends the handler issues; reconfigCtx is the open
	// reconfiguration span (this machine as initiator/CM).
	trb         *trace.Buffer
	curCtx      trace.Ctx
	reconfigCtx trace.Ctx

	// taskFree recycles msgTask carriers (deferred receive dispatches and
	// outbound enqueues) so the per-message paths allocate nothing in
	// steady state.
	taskFree []*msgTask

	// Stats.
	Committed, Aborted uint64
}

// msgTask is one pooled unit of deferred message work: dispatching a
// received message's handler, or enqueueing an outbound message into the
// transport — both run on a worker thread with the CPU cost charged there.
// runFn is bound to the task once at allocation; the task recycles itself
// before invoking the handler, so nested sends can reuse it immediately.
type msgTask struct {
	m     *Machine
	h     *proto.Handler // receive dispatch; nil for send tasks
	src   int
	dst   int
	msg   interface{}
	ctx   trace.Ctx
	send  bool
	bell  bool // ring the phase-end doorbell after enqueueing
	runFn func()
}

func (m *Machine) getTask() *msgTask {
	if k := len(m.taskFree); k > 0 {
		t := m.taskFree[k-1]
		m.taskFree = m.taskFree[:k-1]
		return t
	}
	t := &msgTask{m: m}
	t.runFn = t.run
	return t
}

func (t *msgTask) run() {
	m := t.m
	h, src, dst, msg, ctx, send, bell := t.h, t.src, t.dst, t.msg, t.ctx, t.send, t.bell
	t.h, t.msg, t.ctx, t.send, t.bell = nil, nil, trace.Ctx{}, false, false
	m.taskFree = append(m.taskFree, t)
	if !m.alive {
		return
	}
	if send {
		m.tp.enqueue(dst, msg, ctx)
		if bell {
			// The doorbell rides the same deferred task as the enqueue, so
			// the flush happens at the same simulated instant on the same
			// worker thread — deterministic, and the message it follows is
			// guaranteed to be in the queue it flushes.
			m.tp.flushHint(dst)
		}
		return
	}
	if m.trb != nil && ctx.Valid() {
		prev := m.curCtx
		m.curCtx = ctx
		h.Fn(src, msg)
		m.curCtx = prev
		return
	}
	h.Fn(src, msg)
}

// regionBlocked reports whether access to a region is blocked pending lock
// recovery.
func (m *Machine) regionBlocked(region uint32) bool {
	_, ok := m.blocked[region]
	return ok
}

// blockUntilActive queues fn until the region is announced active.
func (m *Machine) blockUntilActive(region uint32, fn func()) {
	m.blocked[region] = append(m.blocked[region], fn)
}

// unblockRegion releases queued work when a region becomes active.
func (m *Machine) unblockRegion(region uint32) {
	waiters := m.blocked[region]
	delete(m.blocked, region)
	for _, fn := range waiters {
		fn()
	}
}

// fetchMapping refreshes one region's placement from the CM; fn runs when
// the response (or a failure) arrives.
func (m *Machine) fetchMapping(region uint32, fn func()) {
	if m.mappingWaiters[region] != nil {
		m.mappingWaiters[region] = append(m.mappingWaiters[region], fn)
		return
	}
	m.mappingWaiters[region] = []func(){fn}
	cm := int(m.config.CM)
	if cm == m.ID {
		// The CM answers from its own table.
		if m.cm != nil {
			if rm := m.cm.regions[region]; rm != nil {
				cp := *rm
				m.mappings[region] = &cp
			}
		}
		m.wakeMappingWaiters(region)
		return
	}
	m.send(cm, &rpcEnvelope{From: m.ID, Body: &proto.MappingReq{Region: region}})
}

func (m *Machine) wakeMappingWaiters(region uint32) {
	waiters := m.mappingWaiters[region]
	delete(m.mappingWaiters, region)
	for _, fn := range waiters {
		fn()
	}
}

// truncQueue is the coordinator's pending truncation work toward one
// participant machine: ids whose records there can be reclaimed, plus a
// pool of explicit-TRUNCATE record reservations (one per undelivered
// transaction, §4).
type truncQueue struct {
	ids        []uint64 // packed thread<<48 | local
	pool       int      // pooled truncate-record reservations
	flushArmed bool
}

func packTruncID(thread uint16, local uint64) uint64 {
	return uint64(thread)<<48 | (local & (1<<48 - 1))
}

func unpackTruncID(v uint64) (thread uint16, local uint64) {
	return uint16(v >> 48), v & (1<<48 - 1)
}

func (c *Cluster) newMachine(id int) *Machine {
	store := nvram.NewStore()
	m := &Machine{
		ID:        id,
		c:         c,
		store:     store,
		pool:      sim.NewThreadPool(c.Eng, c.Opts.Threads, fmt.Sprintf("m%d", id)),
		alive:     true,
		mappings:  make(map[uint32]*proto.RegionMap),
		replicas:  make(map[uint32]*replica),
		logW:      make(map[int]*ring.Writer),
		logR:      make(map[int]*logReader),
		pend:      make(map[mtl]*remoteTx),
		trunc:     make(map[proto.CoordKey]*truncDomain),
		inflight:  make(map[proto.TxID]*coordTx),
		nextLocal: make([]uint64, c.Opts.Threads),
		truncQ:    make(map[int]*truncQueue),

		rpcWaiters:     make(map[uint64]func(interface{})),
		blocked:        make(map[uint32][]func()),
		mappingWaiters: make(map[uint32][]func()),
		audits:         make(map[uint64]*auditRun),
	}
	m.nic = c.Net.AddMachine(fabric.MachineID(id), store)
	m.tp = newTransport(m)
	m.nic.SetMessageHandler(m.onMessage)
	m.nic.SetWriteHook(m.onRemoteWrite)
	return m
}

// initLogs allocates the receive rings for every peer and the write halves
// toward every peer.
func (m *Machine) initLogs() {
	for _, peer := range m.c.Machines {
		if peer.ID == m.ID {
			continue
		}
		mem, err := m.store.Allocate(nvram.RegionID(logRegionID(peer.ID)), m.c.Opts.LogCapacity)
		if err != nil {
			panic(err)
		}
		m.logR[peer.ID] = newLogReader(m, peer.ID, ring.NewReader(mem))
	}
	// Self log: coordinators co-located with a primary/backup write
	// locally (§4 "local memory accesses rather than RDMA").
	mem, err := m.store.Allocate(nvram.RegionID(logRegionID(m.ID)), m.c.Opts.LogCapacity)
	if err != nil {
		panic(err)
	}
	m.logR[m.ID] = newLogReader(m, m.ID, ring.NewReader(mem))
	for _, peer := range m.c.Machines {
		m.logW[peer.ID] = ring.NewWriter(m.nic, fabric.MachineID(peer.ID), nvram.RegionID(logRegionID(m.ID)), m.c.Opts.LogCapacity)
	}
}

// Alive reports whether the machine's process is running.
func (m *Machine) Alive() bool { return m.alive }

// Eng returns the simulation engine (for workloads running "on" the
// machine).
func (m *Machine) Eng() *sim.Engine { return m.c.Eng }

// Opts returns the cluster options.
func (m *Machine) Opts() *Options { return &m.c.Opts }

// ConfigID returns the machine's current configuration id.
func (m *Machine) ConfigID() uint64 { return m.config.ID }

// IsCM reports whether this machine currently believes it is the CM.
func (m *Machine) IsCM() bool { return m.alive && m.config.CM == uint16(m.ID) }

// OnThread schedules application work costing cost CPU on worker thread i.
func (m *Machine) OnThread(i int, cost sim.Time, fn func()) {
	m.pool.ByIndex(i).Do(cost, func() {
		if m.alive {
			fn()
		}
	})
}

// Threads returns the worker thread count.
func (m *Machine) Threads() int { return m.c.Opts.Threads }

// mapping returns the cached placement for a region.
func (m *Machine) mapping(region uint32) *proto.RegionMap { return m.mappings[region] }

// HostedRegions lists the data regions this machine holds a replica of
// (observability for experiments choosing failure victims).
func (m *Machine) HostedRegions() []uint32 {
	return regionKeys(m.replicas)
}

// PrimaryOf exposes the cached primary machine for a region (-1 when
// unknown). Applications use it for locality decisions, e.g. TPC-C
// co-partitioning clients with their warehouse, and TATP's function
// shipping of single-field updates (§6.2).
func (m *Machine) PrimaryOf(region uint32) int { return m.primaryOf(region) }

// SetAppHandler installs the application-level message handler used with
// SendApp. FaRM applications link with the platform in the same process
// (§6.2); function-shipped operations arrive here, on a worker thread with
// the handling cost charged.
func (m *Machine) SetAppHandler(h func(src int, msg interface{})) { m.appHandler = h }

// SendApp sends an application message to a member machine.
func (m *Machine) SendApp(dst int, msg interface{}) {
	m.send(dst, &appMsg{Body: msg})
}

// appMsg wraps application payloads for routing.
type appMsg struct{ Body interface{} }

// primaryOf returns the primary machine for a region, or -1 if unknown.
func (m *Machine) primaryOf(region uint32) int {
	rm := m.mappings[region]
	if rm == nil || len(rm.Replicas) == 0 {
		return -1
	}
	return int(rm.Replicas[0])
}

// backupsOf returns the backup machines for a region.
func (m *Machine) backupsOf(region uint32) []uint16 {
	rm := m.mappings[region]
	if rm == nil || len(rm.Replicas) == 0 {
		return nil
	}
	return rm.Replicas[1:]
}

// isMember applies precise membership (§5.2): operations are only issued
// to, and replies only accepted from, machines in the current
// configuration.
func (m *Machine) isMember(id int) bool { return m.config.Member(uint16(id)) }

// Member reports whether a machine id belongs to this machine's view of
// the configuration (observability).
func (m *Machine) Member(id int) bool { return m.isMember(id) }

// LogSpaceReport returns, per destination machine, the free/reserved/
// appended/consumed state of this machine's log writers (diagnostics for
// space-leak hunting).
func (m *Machine) LogSpaceReport() map[int][4]int {
	out := make(map[int][4]int, len(m.logW))
	for dst, w := range m.logW {
		out[dst] = [4]int{w.FreeBytes(), w.ReservedBytes(), int(w.Appended()), int(w.ConsumedEstimate())}
	}
	return out
}

// onMessage is the NIC upcall for reliable sends. Coalesced frames are
// unpacked here (in completion context, free — the real cost is the
// per-message handling charged in dispatchMsg); bare messages still arrive
// from external clients and from transports with coalescing disabled.
func (m *Machine) onMessage(src fabric.MachineID, msg interface{}) {
	if !m.alive {
		return
	}
	s := int(src)
	if b, ok := msg.(*fabric.Batch); ok {
		for i, inner := range b.Msgs {
			var stamp sim.Time
			if i < len(b.Stamps) {
				stamp = b.Stamps[i]
			}
			var ctx trace.Ctx
			if i < len(b.Ctxs) {
				ctx = b.Ctxs[i]
			}
			m.dispatchMsg(s, inner, stamp, ctx)
		}
		return
	}
	if tr, ok := msg.(*trace.Traced); ok {
		m.dispatchMsg(s, tr.Msg, 0, tr.Ctx)
		return
	}
	m.dispatchMsg(s, msg, 0, trace.Ctx{})
}

// dispatchMsg routes one received message through the handler registry:
// count it, record its delivery latency, and run its handler on a worker
// thread with the handling cost charged there. Unregistered types are
// counted as drops instead of vanishing silently. ctx is the sender's
// causal context: a traced arrival is recorded as a receive annotation and
// the handler runs with curCtx set, so replies it sends inherit the
// sender's span as parent.
func (m *Machine) dispatchMsg(src int, msg interface{}, stamp sim.Time, ctx trace.Ctx) {
	h := m.tp.reg.Lookup(msg)
	if h == nil || h.Fn == nil {
		m.c.Counters.Inc("msg unknown", 1)
		return
	}
	*h.RecvCell++
	if stamp > 0 {
		m.c.MsgLatency.Record(h.Name, m.c.Eng.Now()-stamp)
	}
	if m.trb != nil && ctx.Valid() {
		// h.RecvCounter ("msg NAME") doubles as the precomputed event name.
		m.trb.Event("msg", h.RecvCounter, m.c.Eng.Now(), ctx.Trace, ctx.Span, int64(src))
	}
	tk := m.getTask()
	tk.h, tk.src, tk.msg, tk.ctx = h, src, msg, ctx
	if v, ok := msg.(*proto.RecoveryVote); ok {
		// Votes go to the peer thread of the coordinator thread (§5.3).
		m.pool.ByIndex(int(v.Tx.Thread)).Do(m.c.Opts.CPUMsg, tk.runFn)
		return
	}
	m.pool.Dispatch(m.c.Opts.CPUMsg, tk.runFn)
}

// onRemoteWrite reacts to one-sided writes landing in local memory; for
// log regions it schedules a poll of that sender's ring.
func (m *Machine) onRemoteWrite(region nvram.RegionID, _, _ int) {
	if !m.alive {
		return
	}
	r := uint32(region)
	if r&0x80000000 == 0 {
		return // not a log; data-recovery writes need no upcall
	}
	sender := int(r &^ 0x80000000)
	lr := m.logR[sender]
	if lr == nil || lr.pollScheduled {
		return
	}
	lr.pollScheduled = true
	m.c.Eng.After(m.c.Opts.PollDelay, lr.pollFn)
}

// pollLog drains newly arrived frames from one peer's log and processes
// the records on a worker thread (sharded by sender so records from one
// coordinator stay ordered).
func (m *Machine) pollLog(lr *logReader) {
	frames := lr.rd.Poll()
	if len(frames) == 0 {
		return
	}
	type parsed struct {
		rec *proto.Record
		seq uint64
	}
	var batch []parsed
	var cost sim.Time
	for _, f := range frames {
		rec, err := proto.UnmarshalRecord(f.Payload)
		if err != nil {
			continue // garbage is skipped; recovery re-examines logs anyway
		}
		batch = append(batch, parsed{rec, f.Seq})
		cost += m.c.Opts.CPUMsg/4 + sim.Time(len(rec.Writes))*m.c.Opts.CPUPerObject
	}
	if len(batch) == 0 {
		return
	}
	// Frames captured before a drain must be processed with drain
	// semantics even if the worker thread gets to them afterwards.
	preDrain := m.lastDrained < m.config.ID
	first := batch[0].seq
	m.pool.ByIndex(lr.src).Do(cost, func() {
		if !m.alive {
			// Processing lost with the process; the records are still in
			// the non-volatile log — surface them to the next poll/drain.
			lr.rd.RewindTo(first)
			return
		}
		for _, p := range batch {
			m.handleRecordInner(lr, p.rec, p.seq, preDrain)
		}
		m.maybeReportConsumed(lr)
	})
}

// maybeReportConsumed lazily tells the sender how far its ring has been
// truncated (modelled as a NIC-level write of the head pointer).
func (m *Machine) maybeReportConsumed(lr *logReader) {
	consumed := lr.rd.ConsumedBytes()
	if consumed-lr.reported < uint64(m.c.Opts.LogCapacity/8) {
		return
	}
	lr.reported = consumed
	src := lr.src
	m.c.Net.Counters.Inc("rdma_write", 1)
	m.c.Eng.After(m.c.Opts.Fabric.WireLatency+sim.Microsecond, func() {
		peer := m.c.Machines[src]
		if peer.alive {
			if w := peer.logW[m.ID]; w != nil {
				w.UpdateConsumed(consumed)
			}
		}
	})
}

// truncDomainFor returns (creating if needed) the truncation-tracking
// state for a coordinator thread.
func (m *Machine) truncDomainFor(k proto.CoordKey) *truncDomain {
	d := m.trunc[k]
	if d == nil {
		d = &truncDomain{ids: make(map[uint64]bool)}
		m.trunc[k] = d
	}
	return d
}

// hostReplica installs a region replica backed by fresh NVRAM.
func (m *Machine) hostReplica(region uint32, size int, primary bool) *replica {
	mem, err := m.store.Allocate(nvram.RegionID(region), size)
	if err != nil {
		panic(err)
	}
	r := &replica{
		id:        region,
		mem:       mem,
		size:      size,
		primary:   primary,
		active:    true,
		headers:   make(map[int]int),
		lockOwner: make(map[uint32]proto.TxID),
	}
	if primary {
		r.alloc = regionmem.NewAllocator(m.c.Opts.Layout, mem)
		m.installAllocHook(r)
	}
	m.replicas[region] = r
	return r
}

// installAllocHook replicates block headers to backups when the allocator
// claims a new block (§5.5), and folds the freshly classed block into the
// primary's digest domain.
func (m *Machine) installAllocHook(r *replica) {
	r.alloc.OnNewBlock(func(block, slot int) {
		r.headers[block] = slot
		m.foldBlock(r, block, slot)
		for _, b := range m.backupsOf(r.id) {
			if int(b) == m.ID {
				continue
			}
			m.send(int(b), &proto.BlockHeaderSync{
				ConfigID: m.config.ID,
				Region:   r.id,
				Headers:  map[int]int{block: slot},
			})
		}
	})
}

// send transmits a reliable message through the transport, charging the
// sender-side CPU cost. All control-plane sends funnel through here (and
// sendFromThread); only the lease manager talks to the NIC directly. The
// current handler context (if any) is captured synchronously, so the
// message carries the causal parent even though the transport enqueue runs
// later on a worker thread.
func (m *Machine) send(dst int, msg interface{}) {
	m.sendCtx(dst, msg, m.curCtx)
}

// sendCtx is send with an explicit causal context, for call sites inside
// timer closures where the handler context is no longer live (NEW-CONFIG
// pushes, recovery votes and decisions).
func (m *Machine) sendCtx(dst int, msg interface{}, ctx trace.Ctx) {
	if !m.alive {
		return
	}
	tk := m.getTask()
	tk.send, tk.dst, tk.msg, tk.ctx = true, dst, msg, ctx
	m.pool.Dispatch(m.c.Opts.CPUMsg, tk.runFn)
}

// sendDoorbell is send plus the phase-end doorbell: after the message
// joins its destination's coalescing queue, the queue flushes immediately
// (transport.flushHint) instead of waiting out the flush timer. Used on
// the commit protocol's latency-critical legs — LOCK-REPLY, validation
// requests and replies, RPC replies — where one message is the phase's
// entire fan-out to that destination and nothing further is coming.
func (m *Machine) sendDoorbell(dst int, msg interface{}) {
	if !m.alive {
		return
	}
	tk := m.getTask()
	tk.send, tk.bell, tk.dst, tk.msg, tk.ctx = true, true, dst, msg, m.curCtx
	m.pool.Dispatch(m.c.Opts.CPUMsg, tk.runFn)
}

// sendFromThread is send with the CPU cost charged to a specific thread.
func (m *Machine) sendFromThread(thread, dst int, msg interface{}) {
	m.sendFromThreadCtx(thread, dst, msg, m.curCtx)
}

// sendFromThreadCtx is sendFromThread with an explicit causal context.
func (m *Machine) sendFromThreadCtx(thread, dst int, msg interface{}, ctx trace.Ctx) {
	if !m.alive {
		return
	}
	tk := m.getTask()
	tk.send, tk.dst, tk.msg, tk.ctx = true, dst, msg, ctx
	m.pool.ByIndex(thread).Do(m.c.Opts.CPUMsg, tk.runFn)
}

// sendFromThreadDoorbell is sendDoorbell with the CPU cost charged to a
// specific thread.
func (m *Machine) sendFromThreadDoorbell(thread, dst int, msg interface{}) {
	m.sendFromThreadCtxDoorbell(thread, dst, msg, m.curCtx)
}

// sendFromThreadCtxDoorbell is sendFromThreadDoorbell with an explicit
// causal context.
func (m *Machine) sendFromThreadCtxDoorbell(thread, dst int, msg interface{}, ctx trace.Ctx) {
	if !m.alive {
		return
	}
	tk := m.getTask()
	tk.send, tk.bell, tk.dst, tk.msg, tk.ctx = true, true, dst, msg, ctx
	m.pool.ByIndex(thread).Do(m.c.Opts.CPUMsg, tk.runFn)
}
