package core

import (
	"farm/internal/proto"
	"farm/internal/regionmem"
)

// This file is the participant side of the commit protocol: processing of
// log records polled out of ring buffers (§4) and the envelope-RPC service
// methods. Message dispatch lives in transport.go's handler registry.

// handleRecord processes one parsed log record from the ring of lr.src.
func (m *Machine) handleRecord(lr *logReader, rec *proto.Record, seq uint64) {
	m.handleRecordInner(lr, rec, seq, false)
}

// handleRecordInner is handleRecord with drain semantics: records that
// were already in the log when draining started bypass the stale-record
// rejection, because the drain must examine them (§5.3 step 2).
func (m *Machine) handleRecordInner(lr *logReader, rec *proto.Record, seq uint64, preDrain bool) {
	if rec.Type == proto.RecTruncate {
		// Explicit truncation carrier: apply its piggyback and reclaim the
		// record itself immediately.
		m.c.Counters.Inc("rec TRUNCATE", 1)
		m.applyPiggyback(lr, rec)
		lr.rd.Truncate(seq)
		return
	}
	// §5.2 precise membership: reject log records from coordinators outside
	// the current configuration, independent of drain progress. The stale-
	// record gate below only engages once this configuration's drain has
	// run; between NEW-CONFIG receipt and the drain, an evicted coordinator
	// that never learned of its eviction could otherwise slip LOCK and
	// COMMIT records built on pre-eviction reads into live logs, and
	// recovery would then commit a lost update.
	if !preDrain && rec.Tx.Config < m.config.ID && !m.config.Member(rec.Tx.Machine) {
		m.c.Counters.Inc("nonmember_record_rejected", 1)
		lr.rd.Truncate(seq)
		return
	}
	// Reject stale records from transactions that recovery already dealt
	// with (§5.3 step 2: "Log records for transactions with configuration
	// identifiers less than or equal to LastDrained are rejected").
	if !preDrain && rec.Tx.Config < m.config.ID && m.lastDrained >= m.config.ID && m.recordIsRecovering(rec) {
		m.c.Counters.Inc("stale_record_rejected", 1)
		lr.rd.Truncate(seq)
		m.applyPiggyback(lr, rec)
		return
	}

	m.c.Counters.Inc("rec "+rec.Type.String(), 1)
	key := mtlOf(rec.Tx)
	rt := m.pend[key]
	if rt == nil {
		d := m.truncDomainFor(rec.Tx.Coord())
		if d.truncated(rec.Tx.Local) {
			// A record for an already-truncated transaction (late commit-
			// primary after recovery truncated): drop it.
			lr.rd.Truncate(seq)
			m.applyPiggyback(lr, rec)
			return
		}
		rt = &remoteTx{id: rec.Tx}
		m.pend[key] = rt
	}
	rt.frameSeqs = append(rt.frameSeqs, seq)
	rt.lastChange = m.c.Eng.Now()
	lr.frames[key] = append(lr.frames[key], seq)
	if len(rec.Regions) > 0 {
		rt.regionHint = rec.Regions
	}

	switch rec.Type {
	case proto.RecLock:
		rt.saw |= proto.SawLock
		rt.lock = rec
		m.processLock(rt, rec)
	case proto.RecCommitBackup:
		rt.saw |= proto.SawCommitBackup
		if rt.lock == nil {
			rt.lock = rec // same payload as LOCK (§4 step 3)
		} else {
			// Merge writes this machine backs that the LOCK record (which
			// carries only primary-owned objects) did not include.
			rt.lock = mergeRecords(rt.lock, rec)
		}
	case proto.RecCommitPrimary:
		rt.saw |= proto.SawCommitPrimary
		m.applyCommitPrimary(rt)
	case proto.RecAbort:
		rt.saw |= proto.SawAbort
		m.releaseLocks(rt)
	}
	m.applyPiggyback(lr, rec)
}

// mergeRecords combines the object writes of two records for the same
// transaction (a machine can be primary for one written region and backup
// for another; it then receives both LOCK and COMMIT-BACKUP records with
// different write subsets).
func mergeRecords(a, b *proto.Record) *proto.Record {
	seen := make(map[proto.Addr]bool, len(a.Writes))
	for _, w := range a.Writes {
		seen[w.Addr] = true
	}
	merged := *a
	merged.Writes = append(append([]proto.ObjectWrite(nil), a.Writes...), nil...)
	for _, w := range b.Writes {
		if !seen[w.Addr] {
			merged.Writes = append(merged.Writes, w)
		}
	}
	return &merged
}

// applyPiggyback processes the truncation metadata every record carries.
func (m *Machine) applyPiggyback(lr *logReader, rec *proto.Record) {
	if rec.TruncLow > 0 {
		m.truncDomainFor(rec.Tx.Coord()).setLow(rec.TruncLow)
	}
	for _, packed := range rec.TruncIDs {
		thread, local := unpackTruncID(packed)
		m.truncateTx(lr, proto.CoordKey{Machine: rec.Tx.Machine, Thread: thread}, local)
	}
}

// processLock attempts to lock every named object at its expected version
// (§4 step 1) and reports the outcome to the coordinator.
func (m *Machine) processLock(rt *remoteTx, rec *proto.Record) {
	ok := true
	var acquired []proto.ObjectWrite
	for _, w := range rec.Writes {
		rep := m.replicas[w.Addr.Region]
		if rep == nil || !rep.primary {
			ok = false
			break
		}
		if rep.auditFence {
			// A state-integrity audit holds the region at a quiescent
			// point; the coordinator sees an ordinary conflict and retries.
			m.c.Counters.Inc("audit_fence_conflict", 1)
			ok = false
			break
		}
		if !regionmem.TryLock(rep.mem, int(w.Addr.Off), w.Version) {
			ok = false
			break
		}
		rep.lockOwner[w.Addr.Off] = rec.Tx
		acquired = append(acquired, w)
		rt.lockedObjs = append(rt.lockedObjs, w.Addr)
	}
	if !ok {
		// Roll back partial locks; the coordinator will write ABORT.
		for _, w := range acquired {
			rep := m.replicas[w.Addr.Region]
			regionmem.Unlock(rep.mem, int(w.Addr.Off))
			delete(rep.lockOwner, w.Addr.Off)
		}
		rt.lockedObjs = nil
		m.c.Counters.Inc("lock_failed", 1)
	}
	// Doorbell: the coordinator's lock phase is blocked on this reply.
	m.sendDoorbell(int(rec.Tx.Machine), &proto.LockReply{Tx: rec.Tx, OK: ok})
}

// applyCommitPrimary installs a committed transaction's writes at regions
// this machine is primary for: update in place, bump version, unlock (§4
// step 4).
func (m *Machine) applyCommitPrimary(rt *remoteTx) {
	if rt.applied || rt.lock == nil {
		return
	}
	rt.applied = true
	for _, w := range rt.lock.Writes {
		rep := m.replicas[w.Addr.Region]
		if rep == nil || !rep.primary {
			continue
		}
		// Version-gated for recovery replays: never regress an object.
		cur := regionmem.ReadHeader(rep.mem, int(w.Addr.Off))
		if regionmem.Version(cur) <= w.Version {
			m.commitWrite(rep, int(w.Addr.Off), w.Version+1, w.Allocated, w.Value)
			delete(rep.lockOwner, w.Addr.Off)
			if !w.Allocated {
				m.freeSlotAtPrimary(rep, int(w.Addr.Off))
			}
		} else if owner, ok := rep.lockOwner[w.Addr.Off]; ok && owner == rt.id {
			// Already applied by an earlier replay: just drop our lock.
			// Another transaction's lock (and its owner entry) must be
			// left strictly alone — its own decision releases it.
			regionmem.Unlock(rep.mem, int(w.Addr.Off))
			delete(rep.lockOwner, w.Addr.Off)
		}
	}
	rt.lockedObjs = nil
}

// freeSlotAtPrimary returns a freed object's slot to the allocator,
// queueing it while allocator recovery is scanning (§5.5).
func (m *Machine) freeSlotAtPrimary(rep *replica, off int) {
	if rep.allocRecovering {
		rep.freeQ = append(rep.freeQ, off)
		return
	}
	if rep.alloc != nil {
		rep.alloc.Free(off)
	}
}

// releaseLocks undoes a transaction's locks after an ABORT record.
func (m *Machine) releaseLocks(rt *remoteTx) {
	for _, addr := range rt.lockedObjs {
		rep := m.replicas[addr.Region]
		if rep == nil {
			continue
		}
		if owner, ok := rep.lockOwner[addr.Off]; ok && owner == rt.id {
			regionmem.Unlock(rep.mem, int(addr.Off))
			delete(rep.lockOwner, addr.Off)
		}
	}
	rt.lockedObjs = nil
}

// truncateTx performs §4 step 5 at a participant: backups apply the
// transaction's writes to their replicas, the transaction's log frames are
// reclaimed, and the id joins the truncated set.
func (m *Machine) truncateTx(lr *logReader, key proto.CoordKey, local uint64) {
	k := mtl{m: key.Machine, t: key.Thread, local: local}
	if rt := m.pend[k]; rt != nil {
		if rt.saw&(proto.SawAbort|proto.SawAbortRecovery) == 0 {
			m.applyAtBackup(rt)
		}
		delete(m.pend, k)
	}
	m.truncDomainFor(key).add(local)
	for _, seq := range lr.frames[k] {
		lr.rd.Truncate(seq)
	}
	delete(lr.frames, k)
}

// applyAtBackup applies a committed transaction's writes to regions this
// machine backs. Updates are version-gated so replay and reordering are
// harmless.
func (m *Machine) applyAtBackup(rt *remoteTx) {
	if rt.lock == nil {
		return
	}
	for _, w := range rt.lock.Writes {
		rep := m.replicas[w.Addr.Region]
		if rep == nil || rep.primary {
			continue
		}
		cur := regionmem.ReadHeader(rep.mem, int(w.Addr.Off))
		if w.Version+1 > regionmem.Version(cur) {
			m.commitWrite(rep, int(w.Addr.Off), w.Version+1, w.Allocated, w.Value)
		}
	}
}

// recordIsRecovering evaluates the §5.3 step 3 predicate for a record
// using the region epochs distributed in NEW-CONFIG. Participants see only
// written regions; the coordinator additionally checks its read set.
func (m *Machine) recordIsRecovering(rec *proto.Record) bool {
	if rec.Tx.Config >= m.config.ID {
		return false
	}
	if !m.config.Member(rec.Tx.Machine) {
		return true
	}
	for _, region := range rec.Regions {
		rm := m.mappings[region]
		if rm == nil || rm.LastReplicaChange >= m.config.ID {
			return true
		}
	}
	return false
}

// rpcAllocSlot serves a slot-reservation request at the region's primary
// (the free lists live only there, §5.5).
func (m *Machine) rpcAllocSlot(from int, id uint64, req *allocSlotReq) {
	if !m.isMember(from) {
		return // §5.2: no slot reservations for non-member coordinators
	}
	off, ver, err := m.allocSlotLocal(req.Region, req.Size)
	// Doorbell: the coordinator's execute phase is blocked on this slot.
	m.sendDoorbell(from, &rpcReply{ID: id, Body: &allocSlotResp{
		Region: req.Region, OK: err == nil, Off: off, Version: ver,
	}})
}

// rpcValidate serves RPC validation for read-only transactions: the reply
// is matched by envelope id because there is no coordinator-side
// transaction record to route through.
func (m *Machine) rpcValidate(from int, id uint64, req *proto.ValidateReq) {
	if !m.isMember(from) {
		return // §5.2: no validation service for non-member coordinators
	}
	ok := true
	for i, addr := range req.Addrs {
		rep := m.replicas[addr.Region]
		if rep == nil || !rep.primary ||
			!validHeaderWord(regionmem.ReadHeader(rep.mem, int(addr.Off)), req.Versions[i]) {
			ok = false
			break
		}
	}
	// Doorbell: a read-only commit is blocked on this validation verdict.
	m.sendDoorbell(from, &rpcReply{ID: id, Body: &proto.ValidateReply{OK: ok}})
}

// rpcMapping answers a region-placement cache miss. The response is a bare
// MappingResp (not an rpcReply): mapping fetches are keyed by region, not
// request id, so late responses still refresh the cache.
func (m *Machine) rpcMapping(from int, _ uint64, req *proto.MappingReq) {
	var resp proto.MappingResp
	// Echo the region even on a miss so the requester's waiters wake (and
	// retry with backoff) instead of hanging until some unrelated refresh.
	resp.Map.Region = req.Region
	if m.cm != nil {
		if rm := m.cm.regions[req.Region]; rm != nil {
			resp = proto.MappingResp{OK: true, Map: *rm}
		}
	} else if rm := m.mappings[req.Region]; rm != nil {
		resp = proto.MappingResp{OK: true, Map: *rm}
	}
	m.send(from, &resp)
}

// onValidateReq validates a read set over RPC at the primary (§4 step 2).
func (m *Machine) onValidateReq(src int, req *proto.ValidateReq) {
	if !m.isMember(src) {
		return // §5.2: no validation service for non-member coordinators
	}
	ok := true
	for i, addr := range req.Addrs {
		rep := m.replicas[addr.Region]
		if rep == nil || !rep.primary ||
			!validHeaderWord(regionmem.ReadHeader(rep.mem, int(addr.Off)), req.Versions[i]) {
			ok = false
			break
		}
	}
	// Doorbell: the coordinator's validate phase is blocked on this reply.
	m.sendDoorbell(src, &proto.ValidateReply{Tx: req.Tx, OK: ok})
}
