package core

import (
	"errors"
	"testing"

	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/sim"
)

// Whole-cluster power failure tests (§2.1 / §5's durability claim).

func TestPowerCyclePreservesCommittedData(t *testing.T) {
	c, _ := testCluster(t, Options{NumMachines: 5, Seed: 51})
	addr := writeObject(t, c, c.Machine(1), []byte("i survive!"))
	c.RunFor(20 * sim.Millisecond)

	c.PowerCycle(100 * sim.Millisecond)
	c.RunFor(300 * sim.Millisecond)

	// All machines back, one configuration, advanced id.
	cfg := c.Machine(0).ConfigID()
	if cfg < 2 {
		t.Fatalf("no recovery reconfiguration: config %d", cfg)
	}
	for _, m := range c.Machines {
		if !m.Alive() {
			t.Fatalf("machine %d did not restart", m.ID)
		}
		if m.ConfigID() != cfg {
			t.Fatalf("machine %d in config %d, want %d", m.ID, m.ConfigID(), cfg)
		}
	}
	if got := readObject(t, c, c.Machine(3), addr, 10); string(got) != "i survive!" {
		t.Fatalf("data lost across power cycle: %q", got)
	}
	// The cluster accepts new commits.
	addr2 := writeObject(t, c, c.Machine(2), []byte("post-power"))
	if got := readObject(t, c, c.Machine(4), addr2, 10); string(got) != "post-power" {
		t.Fatalf("post-restore commit broken: %q", got)
	}
}

func TestPowerFailureResolvesInFlightTransactions(t *testing.T) {
	c, _ := testCluster(t, Options{NumMachines: 5, Seed: 53})
	addr := writeObject(t, c, c.Machine(1), []byte("vvvvvvvv"))
	c.RunFor(20 * sim.Millisecond)

	// Start a stream of updates and cut power mid-stream.
	var results []error
	stop := false
	m := c.Machine(1)
	var loop func(i byte)
	loop = func(i byte) {
		if stop || !m.Alive() {
			return
		}
		tx := m.Begin(int(i) % m.Threads())
		tx.Read(addr, 8, func(_ []byte, err error) {
			if err != nil {
				results = append(results, err)
				return
			}
			tx.Write(addr, []byte{i, i, i, i, i, i, i, i})
			tx.Commit(func(err error) {
				results = append(results, err)
				loop(i + 1)
			})
		})
	}
	loop(1)
	c.RunFor(5 * sim.Millisecond)
	c.PowerCycle(50 * sim.Millisecond)
	c.RunFor(500 * sim.Millisecond)
	stop = true
	c.RunFor(10 * sim.Millisecond)

	if len(results) < 3 {
		t.Fatalf("only %d transactions ran", len(results))
	}
	// Every transaction must have a definite outcome (no hangs), and
	// every error must be a recognized class.
	for _, err := range results {
		if err != nil && !errors.Is(err, ErrConflict) && !errors.Is(err, ErrAborted) &&
			!errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrReadLocked) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// No object may be left locked after recovery.
	c.RunFor(100 * sim.Millisecond)
	for _, mm := range c.Machines {
		for rid, rep := range mm.replicas {
			if rep.primary {
				word := regionmem.ReadHeader(rep.mem, int(addr.Off))
				if rid == addr.Region && regionmem.Locked(word) {
					t.Fatal("object left locked after power-failure recovery")
				}
			}
		}
	}
	// The final value must be consistent across all replicas of the
	// region after truncation settles.
	var vals [][]byte
	rm := c.Machine(0).mappings[addr.Region]
	for _, r := range rm.Replicas {
		rep := c.Machine(int(r)).replicas[addr.Region]
		_, data := regionmem.ReadObject(rep.mem, int(addr.Off), 8)
		vals = append(vals, data)
	}
	for i := 1; i < len(vals); i++ {
		if string(vals[i]) != string(vals[0]) {
			t.Fatalf("replica divergence after power cycle: %q vs %q", vals[0], vals[i])
		}
	}
}

func TestPowerFailureReportedCommitsSurvive(t *testing.T) {
	// Transactions reported committed before the outage must read back
	// afterwards — the paper's core durability promise.
	c, _ := testCluster(t, Options{NumMachines: 5, Seed: 57})
	type kvpair struct {
		addr proto.Addr
		val  byte
	}
	var committed []kvpair
	for i := byte(1); i <= 10; i++ {
		a := writeObject(t, c, c.Machine(int(i)%5), []byte{i, i, i, i})
		committed = append(committed, kvpair{addr: a, val: i})
	}
	c.PowerCycle(200 * sim.Millisecond)
	c.RunFor(300 * sim.Millisecond)
	for _, kv := range committed {
		got := readObject(t, c, c.Machine(2), kv.addr, 4)
		if got[0] != kv.val {
			t.Fatalf("committed value %d lost: got %d", kv.val, got[0])
		}
	}
}
