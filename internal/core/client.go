package core

import (
	"farm/internal/fabric"
	"farm/internal/nvram"
	"farm/internal/proto"
)

// This file implements external clients (§3, §5.2): machines outside the
// FaRM configuration that talk to it with messages, not one-sided RDMA.
// Because these requests are served by CPUs, the classic lease technique
// applies: a member serves external requests only while it holds a valid
// configuration, and requests are blocked from the moment a machine
// suspects/learns of a reconfiguration until NEW-CONFIG-COMMIT ("At this
// point it starts blocking all external client requests" ... "All members
// now unblock previously blocked external client requests").

// clientReadReq asks a member to read an object on the client's behalf.
type clientReadReq struct {
	Token uint64
	Addr  proto.Addr
	Size  int
}

// clientUpdateReq asks a member to run a read-modify-write transaction on
// the client's behalf (value replaces the object's payload).
type clientUpdateReq struct {
	Token uint64
	Addr  proto.Addr
	Value []byte
}

// clientResp answers either request.
type clientResp struct {
	Token uint64
	Data  []byte
	Err   string
}

// Client is an external endpoint: its own NIC, no membership, message-only
// access.
type Client struct {
	ID  int
	c   *Cluster
	nic *fabric.NIC

	nextToken uint64
	waiters   map[uint64]func([]byte, error)
}

// NewClient attaches an external client to the fabric. Client ids live
// above the machine id space.
func (c *Cluster) NewClient() *Client {
	id := len(c.Machines) + 1000 + c.clients
	c.clients++
	cl := &Client{
		ID:      id,
		c:       c,
		nic:     c.Net.AddMachine(fabric.MachineID(id), nvram.NewStore()),
		waiters: make(map[uint64]func([]byte, error)),
	}
	deliver := func(resp *clientResp) {
		if w := cl.waiters[resp.Token]; w != nil {
			delete(cl.waiters, resp.Token)
			if resp.Err != "" {
				w(nil, ErrUnavailable)
				return
			}
			w(resp.Data, nil)
		}
	}
	cl.nic.SetMessageHandler(func(_ fabric.MachineID, msg interface{}) {
		// Members reply through their coalescing transport, so responses
		// may arrive batched.
		if b, ok := msg.(*fabric.Batch); ok {
			for _, inner := range b.Msgs {
				if resp, ok := inner.(*clientResp); ok {
					deliver(resp)
				}
			}
			return
		}
		if resp, ok := msg.(*clientResp); ok {
			deliver(resp)
		}
	})
	return cl
}

// Read asks member `server` for size bytes at addr.
func (cl *Client) Read(server int, addr proto.Addr, size int, cb func(data []byte, err error)) {
	cl.nextToken++
	cl.waiters[cl.nextToken] = cb
	cl.nic.Send(fabric.MachineID(server), &clientReadReq{Token: cl.nextToken, Addr: addr, Size: size})
}

// Update asks member `server` to transactionally overwrite addr's payload.
func (cl *Client) Update(server int, addr proto.Addr, value []byte, cb func(err error)) {
	cl.nextToken++
	cl.waiters[cl.nextToken] = func(_ []byte, err error) { cb(err) }
	cl.nic.Send(fabric.MachineID(server), &clientUpdateReq{Token: cl.nextToken, Addr: addr, Value: value})
}

// --- Member side ---

// blockClients starts queueing external requests (reconfiguration in
// sight, §5.2 steps 1 and 6).
func (m *Machine) blockClients() { m.clientsBlocked = true }

// unblockClients serves everything queued (step 7).
func (m *Machine) unblockClients() {
	m.clientsBlocked = false
	q := m.clientQueue
	m.clientQueue = nil
	for _, fn := range q {
		fn()
	}
}

// serveClient gates one request on the block state.
func (m *Machine) serveClient(fn func()) {
	if m.clientsBlocked {
		m.clientQueue = append(m.clientQueue, fn)
		return
	}
	fn()
}

// onClientRead serves a read on a worker thread.
func (m *Machine) onClientRead(src int, req *clientReadReq) {
	m.serveClient(func() {
		m.readObject(0, req.Addr, req.Size, 0, 0, func(_ uint64, data []byte, err error) {
			resp := &clientResp{Token: req.Token}
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Data = data
			}
			m.sendToClient(src, resp)
		})
	})
}

// onClientUpdate runs the client's read-modify-write as coordinator.
func (m *Machine) onClientUpdate(src int, req *clientUpdateReq) {
	m.serveClient(func() {
		tx := m.Begin(0)
		tx.Read(req.Addr, len(req.Value), func(_ []byte, err error) {
			if err != nil {
				m.sendToClient(src, &clientResp{Token: req.Token, Err: err.Error()})
				return
			}
			tx.Write(req.Addr, req.Value)
			tx.Commit(func(err error) {
				resp := &clientResp{Token: req.Token}
				if err != nil {
					resp.Err = err.Error()
				}
				m.sendToClient(src, resp)
			})
		})
	})
}

// sendToClient replies over the message transport (clients are not
// members; precise membership does not apply to them, leases do — a
// machine that lost its configuration stops replying by virtue of being
// evicted and blocked).
func (m *Machine) sendToClient(dst int, msg interface{}) {
	m.send(dst, msg)
}
