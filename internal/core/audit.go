package core

// This file implements cluster-wide state-integrity auditing: every
// replica maintains an incremental order-independent digest of its
// committed state (internal/audit), and a region's primary can, on demand,
// fence the region at a quiescent point, snapshot digests at itself and
// every backup, and compare them. On divergence it drills down
// (region → block → object) to the first divergent object and — when
// Options.AuditRepair is set — fences the divergent backup into the §5.4
// re-replication path in force-copy mode, then re-audits the repair.
//
// Two digests per replica are compared:
//
//   - Scan: recomputed from the raw bytes at snapshot time — the ground
//     truth. Cross-replica comparison uses scans, so silent corruption
//     (which bypasses the incremental hooks by definition) is caught.
//   - Inc: the incrementally maintained value. A replica whose Inc
//     disagrees with its own Scan has either corrupt memory or a missed
//     write hook; this self-check runs on every snapshot.
//
// Fencing: the primary rejects new LOCK acquisitions on the audited
// region (failures surface as ordinary conflict aborts that coordinators
// retry), then waits for in-flight transactions to drain — no held locks,
// no pending log records touching the region — before snapshotting.
// Backups run the same settle wait so truncation lag cannot masquerade as
// divergence. A snapshot that cannot settle reports inconclusive, which
// is a skip, never a violation. Any configuration change aborts all
// in-flight audits and drops every fence.

import (
	"fmt"

	"farm/internal/audit"
	"farm/internal/proto"
	"farm/internal/regionmem"
	"farm/internal/sim"
	"farm/internal/trace"
)

const (
	// auditSettlePoll is the interval between quiescence checks.
	auditSettlePoll = 500 * sim.Microsecond
	// auditSettleRounds is how many consecutive quiet polls count as
	// settled (two, so records still in flight between NVRAM log and the
	// poll loop get one full poll cycle to surface).
	auditSettleRounds = 2
	// auditSettleDeadline bounds one settle wait; exceeding it makes the
	// snapshot inconclusive (chosen below TxStallTimeout: a stuck
	// transaction makes the audit skip, not block).
	auditSettleDeadline = 25 * sim.Millisecond
	// auditDeadline bounds a whole audit including repair re-replication
	// and the re-audit; a run that exceeds it reports inconclusive and
	// drops its fence.
	auditDeadline = 150 * sim.Millisecond
)

// AuditReport is the outcome of one region audit.
type AuditReport struct {
	ID     uint64
	Region uint32
	// Conclusive is false when the audit could not settle or complete
	// (fence contention, recovery in flight, deadline) — a skip.
	Conclusive bool
	// Clean reports digest equality across all replicas (valid only when
	// Conclusive).
	Clean bool
	// Backup/Block/Off localize the first divergence (-1 when unset):
	// the diverged machine, block index, and exact object offset.
	Backup int
	Block  int
	Off    int
	// Repaired reports that the divergent backup was re-replicated and
	// the re-audit came back clean.
	Repaired bool
	Note     string
}

// String renders the report for logs and replay files.
func (r AuditReport) String() string {
	switch {
	case !r.Conclusive:
		return fmt.Sprintf("audit %#x region %d: inconclusive (%s)", r.ID, r.Region, r.Note)
	case r.Clean:
		return fmt.Sprintf("audit %#x region %d: clean", r.ID, r.Region)
	default:
		s := fmt.Sprintf("audit %#x region %d: DIVERGED %s", r.ID, r.Region, r.Divergence())
		if r.Repaired {
			s += " (repaired, re-audit clean)"
		} else if r.Note != "" {
			s += " (" + r.Note + ")"
		}
		return s
	}
}

// Divergence renders the localization: which replica diverged and where.
func (r AuditReport) Divergence() string {
	if r.Backup < 0 {
		return ""
	}
	s := fmt.Sprintf("backup m%d", r.Backup)
	if r.Block >= 0 {
		s += fmt.Sprintf(" block %d", r.Block)
	}
	if r.Off >= 0 {
		s += fmt.Sprintf(" object @%d", r.Off)
	}
	return s
}

// auditRun is the primary-side state of one in-flight region audit.
type auditRun struct {
	id     uint64
	region uint32
	cfg    uint64
	rep    *replica
	cb     func(AuditReport)
	report AuditReport
	span   trace.Ctx

	primaryScan   uint64
	primaryBlocks map[int]uint64
	backups       []int
	replies       map[int]*proto.AuditSnapReply
	awaiting      int

	// reauditing marks the verification pass after a repair.
	reauditing bool
	done       bool
}

// commitWrite installs a committed write at a replica through the
// digest-aware path: the slot's old state is unfolded and its new state
// folded into the replica's incremental digest (O(1), zero allocations).
// Blocks whose class this replica does not know yet stay outside the
// digest domain until their header arrives.
func (m *Machine) commitWrite(rep *replica, off int, newVersion uint64, allocated bool, payload []byte) {
	class := rep.headers[off/m.c.Opts.Layout.BlockSize]
	regionmem.CommitWriteDigest(rep.mem, off, newVersion, allocated, payload, class, &rep.dig)
}

// foldBlock adds a newly classed block's current contents to the digest
// domain (called when a block header is learned: allocation hook at the
// primary, BLOCK-HEADER-SYNC or an audit snapshot's header map at backups).
func (m *Machine) foldBlock(rep *replica, block, class int) {
	base := block * m.c.Opts.Layout.BlockSize
	for off := base; off+class <= base+m.c.Opts.Layout.BlockSize; off += class {
		rep.dig.Fold(off, regionmem.MaskLock(regionmem.ReadHeader(rep.mem, off)),
			rep.mem[off+regionmem.HeaderSize:off+class])
	}
}

// StartRegionAudit audits one region this machine is primary for. cb
// always fires exactly once — immediately with an inconclusive report if
// the region is not auditable here, or when the audit completes or hits
// its deadline.
func (m *Machine) StartRegionAudit(region uint32, cb func(AuditReport)) {
	report := AuditReport{Region: region, Backup: -1, Block: -1, Off: -1}
	rep := m.replicas[region]
	if !m.alive || rep == nil || !rep.primary || !rep.active ||
		rep.auditFence || m.regionBlocked(region) || rep.allocRecovering {
		report.Note = "primary not auditable"
		m.c.Counters.Inc("audit_skipped", 1)
		cb(report)
		return
	}
	m.nextAudit++
	id := uint64(m.ID+1)<<40 | m.nextAudit
	report.ID = id
	run := &auditRun{id: id, region: region, cfg: m.config.ID, rep: rep, cb: cb, report: report}
	m.audits[id] = run
	rep.auditFence = true
	m.c.Counters.Inc("audit_started", 1)
	if m.trb != nil {
		run.span = m.trb.Begin("audit", "audit", m.c.Eng.Now(), id, 0, int64(region))
	}
	m.c.Eng.After(auditDeadline, func() {
		if !run.done {
			run.report.Note = "audit deadline"
			m.finishAudit(run)
		}
	})
	m.auditSettle(run)
}

// regionQuiet reports whether no transaction is in flight against the
// region at this machine: no held object locks and no pending (non-
// aborted, un-truncated) log records that write it. Aggregation only, so
// ranging the maps directly is safe (see order.go).
func (m *Machine) regionQuiet(region uint32, rep *replica) bool {
	if len(rep.lockOwner) != 0 {
		return false
	}
	for _, rt := range m.pend {
		if rt.saw&(proto.SawAbort|proto.SawAbortRecovery) != 0 {
			continue
		}
		if remoteTxTouches(rt, region) {
			return false
		}
	}
	return true
}

// remoteTxTouches reports whether a pending transaction writes the region.
func remoteTxTouches(rt *remoteTx, region uint32) bool {
	if rt.lock != nil {
		for _, w := range rt.lock.Writes {
			if w.Addr.Region == region {
				return true
			}
		}
		return false
	}
	for _, r := range rt.regionHint {
		if r == region {
			return true
		}
	}
	return false
}

// auditSettle waits (behind the fence) for the region to quiesce at the
// primary, then snapshots. Settle failure makes the audit inconclusive.
func (m *Machine) auditSettle(run *auditRun) {
	deadline := m.c.Eng.Now() + auditSettleDeadline
	quiet := 0
	var poll func()
	poll = func() {
		if run.done {
			return
		}
		if !m.alive || m.config.ID != run.cfg {
			run.report.Note = "configuration changed"
			m.finishAudit(run)
			return
		}
		if m.regionQuiet(run.region, run.rep) {
			quiet++
			if quiet >= auditSettleRounds {
				m.auditSnapshot(run)
				return
			}
		} else {
			quiet = 0
		}
		if m.c.Eng.Now() >= deadline {
			run.report.Note = "settle timeout at primary"
			m.finishAudit(run)
			return
		}
		m.c.Eng.After(auditSettlePoll, poll)
	}
	poll()
}

// auditSnapshot computes the primary's digests (running the incremental
// vs. scan self-check) and queries every live backup.
func (m *Machine) auditSnapshot(run *auditRun) {
	rep, layout := run.rep, m.c.Opts.Layout
	run.primaryScan = audit.ScanRegion(rep.mem, layout.BlockSize, rep.headers)
	run.primaryBlocks = audit.BlockDigests(rep.mem, layout.BlockSize, rep.headers)
	if inc := rep.dig.Value(); inc != run.primaryScan {
		// The primary's own memory disagrees with its incremental digest:
		// local corruption or a missed write hook. Re-replication flows
		// from the primary, so this cannot be repaired from a backup —
		// report it as a divergence at the primary itself.
		run.report.Conclusive = true
		run.report.Backup = m.ID
		run.report.Note = "primary incremental/scan mismatch"
		m.c.Counters.Inc("audit_self_mismatch", 1)
		m.auditDiverged(run)
		return
	}

	run.backups = run.backups[:0]
	rm := m.mappings[run.region]
	if rm != nil {
		for _, b := range rm.Replicas[1:] {
			if int(b) != m.ID && m.isMember(int(b)) {
				run.backups = append(run.backups, int(b))
			}
		}
	}
	if len(run.backups) == 0 {
		run.report.Conclusive = true
		run.report.Clean = true
		run.report.Note = "no backups"
		m.finishAudit(run)
		return
	}
	headers := make(map[int]int, len(rep.headers))
	for b, s := range rep.headers {
		headers[b] = s
	}
	run.replies = make(map[int]*proto.AuditSnapReply, len(run.backups))
	run.awaiting = len(run.backups)
	for _, b := range run.backups {
		m.sendCtx(b, &proto.AuditSnap{
			AuditID: run.id, Config: run.cfg, Region: run.region, Headers: headers,
		}, run.span)
	}
}

// onAuditSnap is the backup side: install any block headers we are
// missing (folding the new blocks into the digest domain — the audit
// doubles as allocator-metadata anti-entropy), settle locally, then reply
// with incremental, scan and per-block digests. A backup that cannot
// settle — pending transactions, data recovery in flight, configuration
// mismatch — answers Settled=false and the audit is inconclusive.
func (m *Machine) onAuditSnap(src int, v *proto.AuditSnap) {
	reply := &proto.AuditSnapReply{AuditID: v.AuditID, Config: m.config.ID, Region: v.Region}
	rep := m.replicas[v.Region]
	if v.Config != m.config.ID || rep == nil || rep.primary ||
		rep.needsDataRecovery || rep.repairing {
		m.send(src, reply)
		return
	}
	for _, b := range intKeys(v.Headers) {
		if _, known := rep.headers[b]; !known {
			rep.headers[b] = v.Headers[b]
			m.foldBlock(rep, b, v.Headers[b])
		}
	}
	layout := m.c.Opts.Layout
	cfg := m.config.ID
	deadline := m.c.Eng.Now() + auditSettleDeadline
	quiet := 0
	var poll func()
	poll = func() {
		if !m.alive || m.config.ID != cfg || m.replicas[v.Region] != rep ||
			rep.needsDataRecovery || rep.primary {
			return // audit aborted or superseded; primary's deadline handles it
		}
		if m.regionQuiet(v.Region, rep) {
			quiet++
			if quiet >= auditSettleRounds {
				reply.Settled = true
				reply.Inc = rep.dig.Value()
				reply.Scan = audit.ScanRegion(rep.mem, layout.BlockSize, rep.headers)
				reply.Blocks = audit.BlockDigests(rep.mem, layout.BlockSize, rep.headers)
				m.send(src, reply)
				return
			}
		} else {
			quiet = 0
		}
		if m.c.Eng.Now() >= deadline {
			m.send(src, reply) // Settled: false
			return
		}
		m.c.Eng.After(auditSettlePoll, poll)
	}
	poll()
}

// onAuditSnapReply collects backup snapshots at the primary.
func (m *Machine) onAuditSnapReply(src int, v *proto.AuditSnapReply) {
	run := m.audits[v.AuditID]
	if run == nil || run.done || run.replies == nil || run.replies[src] != nil {
		return
	}
	run.replies[src] = v
	run.awaiting--
	if run.awaiting == 0 {
		m.auditCompare(run)
	}
}

// auditCompare judges the collected snapshots: all settled and all scans
// equal (plus per-replica self-checks) is a pass; any unsettled reply is
// inconclusive; otherwise the first divergent backup (lowest machine id)
// is drilled into.
func (m *Machine) auditCompare(run *auditRun) {
	for _, b := range run.backups {
		v := run.replies[b]
		if v == nil || !v.Settled || v.Config != run.cfg {
			run.report.Note = fmt.Sprintf("backup m%d not settled", b)
			m.finishAudit(run)
			return
		}
	}
	for _, b := range run.backups {
		v := run.replies[b]
		if v.Scan == run.primaryScan && v.Inc == v.Scan {
			continue
		}
		// Divergence. Localize: first divergent block, then first
		// divergent object within it.
		run.report.Conclusive = true
		run.report.Backup = b
		if v.Inc != v.Scan {
			run.report.Note = "backup incremental/scan mismatch"
		}
		blk := audit.FirstDivergentBlock(intKeys(run.primaryBlocks), run.primaryBlocks, v.Blocks)
		if blk < 0 {
			// Scans agree per block yet something mismatched (stale
			// incremental only): no object to localize, repair directly.
			m.auditDiverged(run)
			return
		}
		run.report.Block = blk
		m.sendCtx(b, &proto.AuditObjectsReq{
			AuditID: run.id, Config: run.cfg, Region: run.region, Block: blk,
		}, run.span)
		return
	}
	// All backups match the primary.
	if run.reauditing {
		run.report.Repaired = true
		run.report.Clean = false
	} else {
		run.report.Clean = true
	}
	run.report.Conclusive = true
	m.finishAudit(run)
}

// onAuditObjectsReq serves the drill-down at a diverged backup: the named
// block's per-slot digests in slot order.
func (m *Machine) onAuditObjectsReq(src int, v *proto.AuditObjectsReq) {
	rep := m.replicas[v.Region]
	if rep == nil || v.Config != m.config.ID {
		return
	}
	class := rep.headers[v.Block]
	if class == 0 {
		return
	}
	m.send(src, &proto.AuditObjectsReply{
		AuditID: v.AuditID, Region: v.Region, Block: v.Block,
		Objects: audit.ObjectDigests(rep.mem, v.Block*m.c.Opts.Layout.BlockSize,
			m.c.Opts.Layout.BlockSize, class),
	})
}

// onAuditObjectsReply finishes localization at the primary: the first
// divergent slot index becomes the exact object offset.
func (m *Machine) onAuditObjectsReply(_ int, v *proto.AuditObjectsReply) {
	run := m.audits[v.AuditID]
	if run == nil || run.done || run.report.Block != v.Block {
		return
	}
	layout := m.c.Opts.Layout
	class := run.rep.headers[v.Block]
	if class != 0 {
		mine := audit.ObjectDigests(run.rep.mem, v.Block*layout.BlockSize, layout.BlockSize, class)
		if slot := audit.FirstDivergentObject(mine, v.Objects); slot >= 0 {
			run.report.Off = v.Block*layout.BlockSize + slot*class
		}
	}
	m.auditDiverged(run)
}

// auditDiverged records a localized divergence and either hands the
// backup to the repair path (Options.AuditRepair, first pass only) or
// finishes with the failure.
func (m *Machine) auditDiverged(run *auditRun) {
	m.c.Counters.Inc("audit_divergence", 1)
	m.c.trace("audit-divergence", run.report.Backup, int(run.region))
	if m.trb != nil {
		m.trb.Event("audit", "divergence", m.c.Eng.Now(), run.id, run.span.Span, int64(run.report.Off))
	}
	if !m.c.Opts.AuditRepair || run.reauditing || run.report.Backup == m.ID {
		if run.reauditing {
			run.report.Note = "repair did not converge"
		}
		m.finishAudit(run)
		return
	}
	m.c.Counters.Inc("audit_repair_started", 1)
	m.sendCtx(run.report.Backup, &proto.AuditRepair{
		AuditID: run.id, Config: run.cfg, Region: run.region,
	}, run.span)
}

// onAuditRepair fences this backup replica into force-copy
// re-replication: the existing §5.4 data-recovery path refetches the
// region from the primary, overwriting every differing slot (the audit
// fence at the primary keeps the region quiescent meanwhile).
func (m *Machine) onAuditRepair(src int, v *proto.AuditRepair) {
	rep := m.replicas[v.Region]
	if v.Config != m.config.ID || rep == nil || rep.primary ||
		rep.needsDataRecovery || rep.repairing {
		m.send(src, &proto.AuditRepairDone{AuditID: v.AuditID, Config: m.config.ID, Region: v.Region})
		return
	}
	rep.repairing = true
	rep.repairAuditID = v.AuditID
	rep.needsDataRecovery = true
	m.c.trace("audit-repair", m.ID, int(v.Region))
	m.startDataRecovery(rep)
}

// onAuditRepairDone re-audits the repaired region (the snapshot/compare
// machinery runs again; a second divergence is reported, not re-repaired).
func (m *Machine) onAuditRepairDone(_ int, v *proto.AuditRepairDone) {
	run := m.audits[v.AuditID]
	if run == nil || run.done {
		return
	}
	if !v.OK || v.Config != run.cfg {
		run.report.Note = "repair failed"
		m.finishAudit(run)
		return
	}
	run.reauditing = true
	run.replies = nil
	m.auditSettle(run)
}

// finishAudit drops the fence, emits the trace/counter epilogue, and
// delivers the report. Idempotent; runs even on a machine that died
// mid-audit so cluster-level collectors always complete.
func (m *Machine) finishAudit(run *auditRun) {
	if run.done {
		return
	}
	run.done = true
	delete(m.audits, run.id)
	run.rep.auditFence = false
	switch {
	case !run.report.Conclusive:
		m.c.Counters.Inc("audit_inconclusive", 1)
	case run.report.Clean || run.report.Repaired:
		m.c.Counters.Inc("audit_clean", 1)
	}
	if run.span.Valid() {
		var arg int64
		if run.report.Conclusive && !run.report.Clean {
			arg = 1
		}
		if !run.report.Conclusive {
			arg = 2
		}
		m.trb.End(run.span, m.c.Eng.Now(), arg)
	}
	run.cb(run.report)
}

// abortAudits cancels every in-flight audit this machine coordinates and
// clears all fences and repair marks — called on any configuration change
// and on power restoration, so a fence can never leak past the epoch it
// was taken in.
func (m *Machine) abortAudits(reason string) {
	for _, id := range u64Keys(m.audits) {
		run := m.audits[id]
		run.report.Note = reason
		m.finishAudit(run)
	}
	for _, r := range m.replicas {
		r.auditFence = false
		r.repairing = false
	}
}

// StartAudit audits every region of the cluster (each at its primary)
// and delivers one report per region, sorted by region id, when all have
// completed. Regions whose primary is unknown or dead report
// inconclusive. done always fires within auditDeadline of the last
// region's start.
func (c *Cluster) StartAudit(done func([]AuditReport)) {
	var src *Machine
	for _, m := range c.Machines {
		if m.alive && m.config.Member(uint16(m.ID)) && (src == nil || m.config.ID > src.config.ID) {
			src = m
		}
	}
	if src == nil {
		done(nil)
		return
	}
	regions := regionKeys(src.mappings)
	if len(regions) == 0 {
		done(nil)
		return
	}
	reports := make([]AuditReport, len(regions))
	remaining := len(regions)
	for i, r := range regions {
		i, r := i, r
		collect := func(rep AuditReport) {
			reports[i] = rep
			remaining--
			if remaining == 0 {
				done(reports)
			}
		}
		rm := src.mappings[r]
		if rm == nil || len(rm.Replicas) == 0 {
			collect(AuditReport{Region: r, Backup: -1, Block: -1, Off: -1, Note: "no mapping"})
			continue
		}
		p := c.Machines[int(rm.Replicas[0])]
		if !p.alive {
			collect(AuditReport{Region: r, Backup: -1, Block: -1, Off: -1, Note: "primary dead"})
			continue
		}
		p.StartRegionAudit(r, collect)
	}
}

// RegionReplicas returns the region's replica machines (primary first)
// according to the latest configuration any alive member holds — the
// placement audits run against. Nil if no alive member knows the region.
func (c *Cluster) RegionReplicas(region uint32) []int {
	var src *Machine
	for _, m := range c.Machines {
		if m.alive && m.config.Member(uint16(m.ID)) && (src == nil || m.config.ID > src.config.ID) {
			src = m
		}
	}
	if src == nil || src.mappings[region] == nil {
		return nil
	}
	out := make([]int, 0, len(src.mappings[region].Replicas))
	for _, r := range src.mappings[region].Replicas {
		out = append(out, int(r))
	}
	return out
}

// CorruptBackupObject flips one payload byte of a slot in a backup
// replica of the region, bypassing every write hook — simulated silent
// corruption for audit fault-injection tests. With allocated=true the
// first live object is hit; with allocated=false the last free slot (a
// target no workload will overwrite, for corruption that must persist
// under concurrent traffic). Returns the victim machine and object
// offset.
func (c *Cluster) CorruptBackupObject(region uint32, allocated bool) (machine, off int, ok bool) {
	var src *Machine
	for _, m := range c.Machines {
		if m.alive && m.config.Member(uint16(m.ID)) && (src == nil || m.config.ID > src.config.ID) {
			src = m
		}
	}
	if src == nil {
		return -1, -1, false
	}
	rm := src.mappings[region]
	if rm == nil || len(rm.Replicas) < 2 {
		return -1, -1, false
	}
	layout := c.Opts.Layout
	for _, b := range rm.Replicas[1:] {
		bm := c.Machines[int(b)]
		rep := bm.replicas[region]
		if !bm.alive || rep == nil || rep.primary {
			continue
		}
		blocks := intKeys(rep.headers)
		if !allocated {
			// Search from the top so the victim slot is the least likely
			// to be claimed by the allocator later.
			for i, j := 0, len(blocks)-1; i < j; i, j = i+1, j-1 {
				blocks[i], blocks[j] = blocks[j], blocks[i]
			}
		}
		for _, blk := range blocks {
			class := rep.headers[blk]
			base := blk * layout.BlockSize
			slots := layout.BlockSize / class
			for s := 0; s < slots; s++ {
				slot := s
				if !allocated {
					slot = slots - 1 - s
				}
				o := base + slot*class
				if regionmem.Allocated(regionmem.ReadHeader(rep.mem, o)) != allocated {
					continue
				}
				rep.mem[o+regionmem.HeaderSize] ^= 0xA5
				c.Counters.Inc("corruption_injected", 1)
				c.trace("corrupt", bm.ID, o)
				return bm.ID, o, true
			}
		}
	}
	return -1, -1, false
}
