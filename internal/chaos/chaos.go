// Package chaos long-runs the platform under randomized fault injection —
// machine kills, minority partitions, whole-cluster power cycles — while a
// bank-transfer workload executes, then audits the invariants FaRM
// promises: conservation (serializable transfers never create or destroy
// money), durability (committed state survives every fault the
// configuration tolerates), agreement (one configuration), and liveness
// (the surviving majority keeps committing). Every run is deterministic in
// its seed, so a violated invariant is a replayable bug report.
package chaos

import (
	"encoding/binary"
	"fmt"

	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/proto"
	"farm/internal/sim"
)

// Config parameterizes a chaos campaign.
type Config struct {
	Machines int
	Accounts int
	Initial  uint64
	// Duration is virtual time per run.
	Duration sim.Time
	// FaultEvery is the mean interval between injected faults.
	FaultEvery sim.Time
	// KillWeight / PartitionWeight / PowerWeight select fault kinds.
	KillWeight      int
	PartitionWeight int
	PowerWeight     int
	// MaxKills bounds how many machines may stay dead at once (the
	// cluster must keep a ZK-probe majority and f+1 replicas).
	MaxKills int
	Lease    sim.Time
	Seed     uint64
}

// DefaultConfig returns a campaign tuned to finish one run in a few wall
// seconds.
func DefaultConfig() Config {
	return Config{
		Machines:        6,
		Accounts:        24,
		Initial:         1000,
		Duration:        1200 * sim.Millisecond,
		FaultEvery:      150 * sim.Millisecond,
		KillWeight:      3,
		PartitionWeight: 2,
		PowerWeight:     1,
		MaxKills:        1,
		Lease:           5 * sim.Millisecond,
		Seed:            1,
	}
}

// Result summarizes one run.
type Result struct {
	Seed        uint64
	Commits     uint64
	Aborts      uint64
	Kills       int
	Partitions  int
	PowerCycles int
	// Violations lists invariant failures (empty = clean run).
	Violations []string
}

// String renders the result.
func (r Result) String() string {
	status := "OK"
	if len(r.Violations) > 0 {
		status = fmt.Sprintf("VIOLATED %v", r.Violations)
	}
	return fmt.Sprintf("seed=%d commits=%d aborts=%d kills=%d partitions=%d powercycles=%d → %s",
		r.Seed, r.Commits, r.Aborts, r.Kills, r.Partitions, r.PowerCycles, status)
}

// Run executes one chaos run.
func Run(cfg Config) Result {
	res := Result{Seed: cfg.Seed}
	opts := core.Options{NumMachines: cfg.Machines, Seed: cfg.Seed, LeaseDuration: cfg.Lease}
	c := core.New(opts)
	if _, err := c.CreateRegions(0, 3, 0); err != nil {
		res.Violations = append(res.Violations, "setup: "+err.Error())
		return res
	}

	// Open accounts.
	addrs := make([]proto.Addr, cfg.Accounts)
	for i := range addrs {
		i := i
		err := loadgen.RunSync(c, c.Machine(i%cfg.Machines), 0, func(tx *core.Tx, done func(error)) {
			tx.Alloc(8, u64b(cfg.Initial), nil, func(a proto.Addr, err error) {
				if err != nil {
					done(err)
					return
				}
				addrs[i] = a
				done(nil)
			})
		})
		if err != nil {
			res.Violations = append(res.Violations, "open: "+err.Error())
			return res
		}
	}
	total := cfg.Initial * uint64(cfg.Accounts)

	// Transfer drivers on every machine (dead drivers just stop).
	var commits, aborts uint64
	for mi := 0; mi < cfg.Machines; mi++ {
		m := c.Machine(mi)
		rng := sim.NewRand(cfg.Seed*977 + uint64(mi))
		for th := 0; th < 2; th++ {
			th := th
			var drive func()
			drive = func() {
				if !m.Alive() || c.Now() > cfg.Duration {
					return
				}
				from := addrs[rng.Intn(cfg.Accounts)]
				to := addrs[rng.Intn(cfg.Accounts)]
				if from == to {
					c.Eng.After(5*sim.Microsecond, drive)
					return
				}
				amount := uint64(rng.Intn(9) + 1)
				tx := m.Begin(th)
				tx.Read(from, 8, func(fb []byte, err error) {
					if err != nil {
						aborts++
						c.Eng.After(100*sim.Microsecond, drive)
						return
					}
					tx.Read(to, 8, func(tb []byte, err error) {
						if err != nil {
							aborts++
							c.Eng.After(100*sim.Microsecond, drive)
							return
						}
						if u64(fb) < amount {
							tx.Commit(func(error) { drive() })
							return
						}
						tx.Write(from, u64b(u64(fb)-amount))
						tx.Write(to, u64b(u64(tb)+amount))
						tx.Commit(func(err error) {
							if err == nil {
								commits++
							} else {
								aborts++
							}
							drive()
						})
					})
				})
			}
			drive()
		}
	}

	// Fault injector.
	frng := sim.NewRand(cfg.Seed*31337 + 7)
	partitioned := false
	var inject func()
	inject = func() {
		if c.Now() > cfg.Duration-200*sim.Millisecond {
			return // quiesce window at the end
		}
		weightSum := cfg.KillWeight + cfg.PartitionWeight + cfg.PowerWeight
		pick := frng.Intn(weightSum)
		switch {
		case pick < cfg.KillWeight:
			alive := c.AliveMachines()
			dead := cfg.Machines - len(alive)
			if dead < cfg.MaxKills && len(alive) > cfg.Machines/2+1 {
				// Never the CM's machine 0 in this campaign: CM failover is
				// exercised by the power cycles and dedicated tests.
				v := alive[frng.Intn(len(alive))]
				if v != 0 {
					c.Kill(v)
					res.Kills++
				}
			}
		case pick < cfg.KillWeight+cfg.PartitionWeight:
			if !partitioned {
				// Cut off one non-CM machine for a while.
				v := 1 + frng.Intn(cfg.Machines-1)
				c.Partition(map[int]int{v: 1})
				partitioned = true
				res.Partitions++
				c.Eng.After(frng.Between(20*sim.Millisecond, 60*sim.Millisecond), func() {
					c.Heal()
					partitioned = false
				})
			}
		default:
			if len(c.AliveMachines()) == cfg.Machines && !partitioned {
				c.PowerFailure()
				res.PowerCycles++
				c.Eng.After(frng.Between(20*sim.Millisecond, 80*sim.Millisecond), func() {
					c.RestorePower()
				})
			}
		}
		c.Eng.After(sim.Time(float64(cfg.FaultEvery)*(0.5+frng.Float64())), inject)
	}
	c.Eng.After(cfg.FaultEvery, inject)

	c.Eng.RunUntil(cfg.Duration)
	// Quiesce: let recovery and truncation settle.
	c.RunFor(500 * sim.Millisecond)
	res.Commits, res.Aborts = commits, aborts

	// --- Audits ---
	if len(c.LostRegions) > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("regions lost all replicas: %v", c.LostRegions))
	}
	// Agreement: the latest configuration's members agree on it. Evicted
	// machines (e.g. cut off by a healed partition) legitimately hold
	// stale configurations: precise membership keeps them harmless, and
	// they are excluded here as they would be replaced in production.
	var latest uint64
	for _, id := range c.AliveMachines() {
		if v := c.Machine(id).ConfigID(); v > latest {
			latest = v
		}
	}
	var member0 *core.Machine
	for _, id := range c.AliveMachines() {
		m := c.Machine(id)
		if m.ConfigID() == latest {
			member0 = m
			break
		}
	}
	if member0 == nil {
		res.Violations = append(res.Violations, "no machine reached the latest configuration")
		return res
	}
	// Agreement judged against the LATEST configuration's membership (a
	// stale machine's own view would trivially include itself).
	for _, id := range c.AliveMachines() {
		m := c.Machine(id)
		if member0.Member(id) && m.ConfigID() != latest {
			res.Violations = append(res.Violations,
				fmt.Sprintf("member %d lags at config %d (latest %d)", id, m.ConfigID(), latest))
		}
	}
	// Conservation + liveness: audit reads must succeed and sum to total.
	reader := member0
	var sum uint64
	for i, a := range addrs {
		var val []byte
		err := loadgen.RunSync(c, reader, 1, func(tx *core.Tx, done func(error)) {
			tx.Read(a, 8, func(data []byte, err error) {
				val = data
				done(err)
			})
		})
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("liveness: account %d unreadable: %v", i, err))
			return res
		}
		sum += u64(val)
	}
	if sum != total {
		res.Violations = append(res.Violations,
			fmt.Sprintf("conservation: Σ=%d want %d", sum, total))
	}
	// Liveness: a fresh transfer commits.
	err := loadgen.RunSync(c, reader, 0, func(tx *core.Tx, done func(error)) {
		tx.Read(addrs[0], 8, func(data []byte, err error) {
			if err != nil {
				done(err)
				return
			}
			tx.Write(addrs[0], data)
			done(nil)
		})
	})
	if err != nil {
		res.Violations = append(res.Violations, "liveness: post-chaos commit failed: "+err.Error())
		for dst, rep := range reader.LogSpaceReport() {
			res.Violations = append(res.Violations,
				fmt.Sprintf("  logW[%d]: free=%d reserved=%d appended=%d consumed=%d",
					dst, rep[0], rep[1], rep[2], rep[3]))
		}
	}
	return res
}

// Campaign runs n seeds and returns all results.
func Campaign(cfg Config, n int) []Result {
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		run := cfg
		run.Seed = cfg.Seed + uint64(i)*7919
		out = append(out, Run(run))
	}
	return out
}

func u64(b []byte) uint64  { return binary.LittleEndian.Uint64(b) }
func u64b(v uint64) []byte { b := make([]byte, 8); binary.LittleEndian.PutUint64(b, v); return b }
