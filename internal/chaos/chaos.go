// Package chaos long-runs the platform under randomized fault injection
// while a bank-transfer workload executes, then audits the invariants FaRM
// promises: conservation (serializable transfers never create or destroy
// money), durability (committed state survives every fault the
// configuration tolerates), agreement (one configuration), and liveness
// (the surviving majority keeps committing).
//
// Faults are produced by a nemesis schedule: a weighted set of composable
// fault generators. Instantaneous nemeses (machine kills, CM kills) leave
// permanent damage; durational nemeses (partitions, one-way cuts, link
// flapping, gray failures, power outages) install a fault, hold it for a
// randomized episode, and heal it — one durational episode at a time, so a
// violated invariant points at one fault kind. Every run is deterministic
// in its seed: the same seed replays the same faults at the same virtual
// times, so a violation is a replayable bug report.
package chaos

import (
	"encoding/binary"
	"fmt"

	"farm/internal/core"
	"farm/internal/fabric"
	"farm/internal/history"
	"farm/internal/loadgen"
	"farm/internal/proto"
	"farm/internal/sim"
	"farm/internal/trace"
)

// Config parameterizes a chaos campaign.
type Config struct {
	Machines int
	Accounts int
	Initial  uint64
	// Duration is virtual time per run.
	Duration sim.Time
	// FaultEvery is the mean interval between injected faults.
	FaultEvery sim.Time
	// Nemesis weights; a zero weight disables the kind. KillWeight picks
	// any alive machine — including the CM, whose death must produce a
	// failover, not an exemption. CMKillWeight additionally targets
	// whatever machine is currently CM, so failover is exercised even in
	// short runs where a uniform pick rarely lands on it.
	KillWeight      int
	CMKillWeight    int
	PartitionWeight int
	OneWayWeight    int
	FlapWeight      int
	GrayWeight      int
	PowerWeight     int
	// MaxKills bounds how many machines may stay dead at once; kills are
	// additionally blocked when they would drop the alive population below
	// Machines-2 (the cluster must keep a probe majority and room for f+1
	// replicas).
	MaxKills int
	Lease    sim.Time
	Seed     uint64
	// LogCapacity overrides the per-sender transaction-log ring size
	// (bytes; 0 = core default). Large clusters shrink it: rings scale
	// with machines², so 50 machines at the 256 KB default would spend
	// hundreds of megabytes on rings alone.
	LogCapacity int
	// Audit enables state-integrity auditing: replica digests are compared
	// after every healed fault episode and once conclusively after the
	// final quiesce. Any divergence (outside InjectCorruption runs) is a
	// violation; self-healing repair is armed.
	Audit bool
	// InjectCorruption silently flips one byte of a backup replica mid-run
	// (bypassing every write hook): the run then REQUIRES the audits to
	// detect, localize and repair it. The victim slot is a free slot — in
	// the digest domain, but never overwritten by the workload — so the
	// corruption cannot be masked by an ordinary commit racing the audit.
	InjectCorruption bool
	// Trace enables causality tracing for the run; the merged Chrome
	// trace_event JSON lands in Result.TraceJSON.
	Trace trace.Options
	// HistCheck records every transaction's client-observable history
	// (internal/history) and runs the offline strict-serializability
	// checker over it after the quiesce: any dependency cycle, dirty read
	// or duplicate version install is a violation. It also arms read-only
	// sum-all-accounts probe transactions in the workload — transfers alone
	// read exactly what they write (lock-protected even without
	// validation), so wide read-only snapshots are what give the checker
	// teeth against validation bugs.
	HistCheck bool
	// HistDump forces Result.HistoryJSON to carry the canonical history
	// dump even on clean runs. (A run with history violations always
	// carries its dump.)
	HistDump bool
	// BugSkipValidation disables OCC read validation in the core — a
	// test-only fault injected into the protocol itself. A run with this
	// set is EXPECTED to fail: the history checker must catch the
	// resulting serializability violations with a concrete cycle witness.
	BugSkipValidation bool
	// CoalescePolicy selects the transport flush policy for the run (the
	// zero value is core.CoalesceAdaptive, the shipping default); campaigns
	// can pin core.CoalesceFixed to chaos-test the A/B baseline too.
	CoalescePolicy core.CoalescePolicy
}

// DefaultConfig returns a campaign tuned to finish one run in a few wall
// seconds, with every nemesis kind enabled.
func DefaultConfig() Config {
	return Config{
		Machines:        6,
		Accounts:        24,
		Initial:         1000,
		Duration:        1200 * sim.Millisecond,
		FaultEvery:      150 * sim.Millisecond,
		KillWeight:      3,
		CMKillWeight:    2,
		PartitionWeight: 2,
		OneWayWeight:    2,
		FlapWeight:      1,
		GrayWeight:      2,
		PowerWeight:     1,
		MaxKills:        2,
		Lease:           5 * sim.Millisecond,
		Seed:            1,
		Audit:           true,
		HistCheck:       true,
	}
}

// Result summarizes one run.
type Result struct {
	Seed        uint64
	Commits     uint64
	Aborts      uint64
	Kills       int
	CMKills     int
	Partitions  int
	OneWays     int
	Flaps       int
	Grays       int
	PowerCycles int
	// Audits counts conclusive region audits; AuditSkips counts audits
	// that could not settle (never violations); AuditDivergences counts
	// conclusive digest mismatches.
	Audits, AuditSkips, AuditDivergences int
	// CorruptionDetected/CorruptionRepaired report the fate of an
	// InjectCorruption run's flipped byte.
	CorruptionDetected, CorruptionRepaired bool
	// Timeline records every fired fault episode as "<virtual-time> <kind>"
	// in injection order (plus audit divergences with their localization);
	// replaying the seed reproduces it byte for byte.
	Timeline []string
	// Violations lists invariant failures (empty = clean run).
	Violations []string
	// TraceJSON is the exported causality trace (nil unless Config.Trace
	// enabled it). Included in the determinism contract: the same seed
	// must reproduce it byte for byte.
	TraceJSON []byte
	// History-checker summary (zero unless Config.HistCheck).
	// HistIndeterminate counts transactions whose coordinator died before
	// reporting an outcome; HistInferred is the subset whose commit the
	// checker proved from later reads. OpacityChecked/NonOpaque report the
	// opacity probe over aborted transactions (a measurement, not a
	// violation: FaRM's individual reads are atomic but aborted
	// transactions may observe inconsistent cross-object snapshots).
	HistEvents, HistCommitted, HistInferred, HistIndeterminate int
	OpacityChecked, NonOpaque                                  int
	// HistoryJSON is the canonical history dump — populated when
	// Config.HistDump is set or when the checker found violations, nil
	// otherwise (a 20-run campaign's histories would dwarf everything
	// else in memory). Byte-identical across replays of the same seed.
	HistoryJSON []byte
}

// Faults is the total number of injected fault episodes.
func (r Result) Faults() int {
	return r.Kills + r.CMKills + r.Partitions + r.OneWays + r.Flaps + r.Grays + r.PowerCycles
}

// String renders the result.
func (r Result) String() string {
	status := "OK"
	if len(r.Violations) > 0 {
		status = fmt.Sprintf("VIOLATED %v", r.Violations)
	}
	hist := ""
	if r.HistEvents > 0 {
		hist = fmt.Sprintf(" hist=%d(%dc/%di/%d?) nonopaque=%d/%d",
			r.HistEvents, r.HistCommitted, r.HistInferred, r.HistIndeterminate, r.NonOpaque, r.OpacityChecked)
	}
	return fmt.Sprintf("seed=%d commits=%d aborts=%d kills=%d cmkills=%d partitions=%d oneways=%d flaps=%d grays=%d powercycles=%d audits=%d/%d skips%s → %s",
		r.Seed, r.Commits, r.Aborts, r.Kills, r.CMKills, r.Partitions, r.OneWays, r.Flaps, r.Grays, r.PowerCycles, r.Audits, r.AuditSkips, hist, status)
}

// Nemesis is one composable fault generator. Inject attempts to start an
// episode and reports whether it fired; generators decline when their
// preconditions do not hold (eviction budget exhausted, another durational
// episode in flight). Durational nemeses schedule their own heal.
type Nemesis struct {
	Name   string
	Weight int
	Inject func() bool
}

// nemesisCtx is the state a schedule's generators share.
type nemesisCtx struct {
	c   *core.Cluster
	cfg Config
	rng *sim.Rand
	res *Result
	// busy serializes durational episodes.
	busy bool
	// cmKillCfg is the highest configuration observed at the moment of a
	// CM kill; the post-run audit requires the final configuration to have
	// advanced past it (failover happened).
	cmKillCfg uint64
}

// afterHeal ends a durational episode and, when auditing is enabled,
// schedules a cluster-wide digest comparison once the heal's recovery has
// had a moment to settle (audits that still catch recovery in flight
// report inconclusive and count as skips, never violations).
func (n *nemesisCtx) afterHeal() {
	n.busy = false
	n.scheduleAudit()
}

// scheduleAudit runs StartAudit shortly after a fault episode resolves.
func (n *nemesisCtx) scheduleAudit() {
	if !n.cfg.Audit {
		return
	}
	n.c.Eng.After(15*sim.Millisecond, func() {
		n.c.StartAudit(n.tally)
	})
}

// tally folds one cluster audit's reports into the result. Divergences
// are recorded on the timeline with their full localization so a -replay
// of the seed reproduces the audit failure byte for byte.
func (n *nemesisCtx) tally(reports []core.AuditReport) {
	for _, r := range reports {
		if !r.Conclusive {
			n.res.AuditSkips++
			continue
		}
		n.res.Audits++
		if !r.Clean {
			n.res.AuditDivergences++
			n.res.CorruptionDetected = true
			if r.Repaired {
				n.res.CorruptionRepaired = true
			}
			n.res.Timeline = append(n.res.Timeline,
				fmt.Sprintf("%v audit-divergence %s", n.c.Now(), r.String()))
		}
	}
}

// aliveMembers counts alive machines that are members of the latest
// configuration any alive machine holds — the population that matters for
// probe majorities and replica placement.
func (n *nemesisCtx) aliveMembers() int {
	var latest *core.Machine
	for _, id := range n.c.AliveMachines() {
		m := n.c.Machine(id)
		if latest == nil || m.ConfigID() > latest.ConfigID() {
			latest = m
		}
	}
	if latest == nil {
		return 0
	}
	count := 0
	for _, id := range n.c.AliveMachines() {
		if latest.Member(id) {
			count++
		}
	}
	return count
}

// killBudgetOK gates anything that permanently removes a machine: stay
// within MaxKills and never drop the alive membership below Machines-2
// (floor 4 on the default 6 — still a majority, still ≥ f+1 replicas).
func (n *nemesisCtx) killBudgetOK() bool {
	dead := n.cfg.Machines - len(n.c.AliveMachines())
	return dead < n.cfg.MaxKills && n.aliveMembers()-1 >= n.cfg.Machines-2
}

// aliveCM returns the machine currently acting as CM of the latest
// configuration, or -1.
func (n *nemesisCtx) aliveCM() int {
	cm, latest := -1, uint64(0)
	for _, id := range n.c.AliveMachines() {
		m := n.c.Machine(id)
		if m.IsCM() && m.Member(id) && m.ConfigID() >= latest {
			latest, cm = m.ConfigID(), id
		}
	}
	return cm
}

// victim picks a random alive member of the latest configuration, or -1.
func (n *nemesisCtx) victim() int {
	alive := n.c.AliveMachines()
	if len(alive) == 0 {
		return -1
	}
	return alive[n.rng.Intn(len(alive))]
}

// schedule assembles the weighted generator set for cfg. Weights of zero
// drop a generator entirely, which is how farm-chaos -faults selects kinds.
func schedule(n *nemesisCtx) []Nemesis {
	cfg := n.cfg
	return []Nemesis{
		{Name: "kill", Weight: cfg.KillWeight, Inject: func() bool {
			// No CM exemption: a uniform pick that lands on the CM is a
			// failover test like any other kill.
			if !n.killBudgetOK() {
				return false
			}
			v := n.victim()
			if v < 0 {
				return false
			}
			if v == n.aliveCM() {
				n.cmKillCfg = maxU64(n.cmKillCfg, n.c.Machine(v).ConfigID())
				n.res.CMKills++
			} else {
				n.res.Kills++
			}
			n.c.Kill(v)
			n.scheduleAudit()
			return true
		}},
		{Name: "cmkill", Weight: cfg.CMKillWeight, Inject: func() bool {
			if !n.killBudgetOK() {
				return false
			}
			cm := n.aliveCM()
			if cm < 0 {
				return false
			}
			n.cmKillCfg = maxU64(n.cmKillCfg, n.c.Machine(cm).ConfigID())
			n.res.CMKills++
			n.c.Kill(cm)
			n.scheduleAudit()
			return true
		}},
		{Name: "partition", Weight: cfg.PartitionWeight, Inject: func() bool {
			if n.busy {
				return false
			}
			// Cut off one non-CM machine symmetrically for a while.
			v := 1 + n.rng.Intn(cfg.Machines-1)
			n.busy = true
			n.res.Partitions++
			n.c.Partition(map[int]int{v: 1})
			n.c.Eng.After(n.rng.Between(20*sim.Millisecond, 60*sim.Millisecond), func() {
				n.c.Heal()
				n.afterHeal()
			})
			return true
		}},
		{Name: "oneway", Weight: cfg.OneWayWeight, Inject: func() bool {
			if n.busy {
				return false
			}
			v := n.victim()
			if v < 0 {
				return false
			}
			n.busy = true
			n.res.OneWays++
			// Inbound cut: v keeps sending (the CM keeps hearing its lease
			// requests) but receives nothing — the asymmetric case precise
			// membership exists for. Outbound cut: v goes silent but hears
			// everything, including its own eviction's aftermath.
			if n.rng.Bool(0.5) {
				n.c.IsolateInbound(v)
			} else {
				n.c.IsolateOutbound(v)
			}
			n.c.Eng.After(n.rng.Between(20*sim.Millisecond, 50*sim.Millisecond), func() {
				n.c.RestoreMachine(v)
				n.afterHeal()
			})
			return true
		}},
		{Name: "flap", Weight: cfg.FlapWeight, Inject: func() bool {
			if n.busy {
				return false
			}
			alive := n.c.AliveMachines()
			if len(alive) < 2 {
				return false
			}
			a := alive[n.rng.Intn(len(alive))]
			b := alive[n.rng.Intn(len(alive))]
			if a == b {
				return false
			}
			n.busy = true
			n.res.Flaps++
			deadline := n.c.Now() + n.rng.Between(24*sim.Millisecond, 48*sim.Millisecond)
			cut := false
			var toggle func()
			toggle = func() {
				if n.c.Now() >= deadline {
					n.c.HealLink(a, b)
					n.afterHeal()
					return
				}
				if cut {
					n.c.HealLink(a, b)
				} else {
					n.c.CutLink(a, b)
				}
				cut = !cut
				n.c.Eng.After(n.rng.Between(2*sim.Millisecond, 6*sim.Millisecond), toggle)
			}
			toggle()
			return true
		}},
		{Name: "gray", Weight: cfg.GrayWeight, Inject: func() bool {
			if n.busy {
				return false
			}
			v := n.victim()
			if v < 0 {
				return false
			}
			n.busy = true
			n.res.Grays++
			f := fabric.MachineFault{ // mild: slow but inside lease margins
				OpTimeFactor:    4,
				BandwidthFactor: 0.5,
				ExtraDelay:      sim.Exp(10*sim.Microsecond, 20*sim.Microsecond),
			}
			if n.rng.Bool(0.5) { // severe: slow enough to look dead sometimes
				f = fabric.MachineFault{
					OpTimeFactor:    50,
					BandwidthFactor: 0.05,
					ExtraDelay:      sim.Uniform(50*sim.Microsecond, 200*sim.Microsecond),
				}
			}
			n.c.DegradeMachine(v, f)
			n.c.Eng.After(n.rng.Between(30*sim.Millisecond, 60*sim.Millisecond), func() {
				n.c.RestoreMachine(v)
				n.afterHeal()
			})
			return true
		}},
		{Name: "power", Weight: cfg.PowerWeight, Inject: func() bool {
			if n.busy || len(n.c.AliveMachines()) != cfg.Machines {
				return false
			}
			n.busy = true
			n.res.PowerCycles++
			n.c.PowerFailure()
			n.c.Eng.After(n.rng.Between(20*sim.Millisecond, 80*sim.Millisecond), func() {
				n.c.RestorePower()
				n.afterHeal()
			})
			return true
		}},
	}
}

// Run executes one chaos run.
func Run(cfg Config) Result {
	res := Result{Seed: cfg.Seed}
	opts := core.Options{
		NumMachines:   cfg.Machines,
		Seed:          cfg.Seed,
		LeaseDuration: cfg.Lease,
		LogCapacity:   cfg.LogCapacity,
		Trace:         cfg.Trace,
		// Audits self-heal: a localized divergent backup is fenced into
		// force-copy re-replication and the repair is re-audited.
		AuditRepair:        cfg.Audit,
		History:            cfg.HistCheck || cfg.HistDump,
		SkipReadValidation: cfg.BugSkipValidation,
		CoalescePolicy:     cfg.CoalescePolicy,
	}
	c := core.New(opts)
	regions, err := c.CreateRegions(0, 3, 0)
	if err != nil {
		res.Violations = append(res.Violations, "setup: "+err.Error())
		return res
	}

	// Open accounts.
	addrs := make([]proto.Addr, cfg.Accounts)
	for i := range addrs {
		i := i
		err := loadgen.RunSync(c, c.Machine(i%cfg.Machines), 0, func(tx *core.Tx, done func(error)) {
			tx.Alloc(8, u64b(cfg.Initial), nil, func(a proto.Addr, err error) {
				if err != nil {
					done(err)
					return
				}
				addrs[i] = a
				done(nil)
			})
		})
		if err != nil {
			res.Violations = append(res.Violations, "open: "+err.Error())
			return res
		}
	}
	total := cfg.Initial * uint64(cfg.Accounts)

	// Transfer drivers on every machine (dead drivers just stop).
	var commits, aborts uint64
	var snapBad int
	for mi := 0; mi < cfg.Machines; mi++ {
		m := c.Machine(mi)
		rng := sim.NewRand(cfg.Seed*977 + uint64(mi))
		for th := 0; th < 2; th++ {
			th := th
			var drive func()
			// bail finishes a transaction whose execute phase failed —
			// the read error already counts as an abort, but the Tx must
			// still be explicitly aborted, not dropped: abandoning it
			// would leak allocated slots and leave it dangling forever.
			bail := func(tx *core.Tx) {
				tx.Abort()
				aborts++
				c.Eng.After(100*sim.Microsecond, drive)
			}
			// probe commits a read-only sum over every account. A
			// committed sum ≠ total is an immediate conservation
			// violation against a serializable snapshot — and in the
			// recorded history these wide reads are what turn a broken
			// validation into a dependency cycle the checker can report.
			probe := func() {
				tx := m.Begin(th)
				var sum uint64
				var step func(i int)
				step = func(i int) {
					if i == len(addrs) {
						tx.Commit(func(err error) {
							if err != nil {
								aborts++
							} else {
								commits++
								if sum != total {
									snapBad++
									if snapBad <= 3 {
										res.Violations = append(res.Violations,
											fmt.Sprintf("conservation-snapshot: committed read-only Σ=%d want %d (m%d at %v)",
												sum, total, m.ID, c.Now()))
									}
								}
							}
							drive()
						})
						return
					}
					tx.Read(addrs[i], 8, func(b []byte, err error) {
						if err != nil {
							bail(tx)
							return
						}
						sum += u64(b)
						step(i + 1)
					})
				}
				step(0)
			}
			drive = func() {
				if !m.Alive() || c.Now() > cfg.Duration {
					return
				}
				if opts.History && rng.Intn(10) == 0 {
					probe()
					return
				}
				from := addrs[rng.Intn(cfg.Accounts)]
				to := addrs[rng.Intn(cfg.Accounts)]
				if from == to {
					c.Eng.After(5*sim.Microsecond, drive)
					return
				}
				amount := uint64(rng.Intn(9) + 1)
				tx := m.Begin(th)
				tx.Read(from, 8, func(fb []byte, err error) {
					if err != nil {
						bail(tx)
						return
					}
					tx.Read(to, 8, func(tb []byte, err error) {
						if err != nil {
							bail(tx)
							return
						}
						if u64(fb) < amount {
							tx.Commit(func(error) { drive() })
							return
						}
						tx.Write(from, u64b(u64(fb)-amount))
						tx.Write(to, u64b(u64(tb)+amount))
						tx.Commit(func(err error) {
							if err == nil {
								commits++
							} else {
								aborts++
							}
							drive()
						})
					})
				})
			}
			drive()
		}
	}

	// Nemesis schedule: pick a generator by weight at randomized intervals.
	nctx := &nemesisCtx{
		c:   c,
		cfg: cfg,
		rng: sim.NewRand(cfg.Seed*31337 + 7),
		res: &res,
	}
	gens := schedule(nctx)
	weightSum := 0
	for _, g := range gens {
		weightSum += g.Weight
	}

	// Silent corruption mid-run: flip one byte on a backup, bypassing every
	// write hook. The audits are then REQUIRED to find it. Track the victim:
	// if a later kill takes the corrupted replica out of the placement, the
	// corruption legitimately dies with it and detection becomes vacuous.
	corruptMachine, corruptRegion := -1, uint32(0)
	if cfg.Audit && cfg.InjectCorruption {
		c.Eng.After(cfg.Duration/2, func() {
			corruptRegion = regions[int(nctx.rng.Intn(len(regions)))]
			if mach, off, ok := c.CorruptBackupObject(corruptRegion, false); ok {
				corruptMachine = mach
				res.Timeline = append(res.Timeline,
					fmt.Sprintf("%v corrupt m%d region %d object @%d", c.Now(), mach, corruptRegion, off))
			}
		})
	}
	var inject func()
	inject = func() {
		// Stop injecting before the quiesce window so every durational
		// episode (≤ 80ms) has healed well before the audits run.
		if c.Now() > cfg.Duration-200*sim.Millisecond || weightSum == 0 {
			return
		}
		pick := nctx.rng.Intn(weightSum)
		for _, g := range gens {
			if pick < g.Weight {
				if g.Inject() {
					res.Timeline = append(res.Timeline, fmt.Sprintf("%v %s", c.Now(), g.Name))
				}
				break
			}
			pick -= g.Weight
		}
		c.Eng.After(sim.Time(float64(cfg.FaultEvery)*(0.5+nctx.rng.Float64())), inject)
	}
	c.Eng.After(cfg.FaultEvery, inject)

	c.Eng.RunUntil(cfg.Duration)
	// Quiesce: let recovery and truncation settle. Every episode healed
	// itself, but clear defensively so the audits never run over a
	// half-faulted fabric left by a bug in a generator.
	c.ClearNetworkFaults()
	c.RunFor(500 * sim.Millisecond)
	res.Commits, res.Aborts = commits, aborts

	// finish closes out the run: it exports the recorded history and runs
	// the strict-serializability checker over it. Every return below funnels
	// through it, so even a run that already failed a liveness audit still
	// gets its history judged (and its dump preserved).
	finish := func() Result {
		if snapBad > 3 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("conservation-snapshot: ... and %d more bad snapshots", snapBad-3))
		}
		if c.Hist == nil {
			return res
		}
		h := c.Hist.Export()
		dump := cfg.HistDump
		if cfg.HistCheck {
			rep := history.Check(h)
			res.HistEvents = rep.Stats.Events
			res.HistCommitted = rep.Stats.Committed
			res.HistInferred = rep.Stats.InferredCommitted
			res.HistIndeterminate = rep.Stats.Indeterminate
			res.OpacityChecked = rep.Stats.OpacityChecked
			res.NonOpaque = rep.Stats.NonOpaque
			for _, v := range rep.Violations {
				res.Violations = append(res.Violations, "history: "+v.String())
			}
			if !rep.Ok() {
				dump = true
			}
		}
		if dump {
			res.HistoryJSON = history.Dump(h)
		}
		return res
	}

	// Final state-integrity audit: after quiesce it must come back
	// conclusive and clean. A divergence self-heals (repair + re-audit
	// inside the run) so the retry loop converges unless something is
	// genuinely broken; mid-run audits may skip, this one may not.
	if cfg.Audit {
		finalClean := false
		var lastReports []core.AuditReport
		for attempt := 0; attempt < 4 && !finalClean; attempt++ {
			var reports []core.AuditReport
			auditDone := false
			c.StartAudit(func(rs []core.AuditReport) { reports, auditDone = rs, true })
			c.RunFor(200 * sim.Millisecond)
			if !auditDone {
				res.Violations = append(res.Violations, "audit: final audit never completed")
				break
			}
			lastReports = reports
			nctx.tally(reports)
			conclusive, diverged := true, false
			for _, r := range reports {
				if !r.Conclusive {
					conclusive = false
				} else if !r.Clean {
					diverged = true
				}
			}
			if conclusive && !diverged {
				finalClean = true
				break
			}
			// Inconclusive, or diverged-and-repaired: settle and re-audit.
			c.RunFor(50 * sim.Millisecond)
		}
		if !finalClean {
			res.Violations = append(res.Violations, "audit: final post-quiesce audit not conclusively clean")
			for _, r := range lastReports {
				if !r.Conclusive || !r.Clean {
					res.Violations = append(res.Violations, "  "+r.String())
				}
			}
		}
	}

	if c.Tracer != nil {
		res.TraceJSON = c.Tracer.Export()
	}

	// --- Audits ---
	if len(c.LostRegions) > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("regions lost all replicas: %v", c.LostRegions))
	}
	// Agreement: the latest configuration's members agree on it. Evicted
	// machines (e.g. cut off by a healed partition) legitimately hold
	// stale configurations: precise membership keeps them harmless, and
	// they are excluded here as they would be replaced in production.
	var latest uint64
	for _, id := range c.AliveMachines() {
		if v := c.Machine(id).ConfigID(); v > latest {
			latest = v
		}
	}
	var member0 *core.Machine
	for _, id := range c.AliveMachines() {
		m := c.Machine(id)
		if m.ConfigID() == latest {
			member0 = m
			break
		}
	}
	if member0 == nil {
		res.Violations = append(res.Violations, "no machine reached the latest configuration")
		return finish()
	}
	// Agreement judged against the LATEST configuration's membership (a
	// stale machine's own view would trivially include itself).
	for _, id := range c.AliveMachines() {
		m := c.Machine(id)
		if member0.Member(id) && m.ConfigID() != latest {
			res.Violations = append(res.Violations,
				fmt.Sprintf("member %d lags at config %d (latest %d)", id, m.ConfigID(), latest))
		}
	}
	// CM failover: every CM kill must have produced a configuration beyond
	// the one the dead CM led, led by an alive CM.
	if res.CMKills > 0 {
		if latest <= nctx.cmKillCfg {
			res.Violations = append(res.Violations,
				fmt.Sprintf("cm-failover: config stuck at %d after CM kill at config %d", latest, nctx.cmKillCfg))
		}
		if nctx.aliveCM() < 0 {
			res.Violations = append(res.Violations, "cm-failover: no alive CM after CM kill")
		}
	}
	// State integrity: without injected corruption, any conclusive digest
	// divergence is a false positive. With it, the flipped byte must have
	// been detected AND repaired — unless the corrupted replica was killed
	// or replaced, taking the corruption with it (vacuous, noted above).
	if cfg.Audit {
		if !cfg.InjectCorruption && res.AuditDivergences > 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("audit: %d divergences without injected corruption (false positives)", res.AuditDivergences))
		}
		if cfg.InjectCorruption && corruptMachine >= 0 {
			stillHosted := false
			for i, id := range c.RegionReplicas(corruptRegion) {
				if i > 0 && id == corruptMachine && c.Machine(id).Alive() {
					stillHosted = true
				}
			}
			if stillHosted && !res.CorruptionDetected {
				res.Violations = append(res.Violations, "audit: injected corruption never detected")
			}
			if res.CorruptionDetected && !res.CorruptionRepaired {
				res.Violations = append(res.Violations, "audit: injected corruption detected but not repaired")
			}
		}
	}

	// Conservation judged from replica state itself: sum the committed
	// payloads straight out of each account's primary replica memory,
	// bypassing the transaction layer entirely — a broken read path cannot
	// vouch for a broken commit path.
	var stateSum uint64
	stateReadable := true
	for i, a := range addrs {
		b, err := c.PeekObject(a, 8)
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("conservation-state: account %d unreadable from primary memory: %v", i, err))
			stateReadable = false
			break
		}
		stateSum += u64(b)
	}
	if stateReadable && stateSum != total {
		res.Violations = append(res.Violations,
			fmt.Sprintf("conservation-state: replica memory Σ=%d want %d", stateSum, total))
	}

	// Conservation + liveness: audit reads must succeed and sum to total.
	reader := member0
	var sum uint64
	for i, a := range addrs {
		var val []byte
		err := loadgen.RunSync(c, reader, 1, func(tx *core.Tx, done func(error)) {
			tx.Read(a, 8, func(data []byte, err error) {
				val = data
				done(err)
			})
		})
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("liveness: account %d unreadable: %v", i, err))
			return finish()
		}
		sum += u64(val)
	}
	if sum != total {
		res.Violations = append(res.Violations,
			fmt.Sprintf("conservation: Σ=%d want %d", sum, total))
	}
	// Liveness: a fresh transfer commits.
	err = loadgen.RunSync(c, reader, 0, func(tx *core.Tx, done func(error)) {
		tx.Read(addrs[0], 8, func(data []byte, err error) {
			if err != nil {
				done(err)
				return
			}
			tx.Write(addrs[0], data)
			done(nil)
		})
	})
	if err != nil {
		res.Violations = append(res.Violations, "liveness: post-chaos commit failed: "+err.Error())
		for dst, rep := range reader.LogSpaceReport() {
			res.Violations = append(res.Violations,
				fmt.Sprintf("  logW[%d]: free=%d reserved=%d appended=%d consumed=%d",
					dst, rep[0], rep[1], rep[2], rep[3]))
		}
	}
	return finish()
}

// Campaign runs n seeds and returns all results.
func Campaign(cfg Config, n int) []Result {
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		run := cfg
		run.Seed = cfg.Seed + uint64(i)*7919
		out = append(out, Run(run))
	}
	return out
}

func u64(b []byte) uint64  { return binary.LittleEndian.Uint64(b) }
func u64b(v uint64) []byte { b := make([]byte, 8); binary.LittleEndian.PutUint64(b, v); return b }

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
