package chaos

import (
	"reflect"
	"testing"

	"farm/internal/sim"
)

// TestRunIsDeterministic replays one faulted run twice in the same process
// and requires identical results. Go randomizes map iteration per range
// statement, so any protocol loop walking a map in raw order while emitting
// simulation events diverges here (and would make chaos seeds unreplayable).
func TestRunIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 400 * sim.Millisecond
	cfg.FaultEvery = 80 * sim.Millisecond
	a := Run(cfg)
	b := Run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different runs:\n  %v\n  %v", a, b)
	}
	if a.Kills+a.Partitions+a.PowerCycles == 0 {
		t.Fatalf("determinism check exercised no faults: %v", a)
	}
}

func TestChaosCampaignHoldsInvariants(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		cfg.Duration = cfg.Duration / 2
	}
	results := Campaign(cfg, 3)
	for _, r := range results {
		t.Log(r)
		if len(r.Violations) > 0 {
			t.Fatalf("invariants violated: %v", r)
		}
		if r.Commits == 0 {
			t.Fatalf("no commits: %v", r)
		}
		if r.Kills+r.Partitions+r.PowerCycles == 0 {
			t.Fatalf("no faults injected: %v", r)
		}
	}
}
