package chaos

import (
	"bytes"
	"reflect"
	"testing"

	"farm/internal/core"
	"farm/internal/sim"
	"farm/internal/trace"
)

// TestRunIsDeterministic replays one faulted run twice in the same process
// and requires identical results. Go randomizes map iteration per range
// statement, so any protocol loop walking a map in raw order while emitting
// simulation events diverges here (and would make chaos seeds unreplayable).
func TestRunIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 400 * sim.Millisecond
	cfg.FaultEvery = 80 * sim.Millisecond
	a := Run(cfg)
	b := Run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different runs:\n  %v\n  %v", a, b)
	}
	if a.Faults() == 0 {
		t.Fatalf("determinism check exercised no faults: %v", a)
	}

	// The traced variant is held to the same standard, one notch stricter:
	// the exported Chrome JSON must replay byte for byte, and enabling
	// tracing must not perturb the protocol (identical commit/abort counts
	// and fault timeline as the untraced run of the same seed).
	cfg.Trace = trace.Options{Enabled: true}
	ta := Run(cfg)
	tb := Run(cfg)
	if !bytes.Equal(ta.TraceJSON, tb.TraceJSON) {
		t.Fatalf("same seed, different trace JSON (%d vs %d bytes)", len(ta.TraceJSON), len(tb.TraceJSON))
	}
	if len(ta.TraceJSON) == 0 {
		t.Fatalf("traced run exported no JSON")
	}
	if err := trace.Validate(ta.TraceJSON, nil); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if ta.Commits != a.Commits || ta.Aborts != a.Aborts {
		t.Fatalf("tracing changed protocol outcomes: commits %d→%d aborts %d→%d",
			a.Commits, ta.Commits, a.Aborts, ta.Aborts)
	}
	if !reflect.DeepEqual(ta.Timeline, a.Timeline) {
		t.Fatalf("tracing changed the fault timeline:\n  %v\n  %v", a.Timeline, ta.Timeline)
	}
}

// TestRunIsDeterministicAt50Machines is the scale sibling of
// TestRunIsDeterministic: after the event-engine refactor the simulator
// handles clusters far beyond the seed scale, so determinism must be
// guarded there too — heap-ordering or pooling bugs that only manifest
// under big-cluster event populations (deep 4-ary heaps, thousands of
// live timers, busy free lists) would otherwise slip through. The run is
// short: the point is the machine count, not the duration.
func TestRunIsDeterministicAt50Machines(t *testing.T) {
	if raceEnabled {
		// The simulation is single-goroutine; race-instrumenting a
		// 50-machine run checks no additional concurrency and multiplies
		// its cost enough to threaten the package test timeout. The
		// 9-machine TestRunIsDeterministic still runs raced.
		t.Skip("50-machine determinism run under -race: no concurrency to check, only slowdown")
	}
	cfg := DefaultConfig()
	cfg.Machines = 50
	cfg.Accounts = 100
	cfg.MaxKills = 3
	// Pinned explicitly (it is also the default): 50 machines means 2,500
	// independently adapting send queues, the densest exercise of the
	// adaptive flush policy's determinism.
	cfg.CoalescePolicy = core.CoalesceAdaptive
	// Injection quiesces 200ms before the end of the run (so every fault
	// has time to heal before the final audit); the duration must clear
	// that window or no fault ever fires.
	cfg.Duration = 300 * sim.Millisecond
	cfg.FaultEvery = 30 * sim.Millisecond
	cfg.LogCapacity = 1 << 15 // rings scale with machines²; keep memory sane
	a := Run(cfg)
	b := Run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different runs at 50 machines:\n  %v\n  %v", a, b)
	}
	if a.Faults() == 0 {
		t.Fatalf("50-machine determinism check exercised no faults: %v", a)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("50-machine run violated invariants: %v", a.Violations)
	}
}

// TestChaosSeedWithAdaptiveCoalescing runs one faulted seed with the
// adaptive flush policy pinned explicitly (budget flushes, doorbells, and
// interval adaptation all active under kills, partitions and gray NICs),
// requires a clean run, and replays it: the adaptive policy is part of
// the determinism contract, so the replay must be identical.
func TestChaosSeedWithAdaptiveCoalescing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoalescePolicy = core.CoalesceAdaptive
	cfg.Seed = 42
	cfg.Duration = 600 * sim.Millisecond
	cfg.FaultEvery = 100 * sim.Millisecond
	a := Run(cfg)
	t.Log(a)
	if len(a.Violations) > 0 {
		t.Fatalf("adaptive-coalescing chaos run violated invariants: %v", a)
	}
	if a.Commits == 0 || a.Faults() == 0 {
		t.Fatalf("run exercised nothing: %v", a)
	}
	if b := Run(cfg); !reflect.DeepEqual(a, b) {
		t.Fatalf("adaptive policy broke seed replay:\n  %v\n  %v", a, b)
	}
}

// TestNemesisDeterminismAllKinds drives every nemesis kind hard (short
// fault interval, several seeds) and replays each seed, requiring the
// replay byte-identical — the injected fault sequence itself is part of
// the seeded state, including link-level drops, dups and delays.
func TestNemesisDeterminismAllKinds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 500 * sim.Millisecond
	cfg.FaultEvery = 40 * sim.Millisecond
	// Equal weights so every kind has a fair shot within four short runs
	// (the default weights make rare kinds like power easy to miss).
	cfg.KillWeight, cfg.CMKillWeight, cfg.PartitionWeight = 1, 1, 1
	cfg.OneWayWeight, cfg.FlapWeight, cfg.GrayWeight, cfg.PowerWeight = 1, 1, 1, 1
	sawKind := [7]bool{}
	allSeen := func() bool {
		for _, s := range sawKind {
			if !s {
				return false
			}
		}
		return true
	}
	// Scan seeds (deterministically) until every kind has fired at least
	// once; the cap keeps a pathological weight change from hanging the test.
	lastSeed := uint64(0)
	for seed := uint64(1); seed <= 12 && !allSeen(); seed++ {
		cfg.Seed = seed
		lastSeed = seed
		a := Run(cfg)
		b := Run(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: same seed, different runs:\n  %v\n  %v", seed, a, b)
		}
		if len(a.Violations) > 0 {
			t.Fatalf("seed %d violated invariants: %v", seed, a)
		}
		for i, n := range []int{a.Kills, a.CMKills, a.Partitions, a.OneWays, a.Flaps, a.Grays, a.PowerCycles} {
			if n > 0 {
				sawKind[i] = true
			}
		}
		t.Log(a)
	}
	names := []string{"kill", "cmkill", "partition", "oneway", "flap", "gray", "power"}
	for i, saw := range sawKind {
		if !saw {
			t.Errorf("nemesis kind %q never fired across seeds 1..%d", names[i], lastSeed)
		}
	}
}

// TestOneWayCampaign runs with only asymmetric cuts enabled: machines that
// can send but not receive (or the reverse) must end up evicted or healed,
// never half-alive violating conservation or agreement.
func TestOneWayCampaign(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 600 * sim.Millisecond
	cfg.FaultEvery = 60 * sim.Millisecond
	cfg.KillWeight, cfg.CMKillWeight, cfg.PartitionWeight = 0, 0, 0
	cfg.FlapWeight, cfg.GrayWeight, cfg.PowerWeight = 0, 0, 0
	cfg.OneWayWeight = 1
	for _, r := range Campaign(cfg, 3) {
		t.Log(r)
		if len(r.Violations) > 0 {
			t.Fatalf("invariants violated: %v", r)
		}
		if r.OneWays == 0 {
			t.Fatalf("no one-way cuts injected: %v", r)
		}
		if r.Commits == 0 {
			t.Fatalf("no commits: %v", r)
		}
	}
}

// TestCMKillFailover kills only CMs and audits that every kill produced a
// failover: configuration advanced past the dead CM's and an alive machine
// leads the latest configuration.
func TestCMKillFailover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 600 * sim.Millisecond
	cfg.FaultEvery = 120 * sim.Millisecond
	cfg.KillWeight, cfg.PartitionWeight, cfg.OneWayWeight = 0, 0, 0
	cfg.FlapWeight, cfg.GrayWeight, cfg.PowerWeight = 0, 0, 0
	cfg.CMKillWeight = 1
	for _, r := range Campaign(cfg, 3) {
		t.Log(r)
		if len(r.Violations) > 0 {
			t.Fatalf("invariants violated: %v", r)
		}
		if r.CMKills == 0 {
			t.Fatalf("no CM kills injected: %v", r)
		}
		if r.Commits == 0 {
			t.Fatalf("no commits: %v", r)
		}
	}
}

func TestChaosCampaignHoldsInvariants(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		cfg.Duration = cfg.Duration / 2
	}
	results := Campaign(cfg, 3)
	for _, r := range results {
		t.Log(r)
		if len(r.Violations) > 0 {
			t.Fatalf("invariants violated: %v", r)
		}
		if r.Commits == 0 {
			t.Fatalf("no commits: %v", r)
		}
		if r.Faults() == 0 {
			t.Fatalf("no faults injected: %v", r)
		}
	}
}

// TestCorruptionChaosDetectAndRepair flips a byte in one backup replica
// mid-run while the full nemesis mix fires, and requires the audit layer to
// detect, localize and self-heal it (Run itself raises a violation if a
// still-hosted corrupt replica goes undetected or unrepaired, and if any
// audit diverges without injected corruption — the false-positive guard).
func TestCorruptionChaosDetectAndRepair(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectCorruption = true
	detected := 0
	for seed := uint64(1); seed <= 2; seed++ {
		cfg.Seed = seed
		r := Run(cfg)
		t.Log(r)
		if len(r.Violations) > 0 {
			t.Fatalf("seed %d violated invariants: %v", seed, r)
		}
		if r.CorruptionDetected {
			detected++
			if !r.CorruptionRepaired {
				t.Fatalf("seed %d: corruption detected but never repaired: %v", seed, r)
			}
		}
	}
	// A seed whose victim machine was killed legitimately escapes detection
	// (the replica is gone), but across seeds at least one must detect.
	if detected == 0 {
		t.Fatalf("no seed detected the injected corruption")
	}
}
