package chaos

import "testing"

func TestChaosCampaignHoldsInvariants(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		cfg.Duration = cfg.Duration / 2
	}
	results := Campaign(cfg, 3)
	for _, r := range results {
		t.Log(r)
		if len(r.Violations) > 0 {
			t.Fatalf("invariants violated: %v", r)
		}
		if r.Commits == 0 {
			t.Fatalf("no commits: %v", r)
		}
		if r.Kills+r.Partitions+r.PowerCycles == 0 {
			t.Fatalf("no faults injected: %v", r)
		}
	}
}
