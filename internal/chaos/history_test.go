package chaos

import (
	"bytes"
	"strings"
	"testing"

	"farm/internal/history"
	"farm/internal/sim"
)

// shortConfig keeps the history tests fast: same machine count and fault
// mix as the default campaign, shorter run.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 600 * sim.Millisecond
	return cfg
}

// TestHistoryDumpDeterministic pins the replay contract for history
// artifacts: two runs of the same seed must produce byte-identical dumps,
// so a dump attached to a violation report is exactly what -replay will
// regenerate.
func TestHistoryDumpDeterministic(t *testing.T) {
	cfg := shortConfig()
	cfg.HistDump = true
	cfg.Seed = 5

	a := Run(cfg)
	b := Run(cfg)
	if len(a.HistoryJSON) == 0 {
		t.Fatal("HistDump run produced no dump")
	}
	if !bytes.Equal(a.HistoryJSON, b.HistoryJSON) {
		t.Fatalf("same seed, different history dumps (%d vs %d bytes)",
			len(a.HistoryJSON), len(b.HistoryJSON))
	}

	h, err := history.Load(a.HistoryJSON)
	if err != nil {
		t.Fatalf("dump does not load: %v", err)
	}
	if len(h.Events) != a.HistEvents {
		t.Fatalf("dump carries %d events, result reports %d", len(h.Events), a.HistEvents)
	}
	// Checking the reloaded dump offline reproduces the in-run verdict.
	rep := history.Check(h)
	if !rep.Ok() {
		t.Fatalf("reloaded dump fails the checker: %v", rep.Violations)
	}
}

// TestInjectedValidationBugCaught is the teeth test: break OCC read
// validation on purpose and require the history checker to catch it with
// a concrete dependency-cycle witness. A checker that stays green here
// would be decoration.
func TestInjectedValidationBugCaught(t *testing.T) {
	cfg := shortConfig()
	cfg.BugSkipValidation = true
	cfg.Seed = 3

	r := Run(cfg)
	var cycle string
	for _, v := range r.Violations {
		if strings.HasPrefix(v, "history: cycle") {
			cycle = v
			break
		}
	}
	if cycle == "" {
		t.Fatalf("checker missed the injected validation bug; violations: %v", r.Violations)
	}
	// The witness names concrete transactions and edges.
	if !strings.Contains(cycle, "→") || !strings.Contains(cycle, "T") {
		t.Fatalf("cycle violation carries no witness: %s", cycle)
	}
	if len(r.HistoryJSON) == 0 {
		t.Fatal("violating run must carry its history dump for offline replay")
	}
	t.Logf("caught: %s", cycle)
}
