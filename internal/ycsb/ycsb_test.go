package ycsb

import (
	"testing"

	"farm/internal/core"
	"farm/internal/loadgen"
	"farm/internal/sim"
)

func TestSetupAndLookups(t *testing.T) {
	c := core.New(core.Options{NumMachines: 5, Seed: 21})
	w, err := Setup(c, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every key must be retrievable via lock-free read.
	missing := 0
	fired := 0
	for id := uint64(0); id < 500; id += 17 {
		id := id
		w.Table.LockFreeGet(c.Machine(int(id)%5), 0, Key(id), func(val []byte, ok bool, err error) {
			fired++
			if err != nil || !ok {
				missing++
			}
		})
	}
	c.RunFor(100 * sim.Millisecond)
	if fired == 0 || missing > 0 {
		t.Fatalf("fired=%d missing=%d", fired, missing)
	}
}

func TestLookupWorkloadRuns(t *testing.T) {
	c := core.New(core.Options{NumMachines: 5, Seed: 22})
	w, err := Setup(c, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := loadgen.New(c, w.LookupOp())
	tput, med, p99 := g.RunPoint([]int{0, 1, 2, 3, 4}, 4, 2, 2*sim.Millisecond, 20*sim.Millisecond)
	if tput < 100000 {
		t.Fatalf("throughput %v ops/s too low", tput)
	}
	if med <= 0 || p99 < med {
		t.Fatalf("latencies: med=%v p99=%v", med, p99)
	}
	// Lock-free reads at low-ish load should be tens of µs at worst.
	if med > 100*sim.Microsecond {
		t.Fatalf("median %v too high for lock-free reads", med)
	}
	if g.Aborted() > g.Committed()/10 {
		t.Fatalf("aborts %d vs commits %d", g.Aborted(), g.Committed())
	}
}
