// Package ycsb implements the key-value lookup workload of §6.3 ("Read
// performance"): 16-byte keys, 32-byte values, uniform access, lock-free
// reads against a FaRM hash table. The paper reports 790 M lookups/s on 90
// machines (23 µs median, 73 µs p99); the harness reproduces the
// per-machine shape on a scaled cluster.
package ycsb

import (
	"encoding/binary"
	"fmt"

	"farm/internal/core"
	"farm/internal/kv"
	"farm/internal/loadgen"
	"farm/internal/sim"
)

// Workload is a populated lookup table.
type Workload struct {
	C     *core.Cluster
	Table *kv.Table
	Keys  uint64
}

// Key produces the 16-byte key for id.
func Key(id uint64) []byte {
	k := make([]byte, 16)
	binary.LittleEndian.PutUint64(k, id)
	binary.LittleEndian.PutUint64(k[8:], id^0x5bd1e995)
	return k
}

// Setup creates and populates the table with n keys spread over `regions`
// fresh regions.
func Setup(c *core.Cluster, n uint64, regions int) (*Workload, error) {
	regionIDs, err := c.CreateRegions(0, regions, 0)
	if err != nil {
		return nil, err
	}
	table := kv.MustCreate(c, c.Machine(0), kv.Config{
		Name:    "ycsb",
		Buckets: int(n/3) + 1,
		Slots:   4,
		MaxKey:  16,
		MaxVal:  32,
		Regions: regionIDs,
	})
	w := &Workload{C: c, Table: table, Keys: n}

	val := make([]byte, 32)
	const perTx = 16
	for base := uint64(0); base < n; base += perTx {
		base := base
		err := syncTx(c, c.Machine(int(base)%len(c.Machines)), func(tx *core.Tx, done func(error)) {
			var put func(i uint64)
			put = func(i uint64) {
				if i >= perTx || base+i >= n {
					done(nil)
					return
				}
				binary.LittleEndian.PutUint64(val, base+i)
				table.Put(tx, Key(base+i), val, func(err error) {
					if err != nil {
						done(err)
						return
					}
					put(i + 1)
				})
			}
			put(0)
		})
		if err != nil {
			return nil, fmt.Errorf("ycsb: populate at %d: %w", base, err)
		}
	}
	return w, nil
}

// syncTx drives one transaction to completion.
func syncTx(c *core.Cluster, m *core.Machine, fn func(tx *core.Tx, done func(error))) error {
	finished := false
	var result error
	tx := m.Begin(0)
	fn(tx, func(err error) {
		if err != nil {
			finished, result = true, err
			return
		}
		tx.Commit(func(err error) { finished, result = true, err })
	})
	deadline := c.Eng.Now() + 10*sim.Second
	for !finished && c.Eng.Now() < deadline {
		if !c.Eng.Step() {
			break
		}
	}
	if !finished {
		return core.ErrUnavailable
	}
	return result
}

// LookupOp returns the uniform lock-free lookup operation.
func (w *Workload) LookupOp() loadgen.Op {
	return func(m *core.Machine, thread int, rng *sim.Rand, done func(bool)) {
		id := rng.Uint64n(w.Keys)
		w.Table.LockFreeGet(m, thread, Key(id), func(val []byte, ok bool, err error) {
			done(err == nil && ok)
		})
	}
}
