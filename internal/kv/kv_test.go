package kv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"farm/internal/core"
	"farm/internal/sim"
)

type rig struct {
	c *core.Cluster
	t *Table
}

func newRig(t *testing.T, buckets, slots int) *rig {
	t.Helper()
	c := core.New(core.Options{NumMachines: 5, Seed: 9})
	regions, err := c.CreateRegions(0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	table := MustCreate(c, c.Machine(0), Config{
		Name: "test", Buckets: buckets, Slots: slots, MaxKey: 16, MaxVal: 32, Regions: regions,
	})
	return &rig{c: c, t: table}
}

// do runs fn inside a fresh transaction on machine mi and commits.
func (r *rig) do(t *testing.T, mi int, fn func(tx *core.Tx, done func(error))) error {
	t.Helper()
	finished := false
	var result error
	tx := r.c.Machine(mi).Begin(0)
	fn(tx, func(err error) {
		if err != nil {
			finished, result = true, err
			return
		}
		tx.Commit(func(err error) { finished, result = true, err })
	})
	deadline := r.c.Eng.Now() + 5*sim.Second
	for !finished && r.c.Eng.Now() < deadline {
		if !r.c.Eng.Step() {
			break
		}
	}
	if !finished {
		t.Fatal("kv op stalled")
	}
	return result
}

func (r *rig) put(t *testing.T, mi int, key, val string) error {
	return r.do(t, mi, func(tx *core.Tx, done func(error)) {
		r.t.Put(tx, []byte(key), []byte(val), done)
	})
}

func (r *rig) get(t *testing.T, mi int, key string) (string, bool) {
	var out string
	var found bool
	err := r.do(t, mi, func(tx *core.Tx, done func(error)) {
		r.t.Get(tx, []byte(key), func(val []byte, ok bool, err error) {
			out, found = string(val), ok
			done(err)
		})
	})
	if err != nil {
		t.Fatalf("get %q: %v", key, err)
	}
	return out, found
}

func TestPutGetDelete(t *testing.T) {
	r := newRig(t, 16, 4)
	if err := r.put(t, 0, "alpha", "one"); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.get(t, 1, "alpha"); !ok || v != "one" {
		t.Fatalf("get: %q %v", v, ok)
	}
	if _, ok := r.get(t, 2, "beta"); ok {
		t.Fatal("phantom key")
	}
	// Update.
	if err := r.put(t, 3, "alpha", "two"); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.get(t, 4, "alpha"); v != "two" {
		t.Fatalf("after update: %q", v)
	}
	// Delete.
	err := r.do(t, 0, func(tx *core.Tx, done func(error)) {
		r.t.Delete(tx, []byte("alpha"), func(ok bool, err error) {
			if !ok {
				t.Error("delete missed")
			}
			done(err)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.get(t, 1, "alpha"); ok {
		t.Fatal("key survived delete")
	}
}

func TestOverflowChains(t *testing.T) {
	// One bucket, two slots: everything collides, forcing overflow chains.
	r := newRig(t, 1, 2)
	for i := 0; i < 20; i++ {
		if err := r.put(t, i%5, fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		v, ok := r.get(t, (i+1)%5, fmt.Sprintf("key-%d", i))
		if !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%d: %q %v", i, v, ok)
		}
	}
}

func TestLockFreeGet(t *testing.T) {
	r := newRig(t, 8, 4)
	if err := r.put(t, 0, "lf", "fast-read"); err != nil {
		t.Fatal(err)
	}
	var got string
	var found, fired bool
	r.t.LockFreeGet(r.c.Machine(3), 0, []byte("lf"), func(val []byte, ok bool, err error) {
		if err != nil {
			t.Error(err)
		}
		got, found, fired = string(val), ok, true
	})
	deadline := r.c.Eng.Now() + sim.Second
	for !fired && r.c.Eng.Now() < deadline {
		r.c.Eng.Step()
	}
	if !found || got != "fast-read" {
		t.Fatalf("lock-free get: %q %v", got, found)
	}
}

func TestTransactionalComposition(t *testing.T) {
	// Two puts in one transaction are atomic: a conflicting interleaved
	// writer aborts one of them entirely.
	r := newRig(t, 16, 4)
	if err := r.put(t, 0, "x", "0"); err != nil {
		t.Fatal(err)
	}
	err := r.do(t, 1, func(tx *core.Tx, done func(error)) {
		r.t.Get(tx, []byte("x"), func(_ []byte, _ bool, err error) {
			if err != nil {
				done(err)
				return
			}
			r.t.Put(tx, []byte("x"), []byte("1"), func(err error) {
				if err != nil {
					done(err)
					return
				}
				r.t.Put(tx, []byte("y"), []byte("1"), done)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	vx, _ := r.get(t, 2, "x")
	vy, oky := r.get(t, 2, "y")
	if vx != "1" || !oky || vy != "1" {
		t.Fatalf("composed tx: x=%q y=%q", vx, vy)
	}
}

func TestConflictOnSameBucket(t *testing.T) {
	r := newRig(t, 1, 8) // everything in one bucket → guaranteed conflict
	if err := r.put(t, 0, "a", "0"); err != nil {
		t.Fatal(err)
	}
	results := make([]error, 0, 2)
	launch := func(mi int, key string) {
		tx := r.c.Machine(mi).Begin(0)
		r.t.Put(tx, []byte(key), []byte("v"), func(err error) {
			if err != nil {
				results = append(results, err)
				return
			}
			tx.Commit(func(err error) { results = append(results, err) })
		})
	}
	launch(1, "k1")
	launch(2, "k2")
	deadline := r.c.Eng.Now() + sim.Second
	for len(results) < 2 && r.c.Eng.Now() < deadline {
		r.c.Eng.Step()
	}
	conflicts := 0
	for _, err := range results {
		if errors.Is(err, core.ErrConflict) {
			conflicts++
		} else if err != nil {
			t.Fatalf("unexpected: %v", err)
		}
	}
	if conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1 (same-bucket writers must collide)", conflicts)
	}
}

func TestQuickMapEquivalence(t *testing.T) {
	// Property: a random op sequence applied to the table matches a Go map.
	type op struct {
		Put bool
		Key uint8
		Val uint8
	}
	f := func(ops []op) bool {
		if len(ops) > 60 {
			ops = ops[:60]
		}
		r := newRig(t, 4, 2)
		model := map[string]string{}
		for i, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%20)
			if o.Put {
				val := fmt.Sprintf("v%d", o.Val)
				if err := r.put(t, i%5, key, val); err != nil {
					return false
				}
				model[key] = val
			} else {
				r.do(t, i%5, func(tx *core.Tx, done func(error)) {
					r.t.Delete(tx, []byte(key), func(bool, error) { done(nil) })
				})
				delete(model, key)
			}
		}
		for k, want := range model {
			got, ok := r.get(t, 0, k)
			if !ok || got != want {
				return false
			}
		}
		// And absent keys stay absent.
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, inModel := model[k]; !inModel {
				if _, ok := r.get(t, 1, k); ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestU64Key(t *testing.T) {
	a, b := U64Key(7), U64Key(8)
	if bytes.Equal(a, b) || len(a) != 8 {
		t.Fatal("U64Key broken")
	}
}

func TestTableSurvivesMachineFailure(t *testing.T) {
	c := core.New(core.Options{NumMachines: 5, Seed: 67, LeaseDuration: 5 * sim.Millisecond})
	regions, err := c.CreateRegions(0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	table := MustCreate(c, c.Machine(0), Config{
		Name: "failkv", Buckets: 16, Slots: 4, MaxKey: 16, MaxVal: 32, Regions: regions,
	})
	r := &rig{c: c, t: table}
	for i := 0; i < 30; i++ {
		if err := r.put(t, i%5, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.RunFor(20 * sim.Millisecond)
	c.Kill(2)
	c.RunFor(400 * sim.Millisecond)

	for i := 0; i < 30; i++ {
		reader := i % 5
		if reader == 2 {
			reader = 3
		}
		v, ok := r.get(t, reader, fmt.Sprintf("k%d", i))
		if !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after failure: %q %v", i, v, ok)
		}
	}
	// Writes still work (chains, allocation, the lot).
	if err := r.put(t, 0, "post-failure", "yes"); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.get(t, 1, "post-failure"); !ok || v != "yes" {
		t.Fatalf("post-failure put: %q %v", v, ok)
	}
}
