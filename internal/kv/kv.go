// Package kv implements the FaRM hash table (§6.2, [16]): a distributed
// hash table over the FaRM global address space whose buckets are FaRM
// objects. A lookup is a single object read — one RDMA read when the
// bucket's primary is remote — and all mutations run inside the caller's
// transaction, so multi-table operations (TATP, TPC-C) compose into one
// atomic commit.
//
// Buckets hold a fixed number of slots plus an overflow chain pointer.
// The bucket directory (the []Addr produced at creation) is table
// metadata: in FaRM it is derived from the region registry; here the
// descriptor is shared by the application on all machines.
package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"farm/internal/core"
	"farm/internal/proto"
)

// ErrFull is returned when neither the bucket nor a new overflow bucket
// can accommodate an insert.
var ErrFull = errors.New("kv: table full")

// Table is a distributed hash table descriptor. It is immutable after
// Create and safe to share across machines.
type Table struct {
	Name     string
	buckets  []proto.Addr
	slots    int
	maxKey   int
	maxVal   int
	bodySize int
}

// Layout:
//
//	bucket := nextRegion u32 | nextOff u32 | slots × slot
//	slot   := used u8 | keyLen u16 | valLen u16 | key [maxKey] | val [maxVal]
const bucketHeader = 8

func (t *Table) slotSize() int { return 5 + t.maxKey + t.maxVal }

// BucketBytes returns the payload size of one bucket object.
func (t *Table) BucketBytes() int { return bucketHeader + t.slots*t.slotSize() }

// Buckets returns the number of top-level buckets.
func (t *Table) Buckets() int { return len(t.buckets) }

// hash maps a key to a top-level bucket.
func (t *Table) hash(key []byte) int {
	h := fnv.New64a()
	h.Write(key)
	return int(h.Sum64() % uint64(len(t.buckets)))
}

// BucketAddr exposes the bucket address a key maps to (used by workloads
// for locality placement decisions).
func (t *Table) BucketAddr(key []byte) proto.Addr { return t.buckets[t.hash(key)] }

// Config sizes a table.
type Config struct {
	Name    string
	Buckets int
	Slots   int // slots per bucket (default 4)
	MaxKey  int
	MaxVal  int
	// Regions to spread buckets over (round-robin). Required.
	Regions []uint32
}

// Create allocates the bucket objects transactionally from machine m and
// returns the descriptor through cb. Buckets are spread over the given
// regions round-robin; with locality-partitioned workloads callers pass
// region sets hosted by specific machines.
func Create(m *core.Machine, cfg Config, cb func(*Table, error)) {
	if cfg.Buckets <= 0 || cfg.MaxKey <= 0 || cfg.MaxVal < 0 || len(cfg.Regions) == 0 {
		cb(nil, fmt.Errorf("kv: bad config %+v", cfg))
		return
	}
	if cfg.Slots == 0 {
		cfg.Slots = 4
	}
	t := &Table{
		Name:   cfg.Name,
		slots:  cfg.Slots,
		maxKey: cfg.MaxKey,
		maxVal: cfg.MaxVal,
	}
	t.buckets = make([]proto.Addr, cfg.Buckets)
	empty := make([]byte, t.BucketBytes())

	// Allocate in batches so one giant transaction does not exceed log
	// reservations.
	const batch = 32
	var allocFrom func(i int)
	allocFrom = func(i int) {
		if i >= cfg.Buckets {
			cb(t, nil)
			return
		}
		end := i + batch
		if end > cfg.Buckets {
			end = cfg.Buckets
		}
		tx := m.Begin(i % m.Threads())
		var allocOne func(j int)
		allocOne = func(j int) {
			if j == end {
				tx.Commit(func(err error) {
					if err != nil {
						cb(nil, err)
						return
					}
					allocFrom(end)
				})
				return
			}
			hint := proto.Addr{Region: cfg.Regions[j%len(cfg.Regions)]}
			tx.Alloc(len(empty), empty, &hint, func(addr proto.Addr, err error) {
				if err != nil {
					cb(nil, err)
					return
				}
				t.buckets[j] = addr
				allocOne(j + 1)
			})
		}
		allocOne(i)
	}
	allocFrom(0)
}

// MustCreate drives the simulation until Create completes (bootstrap
// helper for tests, examples and benchmarks).
func MustCreate(c *core.Cluster, m *core.Machine, cfg Config) *Table {
	var table *Table
	var cerr error
	done := false
	Create(m, cfg, func(t *Table, err error) {
		table, cerr, done = t, err, true
	})
	for !done {
		if !c.Eng.Step() {
			break
		}
	}
	if !done || cerr != nil {
		panic(fmt.Sprintf("kv: MustCreate(%s): done=%v err=%v", cfg.Name, done, cerr))
	}
	return table
}

// parsed bucket view.
type bucket struct {
	t    *Table
	data []byte
}

func (b bucket) next() proto.Addr {
	return proto.Addr{
		Region: binary.LittleEndian.Uint32(b.data[0:]),
		Off:    binary.LittleEndian.Uint32(b.data[4:]),
	}
}

func (b bucket) setNext(a proto.Addr) {
	binary.LittleEndian.PutUint32(b.data[0:], a.Region)
	binary.LittleEndian.PutUint32(b.data[4:], a.Off)
}

func (b bucket) slot(i int) []byte {
	s := b.t.slotSize()
	return b.data[bucketHeader+i*s : bucketHeader+(i+1)*s]
}

func slotUsed(s []byte) bool { return s[0] != 0 }

func slotKey(s []byte) []byte {
	kl := binary.LittleEndian.Uint16(s[1:])
	return s[5 : 5+kl]
}

func slotVal(s []byte, maxKey int) []byte {
	vl := binary.LittleEndian.Uint16(s[3:])
	return s[5+maxKey : 5+maxKey+int(vl)]
}

func (b bucket) setSlot(i int, key, val []byte) {
	s := b.slot(i)
	s[0] = 1
	binary.LittleEndian.PutUint16(s[1:], uint16(len(key)))
	binary.LittleEndian.PutUint16(s[3:], uint16(len(val)))
	copy(s[5:], key)
	copy(s[5+b.t.maxKey:], val)
}

func (b bucket) clearSlot(i int) { b.slot(i)[0] = 0 }

// find returns the slot index holding key, or -1.
func (b bucket) find(key []byte) int {
	for i := 0; i < b.t.slots; i++ {
		s := b.slot(i)
		if slotUsed(s) && bytes.Equal(slotKey(s), key) {
			return i
		}
	}
	return -1
}

// freeSlot returns an unused slot index, or -1.
func (b bucket) freeSlot() int {
	for i := 0; i < b.t.slots; i++ {
		if !slotUsed(b.slot(i)) {
			return i
		}
	}
	return -1
}

var zeroAddr = proto.Addr{}

// Get looks key up within tx. ok reports presence; val is a copy.
func (t *Table) Get(tx *core.Tx, key []byte, cb func(val []byte, ok bool, err error)) {
	if len(key) > t.maxKey {
		cb(nil, false, fmt.Errorf("kv: key too long"))
		return
	}
	t.getAt(tx, t.buckets[t.hash(key)], key, cb)
}

func (t *Table) getAt(tx *core.Tx, addr proto.Addr, key []byte, cb func([]byte, bool, error)) {
	tx.Read(addr, t.BucketBytes(), func(data []byte, err error) {
		if err != nil {
			cb(nil, false, err)
			return
		}
		b := bucket{t: t, data: data}
		if i := b.find(key); i >= 0 {
			cb(append([]byte(nil), slotVal(b.slot(i), t.maxKey)...), true, nil)
			return
		}
		if n := b.next(); n != zeroAddr {
			t.getAt(tx, n, key, cb)
			return
		}
		cb(nil, false, nil)
	})
}

// LockFreeGet is the single-read lookup outside any transaction (FaRM's
// lock-free reads, used by TATP's read-only single-row operations). It
// only examines the top-level bucket chain, retrying through the machine's
// lock-free read path.
func (t *Table) LockFreeGet(m *core.Machine, thread int, key []byte, cb func(val []byte, ok bool, err error)) {
	t.lockFreeGetAt(m, thread, t.buckets[t.hash(key)], key, cb)
}

func (t *Table) lockFreeGetAt(m *core.Machine, thread int, addr proto.Addr, key []byte, cb func([]byte, bool, error)) {
	m.LockFreeRead(thread, addr, t.BucketBytes(), func(data []byte, err error) {
		if err != nil {
			cb(nil, false, err)
			return
		}
		b := bucket{t: t, data: data}
		if i := b.find(key); i >= 0 {
			cb(append([]byte(nil), slotVal(b.slot(i), t.maxKey)...), true, nil)
			return
		}
		if n := b.next(); n != zeroAddr {
			t.lockFreeGetAt(m, thread, n, key, cb)
			return
		}
		cb(nil, false, nil)
	})
}

// Put inserts or updates key within tx.
func (t *Table) Put(tx *core.Tx, key, val []byte, cb func(err error)) {
	if len(key) > t.maxKey || len(val) > t.maxVal {
		cb(fmt.Errorf("kv: key/value too long"))
		return
	}
	t.putAt(tx, t.buckets[t.hash(key)], key, val, cb)
}

func (t *Table) putAt(tx *core.Tx, addr proto.Addr, key, val []byte, cb func(error)) {
	tx.Read(addr, t.BucketBytes(), func(data []byte, err error) {
		if err != nil {
			cb(err)
			return
		}
		b := bucket{t: t, data: data}
		if i := b.find(key); i >= 0 {
			b.setSlot(i, key, val)
			tx.Write(addr, b.data)
			cb(nil)
			return
		}
		if n := b.next(); n != zeroAddr {
			t.putAt(tx, n, key, val, cb)
			return
		}
		if i := b.freeSlot(); i >= 0 {
			b.setSlot(i, key, val)
			tx.Write(addr, b.data)
			cb(nil)
			return
		}
		// Chain a fresh overflow bucket near this one (same region).
		overflow := make([]byte, t.BucketBytes())
		ob := bucket{t: t, data: overflow}
		ob.setSlot(0, key, val)
		hint := addr
		tx.Alloc(len(overflow), overflow, &hint, func(oaddr proto.Addr, err error) {
			if err != nil {
				cb(ErrFull)
				return
			}
			b.setNext(oaddr)
			tx.Write(addr, b.data)
			cb(nil)
		})
	})
}

// Delete removes key within tx; ok reports whether it was present.
func (t *Table) Delete(tx *core.Tx, key []byte, cb func(ok bool, err error)) {
	t.deleteAt(tx, t.buckets[t.hash(key)], key, cb)
}

func (t *Table) deleteAt(tx *core.Tx, addr proto.Addr, key []byte, cb func(bool, error)) {
	tx.Read(addr, t.BucketBytes(), func(data []byte, err error) {
		if err != nil {
			cb(false, err)
			return
		}
		b := bucket{t: t, data: data}
		if i := b.find(key); i >= 0 {
			b.clearSlot(i)
			tx.Write(addr, b.data)
			cb(true, nil)
			return
		}
		if n := b.next(); n != zeroAddr {
			t.deleteAt(tx, n, key, cb)
			return
		}
		cb(false, nil)
	})
}

// U64Key encodes an integer key (the common TATP/TPC-C case).
func U64Key(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}
